// Benchmarks regenerating the paper's tables and figures at laptop
// scale. Every table and figure of the evaluation has a bench; run
//
//	go test -bench=. -benchmem
//
// The SAT experiments use short timeouts on scaled circuits — the
// published 5-day runs shrink to fractions of a second — so each
// bench reports the shape metrics (DIPs, timeout/solved, energies) via
// ReportMetric alongside wall-clock time.
package repro

import (
	"io"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/baselines"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/lutsim"
	"repro/internal/netlist"
	"repro/internal/psca"
	"repro/internal/report"
	"repro/internal/sat"
	"repro/internal/seq"
)

const benchTimeout = 300 * time.Millisecond

func benchCircuit(b *testing.B, scale float64) *netlist.Netlist {
	b.Helper()
	prof, _ := circuit.ProfileByName("c7552")
	nl, err := prof.Synthesize(scale)
	if err != nil {
		b.Fatal(err)
	}
	return nl
}

// lockAttack locks with the given geometry and attacks with a short
// timeout, reporting DIPs and whether the run timed out (the paper's
// infinity).
func lockAttack(b *testing.B, orig *netlist.Netlist, blocks int, size core.Size) {
	b.Helper()
	var dips, timeouts int
	for i := 0; i < b.N; i++ {
		res, err := core.Lock(orig, core.Options{Blocks: blocks, Size: size, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := attack.NewSimOracle(bound)
		if err != nil {
			b.Fatal(err)
		}
		ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
			attack.SATOptions{Timeout: benchTimeout})
		if err != nil {
			b.Fatal(err)
		}
		dips += ar.Iterations
		if ar.Status != attack.KeyFound {
			timeouts++
		}
	}
	b.ReportMetric(float64(dips)/float64(b.N), "DIPs/op")
	b.ReportMetric(float64(timeouts)/float64(b.N), "timeouts/op")
}

// --- Table I: SAT runtime vs block count and size on c7552 ----------

func BenchmarkTable1_2x2_1block(b *testing.B)  { lockAttack(b, benchCircuit(b, 0.1), 1, core.Size2x2) }
func BenchmarkTable1_2x2_5blocks(b *testing.B) { lockAttack(b, benchCircuit(b, 0.1), 5, core.Size2x2) }
func BenchmarkTable1_2x2_25blocks(b *testing.B) {
	lockAttack(b, benchCircuit(b, 0.1), 25, core.Size2x2)
}
func BenchmarkTable1_8x8_1block(b *testing.B)  { lockAttack(b, benchCircuit(b, 0.1), 1, core.Size8x8) }
func BenchmarkTable1_8x8_3blocks(b *testing.B) { lockAttack(b, benchCircuit(b, 0.1), 3, core.Size8x8) }
func BenchmarkTable1_8x8x8_1block(b *testing.B) {
	lockAttack(b, benchCircuit(b, 0.1), 1, core.Size8x8x8)
}
func BenchmarkTable1_8x8x8_3blocks(b *testing.B) {
	lockAttack(b, benchCircuit(b, 0.1), 3, core.Size8x8x8)
}

// --- Table II: LUT configuration sweep -------------------------------

func BenchmarkTable2_LUTConfiguration(b *testing.B) {
	cfg := lutsim.DefaultConfig()
	for i := 0; i < b.N; i++ {
		l := lutsim.New(cfg)
		for _, f := range logic.AllFunc2() {
			for _, rep := range l.Configure(f) {
				if rep.Error {
					b.Fatal("configuration write failed")
				}
			}
		}
	}
}

// --- Table III: per-benchmark SAT attacks and AppSAT -----------------

func table3Bench(b *testing.B, nl *netlist.Netlist) {
	b.Helper()
	lockAttack(b, nl, 1, core.Size8x8x8)
}

func BenchmarkTable3_b15(b *testing.B) {
	prof, _ := circuit.ProfileByName("b15")
	nl, err := prof.Synthesize(0.06)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_s35932(b *testing.B) {
	prof, _ := circuit.ProfileByName("s35932")
	nl, err := prof.Synthesize(0.04)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_s38584(b *testing.B) {
	prof, _ := circuit.ProfileByName("s38584")
	nl, err := prof.Synthesize(0.04)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_b20(b *testing.B) {
	prof, _ := circuit.ProfileByName("b20")
	nl, err := prof.Synthesize(0.04)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_AES(b *testing.B) {
	nl, err := circuit.AESRound(1)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_SHA256(b *testing.B) {
	nl, err := circuit.SHA256Compress(1)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_MD5(b *testing.B) {
	nl, err := circuit.MD5Steps(1)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_GPS(b *testing.B) {
	nl, err := circuit.GPSCA(1, 8)
	if err != nil {
		b.Fatal(err)
	}
	table3Bench(b, nl)
}

func BenchmarkTable3_AppSAT_ScanEnable(b *testing.B) {
	nl, err := circuit.GPSCA(1, 8)
	if err != nil {
		b.Fatal(err)
	}
	fails := 0
	for i := 0; i < b.N; i++ {
		res, err := core.Lock(nl, core.Options{
			Blocks: 1, Size: core.Size8x8x8, Seed: int64(i + 1), ScanEnable: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		sv, err := res.ScanView()
		if err != nil {
			b.Fatal(err)
		}
		svBound, err := sv.BindInputs(res.KeyInputPos, res.Key)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := attack.NewSimOracle(svBound)
		if err != nil {
			b.Fatal(err)
		}
		opt := attack.DefaultAppSAT()
		opt.Timeout = benchTimeout
		opt.MaxRounds = 8
		ar, err := attack.AppSAT(res.Locked, res.KeyInputPos, oracle, opt)
		if err != nil {
			b.Fatal(err)
		}
		broken := false
		if ar.Status == attack.KeyFound {
			fBound, err := res.ApplyKey(res.Key)
			if err != nil {
				b.Fatal(err)
			}
			funcOracle, err := attack.NewSimOracle(fBound)
			if err != nil {
				b.Fatal(err)
			}
			e, err := attack.VerifyKey(res.Locked, res.KeyInputPos, ar.Key, funcOracle, 4, 1)
			if err != nil {
				b.Fatal(err)
			}
			broken = e == 0
		}
		if !broken {
			fails++
		}
	}
	b.ReportMetric(float64(fails)/float64(b.N), "appsat-failures/op")
}

// --- Table IV: MRAM LUT energies --------------------------------------

func BenchmarkTable4_EnergyTable(b *testing.B) {
	cfg := lutsim.DefaultConfig()
	var read, write, standby float64
	for i := 0; i < b.N; i++ {
		rows, err := lutsim.EnergyTable(cfg, logic.AND)
		if err != nil {
			b.Fatal(err)
		}
		read, write, standby = rows[2].Read, rows[2].Write, rows[2].Standby
	}
	b.ReportMetric(read*1e15, "read-fJ")
	b.ReportMetric(write*1e15, "write-fJ")
	b.ReportMetric(standby*1e18, "standby-aJ")
}

// --- Table V: attack-resilience matrix --------------------------------

func BenchmarkTable5_Matrix(b *testing.B) {
	cfg := report.AttackConfig{Timeout: benchTimeout, Scale: 0.1, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := report.Table5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 1: MESO encoding vs LUT-2 re-encoding -----------------------

func fig1Bench(b *testing.B, lut2 bool) {
	b.Helper()
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "fig1", Inputs: 16, Outputs: 8, Gates: 250, Locality: 0.7,
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	var dips int
	for i := 0; i < b.N; i++ {
		var l *baselines.Locked
		var err error
		if lut2 {
			l, err = baselines.MESOAsLUT2(orig, 6, int64(i+1))
		} else {
			l, err = baselines.MESOLock(orig, 6, int64(i+1))
		}
		if err != nil {
			b.Fatal(err)
		}
		bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := attack.NewSimOracle(bound)
		if err != nil {
			b.Fatal(err)
		}
		ar, err := attack.SATAttack(l.Netlist, l.KeyPos, oracle, attack.SATOptions{Timeout: 10 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if ar.Status != attack.KeyFound {
			b.Fatal("fig1 attack should converge at this scale")
		}
		dips += ar.Iterations
	}
	b.ReportMetric(float64(dips)/float64(b.N), "DIPs/op")
}

func BenchmarkFig1_MESOEncoding(b *testing.B) { fig1Bench(b, false) }
func BenchmarkFig1_LUT2Encoding(b *testing.B) { fig1Bench(b, true) }

// --- Fig. 5: transient waveform ---------------------------------------

func BenchmarkFig5_Transient(b *testing.B) {
	cfg := lutsim.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := lutsim.Transient(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6: Monte-Carlo sweep ----------------------------------------

func BenchmarkFig6_MonteCarlo100(b *testing.B) {
	cfg := lutsim.DefaultConfig()
	var overlap float64
	errs, ops := 0, 0
	for i := 0; i < b.N; i++ {
		res := lutsim.MonteCarlo(cfg, logic.AND, 100, int64(i+1))
		errs += res.ReadErrors + res.WriteErrors
		ops += res.ReadOps + res.WriteOps
		overlap = res.PowerOverlap()
	}
	// The paper reports <0.01% read/write errors; tail PV draws may
	// fail occasionally across many seeds — assert the rate, not zero.
	rate := float64(errs) / float64(ops)
	if rate > 0.001 {
		b.Fatalf("PV error rate %.5f exceeds 0.1%%", rate)
	}
	b.ReportMetric(rate*100, "pv-error-%")
	b.ReportMetric(overlap, "power-overlap-sigma")
}

// --- P-SCA: CPA on SRAM vs MRAM ---------------------------------------

func BenchmarkPSCA_CPA_SRAM(b *testing.B) {
	cfg := lutsim.DefaultConfig()
	s := lutsim.NewSRAM(cfg)
	s.Configure(logic.NAND)
	recovered := 0
	for i := 0; i < b.N; i++ {
		traces := psca.CollectSRAM(s, 400, 0.05, int64(i+1))
		res, err := psca.CPA(traces)
		if err != nil {
			b.Fatal(err)
		}
		if res.Recovered(logic.NAND) {
			recovered++
		}
	}
	b.ReportMetric(float64(recovered)/float64(b.N), "key-recovery/op")
}

func BenchmarkPSCA_CPA_MRAM(b *testing.B) {
	cfg := lutsim.DefaultConfig()
	l := lutsim.New(cfg)
	l.Configure(logic.NAND)
	recovered := 0
	for i := 0; i < b.N; i++ {
		traces := psca.CollectMRAM(l, 400, 0.05, int64(i+1))
		res, err := psca.CPA(traces)
		if err != nil {
			b.Fatal(err)
		}
		if res.Recovered(logic.NAND) {
			recovered++
		}
	}
	b.ReportMetric(float64(recovered)/float64(b.N), "key-recovery/op")
}

// --- Ablation & extension benches --------------------------------------

func BenchmarkAblation_Geometries(b *testing.B) {
	cfg := report.AttackConfig{Timeout: benchTimeout, Scale: 0.1, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := report.Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneHot_RoutingOnly(b *testing.B) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "oh", Inputs: 16, Outputs: 12, Gates: 300, Locality: 0.3,
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	l, net, err := baselines.RoutingLock(orig, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		b.Fatal(err)
	}
	hints := []attack.RoutingHint{attack.HintFromRoutingNetwork(net.Width, net.InputNames, net.OutputNames, net.KeyPos)}
	b.ResetTimer()
	solved := 0
	for i := 0; i < b.N; i++ {
		res, err := attack.SATAttackOneHot(l.Netlist, l.KeyPos, hints, oracle,
			attack.SATOptions{Timeout: 10 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if res.SAT.Status == attack.KeyFound && res.Realizable {
			solved++
		}
	}
	b.ReportMetric(float64(solved)/float64(b.N), "solved/op")
}

func BenchmarkSensitize_XORvsRIL(b *testing.B) {
	cfg := report.AttackConfig{Timeout: 5 * time.Second, Scale: 0.1, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := report.Sensitization(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicMorphing_Attack(b *testing.B) {
	cfg := report.AttackConfig{Timeout: benchTimeout, Scale: 0.08, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := report.DynamicMorphing(cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeq_Unroll16(b *testing.B) {
	nl, err := circuit.GPSCA(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := seq.New(nl, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Unroll(16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---------------------------------------

func BenchmarkSolver_Pigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 7
		f := cnf.NewFormula()
		v := func(p, h int) cnf.Lit {
			for f.NumVars <= p*n+h {
				f.NewVar()
			}
			return cnf.MkLit(cnf.Var(p*n+h), false)
		}
		for p := 0; p <= n; p++ {
			var c []cnf.Lit
			for h := 0; h < n; h++ {
				c = append(c, v(p, h))
			}
			f.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					f.AddClause(v(p1, h).Not(), v(p2, h).Not())
				}
			}
		}
		st, _ := sat.SolveFormula(f, time.Time{})
		if st != sat.Unsat {
			b.Fatal("PHP(8,7) must be UNSAT")
		}
	}
}

func BenchmarkSimulator_AESRound(b *testing.B) {
	nl, err := circuit.AESRound(1)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]uint64, len(nl.Inputs))
	for i := range in {
		in[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := sim.Run(in)
		in[0] ^= out[0] // keep the loop live
	}
}

func BenchmarkTseitin_EncodeC7552(b *testing.B) {
	nl := benchCircuit(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := cnf.NewEncoder()
		if _, err := enc.Encode(nl, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLock_8x8x8x3_C7552(b *testing.B) {
	nl := benchCircuit(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Lock(nl, core.Options{Blocks: 3, Size: core.Size8x8x8, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMorph_Epoch(b *testing.B) {
	nl := benchCircuit(b, 0.1)
	res, err := core.Lock(nl, core.Options{Blocks: 2, Size: core.Size8x8x8, Seed: 1, ScanEnable: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Morph(int64(i+1), 8)
	}
}

func BenchmarkBenchIO_WriteParse(b *testing.B) {
	nl := benchCircuit(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			done <- nl.WriteBench(pw)
			pw.Close()
		}()
		if _, err := netlist.ParseBench("c7552", pr); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}
