package repro

// End-to-end integration tests anchored on the genuine ISCAS-85 c17
// netlist (testdata/c17.bench): parse → verify function → lock with
// every scheme → attack → validate. These are the closest thing to
// replaying the paper's flow on a real published circuit.

import (
	"os"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/opt"
)

func loadC17(t *testing.T) *netlist.Netlist {
	t.Helper()
	f, err := os.Open("testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// c17Ref is the known function of c17: G22 = NAND(G1·G3, G2·(G3·G6)'),
// computed gate by gate.
func c17Ref(in [5]bool) (g22, g23 bool) {
	nand := func(a, b bool) bool { return !(a && b) }
	g1, g2, g3, g6, g7 := in[0], in[1], in[2], in[3], in[4]
	g10 := nand(g1, g3)
	g11 := nand(g3, g6)
	g16 := nand(g2, g11)
	g19 := nand(g11, g7)
	return nand(g10, g16), nand(g16, g19)
}

func TestC17ParsesAndMatchesReference(t *testing.T) {
	nl := loadC17(t)
	stats, err := nl.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gates != 6 || stats.Inputs != 5 || stats.Outputs != 2 {
		t.Fatalf("c17 geometry wrong: %v", stats)
	}
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 32; p++ {
		var in [5]bool
		for i := range in {
			in[i] = p&(1<<i) != 0
		}
		out := sim.Eval(in[:])
		w22, w23 := c17Ref(in)
		if out[0] != w22 || out[1] != w23 {
			t.Fatalf("pattern %d: got (%v,%v), want (%v,%v)", p, out[0], out[1], w22, w23)
		}
	}
}

func TestC17LockAndSATAttack(t *testing.T) {
	nl := loadC17(t)
	res, err := core.Lock(nl, core.Options{Blocks: 1, Size: core.Size2x2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle, attack.SATOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Status != attack.KeyFound {
		t.Fatalf("c17 (5 inputs) must fall to the SAT attack: %v", ar)
	}
	if e, _ := attack.VerifyKey(res.Locked, res.KeyInputPos, ar.Key, oracle, 8, 18); e != 0 {
		t.Errorf("recovered key error rate %v", e)
	}
}

func TestC17XORLockSensitization(t *testing.T) {
	nl := loadC17(t)
	l, err := baselines.XORLock(nl, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	res, err := attack.Sensitize(l.Netlist, l.KeyPos, oracle, 16, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l.Key {
		if res.Mask[i] && res.Key[i] != l.Key[i] {
			t.Errorf("sensitization resolved bit %d wrongly", i)
		}
	}
}

func TestC17OptimizeRoundTrip(t *testing.T) {
	nl := loadC17(t)
	before := nl.Clone()
	st, err := opt.Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	// c17 is already minimal NAND logic; resynthesis must not grow it.
	if nl.NumLogicGates() > 6 {
		t.Errorf("c17 grew to %d gates (%s)", nl.NumLogicGates(), st)
	}
	eq, _, err := attack.EquivalentSAT(before, nl, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("optimization changed c17")
	}
}
