#!/bin/sh
# ci.sh — the full local CI gate. Run from the repository root:
#
#   ./ci.sh
#
# Steps: formatting, vet plus the repo-local Go lint suite (cmd/rilvet
# — determinism, durability and concurrency invariants over the repo's
# own Go source, with a SARIF artifact, a self-lint check and a
# deliberately-broken fixture proving the gate bites), build, tests
# under the race detector, doubled -race passes over the sweep runner
# and the result cache (both scheduling-sensitive), a coverage gate on
# the checkpoint-bearing packages plus the result cache, a benchmark
# smoke that also emits BENCH_8.json (oracle
# fast path, miter template stamping, portfolio solve), a portfolio
# gate (three-way differential, clause exchange and portfolio-attack
# suites under -race, plus a clause-exchange fuzz smoke), a fuzz
# smoke stage (10s per parser/journal/audit/suppression target), the
# netlint gate
# — every checked-in .bench benchmark and a freshly locked circuit
# must pass the full analyzer set including the resilience audit,
# deliberately broken netlists (combinational cycle, dead key bit)
# must be rejected with the right analyzer named, and the planted
# redundant-key fixture must be caught by the audit with the right
# effective key length — a kill-and-resume smoke: a checkpointed
# attack sweep is SIGKILLed mid-run, resumed, and must end with a
# complete manifest — and finally the result-cache gate: the same
# report sweep runs cold then warm against one -cache-dir, the warm
# run must be byte-identical, all hits and at least 5x faster, with
# the timings published as BENCH_9.json — and the rild daemon gate:
# a race-built cmd/rild serves a 200-job load flood with zero lost or
# duplicated results, answers well-formed /metrics whose counters
# match the load, and drains clean (exit 0, no temp litter) on
# SIGTERM.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== rilvet (Go-code determinism/durability/concurrency invariants) =="
# Zero unsuppressed findings across the repo; the SARIF log is the
# machine-readable artifact of the run.
go run ./cmd/rilvet -sarif rilvet.sarif ./...
[ -s rilvet.sarif ] || { echo "ci: rilvet.sarif is empty" >&2; exit 1; }
echo "ci: wrote rilvet.sarif"

echo "== rilvet: lints itself =="
go run ./cmd/rilvet internal/golint cmd/rilvet cmd/repolint

echo "== rilvet: deprecated repolint alias still answers =="
go run ./cmd/repolint internal/golint/testdata/src/clean

echo "== rilvet: the gate bites on a known-bad fixture =="
if go run ./cmd/rilvet internal/golint/testdata/src/rand-global > rilvet_fixture.out 2>&1; then
    echo "ci: rilvet passed the deliberately broken fixture" >&2
    cat rilvet_fixture.out >&2
    exit 1
fi
grep -q 'rand-global' rilvet_fixture.out || {
    echo "ci: fixture failure not attributed to rand-global:" >&2
    cat rilvet_fixture.out >&2
    exit 1
}
rm -f rilvet_fixture.out

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== sweep runner under -race, doubled =="
go test -race -count=2 ./internal/sweep/

echo "== result cache under -race, doubled =="
# Get/Put/GC hammer across goroutines plus racing first Opens; doubled
# because the failure mode (GC deleting a live writer's staged temp)
# is scheduling-sensitive.
go test -race -count=2 ./internal/cache/

echo "== coverage gate (internal/attack, internal/sweep, internal/cache >= 70%) =="
for pkg in ./internal/attack/ ./internal/sweep/ ./internal/cache/; do
    cov=$(go test -cover "$pkg" | awk '/coverage:/ { sub("%", "", $(NF-2)); print $(NF-2) }')
    if [ -z "$cov" ]; then
        echo "ci: could not read coverage for $pkg" >&2
        exit 1
    fi
    ok=$(awk -v c="$cov" 'BEGIN { print (c >= 70.0) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "ci: $pkg coverage ${cov}% is below the 70% gate" >&2
        exit 1
    fi
    echo "ci: $pkg coverage ${cov}%"
done

echo "== benchmark smoke (oracle fast path, miter stamping, portfolio solve) =="
go test ./internal/attack/ -run='^$' -bench='Oracle|MiterStampVsReencode|SolvePortfolio' \
    -benchtime=1x -timeout 20m | tee bench_smoke.out
# Publish the smoke results as BENCH_8.json (one object per benchmark)
# so downstream tooling can trend the oracle fast path, the template
# stamper and the portfolio solver without parsing go test output.
awk '
    BEGIN { print "["; n = 0 }
    /^Benchmark/ {
        if (n++) print ",";
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3
    }
    END { if (n) print ""; print "]" }
' bench_smoke.out > BENCH_8.json
rm -f bench_smoke.out
[ -s BENCH_8.json ] || { echo "ci: BENCH_8.json is empty" >&2; exit 1; }
echo "ci: wrote BENCH_8.json"

echo "== portfolio gate: three-way differential + exchange under -race =="
# The differential layer that admits the portfolio solver: a sliced
# three-way agreement test (sequential vs 2- vs 8-worker) plus the
# clause-exchange and portfolio-attack suites, all under the race
# detector. rilvet ran repo-wide above; this stage is the targeted
# correctness gate for the racing machinery itself.
go test -race -run 'ThreeWay|ClauseExchange|Portfolio|StatsAdd|CrossMode' \
    ./internal/sat/ ./internal/attack/

echo "== portfolio gate: clause-exchange fuzz smoke =="
go test ./internal/sat/ -run='^$' -fuzz='^FuzzClauseExchange$' -fuzztime=10s

echo "== fuzz smoke (10s per parser/journal/audit target) =="
for target in FuzzParseBench FuzzParseBenchLax FuzzParseVerilog; do
    go test ./internal/netlist/ -run='^$' -fuzz="^${target}\$" -fuzztime=10s
done
go test ./internal/attack/ -run='^$' -fuzz='^FuzzJournalReplay$' -fuzztime=10s
go test ./internal/netlint/ -run='^$' -fuzz='^FuzzResilienceAnalyzers$' -fuzztime=10s
go test ./internal/golint/ -run='^$' -fuzz='^FuzzSuppressionParse$' -fuzztime=10s
for target in FuzzCacheKeyCanonical FuzzCacheEntryDecode; do
    go test ./internal/cache/ -run='^$' -fuzz="^${target}\$" -fuzztime=10s
done

echo "== netlint: checked-in benchmarks =="
go run ./cmd/netlint testdata/...

echo "== netlint: freshly locked circuit (full analyzer set incl. audit) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/locker -in testdata/c17.bench -scheme ril -size 2x2 -blocks 1 \
    -seed 1 -out "$tmp/locked.bench" -keyout "$tmp/key.txt"
go run ./cmd/netlint -key "$tmp/key.txt" "$tmp/locked.bench"

echo "== netlint: resilience audit catches the planted weak fixture =="
if go run ./cmd/netlint -scan cmd/netlint/testdata/audit_redundant_scan.json \
    cmd/netlint/testdata/audit_redundant.bench > "$tmp/audit.out" 2>&1; then
    echo "ci: netlint passed the planted redundant-key fixture" >&2
    cat "$tmp/audit.out" >&2
    exit 1
fi
for want in 'key-const-prop' 'key-equivalence' 'removal-vulnerability' 'scan-exposure' \
    'effective key length 3 of 7'; do
    grep -q "$want" "$tmp/audit.out" || {
        echo "ci: audit output missing \"$want\":" >&2
        cat "$tmp/audit.out" >&2
        exit 1
    }
done
echo "ci: audit reports effective key length 3 of 7 on the planted fixture"

echo "== netlint: broken netlists must be rejected =="
cat > "$tmp/cycle.bench" <<'EOF'
INPUT(x)
OUTPUT(y)
y = AND(a, x)
a = OR(y, x)
EOF
if go run ./cmd/netlint "$tmp/cycle.bench" > "$tmp/cycle.out" 2>&1; then
    echo "ci: netlint accepted a cyclic netlist" >&2
    cat "$tmp/cycle.out" >&2
    exit 1
fi
grep -q 'comb-cycle' "$tmp/cycle.out" || {
    echo "ci: cycle not attributed to comb-cycle:" >&2
    cat "$tmp/cycle.out" >&2
    exit 1
}

cat > "$tmp/deadkey.bench" <<'EOF'
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = NOT(a)
EOF
if go run ./cmd/netlint "$tmp/deadkey.bench" > "$tmp/deadkey.out" 2>&1; then
    echo "ci: netlint accepted a dead key bit" >&2
    cat "$tmp/deadkey.out" >&2
    exit 1
fi
grep -q 'key-influence' "$tmp/deadkey.out" || {
    echo "ci: dead key bit not attributed to key-influence:" >&2
    cat "$tmp/deadkey.out" >&2
    exit 1
}

echo "== kill-and-resume smoke =="
# A two-target checkpointed sweep: one quick target (locked c17) and
# one slow enough (~5s: quarter-scale c7552, two 8x8 blocks) that a
# SIGKILL at 2s lands mid-attack with DIPs already journaled. The
# resumed run must skip/replay without re-querying journaled DIPs and
# leave a complete manifest. If the machine is fast enough that the
# first run finishes before the kill, the resume degenerates to
# skipping both targets — still asserting a complete manifest.
go build -o "$tmp/satattack" ./cmd/satattack
go build -o "$tmp/benchgen" ./cmd/benchgen
go build -o "$tmp/locker" ./cmd/locker
"$tmp/benchgen" -name c7552 -scale 0.25 -out "$tmp/c7552.bench" >/dev/null
"$tmp/locker" -in "$tmp/c7552.bench" -scheme ril -size 8x8 -blocks 2 -seed 3 \
    -out "$tmp/slow.bench" -keyout "$tmp/slow.key" 2>/dev/null
"$tmp/locker" -in testdata/c17.bench -scheme ril -size 2x2 -blocks 1 -seed 17 \
    -out "$tmp/quick.bench" -keyout "$tmp/quick.key" 2>/dev/null
timeout -s KILL 2s "$tmp/satattack" \
    -locked "$tmp/quick.bench,$tmp/slow.bench" -key "$tmp/quick.key,$tmp/slow.key" \
    -timeout 120s -jobs 2 -checkpoint-dir "$tmp/ckpt" >/dev/null 2>&1 || true
"$tmp/satattack" \
    -locked "$tmp/quick.bench,$tmp/slow.bench" -key "$tmp/quick.key,$tmp/slow.key" \
    -timeout 120s -jobs 2 -checkpoint-dir "$tmp/ckpt" -resume > "$tmp/resume.out" 2>&1 || {
    echo "ci: resumed sweep failed:" >&2
    cat "$tmp/resume.out" >&2
    exit 1
}
done_count=$(grep -c '"status": "done"' "$tmp/ckpt/manifest.json" || true)
if [ "$done_count" != 2 ]; then
    echo "ci: manifest incomplete after resume ($done_count/2 done):" >&2
    cat "$tmp/ckpt/manifest.json" >&2
    exit 1
fi
echo "ci: kill-and-resume manifest complete (2/2 done)"

echo "== result-cache gate: cold vs warm report sweep (BENCH_9.json) =="
# The same SAT-runtime sweep (c17 from testdata plus synthesized c432,
# 2 block counts x 3 sizes = 12 attack cells) runs twice against one
# cache directory. The warm run must print byte-identical tables, be
# answered entirely from authenticated cache entries (12 hits, 0
# misses) and finish at least 5x faster than the cold run.
go build -o "$tmp/rilbench" ./cmd/rilbench
cache_dir="$tmp/rilcache"
bench_cmd() {
    "$tmp/rilbench" -exp satruntime -circuit testdata/c17.bench,c432 \
        -counts 1,2 -timeout 2s -seed 3 -cache-dir "$cache_dir" \
        > "$tmp/cache_$1.out" 2> "$tmp/cache_$1.err"
}
t0=$(date +%s%N)
bench_cmd cold
t1=$(date +%s%N)
bench_cmd warm
t2=$(date +%s%N)
cold_ms=$(( (t1 - t0) / 1000000 ))
warm_ms=$(( (t2 - t1) / 1000000 ))
[ "$warm_ms" -gt 0 ] || warm_ms=1
cmp -s "$tmp/cache_cold.out" "$tmp/cache_warm.out" || {
    echo "ci: warm sweep output differs from cold sweep output" >&2
    diff "$tmp/cache_cold.out" "$tmp/cache_warm.out" >&2 || true
    exit 1
}
# "rilbench: cache: H hits, M misses (I invalidated), ..." on stderr.
set -- $(awk -F'cache: ' '/rilbench: cache:/ { print $2 }' "$tmp/cache_warm.err" \
    | awk '{ gsub(",", ""); print $1, $3 }')
warm_hits=${1:-0}
warm_misses=${2:-mis}
if [ "$warm_hits" != 12 ] || [ "$warm_misses" != 0 ]; then
    echo "ci: warm sweep was not answered from cache ($warm_hits hits, $warm_misses misses):" >&2
    cat "$tmp/cache_warm.err" >&2
    exit 1
fi
speedup=$(awk -v c="$cold_ms" -v w="$warm_ms" 'BEGIN { printf "%.1f", c / w }')
printf '{\n  "name": "satruntime-c17-c432-cache",\n  "cold_ms": %s,\n  "warm_ms": %s,\n  "speedup": %s,\n  "warm_hits": %s,\n  "warm_misses": %s,\n  "hit_rate": 1.0\n}\n' \
    "$cold_ms" "$warm_ms" "$speedup" "$warm_hits" "$warm_misses" > BENCH_9.json
echo "ci: cold ${cold_ms}ms, warm ${warm_ms}ms (${speedup}x, ${warm_hits}/12 hits) -> BENCH_9.json"
ok=$(awk -v c="$cold_ms" -v w="$warm_ms" 'BEGIN { print (c >= 5 * w) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ci: warm sweep only ${speedup}x faster than cold (gate: 5x)" >&2
    exit 1
fi

echo "== rild daemon gate: load, metrics, drain =="
# The service daemon, built with the race detector, is flooded with
# 200 c17-class attack jobs by its own load harness: every job must
# reach a terminal state (0 lost, 0 duplicated), /metrics must be
# well-formed Prometheus text, a SIGTERM drain must exit 0 and leave
# no temp litter in the state directory, and rilvet must report zero
# findings over the daemon's packages specifically.
go run ./cmd/rilvet ./internal/serve/ ./cmd/rild/
go build -race -o "$tmp/rild" ./cmd/rild
rild_state="$tmp/rild-state"
"$tmp/rild" -state "$rild_state" -addr 127.0.0.1:0 -default-timeout 60s \
    > "$tmp/rild.out" 2> "$tmp/rild.err" &
rild_pid=$!
# The listening line doubles as the readiness signal.
i=0
while ! grep -q "rild: listening on " "$tmp/rild.out" 2>/dev/null; do
    kill -0 "$rild_pid" 2>/dev/null || {
        echo "ci: rild exited before listening" >&2
        cat "$tmp/rild.err" >&2
        exit 1
    }
    i=$((i + 1))
    [ "$i" -le 300 ] || { echo "ci: rild did not start in 30s" >&2; exit 1; }
    sleep 0.1
done
rild_addr=$(sed -n 's/^rild: listening on //p' "$tmp/rild.out" | head -n 1)
"$tmp/rild" -load 200 -load-concurrency 16 -addr "$rild_addr" \
    > "$tmp/rild_load.out" 2> "$tmp/rild_load.err" || {
    echo "ci: rild load harness failed:" >&2
    cat "$tmp/rild_load.out" "$tmp/rild_load.err" >&2
    kill -9 "$rild_pid" 2>/dev/null || true
    exit 1
}
grep -q "0 lost, 0 duplicated" "$tmp/rild_load.out" || {
    echo "ci: rild load report is missing the zero-loss invariant:" >&2
    cat "$tmp/rild_load.out" >&2
    kill -9 "$rild_pid" 2>/dev/null || true
    exit 1
}
sed -n 's/^rild: //p' "$tmp/rild_load.out"
# /metrics: every line is a comment or "name[{labels}] value", and the
# core daemon series must be present.
curl -sf "http://$rild_addr/metrics" > "$tmp/rild_metrics.txt" || {
    echo "ci: /metrics fetch failed" >&2
    kill -9 "$rild_pid" 2>/dev/null || true
    exit 1
}
awk '
    /^#/ { next }
    /^$/ { next }
    !/^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ {
        print "ci: malformed metrics line: " $0 > "/dev/stderr"
        bad = 1
    }
    END { exit bad }
' "$tmp/rild_metrics.txt"
for m in rild_up rild_jobs_accepted_total rild_jobs_done_total rild_oracle_queries_total; do
    grep -q "^$m[ {]" "$tmp/rild_metrics.txt" || {
        echo "ci: /metrics is missing $m" >&2
        exit 1
    }
done
accepted=$(sed -n 's/^rild_jobs_accepted_total //p' "$tmp/rild_metrics.txt")
done_jobs=$(sed -n 's/^rild_jobs_done_total //p' "$tmp/rild_metrics.txt")
[ "$accepted" = 200 ] && [ "$done_jobs" = 200 ] || {
    echo "ci: daemon counters disagree with the load (accepted=$accepted done=$done_jobs, want 200/200)" >&2
    exit 1
}
kill -TERM "$rild_pid"
wait "$rild_pid" || {
    echo "ci: rild exited nonzero after SIGTERM drain:" >&2
    cat "$tmp/rild.err" >&2
    exit 1
}
leftover=$(find "$rild_state" -name '*.tmp' | wc -l)
[ "$leftover" = 0 ] || {
    echo "ci: drained rild left $leftover temp file(s) in $rild_state" >&2
    exit 1
}
echo "ci: rild served 200/200 jobs, metrics well-formed, drain clean"

echo "ci: all checks passed"
