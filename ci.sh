#!/bin/sh
# ci.sh — the full local CI gate. Run from the repository root:
#
#   ./ci.sh
#
# Steps: formatting, vet, build, tests under the race detector, a
# doubled -race pass over the sweep runner (scheduling-sensitive), a
# fuzz smoke stage (10s per parser target), then the netlint gate —
# every checked-in .bench benchmark and a freshly locked circuit must
# lint clean, and deliberately broken netlists (combinational cycle,
# dead key bit) must be rejected with the right analyzer named.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== sweep runner under -race, doubled =="
go test -race -count=2 ./internal/sweep/

echo "== fuzz smoke (10s per parser target) =="
for target in FuzzParseBench FuzzParseBenchLax FuzzParseVerilog; do
    go test ./internal/netlist/ -run='^$' -fuzz="^${target}\$" -fuzztime=10s
done

echo "== netlint: checked-in benchmarks =="
go run ./cmd/netlint testdata/...

echo "== netlint: freshly locked circuit =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/locker -in testdata/c17.bench -scheme ril -size 2x2 -blocks 1 \
    -seed 1 -out "$tmp/locked.bench" -keyout "$tmp/key.txt"
go run ./cmd/netlint -key "$tmp/key.txt" "$tmp/locked.bench"

echo "== netlint: broken netlists must be rejected =="
cat > "$tmp/cycle.bench" <<'EOF'
INPUT(x)
OUTPUT(y)
y = AND(a, x)
a = OR(y, x)
EOF
if go run ./cmd/netlint "$tmp/cycle.bench" > "$tmp/cycle.out" 2>&1; then
    echo "ci: netlint accepted a cyclic netlist" >&2
    cat "$tmp/cycle.out" >&2
    exit 1
fi
grep -q 'comb-cycle' "$tmp/cycle.out" || {
    echo "ci: cycle not attributed to comb-cycle:" >&2
    cat "$tmp/cycle.out" >&2
    exit 1
}

cat > "$tmp/deadkey.bench" <<'EOF'
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = NOT(a)
EOF
if go run ./cmd/netlint "$tmp/deadkey.bench" > "$tmp/deadkey.out" 2>&1; then
    echo "ci: netlint accepted a dead key bit" >&2
    cat "$tmp/deadkey.out" >&2
    exit 1
fi
grep -q 'key-influence' "$tmp/deadkey.out" || {
    echo "ci: dead key bit not attributed to key-influence:" >&2
    cat "$tmp/deadkey.out" >&2
    exit 1
}

echo "ci: all checks passed"
