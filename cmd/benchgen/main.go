// Command benchgen synthesizes the benchmark suite and writes .bench
// files: ISCAS/ITC profile circuits (c7552, s35932, s38584, b15, b20)
// and the CEP cores (AES round, SHA-256 compression, MD5 steps, GPS
// C/A code generator).
//
// Usage:
//
//	benchgen -name c7552 -scale 0.25 -out c7552.bench
//	benchgen -name AES -cep full -out aes.bench
//	benchgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/netlist"
)

func main() {
	var (
		name   = flag.String("name", "", "benchmark name (see -list)")
		scale  = flag.Float64("scale", 1.0, "scale for ISCAS profiles (0,1]")
		cep    = flag.String("cep", "full", "CEP size class: full|small")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "bench", "output format: bench|verilog")
		list   = flag.Bool("list", false, "list available benchmarks")
	)
	flag.Parse()

	if *list {
		fmt.Println("ISCAS/ITC profiles:")
		for _, p := range circuit.ISCASProfiles() {
			fmt.Printf("  %-8s %5d in, %4d out, %6d gates\n", p.Name, p.Inputs, p.Outputs, p.Gates)
		}
		fmt.Println("CEP cores: AES, SHA-256, MD5, GPS, DES, FIR")
		return
	}
	nl, err := build(*name, *scale, *cep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		w = f
	}
	switch *format {
	case "bench":
		err = nl.WriteBench(w)
	case "verilog":
		err = nl.WriteVerilog(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err == nil && f != nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	stats, err := nl.ComputeStats()
	if err == nil {
		fmt.Fprintln(os.Stderr, stats.String())
	}
}

func build(name string, scale float64, cepClass string) (*netlist.Netlist, error) {
	if p, ok := circuit.ProfileByName(name); ok {
		return p.Synthesize(scale)
	}
	suite, err := circuit.CEPSuite(cepClass)
	if err != nil {
		return nil, err
	}
	if nl, ok := suite[name]; ok {
		return nl, nil
	}
	return nil, fmt.Errorf("unknown benchmark %q (use -list)", name)
}
