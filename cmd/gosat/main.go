// Command gosat runs the library's CDCL solver on a DIMACS CNF file —
// a standalone check that the SAT substrate behaves like any other
// solver (and a convenient way to benchmark it against instances from
// elsewhere).
//
// Usage:
//
//	gosat [-timeout 60s] [-model] problem.cnf
//	cat problem.cnf | gosat
//
// Exit status: 10 = SAT, 20 = UNSAT, 0 = unknown (matching the SAT
// competition convention).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func main() {
	var (
		timeout   = flag.Duration("timeout", 0, "abort after this wall-clock budget (0 = none)")
		model     = flag.Bool("model", true, "print the satisfying assignment (v lines)")
		stats     = flag.Bool("stats", true, "print solver statistics (c line)")
		portfolio = flag.Int("portfolio", 1, "race N diversified CDCL workers, first verdict wins (<2 = sequential)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "gosat:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	f, err := cnf.ParseDimacs(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gosat:", err)
		os.Exit(1)
	}

	s := sat.NewEngine(*portfolio)
	start := time.Now()
	status := sat.Unsat
	if s.AddFormula(f) {
		if *timeout > 0 {
			s.SetDeadline(start.Add(*timeout))
		}
		status = s.Solve()
	}
	elapsed := time.Since(start)

	if *stats {
		fmt.Printf("c vars=%d clauses=%d elapsed=%v\n", f.NumVars, f.NumClauses(), elapsed.Round(time.Microsecond))
		fmt.Printf("c %v\n", s.Stats())
	}
	switch status {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if *model {
			fmt.Print("v")
			for v := 0; v < f.NumVars; v++ {
				lit := v + 1
				if !s.Model()[v] {
					lit = -lit
				}
				fmt.Printf(" %d", lit)
			}
			fmt.Println(" 0")
		}
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
	}
}
