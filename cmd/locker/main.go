// Command locker obfuscates a gate-level .bench netlist with
// RIL-Blocks or one of the baseline schemes, emitting the locked
// netlist plus the correct key.
//
// Usage:
//
//	locker -in c7552.bench -scheme ril -size 8x8x8 -blocks 3 \
//	       -out locked.bench -keyout key.txt
//	locker -in c7552.bench -scheme xor -keybits 32 -out locked.bench
//
// Schemes: ril, lut, xor, sarlock, antisat, sfll, caslock, meso.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/netlint"
	"repro/internal/netlist"
)

func main() {
	var (
		in      = flag.String("in", "", "input .bench netlist")
		out     = flag.String("out", "", "locked .bench output (default stdout)")
		keyout  = flag.String("keyout", "", "key file output (name=bit per line; default stderr)")
		scheme  = flag.String("scheme", "ril", "ril|lut|xor|sarlock|antisat|sfll|caslock|meso")
		size    = flag.String("size", "8x8x8", "RIL-Block geometry (2x2, 8x8, 8x8x8, 4x4x4, ...)")
		blocks  = flag.Int("blocks", 1, "number of RIL-Blocks / LUTs / MESO gates")
		keybits = flag.Int("keybits", 16, "key width for xor/sarlock/antisat/sfll/caslock")
		hd      = flag.Int("hd", 0, "SFLL Hamming distance h")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		scan    = flag.Bool("scan", false, "add scan-enable obfuscation (ril only)")
		nolint  = flag.Bool("nolint", false, "emit the locked netlist even when netlint finds Error-level defects")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "locker: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	orig, err := netlist.ParseBench(*in, f)
	f.Close()
	if err != nil {
		fail(err)
	}

	locked, keyPos, key, lintOpts, extra, err := lock(orig, *scheme, *size, *blocks, *keybits, *hd, *seed, *scan)
	if err != nil {
		fail(err)
	}

	// Refuse to emit a structurally unsound or weakened lock: a cycle,
	// an undriven net, or dead key material is a defect of the lock, not
	// a property for the attacker to discover. The emit gate runs the
	// cheap hygiene set only; the cofactor-sweeping resilience audit is
	// a separate stage (cmd/netlint, the ci.sh audit gate).
	lint, err := netlint.Run(locked, lintOpts, netlint.Hygiene()...)
	if err != nil {
		fail(err)
	}
	for _, d := range lint.Errors() {
		fmt.Fprintf(os.Stderr, "locker: netlint: %s\n", d)
	}
	if lint.HasErrors() {
		if !*nolint {
			fail(fmt.Errorf("locked netlist failed %d Error-level netlint check(s); rerun with -nolint to emit anyway", lint.Count(netlint.Error)))
		}
		fmt.Fprintln(os.Stderr, "locker: -nolint set, emitting despite netlint errors")
	}
	if kr := lint.KeyReport; kr != nil {
		fmt.Fprintf(os.Stderr, "locker: effective key length %d of %d nominal bits\n", kr.Effective, kr.Nominal)
	}

	w := os.Stdout
	var of *os.File
	if *out != "" {
		of, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		w = of
	}
	if err := locked.WriteBench(w); err != nil {
		fail(err)
	}
	if of != nil {
		if err := of.Close(); err != nil {
			fail(err)
		}
	}

	kw := os.Stderr
	var kf *os.File
	if *keyout != "" {
		kf, err = os.Create(*keyout)
		if err != nil {
			fail(err)
		}
		kw = kf
	}
	bw := bufio.NewWriter(kw)
	for i, pos := range keyPos {
		name := locked.Gates[locked.Inputs[pos]].Name
		bit := 0
		if key[i] {
			bit = 1
		}
		fmt.Fprintf(bw, "%s=%d\n", name, bit)
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
	if kf != nil {
		if err := kf.Close(); err != nil {
			fail(err)
		}
	}
	if extra != "" {
		fmt.Fprintln(os.Stderr, extra)
	}
}

func lock(orig *netlist.Netlist, scheme, sizeStr string, blocks, keybits, hd int, seed int64, scan bool) (*netlist.Netlist, []int, []bool, netlint.Options, string, error) {
	switch scheme {
	case "ril":
		size, err := core.ParseSize(sizeStr)
		if err != nil {
			return nil, nil, nil, netlint.Options{}, "", err
		}
		res, err := core.Lock(orig, core.Options{
			Blocks: blocks, Size: size, Seed: seed, ScanEnable: scan,
		})
		if err != nil {
			return nil, nil, nil, netlint.Options{}, "", err
		}
		extra := fmt.Sprintf("locker: %s", res.Overhead())
		lintOpts := netlint.Options{
			Key: keyByName(res.Locked, res.KeyInputPos, res.Key),
			Scan: &netlint.ScanSpec{Chains: []netlint.ScanChainSpec{{
				Name:     "keychain",
				Width:    core.NewKeyChain(res).Len(),
				Cells:    res.KeyNames,
				KeyChain: true,
			}}},
		}
		return res.Locked, res.KeyInputPos, res.Key, lintOpts, extra, nil
	case "lut":
		l, err := baselines.LUTLock(orig, blocks, seed)
		return unpack(l, err)
	case "xor":
		l, err := baselines.XORLock(orig, keybits, seed)
		return unpack(l, err)
	case "sarlock":
		l, err := baselines.SARLock(orig, keybits, seed)
		return unpack(l, err)
	case "antisat":
		l, err := baselines.AntiSAT(orig, keybits, seed)
		return unpack(l, err)
	case "sfll":
		l, err := baselines.SFLLHD(orig, keybits, hd, seed)
		return unpack(l, err)
	case "caslock":
		l, err := baselines.CASLock(orig, keybits, seed)
		return unpack(l, err)
	case "meso":
		l, err := baselines.MESOLock(orig, blocks, seed)
		return unpack(l, err)
	}
	return nil, nil, nil, netlint.Options{}, "", fmt.Errorf("unknown scheme %q", scheme)
}

func unpack(l *baselines.Locked, err error) (*netlist.Netlist, []int, []bool, netlint.Options, string, error) {
	if err != nil {
		return nil, nil, nil, netlint.Options{}, "", err
	}
	opts := netlint.Options{Key: keyByName(l.Netlist, l.KeyPos, l.Key)}
	return l.Netlist, l.KeyPos, l.Key, opts, "", nil
}

// keyByName maps key input names to their correct values for the
// const-lut analyzer.
func keyByName(nl *netlist.Netlist, keyPos []int, key []bool) map[string]bool {
	m := make(map[string]bool, len(key))
	for i, pos := range keyPos {
		m[nl.Gates[nl.Inputs[pos]].Name] = key[i]
	}
	return m
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "locker:", err)
	os.Exit(1)
}
