// Command locker obfuscates a gate-level .bench netlist with
// RIL-Blocks or one of the baseline schemes, emitting the locked
// netlist plus the correct key.
//
// Usage:
//
//	locker -in c7552.bench -scheme ril -size 8x8x8 -blocks 3 \
//	       -out locked.bench -keyout key.txt
//	locker -in c7552.bench -scheme xor -keybits 32 -out locked.bench
//
// Schemes: ril, lut, xor, sarlock, antisat, sfll, caslock, meso.
//
// -cache-dir memoizes the locked artifact (netlist + key + overhead
// note) in the authenticated result cache, keyed by the input netlist
// bytes and every locking option; only artifacts that passed the
// netlint emit gate are ever stored. -no-cache bypasses the cache,
// -cache-max caps the size GC enforces on exit.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/baselines"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/netlint"
	"repro/internal/netlist"
)

// lockedArtifact is the cacheable outcome of one locker invocation.
type lockedArtifact struct {
	Bench string   `json:"bench"`           // locked netlist, .bench text
	Key   []string `json:"key"`             // "name=bit" lines in key order
	Extra string   `json:"extra,omitempty"` // overhead note for stderr
}

func main() {
	var (
		in      = flag.String("in", "", "input .bench netlist")
		out     = flag.String("out", "", "locked .bench output (default stdout)")
		keyout  = flag.String("keyout", "", "key file output (name=bit per line; default stderr)")
		scheme  = flag.String("scheme", "ril", "ril|lut|xor|sarlock|antisat|sfll|caslock|meso")
		size    = flag.String("size", "8x8x8", "RIL-Block geometry (2x2, 8x8, 8x8x8, 4x4x4, ...)")
		blocks  = flag.Int("blocks", 1, "number of RIL-Blocks / LUTs / MESO gates")
		keybits = flag.Int("keybits", 16, "key width for xor/sarlock/antisat/sfll/caslock")
		hd      = flag.Int("hd", 0, "SFLL Hamming distance h")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		scan    = flag.Bool("scan", false, "add scan-enable obfuscation (ril only)")
		nolint  = flag.Bool("nolint", false, "emit the locked netlist even when netlint finds Error-level defects")
	)
	var cacheFlags cache.Flags
	cacheFlags.Register(flag.CommandLine)
	flag.Parse()

	// SIGINT/SIGTERM aborts before the next stage boundary (lock, lint,
	// emit) rather than writing a partial artifact; cache GC still runs
	// and the exit is nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "locker: -in is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	orig, err := netlist.ParseBench(*in, bytes.NewReader(raw))
	if err != nil {
		fail(err)
	}

	c, err := cacheFlags.Open()
	if err != nil {
		fail(err)
	}
	var ck cache.Key
	if c != nil {
		ck, err = cache.NewKey("locker-artifact").
			Bytes("input", raw).
			Options("opts", map[string]any{
				"scheme": *scheme, "size": *size, "blocks": *blocks,
				"keybits": *keybits, "hd": *hd, "seed": *seed,
				"scan": *scan, "nolint": *nolint,
			}).
			Key()
		if err != nil {
			fail(err)
		}
	}
	if ck.Valid() {
		if hit, ok := c.Get(ck); ok {
			var art lockedArtifact
			if err := json.Unmarshal(hit, &art); err == nil {
				// Stored artifacts passed the netlint emit gate when they
				// were computed, so the gate does not need to re-run.
				fmt.Fprintln(os.Stderr, "locker: artifact served from cache")
				if err := emit(&art, *out, *keyout); err != nil {
					fail(err)
				}
				closeCache(&cacheFlags, c)
				return
			}
		}
	}

	checkInterrupted(ctx, &cacheFlags, c)
	locked, keyPos, key, lintOpts, extra, err := lock(orig, *scheme, *size, *blocks, *keybits, *hd, *seed, *scan)
	if err != nil {
		fail(err)
	}
	checkInterrupted(ctx, &cacheFlags, c)

	// Refuse to emit a structurally unsound or weakened lock: a cycle,
	// an undriven net, or dead key material is a defect of the lock, not
	// a property for the attacker to discover. The emit gate runs the
	// cheap hygiene set only; the cofactor-sweeping resilience audit is
	// a separate stage (cmd/netlint, the ci.sh audit gate).
	lint, err := netlint.Run(locked, lintOpts, netlint.Hygiene()...)
	if err != nil {
		fail(err)
	}
	for _, d := range lint.Errors() {
		fmt.Fprintf(os.Stderr, "locker: netlint: %s\n", d)
	}
	if lint.HasErrors() {
		if !*nolint {
			fail(fmt.Errorf("locked netlist failed %d Error-level netlint check(s); rerun with -nolint to emit anyway", lint.Count(netlint.Error)))
		}
		fmt.Fprintln(os.Stderr, "locker: -nolint set, emitting despite netlint errors")
	}
	if kr := lint.KeyReport; kr != nil {
		fmt.Fprintf(os.Stderr, "locker: effective key length %d of %d nominal bits\n", kr.Effective, kr.Nominal)
	}

	var bench bytes.Buffer
	if err := locked.WriteBench(&bench); err != nil {
		fail(err)
	}
	art := &lockedArtifact{Bench: bench.String(), Extra: extra}
	for i, pos := range keyPos {
		name := locked.Gates[locked.Inputs[pos]].Name
		bit := 0
		if key[i] {
			bit = 1
		}
		art.Key = append(art.Key, fmt.Sprintf("%s=%d", name, bit))
	}
	checkInterrupted(ctx, &cacheFlags, c)
	// Only lint-clean (or explicitly -nolint) artifacts reach this
	// point, so everything stored is safe to re-emit without re-linting.
	if ck.Valid() {
		if raw, err := json.Marshal(art); err == nil {
			_ = c.Put(ck, raw)
		}
	}
	if err := emit(art, *out, *keyout); err != nil {
		fail(err)
	}
	closeCache(&cacheFlags, c)
}

// emit writes the locked netlist to out (default stdout) and the key
// lines to keyout (default stderr), then the overhead note.
func emit(art *lockedArtifact, out, keyout string) error {
	w := os.Stdout
	var of *os.File
	var err error
	if out != "" {
		of, err = os.Create(out)
		if err != nil {
			return err
		}
		w = of
	}
	if _, err := w.WriteString(art.Bench); err != nil {
		return err
	}
	if of != nil {
		if err := of.Close(); err != nil {
			return err
		}
	}

	kw := os.Stderr
	var kf *os.File
	if keyout != "" {
		kf, err = os.Create(keyout)
		if err != nil {
			return err
		}
		kw = kf
	}
	bw := bufio.NewWriter(kw)
	for _, line := range art.Key {
		fmt.Fprintln(bw, line)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if kf != nil {
		if err := kf.Close(); err != nil {
			return err
		}
	}
	if art.Extra != "" {
		fmt.Fprintln(os.Stderr, art.Extra)
	}
	return nil
}

// closeCache runs exit-time cache GC and prints the counters.
func closeCache(f *cache.Flags, c *cache.Cache) {
	if err := f.Close(c, os.Stderr, "locker"); err != nil {
		fmt.Fprintln(os.Stderr, "locker: cache gc:", err)
	}
}

// checkInterrupted aborts at a stage boundary once a signal lands: no
// partial artifact is emitted, cache GC still runs, exit is nonzero.
func checkInterrupted(ctx context.Context, f *cache.Flags, c *cache.Cache) {
	if ctx.Err() == nil {
		return
	}
	closeCache(f, c)
	fmt.Fprintln(os.Stderr, "locker: interrupted; no artifact emitted")
	os.Exit(1)
}

func lock(orig *netlist.Netlist, scheme, sizeStr string, blocks, keybits, hd int, seed int64, scan bool) (*netlist.Netlist, []int, []bool, netlint.Options, string, error) {
	switch scheme {
	case "ril":
		size, err := core.ParseSize(sizeStr)
		if err != nil {
			return nil, nil, nil, netlint.Options{}, "", err
		}
		res, err := core.Lock(orig, core.Options{
			Blocks: blocks, Size: size, Seed: seed, ScanEnable: scan,
		})
		if err != nil {
			return nil, nil, nil, netlint.Options{}, "", err
		}
		extra := fmt.Sprintf("locker: %s", res.Overhead())
		lintOpts := netlint.Options{
			Key: keyByName(res.Locked, res.KeyInputPos, res.Key),
			Scan: &netlint.ScanSpec{Chains: []netlint.ScanChainSpec{{
				Name:     "keychain",
				Width:    core.NewKeyChain(res).Len(),
				Cells:    res.KeyNames,
				KeyChain: true,
			}}},
		}
		return res.Locked, res.KeyInputPos, res.Key, lintOpts, extra, nil
	case "lut":
		l, err := baselines.LUTLock(orig, blocks, seed)
		return unpack(l, err)
	case "xor":
		l, err := baselines.XORLock(orig, keybits, seed)
		return unpack(l, err)
	case "sarlock":
		l, err := baselines.SARLock(orig, keybits, seed)
		return unpack(l, err)
	case "antisat":
		l, err := baselines.AntiSAT(orig, keybits, seed)
		return unpack(l, err)
	case "sfll":
		l, err := baselines.SFLLHD(orig, keybits, hd, seed)
		return unpack(l, err)
	case "caslock":
		l, err := baselines.CASLock(orig, keybits, seed)
		return unpack(l, err)
	case "meso":
		l, err := baselines.MESOLock(orig, blocks, seed)
		return unpack(l, err)
	}
	return nil, nil, nil, netlint.Options{}, "", fmt.Errorf("unknown scheme %q", scheme)
}

func unpack(l *baselines.Locked, err error) (*netlist.Netlist, []int, []bool, netlint.Options, string, error) {
	if err != nil {
		return nil, nil, nil, netlint.Options{}, "", err
	}
	opts := netlint.Options{Key: keyByName(l.Netlist, l.KeyPos, l.Key)}
	return l.Netlist, l.KeyPos, l.Key, opts, "", nil
}

// keyByName maps key input names to their correct values for the
// const-lut analyzer.
func keyByName(nl *netlist.Netlist, keyPos []int, key []bool) map[string]bool {
	m := make(map[string]bool, len(key))
	for i, pos := range keyPos {
		m[nl.Gates[nl.Inputs[pos]].Name] = key[i]
	}
	return m
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "locker:", err)
	os.Exit(1)
}
