// Command mramsim exercises the device-level MRAM LUT models: the
// Fig. 5 transient waveform, the Fig. 6 Monte-Carlo sweep, the Table IV
// energy table and the power side-channel comparison.
//
// Usage:
//
//	mramsim -wave > fig5.csv
//	mramsim -mc 100
//	mramsim -energy
//	mramsim -psca -traces 400
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	var (
		wave   = flag.Bool("wave", false, "emit the Fig. 5 transient waveform as CSV")
		mc     = flag.Int("mc", 0, "run an N-instance Monte-Carlo sweep (Fig. 6)")
		energy = flag.Bool("energy", false, "print the Table IV energy table")
		psca   = flag.Bool("psca", false, "run the CPA comparison (SRAM vs MRAM)")
		traces = flag.Int("traces", 400, "power traces for -psca")
		noise  = flag.Float64("noise", 0.05, "relative measurement noise for -psca")
		seed   = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	did := false
	if *wave {
		did = true
		if err := report.Fig5(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *mc > 0 {
		did = true
		t, _ := report.Fig6(*mc, *seed)
		fmt.Println(t.String())
	}
	if *energy {
		did = true
		t, err := report.Table4(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.String())
	}
	if *psca {
		did = true
		t, err := report.PSCATable(*traces, *noise, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.String())
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mramsim:", err)
	os.Exit(1)
}
