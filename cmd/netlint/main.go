// Command netlint statically analyzes .bench netlists: combinational
// cycles (with the concrete cycle path), undriven nets, dead logic,
// key bits that influence no primary output (effective vs. nominal key
// length), constant/pass-through LUT configurations, and scan-chain
// integrity — plus the oracle-less resilience audit (key-cofactor
// constant propagation, key-equivalence funnels, removal-vulnerability
// matching, scan exposure) that computes the effective key length an
// oracle-less attacker faces. It parses laxly, so structurally broken
// netlists — the ones worth linting — are analyzed rather than
// rejected.
//
// Usage:
//
//	netlint [flags] <path ...>
//
// Each path may be a .bench file, a directory, or a Go-style dir/...
// pattern; directories are walked recursively for *.bench files.
//
//	netlint testdata/...
//	netlint -key key.txt locked.bench
//	netlint -scan chains.json -json locked.bench
//	netlint -json -analyzers comb-cycle,key-influence locked.bench
//
// The -scan file is the JSON form of netlint.ScanSpec:
//
//	{"chains": [{"name": "...", "width": 2, "cells": ["...", "..."], "key_chain": false}]}
//
// Exit status: 0 when no Error-level diagnostics were found, 1 when at
// least one netlist has errors, 2 on usage or I/O failure. JSON output
// is a deterministic array of netlint.Result values in input order, so
// downstream consumers (the planned lint daemon) can rely on stable
// field order and exit codes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/netlint"
	"repro/internal/netlist"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		keyFile   = fs.String("key", "", "key file (name=bit per line) enabling const-lut evaluation")
		scanFile  = fs.String("scan", "", "scan-chain spec (JSON) enabling the scan-integrity and scan-exposure analyzers")
		keyPrefix = fs.String("keyprefix", "keyinput", "key input name prefix")
		names     = fs.String("analyzers", "", "comma-separated analyzer subset (default: all, hygiene plus audit)")
		minSev    = fs.String("severity", "info", "minimum severity to print: info|warn|error")
		list      = fs.Bool("list", false, "list available analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range netlint.All() {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "netlint: no input files (try: netlint testdata/...)")
		return 2
	}
	threshold, err := netlint.ParseSeverity(*minSev)
	if err != nil {
		return fail(stderr, err)
	}
	// The CLI is the audit surface: with no explicit subset it runs
	// everything, not just Run's hygiene default.
	analyzers := netlint.All()
	if *names != "" {
		analyzers, err = netlint.ByName(strings.Split(*names, ",")...)
		if err != nil {
			return fail(stderr, err)
		}
	}
	opts := netlint.Options{KeyPrefix: *keyPrefix}
	if *keyFile != "" {
		opts.Key, err = readKeyFile(*keyFile)
		if err != nil {
			return fail(stderr, err)
		}
	}
	if *scanFile != "" {
		opts.Scan, err = readScanFile(*scanFile)
		if err != nil {
			return fail(stderr, err)
		}
	}

	files, err := expandPaths(fs.Args())
	if err != nil {
		return fail(stderr, err)
	}
	if len(files) == 0 {
		fmt.Fprintln(stderr, "netlint: no .bench files matched")
		return 2
	}

	failed := false
	var results []*netlint.Result
	for _, path := range files {
		res, err := lintFile(path, opts, analyzers)
		if err != nil {
			return fail(stderr, err)
		}
		if res.HasErrors() {
			failed = true
		}
		if *jsonOut {
			results = append(results, res)
			continue
		}
		printText(stdout, path, res, threshold)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return fail(stderr, err)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func printText(w io.Writer, path string, res *netlint.Result, threshold netlint.Severity) {
	printed := false
	for _, d := range res.Diagnostics {
		if d.Severity < threshold {
			continue
		}
		fmt.Fprintf(w, "%s: %s\n", path, d)
		printed = true
	}
	if kr := res.KeyReport; kr != nil && threshold == netlint.Info {
		fmt.Fprintf(w, "%s: key-influence histogram (outputs reached -> key bits):", path)
		for _, bin := range kr.Histogram {
			fmt.Fprintf(w, " %d->%d", bin.Outputs, bin.Keys)
		}
		fmt.Fprintln(w)
	}
	if rep := res.Resilience; rep != nil && threshold == netlint.Info {
		for _, pr := range rep.Pruned {
			fmt.Fprintf(w, "%s: resilience: %s bit %s (%s, %s proof): %s\n",
				path, pr.Class, pr.Key, pr.Analyzer, pr.Proof, pr.Reason)
		}
		for _, g := range rep.Linked {
			fmt.Fprintf(w, "%s: resilience: %s group {%s} via %s (%s proof)\n",
				path, g.Kind, strings.Join(g.Keys, ", "), g.Via, g.Proof)
		}
	}
	if printed || res.HasErrors() {
		fmt.Fprintf(w, "%s: %d error(s), %d warning(s)\n", path, res.Count(netlint.Error), res.Count(netlint.Warn))
	} else {
		fmt.Fprintf(w, "%s: ok\n", path)
	}
}

func lintFile(path string, opts netlint.Options, analyzers []*netlint.Analyzer) (*netlint.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Lax parse: the linter exists precisely to diagnose netlists the
	// strict parser would reject.
	nl, _, err := netlist.ParseBenchLax(path, f)
	if err != nil {
		return nil, err
	}
	return netlint.Run(nl, opts, analyzers...)
}

// expandPaths resolves files, directories and Go-style dir/...
// patterns into a sorted list of .bench files.
func expandPaths(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		root := strings.TrimSuffix(arg, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		if root == "" {
			root = "."
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".bench") {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

func readKeyFile(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	key := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kv := strings.SplitN(line, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("key file %s line %d: want name=bit, got %q", path, i+1, line)
		}
		key[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1]) == "1"
	}
	return key, nil
}

func readScanFile(path string) (*netlint.ScanSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var spec netlint.ScanSpec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scan spec %s: %w", path, err)
	}
	return &spec, nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "netlint:", err)
	return 2
}
