// Command netlint statically analyzes .bench netlists: combinational
// cycles (with the concrete cycle path), undriven nets, dead logic,
// key bits that influence no primary output (effective vs. nominal key
// length), constant/pass-through LUT configurations, and scan-chain
// integrity. It parses laxly, so structurally broken netlists — the
// ones worth linting — are analyzed rather than rejected.
//
// Usage:
//
//	netlint [flags] <path ...>
//
// Each path may be a .bench file, a directory, or a Go-style dir/...
// pattern; directories are walked recursively for *.bench files.
//
//	netlint testdata/...
//	netlint -key key.txt locked.bench
//	netlint -json -analyzers comb-cycle,key-influence locked.bench
//
// Exit status: 0 when no Error-level diagnostics were found, 1 when at
// least one netlist has errors, 2 on usage or I/O failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/netlint"
	"repro/internal/netlist"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		keyFile   = flag.String("key", "", "key file (name=bit per line) enabling const-lut evaluation")
		keyPrefix = flag.String("keyprefix", "keyinput", "key input name prefix")
		names     = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		minSev    = flag.String("severity", "info", "minimum severity to print: info|warn|error")
		list      = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range netlint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "netlint: no input files (try: netlint testdata/...)")
		os.Exit(2)
	}
	threshold, err := netlint.ParseSeverity(*minSev)
	if err != nil {
		fail(err)
	}
	var analyzers []*netlint.Analyzer
	if *names != "" {
		analyzers, err = netlint.ByName(strings.Split(*names, ",")...)
		if err != nil {
			fail(err)
		}
	}
	opts := netlint.Options{KeyPrefix: *keyPrefix}
	if *keyFile != "" {
		opts.Key, err = readKeyFile(*keyFile)
		if err != nil {
			fail(err)
		}
	}

	files, err := expandPaths(flag.Args())
	if err != nil {
		fail(err)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "netlint: no .bench files matched")
		os.Exit(2)
	}

	failed := false
	var results []*netlint.Result
	for _, path := range files {
		res, err := lintFile(path, opts, analyzers)
		if err != nil {
			fail(err)
		}
		if res.HasErrors() {
			failed = true
		}
		if *jsonOut {
			results = append(results, res)
			continue
		}
		printed := false
		for _, d := range res.Diagnostics {
			if d.Severity < threshold {
				continue
			}
			fmt.Printf("%s: %s\n", path, d)
			printed = true
		}
		if kr := res.KeyReport; kr != nil && threshold == netlint.Info {
			fmt.Printf("%s: key-influence histogram (outputs reached -> key bits):", path)
			for _, bin := range kr.Histogram {
				fmt.Printf(" %d->%d", bin.Outputs, bin.Keys)
			}
			fmt.Println()
		}
		if printed || res.HasErrors() {
			fmt.Printf("%s: %d error(s), %d warning(s)\n", path, res.Count(netlint.Error), res.Count(netlint.Warn))
		} else {
			fmt.Printf("%s: ok\n", path)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lintFile(path string, opts netlint.Options, analyzers []*netlint.Analyzer) (*netlint.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Lax parse: the linter exists precisely to diagnose netlists the
	// strict parser would reject.
	nl, _, err := netlist.ParseBenchLax(path, f)
	if err != nil {
		return nil, err
	}
	return netlint.Run(nl, opts, analyzers...)
}

// expandPaths resolves files, directories and Go-style dir/...
// patterns into a sorted list of .bench files.
func expandPaths(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		root := strings.TrimSuffix(arg, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		if root == "" {
			root = "."
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".bench") {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

func readKeyFile(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	key := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kv := strings.SplitN(line, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("key file %s line %d: want name=bit, got %q", path, i+1, line)
		}
		key[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1]) == "1"
	}
	return key, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netlint:", err)
	os.Exit(2)
}
