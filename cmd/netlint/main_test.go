package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// runCLI drives the command exactly as main does, minus os.Exit.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"clean", []string{"testdata/clean.bench"}, 0},
		{"findings", []string{"-scan", "testdata/audit_redundant_scan.json", "testdata/audit_redundant.bench"}, 1},
		{"findings-json", []string{"-json", "-scan", "testdata/audit_redundant_scan.json", "testdata/audit_redundant.bench"}, 1},
		{"parse-error", []string{"testdata/broken.bench"}, 2},
		{"missing-file", []string{"testdata/nonexistent.bench"}, 2},
		{"bad-flag", []string{"-nosuchflag"}, 2},
		{"no-args", []string{}, 2},
		{"bad-severity", []string{"-severity", "fatal", "testdata/clean.bench"}, 2},
		{"bad-analyzer", []string{"-analyzers", "nope", "testdata/clean.bench"}, 2},
		{"bad-scan-json", []string{"-scan", "testdata/audit_redundant.bench", "testdata/clean.bench"}, 2},
		{"list", []string{"-list"}, 0},
		// Error findings fail the run even when the severity filter
		// hides them from the text output.
		{"errors-filtered-still-fail", []string{"-severity", "error", "-analyzers", "key-const-prop", "testdata/audit_redundant.bench"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != tc.code {
				t.Fatalf("args %v: exit %d, want %d\nstdout:\n%s\nstderr:\n%s", tc.args, code, tc.code, stdout, stderr)
			}
		})
	}
}

// TestGolden locks down the exact bytes of both output modes on the
// planted-redundancy fixture. The JSON form is the machine interface —
// field order and content must stay stable for downstream consumers.
// Regenerate with: go test ./cmd/netlint -run TestGolden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		args   []string
	}{
		{"json", "audit_redundant.json", []string{"-json", "-scan", "testdata/audit_redundant_scan.json", "testdata/audit_redundant.bench"}},
		{"text", "audit_redundant.txt", []string{"-scan", "testdata/audit_redundant_scan.json", "testdata/audit_redundant.bench"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, []byte(stdout), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if stdout != string(want) {
				t.Fatalf("output drifted from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", path, stdout, want)
			}
		})
	}
}

// Two invocations over the same inputs must be byte-identical — the
// audit's sampled proofs are seeded, so nothing may leak run-to-run
// nondeterminism into the report.
func TestJSONDeterministic(t *testing.T) {
	args := []string{"-json", "-scan", "testdata/audit_redundant_scan.json", "testdata/audit_redundant.bench"}
	_, a, _ := runCLI(t, args...)
	_, b, _ := runCLI(t, args...)
	if a != b {
		t.Fatalf("JSON output not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestAnalyzerSubset(t *testing.T) {
	// Restricting to hygiene analyzers must hide the audit findings:
	// the planted fixture is hygiene-clean, so the run passes.
	code, stdout, stderr := runCLI(t,
		"-analyzers", "comb-cycle,const-lut,dead-gate,key-influence,scan-integrity,undriven",
		"testdata/audit_redundant.bench")
	if code != 0 {
		t.Fatalf("hygiene-only run: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}
