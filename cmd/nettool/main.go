// Command nettool is the netlist Swiss-army knife: statistics,
// resynthesis, format conversion (.bench ↔ structural Verilog), key
// binding, and SAT-based equivalence checking.
//
// Usage:
//
//	nettool -in a.bench -stats
//	nettool -in locked.bench -bindkey key.txt -opt -out activated.bench
//	nettool -in a.bench -format verilog -out a.v
//	nettool -in a.bench -equiv b.bench [-timeout 60s]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/netlist"
	"repro/internal/opt"
)

func main() {
	var (
		in      = flag.String("in", "", "input .bench netlist (required)")
		out     = flag.String("out", "", "output file (default stdout; only with -out actions)")
		format  = flag.String("format", "bench", "output format: bench|verilog")
		stats   = flag.Bool("stats", false, "print circuit statistics")
		doOpt   = flag.Bool("opt", false, "resynthesize (constant folding, CSE, ...)")
		bindKey = flag.String("bindkey", "", "bind key inputs from a key file (name=bit lines)")
		prefix  = flag.String("keyprefix", "keyinput", "key input name prefix for -bindkey")
		equiv   = flag.String("equiv", "", "prove SAT equivalence against this .bench file")
		timeout = flag.Duration("timeout", 60*time.Second, "equivalence-check timeout")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "nettool: -in is required")
		os.Exit(2)
	}
	nl, err := load(*in)
	if err != nil {
		fail(err)
	}

	if *bindKey != "" {
		keyPos := nl.GateIDsByPrefix(*prefix)
		if len(keyPos) == 0 {
			fail(fmt.Errorf("no key inputs with prefix %q", *prefix))
		}
		key, err := readKeyFile(*bindKey, nl, keyPos)
		if err != nil {
			fail(err)
		}
		nl, err = nl.BindInputs(keyPos, key)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "nettool: bound %d key bits\n", len(key))
	}

	if *doOpt {
		st, err := opt.Optimize(nl)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "nettool:", st)
	}

	if *stats {
		s, err := nl.ComputeStats()
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}

	if *equiv != "" {
		other, err := load(*equiv)
		if err != nil {
			fail(err)
		}
		eq, cex, err := attack.EquivalentSAT(nl, other, *timeout)
		if err != nil {
			fail(err)
		}
		if eq {
			fmt.Println("EQUIVALENT")
			return
		}
		fmt.Printf("NOT EQUIVALENT (counterexample inputs: %v)\n", cex)
		os.Exit(1)
	}

	if *out != "" || (!*stats && *equiv == "") {
		w := os.Stdout
		var f *os.File
		if *out != "" {
			f, err = os.Create(*out)
			if err != nil {
				fail(err)
			}
			w = f
		}
		switch *format {
		case "bench":
			err = nl.WriteBench(w)
		case "verilog":
			err = nl.WriteVerilog(w)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err == nil && f != nil {
			err = f.Close()
		}
		if err != nil {
			fail(err)
		}
	}
}

func load(path string) (*netlist.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return netlist.ParseBench(path, f)
}

func readKeyFile(path string, nl *netlist.Netlist, keyPos []int) ([]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byName := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kv := strings.SplitN(line, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad key line %q", line)
		}
		byName[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1]) == "1"
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	key := make([]bool, len(keyPos))
	for i, pos := range keyPos {
		name := nl.Gates[nl.Inputs[pos]].Name
		v, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("key file missing %q", name)
		}
		key[i] = v
	}
	return key, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nettool:", err)
	os.Exit(1)
}
