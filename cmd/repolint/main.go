// Command repolint enforces repo-local Go hygiene rules that go vet
// does not cover. Its single rule today: non-test code must not draw
// randomness from the math/rand (or math/rand/v2) global source —
// every consumer must construct an explicit seeded generator
// (rand.New(rand.NewSource(seed))) so that simulations, attacks and
// fuzz reproductions are replayable from a logged seed. Calls like
// rand.Intn, rand.Uint64 or rand.Seed on the package itself are
// findings; constructing sources and generators (rand.New,
// rand.NewSource, rand.NewPCG, ...) and referring to the package's
// types (rand.Rand, rand.Source) are not. _test.go files and testdata
// directories are exempt.
//
// repolint is built on the standard library go/parser and go/ast only
// — it must keep working in the dependency-free build environment, so
// golang.org/x/tools is off limits.
//
// Usage:
//
//	repolint <path ...>
//
// Each path may be a .go file, a directory, or a Go-style dir/...
// pattern (directories are always walked recursively; testdata,
// vendor and hidden directories are skipped).
//
// Exit status: 0 clean, 1 findings, 2 on usage, I/O or parse failure.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "repolint: no input paths (try: repolint ./...)")
		return 2
	}
	files, err := expandPaths(args)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	fset := token.NewFileSet()
	failed := false
	for _, path := range files {
		findings, err := lintFile(fset, path)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// allowedRandSelector lists the math/rand and math/rand/v2 package
// members that do NOT touch the global source: constructors for
// explicit generators and the package's type names.
var allowedRandSelector = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Source":    true,
	"Source64":  true,
	"Rand":      true,
	"Zipf":      true,
	// math/rand/v2 additions.
	"NewPCG":     true,
	"NewChaCha8": true,
	"PCG":        true,
	"ChaCha8":    true,
}

func isMathRand(importPath string) bool {
	return importPath == "math/rand" || importPath == "math/rand/v2"
}

// lintFile reports every use of the math/rand global source in a
// non-test Go file. Test files are skipped by name, so callers can
// point repolint at whole directories.
func lintFile(fset *token.FileSet, path string) ([]string, error) {
	if strings.HasSuffix(path, "_test.go") {
		return nil, nil
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}

	// Map the local names the file binds math/rand to. A dot import
	// makes global-source calls indistinguishable from local calls, so
	// it is a finding in itself; a blank import pulls in no names.
	randNames := map[string]string{}
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !isMathRand(p) {
			continue
		}
		name := p[strings.LastIndex(p, "/")+1:]
		if name == "v2" {
			name = "rand"
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch name {
		case "_":
			continue
		case ".":
			report(imp.Pos(), "dot import of %s hides global-source calls from review; import it by name and use an explicit seeded source", p)
			continue
		}
		randNames[name] = p
	}
	if len(randNames) == 0 {
		return findings, nil
	}

	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		p, ok := randNames[ident.Name]
		if !ok || allowedRandSelector[sel.Sel.Name] {
			return true
		}
		report(sel.Pos(), "%s.%s uses the %s global source; construct an explicit seeded generator instead (rand.New(rand.NewSource(seed)))",
			ident.Name, sel.Sel.Name, p)
		return true
	})
	return findings, nil
}

// expandPaths resolves files, directories and Go-style dir/...
// patterns into a sorted list of .go files, skipping testdata, vendor
// and hidden directories.
func expandPaths(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		root := strings.TrimSuffix(arg, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		if root == "" {
			root = "."
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(p, ".go") {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
