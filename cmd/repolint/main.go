// Command repolint is the deprecated name of cmd/rilvet. It began as
// a single-rule linter (no math/rand global source in non-test code);
// that rule now lives in internal/golint as the rand-global analyzer,
// first of the rilvet suite, and this command is a thin alias kept so
// existing ci.sh invocations and docs stay valid.
//
// Deprecated: use cmd/rilvet. The flags, paths and exit-code contract
// are identical (0 clean, 1 findings, 2 usage/I-O/parse failure).
package main

import (
	"os"

	"repro/internal/golint"
)

func main() {
	os.Exit(golint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
