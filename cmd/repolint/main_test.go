package main

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func lint(t *testing.T, path string) []string {
	t.Helper()
	findings, err := lintFile(token.NewFileSet(), path)
	if err != nil {
		t.Fatalf("lintFile(%s): %v", path, err)
	}
	return findings
}

func TestFlagsGlobalSourceUse(t *testing.T) {
	findings := lint(t, "testdata/bad_global.go")
	if len(findings) != 3 {
		t.Fatalf("bad_global.go: %d findings, want 3 (Seed, Intn, Int63):\n%s",
			len(findings), strings.Join(findings, "\n"))
	}
	for _, want := range []string{"mrand.Seed", "mrand.Intn", "mrand.Int63"} {
		found := false
		for _, f := range findings {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding for %s:\n%s", want, strings.Join(findings, "\n"))
		}
	}
}

func TestFlagsRandV2(t *testing.T) {
	findings := lint(t, "testdata/bad_v2.go")
	if len(findings) != 1 || !strings.Contains(findings[0], "math/rand/v2") {
		t.Fatalf("bad_v2.go: want one math/rand/v2 finding, got:\n%s", strings.Join(findings, "\n"))
	}
}

func TestFlagsDotImport(t *testing.T) {
	findings := lint(t, "testdata/bad_dot.go")
	if len(findings) != 1 || !strings.Contains(findings[0], "dot import") {
		t.Fatalf("bad_dot.go: want one dot-import finding, got:\n%s", strings.Join(findings, "\n"))
	}
}

func TestAllowsSeededSourceAndForeignRand(t *testing.T) {
	for _, path := range []string{"testdata/good_seeded.go", "testdata/good_crypto.go"} {
		if findings := lint(t, path); len(findings) != 0 {
			t.Errorf("%s: unexpected findings:\n%s", path, strings.Join(findings, "\n"))
		}
	}
}

func TestTestFilesExempt(t *testing.T) {
	if findings := lint(t, "testdata/good_test_exempt_test.go"); len(findings) != 0 {
		t.Fatalf("_test.go file was linted:\n%s", strings.Join(findings, "\n"))
	}
}

func TestRunExitCodes(t *testing.T) {
	runCode := func(args ...string) (int, string) {
		var stdout, stderr bytes.Buffer
		code := run(args, &stdout, &stderr)
		return code, stdout.String() + stderr.String()
	}
	if code, out := runCode("testdata/bad_global.go"); code != 1 {
		t.Errorf("bad fixture: exit %d, want 1\n%s", code, out)
	}
	if code, out := runCode("testdata/good_seeded.go"); code != 0 {
		t.Errorf("good fixture: exit %d, want 0\n%s", code, out)
	}
	if code, _ := runCode(); code != 2 {
		t.Error("no args must exit 2")
	}
	if code, _ := runCode("testdata/nonexistent.go"); code != 2 {
		t.Error("missing file must exit 2")
	}
	// The repo itself must be clean — this is the same invocation
	// ci.sh gates on.
	if code, out := runCode("../../..."); code != 0 {
		t.Errorf("repo is not repolint-clean (exit %d):\n%s", code, out)
	}
}
