// Fixture: dot imports hide global-source calls and are findings.
package fixture

import . "math/rand"

var _ = func() int { return Intn(6) }
