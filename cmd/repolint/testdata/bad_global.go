// Fixture: every flavor of global-source use repolint must flag.
package fixture

import (
	mrand "math/rand"
)

func roll() int {
	mrand.Seed(42)
	return mrand.Intn(6) + int(mrand.Int63()%6)
}
