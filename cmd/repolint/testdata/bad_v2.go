// Fixture: math/rand/v2 global-source use is flagged the same way.
package fixture

import "math/rand/v2"

func rollV2() int {
	return rand.IntN(6)
}
