// Fixture: crypto/rand shares the local name "rand" but is a
// different package — its package-level calls must not be flagged.
package fixture

import "crypto/rand"

func nonce(n int) ([]byte, error) {
	b := make([]byte, n)
	_, err := rand.Read(b)
	return b, err
}
