// Fixture: the blessed pattern — explicit seeded source, method calls
// on the generator value. repolint must stay silent.
package fixture

import "math/rand"

func draws(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

var _ rand.Source
var _ *rand.Rand
