// Fixture: _test.go files are exempt from the global-source rule.
package fixture

import "math/rand"

func shuffleForTest(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
