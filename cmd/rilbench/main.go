// Command rilbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rilbench -exp table1 [-timeout 5s] [-scale 0.25] [-counts 1,2,3]
//	rilbench -exp table2|table3|table4|table5|fig1|fig5|fig6|overhead|psca|dip
//	rilbench -exp satruntime -circuit c432,testdata/c17.bench [-counts 1,2]
//	rilbench -exp all
//
// Pass -cache-dir to memoize attack-table cells in the authenticated
// result cache: a repeated run with identical inputs is served from
// disk without re-running oracles or solvers (-no-cache bypasses,
// -cache-max caps the size GC enforces on exit).
//
// Runtimes are scaled: the paper used a 5-day timeout on full-size
// benchmarks; pass -scale 1.0 -timeout 120h to approximate that run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|fig1|fig5|fig6|overhead|psca|dip|satruntime|ablation|dynamic|audit|all")
		timeout = flag.Duration("timeout", 2*time.Second, "SAT-attack timeout per run (paper: 120h)")
		jobs    = flag.Int("jobs", 0, "parallel attack workers per experiment (0 = all CPUs, 1 = sequential)")
		scale   = flag.Float64("scale", 0.25, "benchmark circuit scale in (0,1]")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		counts  = flag.String("counts", "1,2,3,4,5,10,25,50,75,100", "Table I block counts")
		mc      = flag.Int("mc", 100, "Monte-Carlo instances for fig6")
		traces  = flag.Int("traces", 400, "power traces for psca")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonDir = flag.String("json", "", "also write each table as JSON into this directory")
		nolint  = flag.Bool("nolint", false, "skip the netlint gate on freshly locked circuits")
		ckptDir = flag.String("checkpoint-dir", "", "persist per-table sweep manifests under this directory")
		resume  = flag.Bool("resume", false, "resume from -checkpoint-dir: skip table cells already recorded done")
		pfolio  = flag.Int("portfolio", 1, "race N diversified CDCL workers per attack solver call (<2 = sequential)")
		circs   = flag.String("circuit", "", "comma-separated circuits for -exp satruntime: ISCAS profile names and/or .bench file paths")
	)
	var cacheFlags cache.Flags
	cacheFlags.Register(flag.CommandLine)
	flag.Parse()
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "rilbench: -resume requires -checkpoint-dir")
		os.Exit(1)
	}

	for _, d := range []struct {
		dir  string
		dest *string
	}{{*csvDir, &csvOut}, {*jsonDir, &jsonOut}} {
		if d.dir == "" {
			continue
		}
		if err := os.MkdirAll(d.dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "rilbench:", err)
			os.Exit(1)
		}
		*d.dest = d.dir
	}
	c, err := cacheFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rilbench:", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancels the table sweeps mid-cell: finished cells
	// stay in checkpoints and the cache, cache GC still runs, and the
	// exit is nonzero so scripts see the run did not complete.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := report.AttackConfig{Timeout: *timeout, Scale: *scale, Seed: *seed, NoLint: *nolint, Jobs: *jobs,
		CheckpointDir: *ckptDir, Resume: *resume, Portfolio: *pfolio, Cache: c, Context: ctx}
	runErr := run(*exp, cfg, *counts, *circs, *mc, *traces)
	if err := cacheFlags.Close(c, os.Stderr, "rilbench"); err != nil {
		fmt.Fprintln(os.Stderr, "rilbench: cache gc:", err)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "rilbench: interrupted; finished cells are checkpointed, re-run with -resume to continue")
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "rilbench:", runErr)
		os.Exit(1)
	}
}

// csvOut / jsonOut, when set, receive a CSV / JSON copy of every
// printed table.
var csvOut, jsonOut string

var csvSeq int

func run(exp string, cfg report.AttackConfig, countsCSV, circs string, mc, traces int) error {
	show := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		if csvOut != "" || jsonOut != "" {
			csvSeq++
		}
		if csvOut != "" {
			name := fmt.Sprintf("%s/%02d_%s.csv", csvOut, csvSeq, slug(t.Title))
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				return errors.Join(err, f.Close())
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "rilbench: wrote", name)
		}
		if jsonOut != "" {
			name := fmt.Sprintf("%s/%02d_%s.json", jsonOut, csvSeq, slug(t.Title))
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(t); err != nil {
				return errors.Join(err, f.Close())
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "rilbench: wrote", name)
		}
		return nil
	}
	switch exp {
	case "table1":
		counts, err := parseCounts(countsCSV)
		if err != nil {
			return err
		}
		return show(report.Table1(cfg, counts))
	case "table2":
		return show(report.Table2(), nil)
	case "table3":
		return show(report.Table3(cfg))
	case "table4":
		return show(report.Table4(cfg.Seed))
	case "table5":
		return show(report.Table5(cfg))
	case "fig1":
		return show(report.Fig1(cfg, 8))
	case "fig5":
		return report.Fig5(os.Stdout)
	case "fig6":
		t, _ := report.Fig6(mc, cfg.Seed)
		fmt.Println(t.String())
		return nil
	case "overhead":
		return show(report.OverheadTable(), nil)
	case "psca":
		return show(report.PSCATable(traces, 0.05, cfg.Seed))
	case "satruntime":
		counts, err := parseCounts(countsCSV)
		if err != nil {
			return err
		}
		if strings.TrimSpace(circs) == "" {
			return fmt.Errorf("-exp satruntime requires -circuit")
		}
		for _, name := range strings.Split(circs, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			orig, err := loadCircuit(name, cfg.Scale)
			if err != nil {
				return err
			}
			if err := show(report.SATRuntimeTable(cfg, orig, counts, nil)); err != nil {
				return err
			}
		}
		return nil
	case "dip":
		return show(report.DIPGrowth(cfg, []int{4, 6, 8, 10}))
	case "ablation":
		return show(report.Ablation(cfg))
	case "onehot":
		return show(report.OneHotEncoding(cfg))
	case "sensitize":
		return show(report.Sensitization(cfg))
	case "ppa":
		return show(report.PPATable(cfg))
	case "lutsize":
		return show(report.LUTSizeTable(cfg, 6))
	case "dynamic":
		return show(report.DynamicMorphing(cfg, 2))
	case "audit":
		return show(report.ResilienceTable(cfg))
	case "all":
		counts, err := parseCounts(countsCSV)
		if err != nil {
			return err
		}
		if err := show(report.Table1(cfg, counts)); err != nil {
			return err
		}
		if err := show(report.Table2(), nil); err != nil {
			return err
		}
		if err := show(report.Table3(cfg)); err != nil {
			return err
		}
		if err := show(report.Table4(cfg.Seed)); err != nil {
			return err
		}
		if err := show(report.Table5(cfg)); err != nil {
			return err
		}
		if err := show(report.Fig1(cfg, 8)); err != nil {
			return err
		}
		t6, _ := report.Fig6(mc, cfg.Seed)
		fmt.Println(t6.String())
		if err := show(report.OverheadTable(), nil); err != nil {
			return err
		}
		if err := show(report.PSCATable(traces, 0.05, cfg.Seed)); err != nil {
			return err
		}
		if err := show(report.Ablation(cfg)); err != nil {
			return err
		}
		return show(report.DynamicMorphing(cfg, 2))
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

// loadCircuit resolves one -circuit element: an ISCAS/ITC profile name
// (synthesized at the configured scale) or a path to a .bench file
// (parsed as-is; scale does not apply to concrete netlists).
func loadCircuit(name string, scale float64) (*netlist.Netlist, error) {
	if prof, ok := circuit.ProfileByName(name); ok {
		return prof.Synthesize(scale)
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("circuit %q is neither a known profile nor a readable file: %w", name, err)
	}
	nl, err := netlist.ParseBench(name, f)
	return nl, errors.Join(err, f.Close())
}

// slug makes a filesystem-friendly name from a table title.
func slug(title string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			sb.WriteByte('_')
		}
		if sb.Len() >= 40 {
			break
		}
	}
	return strings.Trim(sb.String(), "_")
}

func parseCounts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no counts given")
	}
	return out, nil
}
