// Command rild is the lock/attack service daemon: it accepts lock,
// attack, lint and sweep jobs over HTTP JSON, runs them on a bounded
// worker pool with per-job deadlines and panic isolation, and persists
// every job — spec, DIP journal, outcome — under -state, so a killed
// daemon restarts and resumes in-flight attacks without repeating a
// single oracle query.
//
// Serve:
//
//	rild -state /var/lib/rild [-addr :8372] [-workers N] [-cache DIR]
//
// SIGINT/SIGTERM drains gracefully: stop accepting, give running jobs
// -drain-grace to finish, then interrupt them (their journals keep
// what they paid for), flush cache GC, exit 0.
//
// Load-test an already-running daemon:
//
//	rild -load 1000 -addr 127.0.0.1:8372
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8372", "listen address (serve) or daemon address (-load)")
		stateDir     = flag.String("state", "", "persistent state directory (required to serve)")
		workers      = flag.Int("workers", 0, "job workers (0 = all CPUs)")
		defTimeout   = flag.Duration("default-timeout", 2*time.Minute, "job deadline when the spec sets none (0 = none)")
		drainGrace   = flag.Duration("drain-grace", 10*time.Second, "how long a drain lets running jobs finish before interrupting them")
		loadJobs     = flag.Int("load", 0, "run as a load-test client: submit N attack jobs against -addr and exit")
		loadConc     = flag.Int("load-concurrency", 32, "load client goroutines")
		loadTenants  = flag.Int("load-tenants", 4, "load tenants")
		loadVariants = flag.Int("load-variants", 8, "distinct locked circuits in the load mix")
		loadKeyBits  = flag.Int("load-keybits", 5, "key bits per load circuit")
		loadTimeout  = flag.Duration("load-timeout", 30*time.Second, "server-side deadline per load job")
		loadNoCache  = flag.Bool("load-nocache", true, "submit load jobs with no_cache so every job runs live")
	)
	var cacheFlags cache.Flags
	cacheFlags.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *loadJobs > 0 {
		if err := runLoad(ctx, *addr, serve.LoadOptions{
			Jobs:        *loadJobs,
			Concurrency: *loadConc,
			Tenants:     *loadTenants,
			Variants:    *loadVariants,
			KeyBits:     *loadKeyBits,
			JobTimeout:  *loadTimeout,
			NoCache:     *loadNoCache,
		}); err != nil {
			fail(err)
		}
		return
	}

	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "rild: -state is required (or -load to run as a client)")
		os.Exit(2)
	}
	c, err := cacheFlags.Open()
	if err != nil {
		fail(err)
	}
	logger := log.New(os.Stderr, "rild: ", log.LstdFlags)
	srv, err := serve.New(serve.Options{
		StateDir:       *stateDir,
		Workers:        *workers,
		Cache:          c,
		DefaultTimeout: *defTimeout,
		Logf:           logger.Printf,
	})
	if err != nil {
		fail(err)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The actual address line doubles as the readiness signal for
	// scripts that started us on :0.
	fmt.Printf("rild: listening on %s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		defer recoverToErr(serveErr)
		serveErr <- hs.Serve(ln)
	}()

	select {
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Printf("signal received; draining (grace %v)", *drainGrace)
		srv.Drain(*drainGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = hs.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			logger.Printf("shutdown: %v", err)
		}
		logger.Printf("drained; exiting")
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}
}

// runLoad drives the load harness against a running daemon.
func runLoad(ctx context.Context, addr string, opt serve.LoadOptions) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	logger := log.New(os.Stderr, "rild: ", log.LstdFlags)
	rep, err := serve.LoadTest(ctx, base, opt, logger.Printf)
	if err != nil {
		return err
	}
	fmt.Printf("rild: %s\n", rep)
	if rep.Lost > 0 || rep.Duplicated > 0 {
		return fmt.Errorf("load test lost %d and duplicated %d jobs", rep.Lost, rep.Duplicated)
	}
	if rep.Done == 0 {
		return fmt.Errorf("load test completed no jobs")
	}
	return nil
}

// recoverToErr converts a panic in the HTTP serve goroutine into an
// error on the channel so main can report it instead of crashing.
func recoverToErr(ch chan<- error) {
	if r := recover(); r != nil {
		ch <- fmt.Errorf("http serve panicked: %v", r)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rild:", err)
	os.Exit(1)
}
