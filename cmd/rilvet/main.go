// Command rilvet runs the repository's Go-code static-analysis suite
// (internal/golint): determinism (rand-global, map-order, time-seed),
// concurrency (ctx-loop, goroutine-hygiene, mutex-oracle) and
// durability (sync-errcheck) invariants that the reproduction's
// replay, sweep and crash-safety guarantees depend on. It is the
// Go-source sibling of cmd/netlint, with the same exit-code contract.
//
// Usage:
//
//	rilvet [flags] <path ...>
//
//	rilvet ./...
//	rilvet -json internal/attack
//	rilvet -sarif rilvet.sarif -analyzers sync-errcheck,map-order ./...
//	rilvet -list
//
// False positives are silenced per line with a mandatory-reason
// comment: //rilvet:ignore <rule> <reason>. See DESIGN.md §11.
//
// Exit status: 0 when no unsuppressed finding was produced, 1 when at
// least one was, 2 on usage, I/O or parse failure.
package main

import (
	"os"

	"repro/internal/golint"
)

func main() {
	os.Exit(golint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
