// Command satattack mounts the oracle-guided SAT attack (or AppSAT)
// against a locked .bench netlist. The oracle is built from the locked
// netlist plus the correct key file produced by cmd/locker (in the
// paper's threat model the attacker has physical oracle access; here
// the activated chip is simulated).
//
// Usage:
//
//	satattack -locked locked.bench -key key.txt [-timeout 10s] [-appsat]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/netlist"
)

func main() {
	var (
		lockedPath = flag.String("locked", "", "locked .bench netlist")
		keyPath    = flag.String("key", "", "key file (name=bit per line) for the simulated oracle")
		prefix     = flag.String("keyprefix", "keyinput", "key input name prefix")
		timeout    = flag.Duration("timeout", 10*time.Second, "attack timeout (paper: 120h)")
		appsat     = flag.Bool("appsat", false, "run AppSAT instead of the exact SAT attack")
		bva        = flag.Bool("bva", false, "apply BVA preprocessing to the encoding")
		sensitize  = flag.Bool("sensitize", false, "run the key-sensitization attack instead")
		removal    = flag.Bool("removal", false, "run the structural removal attack instead")
		tracePath  = flag.String("trace", "", "write a per-DIP CSV trace (iteration,dip,oracle) to this file")
	)
	flag.Parse()
	if *lockedPath == "" || *keyPath == "" {
		fmt.Fprintln(os.Stderr, "satattack: -locked and -key are required")
		os.Exit(2)
	}

	f, err := os.Open(*lockedPath)
	if err != nil {
		fail(err)
	}
	locked, err := netlist.ParseBench(*lockedPath, f)
	f.Close()
	if err != nil {
		fail(err)
	}

	keyPos := locked.GateIDsByPrefix(*prefix)
	if len(keyPos) == 0 {
		fail(fmt.Errorf("no key inputs with prefix %q", *prefix))
	}
	key, err := readKey(*keyPath, locked, keyPos)
	if err != nil {
		fail(err)
	}

	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		fail(err)
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		fail(err)
	}

	fmt.Printf("satattack: %d key bits, %d functional inputs, %d outputs, timeout %v\n",
		len(keyPos), len(locked.Inputs)-len(keyPos), len(locked.Outputs), *timeout)

	if *sensitize {
		res, err := attack.Sensitize(locked, keyPos, oracle, 16, *timeout)
		if err != nil {
			fail(err)
		}
		fmt.Println("satattack:", res)
		return
	}
	if *removal {
		stripped, err := attack.StructuralRemoval(locked, keyPos, 1)
		if err != nil {
			fail(err)
		}
		strippedOracle, err := attack.NewSimOracle(stripped)
		if err != nil {
			fail(err)
		}
		e, err := attack.OracleErrorRate(strippedOracle, oracle, 16, 2)
		if err != nil {
			fail(err)
		}
		fmt.Printf("satattack: removal attack output error rate %.6f (0 = circuit recovered exactly)\n", e)
		return
	}
	if *appsat {
		opt := attack.DefaultAppSAT()
		opt.Timeout = *timeout
		res, err := attack.AppSAT(locked, keyPos, oracle, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println("satattack:", res)
		if res.Status == attack.KeyFound {
			reportKey(locked, keyPos, res.Key, oracle)
		}
		return
	}

	opts := attack.SATOptions{Timeout: *timeout, BVA: *bva}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer tf.Close()
		opts.Trace = tf
	}
	res, err := attack.SATAttack(locked, keyPos, oracle, opts)
	if err != nil {
		fail(err)
	}
	fmt.Println("satattack:", res)
	fmt.Println("satattack: oracle queries:", oracle.Queries())
	if res.Status == attack.KeyFound {
		reportKey(locked, keyPos, res.Key, oracle)
	} else {
		fmt.Println("satattack: TIMEOUT — the paper reports this outcome as infinity")
	}
}

func reportKey(locked *netlist.Netlist, keyPos []int, key []bool, oracle attack.Oracle) {
	e, err := attack.VerifyKey(locked, keyPos, key, oracle, 16, 1)
	if err != nil {
		fail(err)
	}
	fmt.Printf("satattack: recovered key verified, error rate %.6f\n", e)
	var sb strings.Builder
	for _, b := range key {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	fmt.Println("satattack: key =", sb.String())
}

func readKey(path string, locked *netlist.Netlist, keyPos []int) ([]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byName := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Split(line, "=")
		if len(eq) != 2 {
			return nil, fmt.Errorf("bad key line %q", line)
		}
		byName[strings.TrimSpace(eq[0])] = strings.TrimSpace(eq[1]) == "1"
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	key := make([]bool, len(keyPos))
	for i, pos := range keyPos {
		name := locked.Gates[locked.Inputs[pos]].Name
		v, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("key file missing %q", name)
		}
		key[i] = v
	}
	return key, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "satattack:", err)
	os.Exit(1)
}
