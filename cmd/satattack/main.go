// Command satattack mounts the oracle-guided SAT attack (or AppSAT)
// against one or more locked .bench netlists. The oracle is built from
// each locked netlist plus the correct key file produced by cmd/locker
// (in the paper's threat model the attacker has physical oracle
// access; here the activated chip is simulated).
//
// Usage:
//
//	satattack -locked locked.bench -key key.txt [-timeout 10s] [-appsat]
//	satattack -locked a.bench,b.bench,c.bench -key a.key,b.key,c.key \
//	          -jobs 4 -json results.json
//
// With comma-separated -locked/-key lists the targets run as a
// parallel sweep on -jobs workers (0 = all CPUs); -timeout applies per
// target. -json writes the full machine-readable results (status, key,
// DIP count, oracle queries, CDCL solver statistics) to a file, or to
// stdout with "-json -".
//
// -checkpoint-dir makes the attack crash-safe: every DIP and oracle
// response is journaled (fsync per record) to a per-target file in the
// directory, and sweeps record per-job completion in a manifest.
// Re-running with -resume skips targets the manifest records done and
// replays each partial journal without re-querying the oracle, then
// continues the attack. Corrupt checkpoint files degrade to a fresh
// start with a warning, never an error.
//
// -cache-dir memoizes finished targets in the authenticated result
// cache, keyed by the locked netlist, key file and attack options:
// re-attacking an unchanged target is answered from disk with zero
// oracle queries and zero solver calls (-no-cache bypasses, -cache-max
// caps the size enforced by GC on exit).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/netlist"
	"repro/internal/sat"
	"repro/internal/sweep"
)

// targetResult is the machine-readable outcome for one locked netlist.
type targetResult struct {
	Target     string    `json:"target"`
	KeyBits    int       `json:"key_bits"`
	Status     string    `json:"status"`
	Key        string    `json:"key,omitempty"`
	Iterations int       `json:"iterations"`
	Queries    int       `json:"queries"`
	Replayed   int       `json:"replayed,omitempty"`
	ErrorRate  float64   `json:"error_rate"`
	Solver     sat.Stats `json:"solver"`
}

// openJournal prepares the DIP journal for one target. Fresh mode
// truncates any stale journal; resume mode loads it, tolerating a torn
// tail and degrading a corrupt file to a fresh start with a warning.
func openJournal(path string, resume bool) (*attack.Journal, *attack.JournalData, error) {
	if !resume {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, nil, err
		}
	}
	j, data, err := attack.OpenJournal(path)
	if err == nil {
		return j, data, nil
	}
	if !errors.Is(err, attack.ErrJournalCorrupt) {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "satattack: %s: corrupt journal, starting fresh: %v\n", path, err)
	if err := os.Remove(path); err != nil {
		return nil, nil, err
	}
	j, _, err = attack.OpenJournal(path)
	return j, nil, err
}

func main() {
	var (
		lockedPath = flag.String("locked", "", "locked .bench netlist, or comma-separated list for a sweep")
		keyPath    = flag.String("key", "", "key file (name=bit per line), or comma-separated list matching -locked")
		prefix     = flag.String("keyprefix", "keyinput", "key input name prefix")
		timeout    = flag.Duration("timeout", 10*time.Second, "attack timeout per target (paper: 120h)")
		jobs       = flag.Int("jobs", 0, "parallel attack workers for multi-target sweeps (0 = all CPUs)")
		jsonOut    = flag.String("json", "", "write JSON results to this file ('-' = stdout)")
		appsat     = flag.Bool("appsat", false, "run AppSAT instead of the exact SAT attack")
		bva        = flag.Bool("bva", false, "apply BVA preprocessing to the encoding")
		sensitize  = flag.Bool("sensitize", false, "run the key-sensitization attack instead")
		removal    = flag.Bool("removal", false, "run the structural removal attack instead")
		tracePath  = flag.String("trace", "", "write a per-DIP CSV trace (iteration,dip,oracle) to this file")
		portfolio  = flag.Int("portfolio", 1, "race N diversified CDCL workers per solver call (exact SAT attack only; <2 = sequential)")
		ckptDir    = flag.String("checkpoint-dir", "", "journal DIP progress (and sweep manifest) into this directory")
		resume     = flag.Bool("resume", false, "resume from -checkpoint-dir: skip done targets, replay partial journals")
	)
	var cacheFlags cache.Flags
	cacheFlags.Register(flag.CommandLine)
	flag.Parse()

	// SIGINT/SIGTERM cancels the attack context: running solver loops
	// stop at the next DIP boundary, journals keep what they paid for,
	// and cache GC still runs before the nonzero exit. A second signal
	// kills immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *lockedPath == "" || *keyPath == "" {
		fmt.Fprintln(os.Stderr, "satattack: -locked and -key are required")
		os.Exit(2)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "satattack: -resume requires -checkpoint-dir")
		os.Exit(2)
	}
	if *ckptDir != "" && (*appsat || *sensitize || *removal) {
		fail(fmt.Errorf("-checkpoint-dir supports the exact SAT attack only"))
	}
	if *portfolio >= 2 && (*appsat || *sensitize || *removal) {
		fail(fmt.Errorf("-portfolio supports the exact SAT attack only"))
	}

	lockedList := splitList(*lockedPath)
	keyList := splitList(*keyPath)
	if len(keyList) == 1 && len(lockedList) > 1 {
		// One key file shared by every target.
		for len(keyList) < len(lockedList) {
			keyList = append(keyList, keyList[0])
		}
	}
	if len(keyList) != len(lockedList) {
		fail(fmt.Errorf("%d locked netlists but %d key files", len(lockedList), len(keyList)))
	}
	if len(lockedList) > 1 && (*sensitize || *removal || *tracePath != "") {
		fail(fmt.Errorf("-sensitize, -removal and -trace support a single target only"))
	}

	var ckpt *sweep.Checkpoint
	if *ckptDir != "" {
		var err error
		if *resume {
			ckpt, err = sweep.ResumeCheckpoint(*ckptDir)
		} else {
			ckpt, err = sweep.NewCheckpoint(*ckptDir)
		}
		if err != nil {
			fail(err)
		}
		if ckpt.Degraded() {
			fmt.Fprintln(os.Stderr, "satattack: checkpoint manifest corrupt, re-running all targets")
		}
	}

	c, err := cacheFlags.Open()
	if err != nil {
		fail(err)
	}
	if len(lockedList) == 1 {
		runErr := runSingle(ctx, lockedList[0], keyList[0], *prefix, *timeout, *portfolio,
			*appsat, *bva, *sensitize, *removal, *tracePath, *jsonOut, ckpt, *resume, c)
		if err := cacheFlags.Close(c, os.Stderr, "satattack"); err != nil {
			fmt.Fprintln(os.Stderr, "satattack: cache gc:", err)
		}
		if runErr != nil {
			failInterruptible(ctx, runErr)
		}
		return
	}

	var jobList []sweep.Job
	for i := range lockedList {
		locked, key := lockedList[i], keyList[i]
		jobList = append(jobList, sweep.Job{
			Name:     locked,
			Seed:     sweep.DeriveSeed(1, i),
			Timeout:  *timeout + 30*time.Second, // headroom over the attack's own deadline
			CacheKey: targetCacheKey(c, locked, key, *prefix, *timeout, *portfolio, *appsat, *bva),
			Run: func(ctx context.Context, _ int64) (any, error) {
				return attackOne(ctx, locked, key, *prefix, *timeout, *portfolio, *appsat, *bva, nil,
					jobJournalPath(ckpt, locked), *resume)
			},
		})
	}
	runner := &sweep.Runner{
		Workers:    *jobs,
		Checkpoint: ckpt,
		Cache:      c,
		Progress: func(res sweep.Result) {
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "satattack: %s: FAILED: %v\n", res.Name, res.Err)
				return
			}
			if res.Resumed {
				fmt.Printf("satattack: %s: done in a previous run, skipped\n", res.Name)
				return
			}
			if res.Cached {
				fmt.Printf("satattack: %s: served from result cache\n", res.Name)
				return
			}
			tr := res.Value.(*targetResult)
			fmt.Printf("satattack: %s: %s after %d DIPs, %d oracle queries (%d replayed), %.2fs\n",
				tr.Target, tr.Status, tr.Iterations, tr.Queries, tr.Replayed, res.Seconds)
		},
	}
	results := runner.Run(ctx, jobList)
	if err := cacheFlags.Close(c, os.Stderr, "satattack"); err != nil {
		fmt.Fprintln(os.Stderr, "satattack: cache gc:", err)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, results); err != nil {
			fail(err)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "satattack: interrupted; journals and cache are flushed, re-run with -resume to continue")
		os.Exit(1)
	}
	if errs := sweep.Errs(results); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "satattack: %d/%d targets failed\n", len(errs), len(results))
		os.Exit(1)
	}
	if ckpt != nil && sweep.FirstErr(results) == nil {
		fmt.Fprintf(os.Stderr, "satattack: sweep complete, manifest at %s\n", sweep.ManifestPath(ckpt.Dir()))
	}
}

// targetCacheKey derives the content-addressed cache key for one
// attack target: the raw bytes of the locked netlist and key files
// plus every option that shapes the attack. Returns the zero Key —
// opting the target out of caching — when the cache is off or a file
// cannot be read (the attack itself will then surface the read error).
func targetCacheKey(c *cache.Cache, lockedPath, keyPath, prefix string,
	timeout time.Duration, portfolio int, appsat, bva bool) cache.Key {
	if c == nil {
		return cache.Key{}
	}
	lockedRaw, err := os.ReadFile(lockedPath)
	if err != nil {
		return cache.Key{}
	}
	keyRaw, err := os.ReadFile(keyPath)
	if err != nil {
		return cache.Key{}
	}
	k, err := cache.NewKey("satattack-target").
		Bytes("locked", lockedRaw).
		Bytes("key", keyRaw).
		Options("opts", map[string]any{
			"prefix":    prefix,
			"timeout":   timeout.Nanoseconds(),
			"portfolio": portfolio,
			"appsat":    appsat,
			"bva":       bva,
		}).
		Key()
	if err != nil {
		return cache.Key{}
	}
	return k
}

// jobJournalPath maps a sweep job onto its journal file, or "" when
// checkpointing is off.
func jobJournalPath(ckpt *sweep.Checkpoint, name string) string {
	if ckpt == nil {
		return ""
	}
	return ckpt.JobFile(name)
}

// attackOne loads one locked netlist + key, builds the simulated
// oracle and runs the selected attack, returning the JSON summary.
// With journalPath set the exact attack journals every DIP there;
// resume additionally replays an existing journal first.
func attackOne(ctx context.Context, lockedPath, keyPath, prefix string,
	timeout time.Duration, portfolio int, appsat, bva bool, trace *os.File,
	journalPath string, resume bool) (tr *targetResult, err error) {
	f, err := os.Open(lockedPath)
	if err != nil {
		return nil, err
	}
	locked, err := netlist.ParseBench(lockedPath, f)
	f.Close()
	if err != nil {
		return nil, err
	}
	keyPos := locked.GateIDsByPrefix(prefix)
	if len(keyPos) == 0 {
		return nil, fmt.Errorf("no key inputs with prefix %q", prefix)
	}
	key, err := readKey(keyPath, locked, keyPos)
	if err != nil {
		return nil, err
	}
	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		return nil, err
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		return nil, err
	}

	tr = &targetResult{Target: lockedPath, KeyBits: len(keyPos)}
	var status attack.Status
	var recovered []bool
	if appsat {
		opt := attack.DefaultAppSAT()
		opt.Timeout = timeout
		opt.Context = ctx
		res, err := attack.AppSAT(locked, keyPos, oracle, opt)
		if err != nil {
			return nil, err
		}
		status, recovered, tr.Iterations = res.Status, res.Key, res.DIPs
		if err := interrupted(ctx, status); err != nil {
			return nil, err
		}
	} else {
		opts := attack.SATOptions{Timeout: timeout, BVA: bva, Context: ctx, Portfolio: portfolio}
		if trace != nil {
			opts.Trace = trace
		}
		if journalPath != "" {
			j, data, err := openJournal(journalPath, resume)
			if err != nil {
				return nil, err
			}
			// The journal fsyncs per record; a failed close is the last
			// chance to observe lost appended DIPs, so join it into err.
			defer func() { err = errors.Join(err, j.Close()) }()
			opts.Journal = j
			opts.Resume = data
		}
		res, err := attack.SATAttack(locked, keyPos, oracle, opts)
		if errors.Is(err, attack.ErrReplayDiverged) {
			// The journal belongs to a different netlist or attack
			// configuration; degrade to a fresh run.
			fmt.Fprintf(os.Stderr, "satattack: %s: journal does not match, starting fresh: %v\n", journalPath, err)
			j, _, jerr := openJournal(journalPath, false)
			if jerr != nil {
				return nil, jerr
			}
			defer func() { err = errors.Join(err, j.Close()) }()
			opts.Journal, opts.Resume = j, nil
			res, err = attack.SATAttack(locked, keyPos, oracle, opts)
		}
		if err != nil {
			return nil, err
		}
		status, recovered, tr.Iterations, tr.Replayed, tr.Solver =
			res.Status, res.Key, res.Iterations, res.Replayed, res.Solver
		if err := interrupted(ctx, status); err != nil {
			return nil, err
		}
	}
	tr.Status = status.String()
	tr.Queries = oracle.Queries()
	if status == attack.KeyFound {
		tr.Key = keyString(recovered)
		e, err := attack.VerifyKey(locked, keyPos, recovered, oracle, 16, 1)
		if err != nil {
			return nil, err
		}
		tr.ErrorRate = e
	}
	return tr, nil
}

// interrupted distinguishes the paper's legitimate Timeout verdict
// (the attack's own SAT budget expired → reported as infinity) from an
// attack cut short by SIGINT/SIGTERM: a cancelled context also
// surfaces as Timeout with a nil error, and recording that as a
// timeout would fabricate an infinity data point the solver never
// earned. Per-job deadlines (DeadlineExceeded) stay legitimate.
func interrupted(ctx context.Context, status attack.Status) error {
	if status == attack.Timeout && errors.Is(ctx.Err(), context.Canceled) {
		return fmt.Errorf("attack interrupted: %w", context.Cause(ctx))
	}
	return nil
}

// failInterruptible reports err and exits nonzero, labelling the
// signal-cancelled case explicitly.
func failInterruptible(ctx context.Context, err error) {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "satattack: interrupted; journals and cache are flushed, re-run with -resume to continue")
		os.Exit(1)
	}
	fail(err)
}

// runSingle preserves the original single-target output format. The
// result cache applies to the standard SAT/AppSAT attack only; the
// sensitization/removal analyses and -trace runs (whose point is the
// side-effect trace file) always run live. The returned error is
// reported by main after cache teardown.
func runSingle(ctx context.Context, lockedPath, keyPath, prefix string, timeout time.Duration, portfolio int,
	appsat, bva, sensitize, removal bool, tracePath, jsonOut string,
	ckpt *sweep.Checkpoint, resume bool, c *cache.Cache) error {
	f, err := os.Open(lockedPath)
	if err != nil {
		return err
	}
	locked, err := netlist.ParseBench(lockedPath, f)
	f.Close()
	if err != nil {
		return err
	}
	keyPos := locked.GateIDsByPrefix(prefix)
	if len(keyPos) == 0 {
		return fmt.Errorf("no key inputs with prefix %q", prefix)
	}
	key, err := readKey(keyPath, locked, keyPos)
	if err != nil {
		return err
	}
	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		return err
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		return err
	}

	fmt.Printf("satattack: %d key bits, %d functional inputs, %d outputs, timeout %v\n",
		len(keyPos), len(locked.Inputs)-len(keyPos), len(locked.Outputs), timeout)

	if sensitize {
		res, err := attack.Sensitize(locked, keyPos, oracle, 16, timeout)
		if err != nil {
			return err
		}
		fmt.Println("satattack:", res)
		return nil
	}
	if removal {
		stripped, err := attack.StructuralRemoval(locked, keyPos, 1)
		if err != nil {
			return err
		}
		strippedOracle, err := attack.NewSimOracle(stripped)
		if err != nil {
			return err
		}
		e, err := attack.OracleErrorRate(strippedOracle, oracle, 16, 2)
		if err != nil {
			return err
		}
		fmt.Printf("satattack: removal attack output error rate %.6f (0 = circuit recovered exactly)\n", e)
		return nil
	}

	var ck cache.Key
	if tracePath == "" {
		ck = targetCacheKey(c, lockedPath, keyPath, prefix, timeout, portfolio, appsat, bva)
	}
	var trace *os.File
	if tracePath != "" {
		trace, err = os.Create(tracePath)
		if err != nil {
			return err
		}
	}
	start := time.Now()
	var tr *targetResult
	cached := false
	seconds := 0.0
	if ck.Valid() {
		if raw, storedSecs, ok := c.GetTimed(ck); ok {
			var hit targetResult
			if err := json.Unmarshal(raw, &hit); err == nil {
				tr, cached, seconds = &hit, true, storedSecs
			}
		}
	}
	if tr == nil {
		tr, err = attackOne(ctx, lockedPath, keyPath, prefix, timeout, portfolio, appsat, bva, trace,
			jobJournalPath(ckpt, lockedPath), resume)
		if trace != nil {
			err = errors.Join(err, trace.Close())
		}
		if err != nil {
			return err
		}
		seconds = time.Since(start).Seconds()
		if ck.Valid() {
			if raw, err := json.Marshal(tr); err == nil {
				_ = c.PutTimed(ck, raw, seconds)
			}
		}
	}
	if cached {
		fmt.Printf("satattack: result served from cache (no oracle queries, no solver calls; originally %.2fs)\n", seconds)
	}
	fmt.Printf("satattack: %s after %d DIPs in %v (%+v)\n",
		tr.Status, tr.Iterations, time.Since(start).Round(time.Millisecond), tr.Solver)
	fmt.Printf("satattack: oracle queries: %d (%d replayed from journal)\n", tr.Queries, tr.Replayed)
	if tr.Key != "" {
		fmt.Printf("satattack: recovered key verified, error rate %.6f\n", tr.ErrorRate)
		fmt.Println("satattack: key =", tr.Key)
	} else {
		fmt.Println("satattack: TIMEOUT — the paper reports this outcome as infinity")
	}
	if jsonOut != "" {
		res := sweep.Result{Name: lockedPath, Value: tr, Seconds: seconds}
		return writeJSON(jsonOut, []sweep.Result{res})
	}
	return nil
}

func writeJSON(path string, results []sweep.Result) error {
	if path == "-" {
		return sweep.WriteJSON(os.Stdout, results)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "satattack: writing", path)
	if err := sweep.WriteJSON(f, results); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func keyString(key []bool) string {
	var sb strings.Builder
	for _, b := range key {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func readKey(path string, locked *netlist.Netlist, keyPos []int) ([]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byName := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Split(line, "=")
		if len(eq) != 2 {
			return nil, fmt.Errorf("bad key line %q", line)
		}
		byName[strings.TrimSpace(eq[0])] = strings.TrimSpace(eq[1]) == "1"
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	key := make([]bool, len(keyPos))
	for i, pos := range keyPos {
		name := locked.Gates[locked.Inputs[pos]].Name
		v, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("key file missing %q", name)
		}
		key[i] = v
	}
	return key, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "satattack:", err)
	os.Exit(1)
}
