// Package repro reproduces "Securing Hardware via Dynamic Obfuscation
// Utilizing Reconfigurable Interconnect and Logic Blocks" (DAC 2021).
//
// The library lives under internal/: netlist and benchmark synthesis,
// a CDCL SAT solver, the RIL-Block obfuscation core, oracle-guided
// attacks (SAT attack, AppSAT, ScanSAT, removal), STT-MTJ device and
// MRAM-LUT circuit simulation, power side-channel analysis, and a
// static netlist linter (netlint) gating every emitted lock. The
// cmd/ tools and examples/ programs exercise the public surface; the
// root-level benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
package repro
