// morphing: demonstrate dynamic obfuscation. The MRAM LUTs and the
// routing keys are reconfigured at runtime (each epoch installs a new
// physically different but functionally equivalent configuration), so
// key material an attacker exfiltrates at epoch t is useless at t+1,
// and the scan-mode corruption pattern changes too.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netlist"
)

func main() {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "ip", Inputs: 18, Outputs: 8, Gates: 350, Locality: 0.7,
	}, 13)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{
		Blocks: 2, Size: core.Size8x8x8, Seed: 5, ScanEnable: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked with %d key bits across %d blocks\n", res.KeyBits(), len(res.Blocks))

	keyString := func() string {
		s := make([]byte, len(res.Key))
		for i, b := range res.Key {
			s[i] = '0'
			if b {
				s[i] = '1'
			}
		}
		return string(s)
	}

	leaked := append([]bool(nil), res.Key...) // attacker snapshot at epoch 0
	fmt.Println("epoch 0 key:", keyString())

	for epoch := 1; epoch <= 5; epoch++ {
		stats := res.Morph(int64(epoch)*101, 16)
		fmt.Printf("epoch %d: %d routing moves, %d SE flips, %d key bits changed -> %s\n",
			epoch, stats.RoutingMoves, stats.SEFlips, stats.KeyBitsDelta, keyString())

		// Function is invariant across epochs.
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			log.Fatal(err)
		}
		eq, cex, err := netlist.Equivalent(orig, bound, 12, 8, int64(epoch))
		if err != nil {
			log.Fatal(err)
		}
		if !eq {
			log.Fatalf("epoch %d broke the circuit, cex=%v", epoch, cex)
		}
	}

	// Morphing preserves function, so a *complete* snapshot of one
	// epoch remains a valid key — what it defeats is incremental
	// extraction: an attacker probing a few MTJs per epoch stitches
	// together bits from different configurations, and the coupled
	// switch/LUT updates make any cross-epoch mix inconsistent.
	diff := 0
	for i := range leaked {
		if leaked[i] != res.Key[i] {
			diff++
		}
	}
	fmt.Printf("\nphysical configuration drifted by %d bits since epoch 0\n", diff)

	// Splice: routing bits probed at epoch 0, LUT bits probed now.
	spliced := append([]bool(nil), res.Key...)
	for _, blk := range res.Blocks {
		for _, p := range blk.InKeyPos {
			spliced[p] = leaked[p]
		}
		for _, p := range blk.OutKeyPos {
			spliced[p] = leaked[p]
		}
	}
	mixed, err := res.ApplyKey(spliced)
	if err != nil {
		log.Fatal(err)
	}
	c, err := netlist.OutputCorruptibility(orig, mixed, 16, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stitching epoch-0 routing bits with current LUT bits corrupts %.1f%% of output bits\n", c*100)
	if diff == 0 {
		fmt.Println("(no net drift this run — rerun with another seed)")
	} else if c > 0 {
		fmt.Println("cross-epoch probe data is inconsistent: the moving target defeats incremental extraction")
	} else {
		fmt.Println("(this splice happened to stay consistent — routing moves did not touch these blocks)")
	}
}
