// psca_demo: mount correlation power analysis against the key storage
// of a conventional SRAM-based LUT and of the paper's complementary
// MRAM-based LUT. The SRAM key falls to CPA within a few hundred
// traces; the MRAM LUT's symmetric read path leaves the attacker at
// guess level (paper §IV-D).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/lutsim"
	"repro/internal/mtj"
	"repro/internal/psca"
)

func main() {
	cfg := lutsim.DefaultConfig()
	secret := logic.NAND // the LUT configuration the attacker wants
	const traces = 400
	const noise = 0.05

	fmt.Printf("secret LUT configuration: %s\n", secret)
	fmt.Printf("collecting %d traces at %.0f%% measurement noise\n\n", traces, noise*100)

	// --- SRAM target -----------------------------------------------
	sram := lutsim.NewSRAM(cfg)
	sram.Configure(secret)
	sramTraces := psca.CollectSRAM(sram, traces, noise, 1)
	sramCPA, err := psca.CPA(sramTraces)
	if err != nil {
		log.Fatal(err)
	}
	sramDPA, err := psca.DPA(sramTraces, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SRAM LUT:")
	fmt.Printf("  CPA best hypothesis: %s (margin %.3f) — recovered: %v\n",
		sramCPA.Best, sramCPA.Margin, sramCPA.Recovered(secret))
	fmt.Printf("  DPA separation: %.3g W (t = %.1f), SNR %.3f\n\n",
		sramDPA.Diff, sramDPA.TValue, psca.SNR(sramTraces, secret))

	// --- MRAM target (process-varied instance, as fabricated) ------
	rng := rand.New(rand.NewSource(2))
	mram := lutsim.Sample(cfg, mtj.DefaultVariation(), lutsim.DefaultMOSVariation(), rng)
	for _, r := range mram.Configure(secret) {
		if r.Error {
			log.Fatal("MRAM configuration write failed")
		}
	}
	mramTraces := psca.CollectMRAM(mram, traces, noise, 3)
	mramCPA, err := psca.CPA(mramTraces)
	if err != nil {
		log.Fatal(err)
	}
	mramDPA, err := psca.DPA(mramTraces, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MRAM LUT (complementary MTJ sensing):")
	fmt.Printf("  CPA best hypothesis: %s (margin %.3f) — recovered: %v\n",
		mramCPA.Best, mramCPA.Margin, mramCPA.Recovered(secret))
	fmt.Printf("  DPA separation: %.3g W (t = %.1f), SNR %.4f\n\n",
		mramDPA.Diff, mramDPA.TValue, psca.SNR(mramTraces, secret))

	fmt.Println("the complementary read path draws the same current for 0 and 1,")
	fmt.Println("so the output-dependent power component vanishes — P-SCA mitigated")
}
