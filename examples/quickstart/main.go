// Quickstart: lock a small circuit with RIL-Blocks, show what the
// attacker sees, and run the SAT attack at two block sizes — small
// blocks fall quickly, a few 8×8×8 blocks push the attack to timeout.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/netlist"
)

func main() {
	// A synthetic 400-gate circuit stands in for your IP.
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "my_ip", Inputs: 20, Outputs: 10, Gates: 400, Locality: 0.7,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := orig.ComputeStats()
	fmt.Println("original:", stats)

	for _, setup := range []struct {
		size   core.Size
		blocks int
	}{
		{core.Size2x2, 2},
		{core.Size8x8x8, 3},
	} {
		fmt.Printf("\n== locking with %d RIL-Block(s) of size %s ==\n", setup.blocks, setup.size)
		res, err := core.Lock(orig, core.Options{
			Blocks: setup.blocks, Size: setup.size, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("overhead:", res.Overhead())

		// The IP owner activates the chip with the correct key.
		activated, err := res.ApplyKey(res.Key)
		if err != nil {
			log.Fatal(err)
		}
		eq, _, err := netlist.Equivalent(orig, activated, 12, 8, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("correct key restores function:", eq)

		// A wrong key corrupts the outputs heavily (unlike point
		// functions).
		wrong := append([]bool(nil), res.Key...)
		wrong[0] = !wrong[0]
		wrong[len(wrong)/2] = !wrong[len(wrong)/2]
		corrupted, err := res.ApplyKey(wrong)
		if err != nil {
			log.Fatal(err)
		}
		c, err := netlist.OutputCorruptibility(orig, corrupted, 16, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrong-key output corruption: %.1f%% of output bits\n", c*100)

		// The attacker holds the locked netlist and oracle access.
		oracle, err := attack.NewSimOracle(activated)
		if err != nil {
			log.Fatal(err)
		}
		ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
			attack.SATOptions{Timeout: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("SAT attack:", ar)
		if ar.Status == attack.KeyFound {
			e, _ := attack.VerifyKey(res.Locked, res.KeyInputPos, ar.Key, oracle, 8, 3)
			fmt.Printf("attacker's key error rate: %.6f\n", e)
		} else {
			fmt.Println("attack timed out — the paper reports this as infinity")
		}
	}
}
