// secure_aes: lock the synthesized AES round core (a CEP benchmark)
// with 8×8×8 RIL-Blocks and demonstrate (1) functional correctness
// under the correct key against the software AES reference, (2) heavy
// output corruption under a wrong key, and (3) SAT-attack timeout.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
)

func main() {
	const cols = 1 // one AES state column; use 4 for the full-width round
	aes, err := circuit.AESRound(cols)
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := aes.ComputeStats()
	fmt.Println("AES round core:", stats)

	res, err := core.Lock(aes, core.Options{
		Blocks: 2, Size: core.Size8x8x8, Seed: 2026, ScanEnable: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("locked:", res.Overhead())

	// (1) Activated chip vs software reference.
	activated, err := res.ApplyKey(res.Key)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := netlist.NewSimulator(activated)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		state := make([]byte, cols*4)
		rkey := make([]byte, cols*4)
		rng.Read(state)
		rng.Read(rkey)
		in := make([]bool, 0, cols*64)
		for _, b := range state {
			in = append(in, circuit.Bits(uint64(b), 8)...)
		}
		for _, b := range rkey {
			in = append(in, circuit.Bits(uint64(b), 8)...)
		}
		out := sim.Eval(in)
		want := circuit.AESRoundRef(state, rkey, cols)
		for i := range want {
			got := byte(circuit.Uint64(out[i*8 : i*8+8]))
			if got != want[i] {
				log.Fatalf("trial %d byte %d: locked AES %#02x, reference %#02x", trial, i, got, want[i])
			}
		}
	}
	fmt.Println("activated core matches the software AES reference on random vectors")

	// (2) Wrong key: ciphertext garbage.
	wrong := append([]bool(nil), res.Key...)
	for i := 0; i < 4; i++ {
		wrong[rng.Intn(len(wrong))] = !wrong[rng.Intn(len(wrong))]
		j := rng.Intn(len(wrong))
		wrong[j] = !wrong[j]
	}
	broken, err := res.ApplyKey(wrong)
	if err != nil {
		log.Fatal(err)
	}
	c, err := netlist.OutputCorruptibility(aes, broken, 16, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong key corrupts %.1f%% of round-output bits\n", c*100)

	// (3) SAT attack against the activated oracle.
	oracle, err := attack.NewSimOracle(activated)
	if err != nil {
		log.Fatal(err)
	}
	ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
		attack.SATOptions{Timeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SAT attack on the locked AES core:", ar)
	if ar.Status != attack.KeyFound {
		fmt.Println("attack timed out (the paper's Table III reports the AES rows as infinity at >= 2 blocks)")
	}
}
