// testability: the paper's §III-C claim in action. Locking must not
// break manufacturing test: with the correct key installed and the
// MTJ_SE contents known, the IP owner keeps (nearly) the original
// stuck-at fault coverage, and the scan-enable layer costs nothing —
// while an attacker comparing raw scan responses against golden
// functional signatures sees pervasive mismatches.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
)

func main() {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "asic", Inputs: 20, Outputs: 10, Gates: 500, Locality: 0.7,
	}, 41)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{
		Blocks: 2, Size: core.Size8x8, Seed: 42, ScanEnable: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	const patterns = 1024
	report := func(label string, nl *netlist.Netlist) fault.CoverageResult {
		cov, err := fault.RandomPatternCoverage(nl, patterns, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %s\n", label, cov)
		return cov
	}

	fmt.Printf("stuck-at coverage with %d random patterns:\n\n", patterns)
	report("original circuit", orig)

	activated, err := res.ApplyKey(res.Key)
	if err != nil {
		log.Fatal(err)
	}
	report("locked, correct key (functional)", activated)

	sv, err := res.ScanView()
	if err != nil {
		log.Fatal(err)
	}
	svBound, err := sv.BindInputs(res.KeyInputPos, res.Key)
	if err != nil {
		log.Fatal(err)
	}
	report("locked, scan mode (SE=1)", svBound)

	// The designer knows the MTJ_SE bits and de-corrupts responses; an
	// attacker comparing scan responses to functional golden vectors
	// sees mismatches on a large share of patterns.
	funcOracle, err := attack.NewSimOracle(activated)
	if err != nil {
		log.Fatal(err)
	}
	scanOracle, err := attack.NewSimOracle(svBound)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	mismatched := 0
	const probes = 512
	for i := 0; i < probes; i++ {
		in := make([]bool, funcOracle.NumInputs())
		for j := range in {
			in[j] = rng.Intn(2) == 1
		}
		a := funcOracle.Query(in)
		b := scanOracle.Query(in)
		for k := range a {
			if a[k] != b[k] {
				mismatched++
				break
			}
		}
	}
	fmt.Printf("\nscan responses differ from functional golden vectors on %d/%d patterns\n",
		mismatched, probes)
	fmt.Println("the owner de-corrupts with the known MTJ_SE bits; the attacker cannot")
}
