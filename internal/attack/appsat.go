package attack

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// AppSATOptions tunes the approximate attack.
type AppSATOptions struct {
	Timeout time.Duration
	// Context, when non-nil, cancels the attack early (see
	// SATOptions.Context).
	Context context.Context
	// DIPsPerRound is how many SAT-attack iterations run between error
	// estimations (d in the AppSAT paper).
	DIPsPerRound int
	// RandomQueries is the sample size for error estimation (q).
	RandomQueries int
	// ErrorThreshold: terminate when the estimated error of the current
	// candidate key drops to or below this rate.
	ErrorThreshold float64
	// MaxRounds bounds the outer loop.
	MaxRounds int
	Seed      int64
}

// DefaultAppSAT mirrors the attack's customary settings, scaled for a
// simulator substrate.
func DefaultAppSAT() AppSATOptions {
	return AppSATOptions{
		DIPsPerRound:   8,
		RandomQueries:  64,
		ErrorThreshold: 0.02,
		MaxRounds:      64,
		Seed:           1,
	}
}

// AppSATResult reports an AppSAT run.
type AppSATResult struct {
	Status        Status
	Key           []bool
	ErrorEstimate float64 // error rate AppSAT itself believed it achieved
	Rounds        int
	DIPs          int
	Elapsed       time.Duration
}

func (r *AppSATResult) String() string {
	return fmt.Sprintf("appsat %s: rounds=%d dips=%d est.err=%.4f in %v",
		r.Status, r.Rounds, r.DIPs, r.ErrorEstimate, r.Elapsed.Round(time.Millisecond))
}

// AppSAT runs the approximate SAT attack: interleaved DIP rounds and
// random-query reinforcement. It terminates early when the candidate
// key's estimated error dips below the threshold — which, for
// low-corruptibility schemes, yields an approximate key quickly. The
// returned key must still be validated against the functional circuit:
// under scan-enable obfuscation the oracle responses are corrupted, so
// AppSAT converges (if at all) to a key for the wrong function — the
// paper reports this as erroneous termination (Table III, ✗).
func AppSAT(locked *netlist.Netlist, keyPos []int, oracle Oracle, opt AppSATOptions) (*AppSATResult, error) {
	start := time.Now()
	if opt.DIPsPerRound <= 0 || opt.RandomQueries <= 0 || opt.MaxRounds <= 0 {
		return nil, fmt.Errorf("attack: bad AppSAT options %+v", opt)
	}
	funcPos, err := splitInputs(locked, keyPos)
	if err != nil {
		return nil, err
	}
	if oracle.NumInputs() != len(funcPos) || oracle.NumOutputs() != len(locked.Outputs) {
		return nil, fmt.Errorf("attack: oracle signature mismatch")
	}

	enc := cnf.NewEncoder()
	copy1, err := enc.Encode(locked, nil)
	if err != nil {
		return nil, err
	}
	shared := make(map[int]cnf.Var, len(funcPos))
	for _, p := range funcPos {
		shared[p] = copy1.Inputs[p]
	}
	copy2, err := enc.Encode(locked, shared)
	if err != nil {
		return nil, err
	}
	diffs := make([]cnf.Lit, len(locked.Outputs))
	for i := range locked.Outputs {
		diffs[i] = cnf.MkLit(enc.EncodeXor2(
			cnf.MkLit(copy1.Outputs[i], false),
			cnf.MkLit(copy2.Outputs[i], false)), false)
	}
	act := enc.F.NewVar()
	enc.F.AddClause(append(append([]cnf.Lit(nil), diffs...), cnf.MkLit(act, true))...)

	tmpl, err := cnf.CompileTemplate(locked)
	if err != nil {
		return nil, err
	}

	solver := sat.New()
	if !solver.AddFormula(enc.F) {
		return nil, fmt.Errorf("attack: base encoding unsatisfiable")
	}
	if opt.Timeout > 0 {
		solver.SetDeadline(start.Add(opt.Timeout))
	}
	if opt.Context != nil {
		solver.SetContext(opt.Context)
	}
	key1 := make([]cnf.Var, len(keyPos))
	for i, p := range keyPos {
		key1[i] = copy1.Inputs[p]
	}
	key2 := make([]cnf.Var, len(keyPos))
	for i, p := range keyPos {
		key2[i] = copy2.Inputs[p]
	}

	src := rand.NewSource(opt.Seed)
	res := &AppSATResult{}
	// Reinforcement scratch: word-level patterns plus the bool decode
	// buffers for constraint rows and scalar-fallback partial chunks.
	batch := AsBatch(oracle)
	words := make([]uint64, len(funcPos))
	inBuf := make([]bool, len(funcPos))
	outBuf := make([]bool, len(locked.Outputs))
	wantBuf := make([]uint64, len(locked.Outputs))
	addConstraint := func(in, out []bool) error {
		return constrainDIP(solver, tmpl, funcPos, keyPos, key1, key2, in, out)
	}
	extractKey := func() ([]bool, bool) {
		if solver.Solve(cnf.MkLit(act, true)) != sat.Sat {
			return nil, false
		}
		k := make([]bool, len(keyPos))
		for i, v := range key1 {
			k[i] = solver.Model()[v]
		}
		return k, true
	}

	for round := 0; round < opt.MaxRounds; round++ {
		res.Rounds = round + 1
		converged := false
		for d := 0; d < opt.DIPsPerRound; d++ {
			st := solver.Solve(cnf.MkLit(act, false))
			if st == sat.Unknown {
				res.Status = Timeout
				res.Elapsed = time.Since(start)
				return res, nil
			}
			if st == sat.Unsat {
				converged = true
				break
			}
			dip := make([]bool, len(funcPos))
			for i, p := range funcPos {
				dip[i] = solver.ModelValue(cnf.MkLit(copy1.Inputs[p], false))
			}
			out := oracle.Query(dip)
			res.DIPs++
			if err := addConstraint(dip, out); err != nil {
				return nil, err
			}
		}

		key, ok := extractKey()
		if !ok {
			res.Status = Failed
			res.Elapsed = time.Since(start)
			return res, nil
		}

		if converged {
			res.Status = KeyFound
			res.Key = key
			res.ErrorEstimate = 0
			res.Elapsed = time.Since(start)
			return res, nil
		}

		// Random-query reinforcement and error estimation, batched: the
		// candidate runs word-level directly, the oracle through its
		// BatchOracle fast path. Patterns are drawn lane-major in the
		// same RNG order as the historical scalar loop, mismatching
		// lanes reinforce in ascending pattern order, and partial
		// chunks fall back to scalar queries — so the estimate, the
		// added constraints and the oracle query count are all
		// bit-identical per seed.
		bound, err := locked.BindInputs(keyPos, key)
		if err != nil {
			return nil, err
		}
		candSim, err := netlist.NewSimulator(bound)
		if err != nil {
			return nil, err
		}
		wrong := 0
		for done := 0; done < opt.RandomQueries; {
			chunk := opt.RandomQueries - done
			if chunk > 64 {
				chunk = 64
			}
			randPatternWords(src, words, chunk)
			var want []uint64
			if chunk == 64 {
				want = batch.QueryWords(words)
			} else {
				want = queryLanes(oracle, words, chunk, inBuf, wantBuf)
			}
			got := candSim.Run(words)
			var mask uint64
			for i := range want {
				mask |= want[i] ^ got[i]
			}
			if chunk < 64 {
				mask &= 1<<uint(chunk) - 1
			}
			for m := mask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				for i := range inBuf {
					inBuf[i] = words[i]&(1<<uint(lane)) != 0
				}
				for i := range outBuf {
					outBuf[i] = want[i]&(1<<uint(lane)) != 0
				}
				wrong++
				if err := addConstraint(inBuf, outBuf); err != nil {
					return nil, err
				}
			}
			done += chunk
		}
		res.ErrorEstimate = float64(wrong) / float64(opt.RandomQueries)
		if res.ErrorEstimate <= opt.ErrorThreshold {
			res.Status = KeyFound
			res.Key = key
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}
	res.Status = Timeout
	res.Elapsed = time.Since(start)
	return res, nil
}
