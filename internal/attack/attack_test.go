package attack

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/testutil"
)

// xorLock and smallCircuit moved to internal/testutil so the sweep and
// checkpoint suites can share them; these thin aliases keep call sites
// readable.
func xorLock(t *testing.T, orig *netlist.Netlist, nKeys int, seed int64) (*netlist.Netlist, []int, []bool) {
	t.Helper()
	return testutil.XORLock(t, orig, nKeys, seed)
}

func smallCircuit(t *testing.T, gates int, seed int64) *netlist.Netlist {
	t.Helper()
	return testutil.SmallCircuit(t, gates, seed)
}

func oracleFor(t *testing.T, locked *netlist.Netlist, keyPos []int, key []bool) Oracle {
	t.Helper()
	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSATAttackRecoversXORLockKey(t *testing.T) {
	orig := smallCircuit(t, 80, 1)
	locked, keyPos, key := xorLock(t, orig, 12, 2)
	oracle := oracleFor(t, locked, keyPos, key)
	res, err := SATAttack(locked, keyPos, oracle, SATOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != KeyFound {
		t.Fatalf("attack did not converge: %v", res)
	}
	errRate, err := VerifyKey(locked, keyPos, res.Key, oracle, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if errRate != 0 {
		t.Errorf("recovered key error rate %v, want 0", errRate)
	}
	// SAT proof of equivalence.
	bound, err := locked.BindInputs(keyPos, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	eq, cex, err := EquivalentSAT(orig, bound, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("recovered key not equivalent, cex=%v", cex)
	}
}

func TestSATAttackRecoversRILKey(t *testing.T) {
	orig := smallCircuit(t, 80, 4)
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size2x2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleFor(t, res.Locked, res.KeyInputPos, res.Key)
	ar, err := SATAttack(res.Locked, res.KeyInputPos, oracle, SATOptions{Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Status != KeyFound {
		t.Fatalf("small RIL attack should converge: %v", ar)
	}
	// The recovered key may differ from the original (banyan key
	// symmetry) but must be functionally correct.
	errRate, err := VerifyKey(res.Locked, res.KeyInputPos, ar.Key, oracle, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if errRate != 0 {
		t.Errorf("recovered RIL key error rate %v, want 0", errRate)
	}
	if ar.Iterations < 1 {
		t.Error("attack claims zero DIPs on a corruptible lock")
	}
}

func TestSATAttackTimesOutOnLargerRIL(t *testing.T) {
	orig := smallCircuit(t, 300, 6)
	res, err := core.Lock(orig, core.Options{Blocks: 3, Size: core.Size8x8x8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleFor(t, res.Locked, res.KeyInputPos, res.Key)
	ar, err := SATAttack(res.Locked, res.KeyInputPos, oracle, SATOptions{Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Status == KeyFound {
		// Possible on a fast machine; verify at least that the key is
		// correct, otherwise the attack lied.
		errRate, err := VerifyKey(res.Locked, res.KeyInputPos, ar.Key, oracle, 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		if errRate != 0 {
			t.Errorf("converged attack returned wrong key (err %v)", errRate)
		}
		t.Skip("3x 8x8x8 solved within 300ms on this machine")
	}
	if ar.Status != Timeout {
		t.Errorf("status %v, want timeout", ar.Status)
	}
}

func TestSATAttackMaxIterations(t *testing.T) {
	orig := smallCircuit(t, 300, 7)
	res, err := core.Lock(orig, core.Options{Blocks: 2, Size: core.Size8x8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleFor(t, res.Locked, res.KeyInputPos, res.Key)
	ar, err := SATAttack(res.Locked, res.KeyInputPos, oracle, SATOptions{MaxIterations: 1, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Status == KeyFound && ar.Iterations > 1 {
		t.Errorf("iteration cap ignored: %v", ar)
	}
}

func TestSATAttackTrace(t *testing.T) {
	orig := smallCircuit(t, 60, 91)
	locked, keyPos, key := xorLock(t, orig, 6, 92)
	oracle := oracleFor(t, locked, keyPos, key)
	var trace bytes.Buffer
	res, err := SATAttack(locked, keyPos, oracle, SATOptions{Timeout: 30 * time.Second, Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(trace.String()), "\n")
	if res.Iterations == 0 {
		t.Skip("attack converged without DIPs")
	}
	if len(lines) != res.Iterations {
		t.Fatalf("trace has %d lines, want %d", len(lines), res.Iterations)
	}
	for i, line := range lines {
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			t.Fatalf("trace line %d malformed: %q", i, line)
		}
		if len(parts[1]) != oracle.NumInputs() || len(parts[2]) != oracle.NumOutputs() {
			t.Fatalf("trace widths wrong: %q", line)
		}
	}
}

func TestSATAttackWithBVA(t *testing.T) {
	orig := smallCircuit(t, 60, 8)
	locked, keyPos, key := xorLock(t, orig, 8, 9)
	oracle := oracleFor(t, locked, keyPos, key)
	res, err := SATAttack(locked, keyPos, oracle, SATOptions{Timeout: 30 * time.Second, BVA: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != KeyFound {
		t.Fatalf("BVA attack did not converge: %v", res)
	}
	if e, _ := VerifyKey(locked, keyPos, res.Key, oracle, 8, 3); e != 0 {
		t.Errorf("BVA-preprocessed attack returned wrong key (err %v)", e)
	}
}

func TestAppSATOnRILWithScanEnableFails(t *testing.T) {
	orig := smallCircuit(t, 120, 12)
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 13, ScanEnable: true})
	if err != nil {
		t.Fatal(err)
	}
	anySE := false
	for _, b := range res.SEBits {
		anySE = anySE || b
	}
	if !anySE {
		t.Skip("seed produced all-zero SE bits")
	}
	// The attacker queries through the scan chain: corrupted responses.
	sv, err := res.ScanView()
	if err != nil {
		t.Fatal(err)
	}
	scanOracle := oracleFor(t, sv, res.KeyInputPos, res.Key)
	funcOracle := oracleFor(t, res.Locked, res.KeyInputPos, res.Key)

	opt := DefaultAppSAT()
	opt.Timeout = 10 * time.Second
	opt.MaxRounds = 8
	ar, err := AppSAT(res.Locked, res.KeyInputPos, scanOracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Either AppSAT never converges, or the key it returns is wrong for
	// the functional circuit — both count as failure (paper Table III ✗).
	if ar.Status == KeyFound {
		e, err := VerifyKey(res.Locked, res.KeyInputPos, ar.Key, funcOracle, 8, 14)
		if err != nil {
			t.Fatal(err)
		}
		if e == 0 {
			t.Errorf("AppSAT recovered a functionally correct key through a corrupted oracle")
		}
	}
}

func TestAppSATConvergesOnEasyLock(t *testing.T) {
	orig := smallCircuit(t, 60, 15)
	locked, keyPos, key := xorLock(t, orig, 6, 16)
	oracle := oracleFor(t, locked, keyPos, key)
	opt := DefaultAppSAT()
	opt.Timeout = 20 * time.Second
	ar, err := AppSAT(locked, keyPos, oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Status != KeyFound {
		t.Fatalf("AppSAT failed on an easy lock: %v", ar)
	}
	e, err := VerifyKey(locked, keyPos, ar.Key, oracle, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	if e > float64(opt.ErrorThreshold) {
		t.Errorf("AppSAT key error %v exceeds threshold %v", e, opt.ErrorThreshold)
	}
}

func TestRemovalAttackResisted(t *testing.T) {
	orig := smallCircuit(t, 150, 18)
	res, err := core.Lock(orig, core.Options{Blocks: 2, Size: core.Size8x8, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleFor(t, res.Locked, res.KeyInputPos, res.Key)
	rr, err := RemovalAttack(res.Locked, res.KeyInputPos, oracle, 16, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rr.BestError < 0.001 {
		t.Errorf("a random configuration matched the oracle (best err %v) — removal not resisted", rr.BestError)
	}
	if rr.MeanError < rr.BestError {
		t.Error("mean below best")
	}
}

func TestStructuralRemovalBreaksXORLock(t *testing.T) {
	// The bypass must recover the original circuit exactly from the
	// classic XOR-locked netlist.
	orig := smallCircuit(t, 100, 41)
	locked, keyPos, _ := xorLock(t, orig, 10, 42)
	stripped, err := StructuralRemoval(locked, keyPos, 1)
	if err != nil {
		t.Fatal(err)
	}
	eq, cex, err := EquivalentSAT(orig, stripped, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("structural removal failed on XOR locking, cex=%v", cex)
	}
}

func TestStructuralRemovalFailsOnRIL(t *testing.T) {
	// RIL-Blocks replace original gates, so stripping leaves garbage.
	orig := smallCircuit(t, 150, 43)
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := StructuralRemoval(res.Locked, res.KeyInputPos, 1)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := EquivalentSAT(orig, stripped, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("structural removal recovered the circuit from RIL-Blocks")
	}
}

func TestScanSATDefeated(t *testing.T) {
	orig := smallCircuit(t, 100, 21)
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 22, ScanEnable: true})
	if err != nil {
		t.Fatal(err)
	}
	anySE := false
	for _, b := range res.SEBits {
		anySE = anySE || b
	}
	if !anySE {
		t.Skip("seed produced all-zero SE bits")
	}
	sv, err := res.ScanView()
	if err != nil {
		t.Fatal(err)
	}
	scanOracle := oracleFor(t, sv, res.KeyInputPos, res.Key)
	funcOracle := oracleFor(t, res.Locked, res.KeyInputPos, res.Key)
	var luts []string
	for _, blk := range res.Blocks {
		luts = append(luts, blk.LUTOut...)
	}
	sr, err := ScanSAT(res.Locked, res.KeyInputPos, luts, scanOracle, funcOracle, SATOptions{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if sr.SAT.Status == KeyFound && sr.ScanError > 0.001 {
		t.Errorf("ScanSAT converged but does not reproduce scan behaviour (err %v)", sr.ScanError)
	}
	if !sr.Defeated {
		t.Errorf("ScanSAT recovered a functionally correct key: %+v", sr)
	}
}

func TestEquivalentSATFindsCounterexample(t *testing.T) {
	a := smallCircuit(t, 40, 23)
	b := a.Clone()
	// Invert one output.
	out := b.Outputs[0]
	inv := b.AddGate("flip", netlist.Not, out)
	b.RedirectFanout(out, inv)
	eq, cex, err := EquivalentSAT(a, b, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("inverted circuit declared equivalent")
	}
	if len(cex) != len(a.Inputs) {
		t.Fatalf("counterexample has %d bits, want %d", len(cex), len(a.Inputs))
	}
	// The counterexample must actually distinguish the circuits.
	sa, _ := netlist.NewSimulator(a)
	sb, _ := netlist.NewSimulator(b)
	oa, ob := sa.Eval(cex), sb.Eval(cex)
	same := true
	for i := range oa {
		if oa[i] != ob[i] {
			same = false
		}
	}
	if same {
		t.Error("returned counterexample does not distinguish the circuits")
	}
}

func TestOracleErrorRateSelf(t *testing.T) {
	orig := smallCircuit(t, 40, 24)
	o1, err := NewSimOracle(orig)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := NewSimOracle(orig.Clone())
	if err != nil {
		t.Fatal(err)
	}
	e, err := OracleErrorRate(o1, o2, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("self error rate %v", e)
	}
	if o1.Queries() == 0 {
		t.Error("query counter not advancing")
	}
}
