package attack

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/netlist"
)

// KeyFlipError measures, over nRounds random 64-pattern rounds driven
// through the batched oracle fast path, the fraction of (pattern,
// output) pairs on which the locked circuit activated with key
// disagrees with the same circuit activated with the bits at bitsToFlip
// (key-vector indices) inverted. It is the oracle-side ground truth the
// netlint resilience audit is cross-validated against: a key bit the
// audit discards as output-irrelevant must score exactly zero here, and
// a parity-linked pair must score zero when both bits flip together
// (see DESIGN.md §10).
func KeyFlipError(locked *netlist.Netlist, keyPos []int, key []bool, bitsToFlip []int, nRounds int, seed int64) (float64, error) {
	if len(keyPos) != len(key) {
		return 0, fmt.Errorf("attack: %d key positions for %d key bits", len(keyPos), len(key))
	}
	if nRounds <= 0 {
		return 0, fmt.Errorf("attack: KeyFlipError needs at least one round")
	}
	flipped := append([]bool(nil), key...)
	for _, b := range bitsToFlip {
		if b < 0 || b >= len(key) {
			return 0, fmt.Errorf("attack: flip bit %d out of range for %d-bit key", b, len(key))
		}
		flipped[b] = !flipped[b]
	}
	base, err := locked.BindInputs(keyPos, key)
	if err != nil {
		return 0, fmt.Errorf("attack: bind canonical key: %w", err)
	}
	alt, err := locked.BindInputs(keyPos, flipped)
	if err != nil {
		return 0, fmt.Errorf("attack: bind flipped key: %w", err)
	}
	ob, err := NewSimOracle(base)
	if err != nil {
		return 0, err
	}
	oa, err := NewSimOracle(alt)
	if err != nil {
		return 0, err
	}
	bb, ba := AsBatch(ob), AsBatch(oa)
	if bb.NumInputs() != ba.NumInputs() || bb.NumOutputs() != ba.NumOutputs() {
		return 0, fmt.Errorf("attack: activated circuits disagree on signature")
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, bb.NumInputs())
	mismatch, total := 0, 0
	for r := 0; r < nRounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		// Distinct oracles own distinct simulator buffers, so both
		// result slices stay valid side by side.
		rb := bb.QueryWords(in)
		ra := ba.QueryWords(in)
		for i := range rb {
			mismatch += bits.OnesCount64(rb[i] ^ ra[i])
		}
		total += 64 * len(rb)
	}
	if total == 0 {
		return 0, nil
	}
	return float64(mismatch) / float64(total), nil
}

// KeyBitFlipError is KeyFlipError for a single key bit.
func KeyBitFlipError(locked *netlist.Netlist, keyPos []int, key []bool, bit, nRounds int, seed int64) (float64, error) {
	return KeyFlipError(locked, keyPos, key, []int{bit}, nRounds, seed)
}
