package attack

import (
	"os"
	"testing"

	"repro/internal/circuit"
	"repro/internal/netlint"
	"repro/internal/netlist"
	"repro/internal/testutil"
)

// The differential cross-validation the resilience audit's
// trustworthiness rests on (DESIGN.md §10): every key bit the audit
// discards must be output-irrelevant under the batched oracle, every
// parity-linked pair must be invariant under a joint flip, and a
// sound bit must visibly corrupt outputs when flipped — on both c17
// and c432.
func TestAuditPrunesAreOracleIrrelevant(t *testing.T) {
	c17 := func(t *testing.T) *netlist.Netlist {
		f, err := os.Open("../../testdata/c17.bench")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		nl, err := netlist.ParseBench("c17", f)
		if err != nil {
			t.Fatal(err)
		}
		return nl
	}
	c432 := func(t *testing.T) *netlist.Netlist {
		prof, ok := circuit.ProfileByName("c432")
		if !ok {
			t.Fatal("no c432 profile")
		}
		nl, err := prof.Synthesize(1.0)
		if err != nil {
			t.Fatal(err)
		}
		return nl
	}
	for name, load := range map[string]func(*testing.T) *netlist.Netlist{"c17": c17, "c432": c432} {
		t.Run(name, func(t *testing.T) {
			locked, keyPos, key, scan := testutil.PlantAuditFixture(t, load(t))
			res, err := netlint.Run(locked, netlint.Options{Scan: scan}, netlint.All()...)
			if err != nil {
				t.Fatalf("audit: %v", err)
			}
			rep := res.Resilience
			if rep == nil {
				t.Fatal("no resilience report")
			}
			if rep.Effective != 3 || rep.Nominal != 7 {
				t.Fatalf("effective %d of %d, want 3 of 7\n%+v", rep.Effective, rep.Nominal, rep)
			}
			bitOf := map[string]int{}
			for i, pos := range keyPos {
				bitOf[locked.Gates[locked.Inputs[pos]].Name] = i
			}
			const rounds, seed = 32, 99

			discarded := 0
			for _, pr := range rep.Pruned {
				if pr.Class != netlint.ClassDiscarded {
					continue
				}
				discarded++
				bit, ok := bitOf[pr.Key]
				if !ok {
					t.Fatalf("pruned key %q is not a key input", pr.Key)
				}
				e, err := KeyBitFlipError(locked, keyPos, key, bit, rounds, seed)
				if err != nil {
					t.Fatalf("flip error for %s: %v", pr.Key, err)
				}
				if e != 0 {
					t.Errorf("audit discarded %s but the oracle sees flip error %g — unsound prune", pr.Key, e)
				}
			}
			if discarded == 0 {
				t.Error("audit discarded no bit on the planted fixture")
			}

			for _, g := range rep.Linked {
				if g.Kind != netlint.LinkParity || len(g.Keys) != 2 {
					continue
				}
				b0, b1 := bitOf[g.Keys[0]], bitOf[g.Keys[1]]
				joint, err := KeyFlipError(locked, keyPos, key, []int{b0, b1}, rounds, seed)
				if err != nil {
					t.Fatal(err)
				}
				if joint != 0 {
					t.Errorf("parity group %v: joint flip error %g, want 0", g.Keys, joint)
				}
				solo, err := KeyBitFlipError(locked, keyPos, key, b0, rounds, seed)
				if err != nil {
					t.Fatal(err)
				}
				if solo == 0 {
					t.Errorf("parity group %v: member %s flips with zero error — should have been discarded outright", g.Keys, g.Keys[0])
				}
			}

			// Control: the sound bit must corrupt outputs when flipped.
			e, err := KeyBitFlipError(locked, keyPos, key, bitOf["keyinput0"], rounds, seed)
			if err != nil {
				t.Fatal(err)
			}
			if e == 0 {
				t.Error("control bit keyinput0 shows zero flip error; the differential test has no teeth")
			}
		})
	}
}
