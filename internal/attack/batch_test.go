package attack

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/testutil"
)

// scalarOnly hides SimOracle's QueryWords so AsBatch is forced onto
// the generic fallback adapter.
type scalarOnly struct{ o Oracle }

func (s scalarOnly) Query(in []bool) []bool { return s.o.Query(in) }
func (s scalarOnly) NumInputs() int         { return s.o.NumInputs() }
func (s scalarOnly) NumOutputs() int        { return s.o.NumOutputs() }
func (s scalarOnly) Queries() int           { return s.o.Queries() }

// TestQueryWordsMatchesScalar differentially checks the word-level
// fast path against 64 scalar queries on random netlists: for every
// lane, QueryWords bit b must equal Query of pattern b — both on the
// native SimOracle implementation and through the AsBatch fallback
// adapter.
func TestQueryWordsMatchesScalar(t *testing.T) {
	for _, shape := range []struct {
		inputs, outputs, gates int
		seed                   int64
	}{
		{8, 4, 60, 1},
		{12, 6, 150, 2},
		{17, 9, 300, 3}, // odd widths: no lane/word alignment luck
	} {
		nl := testutil.RandomCircuit(t, shape.inputs, shape.outputs, shape.gates, shape.seed)
		batchO, err := NewSimOracle(nl)
		if err != nil {
			t.Fatal(err)
		}
		scalarO, err := NewSimOracle(nl)
		if err != nil {
			t.Fatal(err)
		}
		adapted := AsBatch(scalarOnly{scalarO})
		if _, isSim := adapted.(*SimOracle); isSim {
			t.Fatal("AsBatch failed to wrap a scalar-only oracle")
		}
		if same := AsBatch(batchO); same != BatchOracle(batchO) {
			t.Error("AsBatch re-wrapped a native BatchOracle")
		}

		rng := rand.New(rand.NewSource(shape.seed * 97))
		in := make([]uint64, shape.inputs)
		pat := make([]bool, shape.inputs)
		for round := 0; round < 8; round++ {
			for i := range in {
				in[i] = rng.Uint64()
			}
			native := append([]uint64(nil), batchO.QueryWords(in)...)
			viaAdapter := append([]uint64(nil), adapted.QueryWords(in)...)
			for lane := 0; lane < 64; lane++ {
				for i := range pat {
					pat[i] = in[i]&(1<<uint(lane)) != 0
				}
				want := batchO.Query(pat)
				for o, w := range want {
					if got := native[o]&(1<<uint(lane)) != 0; got != w {
						t.Fatalf("%s round %d lane %d output %d: QueryWords=%v scalar=%v",
							nl.Name, round, lane, o, got, w)
					}
					if got := viaAdapter[o]&(1<<uint(lane)) != 0; got != w {
						t.Fatalf("%s round %d lane %d output %d: adapter=%v scalar=%v",
							nl.Name, round, lane, o, got, w)
					}
				}
			}
		}
	}
}

// scalarErrorRate is the historical per-pattern implementation of
// OracleErrorRate, kept verbatim as the differential reference.
func scalarErrorRate(a, b Oracle, rounds int, seed int64) float64 {
	rng := newRand(seed)
	diff, total := 0, 0
	in := make([]bool, a.NumInputs())
	for r := 0; r < rounds*64; r++ {
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		oa := a.Query(in)
		ob := b.Query(in)
		for i := range oa {
			if oa[i] != ob[i] {
				diff++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diff) / float64(total)
}

// TestOracleErrorRateMatchesScalarReference checks that the batched
// OracleErrorRate returns bit-identical rates and query counts to the
// scalar loop it replaced, across random circuits, wrong keys and
// seeds, on both the native fast path and the fallback adapter.
func TestOracleErrorRateMatchesScalarReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		orig := testutil.SmallCircuit(t, 120, seed)
		locked, keyPos, key := testutil.XORLock(t, orig, 8, seed)
		bound, err := locked.BindInputs(keyPos, key)
		if err != nil {
			t.Fatal(err)
		}
		wrong := testutil.RandomKey(len(keyPos), seed+100)
		wrongBound, err := locked.BindInputs(keyPos, wrong)
		if err != nil {
			t.Fatal(err)
		}

		mk := func() (Oracle, Oracle) {
			a, err := NewSimOracle(wrongBound)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewSimOracle(bound)
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		}

		a1, b1 := mk()
		ref := scalarErrorRate(a1, b1, 6, seed*31)
		a2, b2 := mk()
		got, err := OracleErrorRate(a2, b2, 6, seed*31)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("seed %d: batched rate %v != scalar reference %v", seed, got, ref)
		}
		if a2.Queries() != a1.Queries() || b2.Queries() != b1.Queries() {
			t.Errorf("seed %d: batched counts (%d,%d) != scalar counts (%d,%d)",
				seed, a2.Queries(), b2.Queries(), a1.Queries(), b1.Queries())
		}
		if want := 6 * 64; a2.Queries() != want {
			t.Errorf("seed %d: %d queries, want %d", seed, a2.Queries(), want)
		}

		// Fallback adapter path: same numbers again.
		a3, b3 := mk()
		got3, err := OracleErrorRate(scalarOnly{a3}, scalarOnly{b3}, 6, seed*31)
		if err != nil {
			t.Fatal(err)
		}
		if got3 != ref {
			t.Errorf("seed %d: adapter rate %v != scalar reference %v", seed, got3, ref)
		}
		if a3.Queries() != a1.Queries() {
			t.Errorf("seed %d: adapter count %d != scalar count %d", seed, a3.Queries(), a1.Queries())
		}
	}
}

// TestOracleErrorRateSelfComparison pins the aliasing edge case: both
// sides of the comparison backed by the very same oracle object must
// report zero error (QueryWords buffers may alias).
func TestOracleErrorRateSelfComparison(t *testing.T) {
	nl := testutil.SmallCircuit(t, 100, 5)
	o, err := NewSimOracle(nl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := OracleErrorRate(o, o, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("self-comparison error rate %v, want 0", e)
	}
}

// loadC17 parses the checked-in real ISCAS-85 c17 netlist.
func loadC17(t *testing.T) *netlist.Netlist {
	t.Helper()
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestErrorRateGoldenC17C432 pins VerifyKey/OracleErrorRate to golden
// values for fixed (circuit, lock, key, seed) tuples. The sampling is
// deterministic, so these must stay bit-identical across refactors of
// the oracle hot path; any drift means the sampled patterns changed.
func TestErrorRateGoldenC17C432(t *testing.T) {
	cases := []struct {
		name   string
		orig   func(t *testing.T) *netlist.Netlist
		size   core.Size
		seed   int64
		golden float64
	}{
		{"c17/2x2", loadC17, core.Size2x2, 17, 0.4130859375},
		{"c432/8x8", func(t *testing.T) *netlist.Netlist {
			prof, ok := circuit.ProfileByName("c432")
			if !ok {
				t.Fatal("c432 profile missing")
			}
			nl, err := prof.Synthesize(1.0)
			if err != nil {
				t.Fatal(err)
			}
			return nl
		}, core.Size8x8, 432, 0.548828125},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := core.Lock(tc.orig(t), core.Options{Blocks: 1, Size: tc.size, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			bound, err := res.ApplyKey(res.Key)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := NewSimOracle(bound)
			if err != nil {
				t.Fatal(err)
			}
			// The correct key verifies to exactly zero.
			if e, err := VerifyKey(res.Locked, res.KeyInputPos, res.Key, oracle, 8, tc.seed); err != nil || e != 0 {
				t.Errorf("correct key error rate %v (err %v), want 0", e, err)
			}
			// A fixed wrong key pins the golden rate.
			wrong := testutil.RandomKey(res.KeyBits(), tc.seed+7)
			e, err := VerifyKey(res.Locked, res.KeyInputPos, wrong, oracle, 8, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			if e != tc.golden {
				t.Errorf("wrong-key error rate %v, golden %v", e, tc.golden)
			}
			if q, want := oracle.Queries(), 2*8*64; q != want {
				t.Errorf("verification spent %d oracle queries, want %d (two 8-round runs)", q, want)
			}
		})
	}
}

// TestAppSATDeterminismGoldenC432 pins AppSAT's trajectory on the
// c432/8x8/seed-432 lock: rounds, DIPs, error estimate and oracle
// query count must stay bit-identical for the fixed seed before and
// after the batched reinforcement path.
func TestAppSATDeterminismGoldenC432(t *testing.T) {
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		t.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 432})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultAppSAT()
	opt.Timeout = 2 * time.Minute
	ar, err := AppSAT(res.Locked, res.KeyInputPos, oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Status != KeyFound {
		t.Fatalf("appsat did not converge: %v", ar)
	}
	t.Logf("appsat c432: rounds=%d dips=%d est=%v queries=%d", ar.Rounds, ar.DIPs, ar.ErrorEstimate, oracle.Queries())
	if ar.Rounds != 2 || ar.DIPs != 8 {
		t.Errorf("trajectory rounds=%d dips=%d, golden rounds=2 dips=8", ar.Rounds, ar.DIPs)
	}
	if ar.ErrorEstimate != 0 {
		t.Errorf("final error estimate %v, golden 0", ar.ErrorEstimate)
	}
	if q := oracle.Queries(); q != 8+64 {
		t.Errorf("oracle queries %d, golden 72 (8 DIPs + one 64-query estimation round)", q)
	}
}
