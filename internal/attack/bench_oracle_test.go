package attack

import (
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
)

// benchOracles builds the fixed c432/8x8/seed-432 lock and returns a
// wrong-key oracle and a correct-key oracle, the standard operands of
// OracleErrorRate in the report paths.
func benchOracles(b *testing.B) (*SimOracle, *SimOracle) {
	b.Helper()
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		b.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 432})
	if err != nil {
		b.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		b.Fatal(err)
	}
	wrong := make([]bool, res.KeyBits())
	wrongBound, err := res.ApplyKey(wrong)
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewSimOracle(wrongBound)
	if err != nil {
		b.Fatal(err)
	}
	o, err := NewSimOracle(bound)
	if err != nil {
		b.Fatal(err)
	}
	return a, o
}

// BenchmarkOracleErrorRate measures the 512-pattern (8-round) error
// estimate on c432 through the batched fast path versus the historical
// scalar loop it replaced. Both variants sample identical patterns and
// report identical rates; only the per-pattern dispatch differs.
func BenchmarkOracleErrorRate(b *testing.B) {
	a, o := benchOracles(b)
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := OracleErrorRate(a, o, 8, 432); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		sa, so := scalarOnly{a}, scalarOnly{o}
		for i := 0; i < b.N; i++ {
			if _, err := OracleErrorRate(sa, so, 8, 432); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOracleQueryWords isolates the oracle dispatch itself: one
// 64-lane word query versus 64 scalar queries on the same simulator.
func BenchmarkOracleQueryWords(b *testing.B) {
	_, o := benchOracles(b)
	in := make([]uint64, o.NumInputs())
	for i := range in {
		in[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.Run("words", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.QueryWords(in)
		}
	})
	b.Run("scalar64", func(b *testing.B) {
		b.ReportAllocs()
		sb := AsBatch(scalarOnly{o})
		for i := 0; i < b.N; i++ {
			sb.QueryWords(in)
		}
	})
}

// BenchmarkOracleAppSATC432 measures the full AppSAT wall-clock on the
// c432/8x8 lock, whose random-query reinforcement rounds ride the
// batched oracle path.
func BenchmarkOracleAppSATC432(b *testing.B) {
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		b.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 432})
	if err != nil {
		b.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultAppSAT()
	opt.Timeout = 2 * time.Minute
	run := func(b *testing.B, wrap func(*SimOracle) Oracle) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			oracle, err := NewSimOracle(bound)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			ar, err := AppSAT(res.Locked, res.KeyInputPos, wrap(oracle), opt)
			if err != nil {
				b.Fatal(err)
			}
			if ar.Status != KeyFound {
				b.Fatalf("appsat did not converge: %v", ar)
			}
		}
	}
	b.Run("batched", func(b *testing.B) { run(b, func(o *SimOracle) Oracle { return o }) })
	b.Run("scalar", func(b *testing.B) { run(b, func(o *SimOracle) Oracle { return scalarOnly{o} }) })
}
