package attack

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/sat"
)

// buildMiter reconstructs the attack's solver state at iteration k of
// the DIP loop: the two-copy activation-literal miter plus the first
// k recorded DIP constraints, stamped from a compiled template the
// same way SATAttack itself grows the formula. It returns the
// activation assumption for the difference clause.
func buildMiter(t testing.TB, locked *core.Result, dips [][2][]bool, k int, eng sat.Engine) (assume cnf.Lit) {
	t.Helper()
	funcPos, err := splitInputs(locked.Locked, locked.KeyInputPos)
	if err != nil {
		t.Fatal(err)
	}
	enc := cnf.NewEncoder()
	copy1, err := enc.Encode(locked.Locked, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := make(map[int]cnf.Var, len(funcPos))
	for _, p := range funcPos {
		shared[p] = copy1.Inputs[p]
	}
	copy2, err := enc.Encode(locked.Locked, shared)
	if err != nil {
		t.Fatal(err)
	}
	diffs := make([]cnf.Lit, len(locked.Locked.Outputs))
	for i := range locked.Locked.Outputs {
		diffs[i] = cnf.MkLit(enc.EncodeXor2(
			cnf.MkLit(copy1.Outputs[i], false),
			cnf.MkLit(copy2.Outputs[i], false)), false)
	}
	act := enc.F.NewVar()
	enc.F.AddClause(append(append([]cnf.Lit(nil), diffs...), cnf.MkLit(act, true))...)
	if !eng.AddFormula(enc.F) {
		t.Fatal("base miter unsatisfiable")
	}
	tmpl, err := cnf.CompileTemplate(locked.Locked)
	if err != nil {
		t.Fatal(err)
	}
	key1 := make([]cnf.Var, len(locked.KeyInputPos))
	key2 := make([]cnf.Var, len(locked.KeyInputPos))
	for i, p := range locked.KeyInputPos {
		key1[i] = copy1.Inputs[p]
		key2[i] = copy2.Inputs[p]
	}
	for i := 0; i < k && i < len(dips); i++ {
		if err := constrainDIP(eng, tmpl, funcPos, locked.KeyInputPos, key1, key2, dips[i][0], dips[i][1]); err != nil {
			t.Fatal(err)
		}
	}
	return cnf.MkLit(act, false)
}

// The portfolio solve benchmark instance: a hard solve call from the
// c7552-profile DIP loop. solveBenchBlocks/Seed pick the lock,
// solveBenchIter the iteration — a solve point where the default
// configuration grinds for ~12 s while a diversified worker (the
// no-restart prover, whose racing trajectory is bit-identical to its
// solo run) finishes in ~0.1 s, found by scanning the per-iteration
// solve times of several locks for configuration spread (see
// EXPERIMENTS.md). The prefix up to that iteration is cheap; the
// benchmark times only the hard call itself.
const (
	solveBenchScale  = 0.1
	solveBenchBlocks = 2
	solveBenchSeed   = 17
	solveBenchIter   = 47
)

var solveBench struct {
	once sync.Once
	res  *core.Result
	dips [][2][]bool
	err  error
}

// solveBenchState replays the sequential attack up to solveBenchIter
// (cheap: the hard call is what *ends* the prefix) and caches the
// lock and DIP constraint prefix for every solve benchmark.
func solveBenchState(b *testing.B) (*core.Result, [][2][]bool) {
	b.Helper()
	solveBench.once.Do(func() {
		prof, ok := circuit.ProfileByName("c7552")
		if !ok {
			solveBench.err = errFixture("c7552 profile missing")
			return
		}
		orig, err := prof.Synthesize(solveBenchScale)
		if err != nil {
			solveBench.err = err
			return
		}
		res, err := core.Lock(orig, core.Options{
			Blocks: solveBenchBlocks, Size: core.Size8x8, Seed: solveBenchSeed,
		})
		if err != nil {
			solveBench.err = err
			return
		}
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			solveBench.err = err
			return
		}
		oracle, err := NewSimOracle(bound)
		if err != nil {
			solveBench.err = err
			return
		}
		var trace bytes.Buffer
		if _, err := SATAttack(res.Locked, res.KeyInputPos, oracle, SATOptions{
			Timeout:       10 * time.Minute,
			MaxIterations: solveBenchIter,
			Trace:         &trace,
		}); err != nil {
			solveBench.err = err
			return
		}
		var dips [][2][]bool
		for _, line := range strings.Split(trace.String(), "\n") {
			if line == "" {
				continue
			}
			parts := strings.Split(line, ",")
			if len(parts) != 3 {
				solveBench.err = errFixture("malformed trace line: " + line)
				return
			}
			d, err := parseBits(parts[1])
			if err != nil {
				solveBench.err = err
				return
			}
			o, err := parseBits(parts[2])
			if err != nil {
				solveBench.err = err
				return
			}
			dips = append(dips, [2][]bool{d, o})
		}
		if len(dips) != solveBenchIter {
			solveBench.err = errFixture("trace did not reach the benchmark iteration")
			return
		}
		solveBench.res, solveBench.dips = res, dips
	})
	if solveBench.err != nil {
		b.Fatal(solveBench.err)
	}
	return solveBench.res, solveBench.dips
}

type errFixture string

func (e errFixture) Error() string { return string(e) }

// benchSolvePortfolio times the hard solve call under an n-worker
// engine. Engine construction and miter stamping are excluded from
// the timing; only Solve is measured.
func benchSolvePortfolio(b *testing.B, n int) {
	res, dips := solveBenchState(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sat.NewEngine(n)
		assume := buildMiter(b, res, dips, solveBenchIter, eng)
		b.StartTimer()
		if st := eng.Solve(assume); st == sat.Unknown {
			b.Fatalf("solve returned %v", st)
		}
	}
}

func BenchmarkSolvePortfolio1(b *testing.B) { benchSolvePortfolio(b, 1) }
func BenchmarkSolvePortfolio4(b *testing.B) { benchSolvePortfolio(b, 4) }
func BenchmarkSolvePortfolio8(b *testing.B) { benchSolvePortfolio(b, 8) }

// benchLockedC432 builds the fixed c432/8x8/seed-432 lock used by the
// miter-encoding benchmarks.
func benchLockedC432(b *testing.B) *core.Result {
	b.Helper()
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		b.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 432})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkMiterStampVsReencode measures the per-DIP cost of growing
// the miter: stamping the precompiled CNF template against re-walking
// the netlist with a fresh structural encoder. Both paths emit the
// same clause stream for one circuit copy with the key inputs bound
// to shared variables — exactly what constrainDIP does twice per
// iteration of the DIP loop.
func BenchmarkMiterStampVsReencode(b *testing.B) {
	res := benchLockedC432(b)
	locked := res.Locked
	keyPos := res.KeyInputPos
	tmpl, err := cnf.CompileTemplate(locked)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stamp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := cnf.NewFormula()
			shared := make(map[int]cnf.Var, len(keyPos))
			for _, p := range keyPos {
				shared[p] = f.NewVar()
			}
			if _, ok := tmpl.Stamp(f, shared); !ok {
				b.Fatal("stamp hit a contradiction on an empty sink")
			}
		}
	})
	b.Run("reencode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := cnf.NewEncoder()
			shared := make(map[int]cnf.Var, len(keyPos))
			for _, p := range keyPos {
				shared[p] = enc.F.NewVar()
			}
			if _, err := enc.Encode(locked, shared); err != nil {
				b.Fatal(err)
			}
		}
	})
}
