package attack

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestSATAttackAgainstMorphingOracle reproduces the paper's strongest
// dynamic-obfuscation claim: when the device morphs between oracle
// queries, the DIP constraints the SAT attack accumulates refer to
// different configurations and become mutually inconsistent — the
// attack terminates without a usable key.
func TestSATAttackAgainstMorphingOracle(t *testing.T) {
	orig := smallCircuit(t, 150, 31)
	res, err := core.Lock(orig, core.Options{
		Blocks: 1, Size: core.Size8x8, Seed: 33, ScanEnable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := core.NewDynamicOracle(res, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := SATAttack(res.Locked, res.KeyInputPos, dyn, SATOptions{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Epochs() == 0 {
		t.Skip("attack converged before the first morph epoch")
	}
	if ar.Status == KeyFound {
		// If the attack claims a key despite the morphing, it must be
		// wrong for the functional circuit.
		fBound, err := res.ApplyKey(res.Key)
		if err != nil {
			t.Fatal(err)
		}
		funcOracle, err := NewSimOracle(fBound)
		if err != nil {
			t.Fatal(err)
		}
		e, err := VerifyKey(res.Locked, res.KeyInputPos, ar.Key, funcOracle, 8, 34)
		if err != nil {
			t.Fatal(err)
		}
		if e == 0 {
			t.Fatalf("SAT attack recovered a correct key through a morphing oracle (epochs=%d)", dyn.Epochs())
		}
		t.Logf("attack converged to a functionally wrong key (err %.3f) across %d epochs", e, dyn.Epochs())
	} else {
		t.Logf("attack %v after %d DIPs across %d morph epochs", ar.Status, ar.Iterations, dyn.Epochs())
	}
}

func TestDynamicOracleRequiresScanEnable(t *testing.T) {
	orig := smallCircuit(t, 100, 35)
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size2x2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewDynamicOracle(res, 4, 1); err == nil {
		t.Error("dynamic oracle without scan enable accepted")
	}
}

func TestDynamicOracleFunctionalInvariance(t *testing.T) {
	// Functional-mode behaviour (what the end user sees) must be
	// identical across epochs even while scan responses drift.
	orig := smallCircuit(t, 150, 36)
	res, err := core.Lock(orig, core.Options{
		Blocks: 1, Size: core.Size8x8x8, Seed: 37, ScanEnable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := core.NewDynamicOracle(res, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Drive some queries to force morph epochs.
	in := make([]bool, dyn.NumInputs())
	for q := 0; q < 20; q++ {
		dyn.Query(in)
	}
	if dyn.Epochs() == 0 {
		t.Fatal("no epochs elapsed")
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	eq, cex, err := EquivalentSAT(orig, bound, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("morphing broke functional mode, cex=%v", cex)
	}
}
