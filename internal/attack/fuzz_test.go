package attack

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/sat"
)

// FuzzJournalReplay throws mutated journal bytes at the reader. The
// invariants:
//
//   - ReadJournal never panics, whatever the input.
//   - A rejection wraps ErrJournalCorrupt and names the offending line.
//   - Anything accepted survives a write -> reread round trip through
//     the Journal writer with identical parsed contents, and its
//     records obey the structural rules the reader promises
//     (consecutive iterations, bit widths matching the header).
func FuzzJournalReplay(f *testing.F) {
	// Seed 1: a well-formed finished journal produced by the writer.
	var clean bytes.Buffer
	j := NewJournal(&clean)
	hdr := JournalHeader{Version: JournalVersion, Circuit: "seed", Inputs: 3, Outputs: 2, KeyBits: 4, Fingerprint: "deadbeef"}
	if err := j.WriteHeader(hdr); err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		rec := JournalRecord{Iteration: i, DIP: "010", Oracle: "11", ElapsedMS: int64(i), Solver: sat.Snapshot{Vars: i * 7, Clauses: i * 13}}
		if err := j.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Finish(JournalDone{Status: "key-found", Key: "1010", Iterations: 3, ElapsedMS: 3}); err != nil {
		f.Fatal(err)
	}
	full := clean.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])            // torn mid-file
	f.Add(full[:len(full)-3])            // torn tail
	f.Add(bytes.ToUpper(full))           // case-mangled
	f.Add([]byte(""))                    // empty
	f.Add([]byte("\n\n\n"))              // blank lines
	f.Add([]byte("{\"crc\":\"bad\"}\n")) // bad envelope
	f.Add([]byte("not json at all\n"))
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ReadJournal(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("rejection does not wrap ErrJournalCorrupt: %v", err)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("rejection does not name a line: %v", err)
			}
			return
		}
		if parsed == nil {
			t.Fatal("nil data with nil error")
		}
		// Structural promises on accepted journals.
		for i, rec := range parsed.Records {
			if rec.Iteration != i+1 {
				t.Fatalf("record %d has iteration %d", i, rec.Iteration)
			}
			if len(rec.DIP) != parsed.Header.Inputs {
				t.Fatalf("record %d DIP width %d, header says %d", i, len(rec.DIP), parsed.Header.Inputs)
			}
			if len(rec.Oracle) != parsed.Header.Outputs {
				t.Fatalf("record %d oracle width %d, header says %d", i, len(rec.Oracle), parsed.Header.Outputs)
			}
		}

		// Round trip: re-serialize the accepted content through the
		// writer and reread; both parses must agree.
		var out bytes.Buffer
		w := NewJournal(&out)
		if err := w.WriteHeader(parsed.Header); err != nil {
			t.Fatalf("rewriting accepted header: %v", err)
		}
		for _, rec := range parsed.Records {
			if err := w.Append(rec); err != nil {
				t.Fatalf("rewriting accepted record: %v", err)
			}
		}
		if parsed.Done != nil {
			if err := w.Finish(*parsed.Done); err != nil {
				t.Fatalf("rewriting accepted done: %v", err)
			}
		}
		again, err := ReadJournal(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reread of rewritten journal failed: %v", err)
		}
		if again.Truncated {
			t.Fatal("rewritten journal reads as truncated")
		}
		if again.Header != parsed.Header || len(again.Records) != len(parsed.Records) {
			t.Fatalf("round trip changed shape: %+v vs %+v", again, parsed)
		}
		for i := range again.Records {
			if again.Records[i] != parsed.Records[i] {
				t.Fatalf("round trip changed record %d: %+v vs %+v", i, again.Records[i], parsed.Records[i])
			}
		}
		if (again.Done == nil) != (parsed.Done == nil) {
			t.Fatal("round trip changed done presence")
		}
		if again.Done != nil && *again.Done != *parsed.Done {
			t.Fatalf("round trip changed done: %+v vs %+v", again.Done, parsed.Done)
		}
	})
}
