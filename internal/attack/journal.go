package attack

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/netlist"
	"repro/internal/sat"
)

// The DIP journal makes long-running SAT attacks crash-safe. The paper
// budgets up to five days of wall clock per attacked circuit; without a
// journal, a deadline, crash or sweep kill discards every accumulated
// DIP and oracle response. The journal is an append-only JSON-lines
// file, one fsync'd line per oracle query, so after a crash the attack
// resumes by replaying the journal *without re-querying the oracle* —
// oracle access is the scarce resource in the threat model (a physical
// activated chip on a tester), solver CPU is not.
//
// File format (version 1) — one JSON object per line:
//
//	{"crc":"xxxxxxxx","rec":{...}}
//
// where crc is the IEEE CRC32 of the exact rec bytes, and rec.kind is
// "header" (first line), "dip" (one per oracle query) or "done"
// (terminal). A torn final line — the expected artifact of a crash
// mid-write — is tolerated and dropped; corruption anywhere before the
// final line is an error that names the line.

// JournalVersion is the current journal file format version. Readers
// reject other versions; see DESIGN.md for the compatibility rules.
const JournalVersion = 1

// ErrJournalCorrupt tags all journal parse/integrity errors so callers
// can degrade to a fresh attack (errors.Is).
var ErrJournalCorrupt = errors.New("journal corrupt")

// ErrReplayDiverged reports that deterministic replay of a journal
// produced a different DIP or solver state than the journal records —
// the journal was written by a different circuit, option set or solver
// version. Callers should degrade to a fresh attack.
var ErrReplayDiverged = errors.New("journal replay diverged")

// JournalHeader identifies the attack a journal belongs to. Replay
// validates every field against the resumed attack's arguments.
type JournalHeader struct {
	Version int    `json:"version"`
	Circuit string `json:"circuit"`
	Inputs  int    `json:"inputs"`   // functional (non-key) input count
	Outputs int    `json:"outputs"`  // primary output count
	KeyBits int    `json:"key_bits"` // key input count
	BVA     bool   `json:"bva,omitempty"`
	// Portfolio records that the journal was written by a portfolio
	// attack: its DIP sequence is verdict-correct but trace-
	// nondeterministic, so resumption uses constraint replay instead of
	// verified re-solving. Excluded from header matching — a sequential
	// journal may be resumed by a portfolio attack and vice versa.
	Portfolio bool `json:"portfolio,omitempty"`
	// Fingerprint is the CRC32 of the locked netlist's canonical .bench
	// serialization plus the key positions, so a journal cannot be
	// replayed against a different circuit.
	Fingerprint string `json:"fingerprint"`
}

// JournalRecord is one journaled DIP iteration: the distinguishing
// input pattern, the oracle's response, and the cumulative solver state
// at record time.
type JournalRecord struct {
	Iteration int          `json:"iteration"` // 1-based, consecutive
	DIP       string       `json:"dip"`       // little-endian '0'/'1' bits
	Oracle    string       `json:"oracle"`    // oracle output bits
	ElapsedMS int64        `json:"elapsed_ms"`
	Solver    sat.Snapshot `json:"solver"`
}

// JournalDone is the terminal record of a finished attack.
type JournalDone struct {
	Status     string       `json:"status"` // Status.String()
	Key        string       `json:"key,omitempty"`
	Iterations int          `json:"iterations"`
	ElapsedMS  int64        `json:"elapsed_ms"`
	Solver     sat.Snapshot `json:"solver"`
}

// JournalData is a parsed journal: the header, the complete DIP
// records, and the terminal record if the attack finished.
type JournalData struct {
	Header  JournalHeader
	Records []JournalRecord
	Done    *JournalDone
	// Truncated reports that a torn or corrupt final line was dropped
	// (the expected artifact of a crash mid-write).
	Truncated bool
	// validBytes is the byte offset of the end of the last valid line,
	// used to truncate a torn tail before appending.
	validBytes int64
}

// envelope is the per-line wrapper: CRC32 (IEEE, hex) over the exact
// rec bytes.
type envelope struct {
	CRC string          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Tagged per-kind wrappers: a single embedded struct marshals inline,
// giving {"kind":"dip","iteration":...} lines without field clashes.
type (
	taggedHeader struct {
		Kind string `json:"kind"`
		JournalHeader
	}
	taggedRecord struct {
		Kind string `json:"kind"`
		JournalRecord
	}
	taggedDone struct {
		Kind string `json:"kind"`
		JournalDone
	}
)

// Fingerprint computes the circuit identity recorded in a journal
// header: CRC32 over the canonical .bench serialization of the locked
// netlist followed by the key positions.
func Fingerprint(locked *netlist.Netlist, keyPos []int) (string, error) {
	h := crc32.NewIEEE()
	if err := locked.WriteBench(h); err != nil {
		return "", err
	}
	for _, p := range keyPos {
		fmt.Fprintf(h, ",%d", p)
	}
	return fmt.Sprintf("%08x", h.Sum32()), nil
}

// syncer is implemented by writers that can flush to stable storage
// (notably *os.File).
type syncer interface{ Sync() error }

// Journal is an append-only journal writer. Every line is written and
// — when the underlying writer supports it — fsync'd before Append
// returns, so a record is durable before its oracle response is acted
// on. Safe for use from a single attack goroutine; the internal lock
// only guards against concurrent observers.
type Journal struct {
	mu         sync.Mutex
	w          io.Writer
	headerDone bool
	records    int
}

// NewJournal wraps a writer as a fresh journal sink. WriteHeader must
// be called before the first Append; SATAttack does this itself.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// HeaderWritten reports whether the header line is already present
// (true for journals opened in append mode on a non-empty file).
func (j *Journal) HeaderWritten() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.headerDone
}

// Records returns the number of DIP records written through this
// writer (excluding any pre-existing records in an appended file).
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

func (j *Journal) writeLine(rec any) error {
	tagged, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	env, err := json.Marshal(envelope{
		CRC: fmt.Sprintf("%08x", crc32.ChecksumIEEE(tagged)),
		Rec: json.RawMessage(tagged),
	})
	if err != nil {
		return fmt.Errorf("journal: marshal envelope: %w", err)
	}
	env = append(env, '\n')
	if _, err := j.w.Write(env); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if s, ok := j.w.(syncer); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// WriteHeader writes the identifying header line. It must be the first
// write and must happen exactly once per file.
func (j *Journal) WriteHeader(h JournalHeader) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.headerDone {
		return fmt.Errorf("journal: header already written")
	}
	if h.Version == 0 {
		h.Version = JournalVersion
	}
	if err := j.writeLine(taggedHeader{"header", h}); err != nil {
		return err
	}
	j.headerDone = true
	return nil
}

// Append journals one DIP record durably.
func (j *Journal) Append(r JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.headerDone {
		return fmt.Errorf("journal: Append before WriteHeader")
	}
	if err := j.writeLine(taggedRecord{"dip", r}); err != nil {
		return err
	}
	j.records++
	return nil
}

// Finish journals the terminal record of a completed attack.
func (j *Journal) Finish(d JournalDone) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.headerDone {
		return fmt.Errorf("journal: Finish before WriteHeader")
	}
	return j.writeLine(taggedDone{"done", d})
}

// corruptf builds a line-tagged corruption error (errors.Is
// ErrJournalCorrupt).
func corruptf(line int, format string, args ...any) error {
	return fmt.Errorf("journal: line %d: %s: %w", line, fmt.Sprintf(format, args...), ErrJournalCorrupt)
}

// ReadJournal parses a journal stream. A torn or corrupt *final* line
// is tolerated (dropped, Truncated set); corruption before the final
// line, an unknown version, or out-of-order records produce an error
// naming the offending line.
func ReadJournal(r io.Reader) (*JournalData, error) {
	br := bufio.NewReader(r)
	data := &JournalData{}
	var offset int64
	lineNo := 0
	var pendingErr error // error on some line; fatal only if more content follows
	//rilvet:ignore ctx-loop advances one input line per pass and terminates at EOF, so it is bounded by journal size, not by solver progress
	for {
		line, readErr := br.ReadString('\n')
		if line == "" && readErr != nil {
			break
		}
		lineNo++
		if pendingErr != nil {
			// Content after a bad line: corruption is not a torn tail.
			return nil, pendingErr
		}
		err := parseLine(data, line, lineNo)
		if err == nil && readErr == nil {
			offset += int64(len(line))
			data.validBytes = offset
			continue
		}
		if err == nil {
			// Parsed, but the trailing newline is missing: the record's
			// fsync covers the newline, so an unterminated line is a torn
			// write and the record cannot be trusted complete.
			err = corruptf(lineNo, "missing trailing newline")
		}
		pendingErr = err // tolerated iff nothing follows
		offset += int64(len(line))
		if readErr != nil {
			break
		}
	}
	if pendingErr != nil {
		// The bad line was the last one: drop it and report truncation.
		data.Truncated = true
	}
	if lineNo == 0 || (data.Truncated && data.Header.Version == 0) {
		return nil, corruptf(1, "missing header")
	}
	return data, nil
}

// parseLine validates and applies one journal line.
func parseLine(data *JournalData, line string, lineNo int) error {
	var env envelope
	if err := json.Unmarshal([]byte(line), &env); err != nil {
		return corruptf(lineNo, "bad envelope: %v", err)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.Rec)); got != env.CRC {
		return corruptf(lineNo, "CRC mismatch: line says %q, content is %q", env.CRC, got)
	}
	var kind struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(env.Rec, &kind); err != nil {
		return corruptf(lineNo, "bad record: %v", err)
	}
	switch kind.Kind {
	case "header":
		if lineNo != 1 {
			return corruptf(lineNo, "header after line 1")
		}
		var h JournalHeader
		if err := json.Unmarshal(env.Rec, &h); err != nil {
			return corruptf(lineNo, "bad header: %v", err)
		}
		if h.Version != JournalVersion {
			return corruptf(lineNo, "unsupported journal version %d (want %d)", h.Version, JournalVersion)
		}
		if h.Inputs < 0 || h.Outputs < 0 || h.KeyBits < 0 {
			return corruptf(lineNo, "negative arity in header")
		}
		data.Header = h
	case "dip":
		if lineNo == 1 {
			return corruptf(lineNo, "record before header")
		}
		if data.Done != nil {
			return corruptf(lineNo, "record after done")
		}
		var r JournalRecord
		if err := json.Unmarshal(env.Rec, &r); err != nil {
			return corruptf(lineNo, "bad dip record: %v", err)
		}
		if r.Iteration != len(data.Records)+1 {
			return corruptf(lineNo, "iteration %d out of order (want %d)", r.Iteration, len(data.Records)+1)
		}
		if len(r.DIP) != data.Header.Inputs {
			return corruptf(lineNo, "dip has %d bits, header says %d inputs", len(r.DIP), data.Header.Inputs)
		}
		if len(r.Oracle) != data.Header.Outputs {
			return corruptf(lineNo, "oracle response has %d bits, header says %d outputs", len(r.Oracle), data.Header.Outputs)
		}
		if _, err := parseBits(r.DIP); err != nil {
			return corruptf(lineNo, "dip: %v", err)
		}
		if _, err := parseBits(r.Oracle); err != nil {
			return corruptf(lineNo, "oracle: %v", err)
		}
		data.Records = append(data.Records, r)
	case "done":
		if lineNo == 1 {
			return corruptf(lineNo, "record before header")
		}
		if data.Done != nil {
			return corruptf(lineNo, "duplicate done record")
		}
		var d JournalDone
		if err := json.Unmarshal(env.Rec, &d); err != nil {
			return corruptf(lineNo, "bad done record: %v", err)
		}
		if d.Key != "" {
			if len(d.Key) != data.Header.KeyBits {
				return corruptf(lineNo, "key has %d bits, header says %d", len(d.Key), data.Header.KeyBits)
			}
			if _, err := parseBits(d.Key); err != nil {
				return corruptf(lineNo, "key: %v", err)
			}
		}
		data.Done = &d
	default:
		return corruptf(lineNo, "unknown record kind %q", kind.Kind)
	}
	return nil
}

// parseBits decodes a little-endian '0'/'1' string.
func parseBits(s string) ([]bool, error) {
	bits := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			bits[i] = true
		default:
			return nil, fmt.Errorf("bad bit %q at position %d", s[i], i)
		}
	}
	return bits, nil
}

// OpenJournal opens (or creates) a journal file for a checkpointed
// attack. For a fresh or empty file it returns an empty *Journal and a
// nil *JournalData. For an existing journal it parses the content,
// truncates a torn tail in place, and returns the writer positioned to
// append plus the parsed data for SATOptions.Resume. A journal corrupt
// beyond the torn-tail tolerance is returned as an error (errors.Is
// ErrJournalCorrupt); callers typically delete the file and start
// fresh.
func OpenJournal(path string) (*Journal, *JournalData, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, nil, errors.Join(err, f.Close())
	}
	if st.Size() == 0 {
		return &Journal{w: f}, nil, nil
	}
	data, err := ReadJournal(f)
	if err != nil {
		return nil, nil, errors.Join(fmt.Errorf("%s: %w", path, err), f.Close())
	}
	if data.Truncated {
		if err := f.Truncate(data.validBytes); err != nil {
			return nil, nil, errors.Join(err, f.Close())
		}
	}
	if _, err := f.Seek(data.validBytes, io.SeekStart); err != nil {
		return nil, nil, errors.Join(err, f.Close())
	}
	return &Journal{w: f, headerDone: true}, data, nil
}

// Close closes the underlying writer when it is closeable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
