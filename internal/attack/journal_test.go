package attack

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sat"
	"repro/internal/testutil"
)

// c432Profile synthesizes the full-scale c432 profile circuit used by
// the query-count regression pin.
func c432Profile(t *testing.T) *netlist.Netlist {
	t.Helper()
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		t.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	return orig
}

// fixture is a locked circuit plus everything needed to build fresh
// oracles for repeated attacks against it.
type fixture struct {
	locked *netlist.Netlist
	keyPos []int
	bound  *netlist.Netlist
}

// rilFixture locks a circuit with one RIL block of the given geometry.
func rilFixture(t *testing.T, orig *netlist.Netlist, size core.Size, seed int64) *fixture {
	t.Helper()
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: size, Seed: seed})
	if err != nil {
		t.Fatalf("lock: %v", err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatalf("apply key: %v", err)
	}
	return &fixture{locked: res.Locked, keyPos: res.KeyInputPos, bound: bound}
}

// xorFixture locks a random circuit with the XOR baseline (cheap, many
// DIPs — good for truncation sweeps).
func xorFixture(t *testing.T, gates, nKeys int, seed int64) *fixture {
	t.Helper()
	orig := testutil.SmallCircuit(t, gates, seed)
	locked, keyPos, key := testutil.XORLock(t, orig, nKeys, seed+1)
	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{locked: locked, keyPos: keyPos, bound: bound}
}

// oracle builds a fresh oracle with a zero query counter.
func (f *fixture) oracle(t *testing.T) *SimOracle {
	t.Helper()
	o, err := NewSimOracle(f.bound)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// c17Fixture mirrors the regression test's c17 lock (2x2 block, seed 17).
func c17Fixture(t *testing.T) *fixture {
	t.Helper()
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	return rilFixture(t, orig, core.Size2x2, 17)
}

// attackWithJournal runs a journaled attack to completion and returns
// the result, the journal bytes, and the oracle query count.
func attackWithJournal(t *testing.T, fx *fixture, opt SATOptions) (*SATResult, []byte, int) {
	t.Helper()
	var buf bytes.Buffer
	opt.Journal = NewJournal(&buf)
	oracle := fx.oracle(t)
	res, err := SATAttack(fx.locked, fx.keyPos, oracle, opt)
	if err != nil {
		t.Fatalf("journaled attack: %v", err)
	}
	return res, buf.Bytes(), oracle.Queries()
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	hdr := JournalHeader{Version: JournalVersion, Circuit: "c", Inputs: 3, Outputs: 2, KeyBits: 4, Fingerprint: "00c0ffee"}
	if err := j.WriteHeader(hdr); err != nil {
		t.Fatal(err)
	}
	recs := []JournalRecord{
		{Iteration: 1, DIP: "010", Oracle: "11", ElapsedMS: 5, Solver: sat.Snapshot{Vars: 10, Clauses: 20}},
		{Iteration: 2, DIP: "111", Oracle: "01", ElapsedMS: 9, Solver: sat.Snapshot{Vars: 30, Clauses: 44}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	done := JournalDone{Status: "key-found", Key: "1010", Iterations: 2, ElapsedMS: 12}
	if err := j.Finish(done); err != nil {
		t.Fatal(err)
	}

	data, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if data.Truncated {
		t.Error("clean journal reported truncated")
	}
	if data.Header != hdr {
		t.Errorf("header round trip: got %+v want %+v", data.Header, hdr)
	}
	if len(data.Records) != len(recs) {
		t.Fatalf("got %d records, want %d", len(data.Records), len(recs))
	}
	for i := range recs {
		if data.Records[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, data.Records[i], recs[i])
		}
	}
	if data.Done == nil || *data.Done != done {
		t.Errorf("done round trip: got %+v want %+v", data.Done, done)
	}
}

func TestJournalSyncPerRecord(t *testing.T) {
	var buf bytes.Buffer
	fw := testutil.NewFaultyWriter(&buf, -1)
	j := NewJournal(fw)
	if err := j.WriteHeader(JournalHeader{Inputs: 1, Outputs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Iteration: 1, DIP: "0", Oracle: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Iteration: 2, DIP: "1", Oracle: "0"}); err != nil {
		t.Fatal(err)
	}
	if fw.Syncs != 3 {
		t.Errorf("journal issued %d syncs for 3 lines, want 3 (fsync-on-record)", fw.Syncs)
	}
}

func TestReadJournalCorruptMidFileNamesLine(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.WriteHeader(JournalHeader{Circuit: "c", Inputs: 2, Outputs: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(JournalRecord{Iteration: i, DIP: "01", Oracle: "1"}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	// Flip a byte inside line 3 (the second dip record).
	corrupted := lines[0] + lines[1] + strings.Replace(lines[2], "dip", "dIp", 1) + lines[3]
	_, err := ReadJournal(strings.NewReader(corrupted))
	if err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("error does not wrap ErrJournalCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error does not name line 3: %v", err)
	}

	// The same damage on the *final* line is tolerated as a torn tail.
	tail := lines[0] + lines[1] + lines[2] + strings.Replace(lines[3], "dip", "dIp", 1)
	data, err := ReadJournal(strings.NewReader(tail))
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if !data.Truncated || len(data.Records) != 2 {
		t.Errorf("torn tail: truncated=%v records=%d, want true/2", data.Truncated, len(data.Records))
	}
}

func TestOpenJournalTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.journal")
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.WriteHeader(JournalHeader{Circuit: "c", Inputs: 1, Outputs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Iteration: 1, DIP: "0", Oracle: "1"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Simulate a crash mid-write of record 2: half a line at the end.
	if err := j.Append(JournalRecord{Iteration: 2, DIP: "1", Oracle: "0"}); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:len(full)+17]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	w, data, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal on torn file: %v", err)
	}
	if data == nil || len(data.Records) != 1 || !data.Truncated {
		t.Fatalf("torn journal parsed wrong: %+v", data)
	}
	// Appending after the repair must yield a clean, fully parseable file.
	if err := w.Append(JournalRecord{Iteration: 2, DIP: "1", Oracle: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reread, err := ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("journal corrupt after repair+append: %v", err)
	}
	if reread.Truncated || len(reread.Records) != 2 {
		t.Errorf("repaired journal: truncated=%v records=%d, want false/2", reread.Truncated, len(reread.Records))
	}
	if reread.Records[1].Oracle != "1" {
		t.Errorf("appended record lost: %+v", reread.Records[1])
	}
}

// TestJournalResumeZeroRequeriesC17 is the acceptance check: killing a
// c17 attack after k DIPs and resuming re-issues zero oracle queries
// for the journaled DIPs and recovers the same key.
func TestJournalResumeZeroRequeriesC17(t *testing.T) {
	testJournalResumeZeroRequeries(t, c17Fixture(t))
}

// TestJournalResumeZeroRequeriesC432 does the same on the synthesized
// c432 profile with an 8x8 routing block (the regression pin's shape).
func TestJournalResumeZeroRequeriesC432(t *testing.T) {
	if testing.Short() {
		t.Skip("c432 resume sweep in -short mode")
	}
	orig := c432Profile(t)
	testJournalResumeZeroRequeries(t, rilFixture(t, orig, core.Size8x8, 432))
}

func testJournalResumeZeroRequeries(t *testing.T, fx *fixture) {
	t.Helper()
	full, journal, totalQueries := attackWithJournal(t, fx, SATOptions{Timeout: 2 * time.Minute})
	if full.Status != KeyFound {
		t.Fatalf("uninterrupted attack did not converge: %v", full)
	}
	if full.Iterations != totalQueries {
		t.Fatalf("uninterrupted attack: %d iterations but %d queries", full.Iterations, totalQueries)
	}
	lines := strings.SplitAfter(string(journal), "\n")
	// lines: header, N dip records, done, "" — resume from every prefix
	// that ends after k complete dip records.
	for k := 0; k <= full.Iterations; k++ {
		prefix := strings.Join(lines[:1+k], "")
		data, err := ReadJournal(strings.NewReader(prefix))
		if err != nil {
			t.Fatalf("k=%d: reading truncated journal: %v", k, err)
		}
		if len(data.Records) != k || data.Done != nil {
			t.Fatalf("k=%d: parsed %d records done=%v", k, len(data.Records), data.Done)
		}
		oracle := fx.oracle(t)
		res, err := SATAttack(fx.locked, fx.keyPos, oracle, SATOptions{
			Timeout: 2 * time.Minute, Resume: data,
		})
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if res.Status != KeyFound {
			t.Fatalf("k=%d: resumed attack did not converge: %v", k, res)
		}
		if !bytesEqual(res.Key, full.Key) {
			t.Errorf("k=%d: resumed key %s != uninterrupted key %s", k, bitString(res.Key), bitString(full.Key))
		}
		if res.Replayed != k {
			t.Errorf("k=%d: replayed %d journaled DIPs", k, res.Replayed)
		}
		if res.Iterations != full.Iterations {
			t.Errorf("k=%d: resumed run took %d total iterations, uninterrupted took %d", k, res.Iterations, full.Iterations)
		}
		// The heart of the acceptance criterion: zero re-queries for
		// journaled DIPs, so this run queried exactly the remainder.
		if got, want := oracle.Queries(), totalQueries-k; got != want {
			t.Errorf("k=%d: resumed run made %d oracle queries, want %d (zero re-queries)", k, got, want)
		}
	}
}

// TestJournalResumeDoneShortCircuit resumes a finished journal: the
// result must be reconstructed without a single solver call or oracle
// query.
func TestJournalResumeDoneShortCircuit(t *testing.T) {
	fx := xorFixture(t, 60, 6, 301)
	full, journal, _ := attackWithJournal(t, fx, SATOptions{Timeout: time.Minute})
	if full.Status != KeyFound {
		t.Fatalf("attack did not converge: %v", full)
	}
	data, err := ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if data.Done == nil {
		t.Fatal("finished attack wrote no done record")
	}
	oracle := fx.oracle(t)
	res, err := SATAttack(fx.locked, fx.keyPos, oracle, SATOptions{Timeout: time.Minute, Resume: data})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Queries() != 0 {
		t.Errorf("resuming a finished journal queried the oracle %d times", oracle.Queries())
	}
	if res.Status != KeyFound || !bytesEqual(res.Key, full.Key) {
		t.Errorf("reconstructed result differs: %v vs %v", res, full)
	}
	if res.Replayed != full.Iterations || res.Iterations != full.Iterations {
		t.Errorf("reconstructed counts differ: %+v vs %+v", res, full)
	}
}

// TestJournalResumeWrongCircuitRejected replays a journal against a
// different locked circuit; the header fingerprint must reject it.
func TestJournalResumeWrongCircuitRejected(t *testing.T) {
	fxA := xorFixture(t, 60, 6, 310)
	fxB := xorFixture(t, 60, 6, 320)
	_, journal, _ := attackWithJournal(t, fxA, SATOptions{Timeout: time.Minute})
	data, err := ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	_, err = SATAttack(fxB.locked, fxB.keyPos, fxB.oracle(t), SATOptions{Timeout: time.Minute, Resume: data})
	if !errors.Is(err, ErrReplayDiverged) {
		t.Errorf("cross-circuit resume error = %v, want ErrReplayDiverged", err)
	}
}

// TestJournalCrashInjectionProperty is the crash-injection property:
// for a spread of byte budgets, the attack dies mid-journal (torn
// final record included); resuming from whatever landed on "disk"
// recovers the same final key, and the durable pre-crash queries plus
// the resumed run's queries never exceed the uninterrupted run's
// count.
func TestJournalCrashInjectionProperty(t *testing.T) {
	fx := xorFixture(t, 70, 8, 330)
	full, journal, totalQueries := attackWithJournal(t, fx, SATOptions{Timeout: time.Minute})
	if full.Status != KeyFound {
		t.Fatalf("uninterrupted attack did not converge: %v", full)
	}
	if full.Iterations < 3 {
		t.Fatalf("fixture too easy (%d DIPs) to exercise truncation", full.Iterations)
	}
	step := len(journal)/17 + 1
	for budget := 1; budget < len(journal); budget += step {
		var disk bytes.Buffer
		fw := testutil.NewFaultyWriter(&disk, budget)
		oracle := fx.oracle(t)
		_, err := SATAttack(fx.locked, fx.keyPos, oracle, SATOptions{
			Timeout: time.Minute, Journal: NewJournal(fw),
		})
		if err == nil {
			// Budget outlived the attack: nothing crashed; skip.
			continue
		}
		if !errors.Is(err, testutil.ErrInjected) {
			t.Fatalf("budget=%d: attack failed with %v, want injected fault", budget, err)
		}

		// What survived the crash: a valid prefix, possibly torn.
		data, rerr := ReadJournal(bytes.NewReader(disk.Bytes()))
		var resume *JournalData
		if rerr == nil {
			resume = data
		} else if !errors.Is(rerr, ErrJournalCorrupt) {
			t.Fatalf("budget=%d: reading crashed journal: %v", budget, rerr)
		}
		durable := 0
		if resume != nil {
			durable = len(resume.Records)
		}

		o2 := fx.oracle(t)
		res, err := SATAttack(fx.locked, fx.keyPos, o2, SATOptions{
			Timeout: time.Minute, Resume: resume,
		})
		if err != nil {
			t.Fatalf("budget=%d: resume after crash: %v", budget, err)
		}
		if res.Status != KeyFound {
			t.Fatalf("budget=%d: resumed attack did not converge: %v", budget, res)
		}
		if !bytesEqual(res.Key, full.Key) {
			t.Errorf("budget=%d: resumed key %s != uninterrupted %s", budget, bitString(res.Key), bitString(full.Key))
		}
		if got := durable + o2.Queries(); got > totalQueries {
			t.Errorf("budget=%d: durable(%d) + resumed(%d) = %d oracle queries, uninterrupted needed %d",
				budget, durable, o2.Queries(), got, totalQueries)
		}
	}
}

// TestJournalContinuationMatchesFreshRun is the determinism check on a
// routed RIL-block circuit: write → truncate → replay → continue must
// reproduce the uninterrupted run's full DIP sequence and key, byte
// for byte, with the continuation appended to the same journal file.
func TestJournalContinuationMatchesFreshRun(t *testing.T) {
	orig := testutil.SmallCircuit(t, 80, 4)
	fx := rilFixture(t, orig, core.Size2x2, 9)
	full, journal, _ := attackWithJournal(t, fx, SATOptions{Timeout: 2 * time.Minute})
	if full.Status != KeyFound {
		t.Fatalf("uninterrupted attack did not converge: %v", full)
	}
	fullData, err := ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(journal), "\n")
	for _, k := range []int{0, 1, full.Iterations / 2, full.Iterations} {
		if k > full.Iterations {
			continue
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "resume.journal")
		if err := os.WriteFile(path, []byte(strings.Join(lines[:1+k], "")), 0o644); err != nil {
			t.Fatal(err)
		}
		w, data, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		oracle := fx.oracle(t)
		res, err := SATAttack(fx.locked, fx.keyPos, oracle, SATOptions{
			Timeout: 2 * time.Minute, Journal: w, Resume: data,
		})
		if err != nil {
			t.Fatalf("k=%d: resumed attack: %v", k, err)
		}
		if res.Status != KeyFound || !bytesEqual(res.Key, full.Key) {
			t.Fatalf("k=%d: resumed result differs: %v vs %v", k, res, full)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := ReadJournal(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("k=%d: merged journal corrupt: %v", k, err)
		}
		if len(merged.Records) != len(fullData.Records) {
			t.Fatalf("k=%d: merged journal has %d records, uninterrupted %d", k, len(merged.Records), len(fullData.Records))
		}
		for i := range merged.Records {
			m, f := merged.Records[i], fullData.Records[i]
			if m.Iteration != f.Iteration || m.DIP != f.DIP || m.Oracle != f.Oracle || m.Solver != f.Solver {
				t.Errorf("k=%d: record %d differs:\n  merged: %+v\n  fresh : %+v", k, i, m, f)
			}
		}
		if merged.Done == nil || merged.Done.Key != bitString(full.Key) {
			t.Errorf("k=%d: merged done record wrong: %+v", k, merged.Done)
		}
	}
}

func bytesEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
