package attack

import (
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// RoutingHint describes one key-controlled permutation network inside
// a locked netlist, as recovered by the attacker's structural analysis
// (the banyan MUX lattice is an easily recognizable pattern). The
// one-layer linear encoding of §IV-B replaces the network's MUX-tree
// sub-CNF with a single crossbar layer selected by one-hot variables.
type RoutingHint struct {
	Width       int
	InputNames  []string // wires entering the network, line order
	OutputNames []string // gates leaving the network, line order
	KeyPos      []int    // the network's switch-key input positions
}

// HintsFromRIL extracts the routing networks of an RIL-locked design
// (in the threat model the attacker reverse-engineers this structure
// from the netlist; the lock result just saves us re-implementing the
// pattern matcher).
func HintsFromRIL(res *core.Result) []RoutingHint {
	var hints []RoutingHint
	for _, blk := range res.Blocks {
		if blk.Size.InputRouting {
			hints = append(hints, RoutingHint{
				Width:       2 * blk.Size.K,
				InputNames:  blk.PortWire,
				OutputNames: blk.InNetOut,
				KeyPos:      mapKeyPos(res, blk.InKeyPos),
			})
		}
		if blk.Size.OutputRouting {
			hints = append(hints, RoutingHint{
				Width:       blk.Size.K,
				InputNames:  blk.LUTOut,
				OutputNames: blk.OutNetOut,
				KeyPos:      mapKeyPos(res, blk.OutKeyPos),
			})
		}
	}
	return hints
}

// mapKeyPos converts key-vector indices to input positions.
func mapKeyPos(res *core.Result, keyIdx []int) []int {
	out := make([]int, len(keyIdx))
	for i, ki := range keyIdx {
		out[i] = res.KeyInputPos[ki]
	}
	return out
}

// HintFromRoutingNetwork adapts the routing-only baseline's network
// descriptor.
func HintFromRoutingNetwork(width int, inputNames, outputNames []string, keyPos []int) RoutingHint {
	return RoutingHint{Width: width, InputNames: inputNames, OutputNames: outputNames, KeyPos: keyPos}
}

// OneHotResult reports the one-layer linear-encoding attack.
type OneHotResult struct {
	SAT *SATResult
	// Realizable reports whether every recovered crossbar permutation
	// mapped back onto banyan switch settings (the relaxed key space is
	// a superset of what the silicon can realize).
	Realizable bool
	// Key is the recovered key in the original key space, valid when
	// SAT.Status == KeyFound and Realizable.
	Key []bool
}

// SATAttackOneHot mounts the SAT attack against the one-layer linear
// re-encoding of the routing networks (paper §IV-B): each hinted
// network is replaced by an N×N crossbar whose selector variables are
// constrained to a permutation matrix. This is the pre-processing that
// defeated routing-only obfuscation [11]; against RIL-Blocks the
// coupled LUT layer keeps the instance hard.
func SATAttackOneHot(locked *netlist.Netlist, keyPos []int, hints []RoutingHint, oracle Oracle, opt SATOptions) (*OneHotResult, error) {
	start := time.Now()
	relaxed, relaxedKeyPos, selGroups, err := buildRelaxed(locked, keyPos, hints)
	if err != nil {
		return nil, err
	}
	funcPos, err := splitInputs(relaxed, relaxedKeyPos)
	if err != nil {
		return nil, err
	}
	if oracle.NumInputs() != len(funcPos) || oracle.NumOutputs() != len(relaxed.Outputs) {
		return nil, fmt.Errorf("attack: onehot: oracle signature mismatch (%d/%d inputs, %d/%d outputs)",
			oracle.NumInputs(), len(funcPos), oracle.NumOutputs(), len(relaxed.Outputs))
	}

	enc := cnf.NewEncoder()
	copy1, err := enc.Encode(relaxed, nil)
	if err != nil {
		return nil, err
	}
	shared := make(map[int]cnf.Var, len(funcPos))
	for _, p := range funcPos {
		shared[p] = copy1.Inputs[p]
	}
	copy2, err := enc.Encode(relaxed, shared)
	if err != nil {
		return nil, err
	}
	diffs := make([]cnf.Lit, len(relaxed.Outputs))
	for i := range relaxed.Outputs {
		diffs[i] = cnf.MkLit(enc.EncodeXor2(
			cnf.MkLit(copy1.Outputs[i], false),
			cnf.MkLit(copy2.Outputs[i], false)), false)
	}
	act := enc.F.NewVar()
	enc.F.AddClause(append(append([]cnf.Lit(nil), diffs...), cnf.MkLit(act, true))...)

	// Permutation-matrix constraints on the selector groups, for both
	// key copies (DIP-constraint copies share these key variables, so
	// the constraints cover them too).
	for _, gv := range []*cnf.GateVars{copy1, copy2} {
		for _, grp := range selGroups {
			n := grp.width
			// Rows: each output picks exactly one input.
			for j := 0; j < n; j++ {
				lits := make([]cnf.Lit, n)
				for i := 0; i < n; i++ {
					lits[i] = cnf.MkLit(gv.Inputs[grp.selPos[j*n+i]], false)
				}
				enc.ExactlyOne(lits)
			}
			// Columns: each input feeds exactly one output.
			for i := 0; i < n; i++ {
				lits := make([]cnf.Lit, n)
				for j := 0; j < n; j++ {
					lits[j] = cnf.MkLit(gv.Inputs[grp.selPos[j*n+i]], false)
				}
				enc.ExactlyOne(lits)
			}
		}
	}

	if opt.BVA {
		cnf.BVA(enc.F, 4, 32)
	}

	tmpl, err := cnf.CompileTemplate(relaxed)
	if err != nil {
		return nil, err
	}

	solver := sat.New()
	if !solver.AddFormula(enc.F) {
		return nil, fmt.Errorf("attack: onehot: base encoding unsatisfiable")
	}
	if opt.Timeout > 0 {
		solver.SetDeadline(start.Add(opt.Timeout))
	}
	if opt.Context != nil {
		solver.SetContext(opt.Context)
	}

	key1 := make([]cnf.Var, len(relaxedKeyPos))
	key2 := make([]cnf.Var, len(relaxedKeyPos))
	for i, p := range relaxedKeyPos {
		key1[i] = copy1.Inputs[p]
		key2[i] = copy2.Inputs[p]
	}

	res := &OneHotResult{SAT: &SATResult{}}
	for {
		if opt.MaxIterations > 0 && res.SAT.Iterations >= opt.MaxIterations {
			res.SAT.Status = Timeout
			break
		}
		st := solver.Solve(cnf.MkLit(act, false))
		if st == sat.Unknown {
			res.SAT.Status = Timeout
			break
		}
		if st == sat.Unsat {
			st = solver.Solve(cnf.MkLit(act, true))
			if st != sat.Sat {
				res.SAT.Status = Failed
				break
			}
			relaxedKey := make([]bool, len(relaxedKeyPos))
			for i, v := range key1 {
				relaxedKey[i] = solver.Model()[v]
			}
			res.SAT.Status = KeyFound
			res.Key, res.Realizable = mapBackKey(locked, keyPos, hints, relaxed, relaxedKeyPos, relaxedKey, selGroups)
			break
		}
		dip := make([]bool, len(funcPos))
		for i, p := range funcPos {
			dip[i] = solver.ModelValue(cnf.MkLit(copy1.Inputs[p], false))
		}
		out := oracle.Query(dip)
		res.SAT.Iterations++
		if err := constrainDIP(solver, tmpl, funcPos, relaxedKeyPos, key1, key2, dip, out); err != nil {
			return nil, err
		}
	}
	res.SAT.Elapsed = time.Since(start)
	res.SAT.Solver = solver.Stats()
	return res, nil
}

// selGroup tracks one crossbar's selector inputs within the relaxed
// netlist: selPos[j*width+i] is the input position of sel(out j, in i).
type selGroup struct {
	width  int
	selPos []int
	hint   RoutingHint
}

// buildRelaxed clones the locked netlist and replaces each hinted
// network with a one-hot crossbar.
func buildRelaxed(locked *netlist.Netlist, keyPos []int, hints []RoutingHint) (*netlist.Netlist, []int, []selGroup, error) {
	c := locked.Clone()
	isOldKey := map[int]bool{}
	for _, p := range keyPos {
		isOldKey[p] = true
	}
	var groups []selGroup
	for h, hint := range hints {
		n := hint.Width
		if len(hint.InputNames) != n || len(hint.OutputNames) != n {
			return nil, nil, nil, fmt.Errorf("attack: onehot: hint %d geometry mismatch", h)
		}
		grp := selGroup{width: n, hint: hint}
		ins := make([]int, n)
		for i, name := range hint.InputNames {
			id, ok := c.GateID(name)
			if !ok {
				return nil, nil, nil, fmt.Errorf("attack: onehot: missing input wire %q", name)
			}
			ins[i] = id
		}
		for j := 0; j < n; j++ {
			terms := make([]int, n)
			for i := 0; i < n; i++ {
				grp.selPos = append(grp.selPos, len(c.Inputs))
				sel := c.AddInput(c.FreshName(fmt.Sprintf("onehot%d_%d_%d", h, j, i)))
				terms[i] = c.AddGate(c.FreshName(fmt.Sprintf("xb%d_%d_%d", h, j, i)), netlist.And, sel, ins[i])
			}
			out := terms[0]
			for i := 1; i < n; i++ {
				out = c.AddGate(c.FreshName(fmt.Sprintf("xbo%d_%d_%d", h, j, i)), netlist.Or, out, terms[i])
			}
			oldID, ok := c.GateID(hint.OutputNames[j])
			if !ok {
				return nil, nil, nil, fmt.Errorf("attack: onehot: missing output wire %q", hint.OutputNames[j])
			}
			c.RedirectFanout(oldID, out)
		}
		groups = append(groups, grp)
	}
	// Drop the dead banyan MUX lattice so the relaxed CNF really is
	// smaller (inputs — including the now-dangling switch keys — are
	// always retained, so input positions stay valid).
	c.Prune()
	if err := c.Validate(); err != nil {
		return nil, nil, nil, err
	}
	// Relaxed key set: original keys (the dead switch keys stay in the
	// set as unconstrained variables) plus all selector inputs.
	relaxedKeyPos := append([]int(nil), keyPos...)
	for _, grp := range groups {
		relaxedKeyPos = append(relaxedKeyPos, grp.selPos...)
	}
	return c, relaxedKeyPos, groups, nil
}

// mapBackKey converts a relaxed-model key into the original key space:
// selector matrices become banyan switch settings via destination-tag
// routing; all other key bits carry over.
func mapBackKey(locked *netlist.Netlist, keyPos []int, hints []RoutingHint,
	relaxed *netlist.Netlist, relaxedKeyPos []int, relaxedKey []bool, groups []selGroup) ([]bool, bool) {

	valueAt := make(map[int]bool, len(relaxedKeyPos)) // input position -> bit
	for i, p := range relaxedKeyPos {
		valueAt[p] = relaxedKey[i]
	}
	// Original non-switch keys carry over positionally (the clone
	// preserved input order for the original inputs).
	key := make([]bool, len(keyPos))
	for i, p := range keyPos {
		key[i] = valueAt[p]
	}
	// Overwrite each network's switch keys with a routed realization.
	posToIdx := make(map[int]int, len(keyPos))
	for i, p := range keyPos {
		posToIdx[p] = i
	}
	ok := true
	for gi, grp := range groups {
		n := grp.width
		dest := make([]int, n)
		valid := true
		for j := 0; j < n; j++ {
			src := -1
			for i := 0; i < n; i++ {
				if valueAt[grp.selPos[j*n+i]] {
					if src >= 0 {
						valid = false
					}
					src = i
				}
			}
			if src < 0 {
				valid = false
				break
			}
			dest[src] = j
		}
		if !valid {
			ok = false
			continue
		}
		keys, routed := core.RouteBanyan(n, dest)
		if !routed {
			ok = false
			continue
		}
		for ki, kp := range hints[gi].KeyPos {
			if idx, exists := posToIdx[kp]; exists {
				key[idx] = keys[ki]
			}
		}
	}
	return key, ok
}
