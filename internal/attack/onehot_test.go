package attack

import (
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/netlist"
)

func TestOneHotBreaksRoutingOnlyLock(t *testing.T) {
	// The one-layer re-encoding (paper §IV-B, following [11]) must
	// crack a routing-only (FullLock-style) network and map the
	// crossbar back to banyan switch settings.
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "rl", Inputs: 16, Outputs: 12, Gates: 300, Locality: 0.3,
	}, 51)
	if err != nil {
		t.Fatal(err)
	}
	l, net, err := baselines.RoutingLock(orig, 8, 52)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	hints := []RoutingHint{HintFromRoutingNetwork(net.Width, net.InputNames, net.OutputNames, net.KeyPos)}
	res, err := SATAttackOneHot(l.Netlist, l.KeyPos, hints, oracle, SATOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.SAT.Status != KeyFound {
		t.Fatalf("one-hot attack did not converge on a routing-only lock: %v", res.SAT)
	}
	if !res.Realizable {
		t.Fatal("recovered permutation not realizable on the banyan")
	}
	e, err := VerifyKey(l.Netlist, l.KeyPos, res.Key, oracle, 8, 53)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("mapped-back key error rate %v, want 0", e)
	}
}

func TestOneHotStillHardOnRIL(t *testing.T) {
	// Against full RIL-Blocks the coupled LUT layer keeps the relaxed
	// instance hard (the paper's §III-A design argument).
	orig := smallCircuit(t, 300, 54)
	res, err := core.Lock(orig, core.Options{Blocks: 2, Size: core.Size8x8x8, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	hints := HintsFromRIL(res)
	if len(hints) != 4 { // 2 blocks x (input + output banyan)
		t.Fatalf("expected 4 hints, got %d", len(hints))
	}
	ar, err := SATAttackOneHot(res.Locked, res.KeyInputPos, hints, oracle,
		SATOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ar.SAT.Status == KeyFound {
		if !ar.Realizable {
			t.Log("relaxed key found but not realizable — attack fails either way")
			return
		}
		e, err := VerifyKey(res.Locked, res.KeyInputPos, ar.Key, oracle, 8, 56)
		if err != nil {
			t.Fatal(err)
		}
		if e != 0 {
			t.Errorf("one-hot attack converged to a wrong key (err %v) — should be caught", e)
		}
		t.Skip("one-hot attack solved 2x 8x8x8 within 1s on this machine")
	}
}

func TestOneHotKeyEquivalenceOnSmallRIL(t *testing.T) {
	// On a small RIL instance the one-hot attack converges; the mapped
	// key must be functionally correct (even if bitwise different).
	orig := smallCircuit(t, 120, 57)
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size{K: 2, InputRouting: true, OutputRouting: true}, Seed: 58})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := SATAttackOneHot(res.Locked, res.KeyInputPos, HintsFromRIL(res), oracle,
		SATOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ar.SAT.Status != KeyFound {
		t.Skipf("2x2x2 one-hot attack did not converge: %v", ar.SAT)
	}
	if !ar.Realizable {
		t.Skip("relaxed permutation not realizable (over-approximate key space)")
	}
	e, err := VerifyKey(res.Locked, res.KeyInputPos, ar.Key, oracle, 8, 59)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("mapped key error rate %v, want 0", e)
	}
}

func TestRoutingLockBaseline(t *testing.T) {
	orig := smallCircuit(t, 200, 60)
	l, net, err := baselines.RoutingLock(orig, 8, 61)
	if err != nil {
		t.Fatal(err)
	}
	if net.Width != 8 || len(net.InputNames) != 8 || len(net.OutputNames) != 8 {
		t.Fatalf("network geometry %+v", net)
	}
	if l.KeyBits() != core.BanyanSwitchCount(8) {
		t.Errorf("key bits %d, want %d", l.KeyBits(), core.BanyanSwitchCount(8))
	}
	// Wrong keys must corrupt (routing obfuscation has real output
	// corruption, unlike point functions).
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0]
	wb, err := l.Netlist.BindInputs(l.KeyPos, wrong)
	if err != nil {
		t.Fatal(err)
	}
	boundOK, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := EquivalentSAT(boundOK, wb, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Log("flipping one switch produced an equivalent routing (possible for symmetric positions)")
	}
}
