// Package attack implements the oracle-guided attacks the paper
// evaluates against: the Subramanyan-style SAT attack (DIP loop over an
// incremental CDCL solver), AppSAT (approximate attack with random-
// query error estimation), removal-attack analysis, and a ScanSAT-style
// attack on the scan-enable obfuscation. It also provides SAT-based
// equivalence checking used to validate recovered keys.
package attack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
)

// Oracle is an activated IC the attacker can query with input patterns.
// In the paper's threat model the attacker holds the reverse-engineered
// locked netlist plus unlimited oracle access.
type Oracle interface {
	// Query returns the primary outputs for one input assignment.
	Query(in []bool) []bool
	// NumInputs returns the functional input count (without keys).
	NumInputs() int
	// NumOutputs returns the output count.
	NumOutputs() int
	// Queries returns how many times the oracle has been asked.
	Queries() int
}

// SimOracle is an oracle backed by netlist simulation of the activated
// circuit (the locked design with the correct key bound, or the
// scan-mode view of it when scan-enable obfuscation corrupts test
// responses).
//
// SimOracle is safe for concurrent use: the simulator's scratch
// buffers are guarded by a mutex (queries against one activated chip
// are inherently serialized in the paper's threat model anyway) and
// the query counter is atomic, so concurrent sweep workers may share
// one oracle. Workers that must not contend on the lock should Clone.
type SimOracle struct {
	nl      *netlist.Netlist
	mu      sync.Mutex // guards sim's internal evaluation buffers
	sim     *netlist.Simulator
	queries atomic.Int64
}

// NewSimOracle wraps an activated netlist.
func NewSimOracle(nl *netlist.Netlist) (*SimOracle, error) {
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		return nil, fmt.Errorf("attack: oracle: %w", err)
	}
	return &SimOracle{nl: nl, sim: sim}, nil
}

// Clone returns an independent oracle over the same activated netlist
// with a fresh query counter. Sweep workers that each need an
// uncontended oracle clone one per job.
func (o *SimOracle) Clone() (*SimOracle, error) {
	return NewSimOracle(o.nl)
}

// Query implements Oracle.
func (o *SimOracle) Query(in []bool) []bool {
	o.queries.Add(1)
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sim.Eval(in)
}

// NumInputs implements Oracle.
func (o *SimOracle) NumInputs() int { return len(o.nl.Inputs) }

// NumOutputs implements Oracle.
func (o *SimOracle) NumOutputs() int { return len(o.nl.Outputs) }

// Queries implements Oracle.
func (o *SimOracle) Queries() int { return int(o.queries.Load()) }

// splitInputs partitions the locked netlist's input positions into key
// positions (given) and functional positions (the rest, in order).
func splitInputs(locked *netlist.Netlist, keyPos []int) (funcPos []int, err error) {
	isKey := make(map[int]bool, len(keyPos))
	for _, p := range keyPos {
		if p < 0 || p >= len(locked.Inputs) {
			return nil, fmt.Errorf("attack: key position %d out of range", p)
		}
		if isKey[p] {
			return nil, fmt.Errorf("attack: duplicate key position %d", p)
		}
		isKey[p] = true
	}
	for p := range locked.Inputs {
		if !isKey[p] {
			funcPos = append(funcPos, p)
		}
	}
	return funcPos, nil
}
