// Package attack implements the oracle-guided attacks the paper
// evaluates against: the Subramanyan-style SAT attack (DIP loop over an
// incremental CDCL solver), AppSAT (approximate attack with random-
// query error estimation), removal-attack analysis, and a ScanSAT-style
// attack on the scan-enable obfuscation. It also provides SAT-based
// equivalence checking used to validate recovered keys.
package attack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
)

// Oracle is an activated IC the attacker can query with input patterns.
// In the paper's threat model the attacker holds the reverse-engineered
// locked netlist plus unlimited oracle access.
type Oracle interface {
	// Query returns the primary outputs for one input assignment.
	Query(in []bool) []bool
	// NumInputs returns the functional input count (without keys).
	NumInputs() int
	// NumOutputs returns the output count.
	NumOutputs() int
	// Queries returns how many times the oracle has been asked.
	Queries() int
}

// BatchOracle is an Oracle that can answer 64 input patterns per call
// in the simulator's word-level form, amortizing one circuit
// evaluation over all 64 lanes. Error-estimation hot loops
// (OracleErrorRate, AppSAT's random-query reinforcement, removal-
// attack scoring) run on this interface and fall back to per-pattern
// Query via AsBatch when an oracle does not implement it natively.
type BatchOracle interface {
	Oracle
	// QueryWords evaluates 64 input patterns at once. in[i] carries
	// the 64 values of functional input i: bit b of in[i] is input i
	// of pattern b, matching netlist.Simulator lane order. The result
	// carries the 64 values of each output and stays valid only until
	// the next QueryWords call on the same oracle — copy it to retain
	// it. One call counts as 64 queries, so Queries() accounting is
	// identical to 64 scalar Query calls.
	QueryWords(in []uint64) []uint64
}

// SimOracle is an oracle backed by netlist simulation of the activated
// circuit (the locked design with the correct key bound, or the
// scan-mode view of it when scan-enable obfuscation corrupts test
// responses).
//
// SimOracle is safe for concurrent use: the simulator's scratch
// buffers are guarded by a mutex (queries against one activated chip
// are inherently serialized in the paper's threat model anyway) and
// the query counter is atomic, so concurrent sweep workers may share
// one oracle. Workers that must not contend on the lock should Clone.
// The exception is QueryWords, whose returned buffer is only valid
// until the next QueryWords call: concurrent batch consumers must
// Clone rather than share.
type SimOracle struct {
	nl      *netlist.Netlist
	mu      sync.Mutex // guards sim's internal evaluation buffers
	sim     *netlist.Simulator
	queries atomic.Int64
}

// NewSimOracle wraps an activated netlist.
func NewSimOracle(nl *netlist.Netlist) (*SimOracle, error) {
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		return nil, fmt.Errorf("attack: oracle: %w", err)
	}
	return &SimOracle{nl: nl, sim: sim}, nil
}

// Clone returns an independent oracle over the same activated netlist
// with a fresh query counter. Sweep workers that each need an
// uncontended oracle clone one per job.
func (o *SimOracle) Clone() (*SimOracle, error) {
	return NewSimOracle(o.nl)
}

// queriesTotal counts every simulated-oracle query in the process,
// across all SimOracle instances. It backs OracleQueriesTotal, the
// accounting hook the cache differential tests (and the future
// daemon's /metrics) use to prove a warm sweep issued zero oracle
// queries; per-oracle budgets keep using Queries().
var queriesTotal atomic.Int64

// OracleQueriesTotal returns the process-wide number of SimOracle
// queries issued so far. Monotonic; compare two readings to count the
// queries a region of work performed.
func OracleQueriesTotal() int64 { return queriesTotal.Load() }

// Query implements Oracle.
func (o *SimOracle) Query(in []bool) []bool {
	o.queries.Add(1)
	queriesTotal.Add(1)
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sim.Eval(in)
}

// QueryWords implements BatchOracle: one word-level simulation answers
// 64 patterns under a single lock acquisition, instead of 64 scalar
// simulations each taking the mutex with only lane 0 populated. The
// returned slice aliases the simulator's output buffer and is
// invalidated by any later query on this oracle.
func (o *SimOracle) QueryWords(in []uint64) []uint64 {
	o.queries.Add(64)
	queriesTotal.Add(64)
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sim.Run(in)
}

// NumInputs implements Oracle.
func (o *SimOracle) NumInputs() int { return len(o.nl.Inputs) }

// NumOutputs implements Oracle.
func (o *SimOracle) NumOutputs() int { return len(o.nl.Outputs) }

// Queries implements Oracle.
func (o *SimOracle) Queries() int { return int(o.queries.Load()) }

// AsBatch adapts any Oracle to the batched interface. A native
// BatchOracle is returned unchanged; anything else is wrapped with an
// adapter that answers QueryWords with 64 scalar Query calls in lane
// order, so stateful oracles (e.g. a morphing device) observe exactly
// the query sequence the scalar loop would have issued, and Queries()
// accounting is unchanged. The adapter owns scratch buffers and is not
// safe for concurrent use; wrap once per goroutine.
func AsBatch(o Oracle) BatchOracle {
	if b, ok := o.(BatchOracle); ok {
		return b
	}
	return &scalarBatch{o: o}
}

// scalarBatch is the generic BatchOracle fallback over a plain Oracle.
type scalarBatch struct {
	o   Oracle
	in  []bool
	out []uint64
}

func (s *scalarBatch) Query(in []bool) []bool { return s.o.Query(in) }
func (s *scalarBatch) NumInputs() int         { return s.o.NumInputs() }
func (s *scalarBatch) NumOutputs() int        { return s.o.NumOutputs() }
func (s *scalarBatch) Queries() int           { return s.o.Queries() }

func (s *scalarBatch) QueryWords(in []uint64) []uint64 {
	if s.in == nil {
		s.in = make([]bool, s.o.NumInputs())
		s.out = make([]uint64, s.o.NumOutputs())
	}
	return queryLanes(s.o, in, 64, s.in, s.out)
}

// queryLanes answers the first n lanes of the word-level patterns in
// with n scalar queries against o, packing the outputs back into out
// (which it returns). Partial batches (n < 64) go through this path so
// every pattern still costs exactly one counted query.
func queryLanes(o Oracle, in []uint64, n int, inBuf []bool, out []uint64) []uint64 {
	for i := range out {
		out[i] = 0
	}
	for lane := 0; lane < n; lane++ {
		for i := range inBuf {
			inBuf[i] = in[i]&(1<<uint(lane)) != 0
		}
		res := o.Query(inBuf)
		for i, v := range res {
			if v {
				out[i] |= 1 << uint(lane)
			}
		}
	}
	return out
}

// splitInputs partitions the locked netlist's input positions into key
// positions (given) and functional positions (the rest, in order).
func splitInputs(locked *netlist.Netlist, keyPos []int) (funcPos []int, err error) {
	isKey := make(map[int]bool, len(keyPos))
	for _, p := range keyPos {
		if p < 0 || p >= len(locked.Inputs) {
			return nil, fmt.Errorf("attack: key position %d out of range", p)
		}
		if isKey[p] {
			return nil, fmt.Errorf("attack: duplicate key position %d", p)
		}
		isKey[p] = true
	}
	for p := range locked.Inputs {
		if !isKey[p] {
			funcPos = append(funcPos, p)
		}
	}
	return funcPos, nil
}
