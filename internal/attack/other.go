package attack

import (
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// EquivalentSAT proves or refutes functional equivalence of two
// netlists with identical I/O signatures by solving the miter. It
// returns (true, nil) on proved equivalence, (false, cex) on a
// counterexample, and an error if the solver times out.
func EquivalentSAT(a, b *netlist.Netlist, timeout time.Duration) (bool, []bool, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false, nil, fmt.Errorf("attack: signature mismatch")
	}
	enc := cnf.NewEncoder()
	ga, err := enc.Encode(a, nil)
	if err != nil {
		return false, nil, err
	}
	shared := make(map[int]cnf.Var, len(a.Inputs))
	for p := range a.Inputs {
		shared[p] = ga.Inputs[p]
	}
	gb, err := enc.Encode(b, shared)
	if err != nil {
		return false, nil, err
	}
	diffs := make([]cnf.Lit, len(a.Outputs))
	for i := range a.Outputs {
		diffs[i] = cnf.MkLit(enc.EncodeXor2(
			cnf.MkLit(ga.Outputs[i], false),
			cnf.MkLit(gb.Outputs[i], false)), false)
	}
	enc.F.AddClause(diffs...)

	solver := sat.New()
	if !solver.AddFormula(enc.F) {
		return true, nil, nil // miter unsatisfiable at construction
	}
	if timeout > 0 {
		solver.SetDeadline(time.Now().Add(timeout))
	}
	switch solver.Solve() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Sat:
		cex := make([]bool, len(a.Inputs))
		for i, v := range ga.Inputs {
			cex[i] = solver.Model()[v]
		}
		return false, cex, nil
	}
	return false, nil, fmt.Errorf("attack: equivalence check timed out")
}

// RemovalResult reports a removal-attack analysis.
type RemovalResult struct {
	Tries     int
	BestError float64 // lowest output error any stripped variant achieved
	MeanError float64
}

// RemovalAttack models the removal/bypass attacker: the RIL-Blocks
// replace original gates and interconnect, so "removing" them amounts
// to hard-wiring some configuration — i.e. committing to an arbitrary
// key. The attack tries `tries` random configurations and reports the
// best (lowest) output error achieved against the oracle. A scheme is
// removal-resistant when even the best stripped variant remains far
// from the oracle (contrast point functions such as SARLock/Anti-SAT,
// where removal recovers the original circuit exactly).
func RemovalAttack(locked *netlist.Netlist, keyPos []int, oracle Oracle, tries int, seed int64) (*RemovalResult, error) {
	if tries < 1 {
		return nil, fmt.Errorf("attack: removal tries must be >= 1")
	}
	rng := newRand(seed)
	res := &RemovalResult{Tries: tries, BestError: 1}
	sum := 0.0
	for t := 0; t < tries; t++ {
		guess := make([]bool, len(keyPos))
		for i := range guess {
			guess[i] = rng.Intn(2) == 1
		}
		e, err := VerifyKey(locked, keyPos, guess, oracle, 4, seed+int64(t))
		if err != nil {
			return nil, err
		}
		sum += e
		if e < res.BestError {
			res.BestError = e
		}
	}
	res.MeanError = sum / float64(tries)
	return res, nil
}

// StructuralRemoval models the removal attack the point-function
// papers are measured against: the attacker locates two-input XOR/XNOR
// gates that mix a key-dependent signal into otherwise key-free logic
// (the "flip" of SARLock/Anti-SAT/CAS-Lock, the restore unit of SFLL,
// or a plain key XOR) and bypasses them to the key-free side; whatever
// key-dependent logic remains is committed to a random configuration.
// It returns the stripped circuit with the original input signature.
//
// Against point functions the bypass recovers the (stripped) base
// circuit exactly; against RIL-Blocks the LUTs and routing MUXes
// *replace* original logic, so there is no key-free side to fall back
// to and removal leaves garbage (paper §IV-B: "removal of the
// RIL-blocks does not benefit the attacker in any way").
func StructuralRemoval(locked *netlist.Netlist, keyPos []int, seed int64) (*netlist.Netlist, error) {
	c := locked.Clone()
	keyIDs := make([]int, len(keyPos))
	for i, p := range keyPos {
		if p < 0 || p >= len(c.Inputs) {
			return nil, fmt.Errorf("attack: key position %d out of range", p)
		}
		keyIDs[i] = c.Inputs[p]
	}
	isKey := make(map[int]bool, len(keyIDs))
	for _, id := range keyIDs {
		isKey[id] = true
	}
	tainted := c.TransitiveFanout(keyIDs...)
	fanouts := c.FanoutLists()

	// isDedicatedKeyModule reports whether fanin f of gate g is the
	// sole output of a key-bearing sub-circuit: its cone contains a key
	// input, and every internal gate of the cone feeds only the cone
	// (or g itself). This matches the lock-inserted flip/restore
	// modules while protecting original logic that merely sits
	// downstream of a key gate.
	isDedicatedKeyModule := func(f, g int) bool {
		cone := c.TransitiveFanin(f)
		hasKey := false
		for id, in := range cone {
			if !in {
				continue
			}
			if isKey[id] {
				hasKey = true
				continue
			}
			switch c.Gates[id].Type {
			case netlist.Input, netlist.Const0, netlist.Const1:
				continue // shared primary inputs are fine
			}
			for _, r := range fanouts[id] {
				if !cone[r] && r != g {
					return false
				}
			}
		}
		return hasKey
	}

	// Repeatedly bypass XOR/XNOR gates whose tainted fanin is a
	// dedicated key module.
	bypassed := make(map[int]bool)
	for changed := true; changed; {
		changed = false
		for id := range c.Gates {
			g := &c.Gates[id]
			if bypassed[id] || (g.Type != netlist.Xor && g.Type != netlist.Xnor) || len(g.Fanin) != 2 || !tainted[id] {
				continue
			}
			a, b := g.Fanin[0], g.Fanin[1]
			var clean, dirty int
			switch {
			case tainted[a] && !tainted[b]:
				clean, dirty = b, a
			case tainted[b] && !tainted[a]:
				clean, dirty = a, b
			default:
				continue
			}
			if !isDedicatedKeyModule(dirty, id) {
				continue
			}
			c.RedirectFanout(id, clean)
			bypassed[id] = true
			// Recompute reachability so cascaded bypasses see the
			// updated structure.
			tainted = c.TransitiveFanout(keyIDs...)
			fanouts = c.FanoutLists()
			changed = true
		}
	}

	// Commit any surviving key dependence to a random configuration.
	rng := newRand(seed)
	vals := make([]bool, len(keyPos))
	for i := range vals {
		vals[i] = rng.Intn(2) == 1
	}
	stripped, err := c.BindInputs(keyPos, vals)
	if err != nil {
		return nil, err
	}
	return stripped, nil
}

// ScanSATResult reports a ScanSAT-style attack on the scan-enable
// obfuscation layer.
type ScanSATResult struct {
	SAT *SATResult
	// ScanError is the recovered model's error against the scan-mode
	// oracle (what the attacker can check; ~0 when the attack
	// converges).
	ScanError float64
	// FunctionalError is the recovered base key's error against the
	// true functional circuit (what actually matters; stays high for
	// RIL-Blocks, defeating the attack).
	FunctionalError float64
	// Defeated reports whether the attack failed to recover a
	// functionally correct key.
	Defeated bool
}

// ScanSAT models the ScanSAT attack (Alrahis et al.) applied to the
// scan-enable obfuscation: the attacker knows each LUT output may be
// conditionally inverted in scan mode, so it augments the locked
// netlist with one pseudo key bit per LUT driving an XOR at that LUT's
// output, then runs the plain SAT attack against the (corrupted) scan
// oracle. The augmented attack can converge on scan behaviour — but
// the (LUT configuration, inversion bit) pair is only determined up to
// simultaneous complement (paper §III-C: OR + inversion is
// indistinguishable from NOR), so the base key it returns is wrong for
// functional mode with probability 1 - 2^-L.
func ScanSAT(locked *netlist.Netlist, keyPos []int, lutOutNames []string,
	scanOracle, funcOracle Oracle, opt SATOptions) (*ScanSATResult, error) {
	aug := locked.Clone()
	augKeyPos := append([]int(nil), keyPos...)
	for i, lut := range lutOutNames {
		id, ok := aug.GateID(lut)
		if !ok {
			return nil, fmt.Errorf("attack: ScanSAT: no LUT output %q", lut)
		}
		keyName := aug.FreshName(fmt.Sprintf("scankey%d", i))
		augKeyPos = append(augKeyPos, len(aug.Inputs))
		kid := aug.AddInput(keyName)
		x := aug.AddGate(aug.FreshName(lut+"_sx"), netlist.Xor, id, kid)
		aug.RedirectFanout(id, x)
	}
	if err := aug.Validate(); err != nil {
		return nil, err
	}

	satRes, err := SATAttack(aug, augKeyPos, scanOracle, opt)
	if err != nil {
		return nil, err
	}
	res := &ScanSATResult{SAT: satRes, Defeated: true}
	if satRes.Status != KeyFound {
		return res, nil // did not even converge
	}
	scanErr, err := VerifyKey(aug, augKeyPos, satRes.Key, scanOracle, 4, 11)
	if err != nil {
		return nil, err
	}
	res.ScanError = scanErr
	baseKey := satRes.Key[:len(keyPos)]
	funcErr, err := VerifyKey(locked, keyPos, baseKey, funcOracle, 4, 12)
	if err != nil {
		return nil, err
	}
	res.FunctionalError = funcErr
	res.Defeated = funcErr > 0.001
	return res, nil
}
