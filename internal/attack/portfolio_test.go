package attack

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/testutil"
)

// assertKeyFlipZero verifies a recovered key against the canonical one
// with the oracle-side ground truth: flipping exactly the bits where
// the two keys differ must produce zero output error, i.e. the
// recovered key is functionally identical even when it is not
// bit-identical (RIL selector groups admit multiple encodings of the
// same routing).
func assertKeyFlipZero(t *testing.T, locked *netlist.Netlist, keyPos []int, canonical, recovered []bool) {
	t.Helper()
	if len(canonical) != len(recovered) {
		t.Fatalf("key length mismatch: canonical %d, recovered %d", len(canonical), len(recovered))
	}
	var diff []int
	for i := range canonical {
		if canonical[i] != recovered[i] {
			diff = append(diff, i)
		}
	}
	e, err := KeyFlipError(locked, keyPos, canonical, diff, 16, 1)
	if err != nil {
		t.Fatalf("KeyFlipError: %v", err)
	}
	if e != 0 {
		t.Errorf("recovered key differs functionally from canonical: flip error %.6f on bits %v", e, diff)
	}
}

// runPortfolioAttack locks orig with one RIL block under a fixed seed
// and attacks it with an n-worker portfolio, asserting convergence and
// key correctness. It returns the result and the oracle query count.
func runPortfolioAttack(t *testing.T, orig *netlist.Netlist, size core.Size, seed int64, workers int) (*SATResult, int) {
	t.Helper()
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: size, Seed: seed})
	if err != nil {
		t.Fatalf("lock: %v", err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatalf("apply key: %v", err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	ar, err := SATAttack(res.Locked, res.KeyInputPos, oracle, SATOptions{
		Timeout:   2 * time.Minute,
		Portfolio: workers,
	})
	if err != nil {
		t.Fatalf("portfolio(%d) attack: %v", workers, err)
	}
	if ar.Status != KeyFound {
		t.Fatalf("portfolio(%d) attack did not converge: %v", workers, ar)
	}
	assertKeyFlipZero(t, res.Locked, res.KeyInputPos, res.Key, ar.Key)
	return ar, oracle.Queries()
}

// TestPortfolioAttackC17Envelope runs the c17/2x2/seed-17 regression
// lock under an 8-worker portfolio. The DIP sequence is
// trace-nondeterministic, but the iteration and query counts must stay
// inside the same envelope the sequential attack is pinned to — the
// portfolio races heuristics, it does not change what a DIP is worth.
func TestPortfolioAttackC17Envelope(t *testing.T) {
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		ar, queries := runPortfolioAttack(t, orig, core.Size2x2, 17, workers)
		t.Logf("c17/2x2 seed 17 portfolio(%d): %d iterations, %d queries", workers, ar.Iterations, queries)
		queryBound{minIters: 3, maxIters: 14, minQueries: 3, maxQueries: 14}.check(t, "c17 portfolio", ar.Iterations, queries)
		if ar.Solver.Decisions == 0 && ar.Solver.Propagations == 0 {
			t.Error("aggregated portfolio stats recorded no solver work")
		}
	}
}

// TestPortfolioAttackC432Envelope does the same on the synthesized
// c432 profile with one 8x8 routing block and a 2-worker portfolio.
func TestPortfolioAttackC432Envelope(t *testing.T) {
	orig := c432Profile(t)
	ar, queries := runPortfolioAttack(t, orig, core.Size8x8, 432, 2)
	t.Logf("c432/8x8 seed 432 portfolio(2): %d iterations, %d queries", ar.Iterations, queries)
	queryBound{minIters: 12, maxIters: 48, minQueries: 12, maxQueries: 48}.check(t, "c432 portfolio", ar.Iterations, queries)
}

// TestPortfolioJournalReplayEveryTruncation journals a portfolio
// attack to completion, then resumes from every truncation point of
// the record stream. Constraint replay must consume all surviving
// records without a single oracle re-query — new queries come only
// from live iterations past the truncation — and converge to a
// functionally correct key each time.
func TestPortfolioJournalReplayEveryTruncation(t *testing.T) {
	fx := xorFixture(t, 70, 8, 330)
	full, journal, totalQueries := attackWithJournal(t, fx, SATOptions{Timeout: time.Minute, Portfolio: 4})
	if full.Status != KeyFound {
		t.Fatalf("journaled portfolio attack did not converge: %v", full)
	}
	if full.Iterations < 3 {
		t.Fatalf("fixture too easy (%d DIPs) to exercise truncation", full.Iterations)
	}
	if totalQueries != full.Iterations {
		t.Fatalf("journaled run made %d queries over %d iterations", totalQueries, full.Iterations)
	}
	fullData, err := ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if !fullData.Header.Portfolio {
		t.Fatal("portfolio journal header does not record portfolio mode")
	}

	lines := strings.SplitAfter(string(journal), "\n")
	for k := 0; k <= full.Iterations; k++ {
		data, err := ReadJournal(strings.NewReader(strings.Join(lines[:1+k], "")))
		if err != nil {
			t.Fatalf("k=%d: reading truncated journal: %v", k, err)
		}
		oracle := fx.oracle(t)
		res, err := SATAttack(fx.locked, fx.keyPos, oracle, SATOptions{
			Timeout: time.Minute, Portfolio: 4, Resume: data,
		})
		if err != nil {
			t.Fatalf("k=%d: resumed portfolio attack: %v", k, err)
		}
		if res.Status != KeyFound {
			t.Fatalf("k=%d: resumed attack did not converge: %v", k, res)
		}
		if res.Replayed != k {
			t.Errorf("k=%d: replayed %d records, want %d", k, res.Replayed, k)
		}
		if got, want := oracle.Queries(), res.Iterations-k; got != want {
			t.Errorf("k=%d: %d oracle queries for %d live iterations — journaled records were re-queried",
				k, got, want)
		}
		// The continuation may walk a different DIP path (constraint
		// replay does not restore learnt clauses), but the key must be
		// functionally right and never cost more fresh queries than the
		// uninterrupted run's total.
		if eq := bytesEqual(res.Key, full.Key); !eq {
			ok, _, err := netlist.Equivalent(fx.bound, mustBind(t, fx, res.Key), 12, 2000, 330)
			if err != nil {
				t.Fatalf("k=%d: equivalence: %v", k, err)
			}
			if !ok {
				t.Errorf("k=%d: resumed key %s is functionally wrong", k, bitString(res.Key))
			}
		}
	}
}

// mustBind activates a fixture's locked circuit with a key.
func mustBind(t *testing.T, fx *fixture, key []bool) *netlist.Netlist {
	t.Helper()
	b, err := fx.locked.BindInputs(fx.keyPos, key)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPortfolioJournalCrashInjection reuses the FaultyWriter crash
// harness on a portfolio attack: for a spread of byte budgets the
// journal write dies mid-attack; resuming from whatever survived must
// serve every durable record without re-querying the oracle for it.
func TestPortfolioJournalCrashInjection(t *testing.T) {
	fx := xorFixture(t, 70, 8, 331)
	full, journal, _ := attackWithJournal(t, fx, SATOptions{Timeout: time.Minute, Portfolio: 4})
	if full.Status != KeyFound {
		t.Fatalf("uninterrupted portfolio attack did not converge: %v", full)
	}
	step := len(journal)/9 + 1
	for budget := 1; budget < len(journal); budget += step {
		var disk bytes.Buffer
		fw := testutil.NewFaultyWriter(&disk, budget)
		oracle := fx.oracle(t)
		_, err := SATAttack(fx.locked, fx.keyPos, oracle, SATOptions{
			Timeout: time.Minute, Portfolio: 4, Journal: NewJournal(fw),
		})
		if err == nil {
			continue // budget outlived this (nondeterministic) attack
		}
		if !errors.Is(err, testutil.ErrInjected) {
			t.Fatalf("budget=%d: attack failed with %v, want injected fault", budget, err)
		}
		data, rerr := ReadJournal(bytes.NewReader(disk.Bytes()))
		var resume *JournalData
		if rerr == nil {
			resume = data
		} else if !errors.Is(rerr, ErrJournalCorrupt) {
			t.Fatalf("budget=%d: reading crashed journal: %v", budget, rerr)
		}
		durable := 0
		if resume != nil {
			durable = len(resume.Records)
		}
		o2 := fx.oracle(t)
		res, err := SATAttack(fx.locked, fx.keyPos, o2, SATOptions{
			Timeout: time.Minute, Portfolio: 4, Resume: resume,
		})
		if err != nil {
			t.Fatalf("budget=%d: resume after crash: %v", budget, err)
		}
		if res.Status != KeyFound {
			t.Fatalf("budget=%d: resumed attack did not converge: %v", budget, res)
		}
		if res.Replayed != durable {
			t.Errorf("budget=%d: replayed %d records, %d were durable", budget, res.Replayed, durable)
		}
		if got, want := o2.Queries(), res.Iterations-durable; got != want {
			t.Errorf("budget=%d: %d oracle queries for %d live iterations — durable records were re-queried",
				budget, got, want)
		}
	}
}

// TestJournalCrossModeResume pins the mode-independence of journals:
// a sequential journal resumes under a portfolio (constraint replay, a
// portfolio cannot reproduce the sequential trace) and a portfolio
// journal resumes under the sequential solver (constraint replay, the
// header demands it). Both directions: zero re-queries for journaled
// records.
func TestJournalCrossModeResume(t *testing.T) {
	fx := xorFixture(t, 60, 6, 340)

	seq, seqJournal, _ := attackWithJournal(t, fx, SATOptions{Timeout: time.Minute})
	if seq.Status != KeyFound {
		t.Fatalf("sequential attack did not converge: %v", seq)
	}
	pf, pfJournal, _ := attackWithJournal(t, fx, SATOptions{Timeout: time.Minute, Portfolio: 2})
	if pf.Status != KeyFound {
		t.Fatalf("portfolio attack did not converge: %v", pf)
	}

	cases := []struct {
		name      string
		journal   []byte
		records   int
		portfolio int
	}{
		{"sequential journal, portfolio resume", seqJournal, seq.Iterations, 2},
		{"portfolio journal, sequential resume", pfJournal, pf.Iterations, 0},
	}
	for _, tc := range cases {
		data, err := ReadJournal(bytes.NewReader(tc.journal))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// Drop the done record so the resume actually re-enters the DIP
		// loop instead of reconstructing the finished result.
		data.Done = nil
		oracle := fx.oracle(t)
		res, err := SATAttack(fx.locked, fx.keyPos, oracle, SATOptions{
			Timeout: time.Minute, Portfolio: tc.portfolio, Resume: data,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Status != KeyFound {
			t.Fatalf("%s: resumed attack did not converge: %v", tc.name, res)
		}
		if res.Replayed != tc.records {
			t.Errorf("%s: replayed %d records, want %d", tc.name, res.Replayed, tc.records)
		}
		if got, want := oracle.Queries(), res.Iterations-tc.records; got != want {
			t.Errorf("%s: %d oracle queries for %d live iterations", tc.name, got, want)
		}
		assertKeyFlipZero(t, fx.locked, fx.keyPos, seq.Key, res.Key)
	}
}
