package attack

import (
	"os"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
)

// queryBound is a recorded iteration/query envelope for a fixed
// (circuit, lock, seed) triple. The attack is deterministic, so the
// recorded value is exact today; the bounds leave headroom for benign
// solver-heuristic drift while still catching oracle-efficiency
// regressions (a doubling of DIPs or queries fails).
type queryBound struct {
	minIters, maxIters     int
	minQueries, maxQueries int
}

func (b queryBound) check(t *testing.T, name string, iters, queries int) {
	t.Helper()
	if iters < b.minIters || iters > b.maxIters {
		t.Errorf("%s: %d DIP iterations, want within [%d, %d]", name, iters, b.minIters, b.maxIters)
	}
	if queries < b.minQueries || queries > b.maxQueries {
		t.Errorf("%s: %d oracle queries, want within [%d, %d]", name, queries, b.minQueries, b.maxQueries)
	}
}

// runLockedAttack locks orig with one RIL block of the given geometry
// and fixed seed, attacks it, and returns the result plus the oracle
// query count, asserting the attack converged to a correct key.
func runLockedAttack(t *testing.T, orig *netlist.Netlist, size core.Size, seed int64) (*SATResult, int) {
	t.Helper()
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: size, Seed: seed})
	if err != nil {
		t.Fatalf("lock: %v", err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatalf("apply key: %v", err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	var lastIter int
	ar, err := SATAttack(res.Locked, res.KeyInputPos, oracle, SATOptions{
		Timeout: 2 * time.Minute,
		Progress: func(p Progress) {
			if p.Iteration < lastIter {
				t.Errorf("progress iterations went backwards: %d -> %d", lastIter, p.Iteration)
			}
			lastIter = p.Iteration
		},
	})
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if ar.Status != KeyFound {
		t.Fatalf("attack did not converge: %v", ar)
	}
	recovered, err := res.ApplyKey(ar.Key)
	if err != nil {
		t.Fatalf("apply recovered key: %v", err)
	}
	eq, cex, err := netlist.Equivalent(bound, recovered, 12, 2000, seed)
	if err != nil {
		t.Fatalf("equivalence: %v", err)
	}
	if !eq {
		t.Fatalf("recovered key is functionally wrong, counterexample %v", cex)
	}
	if lastIter != ar.Iterations {
		t.Errorf("progress callback saw %d iterations, result says %d", lastIter, ar.Iterations)
	}
	return ar, oracle.Queries()
}

// TestOracleQueryCountC17 locks the real ISCAS-85 c17 with one 2x2
// RIL block under a fixed seed and pins the SAT attack's DIP and
// oracle-query counts to a recorded envelope.
func TestOracleQueryCountC17(t *testing.T) {
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	ar, queries := runLockedAttack(t, orig, core.Size2x2, 17)
	t.Logf("c17/2x2 seed 17: %d iterations, %d queries", ar.Iterations, queries)
	// Recorded: 7 iterations, 7 queries.
	queryBound{minIters: 3, maxIters: 14, minQueries: 3, maxQueries: 14}.check(t, "c17", ar.Iterations, queries)
	if queries < ar.Iterations {
		t.Errorf("oracle queried %d times over %d iterations; each DIP needs a query", queries, ar.Iterations)
	}
}

// TestOracleQueryCountC432 does the same on the synthesized c432
// profile at full scale with one 8x8 routing block.
func TestOracleQueryCountC432(t *testing.T) {
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		t.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ar, queries := runLockedAttack(t, orig, core.Size8x8, 432)
	t.Logf("c432/8x8 seed 432: %d iterations, %d queries", ar.Iterations, queries)
	// Recorded: 24 iterations, 24 queries.
	queryBound{minIters: 12, maxIters: 48, minQueries: 12, maxQueries: 48}.check(t, "c432", ar.Iterations, queries)
	if queries < ar.Iterations {
		t.Errorf("oracle queried %d times over %d iterations; each DIP needs a query", queries, ar.Iterations)
	}
}

// runLockedAppSAT mirrors runLockedAttack for the approximate attack:
// lock orig with one RIL block under a fixed seed, run AppSAT with the
// default knobs, and return the result plus the oracle query count.
func runLockedAppSAT(t *testing.T, orig *netlist.Netlist, size core.Size, seed int64) (*AppSATResult, int) {
	t.Helper()
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: size, Seed: seed})
	if err != nil {
		t.Fatalf("lock: %v", err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatalf("apply key: %v", err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	opt := DefaultAppSAT()
	opt.Timeout = 2 * time.Minute
	ar, err := AppSAT(res.Locked, res.KeyInputPos, oracle, opt)
	if err != nil {
		t.Fatalf("appsat: %v", err)
	}
	if ar.Status != KeyFound {
		t.Fatalf("appsat did not converge: %v", ar)
	}
	return ar, oracle.Queries()
}

// TestAppSATQueryCountC17 pins AppSAT's DIP and oracle-query counts on
// the same c17/2x2/seed-17 lock the exact-attack envelope uses. The
// attack converges inside round one, before the first error-estimation
// sample, so the query count equals the DIP count.
func TestAppSATQueryCountC17(t *testing.T) {
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	ar, queries := runLockedAppSAT(t, orig, core.Size2x2, 17)
	t.Logf("appsat c17/2x2 seed 17: %d rounds, %d dips, %d queries", ar.Rounds, ar.DIPs, queries)
	// Recorded: 1 round, 7 DIPs, 7 queries.
	queryBound{minIters: 3, maxIters: 14, minQueries: 3, maxQueries: 20}.check(t, "appsat c17", ar.DIPs, queries)
	if ar.Rounds > 2 {
		t.Errorf("appsat took %d rounds on c17; recorded 1", ar.Rounds)
	}
}

// TestAppSATQueryCountC432 pins the c432/8x8/seed-432 profile. AppSAT
// needs a second round here, so the count includes one 64-query error
// estimation on top of the DIPs.
func TestAppSATQueryCountC432(t *testing.T) {
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		t.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ar, queries := runLockedAppSAT(t, orig, core.Size8x8, 432)
	t.Logf("appsat c432/8x8 seed 432: %d rounds, %d dips, %d queries", ar.Rounds, ar.DIPs, queries)
	// Recorded: 2 rounds, 8 DIPs, 72 queries (8 DIPs + one 64-query
	// error-estimation sample).
	queryBound{minIters: 4, maxIters: 24, minQueries: 36, maxQueries: 160}.check(t, "appsat c432", ar.DIPs, queries)
	if ar.Rounds > 4 {
		t.Errorf("appsat took %d rounds on c432; recorded 2", ar.Rounds)
	}
}
