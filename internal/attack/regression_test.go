package attack

import (
	"os"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
)

// queryBound is a recorded iteration/query envelope for a fixed
// (circuit, lock, seed) triple. The attack is deterministic, so the
// recorded value is exact today; the bounds leave headroom for benign
// solver-heuristic drift while still catching oracle-efficiency
// regressions (a doubling of DIPs or queries fails).
type queryBound struct {
	minIters, maxIters     int
	minQueries, maxQueries int
}

func (b queryBound) check(t *testing.T, name string, iters, queries int) {
	t.Helper()
	if iters < b.minIters || iters > b.maxIters {
		t.Errorf("%s: %d DIP iterations, want within [%d, %d]", name, iters, b.minIters, b.maxIters)
	}
	if queries < b.minQueries || queries > b.maxQueries {
		t.Errorf("%s: %d oracle queries, want within [%d, %d]", name, queries, b.minQueries, b.maxQueries)
	}
}

// runLockedAttack locks orig with one RIL block of the given geometry
// and fixed seed, attacks it, and returns the result plus the oracle
// query count, asserting the attack converged to a correct key.
func runLockedAttack(t *testing.T, orig *netlist.Netlist, size core.Size, seed int64) (*SATResult, int) {
	t.Helper()
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: size, Seed: seed})
	if err != nil {
		t.Fatalf("lock: %v", err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatalf("apply key: %v", err)
	}
	oracle, err := NewSimOracle(bound)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	var lastIter int
	ar, err := SATAttack(res.Locked, res.KeyInputPos, oracle, SATOptions{
		Timeout: 2 * time.Minute,
		Progress: func(p Progress) {
			if p.Iteration < lastIter {
				t.Errorf("progress iterations went backwards: %d -> %d", lastIter, p.Iteration)
			}
			lastIter = p.Iteration
		},
	})
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if ar.Status != KeyFound {
		t.Fatalf("attack did not converge: %v", ar)
	}
	recovered, err := res.ApplyKey(ar.Key)
	if err != nil {
		t.Fatalf("apply recovered key: %v", err)
	}
	eq, cex, err := netlist.Equivalent(bound, recovered, 12, 2000, seed)
	if err != nil {
		t.Fatalf("equivalence: %v", err)
	}
	if !eq {
		t.Fatalf("recovered key is functionally wrong, counterexample %v", cex)
	}
	if lastIter != ar.Iterations {
		t.Errorf("progress callback saw %d iterations, result says %d", lastIter, ar.Iterations)
	}
	return ar, oracle.Queries()
}

// TestOracleQueryCountC17 locks the real ISCAS-85 c17 with one 2x2
// RIL block under a fixed seed and pins the SAT attack's DIP and
// oracle-query counts to a recorded envelope.
func TestOracleQueryCountC17(t *testing.T) {
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	ar, queries := runLockedAttack(t, orig, core.Size2x2, 17)
	t.Logf("c17/2x2 seed 17: %d iterations, %d queries", ar.Iterations, queries)
	// Recorded: 7 iterations, 7 queries.
	queryBound{minIters: 3, maxIters: 14, minQueries: 3, maxQueries: 14}.check(t, "c17", ar.Iterations, queries)
	if queries < ar.Iterations {
		t.Errorf("oracle queried %d times over %d iterations; each DIP needs a query", queries, ar.Iterations)
	}
}

// TestOracleQueryCountC432 does the same on the synthesized c432
// profile at full scale with one 8x8 routing block.
func TestOracleQueryCountC432(t *testing.T) {
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		t.Fatal("c432 profile missing")
	}
	orig, err := prof.Synthesize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ar, queries := runLockedAttack(t, orig, core.Size8x8, 432)
	t.Logf("c432/8x8 seed 432: %d iterations, %d queries", ar.Iterations, queries)
	// Recorded: 24 iterations, 24 queries.
	queryBound{minIters: 12, maxIters: 48, minQueries: 12, maxQueries: 48}.check(t, "c432", ar.Iterations, queries)
	if queries < ar.Iterations {
		t.Errorf("oracle queried %d times over %d iterations; each DIP needs a query", queries, ar.Iterations)
	}
}
