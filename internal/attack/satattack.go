package attack

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"time"

	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// bitString renders a bool slice little-endian as '0'/'1' runes.
func bitString(bits []bool) string {
	b := make([]byte, len(bits))
	for i, v := range bits {
		b[i] = '0'
		if v {
			b[i] = '1'
		}
	}
	return string(b)
}

// Status classifies an attack outcome.
type Status int

// Attack outcomes.
const (
	KeyFound Status = iota // the DIP loop converged and produced a key
	Timeout                // deadline or budget exhausted (the paper's ∞)
	Failed                 // attack terminated without a usable key
)

func (s Status) String() string {
	switch s {
	case KeyFound:
		return "key-found"
	case Timeout:
		return "timeout"
	}
	return "failed"
}

// SATOptions tunes the SAT attack.
type SATOptions struct {
	// Timeout bounds the whole attack (0 = none). The paper uses 5
	// days; the benches scale this down and report ∞ on expiry.
	Timeout time.Duration
	// Context, when non-nil, cancels the attack early: the solver
	// aborts at its next poll and the attack reports Timeout. It
	// composes with Timeout (whichever fires first wins), which is how
	// the sweep runner enforces per-job deadlines and sweep-wide
	// cancellation.
	Context context.Context
	// MaxIterations bounds the DIP count (0 = unlimited).
	MaxIterations int
	// Portfolio, when >= 2, races that many diversified CDCL workers
	// per solver call (first definitive verdict wins, learnt clauses
	// shared; see sat.Portfolio). The attack's DIP sequence becomes
	// trace-nondeterministic — journals written in portfolio mode are
	// resumed by constraint replay rather than verified re-solving —
	// but the recovered key is still exact: every worker is sound, and
	// the accumulated DIP constraints are mode-independent. 0 or 1
	// selects the sequential solver.
	Portfolio int
	// BVA applies bounded variable addition preprocessing to the base
	// encoding (paper §IV-B pre-processing step).
	BVA bool
	// Trace, when non-nil, receives one CSV line per DIP:
	// iteration,dip-bits,oracle-bits (little-endian bit strings).
	Trace io.Writer
	// Progress, when non-nil, is called once per DIP iteration with
	// cumulative solver-effort counters, so long sweeps can report
	// where the solver is spending its time while the attack runs.
	Progress func(Progress)
	// Journal, when non-nil, durably records the attack: a header line
	// identifying the locked circuit, then one fsync'd record per
	// oracle query (DIP bits, oracle response, cumulative solver
	// state), and a terminal record on convergence. A crashed or killed
	// attack resumes from the journal via Resume without repeating a
	// single oracle query. Replayed iterations are not re-journaled.
	Journal *Journal
	// Resume, when non-nil, replays a previously journaled attack
	// before going live: the DIP loop re-runs deterministically, but
	// oracle answers for journaled DIPs are served from the journal
	// instead of the oracle (which is never queried for them). The
	// solver state after replay is bit-identical to the state of the
	// original run at its last record, so the continuation — DIP
	// sequence and final key — matches an uninterrupted attack. A
	// journal written by a different circuit, option set or solver
	// version fails with ErrReplayDiverged.
	//
	// When the journal was written by a portfolio attack — or this
	// attack runs one (Portfolio >= 2) — verified re-solving is
	// impossible (portfolio traces are nondeterministic), so replay
	// degrades to constraint replay: the journaled DIP constraints are
	// applied directly, without solving, before the live loop starts.
	// Still zero oracle re-queries; the continuation's DIP sequence may
	// differ from the uninterrupted run's, the recovered key may not.
	Resume *JournalData
}

// Progress is one per-iteration snapshot handed to SATOptions.Progress:
// the DIP count so far, wall time since the attack started, and the
// solver's cumulative counters (decisions, propagations, conflicts,
// restarts, learnt/removed clauses, max decision level).
type Progress struct {
	Iteration int
	Elapsed   time.Duration
	Solver    sat.Stats
}

// SATResult reports a SAT attack run.
type SATResult struct {
	Status     Status
	Key        []bool // recovered key (valid when Status == KeyFound)
	Iterations int    // number of distinguishing input patterns
	// Replayed counts iterations served from a resume journal; the
	// oracle was queried Iterations-Replayed times by this run.
	Replayed int
	Elapsed  time.Duration
	Solver   sat.Stats
}

func (r *SATResult) String() string {
	return fmt.Sprintf("%s after %d DIPs in %v (%v)", r.Status, r.Iterations, r.Elapsed.Round(time.Millisecond), r.Solver)
}

// SATAttack runs the oracle-guided SAT attack of Subramanyan et al.
// against a locked netlist: it iteratively finds distinguishing input
// patterns (inputs on which two candidate keys disagree), queries the
// oracle, and constrains the key space until no DIP remains; any key
// satisfying the accumulated constraints is then functionally
// equivalent to the oracle on all tested behaviour.
//
// keyPos gives the positions of the key inputs within locked.Inputs.
// The oracle takes the functional inputs only (in their relative
// order).
func SATAttack(locked *netlist.Netlist, keyPos []int, oracle Oracle, opt SATOptions) (*SATResult, error) {
	start := time.Now()
	funcPos, err := splitInputs(locked, keyPos)
	if err != nil {
		return nil, err
	}
	if oracle.NumInputs() != len(funcPos) {
		return nil, fmt.Errorf("attack: oracle has %d inputs, locked netlist has %d functional inputs",
			oracle.NumInputs(), len(funcPos))
	}
	if oracle.NumOutputs() != len(locked.Outputs) {
		return nil, fmt.Errorf("attack: oracle output arity mismatch")
	}

	// Base encoding: two copies sharing functional inputs, separate keys.
	enc := cnf.NewEncoder()
	copy1, err := enc.Encode(locked, nil)
	if err != nil {
		return nil, err
	}
	shared := make(map[int]cnf.Var, len(funcPos))
	for _, p := range funcPos {
		shared[p] = copy1.Inputs[p]
	}
	copy2, err := enc.Encode(locked, shared)
	if err != nil {
		return nil, err
	}

	// Miter: at least one output differs, gated by an activation var so
	// the same solver can later extract a key without the difference
	// constraint.
	diffs := make([]cnf.Lit, len(locked.Outputs))
	for i := range locked.Outputs {
		diffs[i] = cnf.MkLit(enc.EncodeXor2(
			cnf.MkLit(copy1.Outputs[i], false),
			cnf.MkLit(copy2.Outputs[i], false)), false)
	}
	act := enc.F.NewVar()
	miter := append(append([]cnf.Lit(nil), diffs...), cnf.MkLit(act, true))
	enc.F.AddClause(miter...)

	if opt.BVA {
		cnf.BVA(enc.F, 4, 32)
	}

	// Compile the netlist to a CNF template once: every DIP iteration
	// stamps two constrained copies from it instead of re-running the
	// Tseitin encoder, reproducing the encoder's exact variable and
	// clause order so solver behaviour (and journal replay) is
	// unchanged.
	tmpl, err := cnf.CompileTemplate(locked)
	if err != nil {
		return nil, err
	}

	solver := sat.NewEngine(opt.Portfolio)
	if !solver.AddFormula(enc.F) {
		return nil, fmt.Errorf("attack: base encoding unsatisfiable")
	}
	if opt.Context != nil {
		solver.SetContext(opt.Context)
	}

	key1 := make([]cnf.Var, len(keyPos))
	key2 := make([]cnf.Var, len(keyPos))
	for i, p := range keyPos {
		key1[i] = copy1.Inputs[p]
		key2[i] = copy2.Inputs[p]
	}

	res := &SATResult{}

	// Checkpoint/resume plumbing. A resumed attack's wall clock
	// continues from the journaled elapsed time, so Timeout bounds the
	// *total* attack (the paper's 5-day budget), not each resume slice.
	var header JournalHeader
	var replay []JournalRecord
	if opt.Journal != nil || opt.Resume != nil {
		fp, err := Fingerprint(locked, keyPos)
		if err != nil {
			return nil, err
		}
		header = JournalHeader{
			Version: JournalVersion, Circuit: locked.Name,
			Inputs: len(funcPos), Outputs: len(locked.Outputs),
			KeyBits: len(keyPos), BVA: opt.BVA, Fingerprint: fp,
			Portfolio: opt.Portfolio >= 2,
		}
	}
	constraintReplay := false
	if opt.Resume != nil {
		if err := opt.Resume.Header.matches(header); err != nil {
			return nil, err
		}
		if d := opt.Resume.Done; d != nil {
			// The journaled attack already finished: reconstruct its
			// result without touching solver or oracle.
			return resultFromDone(d)
		}
		replay = opt.Resume.Records
		constraintReplay = opt.Resume.Header.Portfolio || opt.Portfolio >= 2
		if n := len(replay); n > 0 {
			start = start.Add(-time.Duration(replay[n-1].ElapsedMS) * time.Millisecond)
		}
	}
	if opt.Journal != nil && !opt.Journal.HeaderWritten() {
		if err := opt.Journal.WriteHeader(header); err != nil {
			return nil, err
		}
	}
	if opt.Timeout > 0 {
		solver.SetDeadline(start.Add(opt.Timeout))
	}

	if constraintReplay {
		// Portfolio replay: apply every journaled DIP constraint
		// directly, without solving. The oracle is never queried for
		// journaled records, and the live loop below starts from a
		// clause database equivalent to the original run's — same DIP
		// constraints, different learnt clauses.
		for _, rec := range replay {
			dip, err := parseBits(rec.DIP)
			if err != nil {
				return nil, err
			}
			out, err := parseBits(rec.Oracle)
			if err != nil {
				return nil, err
			}
			if err := constrainDIP(solver, tmpl, funcPos, keyPos, key1, key2, dip, out); err != nil {
				// A journal for this circuit cannot contradict its own
				// encoding; a top-level conflict means the journal
				// belongs elsewhere.
				return nil, fmt.Errorf("attack: replaying iteration %d: %v: %w",
					rec.Iteration, err, ErrReplayDiverged)
			}
			res.Replayed++
			res.Iterations++
			if opt.Trace != nil {
				fmt.Fprintf(opt.Trace, "%d,%s,%s\n", res.Iterations, rec.DIP, rec.Oracle)
			}
		}
		replay = nil
	}

	assumeDiff := cnf.MkLit(act, false)
	for {
		if opt.MaxIterations > 0 && res.Iterations >= opt.MaxIterations {
			res.Status = Timeout
			break
		}
		if opt.Context != nil && opt.Context.Err() != nil {
			res.Status = Timeout
			break
		}
		st := solver.Solve(assumeDiff)
		if st == sat.Unknown {
			res.Status = Timeout
			break
		}
		if st == sat.Unsat {
			// Converged: extract any key consistent with all DIPs.
			st = solver.Solve(cnf.MkLit(act, true))
			if st != sat.Sat {
				res.Status = Failed
				break
			}
			res.Key = make([]bool, len(keyPos))
			for i, v := range key1 {
				res.Key[i] = solver.Model()[v]
			}
			res.Status = KeyFound
			break
		}

		// DIP found: read the functional inputs from the model.
		dip := make([]bool, len(funcPos))
		for i, p := range funcPos {
			dip[i] = solver.ModelValue(cnf.MkLit(copy1.Inputs[p], false))
		}
		var out []bool
		if res.Replayed < len(replay) {
			// Serve the oracle answer from the journal. The solver is
			// deterministic, so it must have rediscovered the journaled
			// DIP; anything else means the journal belongs to a
			// different circuit or solver version.
			rec := replay[res.Replayed]
			if got := bitString(dip); got != rec.DIP {
				return nil, fmt.Errorf("attack: iteration %d: solver found DIP %s, journal has %s: %w",
					res.Iterations+1, got, rec.DIP, ErrReplayDiverged)
			}
			if snap := solver.Snapshot(); snap != rec.Solver {
				return nil, fmt.Errorf("attack: iteration %d: solver state %+v does not match journal %+v: %w",
					res.Iterations+1, snap, rec.Solver, ErrReplayDiverged)
			}
			out, err = parseBits(rec.Oracle)
			if err != nil {
				return nil, err
			}
			res.Replayed++
			res.Iterations++
		} else {
			out = oracle.Query(dip)
			res.Iterations++
			if opt.Journal != nil {
				err := opt.Journal.Append(JournalRecord{
					Iteration: res.Iterations,
					DIP:       bitString(dip),
					Oracle:    bitString(out),
					ElapsedMS: time.Since(start).Milliseconds(),
					Solver:    solver.Snapshot(),
				})
				if err != nil {
					return nil, err
				}
			}
		}
		if opt.Trace != nil {
			fmt.Fprintf(opt.Trace, "%d,%s,%s\n", res.Iterations, bitString(dip), bitString(out))
		}
		if opt.Progress != nil {
			opt.Progress(Progress{
				Iteration: res.Iterations,
				Elapsed:   time.Since(start),
				Solver:    solver.Stats(),
			})
		}

		// Constrain both key copies to reproduce the oracle on the DIP.
		if err := constrainDIP(solver, tmpl, funcPos, keyPos, key1, key2, dip, out); err != nil {
			return nil, err
		}
	}
	if res.Status != Timeout && res.Replayed < len(replay) {
		// A deterministic re-run must consume every journaled record
		// before it can converge; stopping short means the journal was
		// written by a different attack.
		return nil, fmt.Errorf("attack: converged after %d iterations but journal holds %d records: %w",
			res.Iterations, len(replay), ErrReplayDiverged)
	}
	res.Elapsed = time.Since(start)
	res.Solver = solver.Stats()
	// A converged (or terminally failed) attack gets a done record so
	// resuming its journal is a pure read; a timed-out attack does not
	// — its journal stays open-ended for the next resume slice.
	if opt.Journal != nil && (res.Status == KeyFound || res.Status == Failed) {
		d := JournalDone{
			Status:     res.Status.String(),
			Iterations: res.Iterations,
			ElapsedMS:  res.Elapsed.Milliseconds(),
			Solver:     solver.Snapshot(),
		}
		if res.Key != nil {
			d.Key = bitString(res.Key)
		}
		if err := opt.Journal.Finish(d); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// matches validates a journal header against the header the resumed
// attack would write, rejecting resumption across circuits or options.
// Portfolio is excluded: the accumulated DIP constraints are solver-
// mode-independent, so journals resume across modes (the replay
// strategy, not the validity, depends on it).
func (h JournalHeader) matches(want JournalHeader) error {
	h.Portfolio, want.Portfolio = false, false
	if h != want {
		return fmt.Errorf("attack: journal header %+v does not match attack %+v: %w",
			h, want, ErrReplayDiverged)
	}
	return nil
}

// resultFromDone reconstructs a finished attack's result from its
// terminal journal record; the oracle is never queried.
func resultFromDone(d *JournalDone) (*SATResult, error) {
	res := &SATResult{
		Iterations: d.Iterations,
		Replayed:   d.Iterations,
		Elapsed:    time.Duration(d.ElapsedMS) * time.Millisecond,
		Solver:     d.Solver.Stats,
	}
	switch d.Status {
	case KeyFound.String():
		res.Status = KeyFound
		key, err := parseBits(d.Key)
		if err != nil {
			return nil, fmt.Errorf("attack: journal done record: %w", err)
		}
		res.Key = key
	case Failed.String():
		res.Status = Failed
	default:
		return nil, fmt.Errorf("attack: journal done record has status %q: %w", d.Status, ErrJournalCorrupt)
	}
	return res, nil
}

// constrainDIP adds the two constrained circuit copies of one DIP
// iteration: each key copy must reproduce the oracle's response on the
// distinguishing input.
func constrainDIP(eng sat.Engine, tmpl *cnf.Template, funcPos, keyPos []int, key1, key2 []cnf.Var, dip, out []bool) error {
	for _, keyVars := range [][]cnf.Var{key1, key2} {
		outs, err := stampConstrainedCopy(eng, tmpl, funcPos, keyPos, keyVars, dip)
		if err != nil {
			return err
		}
		for i, ov := range outs {
			eng.AddClause(cnf.MkLit(ov, !out[i]))
		}
	}
	return nil
}

// stampConstrainedCopy stamps one circuit copy from the template with
// the functional inputs fixed to the DIP and the key pins aliased to
// the given key variables. It returns the output variables. The stamp
// reproduces exactly the variable and clause stream the per-iteration
// Tseitin encoder historically produced, minus the encoding work.
func stampConstrainedCopy(dst cnf.ClauseSink, tmpl *cnf.Template, funcPos, keyPos []int, keyVars []cnf.Var, dip []bool) ([]cnf.Var, error) {
	shared := make(map[int]cnf.Var, len(keyPos))
	for i, p := range keyPos {
		shared[p] = keyVars[i]
	}
	gv, ok := tmpl.Stamp(dst, shared)
	if !ok {
		return nil, fmt.Errorf("attack: DIP constraint made formula unsatisfiable")
	}
	for i, p := range funcPos {
		if !dst.AddClause(cnf.MkLit(gv.Inputs[p], !dip[i])) {
			return nil, fmt.Errorf("attack: DIP constraint made formula unsatisfiable")
		}
	}
	outs := make([]cnf.Var, len(gv.Outputs))
	copy(outs, gv.Outputs)
	return outs, nil
}

// randPatternWords fills in with `lanes` fresh random patterns drawn
// pattern-major from src (all inputs of lane 0, then lane 1, …),
// zeroing the remaining lanes. Each bit is (src.Int63()>>32)&1 — the
// exact draw math/rand's Intn(2) makes for a power-of-two bound — so
// the patterns are bit-identical to the per-pattern rng.Intn(2) loops
// this replaces, minus three layers of wrapper dispatch per bit.
// Callers holding a *rand.Rand over the same source may interleave
// draws freely: both sides consume exactly one Int63 per bit.
func randPatternWords(src rand.Source, in []uint64, lanes int) {
	for i := range in {
		in[i] = 0
	}
	for lane := uint(0); lane < uint(lanes); lane++ {
		for i := range in {
			in[i] |= (uint64(src.Int63()) >> 32 & 1) << lane
		}
	}
}

// VerifyKey checks a recovered key against an oracle by random
// simulation (rounds × 64 patterns) and reports the observed output
// error rate. A correct key scores 0.
func VerifyKey(locked *netlist.Netlist, keyPos []int, key []bool, oracle Oracle, rounds int, seed int64) (float64, error) {
	bound, err := locked.BindInputs(keyPos, key)
	if err != nil {
		return 0, err
	}
	boundOracle, err := NewSimOracle(bound)
	if err != nil {
		return 0, err
	}
	return OracleErrorRate(boundOracle, oracle, rounds, seed)
}

// OracleErrorRate measures the fraction of disagreeing output bits
// between two oracles over rounds × 64 random queries. Both oracles
// run on the BatchOracle fast path (64 patterns per word-level
// simulation); plain oracles degrade to scalar queries via AsBatch.
// The sampled patterns, the returned rate and the per-oracle query
// counts are bit-identical to the historical scalar loop for any
// (rounds, seed) — only the evaluation is batched.
func OracleErrorRate(a, b Oracle, rounds int, seed int64) (float64, error) {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return 0, fmt.Errorf("attack: oracle signature mismatch")
	}
	ba, bb := AsBatch(a), AsBatch(b)
	src := rand.NewSource(seed)
	in := make([]uint64, a.NumInputs())
	oa := make([]uint64, a.NumOutputs())
	diff, total := 0, 0
	for r := 0; r < rounds; r++ {
		// Draw pattern-major (all inputs of lane 0, then lane 1, …) so
		// lane b of word i reproduces exactly the bit the scalar loop
		// drew for (pattern r*64+b, input i).
		randPatternWords(src, in, 64)
		// Copy a's result: the two oracles may share one simulator
		// (self-comparison), and QueryWords buffers are only valid
		// until the owner's next query.
		copy(oa, ba.QueryWords(in))
		ob := bb.QueryWords(in)
		for i := range oa {
			diff += bits.OnesCount64(oa[i] ^ ob[i])
			total += 64
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(diff) / float64(total), nil
}
