package attack

import (
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// Key-sensitization attack (Yasin et al., the paper's [1]): for each
// key bit the attacker searches for an input pattern that propagates
// that bit to a primary output *regardless of the other key bits* —
// the output value on the oracle then reveals the bit directly, no
// key-space search needed. Random XOR locking frequently admits such
// patterns; RIL-Blocks interleave every key bit with many others
// through the MUX lattice, so golden patterns rarely exist.

// SensitizeResult reports a sensitization run.
type SensitizeResult struct {
	Resolved   int    // key bits recovered via golden patterns
	Unresolved int    // key bits with no golden pattern found
	Key        []bool // recovered values (meaningful where Mask is true)
	Mask       []bool // which bits were resolved
	Queries    int    // oracle queries spent
	Elapsed    time.Duration
}

func (r *SensitizeResult) String() string {
	return fmt.Sprintf("sensitization: %d/%d key bits resolved with %d oracle queries in %v",
		r.Resolved, r.Resolved+r.Unresolved, r.Queries, r.Elapsed.Round(time.Millisecond))
}

// Sensitize runs the key-sensitization attack. For each key bit i it
// solves the 2QBF-style query  ∃X ∀K_rest: C(X, ki=0) ≠ C(X, ki=1)
// with a CEGAR loop (candidate pattern from one solver, countermodel
// from another); a pattern that survives is golden: one oracle query
// fixes bit i. perBitBudget bounds the CEGAR iterations per bit.
//
// Golden patterns are swept through the oracle's BatchOracle fast
// path, 64 patterns per word-level simulation, after the per-bit CEGAR
// search; each pattern still costs exactly one counted query and the
// oracle sees them in bit order, so Queries and the recovered key are
// identical to the per-bit scalar probing this replaces.
func Sensitize(locked *netlist.Netlist, keyPos []int, oracle Oracle, perBitBudget int, timeout time.Duration) (*SensitizeResult, error) {
	start := time.Now()
	funcPos, err := splitInputs(locked, keyPos)
	if err != nil {
		return nil, err
	}
	if oracle.NumInputs() != len(funcPos) {
		return nil, fmt.Errorf("attack: sensitize: oracle arity mismatch")
	}
	decodeSim, err := netlist.NewSimulator(locked)
	if err != nil {
		return nil, err
	}
	res := &SensitizeResult{
		Key:  make([]bool, len(keyPos)),
		Mask: make([]bool, len(keyPos)),
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = start.Add(timeout)
	}

	// One probe per golden pattern found; the oracle sweep runs
	// batched once the (SAT-bound) searches are done.
	type probe struct {
		bit, outIdx int
		pattern     []bool
	}
	var pending []probe
	for bit := range keyPos {
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Unresolved = len(keyPos) - bit + res.Unresolved
			break
		}
		pattern, outIdx, ok, err := goldenPattern(locked, keyPos, funcPos, bit, perBitBudget, deadline)
		if err != nil {
			return nil, err
		}
		if !ok {
			res.Unresolved++
			continue
		}
		pending = append(pending, probe{bit: bit, outIdx: outIdx, pattern: pattern})
		res.Queries++
		res.Resolved++
	}

	// Sweep the golden patterns through the oracle: full groups of 64
	// via QueryWords, the remainder as scalar queries, in bit order
	// either way. The observed output reveals each bit: since the
	// pattern is golden, output outIdx is k ⊕ c for a fixed polarity,
	// so comparing against the locked circuit at ki=0 (rest arbitrary,
	// all zeros here) decodes the oracle's value.
	batch := AsBatch(oracle)
	words := make([]uint64, len(funcPos))
	inBuf := make([]bool, len(funcPos))
	outBuf := make([]uint64, oracle.NumOutputs())
	zeroKey := make([]bool, len(keyPos))
	for startIdx := 0; startIdx < len(pending); startIdx += 64 {
		n := len(pending) - startIdx
		if n > 64 {
			n = 64
		}
		for i := range words {
			words[i] = 0
		}
		for lane := 0; lane < n; lane++ {
			for i, v := range pending[startIdx+lane].pattern {
				if v {
					words[i] |= 1 << uint(lane)
				}
			}
		}
		var out []uint64
		if n == 64 {
			out = batch.QueryWords(words)
		} else {
			out = queryLanes(oracle, words, n, inBuf, outBuf)
		}
		for lane := 0; lane < n; lane++ {
			p := pending[startIdx+lane]
			observed := out[p.outIdx]&(1<<uint(lane)) != 0
			v0 := evalLockedAt(decodeSim, keyPos, funcPos, zeroKey, p.pattern, p.outIdx)
			res.Key[p.bit] = observed != v0 // if oracle differs, ki = 1
			res.Mask[p.bit] = true
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// goldenPattern searches for an input X and output index o such that
// flipping key bit `bit` flips output o for EVERY assignment of the
// remaining key bits.
func goldenPattern(locked *netlist.Netlist, keyPos, funcPos []int, bit, budget int, deadline time.Time) ([]bool, int, bool, error) {
	// Candidate solver: two copies sharing X and K_rest, ki=0 vs ki=1,
	// some output differs.
	enc := cnf.NewEncoder()
	c1, err := enc.Encode(locked, nil)
	if err != nil {
		return nil, 0, false, err
	}
	shared := map[int]cnf.Var{}
	for _, p := range funcPos {
		shared[p] = c1.Inputs[p]
	}
	for j, p := range keyPos {
		if j != bit {
			shared[p] = c1.Inputs[p]
		}
	}
	c2, err := enc.Encode(locked, shared)
	if err != nil {
		return nil, 0, false, err
	}
	enc.AssertLit(cnf.MkLit(c1.Inputs[keyPos[bit]], true))  // ki = 0 in copy 1
	enc.AssertLit(cnf.MkLit(c2.Inputs[keyPos[bit]], false)) // ki = 1 in copy 2
	diffVars := make([]cnf.Var, len(locked.Outputs))
	diffLits := make([]cnf.Lit, len(locked.Outputs))
	for i := range locked.Outputs {
		diffVars[i] = enc.EncodeXor2(cnf.MkLit(c1.Outputs[i], false), cnf.MkLit(c2.Outputs[i], false))
		diffLits[i] = cnf.MkLit(diffVars[i], false)
	}
	enc.F.AddClause(diffLits...)

	cand := sat.New()
	if !cand.AddFormula(enc.F) {
		return nil, 0, false, nil
	}
	if !deadline.IsZero() {
		cand.SetDeadline(deadline)
	}

	for iter := 0; iter < budget; iter++ {
		if cand.Solve() != sat.Sat {
			return nil, 0, false, nil
		}
		pattern := make([]bool, len(funcPos))
		for i, p := range funcPos {
			pattern[i] = cand.ModelValue(cnf.MkLit(c1.Inputs[p], false))
		}
		outIdx := -1
		for i, v := range diffVars {
			if cand.Model()[v] {
				outIdx = i
				break
			}
		}
		if outIdx < 0 {
			return nil, 0, false, nil
		}
		// Verify universality in two parts. First: no assignment of the
		// remaining key bits makes the outputs agree (the bit always
		// propagates). Second: the ki=0 output value is the SAME for
		// every K_rest — without value-constancy the oracle observation
		// cannot be decoded (the bit would leak XOR some other bits).
		agreeRest, agrees, err := restCountermodel(locked, keyPos, funcPos, bit, pattern, outIdx, deadline)
		if err != nil {
			return nil, 0, false, err
		}
		if !agrees {
			constant, err := valueConstant(locked, keyPos, funcPos, bit, pattern, outIdx, deadline)
			if err != nil {
				return nil, 0, false, err
			}
			if constant {
				return pattern, outIdx, true, nil // golden
			}
		}
		// Block this (pattern, outIdx) pair: require a different input
		// pattern or a different differing output next time. Simplest
		// complete refinement: forbid the exact input pattern when only
		// this output differs — conservatively forbid the pattern.
		blocking := make([]cnf.Lit, 0, len(funcPos))
		for i, p := range funcPos {
			blocking = append(blocking, cnf.MkLit(c1.Inputs[p], pattern[i]))
		}
		cand.AddClause(blocking...)
		_ = agreeRest
	}
	return nil, 0, false, nil
}

// restCountermodel checks whether some assignment of the remaining key
// bits makes output outIdx agree across ki=0/1 on the given pattern.
func restCountermodel(locked *netlist.Netlist, keyPos, funcPos []int, bit int, pattern []bool, outIdx int, deadline time.Time) ([]bool, bool, error) {
	enc := cnf.NewEncoder()
	c1, err := enc.Encode(locked, nil)
	if err != nil {
		return nil, false, err
	}
	shared := map[int]cnf.Var{}
	for _, p := range funcPos {
		shared[p] = c1.Inputs[p]
	}
	for j, p := range keyPos {
		if j != bit {
			shared[p] = c1.Inputs[p]
		}
	}
	c2, err := enc.Encode(locked, shared)
	if err != nil {
		return nil, false, err
	}
	for i, p := range funcPos {
		enc.AssertLit(cnf.MkLit(c1.Inputs[p], !pattern[i]))
	}
	enc.AssertLit(cnf.MkLit(c1.Inputs[keyPos[bit]], true))
	enc.AssertLit(cnf.MkLit(c2.Inputs[keyPos[bit]], false))
	// Outputs agree at outIdx.
	x := enc.EncodeXor2(cnf.MkLit(c1.Outputs[outIdx], false), cnf.MkLit(c2.Outputs[outIdx], false))
	enc.AssertLit(cnf.MkLit(x, true))

	s := sat.New()
	if !s.AddFormula(enc.F) {
		return nil, false, nil
	}
	if !deadline.IsZero() {
		s.SetDeadline(deadline)
	}
	if s.Solve() != sat.Sat {
		return nil, false, nil
	}
	rest := make([]bool, len(keyPos))
	for j, p := range keyPos {
		if j != bit {
			rest[j] = s.ModelValue(cnf.MkLit(c1.Inputs[p], false))
		}
	}
	return rest, true, nil
}

// valueConstant checks that C(X, ki=0, K_rest) at outIdx takes the
// same value for every assignment of the remaining key bits: encode
// two copies with ki=0 and independent rests, and ask whether the
// outputs can differ (UNSAT = constant).
func valueConstant(locked *netlist.Netlist, keyPos, funcPos []int, bit int, pattern []bool, outIdx int, deadline time.Time) (bool, error) {
	enc := cnf.NewEncoder()
	c1, err := enc.Encode(locked, nil)
	if err != nil {
		return false, err
	}
	shared := map[int]cnf.Var{}
	for _, p := range funcPos {
		shared[p] = c1.Inputs[p]
	}
	c2, err := enc.Encode(locked, shared)
	if err != nil {
		return false, err
	}
	for i, p := range funcPos {
		enc.AssertLit(cnf.MkLit(c1.Inputs[p], !pattern[i]))
	}
	enc.AssertLit(cnf.MkLit(c1.Inputs[keyPos[bit]], true)) // ki = 0 both copies
	enc.AssertLit(cnf.MkLit(c2.Inputs[keyPos[bit]], true))
	x := enc.EncodeXor2(cnf.MkLit(c1.Outputs[outIdx], false), cnf.MkLit(c2.Outputs[outIdx], false))
	enc.AssertLit(cnf.MkLit(x, false)) // outputs differ

	s := sat.New()
	if !s.AddFormula(enc.F) {
		return true, nil
	}
	if !deadline.IsZero() {
		s.SetDeadline(deadline)
	}
	switch s.Solve() {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	}
	return false, nil // timeout: cannot certify, treat as non-golden
}

// evalLockedAt simulates the locked netlist on (key, pattern) via the
// shared decode simulator and returns output outIdx.
func evalLockedAt(sim *netlist.Simulator, keyPos, funcPos []int, key, pattern []bool, outIdx int) bool {
	in := make([]bool, len(keyPos)+len(funcPos))
	for i, p := range keyPos {
		in[p] = key[i]
	}
	for i, p := range funcPos {
		in[p] = pattern[i]
	}
	return sim.Eval(in)[outIdx]
}
