package attack

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
)

func TestSensitizeRecoversIsolatedXORKeys(t *testing.T) {
	// A key XOR sitting directly on an output wire is trivially
	// sensitizable: the attack must recover it with one oracle query.
	nl := netlist.New("iso")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g := nl.AddGate("g", netlist.And, a, b)
	keyPos := []int{int(2)}
	k := nl.AddInput("keyinput0")
	lockGate := nl.AddGate("klk", netlist.Xor, g, k)
	nl.MarkOutput(lockGate)
	// Second, unlocked output keeps the oracle honest.
	h := nl.AddGate("h", netlist.Or, a, b)
	nl.MarkOutput(h)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	correct := []bool{false} // XOR with key 0 is transparent
	oracle := oracleFor(t, nl, keyPos, correct)
	res, err := Sensitize(nl, keyPos, oracle, 8, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved != 1 || !res.Mask[0] {
		t.Fatalf("expected 1 resolved bit, got %+v", res)
	}
	if res.Key[0] != correct[0] {
		t.Errorf("recovered %v, want %v", res.Key[0], correct[0])
	}
	if res.Queries != 1 {
		t.Errorf("used %d oracle queries, want 1", res.Queries)
	}
}

func TestSensitizeOnXORLock(t *testing.T) {
	// Random XOR locking typically exposes several golden patterns;
	// every bit the attack claims must be correct.
	orig := smallCircuit(t, 60, 71)
	locked, keyPos, key := xorLock(t, orig, 6, 72)
	oracle := oracleFor(t, locked, keyPos, key)
	res, err := Sensitize(locked, keyPos, oracle, 16, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keyPos {
		if res.Mask[i] && res.Key[i] != key[i] {
			t.Errorf("bit %d resolved wrongly: got %v want %v", i, res.Key[i], key[i])
		}
	}
	t.Logf("%s", res)
}

func TestSensitizeFailsOnRIL(t *testing.T) {
	// Every RIL key bit is entangled with the rest through the MUX
	// lattice: golden patterns must be (nearly) absent, and any bit the
	// attack does resolve must still be consistent with some correct
	// key — verify none are resolved to a provably wrong value by
	// checking the full-key substitution.
	orig := smallCircuit(t, 150, 73)
	rl, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleFor(t, rl.Locked, rl.KeyInputPos, rl.Key)
	res, err := Sensitize(rl.Locked, rl.KeyInputPos, oracle, 4, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	if res.Resolved > rl.KeyBits()/2 {
		t.Errorf("sensitization resolved %d/%d RIL key bits — blocks should entangle keys",
			res.Resolved, rl.KeyBits())
	}
	// Golden-pattern semantics guarantee correctness of resolved bits
	// only if a unique consistent key exists; RIL has key symmetry, so
	// just confirm the attack cannot finish the job.
	if res.Resolved == rl.KeyBits() {
		t.Error("sensitization fully recovered an RIL key")
	}
}
