// Package baselines implements the locking schemes the paper compares
// RIL-Blocks against (Table V): random XOR/XNOR locking, the one-point
// function family (SARLock, Anti-SAT, SFLL-HD, CAS-Lock), plain
// LUT-based locking [12], and the two encodings of a polymorphic
// (MESO-style) gate from Fig. 1.
//
// Every scheme returns a Locked bundle with the transformed netlist,
// the key-input positions and the correct key, and self-checks that
// the correct key restores the original function.
package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/netlist"
)

// Locked is a uniformly-shaped locking result.
type Locked struct {
	Scheme  string
	Netlist *netlist.Netlist
	KeyPos  []int  // positions of key inputs within Netlist.Inputs
	Key     []bool // the correct key
}

// KeyBits returns the key length.
func (l *Locked) KeyBits() int { return len(l.Key) }

// selfCheck validates that the correct key restores the original.
func selfCheck(orig *netlist.Netlist, l *Locked, seed int64) (*Locked, error) {
	bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
	if err != nil {
		return nil, err
	}
	eq, cex, err := netlist.Equivalent(orig, bound, 12, 8, seed)
	if err != nil {
		return nil, err
	}
	if !eq {
		return nil, fmt.Errorf("baselines: %s: correct key does not restore function (cex %v)", l.Scheme, cex)
	}
	return l, nil
}

// addKeyInput appends a key input and records its position and value.
func (l *Locked) addKeyInput(nl *netlist.Netlist, val bool) int {
	name := fmt.Sprintf("keyinput%d", len(l.Key))
	l.KeyPos = append(l.KeyPos, len(nl.Inputs))
	id := nl.AddInput(name)
	l.Key = append(l.Key, val)
	return id
}

// XORLock inserts nKeys key-controlled XOR/XNOR gates on random wires
// (EPIC-style random logic locking — the classic baseline the SAT
// attack was built to break).
func XORLock(orig *netlist.Netlist, nKeys int, seed int64) (*Locked, error) {
	if nKeys < 1 {
		return nil, fmt.Errorf("baselines: nKeys must be >= 1")
	}
	nl := orig.Clone()
	rng := rand.New(rand.NewSource(seed))
	l := &Locked{Scheme: "xor", Netlist: nl}
	var cands []int
	for id := range nl.Gates {
		if nl.Gates[id].Type != netlist.Input {
			cands = append(cands, id)
		}
	}
	if len(cands) < nKeys {
		return nil, fmt.Errorf("baselines: circuit too small for %d key gates", nKeys)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	for i := 0; i < nKeys; i++ {
		wire := cands[i]
		bit := rng.Intn(2) == 1
		kid := l.addKeyInput(nl, bit)
		t := netlist.Xor // transparent with key=0
		if bit {
			t = netlist.Xnor // transparent with key=1
		}
		g := nl.AddGate(nl.FreshName(fmt.Sprintf("klk%d", i)), t, wire, kid)
		nl.RedirectFanout(wire, g)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return selfCheck(orig, l, seed)
}

// LUTLock replaces nLUTs random 2-input gates with 2-input LUTs — the
// plain LUT-based obfuscation of [12], without any routing network. It
// is implemented as RIL-Blocks of geometry lut1 (K=1, no routing).
func LUTLock(orig *netlist.Netlist, nLUTs int, seed int64) (*Locked, error) {
	res, err := core.Lock(orig, core.Options{
		Blocks: nLUTs,
		Size:   core.Size{K: 1},
		Seed:   seed,
	})
	if err != nil {
		return nil, err
	}
	return &Locked{
		Scheme:  "lut",
		Netlist: res.Locked,
		KeyPos:  res.KeyInputPos,
		Key:     res.Key,
	}, nil
}

// RIL locks with the paper's scheme, adapting it to the Locked shape
// used by the comparison harness.
func RIL(orig *netlist.Netlist, blocks int, size core.Size, seed int64) (*Locked, *core.Result, error) {
	res, err := core.Lock(orig, core.Options{Blocks: blocks, Size: size, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return &Locked{
		Scheme:  "ril-" + size.String(),
		Netlist: res.Locked,
		KeyPos:  res.KeyInputPos,
		Key:     res.Key,
	}, res, nil
}
