package baselines

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/netlist"
)

func circ(t *testing.T, gates int, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomProfile{
		Name: "b", Inputs: 14, Outputs: 6, Gates: gates, Locality: 0.6,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// lockers enumerates every scheme at a small size.
func lockers(t *testing.T, orig *netlist.Netlist) map[string]*Locked {
	t.Helper()
	out := map[string]*Locked{}
	add := func(name string, l *Locked, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = l
	}
	l, err := XORLock(orig, 10, 1)
	add("xor", l, err)
	l, err = SARLock(orig, 8, 2)
	add("sarlock", l, err)
	l, err = AntiSAT(orig, 8, 3)
	add("antisat", l, err)
	l, err = SFLLHD(orig, 8, 2, 4)
	add("sfll", l, err)
	l, err = CASLock(orig, 8, 5)
	add("caslock", l, err)
	l, err = LUTLock(orig, 6, 6)
	add("lut", l, err)
	l, err = MESOLock(orig, 4, 7)
	add("meso", l, err)
	l, err = MESOAsLUT2(orig, 4, 7)
	add("meso-lut2", l, err)
	return out
}

func TestAllSchemesEquivalentUnderCorrectKey(t *testing.T) {
	orig := circ(t, 120, 1)
	// Construction self-checks equivalence; verify key bookkeeping.
	for name, l := range lockers(t, orig) {
		if len(l.Key) != len(l.KeyPos) {
			t.Errorf("%s: key bookkeeping inconsistent", name)
		}
		if l.KeyBits() == 0 {
			t.Errorf("%s: empty key", name)
		}
		for i, pos := range l.KeyPos {
			if pos < 0 || pos >= len(l.Netlist.Inputs) {
				t.Fatalf("%s: key position %d out of range", name, i)
			}
		}
	}
}

func TestPointFunctionsLowCorruptibility(t *testing.T) {
	orig := circ(t, 120, 2)
	sar, err := SARLock(orig, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := XORLock(orig, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	wrongOf := func(l *Locked) []bool {
		w := append([]bool(nil), l.Key...)
		for i := range w {
			w[i] = !w[i]
		}
		return w
	}
	sarBound, err := sar.Netlist.BindInputs(sar.KeyPos, wrongOf(sar))
	if err != nil {
		t.Fatal(err)
	}
	xorBound, err := xor.Netlist.BindInputs(xor.KeyPos, wrongOf(xor))
	if err != nil {
		t.Fatal(err)
	}
	sarC, err := netlist.OutputCorruptibility(orig, sarBound, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	xorC, err := netlist.OutputCorruptibility(orig, xorBound, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The defining contrast: a wrong SARLock key corrupts almost
	// nothing; a wrong XOR-lock key corrupts heavily.
	if sarC > 0.01 {
		t.Errorf("SARLock wrong-key corruptibility %v — should be a point function", sarC)
	}
	if xorC < 0.05 {
		t.Errorf("XOR-lock wrong-key corruptibility %v — should be high", xorC)
	}
}

func TestSATAttackIterationContrast(t *testing.T) {
	// Point functions force many DIPs; random XOR locking falls in few.
	orig := circ(t, 100, 6)
	sar, err := SARLock(orig, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := XORLock(orig, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func(l *Locked) *attack.SATResult {
		bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := attack.NewSimOracle(bound)
		if err != nil {
			t.Fatal(err)
		}
		res, err := attack.SATAttack(l.Netlist, l.KeyPos, oracle, attack.SATOptions{Timeout: 60 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != attack.KeyFound {
			t.Fatalf("%s attack did not converge: %v", l.Scheme, res)
		}
		if e, _ := attack.VerifyKey(l.Netlist, l.KeyPos, res.Key, oracle, 8, 9); e != 0 {
			t.Fatalf("%s: recovered key wrong (err %v)", l.Scheme, e)
		}
		return res
	}
	sarRes := run(sar)
	xorRes := run(xor)
	if sarRes.Iterations <= xorRes.Iterations {
		t.Errorf("SARLock DIPs (%d) should exceed XOR-lock DIPs (%d)",
			sarRes.Iterations, xorRes.Iterations)
	}
	// 8-bit SARLock needs on the order of 2^8 DIPs.
	if sarRes.Iterations < 100 {
		t.Errorf("SARLock fell in %d DIPs; expected ~2^8", sarRes.Iterations)
	}
}

func TestMESOEncodingLargerThanLUT2(t *testing.T) {
	orig := circ(t, 120, 9)
	meso, err := MESOLock(orig, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	lut2, err := MESOAsLUT2(orig, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Same selection, two encodings: the MESO form must be much larger
	// (8 gates + 7 MUXes vs 3 MUXes per instance).
	mg := meso.Netlist.NumLogicGates()
	lg := lut2.Netlist.NumLogicGates()
	if mg <= lg {
		t.Errorf("MESO encoding (%d gates) should exceed LUT2 encoding (%d gates)", mg, lg)
	}
	if meso.KeyBits() != 15 || lut2.KeyBits() != 20 {
		t.Errorf("key bits: meso=%d (want 15), lut2=%d (want 20)", meso.KeyBits(), lut2.KeyBits())
	}
}

func TestSFLLHDSelfConsistency(t *testing.T) {
	orig := circ(t, 100, 11)
	for _, h := range []int{0, 1, 3} {
		if _, err := SFLLHD(orig, 8, h, 12); err != nil {
			t.Errorf("SFLL-HD h=%d: %v", h, err)
		}
	}
	if _, err := SFLLHD(orig, 8, 9, 13); err == nil {
		t.Error("h > keyBits accepted")
	}
}

func TestSchemeErrors(t *testing.T) {
	orig := circ(t, 40, 14)
	if _, err := XORLock(orig, 0, 1); err == nil {
		t.Error("XORLock nKeys=0 accepted")
	}
	if _, err := SARLock(orig, 100, 1); err == nil {
		t.Error("SARLock keyBits > inputs accepted")
	}
	if _, err := MESOLock(orig, 10000, 1); err == nil {
		t.Error("MESOLock oversubscription accepted")
	}
}
