package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// mesoFuncs are the eight functions a MESO polymorphic gate offers
// (paper §II-B: "LUT of size 2 can emulate all 8 functions that a MESO
// device can offer").
var mesoFuncs = []logic.Func2{
	logic.AND, logic.OR, logic.NAND, logic.NOR,
	logic.XOR, logic.XNOR, logic.NotA, logic.BufA,
}

// mesoIndex returns the selector value of a function within the MESO
// set, or -1.
func mesoIndex(f logic.Func2) int {
	for i, g := range mesoFuncs {
		if g == f {
			return i
		}
	}
	return -1
}

// selectReplaceable picks n random 2-input gates whose function is in
// the MESO set.
func selectReplaceable(nl *netlist.Netlist, n int, rng *rand.Rand) ([]int, error) {
	var cands []int
	for id := range nl.Gates {
		g := &nl.Gates[id]
		if len(g.Fanin) != 2 {
			continue
		}
		if f, ok := gateToFunc2(g.Type); ok && mesoIndex(f) >= 0 {
			cands = append(cands, id)
		}
	}
	if len(cands) < n {
		return nil, fmt.Errorf("baselines: only %d MESO-replaceable gates, need %d", len(cands), n)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands[:n], nil
}

func gateToFunc2(t netlist.GateType) (logic.Func2, bool) {
	switch t {
	case netlist.And:
		return logic.AND, true
	case netlist.Nand:
		return logic.NAND, true
	case netlist.Or:
		return logic.OR, true
	case netlist.Nor:
		return logic.NOR, true
	case netlist.Xor:
		return logic.XOR, true
	case netlist.Xnor:
		return logic.XNOR, true
	}
	return 0, false
}

// MESOLock replaces nGates random gates with the paper's Fig. 1 MESO
// encoding: the eight candidate functions are instantiated as real
// gates and a 7-MUX binary select tree driven by 3 key bits picks one.
// This is the SAT-representation the MESO/dynamic-camouflaging work
// uses, which the paper shows is needlessly large.
func MESOLock(orig *netlist.Netlist, nGates int, seed int64) (*Locked, error) {
	nl := orig.Clone()
	rng := rand.New(rand.NewSource(seed))
	l := &Locked{Scheme: "meso", Netlist: nl}
	sel, err := selectReplaceable(nl, nGates, rng)
	if err != nil {
		return nil, err
	}
	for gi, id := range sel {
		g := nl.Gates[id]
		f, _ := gateToFunc2(g.Type)
		idx := mesoIndex(f)
		a, b := g.Fanin[0], g.Fanin[1]

		// Three key bits select among the eight functions.
		var kids [3]int
		for bit := 0; bit < 3; bit++ {
			kids[bit] = l.addKeyInput(nl, idx&(1<<bit) != 0)
		}
		// Eight candidate gates.
		leaves := make([]int, 8)
		for i, mf := range mesoFuncs {
			leaves[i] = buildFunc2Gate(nl, fmt.Sprintf("meso%d_f%d", gi, i), mf, a, b)
		}
		// 7-MUX select tree (LSB first).
		for bit := 0; bit < 3; bit++ {
			next := make([]int, len(leaves)/2)
			for i := range next {
				next[i] = nl.AddGate(nl.FreshName(fmt.Sprintf("meso%d_m%d_%d", gi, bit, i)),
					netlist.Mux, kids[bit], leaves[2*i], leaves[2*i+1])
			}
			leaves = next
		}
		nl.RedirectFanout(id, leaves[0])
	}
	nl.Prune()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return selfCheck(orig, l, seed)
}

// buildFunc2Gate lowers one of the sixteen two-input functions to
// primitive gates on wires (a, b).
func buildFunc2Gate(nl *netlist.Netlist, prefix string, f logic.Func2, a, b int) int {
	name := nl.FreshName(prefix)
	switch f {
	case logic.AND:
		return nl.AddGate(name, netlist.And, a, b)
	case logic.OR:
		return nl.AddGate(name, netlist.Or, a, b)
	case logic.NAND:
		return nl.AddGate(name, netlist.Nand, a, b)
	case logic.NOR:
		return nl.AddGate(name, netlist.Nor, a, b)
	case logic.XOR:
		return nl.AddGate(name, netlist.Xor, a, b)
	case logic.XNOR:
		return nl.AddGate(name, netlist.Xnor, a, b)
	case logic.NotA:
		return nl.AddGate(name, netlist.Not, a)
	case logic.BufA:
		return nl.AddGate(name, netlist.Buf, a)
	case logic.NotB:
		return nl.AddGate(name, netlist.Not, b)
	case logic.BufB:
		return nl.AddGate(name, netlist.Buf, b)
	default:
		panic(fmt.Sprintf("baselines: no primitive lowering for %s", f))
	}
}

// MESOAsLUT2 replaces the same gates (same seed and selection) with the
// paper's compact Fig. 1 re-encoding: a 2-input LUT of three MUXes
// whose four leaf key bits are the truth table. The key space grows
// from 8 to 16 functions, yet SAT solves it faster — the observation
// motivating §II-B.
func MESOAsLUT2(orig *netlist.Netlist, nGates int, seed int64) (*Locked, error) {
	nl := orig.Clone()
	rng := rand.New(rand.NewSource(seed))
	l := &Locked{Scheme: "meso-as-lut2", Netlist: nl}
	sel, err := selectReplaceable(nl, nGates, rng)
	if err != nil {
		return nil, err
	}
	for gi, id := range sel {
		g := nl.Gates[id]
		f, _ := gateToFunc2(g.Type)
		a, b := g.Fanin[0], g.Fanin[1]
		keys := f.Keys() // Table II order K1..K4
		var kids [4]int
		for i, v := range keys {
			kids[i] = l.addKeyInput(nl, v)
		}
		// Three-MUX tree: K1=f(1,1) K2=f(1,0) K3=f(0,1) K4=f(0,0).
		m0 := nl.AddGate(nl.FreshName(fmt.Sprintf("l2_%d_m0", gi)), netlist.Mux, b, kids[3], kids[2])
		m1 := nl.AddGate(nl.FreshName(fmt.Sprintf("l2_%d_m1", gi)), netlist.Mux, b, kids[1], kids[0])
		out := nl.AddGate(nl.FreshName(fmt.Sprintf("l2_%d_o", gi)), netlist.Mux, a, m0, m1)
		nl.RedirectFanout(id, out)
	}
	nl.Prune()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return selfCheck(orig, l, seed)
}
