package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// The one-point-function family: schemes that flip an output only on a
// tiny, key-dependent set of input patterns. They force the SAT attack
// through exponentially many DIPs but offer near-zero output
// corruptibility — the trade-off the paper criticizes (§I, §II-B).

// pickProtected selects the first k primary-input positions as the
// protected input word (standard in these schemes).
func pickProtected(nl *netlist.Netlist, k int) ([]int, error) {
	if k < 1 || k > len(nl.Inputs) {
		return nil, fmt.Errorf("baselines: protected width %d out of range (circuit has %d inputs)", k, len(nl.Inputs))
	}
	ids := make([]int, k)
	for i := 0; i < k; i++ {
		ids[i] = nl.Inputs[i]
	}
	return ids, nil
}

// xorIntoOutput XORs signal into output 0 of the netlist.
func xorIntoOutput(nl *netlist.Netlist, signal int) {
	out := nl.Outputs[0]
	g := nl.AddGate(nl.FreshName("flip"), netlist.Xor, out, signal)
	nl.Outputs[0] = g
}

// eqWord builds a comparator: AND over XNOR(x_i, y_i).
func eqWord(nl *netlist.Netlist, prefix string, xs, ys []int) int {
	terms := make([]int, len(xs))
	for i := range xs {
		terms[i] = nl.AddGate(nl.FreshName(fmt.Sprintf("%s_e%d", prefix, i)), netlist.Xnor, xs[i], ys[i])
	}
	return andTree(nl, prefix, terms)
}

func andTree(nl *netlist.Netlist, prefix string, terms []int) int {
	for len(terms) > 1 {
		var next []int
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, nl.AddGate(nl.FreshName(prefix+"_a"), netlist.And, terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	return terms[0]
}

// SARLock locks the circuit with the SARLock comparator: output 0 is
// flipped when the protected input word equals the key, masked so the
// correct key never flips. SAT attacks need ~2^k DIPs; corruptibility
// is one input pattern per wrong key.
func SARLock(orig *netlist.Netlist, keyBits int, seed int64) (*Locked, error) {
	nl := orig.Clone()
	l := &Locked{Scheme: "sarlock", Netlist: nl}
	xs, err := pickProtected(nl, keyBits)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ks := make([]int, keyBits)
	kstar := make([]int, keyBits) // constants holding the correct key
	for i := 0; i < keyBits; i++ {
		bit := rng.Intn(2) == 1
		ks[i] = l.addKeyInput(nl, bit)
		t := netlist.Const0
		if bit {
			t = netlist.Const1
		}
		kstar[i] = nl.AddGate(nl.FreshName("kstar"), t)
	}
	eqXK := eqWord(nl, "sx", xs, ks)
	eqKK := eqWord(nl, "sk", ks, kstar)
	mask := nl.AddGate(nl.FreshName("smask"), netlist.Not, eqKK)
	flip := nl.AddGate(nl.FreshName("sflip"), netlist.And, eqXK, mask)
	xorIntoOutput(nl, flip)
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return selfCheck(orig, l, seed)
}

// AntiSAT adds the Anti-SAT block: Y = g(X⊕K1) ∧ ¬g(X⊕K2) with g an
// AND tree; Y is XORed into output 0. Any key with K1 = K2 is correct
// (Y ≡ 0); the generated correct key uses a random common value.
func AntiSAT(orig *netlist.Netlist, keyBits int, seed int64) (*Locked, error) {
	nl := orig.Clone()
	l := &Locked{Scheme: "antisat", Netlist: nl}
	xs, err := pickProtected(nl, keyBits)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	common := make([]bool, keyBits)
	for i := range common {
		common[i] = rng.Intn(2) == 1
	}
	makeHalf := func(name string, invertG bool) int {
		terms := make([]int, keyBits)
		for i := 0; i < keyBits; i++ {
			kid := l.addKeyInput(nl, common[i])
			terms[i] = nl.AddGate(nl.FreshName(fmt.Sprintf("%s_x%d", name, i)), netlist.Xor, xs[i], kid)
		}
		g := andTree(nl, name, terms)
		if invertG {
			g = nl.AddGate(nl.FreshName(name+"_n"), netlist.Not, g)
		}
		return g
	}
	g1 := makeHalf("as1", false)
	g2 := makeHalf("as2", true)
	y := nl.AddGate(nl.FreshName("asy"), netlist.And, g1, g2)
	xorIntoOutput(nl, y)
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return selfCheck(orig, l, seed)
}

// SFLLHD implements stripped-functionality logic locking with a
// Hamming-distance-h restore unit: the stored circuit is functionally
// stripped on all protected-input patterns at Hamming distance h from
// the secret word, and the restore unit re-flips exactly those
// patterns when the key matches.
func SFLLHD(orig *netlist.Netlist, keyBits, h int, seed int64) (*Locked, error) {
	if h < 0 || h > keyBits {
		return nil, fmt.Errorf("baselines: SFLL h=%d out of range", h)
	}
	nl := orig.Clone()
	l := &Locked{Scheme: fmt.Sprintf("sfll-hd%d", h), Netlist: nl}
	xs, err := pickProtected(nl, keyBits)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	secret := make([]bool, keyBits)
	for i := range secret {
		secret[i] = rng.Intn(2) == 1
	}
	// Stripping comparator against the hard-wired secret.
	kstar := make([]int, keyBits)
	for i, b := range secret {
		t := netlist.Const0
		if b {
			t = netlist.Const1
		}
		kstar[i] = nl.AddGate(nl.FreshName("fstar"), t)
	}
	strip := hdEquals(nl, "fs", xs, kstar, h)
	xorIntoOutput(nl, strip)
	// Restore unit against the key inputs.
	ks := make([]int, keyBits)
	for i, b := range secret {
		ks[i] = l.addKeyInput(nl, b)
	}
	restore := hdEquals(nl, "fr", xs, ks, h)
	xorIntoOutput(nl, restore)
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return selfCheck(orig, l, seed)
}

// hdEquals builds a circuit asserting HammingDistance(xs, ys) == h.
func hdEquals(nl *netlist.Netlist, prefix string, xs, ys []int, h int) int {
	diffs := make([]int, len(xs))
	for i := range xs {
		diffs[i] = nl.AddGate(nl.FreshName(fmt.Sprintf("%s_d%d", prefix, i)), netlist.Xor, xs[i], ys[i])
	}
	count := popcount(nl, prefix, diffs)
	// Compare the count word against the constant h.
	var terms []int
	for i, bitID := range count {
		want := h&(1<<i) != 0
		if want {
			terms = append(terms, bitID)
		} else {
			terms = append(terms, nl.AddGate(nl.FreshName(prefix+"_cn"), netlist.Not, bitID))
		}
	}
	return andTree(nl, prefix+"_eq", terms)
}

// popcount builds a bit-serial adder tree counting the set bits,
// returning the little-endian count word.
func popcount(nl *netlist.Netlist, prefix string, bits []int) []int {
	// Fold one bit at a time into an accumulator (ripple increment).
	width := 1
	for 1<<width <= len(bits) {
		width++
	}
	zero := nl.AddGate(nl.FreshName(prefix+"_z"), netlist.Const0)
	acc := make([]int, width)
	for i := range acc {
		acc[i] = zero
	}
	for bi, b := range bits {
		carry := b
		for i := 0; i < width; i++ {
			sum := nl.AddGate(nl.FreshName(fmt.Sprintf("%s_s%d_%d", prefix, bi, i)), netlist.Xor, acc[i], carry)
			newCarry := nl.AddGate(nl.FreshName(fmt.Sprintf("%s_c%d_%d", prefix, bi, i)), netlist.And, acc[i], carry)
			acc[i] = sum
			carry = newCarry
		}
	}
	return acc
}

// CASLock inserts the cascaded AND/OR block of CAS-Lock: a chain of
// alternating AND/OR gates over (x_i ⊕ k_i) terms, masked so the
// correct key produces no corruption. Its corruption profile sits
// between point functions and random locking.
func CASLock(orig *netlist.Netlist, keyBits int, seed int64) (*Locked, error) {
	nl := orig.Clone()
	l := &Locked{Scheme: "caslock", Netlist: nl}
	xs, err := pickProtected(nl, keyBits)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ks := make([]int, keyBits)
	kstar := make([]int, keyBits)
	for i := 0; i < keyBits; i++ {
		bit := rng.Intn(2) == 1
		ks[i] = l.addKeyInput(nl, bit)
		t := netlist.Const0
		if bit {
			t = netlist.Const1
		}
		kstar[i] = nl.AddGate(nl.FreshName("ckstar"), t)
	}
	cascade := func(prefix string, keys []int) int {
		cur := nl.AddGate(nl.FreshName(prefix+"_t0"), netlist.Xor, xs[0], keys[0])
		for i := 1; i < keyBits; i++ {
			term := nl.AddGate(nl.FreshName(fmt.Sprintf("%s_t%d", prefix, i)), netlist.Xor, xs[i], keys[i])
			t := netlist.And
			if i%2 == 1 {
				t = netlist.Or
			}
			cur = nl.AddGate(nl.FreshName(fmt.Sprintf("%s_c%d", prefix, i)), t, cur, term)
		}
		return cur
	}
	// Corruption = cascade(X,K) ⊕ cascade(X,K*): zero exactly when the
	// key reproduces the hard-wired cascade (the masked CAS-Lock form).
	gk := cascade("cas_k", ks)
	gs := cascade("cas_s", kstar)
	y := nl.AddGate(nl.FreshName("casy"), netlist.Xor, gk, gs)
	xorIntoOutput(nl, y)
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return selfCheck(orig, l, seed)
}
