package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/netlist"
)

// RoutingLock is the routing-only obfuscation of FullLock/InterLock
// lineage ([10], [11]): N tapped wires pass through a key-controlled
// banyan network and reconnect to the original destinations — no LUT
// layer. The paper argues (and [11] demonstrated) that routing-only
// obfuscation falls to a smarter one-layer/one-hot re-encoding of the
// SAT problem; RIL-Blocks add the LUT layer precisely to close that
// hole.
//
// The returned RoutingNetwork describes the network so the one-hot
// attack can re-encode it.
type RoutingNetwork struct {
	Width       int      // N
	InputNames  []string // wires entering the network, line order
	OutputNames []string // MUX gates leaving the network, line order
	KeyPos      []int    // positions of the switch keys within Netlist.Inputs
}

// sortByKeyDesc stably sorts ints by a key, descending.
func sortByKeyDesc(s []int, key func(int) int) {
	sort.SliceStable(s, func(i, j int) bool { return key(s[i]) > key(s[j]) })
}

// RoutingLock inserts one N-wire banyan over N randomly tapped wires.
// N must be a power of two >= 2.
func RoutingLock(orig *netlist.Netlist, width int, seed int64) (*Locked, *RoutingNetwork, error) {
	if width < 2 || width&(width-1) != 0 {
		return nil, nil, fmt.Errorf("baselines: routing width %d must be a power of two >= 2", width)
	}
	nl := orig.Clone()
	rng := rand.New(rand.NewSource(seed))
	l := &Locked{Scheme: fmt.Sprintf("routing%d", width), Netlist: nl}

	// Tap wires whose fanouts we can legally permute: we cut each wire
	// and reconnect through the network, so no tapped wire may lie in
	// the transitive fanout of another (that would loop).
	var cands []int
	for id := range nl.Gates {
		if len(nl.Gates[id].Fanin) > 0 { // any logic gate output
			cands = append(cands, id)
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	// Prefer gates near the outputs: their transitive fanout is small,
	// so far more of them are pairwise non-interfering.
	if levels, _, err := nl.Levels(); err == nil {
		sortByKeyDesc(cands, func(id int) int { return levels[id] })
	}
	var taps []int
	unionTFO := make([]bool, nl.NumGates())
	for _, cand := range cands {
		if len(taps) == width {
			break
		}
		if unionTFO[cand] {
			continue
		}
		tfo := nl.TransitiveFanout(cand)
		ok := true
		for _, tp := range taps {
			if tfo[tp] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		taps = append(taps, cand)
		for i, b := range tfo {
			if b {
				unionTFO[i] = true
			}
		}
	}
	if len(taps) < width {
		// Fallback: wires at the same logic level can never interfere
		// (a level-L gate's fanout lies strictly above level L).
		levels, _, err := nl.Levels()
		if err != nil {
			return nil, nil, err
		}
		byLevel := map[int][]int{}
		for _, c := range cands {
			byLevel[levels[c]] = append(byLevel[levels[c]], c)
		}
		best := -1
		for lv, g := range byLevel {
			if len(g) >= width && (best < 0 || lv < best) {
				best = lv
			}
		}
		if best < 0 {
			return nil, nil, fmt.Errorf("baselines: only %d non-interfering wires for a %d-wide network", len(taps), width)
		}
		taps = append([]int(nil), byLevel[best][:width]...)
	}

	// Random switch keys; the port assignment compensates so that the
	// network delivers each wire back to its own fanout.
	nSwitch := core.BanyanSwitchCount(width)
	keys := make([]bool, nSwitch)
	for i := range keys {
		keys[i] = rng.Intn(2) == 1
	}
	landed, err := core.BanyanPermute(width, keys)
	if err != nil {
		return nil, nil, err
	}
	// Output line j receives input port landed[j]; we want output j to
	// carry taps[j], so port landed[j] hosts taps[j].
	ports := make([]int, width)
	for j := 0; j < width; j++ {
		ports[landed[j]] = taps[j]
	}

	// Record the original readers of each tapped wire before the
	// network exists: RedirectFanout would otherwise also rewire the
	// network's own port connections and close a combinational loop.
	readers := make([][]int, width) // per tap: gate IDs reading it
	outputMarks := make([][]int, width)
	for j, tap := range taps {
		for id := range nl.Gates {
			for _, f := range nl.Gates[id].Fanin {
				if f == tap {
					readers[j] = append(readers[j], id)
					break
				}
			}
		}
		for oi, o := range nl.Outputs {
			if o == tap {
				outputMarks[j] = append(outputMarks[j], oi)
			}
		}
	}

	keyIDs := make([]int, nSwitch)
	net := &RoutingNetwork{Width: width}
	for i, v := range keys {
		net.KeyPos = append(net.KeyPos, len(nl.Inputs))
		keyIDs[i] = l.addKeyInput(nl, v)
	}
	outs, err := core.BuildBanyanNetwork(nl, "rlk", ports, keyIDs)
	if err != nil {
		return nil, nil, err
	}
	for p := range ports {
		net.InputNames = append(net.InputNames, nl.Gates[ports[p]].Name)
	}
	for j, out := range outs {
		net.OutputNames = append(net.OutputNames, nl.Gates[out].Name)
		for _, rd := range readers[j] {
			fin := nl.Gates[rd].Fanin
			for fi, f := range fin {
				if f == taps[j] {
					fin[fi] = out
				}
			}
		}
		for _, oi := range outputMarks[j] {
			nl.Outputs[oi] = out
		}
	}
	if err := nl.Validate(); err != nil {
		return nil, nil, err
	}
	checked, err := selfCheck(orig, l, seed)
	if err != nil {
		return nil, nil, err
	}
	return checked, net, nil
}
