package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
)

func wideCirc(t *testing.T, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomProfile{
		Name: "w", Inputs: 16, Outputs: 12, Gates: 300, Locality: 0.3,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestRoutingLockSelfChecks(t *testing.T) {
	orig := wideCirc(t, 31)
	l, net, err := RoutingLock(orig, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if l.Scheme != "routing8" {
		t.Errorf("scheme %q", l.Scheme)
	}
	if net.Width != 8 || len(net.KeyPos) != core.BanyanSwitchCount(8) {
		t.Errorf("network %+v", net)
	}
	// The network descriptor must reference real gates.
	for _, n := range append(append([]string(nil), net.InputNames...), net.OutputNames...) {
		if _, ok := l.Netlist.GateID(n); !ok {
			t.Fatalf("network references missing gate %q", n)
		}
	}
}

func TestRoutingLockWidths(t *testing.T) {
	orig := wideCirc(t, 33)
	for _, w := range []int{2, 4, 8} {
		if _, _, err := RoutingLock(orig, w, 34); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
	if _, _, err := RoutingLock(orig, 3, 1); err == nil {
		t.Error("width 3 accepted")
	}
	if _, _, err := RoutingLock(orig, 0, 1); err == nil {
		t.Error("width 0 accepted")
	}
	// A tiny circuit cannot host a wide network.
	small, err := netlist.Random(netlist.RandomProfile{
		Name: "tiny", Inputs: 4, Outputs: 2, Gates: 6, Locality: 0.2,
	}, 35)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RoutingLock(small, 16, 36); err == nil {
		t.Error("16-wide network on a 6-gate circuit accepted")
	}
}

func TestRoutingLockDeterministic(t *testing.T) {
	orig := wideCirc(t, 37)
	a, _, err := RoutingLock(orig, 4, 38)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RoutingLock(orig, 4, 38)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Key {
		if a.Key[i] != b.Key[i] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestRILWrapper(t *testing.T) {
	orig := wideCirc(t, 39)
	l, res, err := RIL(orig, 1, core.Size8x8, 40)
	if err != nil {
		t.Fatal(err)
	}
	if l.Scheme != "ril-8x8" {
		t.Errorf("scheme %q", l.Scheme)
	}
	if res.KeyBits() != l.KeyBits() {
		t.Error("wrapper key mismatch")
	}
	// Self-consistency of the Locked shape: correct key restores.
	bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := netlist.Equivalent(orig, bound, 0, 8, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("RIL wrapper lost equivalence")
	}
}

func TestLUTLockCorruptsOnWrongKey(t *testing.T) {
	orig := wideCirc(t, 42)
	l, err := LUTLock(orig, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	if l.KeyBits() != 32 {
		t.Errorf("8 LUT2s should carry 32 key bits, got %d", l.KeyBits())
	}
	wrong := append([]bool(nil), l.Key...)
	for i := range wrong {
		wrong[i] = !wrong[i]
	}
	bound, err := l.Netlist.BindInputs(l.KeyPos, wrong)
	if err != nil {
		t.Fatal(err)
	}
	c, err := netlist.OutputCorruptibility(orig, bound, 16, 44)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.02 {
		t.Errorf("complemented LUT tables corrupt only %.3f of outputs", c)
	}
}
