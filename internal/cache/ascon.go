// Package cache is a content-addressed, authenticated result cache
// for sweep jobs and report-table cells. Entries are keyed by a
// canonical SHA-256 hash of everything that determines a result
// (parsed netlist canonical form, lock options, seed, attack options,
// cache schema version) and stored encrypted-at-rest with an
// ASCON-128 AEAD, so a tampered, truncated or swapped entry fails
// authentication and is transparently recomputed instead of trusted.
// The design follows garble's build-cache architecture: hash the full
// input closure, authenticate the payload, version the schema inside
// the key so format changes invalidate by construction.
package cache

import (
	"crypto/subtle"
	"encoding/binary"
	"math/bits"
)

// ASCON-128 (v1.2, the NIST LWC selection): 128-bit key, 128-bit
// nonce, 128-bit tag, 64-bit rate, 12 initialization/finalization
// rounds and 6 data rounds. The implementation below is the plain
// spec permutation over five 64-bit words; it exists so the cache has
// authenticated encryption with zero dependencies outside the
// standard library.

const (
	asconKeyLen   = 16
	asconNonceLen = 16
	asconTagLen   = 16
	ascon128IV    = 0x80400c0600000000
)

// asconState is the 320-bit permutation state.
type asconState struct {
	x0, x1, x2, x3, x4 uint64
}

// round applies one permutation round with the given round constant:
// constant addition, the 5-bit S-box applied bit-sliced across the
// words, then the linear diffusion layer.
func (s *asconState) round(c uint64) {
	s.x2 ^= c
	// Substitution layer (bit-sliced S-box).
	s.x0 ^= s.x4
	s.x4 ^= s.x3
	s.x2 ^= s.x1
	t0 := ^s.x0 & s.x1
	t1 := ^s.x1 & s.x2
	t2 := ^s.x2 & s.x3
	t3 := ^s.x3 & s.x4
	t4 := ^s.x4 & s.x0
	s.x0 ^= t1
	s.x1 ^= t2
	s.x2 ^= t3
	s.x3 ^= t4
	s.x4 ^= t0
	s.x1 ^= s.x0
	s.x0 ^= s.x4
	s.x3 ^= s.x2
	s.x2 = ^s.x2
	// Linear diffusion layer.
	s.x0 ^= bits.RotateLeft64(s.x0, -19) ^ bits.RotateLeft64(s.x0, -28)
	s.x1 ^= bits.RotateLeft64(s.x1, -61) ^ bits.RotateLeft64(s.x1, -39)
	s.x2 ^= bits.RotateLeft64(s.x2, -1) ^ bits.RotateLeft64(s.x2, -6)
	s.x3 ^= bits.RotateLeft64(s.x3, -10) ^ bits.RotateLeft64(s.x3, -17)
	s.x4 ^= bits.RotateLeft64(s.x4, -7) ^ bits.RotateLeft64(s.x4, -41)
}

// p12 is the a-round permutation (initialization and finalization).
func (s *asconState) p12() {
	for _, c := range [...]uint64{0xf0, 0xe1, 0xd2, 0xc3, 0xb4, 0xa5, 0x96, 0x87, 0x78, 0x69, 0x5a, 0x4b} {
		s.round(c)
	}
}

// p6 is the b-round permutation (associated data and message blocks).
func (s *asconState) p6() {
	for _, c := range [...]uint64{0x96, 0x87, 0x78, 0x69, 0x5a, 0x4b} {
		s.round(c)
	}
}

// loadBytes loads up to 8 bytes big-endian into the high end of a
// word, the spec's LOADBYTES.
func loadBytes(b []byte) uint64 {
	var v uint64
	for i, c := range b {
		v |= uint64(c) << (56 - 8*i)
	}
	return v
}

// storeBytes writes the high n bytes of a word, the spec's STOREBYTES.
func storeBytes(dst []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// pad is the spec's PAD: the 0x80 domain-separation byte directly
// after i message bytes.
func pad(i int) uint64 { return 0x80 << (56 - 8*i) }

// asconInit absorbs key and nonce into a fresh state.
func asconInit(key, nonce []byte) (s asconState, k0, k1 uint64) {
	k0 = binary.BigEndian.Uint64(key[0:8])
	k1 = binary.BigEndian.Uint64(key[8:16])
	s = asconState{
		x0: ascon128IV,
		x1: k0,
		x2: k1,
		x3: binary.BigEndian.Uint64(nonce[0:8]),
		x4: binary.BigEndian.Uint64(nonce[8:16]),
	}
	s.p12()
	s.x3 ^= k0
	s.x4 ^= k1
	return s, k0, k1
}

// absorbAD absorbs the associated data and applies the domain
// separation bit.
func (s *asconState) absorbAD(ad []byte) {
	if len(ad) > 0 {
		for len(ad) >= 8 {
			s.x0 ^= binary.BigEndian.Uint64(ad)
			s.p6()
			ad = ad[8:]
		}
		s.x0 ^= loadBytes(ad)
		s.x0 ^= pad(len(ad))
		s.p6()
	}
	s.x4 ^= 1
}

// finalize runs the finalization permutation and returns the tag.
func (s *asconState) finalize(k0, k1 uint64) (t0, t1 uint64) {
	s.x1 ^= k0
	s.x2 ^= k1
	s.p12()
	return s.x3 ^ k0, s.x4 ^ k1
}

// asconSeal encrypts and authenticates plaintext with the associated
// data, returning ciphertext||tag (len(plaintext)+16 bytes).
func asconSeal(key, nonce, ad, plaintext []byte) []byte {
	s, k0, k1 := asconInit(key, nonce)
	s.absorbAD(ad)

	out := make([]byte, len(plaintext)+asconTagLen)
	ct := out
	for len(plaintext) >= 8 {
		s.x0 ^= binary.BigEndian.Uint64(plaintext)
		binary.BigEndian.PutUint64(ct, s.x0)
		s.p6()
		plaintext = plaintext[8:]
		ct = ct[8:]
	}
	s.x0 ^= loadBytes(plaintext)
	storeBytes(ct, s.x0, len(plaintext))
	s.x0 ^= pad(len(plaintext))

	t0, t1 := s.finalize(k0, k1)
	binary.BigEndian.PutUint64(out[len(out)-16:], t0)
	binary.BigEndian.PutUint64(out[len(out)-8:], t1)
	return out
}

// asconOpen authenticates and decrypts ciphertext||tag produced by
// asconSeal under the same key, nonce and associated data. It returns
// (nil, false) when the tag does not verify — tampered, truncated or
// mismatched inputs all land here.
func asconOpen(key, nonce, ad, sealed []byte) ([]byte, bool) {
	if len(sealed) < asconTagLen {
		return nil, false
	}
	ct := sealed[:len(sealed)-asconTagLen]
	s, k0, k1 := asconInit(key, nonce)
	s.absorbAD(ad)

	pt := make([]byte, len(ct))
	out := pt
	for len(ct) >= 8 {
		c0 := binary.BigEndian.Uint64(ct)
		binary.BigEndian.PutUint64(out, s.x0^c0)
		s.x0 = c0
		s.p6()
		ct = ct[8:]
		out = out[8:]
	}
	c0 := loadBytes(ct)
	storeBytes(out, s.x0^c0, len(ct))
	// Replace the consumed high bytes of the rate word with the
	// ciphertext bytes, keep the untouched low bytes, then pad.
	var mask uint64
	if len(ct) > 0 {
		mask = ^uint64(0) << (64 - 8*len(ct))
	}
	s.x0 = (s.x0 &^ mask) | c0
	s.x0 ^= pad(len(ct))

	t0, t1 := s.finalize(k0, k1)
	var tag [asconTagLen]byte
	binary.BigEndian.PutUint64(tag[0:8], t0)
	binary.BigEndian.PutUint64(tag[8:16], t1)
	if subtle.ConstantTimeCompare(tag[:], sealed[len(sealed)-asconTagLen:]) != 1 {
		return nil, false
	}
	return pt, true
}
