package cache

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ToLower(s))
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestAsconKAT pins the implementation against the official ASCON-128
// v1.2 known-answer vectors (NIST LWC genkat, LWC_AEAD_KAT_128_128):
// any drift in the permutation, padding or domain separation changes
// these tags.
func TestAsconKAT(t *testing.T) {
	key := unhex(t, "000102030405060708090A0B0C0D0E0F")
	nonce := unhex(t, "000102030405060708090A0B0C0D0E0F")
	cases := []struct {
		name   string
		pt, ad string
		ct     string // ciphertext || tag
	}{
		{"count1-empty", "", "", "E355159F292911F794CB1432A0103A8A"},
		{"count2-ad00", "", "00", "944DF887CD4901614C5DEDBC42FC0DA0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pt := unhex(t, tc.pt)
			ad := unhex(t, tc.ad)
			want := unhex(t, tc.ct)
			got := asconSeal(key, nonce, ad, pt)
			if !bytes.Equal(got, want) {
				t.Fatalf("seal = %X, want %X", got, want)
			}
			back, ok := asconOpen(key, nonce, ad, got)
			if !ok {
				t.Fatalf("open rejected its own seal")
			}
			if !bytes.Equal(back, pt) {
				t.Fatalf("open = %X, want %X", back, pt)
			}
		})
	}
}

// TestAsconRoundTrip crosses the rate boundary in both plaintext and
// associated data: every (pt, ad) length combination around multiples
// of the 8-byte rate must seal and open back to the same bytes.
func TestAsconRoundTrip(t *testing.T) {
	key := unhex(t, "101112131415161718191A1B1C1D1E1F")
	nonce := unhex(t, "202122232425262728292A2B2C2D2E2F")
	lens := []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65}
	for _, np := range lens {
		for _, na := range lens {
			pt := make([]byte, np)
			ad := make([]byte, na)
			for i := range pt {
				pt[i] = byte(i * 7)
			}
			for i := range ad {
				ad[i] = byte(i * 13)
			}
			sealed := asconSeal(key, nonce, ad, pt)
			if len(sealed) != np+asconTagLen {
				t.Fatalf("pt=%d ad=%d: sealed length %d", np, na, len(sealed))
			}
			back, ok := asconOpen(key, nonce, ad, sealed)
			if !ok || !bytes.Equal(back, pt) {
				t.Fatalf("pt=%d ad=%d: roundtrip failed (ok=%v)", np, na, ok)
			}
		}
	}
}

// TestAsconRejects flips every single byte of a sealed message — and
// separately perturbs the AD, key and nonce — and requires every
// variant to fail authentication.
func TestAsconRejects(t *testing.T) {
	key := unhex(t, "000102030405060708090A0B0C0D0E0F")
	nonce := unhex(t, "0F0E0D0C0B0A09080706050403020100")
	ad := []byte("entry-key")
	pt := []byte("cached result payload, 29 bytes")
	sealed := asconSeal(key, nonce, ad, pt)

	for i := range sealed {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x40
		if _, ok := asconOpen(key, nonce, ad, tampered); ok {
			t.Fatalf("accepted seal with byte %d flipped", i)
		}
	}
	for cut := 0; cut < len(sealed); cut++ {
		if _, ok := asconOpen(key, nonce, ad, sealed[:cut]); ok {
			t.Fatalf("accepted seal truncated to %d bytes", cut)
		}
	}
	if _, ok := asconOpen(key, nonce, []byte("other-key"), sealed); ok {
		t.Fatal("accepted seal under wrong associated data")
	}
	badKey := append([]byte(nil), key...)
	badKey[0] ^= 1
	if _, ok := asconOpen(badKey, nonce, ad, sealed); ok {
		t.Fatal("accepted seal under wrong key")
	}
	badNonce := append([]byte(nil), nonce...)
	badNonce[15] ^= 1
	if _, ok := asconOpen(key, badNonce, ad, sealed); ok {
		t.Fatal("accepted seal under wrong nonce")
	}
}
