package cache

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"syscall"
	"time"
)

// On-disk layout of a cache directory:
//
//	<dir>/key            master AEAD key (16 random bytes, 0600)
//	<dir>/lock           flock file serializing GC against writers
//	<dir>/entries/ab/<64-hex-key>   one authenticated entry per key
//
// Every entry file is magic || format version || nonce || ASCON-128
// sealed payload, with the magic, version and the entry's own cache
// key bound in as associated data. Binding the key means a byte flip,
// a truncation, *and* two entries swapped wholesale between files all
// fail authentication — a swapped file decrypts fine under the master
// key, but its associated data no longer matches the name it sits
// under. Failed authentication is never an error: the entry is
// dropped, counted as an invalidation, and the caller recomputes.
//
// Writers follow the journal/checkpoint durability discipline: write
// a temp file, fsync it, rename into place, fsync the directory.
// Eviction (size-capped LRU on the entry files' modification times,
// which Get refreshes on every hit) takes an exclusive flock while
// writers rename under a shared one, so GC never observes a
// half-written entry and never races another GC.

const (
	entryMagic   = "RILC"
	entryVersion = 1
	// DefaultMaxBytes is the GC size cap when Options.MaxBytes is 0.
	DefaultMaxBytes = 1 << 30
	// tmpGracePeriod is how old an orphaned .tmp file must be before
	// GC sweeps it; younger temps may belong to an in-flight Put.
	tmpGracePeriod = 10 * time.Minute
)

// Options configures a cache directory.
type Options struct {
	// MaxBytes caps the total size of all entries; GC evicts
	// least-recently-used entries beyond it (0 = DefaultMaxBytes).
	MaxBytes int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"` // entries that failed authentication or decoding
	Puts          int64 `json:"puts"`
	PutErrors     int64 `json:"put_errors"`
	Evictions     int64 `json:"evictions"`
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%d invalidated), %d stores (%d failed), %d evicted",
		s.Hits, s.Misses, s.Invalidations, s.Puts, s.PutErrors, s.Evictions)
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a content-addressed, authenticated result store rooted at
// one directory. Safe for concurrent use by multiple goroutines and
// cooperating processes sharing the directory.
type Cache struct {
	dir      string
	maxBytes int64
	aeadKey  [asconKeyLen]byte

	hits, misses, invalidations atomic.Int64
	puts, putErrors, evictions  atomic.Int64
}

// entryWriter is the sink an entry is written through before rename;
// tests swap newEntrySink to inject crash faults mid-write.
type entryWriter interface {
	io.Writer
	Sync() error
}

// newEntrySink wraps the entry temp file; overridden in tests with a
// testutil.FaultyWriter to prove torn writes never become entries.
var newEntrySink = func(f *os.File) entryWriter { return f }

// Open opens (creating if needed) a cache directory. The master AEAD
// key is generated on first use and persists with the directory;
// deleting the directory discards both the key and every entry.
func Open(dir string, opt Options) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "entries"), 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{dir: dir, maxBytes: opt.MaxBytes}
	if c.maxBytes <= 0 {
		c.maxBytes = DefaultMaxBytes
	}
	if err := c.loadOrCreateKey(); err != nil {
		return nil, err
	}
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the counters (process-local, since
// Open; they do not aggregate across processes).
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Puts:          c.puts.Load(),
		PutErrors:     c.putErrors.Load(),
		Evictions:     c.evictions.Load(),
	}
}

// keyPath is the master-key file, lockPath the GC/writer flock file.
func (c *Cache) keyPath() string  { return filepath.Join(c.dir, "key") }
func (c *Cache) lockPath() string { return filepath.Join(c.dir, "lock") }

// entryPath maps a cache key to its entry file, sharded by the first
// hex byte to keep directories small.
func (c *Cache) entryPath(k Key) string {
	hex := k.String()
	return filepath.Join(c.dir, "entries", hex[:2], hex)
}

// loadOrCreateKey reads the master key, generating one under an
// exclusive lock on first use so concurrent opens agree on a single
// key.
func (c *Cache) loadOrCreateKey() error {
	read := func() (bool, error) {
		raw, err := os.ReadFile(c.keyPath())
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("cache: %w", err)
		}
		if len(raw) != asconKeyLen {
			return false, fmt.Errorf("cache: master key file %s has %d bytes, want %d", c.keyPath(), len(raw), asconKeyLen)
		}
		copy(c.aeadKey[:], raw)
		return true, nil
	}
	if ok, err := read(); ok || err != nil {
		return err
	}
	lock, err := c.flock(syscall.LOCK_EX)
	if err != nil {
		return err
	}
	defer func() { _ = unflock(lock) }() // key already durable or error already returned
	// Re-check under the lock: another opener may have won the race.
	if ok, err := read(); ok || err != nil {
		return err
	}
	var key [asconKeyLen]byte
	if _, err := rand.Read(key[:]); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := writeFileDurable(c.keyPath(), key[:], 0o600); err != nil {
		return err
	}
	c.aeadKey = key
	return nil
}

// flock opens the lock file and takes a flock of the given type
// (syscall.LOCK_SH or syscall.LOCK_EX), blocking until granted.
func (c *Cache) flock(how int) (*os.File, error) {
	f, err := os.OpenFile(c.lockPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), how); err != nil {
		return nil, errors.Join(fmt.Errorf("cache: flock: %w", err), f.Close())
	}
	return f, nil
}

// unflock releases a flock and closes its file.
func unflock(f *os.File) error {
	return errors.Join(syscall.Flock(int(f.Fd()), syscall.LOCK_UN), f.Close())
}

// associatedData binds an entry to its own key, so entries swapped
// between files fail authentication.
func associatedData(k Key) []byte {
	ad := make([]byte, 0, len(entryMagic)+1+len(k.sum))
	ad = append(ad, entryMagic...)
	ad = append(ad, entryVersion)
	ad = append(ad, k.sum[:]...)
	return ad
}

// Get returns the cached payload for a key. Any failure — missing
// entry, bad header, failed authentication — is a miss; authenticated
// entries additionally refresh their LRU timestamp. Get never returns
// tampered bytes and never fails the caller: a damaged entry is
// removed, counted under Invalidations, and reported as a miss so the
// caller recomputes.
func (c *Cache) Get(k Key) ([]byte, bool) {
	payload, _, ok := c.GetTimed(k)
	return payload, ok
}

// GetTimed is Get plus the wall-clock seconds the original computation
// took, as recorded by PutTimed. Consumers that report runtimes (the
// sweep runner's Result.Seconds, the report tables' warm cells) restore
// the original timing instead of reporting a 0-second cache hit.
func (c *Cache) GetTimed(k Key) ([]byte, float64, bool) {
	if !k.Valid() {
		return nil, 0, false
	}
	path := c.entryPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return nil, 0, false
	}
	plain, ok := c.decode(k, raw)
	// Every schema-2 payload is seconds prefix + caller bytes; anything
	// shorter is damage (the prefix is inside the sealed payload, so
	// this only triggers on a bug or a forged master key).
	if !ok || len(plain) < secondsPrefixLen {
		// Tampered, truncated or foreign bytes: drop the entry so the
		// recompute's Put replaces it, and report the authentication
		// failure separately from a plain miss.
		c.invalidations.Add(1)
		c.misses.Add(1)
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			c.putErrors.Add(1)
		}
		return nil, 0, false
	}
	seconds := math.Float64frombits(binary.BigEndian.Uint64(plain[:secondsPrefixLen]))
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds < 0 {
		seconds = 0
	}
	c.hits.Add(1)
	now := time.Now()
	// Best-effort LRU refresh; a read-only cache dir only weakens
	// eviction order, never correctness.
	_ = os.Chtimes(path, now, now)
	return plain[secondsPrefixLen:], seconds, true
}

// decode parses and authenticates one entry file.
func (c *Cache) decode(k Key, raw []byte) ([]byte, bool) {
	hdr := len(entryMagic) + 1 + asconNonceLen
	if len(raw) < hdr+asconTagLen {
		return nil, false
	}
	if string(raw[:len(entryMagic)]) != entryMagic || raw[len(entryMagic)] != entryVersion {
		return nil, false
	}
	nonce := raw[len(entryMagic)+1 : hdr]
	return asconOpen(c.aeadKey[:], nonce, associatedData(k), raw[hdr:])
}

// Put stores a payload under a key, replacing any existing entry. The
// write is atomic and durable (temp file, fsync, rename under a
// shared lock, directory fsync): concurrent readers and the GC only
// ever observe complete entries, and a crash mid-Put leaves at worst
// an orphaned temp file that the next GC sweeps.
func (c *Cache) Put(k Key, payload []byte) error {
	return c.PutTimed(k, payload, 0)
}

// PutTimed is Put plus the wall-clock seconds the computation that
// produced the payload took; GetTimed returns them alongside the
// payload so cache hits keep their runtime accounting. The seconds
// live inside the sealed payload, covered by the same authentication
// as the result itself.
func (c *Cache) PutTimed(k Key, payload []byte, seconds float64) error {
	err := c.put(k, payload, seconds)
	if err != nil {
		c.putErrors.Add(1)
		return err
	}
	c.puts.Add(1)
	return nil
}

// secondsPrefixLen is the size of the runtime prefix inside every
// sealed payload: one big-endian IEEE-754 float64.
const secondsPrefixLen = 8

func (c *Cache) put(k Key, payload []byte, seconds float64) error {
	if !k.Valid() {
		return fmt.Errorf("cache: Put with invalid key")
	}
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds < 0 {
		seconds = 0
	}
	plain := make([]byte, secondsPrefixLen+len(payload))
	binary.BigEndian.PutUint64(plain, math.Float64bits(seconds))
	copy(plain[secondsPrefixLen:], payload)
	payload = plain
	var nonce [asconNonceLen]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	buf := make([]byte, 0, len(entryMagic)+1+asconNonceLen+len(payload)+asconTagLen)
	buf = append(buf, entryMagic...)
	buf = append(buf, entryVersion)
	buf = append(buf, nonce[:]...)
	buf = append(buf, asconSeal(c.aeadKey[:], nonce[:], associatedData(k), payload)...)

	path := c.entryPath(k)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	sink := newEntrySink(tmp)
	if _, err := sink.Write(buf); err != nil {
		return errors.Join(fmt.Errorf("cache: %w", err), tmp.Close())
	}
	if err := sink.Sync(); err != nil {
		return errors.Join(fmt.Errorf("cache: %w", err), tmp.Close())
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	// Rename under a shared lock: many writers may land concurrently,
	// but never during an exclusive GC sweep.
	lock, err := c.flock(syscall.LOCK_SH)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return errors.Join(fmt.Errorf("cache: %w", err), unflock(lock))
	}
	return errors.Join(syncDir(dir), unflock(lock))
}

// GC enforces the size cap: while the entries exceed MaxBytes, the
// least-recently-used entries (oldest modification time — Get
// refreshes it on every hit) are evicted, under an exclusive lock so
// eviction never races writers' renames or another GC. Orphaned temp
// files from crashed writers are always swept. Returns the number of
// entries evicted.
func (c *Cache) GC() (int, error) {
	lock, err := c.flock(syscall.LOCK_EX)
	if err != nil {
		return 0, err
	}
	removed, err := c.gcLocked()
	return removed, errors.Join(err, unflock(lock))
}

type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

func (c *Cache) gcLocked() (int, error) {
	var entries []entryInfo
	var total int64
	root := filepath.Join(c.dir, "entries")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if filepath.Ext(path) == ".tmp" {
			// A crashed writer's leftover. Live writers stage their temp
			// file *before* taking the shared rename lock, so a fresh
			// temp may belong to an in-flight Put — only sweep temps old
			// enough that no live writer can still own them.
			if time.Since(info.ModTime()) > tmpGracePeriod {
				return os.Remove(path)
			}
			return nil
		}
		entries = append(entries, entryInfo{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("cache: gc: %w", err)
	}
	if total <= c.maxBytes {
		return 0, nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path // stable order for equal stamps
	})
	removed := 0
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			return removed, fmt.Errorf("cache: gc: %w", err)
		}
		total -= e.size
		removed++
	}
	c.evictions.Add(int64(removed))
	return removed, nil
}

// writeFileDurable writes a small file with the temp/fsync/rename/dir-
// fsync discipline.
func writeFileDurable(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".key-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := tmp.Chmod(perm); err != nil {
		return errors.Join(fmt.Errorf("cache: %w", err), tmp.Close())
	}
	if _, err := tmp.Write(data); err != nil {
		return errors.Join(fmt.Errorf("cache: %w", err), tmp.Close())
	}
	if err := tmp.Sync(); err != nil {
		return errors.Join(fmt.Errorf("cache: %w", err), tmp.Close())
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a preceding rename survives a crash,
// mirroring the sweep checkpoint's durability discipline. Filesystems
// that reject directory fsync degrade to the rename's own guarantees.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return errors.Join(err, d.Close())
	}
	return d.Close()
}
