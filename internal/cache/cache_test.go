package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/testutil"
)

func testKey(t *testing.T, label string) Key {
	t.Helper()
	k, err := NewKey("test").Bytes("label", []byte(label)).Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func openTest(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir)
	k := testKey(t, "a")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte(`{"status":"key found","iterations":12}`)
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Overwrite is allowed and replaces.
	if err := c.Put(k, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(k); string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Puts != 2 || s.Invalidations != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() < 0.66 || s.HitRate() > 0.67 {
		t.Fatalf("hit rate = %f", s.HitRate())
	}

	// A second Open over the same directory (fresh process, persisted
	// master key) must still authenticate the entry.
	c2 := openTest(t, dir)
	if got, ok := c2.Get(k); !ok || string(got) != "v2" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}

	// An invalid key never stores or hits.
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("zero key hit")
	}
	if err := c.Put(Key{}, []byte("x")); err == nil {
		t.Fatal("zero key Put must fail")
	}
}

// TestCacheTamperMatrix runs the issue's three tamper cases — flip one
// byte, truncate mid-record, swap two entries' files — plus a foreign
// garbage file. Every case must authenticate-fail into a logged miss,
// never a panic or stale data, and a recompute must rewrite the entry.
func TestCacheTamperMatrix(t *testing.T) {
	tamper := []struct {
		name string
		mut  func(t *testing.T, pathA, pathB string)
	}{
		{"flip-byte", func(t *testing.T, pathA, _ string) {
			raw, err := os.ReadFile(pathA)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x01
			if err := os.WriteFile(pathA, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate", func(t *testing.T, pathA, _ string) {
			raw, err := os.ReadFile(pathA)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(pathA, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate-to-zero", func(t *testing.T, pathA, _ string) {
			if err := os.WriteFile(pathA, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"swap-entries", func(t *testing.T, pathA, pathB string) {
			tmp := pathA + ".swap"
			for _, mv := range [][2]string{{pathA, tmp}, {pathB, pathA}, {tmp, pathB}} {
				if err := os.Rename(mv[0], mv[1]); err != nil {
					t.Fatal(err)
				}
			}
		}},
		{"garbage", func(t *testing.T, pathA, _ string) {
			if err := os.WriteFile(pathA, []byte("RILC\x01 not a sealed entry at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			c := openTest(t, t.TempDir())
			ka, kb := testKey(t, "a"), testKey(t, "b")
			va, vb := []byte(`{"v":"a"}`), []byte(`{"v":"b"}`)
			if err := c.Put(ka, va); err != nil {
				t.Fatal(err)
			}
			if err := c.Put(kb, vb); err != nil {
				t.Fatal(err)
			}
			tc.mut(t, c.entryPath(ka), c.entryPath(kb))

			if got, ok := c.Get(ka); ok {
				t.Fatalf("tampered entry authenticated: %q", got)
			}
			inv := c.Stats().Invalidations
			if inv == 0 {
				t.Fatal("tamper not counted as invalidation")
			}
			if _, err := os.Stat(c.entryPath(ka)); !os.IsNotExist(err) {
				t.Fatal("tampered entry not removed")
			}
			// Recompute path: the caller stores the fresh value and the
			// next lookup hits again.
			if err := c.Put(ka, va); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get(ka); !ok || !bytes.Equal(got, va) {
				t.Fatalf("recomputed Get = %q, %v", got, ok)
			}
			if tc.name == "swap-entries" {
				// B's file now holds A's old bytes — also a swap victim.
				if _, ok := c.Get(kb); ok {
					t.Fatal("swapped entry B authenticated")
				}
			}
		})
	}
}

// TestCachePutCrash injects testutil.FaultyWriter faults at every
// byte budget: a torn entry write must fail the Put, leave no entry
// visible, and never corrupt later writes through the same cache.
func TestCachePutCrash(t *testing.T) {
	c := openTest(t, t.TempDir())
	k := testKey(t, "crash")
	payload := []byte(`{"big":"` + string(bytes.Repeat([]byte("x"), 100)) + `"}`)

	entrySize := len(entryMagic) + 1 + asconNonceLen + len(payload) + asconTagLen
	defer func() { newEntrySink = func(f *os.File) entryWriter { return f } }()
	for budget := 0; budget < entrySize; budget += 13 {
		budget := budget
		newEntrySink = func(f *os.File) entryWriter { return testutil.NewFaultyWriter(f, budget) }
		if err := c.Put(k, payload); err == nil {
			t.Fatalf("budget %d: torn Put reported success", budget)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("budget %d: torn entry became visible", budget)
		}
	}
	if c.Stats().PutErrors == 0 {
		t.Fatal("torn puts not counted")
	}
	// Restore the real sink: the same cache must recover fully.
	newEntrySink = func(f *os.File) entryWriter { return f }
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(k); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-crash Get = %q, %v", got, ok)
	}
	// A failed Put removes its own temp file; orphans only appear when
	// the whole process dies mid-write. Simulate one and check GC
	// sweeps it — but only after the in-flight-writer grace period
	// (fresh temps may belong to a live Put staging its file before the
	// rename lock).
	orphan := filepath.Join(c.Dir(), "entries", "ab", ".put-orphan.tmp")
	if err := os.MkdirAll(filepath.Dir(orphan), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Fatal("GC swept a fresh temp within the grace period")
	}
	old := time.Now().Add(-2 * tmpGracePeriod)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("stale orphaned temp file survived GC")
	}
}

// TestCacheGCEvictsLRU fills the cache past a tiny cap and checks the
// least-recently-used entries go first — with "used" including Get's
// timestamp refresh.
func TestCacheGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("p"), 200)
	entryBytes := len(entryMagic) + 1 + asconNonceLen + secondsPrefixLen + len(payload) + asconTagLen
	c, err := Open(dir, Options{MaxBytes: int64(3 * entryBytes)})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = testKey(t, fmt.Sprintf("gc-%d", i))
		if err := c.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is unambiguous even on coarse
		// filesystem clocks.
		stamp := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(c.entryPath(keys[i]), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry: a hit must rescue it from eviction.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("setup Get missed")
	}
	removed, err := c.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("GC evicted %d entries, want 2", removed)
	}
	if c.Stats().Evictions != 2 {
		t.Fatalf("evictions counter = %d", c.Stats().Evictions)
	}
	for i, want := range []bool{true, false, false, true, true} {
		_, ok := c.Get(keys[i])
		if ok != want {
			t.Fatalf("after GC entry %d present=%v, want %v", i, ok, want)
		}
	}
	// Under the cap: GC is a no-op.
	if removed, err := c.GC(); err != nil || removed != 0 {
		t.Fatalf("second GC = %d, %v", removed, err)
	}
}

func TestCacheMasterKeyPersists(t *testing.T) {
	dir := t.TempDir()
	c1 := openTest(t, dir)
	c2 := openTest(t, dir)
	if c1.aeadKey != c2.aeadKey {
		t.Fatal("two opens disagree on the master key")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "key"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != asconKeyLen {
		t.Fatalf("master key file has %d bytes", len(raw))
	}
	info, err := os.Stat(filepath.Join(dir, "key"))
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Fatalf("master key mode %v, want 0600", perm)
	}
	// A corrupt master key file is a hard open error, not silent
	// re-keying (re-keying would orphan every entry without a trace).
	if err := os.WriteFile(filepath.Join(dir, "key"), []byte("short"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a corrupt master key")
	}
}

func TestCacheTimedRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "timed")
	if err := c.PutTimed(k, []byte("payload"), 12.75); err != nil {
		t.Fatal(err)
	}
	got, secs, ok := c.GetTimed(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("GetTimed = %q, %v; want payload hit", got, ok)
	}
	if secs != 12.75 {
		t.Fatalf("GetTimed seconds = %v, want 12.75", secs)
	}
	// The plain API round-trips through the same entries: Put records
	// zero seconds, Get drops them.
	if raw, ok := c.Get(k); !ok || string(raw) != "payload" {
		t.Fatalf("Get = %q, %v; want payload hit", raw, ok)
	}
	k2 := testKey(t, "untimed")
	if err := c.Put(k2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, secs, ok := c.GetTimed(k2); !ok || secs != 0 {
		t.Fatalf("GetTimed on Put entry = %v seconds, %v; want 0, hit", secs, ok)
	}
	// Nonsense timings are clamped to zero rather than poisoning
	// downstream accounting.
	k3 := testKey(t, "negative")
	if err := c.PutTimed(k3, []byte("y"), -3); err != nil {
		t.Fatal(err)
	}
	if _, secs, ok := c.GetTimed(k3); !ok || secs != 0 {
		t.Fatalf("GetTimed on negative-seconds entry = %v, %v; want 0, hit", secs, ok)
	}
}
