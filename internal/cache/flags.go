package cache

import (
	"flag"
	"fmt"
	"io"
)

// Flags is the shared command-line surface of the result cache. The
// CLIs (rilbench, satattack, locker) all speak the same dialect:
//
//	-cache-dir DIR   enable the cache rooted at DIR
//	-no-cache        bypass the cache even when -cache-dir is set
//	-cache-max N     size cap in bytes for GC eviction
type Flags struct {
	Dir      string
	Disable  bool
	MaxBytes int64
}

// Register installs the cache flags on fs (flag.CommandLine in the
// CLIs).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "cache-dir", "",
		"content-addressed result cache directory (empty = caching off)")
	fs.BoolVar(&f.Disable, "no-cache", false,
		"bypass the result cache even when -cache-dir is set")
	fs.Int64Var(&f.MaxBytes, "cache-max", DefaultMaxBytes,
		"result cache size cap in bytes (LRU eviction on GC)")
}

// Open opens the configured cache. It returns (nil, nil) when caching
// is off — callers pass the nil *Cache straight through; every
// consumer treats nil as "no cache".
func (f *Flags) Open() (*Cache, error) {
	if f.Disable || f.Dir == "" {
		return nil, nil
	}
	return Open(f.Dir, Options{MaxBytes: f.MaxBytes})
}

// Close runs end-of-process cache maintenance and reports the run's
// hit/miss/invalidation counters: GC enforces the size cap, then one
// summary line goes to w tagged with the program name. A nil cache is
// a no-op, so CLIs can call this unconditionally.
func (f *Flags) Close(c *Cache, w io.Writer, prog string) error {
	if c == nil {
		return nil
	}
	_, err := c.GC()
	fmt.Fprintf(w, "%s: cache: %s\n", prog, c.Stats())
	return err
}
