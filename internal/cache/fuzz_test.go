package cache

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzCacheKeyCanonical feeds arbitrary option sets (as JSON) through
// the canonicalizer and checks the two key-derivation invariants:
//
//   - insensitivity: re-serializing the decoded value (randomized Go
//     map iteration order, whitespace changes) and spelling zero-valued
//     members explicitly never changes the canonical form;
//   - sensitivity: flipping one non-zero member's value always does.
func FuzzCacheKeyCanonical(f *testing.F) {
	f.Add([]byte(`{"blocks":3,"size":"8x8x8","timeout":2000000000}`))
	f.Add([]byte(`{"a":1,"b":{"c":[1,2,3],"d":""},"e":false}`))
	f.Add([]byte(`{"x":1.0,"y":0,"z":null}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"nested":{"deep":{"deeper":7}}}`))
	f.Add([]byte(`{"s":"unicode snowman ☃"}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Skip()
		}
		canon, err := CanonicalJSON(v)
		if err != nil {
			// Non-canonicalizable values (e.g. NaN can't appear from
			// Unmarshal) — nothing further to check.
			t.Skip()
		}
		// Idempotence: canonical output re-canonicalizes to itself.
		var v2 any
		if err := json.Unmarshal(canon, &v2); err != nil {
			t.Fatalf("canonical form is not valid JSON: %q (%v)", canon, err)
		}
		canon2, err := CanonicalJSON(v2)
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("not idempotent: %q -> %q", canon, canon2)
		}
		// Field order / explicit defaults: adding zero members to any
		// object must not change the canonical form; Go's randomized
		// map order covers permutation on the re-decode above.
		if m, ok := v2.(map[string]any); ok {
			withDefaults := map[string]any{
				"fuzz_default_int": 0, "fuzz_default_str": "",
				"fuzz_default_bool": false, "fuzz_default_null": nil,
			}
			for k, e := range m {
				withDefaults[k] = e
			}
			canon3, err := CanonicalJSON(withDefaults)
			if err != nil {
				t.Fatalf("canonicalize with defaults: %v", err)
			}
			if !bytes.Equal(canon, canon3) {
				t.Fatalf("explicit defaults changed form: %q -> %q", canon, canon3)
			}
			// Sensitivity: changing one non-zero member must change the
			// derived key.
			for k := range m {
				mutated := map[string]any{}
				for kk, e := range m {
					mutated[kk] = e
				}
				mutated[k] = "fuzz-mutated-value-7f3a"
				mc, err := CanonicalJSON(mutated)
				if err != nil {
					t.Fatalf("canonicalize mutation: %v", err)
				}
				if bytes.Equal(mc, canon) {
					// Only legitimate if the member already held the
					// sentinel value.
					if s, isStr := m[k].(string); !isStr || s != "fuzz-mutated-value-7f3a" {
						t.Fatalf("mutating %q did not change canonical form %q", k, canon)
					}
				}
				break // one mutation per input keeps the fuzzer fast
			}
		}
		// The canonical form feeds the key hash; equal forms must give
		// equal keys and the builder must never error on valid JSON.
		k1, err := NewKey("fuzz").Options("o", v).Key()
		if err != nil {
			t.Fatalf("builder: %v", err)
		}
		k2, err := NewKey("fuzz").Options("o", v2).Key()
		if err != nil {
			t.Fatalf("builder: %v", err)
		}
		if k1 != k2 {
			t.Fatalf("equal canonical forms derived different keys")
		}
	})
}

// FuzzCacheEntryDecode throws arbitrary bytes at the entry decoder:
// it must never panic and never authenticate anything that was not
// produced by this cache's seal (a forged acceptance would let tampered
// results through).
func FuzzCacheEntryDecode(f *testing.F) {
	dir := f.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	k, err := NewKey("fuzz").Bytes("k", []byte("entry")).Key()
	if err != nil {
		f.Fatal(err)
	}
	// Seed with a genuine entry and mutations of it, plus headers.
	if err := c.Put(k, []byte(`{"v":1}`)); err != nil {
		f.Fatal(err)
	}
	genuine, ok := c.Get(k)
	if !ok {
		f.Fatal("setup entry missing")
	}
	_ = genuine
	f.Add([]byte{})
	f.Add([]byte("RILC"))
	f.Add([]byte("RILC\x01"))
	f.Add(append([]byte("RILC\x01"), make([]byte, asconNonceLen+asconTagLen)...))
	f.Add([]byte("XXXX\x01 something else entirely"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, ok := c.decode(k, raw)
		if ok {
			// The only acceptable authentications are real sealed
			// entries; a fuzzer finding one from arbitrary bytes means
			// forgery. Verify it round-trips as the stored payload.
			var v any
			if err := json.Unmarshal(payload, &v); err != nil {
				t.Fatalf("authenticated non-genuine payload %q", payload)
			}
		}
	})
}
