package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// SchemaVersion is the cache schema version. It is mixed into every
// key, so any change to the entry format, the canonicalization rules
// or the meaning of cached payloads invalidates all existing entries
// by construction — stale entries become misses, never wrong answers.
//
// Version history:
//
//	1: payload is the caller's bytes verbatim
//	2: payload carries the original computation's wall-clock seconds
//	   (8-byte prefix, see PutTimed/GetTimed) so cache hits keep their
//	   runtime accounting instead of reporting 0s
const SchemaVersion = 2

// Key is a content-addressed cache key: the canonical SHA-256 hash of
// everything that determines a cached result. The zero Key is invalid
// and never matches an entry; jobs carrying it bypass the cache.
type Key struct {
	sum   [sha256.Size]byte
	valid bool
}

// Valid reports whether the key was produced by a Builder. The zero
// Key is not valid.
func (k Key) Valid() bool { return k.valid }

// String returns the key as lowercase hex ("" for the zero Key).
func (k Key) String() string {
	if !k.valid {
		return ""
	}
	return hex.EncodeToString(k.sum[:])
}

// Builder accumulates the input closure of one cacheable computation
// into a Key. Every section is length-prefixed and labeled, so no two
// distinct input sequences collide by concatenation ambiguity, and
// the schema version and a kind label are always mixed in first.
// Errors are sticky: the first failure poisons the Builder and Key
// reports it.
type Builder struct {
	h   io.Writer
	sum func() [sha256.Size]byte
	err error
}

// NewKey starts a Builder for one kind of computation ("sat-attack",
// "table-cell", "lock", ...). Results of different kinds never share
// entries even if the rest of their inputs agree.
func NewKey(kind string) *Builder {
	h := sha256.New()
	b := &Builder{h: h, sum: func() (s [sha256.Size]byte) {
		h.Sum(s[:0])
		return s
	}}
	b.section("rilcache", []byte{SchemaVersion})
	b.section("kind", []byte(kind))
	return b
}

// section writes one length-prefixed, labeled chunk into the hash.
func (b *Builder) section(label string, payload []byte) {
	if b.err != nil {
		return
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(label)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	for _, p := range [][]byte{hdr[:], []byte(label), payload} {
		if _, err := b.h.Write(p); err != nil {
			b.err = err
			return
		}
	}
}

// Netlist mixes in the canonical form of a parsed netlist: its
// canonical .bench serialization (topological gate order, normalized
// names), which is identical for any two structurally equal parses
// regardless of source formatting.
func (b *Builder) Netlist(label string, nl *netlist.Netlist) *Builder {
	if b.err != nil {
		return b
	}
	if nl == nil {
		b.err = fmt.Errorf("cache: %s: nil netlist", label)
		return b
	}
	h := sha256.New()
	if err := nl.WriteBench(h); err != nil {
		b.err = fmt.Errorf("cache: %s: %w", label, err)
		return b
	}
	b.section("netlist:"+label, h.Sum(nil))
	return b
}

// Options mixes in an options struct (or map) in canonical JSON form:
// fields at their zero value are dropped and object keys are sorted,
// so two option sets that differ only in field order or explicitly
// spelled defaults produce the same key, while any semantic
// difference changes it.
func (b *Builder) Options(label string, v any) *Builder {
	if b.err != nil {
		return b
	}
	raw, err := CanonicalJSON(v)
	if err != nil {
		b.err = fmt.Errorf("cache: %s: %w", label, err)
		return b
	}
	b.section("options:"+label, raw)
	return b
}

// Int mixes in one integer input (a seed, a width, ...).
func (b *Builder) Int(label string, v int64) *Builder {
	b.section("int:"+label, []byte(strconv.FormatInt(v, 10)))
	return b
}

// Bytes mixes in one opaque byte input (file contents, a key file).
func (b *Builder) Bytes(label string, p []byte) *Builder {
	b.section("bytes:"+label, p)
	return b
}

// Key finalizes the builder.
func (b *Builder) Key() (Key, error) {
	if b.err != nil {
		return Key{}, b.err
	}
	return Key{sum: b.sum(), valid: true}, nil
}

// CanonicalJSON renders any JSON-marshalable value in canonical form:
// object keys sorted, insignificant whitespace removed, numbers
// normalized (1.0 == 1), and object members at their zero value
// (null, false, 0, "", empty array, empty object) dropped entirely.
// Dropping zero members is what makes keys stable across option
// evolution: an options struct that grows a new field hashes
// identically until someone sets the field, and a struct spelling a
// default explicitly hashes like one that omits it. Array elements
// are never dropped — element position is semantic.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	var sb strings.Builder
	if err := writeCanonical(&sb, tree); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// canonicalValue renders one subtree, returning the canonical text.
func canonicalValue(v any) (string, error) {
	var sb strings.Builder
	if err := writeCanonical(&sb, v); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// isCanonicalZero reports whether a canonical rendering is a JSON
// zero value whose presence carries no information in an object.
func isCanonicalZero(s string) bool {
	switch s {
	case "null", "false", "0", `""`, "[]", "{}":
		return true
	}
	return false
}

func writeCanonical(sb *strings.Builder, v any) error {
	switch t := v.(type) {
	case nil:
		sb.WriteString("null")
	case bool:
		if t {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case string:
		enc, err := json.Marshal(t)
		if err != nil {
			return err
		}
		sb.Write(enc)
	case json.Number:
		sb.WriteString(canonicalNumber(t))
	case []any:
		sb.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				sb.WriteByte(',')
			}
			if err := writeCanonical(sb, e); err != nil {
				return err
			}
		}
		sb.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(t))
		rendered := make(map[string]string, len(t))
		for k, e := range t {
			s, err := canonicalValue(e)
			if err != nil {
				return err
			}
			if isCanonicalZero(s) {
				continue
			}
			keys = append(keys, k)
			rendered[k] = s
		}
		sort.Strings(keys)
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			enc, err := json.Marshal(k)
			if err != nil {
				return err
			}
			sb.Write(enc)
			sb.WriteByte(':')
			sb.WriteString(rendered[k])
		}
		sb.WriteByte('}')
	default:
		return fmt.Errorf("cache: cannot canonicalize %T", v)
	}
	return nil
}

// canonicalNumber normalizes a JSON number: integers (including
// 1.0-style spellings of integral values) render in minimal decimal
// form, everything else in Go's shortest float form. Values too large
// for either parse fall back to the literal text.
func canonicalNumber(n json.Number) string {
	s := n.String()
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return strconv.FormatInt(i, 10)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return s
	}
	if f == float64(int64(f)) && f >= -1e15 && f <= 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
