package cache

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestCanonicalJSON(t *testing.T) {
	cases := []struct {
		name string
		in   any
		want string
	}{
		{"sorted-keys", map[string]any{"b": 2, "a": 1}, `{"a":1,"b":2}`},
		{"zero-members-dropped", map[string]any{
			"n": nil, "f": false, "z": 0, "s": "", "a": []any{}, "o": map[string]any{}, "keep": 1,
		}, `{"keep":1}`},
		{"nested-zero-object", map[string]any{"o": map[string]any{"x": 0}}, `{}`},
		{"number-normalized", map[string]any{"x": 1.0, "y": 2.5}, `{"x":1,"y":2.5}`},
		{"array-keeps-zeros", []any{0, "", false, nil}, `[0,"",false,null]`},
		{"scalar", 42, `42`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := CanonicalJSON(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Fatalf("CanonicalJSON(%v) = %s, want %s", tc.in, got, tc.want)
			}
		})
	}
}

// TestCanonicalJSONStructVsMap: an options struct with explicit
// defaults canonicalizes identically to a map that omits them — the
// property FuzzCacheKeyCanonical exercises at scale.
func TestCanonicalJSONStructVsMap(t *testing.T) {
	type opts struct {
		Blocks  int    `json:"blocks"`
		Size    string `json:"size"`
		NoLint  bool   `json:"nolint"`
		Timeout int64  `json:"timeout"`
	}
	a, err := CanonicalJSON(opts{Blocks: 3, Size: "8x8"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON(map[string]any{"size": "8x8", "blocks": 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("struct %s != map %s", a, b)
	}
}

func TestKeyBuilder(t *testing.T) {
	mk := func(kind string, blocks int, seed int64) Key {
		k, err := NewKey(kind).
			Options("opts", map[string]any{"blocks": blocks}).
			Int("seed", seed).
			Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := mk("table", 3, 1)
	if !base.Valid() || len(base.String()) != 64 {
		t.Fatalf("bad key %q", base.String())
	}
	if (Key{}).Valid() || (Key{}).String() != "" {
		t.Fatal("zero key must be invalid and render empty")
	}
	if same := mk("table", 3, 1); same != base {
		t.Fatal("identical inputs produced different keys")
	}
	if mk("other", 3, 1) == base {
		t.Fatal("kind not mixed into key")
	}
	if mk("table", 4, 1) == base {
		t.Fatal("options not mixed into key")
	}
	if mk("table", 3, 2) == base {
		t.Fatal("seed not mixed into key")
	}
}

// TestKeyNetlistCanonical: two textually different spellings of the
// same circuit hash to the same key, a structurally different circuit
// does not.
func TestKeyNetlistCanonical(t *testing.T) {
	parse := func(text string) *netlist.Netlist {
		nl, err := netlist.ParseBench("t", strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return nl
	}
	a := parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
	b := parse("# same circuit, different formatting\nINPUT(a)\n\nINPUT(b)\nOUTPUT(y)\n  y = NAND( a , b )\n")
	c := parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n")
	key := func(nl *netlist.Netlist) Key {
		k, err := NewKey("t").Netlist("circuit", nl).Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key(a) != key(b) {
		t.Fatal("formatting changed the netlist key")
	}
	if key(a) == key(c) {
		t.Fatal("different circuits share a key")
	}
	if _, err := NewKey("t").Netlist("circuit", nil).Key(); err == nil {
		t.Fatal("nil netlist must poison the builder")
	}
}

func TestSchemaVersionInKey(t *testing.T) {
	// The schema version is hashed via a labeled section; rather than
	// mutate the const, check that the very first section differs from
	// a builder that skips it (NewKey always includes it, so two
	// Builders with identical explicit sections still agree — the
	// version only changes keys when the const changes, which is the
	// point; here we just pin that kind alone doesn't collide with
	// kind+extra sections).
	a, _ := NewKey("k").Key()
	b, _ := NewKey("k").Bytes("x", nil).Key()
	if a == b {
		t.Fatal("section framing is ambiguous: empty Bytes section collided")
	}
}
