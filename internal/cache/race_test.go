package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentGetPutGC hammers one cache directory from many
// goroutines mixing Get, Put and GC — the ci.sh race stage runs this
// under -race. The invariants: no data race, no panic, and every
// successful Get returns exactly the payload some Put stored for that
// key (authenticated entries can't interleave into hybrids).
func TestConcurrentGetPutGC(t *testing.T) {
	c, err := Open(t.TempDir(), Options{MaxBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		rounds  = 40
		keys    = 6
	)
	keySet := make([]Key, keys)
	payloads := make([][]byte, keys)
	for i := range keySet {
		keySet[i] = testKey(t, fmt.Sprintf("race-%d", i))
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 64+i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % keys
				switch r % 3 {
				case 0:
					if err := c.Put(keySet[i], payloads[i]); err != nil {
						t.Errorf("worker %d: Put: %v", w, err)
						return
					}
				case 1:
					if got, ok := c.Get(keySet[i]); ok && !bytes.Equal(got, payloads[i]) {
						t.Errorf("worker %d: Get returned foreign payload %q", w, got)
						return
					}
				case 2:
					if _, err := c.GC(); err != nil {
						t.Errorf("worker %d: GC: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Settle: after a final Put each key must read back intact.
	for i := range keySet {
		if err := c.Put(keySet[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get(keySet[i]); !ok || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("key %d corrupt after concurrent load (ok=%v)", i, ok)
		}
	}
}

// TestConcurrentOpens races first-time directory initialization: every
// opener must end up with the same master key.
func TestConcurrentOpens(t *testing.T) {
	dir := t.TempDir()
	const openers = 8
	caches := make([]*Cache, openers)
	var wg sync.WaitGroup
	for i := 0; i < openers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Open(dir, Options{})
			if err != nil {
				t.Errorf("open %d: %v", i, err)
				return
			}
			caches[i] = c
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < openers; i++ {
		if caches[i].aeadKey != caches[0].aeadKey {
			t.Fatalf("opener %d derived a different master key", i)
		}
	}
}
