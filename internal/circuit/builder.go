// Package circuit synthesizes gate-level netlists from word-level
// descriptions. It provides the benchmark suite used throughout the
// evaluation: functionally real CEP cores (AES round, SHA-256
// compression, MD5 steps, a GPS C/A Gold-code generator) plus
// ISCAS-profile synthetic circuits matched to the published gate and
// I/O counts of the benchmarks the paper locks (c7552, s35932, s38584,
// b15, b20).
package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// Bus is a little-endian vector of gate IDs (bit 0 first).
type Bus []int

// Builder constructs a netlist through word-level operations. Every
// operation lowers immediately to gates, so the result is an ordinary
// gate-level netlist.
type Builder struct {
	N   *netlist.Netlist
	ctr int
}

// NewBuilder starts a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{N: netlist.New(name)}
}

func (b *Builder) fresh(prefix string) string {
	b.ctr++
	return fmt.Sprintf("%s_%d", prefix, b.ctr)
}

// Input declares a width-bit primary input bus named name[i].
func (b *Builder) Input(name string, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.N.AddInput(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Output marks every bit of the bus as a primary output.
func (b *Builder) Output(bus Bus) {
	for _, id := range bus {
		b.N.MarkOutput(id)
	}
}

// Const materializes a width-bit constant.
func (b *Builder) Const(val uint64, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		t := netlist.Const0
		if val&(1<<i) != 0 {
			t = netlist.Const1
		}
		bus[i] = b.N.AddGate(b.fresh("c"), t)
	}
	return bus
}

// Gate2 applies a 2-input gate bitwise across two equal-width buses.
func (b *Builder) gate2(t netlist.GateType, x, y Bus) Bus {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: width mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.N.AddGate(b.fresh("g"), t, x[i], y[i])
	}
	return out
}

// Xor returns x ^ y bitwise.
func (b *Builder) Xor(x, y Bus) Bus { return b.gate2(netlist.Xor, x, y) }

// And returns x & y bitwise.
func (b *Builder) And(x, y Bus) Bus { return b.gate2(netlist.And, x, y) }

// Or returns x | y bitwise.
func (b *Builder) Or(x, y Bus) Bus { return b.gate2(netlist.Or, x, y) }

// Not returns ^x bitwise.
func (b *Builder) Not(x Bus) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.N.AddGate(b.fresh("n"), netlist.Not, x[i])
	}
	return out
}

// Mux returns sel ? y : x, bitwise over equal-width buses.
func (b *Builder) Mux(sel int, x, y Bus) Bus {
	if len(x) != len(y) {
		panic("circuit: mux width mismatch")
	}
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.N.AddGate(b.fresh("m"), netlist.Mux, sel, x[i], y[i])
	}
	return out
}

// Add returns (x + y) mod 2^w via a ripple-carry adder.
func (b *Builder) Add(x, y Bus) Bus {
	if len(x) != len(y) {
		panic("circuit: add width mismatch")
	}
	out := make(Bus, len(x))
	carry := -1
	for i := range x {
		axb := b.N.AddGate(b.fresh("s"), netlist.Xor, x[i], y[i])
		if carry < 0 {
			out[i] = axb
			carry = b.N.AddGate(b.fresh("cy"), netlist.And, x[i], y[i])
			continue
		}
		out[i] = b.N.AddGate(b.fresh("s"), netlist.Xor, axb, carry)
		g := b.N.AddGate(b.fresh("cy"), netlist.And, x[i], y[i])
		p := b.N.AddGate(b.fresh("cy"), netlist.And, axb, carry)
		carry = b.N.AddGate(b.fresh("cy"), netlist.Or, g, p)
	}
	return out
}

// RotR rotates right by k bits.
func (b *Builder) RotR(x Bus, k int) Bus {
	w := len(x)
	k %= w
	out := make(Bus, w)
	for i := range out {
		out[i] = x[(i+k)%w]
	}
	return out
}

// RotL rotates left by k bits.
func (b *Builder) RotL(x Bus, k int) Bus { return b.RotR(x, len(x)-k%len(x)) }

// ShR shifts right by k bits, filling with zero.
func (b *Builder) ShR(x Bus, k int) Bus {
	w := len(x)
	out := make(Bus, w)
	var zero int = -1
	for i := range out {
		if i+k < w {
			out[i] = x[i+k]
		} else {
			if zero < 0 {
				zero = b.N.AddGate(b.fresh("z"), netlist.Const0)
			}
			out[i] = zero
		}
	}
	return out
}

// Table implements a ROM lookup out = table[in] by Shannon-expansion
// mux trees, one per output bit. table values are little-endian over
// outW bits; len(table) must be 2^len(in).
func (b *Builder) Table(in Bus, table []uint64, outW int) Bus {
	if len(table) != 1<<len(in) {
		panic(fmt.Sprintf("circuit: table size %d, want %d", len(table), 1<<len(in)))
	}
	out := make(Bus, outW)
	for bit := 0; bit < outW; bit++ {
		leaves := make([]int, len(table))
		var c0, c1 int = -1, -1
		for i, v := range table {
			if v&(1<<bit) != 0 {
				if c1 < 0 {
					c1 = b.N.AddGate(b.fresh("t1"), netlist.Const1)
				}
				leaves[i] = c1
			} else {
				if c0 < 0 {
					c0 = b.N.AddGate(b.fresh("t0"), netlist.Const0)
				}
				leaves[i] = c0
			}
		}
		// Collapse level by level on successive select bits.
		for lvl := 0; lvl < len(in); lvl++ {
			next := make([]int, len(leaves)/2)
			for i := range next {
				a, c := leaves[2*i], leaves[2*i+1]
				if a == c {
					next[i] = a
					continue
				}
				next[i] = b.N.AddGate(b.fresh("t"), netlist.Mux, in[lvl], a, c)
			}
			leaves = next
		}
		out[bit] = leaves[0]
	}
	return out
}

// Concat joins buses, first argument lowest.
func Concat(buses ...Bus) Bus {
	var out Bus
	for _, b := range buses {
		out = append(out, b...)
	}
	return out
}

// Slice returns bits [lo, hi) of the bus.
func Slice(x Bus, lo, hi int) Bus { return x[lo:hi] }

// Uint64 packs up to 64 simulated bit values into a word (helper for
// tests and oracles).
func Uint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << i
		}
	}
	return v
}

// Bits unpacks a value into w bools, little-endian.
func Bits(v uint64, w int) []bool {
	out := make([]bool, w)
	for i := range out {
		out[i] = v&(1<<i) != 0
	}
	return out
}
