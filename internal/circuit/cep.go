package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// ---------------------------------------------------------------------------
// AES

// aesSBox computes the AES S-box from first principles (GF(2^8)
// inversion modulo x^8+x^4+x^3+x+1, then the affine transform), so the
// benchmark carries no opaque constant table.
func aesSBox() [256]byte {
	mul := func(a, b byte) byte {
		var p byte
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1B
			}
			b >>= 1
		}
		return p
	}
	inv := func(a byte) byte {
		if a == 0 {
			return 0
		}
		// a^254 in GF(2^8) is the inverse.
		r := byte(1)
		base := a
		for e := 254; e > 0; e >>= 1 {
			if e&1 != 0 {
				r = mul(r, base)
			}
			base = mul(base, base)
		}
		return r
	}
	var box [256]byte
	for i := 0; i < 256; i++ {
		x := inv(byte(i))
		// Affine: b_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7} ^ c_i, c = 0x63.
		var y byte
		for bit := 0; bit < 8; bit++ {
			b := (x >> bit) & 1
			b ^= (x >> ((bit + 4) % 8)) & 1
			b ^= (x >> ((bit + 5) % 8)) & 1
			b ^= (x >> ((bit + 6) % 8)) & 1
			b ^= (x >> ((bit + 7) % 8)) & 1
			b ^= (0x63 >> bit) & 1
			y |= b << bit
		}
		box[i] = y
	}
	return box
}

// AESSBoxTable exposes the computed S-box for tests and references.
func AESSBoxTable() [256]byte { return aesSBox() }

// xtime lowers GF(2^8) doubling to gates.
func (b *Builder) xtime(x Bus) Bus {
	if len(x) != 8 {
		panic("circuit: xtime needs 8 bits")
	}
	out := make(Bus, 8)
	out[0] = x[7]
	for i := 1; i < 8; i++ {
		if i == 1 || i == 3 || i == 4 { // 0x1B has bits 0,1,3,4
			out[i] = b.N.AddGate(b.fresh("xt"), netlist.Xor, x[i-1], x[7])
		} else {
			out[i] = x[i-1]
		}
	}
	return out
}

// AESRound synthesizes one full AES round (SubBytes, ShiftRows,
// MixColumns, AddRoundKey) over cols state columns (cols=4 is real
// AES-128; smaller cols give scaled benchmarks with identical
// structure). Inputs: state (cols*32 bits), roundkey (cols*32 bits).
// Output: next state.
func AESRound(cols int) (*netlist.Netlist, error) {
	if cols < 1 || cols > 4 {
		return nil, fmt.Errorf("circuit: AESRound cols %d out of range [1,4]", cols)
	}
	b := NewBuilder(fmt.Sprintf("aes_round_%dcol", cols))
	state := b.Input("st", cols*32)
	rkey := b.Input("rk", cols*32)

	box := aesSBox()
	table := make([]uint64, 256)
	for i, v := range box {
		table[i] = uint64(v)
	}

	// State layout: byte (col, row) at bits [ (col*4+row)*8, +8 ).
	getByte := func(bus Bus, col, row int) Bus {
		off := (col*4 + row) * 8
		return bus[off : off+8]
	}

	// SubBytes.
	sub := make([][]Bus, cols)
	for c := 0; c < cols; c++ {
		sub[c] = make([]Bus, 4)
		for r := 0; r < 4; r++ {
			sub[c][r] = b.Table(getByte(state, c, r), table, 8)
		}
	}
	// ShiftRows: row r rotates left by r (mod cols).
	shifted := make([][]Bus, cols)
	for c := 0; c < cols; c++ {
		shifted[c] = make([]Bus, 4)
		for r := 0; r < 4; r++ {
			shifted[c][r] = sub[(c+r)%cols][r]
		}
	}
	// MixColumns.
	mixed := make([][]Bus, cols)
	for c := 0; c < cols; c++ {
		a := shifted[c]
		mixed[c] = make([]Bus, 4)
		for r := 0; r < 4; r++ {
			d2 := b.xtime(a[r])
			d3 := b.Xor(b.xtime(a[(r+1)%4]), a[(r+1)%4])
			t := b.Xor(d2, d3)
			t = b.Xor(t, a[(r+2)%4])
			mixed[c][r] = b.Xor(t, a[(r+3)%4])
		}
	}
	// AddRoundKey and outputs.
	for c := 0; c < cols; c++ {
		for r := 0; r < 4; r++ {
			out := b.Xor(mixed[c][r], getByte(rkey, c, r))
			b.Output(out)
		}
	}
	if err := b.N.Validate(); err != nil {
		return nil, err
	}
	return b.N, nil
}

// AESRoundRef is the software reference of AESRound over byte slices
// with the same (col,row) layout. state and rkey hold cols*4 bytes.
func AESRoundRef(state, rkey []byte, cols int) []byte {
	box := aesSBox()
	get := func(s []byte, c, r int) byte { return s[c*4+r] }
	sub := make([]byte, cols*4)
	for c := 0; c < cols; c++ {
		for r := 0; r < 4; r++ {
			sub[c*4+r] = box[get(state, c, r)]
		}
	}
	shift := make([]byte, cols*4)
	for c := 0; c < cols; c++ {
		for r := 0; r < 4; r++ {
			shift[c*4+r] = sub[((c+r)%cols)*4+r]
		}
	}
	xt := func(x byte) byte {
		v := x << 1
		if x&0x80 != 0 {
			v ^= 0x1B
		}
		return v
	}
	out := make([]byte, cols*4)
	for c := 0; c < cols; c++ {
		a := shift[c*4 : c*4+4]
		for r := 0; r < 4; r++ {
			v := xt(a[r]) ^ (xt(a[(r+1)%4]) ^ a[(r+1)%4]) ^ a[(r+2)%4] ^ a[(r+3)%4]
			out[c*4+r] = v ^ get(rkey, c, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// SHA-256

var sha256K = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// SHA256Compress synthesizes `rounds` rounds of the SHA-256 compression
// function. Inputs: 8 state words a..h (256 bits) and one message word
// per round (32*rounds bits). Output: the 8 updated state words.
func SHA256Compress(rounds int) (*netlist.Netlist, error) {
	if rounds < 1 || rounds > 64 {
		return nil, fmt.Errorf("circuit: SHA256Compress rounds %d out of range [1,64]", rounds)
	}
	b := NewBuilder(fmt.Sprintf("sha256_%dr", rounds))
	st := b.Input("st", 256)
	w := b.Input("w", 32*rounds)

	words := make([]Bus, 8)
	for i := range words {
		words[i] = st[i*32 : (i+1)*32]
	}
	a, bb, c, d, e, f, g, h := words[0], words[1], words[2], words[3], words[4], words[5], words[6], words[7]

	for r := 0; r < rounds; r++ {
		wr := w[r*32 : (r+1)*32]
		k := b.Const(uint64(sha256K[r]), 32)
		s1 := b.Xor(b.Xor(b.RotR(e, 6), b.RotR(e, 11)), b.RotR(e, 25))
		ch := b.Xor(b.And(e, f), b.And(b.Not(e), g))
		t1 := b.Add(b.Add(b.Add(b.Add(h, s1), ch), k), wr)
		s0 := b.Xor(b.Xor(b.RotR(a, 2), b.RotR(a, 13)), b.RotR(a, 22))
		maj := b.Xor(b.Xor(b.And(a, bb), b.And(a, c)), b.And(bb, c))
		t2 := b.Add(s0, maj)
		h, g, f = g, f, e
		e = b.Add(d, t1)
		d, c, bb = c, bb, a
		a = b.Add(t1, t2)
	}
	for _, bus := range []Bus{a, bb, c, d, e, f, g, h} {
		b.Output(bus)
	}
	if err := b.N.Validate(); err != nil {
		return nil, err
	}
	return b.N, nil
}

// SHA256CompressRef is the software reference for SHA256Compress.
// st has 8 words; w has `rounds` words. Returns the 8 updated words.
func SHA256CompressRef(st [8]uint32, w []uint32) [8]uint32 {
	rotr := func(x uint32, k uint) uint32 { return x>>k | x<<(32-k) }
	a, b, c, d, e, f, g, h := st[0], st[1], st[2], st[3], st[4], st[5], st[6], st[7]
	for r := range w {
		s1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := (e & f) ^ (^e & g)
		t1 := h + s1 + ch + sha256K[r] + w[r]
		s0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := s0 + maj
		h, g, f = g, f, e
		e = d + t1
		d, c, b = c, b, a
		a = t1 + t2
	}
	return [8]uint32{a, b, c, d, e, f, g, h}
}

// ---------------------------------------------------------------------------
// MD5

var md5K = [16]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
}

var md5S = [16]int{7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22}

// MD5Steps synthesizes the first `steps` (1..16) F-steps of MD5.
// Inputs: 4 state words (128 bits) and one message word per step.
// Output: the 4 updated words.
func MD5Steps(steps int) (*netlist.Netlist, error) {
	if steps < 1 || steps > 16 {
		return nil, fmt.Errorf("circuit: MD5Steps steps %d out of range [1,16]", steps)
	}
	bld := NewBuilder(fmt.Sprintf("md5_%ds", steps))
	st := bld.Input("st", 128)
	m := bld.Input("m", 32*steps)
	a, b, c, d := st[0:32], st[32:64], st[64:96], st[96:128]
	for s := 0; s < steps; s++ {
		// F = (b & c) | (~b & d)
		f := bld.Or(bld.And(b, c), bld.And(bld.Not(b), d))
		sum := bld.Add(bld.Add(bld.Add(a, f), bld.Const(uint64(md5K[s]), 32)), m[s*32:(s+1)*32])
		rot := bld.RotL(sum, md5S[s])
		newB := bld.Add(b, rot)
		a, d, c, b = d, c, b, newB
	}
	for _, bus := range []Bus{a, b, c, d} {
		bld.Output(bus)
	}
	if err := bld.N.Validate(); err != nil {
		return nil, err
	}
	return bld.N, nil
}

// MD5StepsRef is the software reference for MD5Steps.
func MD5StepsRef(st [4]uint32, m []uint32) [4]uint32 {
	rotl := func(x uint32, k int) uint32 { return x<<k | x>>(32-k) }
	a, b, c, d := st[0], st[1], st[2], st[3]
	for s := range m {
		f := (b & c) | (^b & d)
		sum := a + f + md5K[s] + m[s]
		newB := b + rotl(sum, md5S[s])
		a, d, c, b = d, c, b, newB
	}
	return [4]uint32{a, b, c, d}
}

// ---------------------------------------------------------------------------
// GPS C/A code (Gold code) generator

// gpsG2Taps gives, per PRN (1..32), the pair of G2 stages (1-based)
// whose XOR forms the satellite-specific G2 output.
var gpsG2Taps = [33][2]int{
	1: {2, 6}, 2: {3, 7}, 3: {4, 8}, 4: {5, 9}, 5: {1, 9}, 6: {2, 10},
	7: {1, 8}, 8: {2, 9}, 9: {3, 10}, 10: {2, 3}, 11: {3, 4}, 12: {5, 6},
	13: {6, 7}, 14: {7, 8}, 15: {8, 9}, 16: {9, 10}, 17: {1, 4}, 18: {2, 5},
	19: {3, 6}, 20: {4, 7}, 21: {5, 8}, 22: {6, 9}, 23: {1, 3}, 24: {4, 6},
	25: {5, 7}, 26: {6, 8}, 27: {7, 9}, 28: {8, 10}, 29: {1, 6}, 30: {2, 7},
	31: {3, 8}, 32: {4, 9},
}

// GPSCA synthesizes `chips` unrolled steps of the GPS C/A (coarse
// acquisition) Gold-code generator for the given PRN: two 10-bit LFSRs
// (G1: x^10+x^3+1, G2: x^10+x^9+x^8+x^6+x^3+x^2+1) producing one chip
// per step. Inputs: the 20 LFSR state bits. Outputs: the `chips` code
// bits followed by the 20 next-state bits.
func GPSCA(prn, chips int) (*netlist.Netlist, error) {
	if prn < 1 || prn > 32 {
		return nil, fmt.Errorf("circuit: GPS PRN %d out of range [1,32]", prn)
	}
	if chips < 1 || chips > 1023 {
		return nil, fmt.Errorf("circuit: GPS chips %d out of range [1,1023]", chips)
	}
	b := NewBuilder(fmt.Sprintf("gps_ca_prn%d_%dc", prn, chips))
	g1 := b.Input("g1", 10) // g1[i] = stage i+1
	g2 := b.Input("g2", 10)
	taps := gpsG2Taps[prn]

	var code Bus
	for step := 0; step < chips; step++ {
		g2out := b.N.AddGate(b.fresh("g2o"), netlist.Xor, g2[taps[0]-1], g2[taps[1]-1])
		chip := b.N.AddGate(b.fresh("chip"), netlist.Xor, g1[9], g2out)
		code = append(code, chip)
		// G1 feedback: stage3 ^ stage10; G2: 2,3,6,8,9,10.
		f1 := b.N.AddGate(b.fresh("f1"), netlist.Xor, g1[2], g1[9])
		f2a := b.N.AddGate(b.fresh("f2"), netlist.Xor, g2[1], g2[2])
		f2b := b.N.AddGate(b.fresh("f2"), netlist.Xor, g2[5], g2[7])
		f2c := b.N.AddGate(b.fresh("f2"), netlist.Xor, g2[8], g2[9])
		f2d := b.N.AddGate(b.fresh("f2"), netlist.Xor, f2a, f2b)
		f2 := b.N.AddGate(b.fresh("f2"), netlist.Xor, f2d, f2c)
		ng1 := make(Bus, 10)
		ng2 := make(Bus, 10)
		ng1[0], ng2[0] = f1, f2
		copy(ng1[1:], g1[:9])
		copy(ng2[1:], g2[:9])
		g1, g2 = ng1, ng2
	}
	b.Output(code)
	b.Output(g1)
	b.Output(g2)
	if err := b.N.Validate(); err != nil {
		return nil, err
	}
	return b.N, nil
}

// GPSCARef is the software reference: returns chips code bits and the
// final LFSR states, starting from the given 10-bit states (bit i =
// stage i+1).
func GPSCARef(prn, chips int, g1, g2 uint16) (code []bool, ng1, ng2 uint16) {
	taps := gpsG2Taps[prn]
	bit := func(v uint16, stage int) uint16 { return (v >> (stage - 1)) & 1 }
	for step := 0; step < chips; step++ {
		g2out := bit(g2, taps[0]) ^ bit(g2, taps[1])
		chip := bit(g1, 10) ^ g2out
		code = append(code, chip == 1)
		f1 := bit(g1, 3) ^ bit(g1, 10)
		f2 := bit(g2, 2) ^ bit(g2, 3) ^ bit(g2, 6) ^ bit(g2, 8) ^ bit(g2, 9) ^ bit(g2, 10)
		g1 = (g1<<1 | f1) & 0x3FF
		g2 = (g2<<1 | f2) & 0x3FF
	}
	return code, g1, g2
}
