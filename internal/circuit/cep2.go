package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// ---------------------------------------------------------------------------
// DES round (the CEP suite carries a triple-DES core; one Feistel round
// exercises the same structure: expansion, key mixing, S-boxes, P-box).

// desSBoxes are the eight standard DES S-boxes (FIPS 46-3), each
// indexed by the 6-bit value b5 b0 selecting the row (b5,b0) and the
// column (b4..b1).
var desSBoxes = [8][64]byte{
	{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
		0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
		4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
		15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
	{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
		3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
		0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
		13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
	{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
		13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
		13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
		1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
	{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
		13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
		10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
		3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
	{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
		14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
		4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
		11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
	{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
		10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
		9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
		4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
	{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
		13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
		1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
		6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
	{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
		1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
		7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
		2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11},
}

// desE is the 32->48 expansion (1-based bit selectors, per the
// standard; bit 1 = MSB of the half-block).
var desE = [48]int{
	32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
	8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
	16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
	24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
}

// desP is the 32-bit P permutation (1-based, output bit i comes from
// input bit desP[i]).
var desP = [32]int{
	16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
	2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
}

// desSBoxLookup evaluates S-box b on a 6-bit value where bit5..bit0
// follow the standard layout (b5 b0 = row, b4..b1 = column).
func desSBoxLookup(box int, v byte) byte {
	row := ((v >> 4) & 2) | (v & 1)
	col := (v >> 1) & 0xF
	return desSBoxes[box][row*16+col]
}

// DESRound synthesizes one DES Feistel round. Inputs: the 64-bit block
// (L||R, bit 0 = standard bit 1 of L) and the 48-bit round key.
// Outputs: the 64-bit block after the round (L' = R, R' = L ⊕ f(R,K)).
func DESRound() (*netlist.Netlist, error) {
	b := NewBuilder("des_round")
	block := b.Input("blk", 64)
	rkey := b.Input("rk", 48)
	// Standard numbering: bit 1 = MSB. We store bit i (1-based) of L at
	// block[i-1] and of R at block[32+i-1].
	l := block[0:32]
	r := block[32:64]

	// Expansion: 48 wires selected from R.
	exp := make(Bus, 48)
	for i, sel := range desE {
		exp[i] = r[sel-1]
	}
	// Key mixing.
	x := b.Xor(exp, rkey)
	// S-boxes: each consumes 6 bits, produces 4.
	var sout Bus
	for s := 0; s < 8; s++ {
		six := x[s*6 : s*6+6]
		// Table input ordering: Table() treats in[0] as the LSB of the
		// row index; standard S-box input is b1..b6 with b1 the MSB.
		// Build the 64-entry table in Table()'s indexing.
		table := make([]uint64, 64)
		for v := 0; v < 64; v++ {
			// v is the Table row: bit j of v corresponds to six[j];
			// six[0] is the first expanded bit = standard b1 (MSB).
			var std byte
			for j := 0; j < 6; j++ {
				if v&(1<<j) != 0 {
					std |= 1 << (5 - j)
				}
			}
			out := desSBoxLookup(s, std)
			// S-box output is 4 bits, MSB first in the standard; emit
			// little-endian with bit 0 = standard bit 4... keep MSB
			// first mapping: result bit j (0..3) = standard bit j+1.
			var le uint64
			for j := 0; j < 4; j++ {
				if out&(1<<(3-j)) != 0 {
					le |= 1 << j
				}
			}
			table[v] = le
		}
		sout = append(sout, b.Table(six, table, 4)...)
	}
	// P permutation: output bit i (1-based) = sout bit desP[i].
	f := make(Bus, 32)
	for i := 0; i < 32; i++ {
		f[i] = sout[desP[i]-1]
	}
	newR := b.Xor(l, f)
	b.Output(r) // L' = R
	b.Output(newR)
	if err := b.N.Validate(); err != nil {
		return nil, err
	}
	return b.N, nil
}

// DESRoundRef is the software reference: block and key bits use the
// same layout as DESRound (bit i of the bus = standard bit i+1).
func DESRoundRef(block [64]bool, rkey [48]bool) [64]bool {
	var l, r [32]bool
	copy(l[:], block[0:32])
	copy(r[:], block[32:64])
	var x [48]bool
	for i, sel := range desE {
		x[i] = r[sel-1] != rkey[i]
	}
	var sout [32]bool
	for s := 0; s < 8; s++ {
		var std byte
		for j := 0; j < 6; j++ {
			if x[s*6+j] {
				std |= 1 << (5 - j)
			}
		}
		out := desSBoxLookup(s, std)
		for j := 0; j < 4; j++ {
			sout[s*4+j] = out&(1<<(3-j)) != 0
		}
	}
	var res [64]bool
	copy(res[0:32], r[:])
	for i := 0; i < 32; i++ {
		res[32+i] = l[i] != sout[desP[i]-1]
	}
	return res
}

// ---------------------------------------------------------------------------
// FIR filter (the CEP suite's DSP representative): a fixed-coefficient
// multiply-accumulate datapath lowered to shift-and-add logic.

// FIRFilter synthesizes y = Σ coeffs[i]·x[i] mod 2^width over `taps`
// parallel sample inputs of the given bit width (combinational MAC
// array; the sequential delay line is scan-converted away, matching
// the rest of the suite).
func FIRFilter(taps, width int, coeffs []int64) (*netlist.Netlist, error) {
	if taps < 1 || width < 2 || width > 32 {
		return nil, fmt.Errorf("circuit: FIR taps=%d width=%d out of range", taps, width)
	}
	if len(coeffs) != taps {
		return nil, fmt.Errorf("circuit: FIR needs %d coefficients, got %d", taps, len(coeffs))
	}
	b := NewBuilder(fmt.Sprintf("fir_%dt_%db", taps, width))
	xs := make([]Bus, taps)
	for i := range xs {
		xs[i] = b.Input(fmt.Sprintf("x%d", i), width)
	}
	acc := b.Const(0, width)
	for i, c := range coeffs {
		acc = b.Add(acc, b.mulConst(xs[i], uint64(c)&((1<<uint(width))-1)))
	}
	b.Output(acc)
	if err := b.N.Validate(); err != nil {
		return nil, err
	}
	return b.N, nil
}

// mulConst multiplies a bus by a constant via shift-and-add.
func (b *Builder) mulConst(x Bus, c uint64) Bus {
	w := len(x)
	acc := b.Const(0, w)
	for bit := 0; bit < w; bit++ {
		if c&(1<<bit) != 0 {
			acc = b.Add(acc, b.shlFill(x, bit))
		}
	}
	return acc
}

// shlFill shifts left by k bits, filling with zeros, same width.
func (b *Builder) shlFill(x Bus, k int) Bus {
	w := len(x)
	out := make(Bus, w)
	zero := -1
	for i := 0; i < w; i++ {
		if i >= k {
			out[i] = x[i-k]
		} else {
			if zero < 0 {
				zero = b.N.AddGate(b.fresh("z"), netlist.Const0)
			}
			out[i] = zero
		}
	}
	return out
}

// FIRFilterRef is the software reference.
func FIRFilterRef(width int, coeffs []int64, samples []uint64) uint64 {
	mask := uint64(1)<<uint(width) - 1
	var acc uint64
	for i, c := range coeffs {
		acc = (acc + (uint64(c)&mask)*samples[i]) & mask
	}
	return acc
}
