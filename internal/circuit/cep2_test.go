package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestDESSBoxSpotChecks(t *testing.T) {
	// FIPS 46-3 worked example values: S1(0b011011) = 5.
	if got := desSBoxLookup(0, 0b011011); got != 5 {
		t.Errorf("S1(011011) = %d, want 5", got)
	}
	if got := desSBoxLookup(0, 0); got != 14 {
		t.Errorf("S1(000000) = %d, want 14", got)
	}
	// Each S-box row is a permutation of 0..15.
	for s := 0; s < 8; s++ {
		for row := 0; row < 4; row++ {
			seen := map[byte]bool{}
			for col := 0; col < 16; col++ {
				v := desSBoxes[s][row*16+col]
				if v > 15 || seen[v] {
					t.Fatalf("S%d row %d not a permutation", s+1, row)
				}
				seen[v] = true
			}
		}
	}
}

func TestDESRoundAgainstReference(t *testing.T) {
	nl, err := DESRound()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		var block [64]bool
		var rkey [48]bool
		for i := range block {
			block[i] = rng.Intn(2) == 1
		}
		for i := range rkey {
			rkey[i] = rng.Intn(2) == 1
		}
		in := append(append([]bool(nil), block[:]...), rkey[:]...)
		out := sim.Eval(in)
		want := DESRoundRef(block, rkey)
		for i := 0; i < 64; i++ {
			if out[i] != want[i] {
				t.Fatalf("trial %d bit %d: got %v want %v", trial, i, out[i], want[i])
			}
		}
	}
}

func TestDESRoundFeistelInvolution(t *testing.T) {
	// Applying the round twice with swapped halves and the same key
	// must recover the original block (Feistel property).
	rng := rand.New(rand.NewSource(7))
	var block [64]bool
	var rkey [48]bool
	for i := range block {
		block[i] = rng.Intn(2) == 1
	}
	for i := range rkey {
		rkey[i] = rng.Intn(2) == 1
	}
	once := DESRoundRef(block, rkey)
	// Swap halves of the output, apply again, swap again = original.
	var swapped [64]bool
	copy(swapped[0:32], once[32:64])
	copy(swapped[32:64], once[0:32])
	twice := DESRoundRef(swapped, rkey)
	var back [64]bool
	copy(back[0:32], twice[32:64])
	copy(back[32:64], twice[0:32])
	if back != block {
		t.Error("Feistel involution violated")
	}
}

func TestFIRAgainstReference(t *testing.T) {
	coeffs := []int64{3, -1, 7, 2}
	const width = 12
	nl, err := FIRFilter(len(coeffs), width, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		samples := make([]uint64, len(coeffs))
		var in []bool
		for i := range samples {
			samples[i] = uint64(rng.Intn(1 << width))
			in = append(in, Bits(samples[i], width)...)
		}
		out := sim.Eval(in)
		got := Uint64(out)
		want := FIRFilterRef(width, coeffs, samples)
		if got != want {
			t.Fatalf("trial %d: FIR = %d, want %d", trial, got, want)
		}
	}
}

func TestFIRErrors(t *testing.T) {
	if _, err := FIRFilter(0, 8, nil); err == nil {
		t.Error("0 taps accepted")
	}
	if _, err := FIRFilter(2, 8, []int64{1}); err == nil {
		t.Error("coefficient count mismatch accepted")
	}
	if _, err := FIRFilter(2, 40, []int64{1, 2}); err == nil {
		t.Error("width 40 accepted")
	}
}

func TestDESFIRLockable(t *testing.T) {
	// The new cores must host RIL-Blocks like the rest of the suite.
	des, err := DESRound()
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := des.ComputeStats()
	if stats.Gates < 500 {
		t.Errorf("DES round suspiciously small: %v", stats)
	}
	fir, err := FIRFilter(4, 8, []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fir.NumLogicGates() < 100 {
		t.Errorf("FIR suspiciously small: %d gates", fir.NumLogicGates())
	}
}
