package circuit

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestBuilderAdd(t *testing.T) {
	b := NewBuilder("add8")
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	b.Output(b.Add(x, y))
	sim, err := netlist.NewSimulator(b.N)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		xv := uint64(rng.Intn(256))
		yv := uint64(rng.Intn(256))
		in := append(Bits(xv, 8), Bits(yv, 8)...)
		out := sim.Eval(in)
		if got := Uint64(out); got != (xv+yv)&0xFF {
			t.Fatalf("%d + %d = %d, want %d", xv, yv, got, (xv+yv)&0xFF)
		}
	}
}

func TestBuilderRotShift(t *testing.T) {
	b := NewBuilder("rot")
	x := b.Input("x", 8)
	b.Output(b.RotR(x, 3))
	b.Output(b.RotL(x, 2))
	b.Output(b.ShR(x, 3))
	sim, _ := netlist.NewSimulator(b.N)
	for _, xv := range []uint64{0x01, 0x80, 0xA5, 0xFF, 0x00} {
		out := sim.Eval(Bits(xv, 8))
		rotr := Uint64(out[0:8])
		rotl := Uint64(out[8:16])
		shr := Uint64(out[16:24])
		if want := (xv>>3 | xv<<5) & 0xFF; rotr != want {
			t.Errorf("rotr3(%#x) = %#x, want %#x", xv, rotr, want)
		}
		if want := (xv<<2 | xv>>6) & 0xFF; rotl != want {
			t.Errorf("rotl2(%#x) = %#x, want %#x", xv, rotl, want)
		}
		if want := xv >> 3; shr != want {
			t.Errorf("shr3(%#x) = %#x, want %#x", xv, shr, want)
		}
	}
}

func TestBuilderMuxConstTable(t *testing.T) {
	b := NewBuilder("tbl")
	sel := b.Input("s", 1)
	x := b.Input("x", 4)
	table := []uint64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	b.Output(b.Table(x, table, 4))
	b.Output(b.Mux(sel[0], b.Const(0xA, 4), b.Const(0x5, 4)))
	sim, _ := netlist.NewSimulator(b.N)
	for xv := uint64(0); xv < 16; xv++ {
		for sv := 0; sv < 2; sv++ {
			in := append([]bool{sv == 1}, Bits(xv, 4)...)
			out := sim.Eval(in)
			if got := Uint64(out[0:4]); got != table[xv] {
				t.Fatalf("table[%d] = %d, want %d", xv, got, table[xv])
			}
			want := uint64(0xA)
			if sv == 1 {
				want = 0x5
			}
			if got := Uint64(out[4:8]); got != want {
				t.Fatalf("mux(s=%d) = %#x, want %#x", sv, got, want)
			}
		}
	}
}

func TestAESSBoxKnownValues(t *testing.T) {
	box := AESSBoxTable()
	known := map[int]byte{
		0x00: 0x63, 0x01: 0x7C, 0x53: 0xED, 0x10: 0xCA,
		0xFF: 0x16, 0xC9: 0xDD, 0xAA: 0xAC,
	}
	for in, want := range known {
		if box[in] != want {
			t.Errorf("SBox(%#02x) = %#02x, want %#02x", in, box[in], want)
		}
	}
	// S-box must be a permutation.
	seen := map[byte]bool{}
	for _, v := range box {
		if seen[v] {
			t.Fatal("S-box is not a permutation")
		}
		seen[v] = true
	}
}

func TestAESRoundAgainstReference(t *testing.T) {
	for _, cols := range []int{1, 2, 4} {
		nl, err := AESRound(cols)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSimulator(nl)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(cols)))
		trials := 20
		if cols == 4 {
			trials = 5
		}
		for trial := 0; trial < trials; trial++ {
			state := make([]byte, cols*4)
			rkey := make([]byte, cols*4)
			rng.Read(state)
			rng.Read(rkey)
			in := make([]bool, 0, cols*64)
			for _, b := range state {
				in = append(in, Bits(uint64(b), 8)...)
			}
			for _, b := range rkey {
				in = append(in, Bits(uint64(b), 8)...)
			}
			out := sim.Eval(in)
			want := AESRoundRef(state, rkey, cols)
			for i := 0; i < cols*4; i++ {
				got := byte(Uint64(out[i*8 : i*8+8]))
				if got != want[i] {
					t.Fatalf("cols=%d trial=%d byte %d: got %#02x want %#02x", cols, trial, i, got, want[i])
				}
			}
		}
	}
}

func TestSHA256AgainstReference(t *testing.T) {
	for _, rounds := range []int{1, 2, 4} {
		nl, err := SHA256Compress(rounds)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSimulator(nl)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(rounds)))
		for trial := 0; trial < 10; trial++ {
			var st [8]uint32
			for i := range st {
				st[i] = rng.Uint32()
			}
			w := make([]uint32, rounds)
			for i := range w {
				w[i] = rng.Uint32()
			}
			in := make([]bool, 0, 256+32*rounds)
			for _, v := range st {
				in = append(in, Bits(uint64(v), 32)...)
			}
			for _, v := range w {
				in = append(in, Bits(uint64(v), 32)...)
			}
			out := sim.Eval(in)
			want := SHA256CompressRef(st, w)
			for i := 0; i < 8; i++ {
				got := uint32(Uint64(out[i*32 : i*32+32]))
				if got != want[i] {
					t.Fatalf("rounds=%d trial=%d word %d: got %#08x want %#08x", rounds, trial, i, got, want[i])
				}
			}
		}
	}
}

func TestMD5AgainstReference(t *testing.T) {
	for _, steps := range []int{1, 3, 8} {
		nl, err := MD5Steps(steps)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSimulator(nl)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(steps)))
		for trial := 0; trial < 10; trial++ {
			var st [4]uint32
			for i := range st {
				st[i] = rng.Uint32()
			}
			m := make([]uint32, steps)
			for i := range m {
				m[i] = rng.Uint32()
			}
			in := make([]bool, 0, 128+32*steps)
			for _, v := range st {
				in = append(in, Bits(uint64(v), 32)...)
			}
			for _, v := range m {
				in = append(in, Bits(uint64(v), 32)...)
			}
			out := sim.Eval(in)
			want := MD5StepsRef(st, m)
			for i := 0; i < 4; i++ {
				got := uint32(Uint64(out[i*32 : i*32+32]))
				if got != want[i] {
					t.Fatalf("steps=%d trial=%d word %d: got %#08x want %#08x", steps, trial, i, got, want[i])
				}
			}
		}
	}
}

func TestGPSCAAgainstReference(t *testing.T) {
	for _, prn := range []int{1, 7, 32} {
		const chips = 16
		nl, err := GPSCA(prn, chips)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSimulator(nl)
		if err != nil {
			t.Fatal(err)
		}
		// All-ones initial state is the standard C/A epoch.
		g1, g2 := uint16(0x3FF), uint16(0x3FF)
		in := append(Bits(uint64(g1), 10), Bits(uint64(g2), 10)...)
		out := sim.Eval(in)
		code, ng1, ng2 := GPSCARef(prn, chips, g1, g2)
		for i, want := range code {
			if out[i] != want {
				t.Fatalf("prn=%d chip %d = %v, want %v", prn, i, out[i], want)
			}
		}
		if got := uint16(Uint64(out[chips : chips+10])); got != ng1 {
			t.Errorf("prn=%d g1 next state %#x, want %#x", prn, got, ng1)
		}
		if got := uint16(Uint64(out[chips+10 : chips+20])); got != ng2 {
			t.Errorf("prn=%d g2 next state %#x, want %#x", prn, got, ng2)
		}
	}
}

func TestGPSCAFirstChipsPRN1(t *testing.T) {
	// The first 10 chips of PRN 1 from the all-ones epoch are the
	// well-known octal 1440 pattern: 1100100000.
	code, _, _ := GPSCARef(1, 10, 0x3FF, 0x3FF)
	want := []bool{true, true, false, false, true, false, false, false, false, false}
	for i := range want {
		if code[i] != want[i] {
			t.Fatalf("PRN1 chip %d = %v, want %v (sequence %v)", i, code[i], want[i], code)
		}
	}
}

func TestISCASProfiles(t *testing.T) {
	for _, p := range ISCASProfiles() {
		nl, err := p.Synthesize(0.05)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", p.Name, err)
		}
		stats, err := nl.ComputeStats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Gates < 10 {
			t.Errorf("%s@0.05 suspiciously small: %v", p.Name, stats)
		}
	}
	if _, ok := ProfileByName("c7552"); !ok {
		t.Error("c7552 profile missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestC7552FullScaleMatchesPublishedCounts(t *testing.T) {
	p, _ := ProfileByName("c7552")
	nl, err := p.Synthesize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Inputs) != 207 || len(nl.Outputs) != 108 {
		t.Errorf("c7552 IO = %d/%d, want 207/108", len(nl.Inputs), len(nl.Outputs))
	}
	got := nl.NumLogicGates()
	if got < 3512*8/10 || got > 3512*11/10 {
		t.Errorf("c7552 gate count %d not within 20%% of 3512", got)
	}
}

func TestCEPSuiteSmall(t *testing.T) {
	suite, err := CEPSuite("small")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"AES", "SHA-256", "MD5", "GPS", "DES", "FIR"} {
		nl, ok := suite[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := CEPSuite("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestBenchExportOfCEP(t *testing.T) {
	// The synthesized cores must survive a .bench round trip.
	nl, err := MD5Steps(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := netlist.ParseBench("md5", &buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, cex, err := netlist.Equivalent(nl, back, 0, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("bench round trip changed MD5 core, cex=%v", cex)
	}
}
