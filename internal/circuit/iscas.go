package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// Profile describes an ISCAS/ITC-style benchmark target. The published
// I/O and gate counts come from the standard benchmark documentation;
// sequential circuits (s*, b*) are listed post scan conversion (flip-
// flops contribute a pseudo input and a pseudo output each).
type Profile struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int
	Seed    int64
}

// ISCASProfiles returns the benchmark suite the paper locks, with the
// documented circuit sizes.
func ISCASProfiles() []Profile {
	return []Profile{
		// ISCAS-85 c432: 36 PI, 7 PO, 160 gates (priority interrupt
		// controller) — the small end of the paper's suite, used by the
		// oracle query-count regression tests.
		{Name: "c432", Inputs: 36, Outputs: 7, Gates: 160, Seed: 432},
		// ISCAS-85 c7552: 207 PI, 108 PO, 3512 gates.
		{Name: "c7552", Inputs: 207, Outputs: 108, Gates: 3512, Seed: 7552},
		// ISCAS-89 s35932: 35 PI + 1728 DFF, 320 PO; ~16065 gates.
		{Name: "s35932", Inputs: 1763, Outputs: 2048, Gates: 16065, Seed: 35932},
		// ISCAS-89 s38584: 38 PI + 1426 DFF, 304 PO; ~19253 gates.
		{Name: "s38584", Inputs: 1464, Outputs: 1730, Gates: 19253, Seed: 38584},
		// ITC-99 b15: 36 PI + 449 DFF, 70 PO; ~8900 gates.
		{Name: "b15", Inputs: 485, Outputs: 519, Gates: 8900, Seed: 15},
		// ITC-99 b20: 32 PI + 490 DFF, 22 PO; ~20200 gates.
		{Name: "b20", Inputs: 522, Outputs: 512, Gates: 20200, Seed: 20},
	}
}

// ProfileByName looks up a profile from ISCASProfiles.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range ISCASProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Synthesize generates the profile's circuit deterministically. scale
// in (0,1] shrinks the circuit proportionally (inputs/outputs/gates)
// for fast tests; 1.0 reproduces the documented size.
func (p Profile) Synthesize(scale float64) (*netlist.Netlist, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("circuit: scale %v out of (0,1]", scale)
	}
	shrink := func(v int) int {
		s := int(float64(v) * scale)
		if s < 2 {
			s = 2
		}
		return s
	}
	name := p.Name
	if scale != 1.0 {
		name = fmt.Sprintf("%s@%.2f", p.Name, scale)
	}
	rp := netlist.RandomProfile{
		Name:     name,
		Inputs:   shrink(p.Inputs),
		Outputs:  shrink(p.Outputs),
		Gates:    shrink(p.Gates),
		Locality: 0.85,
		MaxFanin: 4,
	}
	if rp.Gates < rp.Outputs {
		rp.Gates = rp.Outputs * 2
	}
	// Small profiles (c432) at aggressive scales would otherwise shrink
	// into degenerate circuits.
	if rp.Gates < 16 {
		rp.Gates = 16
	}
	return netlist.Random(rp, p.Seed)
}

// CEPSuite returns the CEP benchmark circuits at a given scale class.
// scale "full" builds the full-width cores (AES 4 columns, SHA-256 8
// rounds, MD5 8 steps, GPS 64 chips, DES round, 8-tap FIR); "small"
// builds reduced cores for fast tests (AES 1 column, SHA-256 1 round,
// MD5 1 step, GPS 8 chips, DES round, 4-tap FIR).
func CEPSuite(scale string) (map[string]*netlist.Netlist, error) {
	type cfg struct {
		aesCols, shaRounds, md5Steps, gpsChips int
		firTaps, firWidth                      int
	}
	var c cfg
	switch scale {
	case "full":
		c = cfg{4, 8, 8, 64, 8, 16}
	case "small":
		c = cfg{1, 1, 1, 8, 4, 8}
	default:
		return nil, fmt.Errorf("circuit: unknown CEP scale %q", scale)
	}
	out := make(map[string]*netlist.Netlist, 6)
	aes, err := AESRound(c.aesCols)
	if err != nil {
		return nil, err
	}
	out["AES"] = aes
	sha, err := SHA256Compress(c.shaRounds)
	if err != nil {
		return nil, err
	}
	out["SHA-256"] = sha
	md5n, err := MD5Steps(c.md5Steps)
	if err != nil {
		return nil, err
	}
	out["MD5"] = md5n
	gps, err := GPSCA(1, c.gpsChips)
	if err != nil {
		return nil, err
	}
	out["GPS"] = gps
	des, err := DESRound()
	if err != nil {
		return nil, err
	}
	out["DES"] = des
	coeffs := make([]int64, c.firTaps)
	for i := range coeffs {
		coeffs[i] = int64(2*i + 1) // odd low-pass-ish taps
	}
	fir, err := FIRFilter(c.firTaps, c.firWidth, coeffs)
	if err != nil {
		return nil, err
	}
	out["FIR"] = fir
	return out, nil
}
