package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// BVAStats reports the effect of a bounded-variable-addition pass.
type BVAStats struct {
	Rounds        int
	VarsAdded     int
	ClausesBefore int
	ClausesAfter  int
}

func (s BVAStats) String() string {
	return fmt.Sprintf("bva: %d rounds, +%d vars, clauses %d -> %d",
		s.Rounds, s.VarsAdded, s.ClausesBefore, s.ClausesAfter)
}

// BVA performs pairwise bounded variable addition, the CNF-reduction
// preprocessing the paper applies before attacking routing-obfuscated
// circuits (§IV-B). For any pair of literals (a, b) whose clause sets
// share k ≥ minMatches common "rest" clauses R_i, the 2k clauses
// {a∨R_i} ∪ {b∨R_i} are replaced by k+2 clauses {x∨R_i} ∪ {¬x∨a, ¬x∨b}
// over a fresh variable x. The transformation preserves equivalence
// over the original variables. Rounds repeat until no profitable pair
// remains or maxRounds is reached.
func BVA(f *Formula, minMatches, maxRounds int) BVAStats {
	if minMatches < 3 {
		minMatches = 3 // below 3 the rewrite does not shrink the formula
	}
	stats := BVAStats{ClausesBefore: len(f.Clauses)}
	for round := 0; round < maxRounds; round++ {
		if !bvaRound(f, minMatches) {
			break
		}
		stats.Rounds++
		stats.VarsAdded++
	}
	stats.ClausesAfter = len(f.Clauses)
	return stats
}

// restKey canonicalizes a clause-minus-one-literal for hashing.
func restKey(c []Lit, skip int) string {
	rest := make([]int, 0, len(c)-1)
	for i, l := range c {
		if i == skip {
			continue
		}
		rest = append(rest, int(l))
	}
	sort.Ints(rest)
	var sb strings.Builder
	for _, v := range rest {
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}

func bvaRound(f *Formula, minMatches int) bool {
	// occurrence: literal -> map[restKey]clauseIndex
	occ := make(map[Lit]map[string]int)
	for ci, c := range f.Clauses {
		if len(c) < 2 {
			continue
		}
		for i, l := range c {
			m := occ[l]
			if m == nil {
				m = make(map[string]int)
				occ[l] = m
			}
			m[restKey(c, i)] = ci
		}
	}
	// Deterministic literal order.
	lits := make([]Lit, 0, len(occ))
	for l := range occ {
		lits = append(lits, l)
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })

	bestGain := 0
	var bestA, bestB Lit
	var bestRests []string
	for i := 0; i < len(lits); i++ {
		a := lits[i]
		ra := occ[a]
		if len(ra) < minMatches {
			continue
		}
		for j := i + 1; j < len(lits); j++ {
			b := lits[j]
			if a.Var() == b.Var() {
				continue
			}
			rb := occ[b]
			if len(rb) < minMatches {
				continue
			}
			var common []string
			for k := range ra {
				if _, ok := rb[k]; ok {
					common = append(common, k)
				}
			}
			if len(common) < minMatches {
				continue
			}
			gain := 2*len(common) - (len(common) + 2) // clauses removed - added
			if gain > bestGain {
				bestGain = gain
				bestA, bestB = a, b
				sort.Strings(common)
				bestRests = common
			}
		}
	}
	if bestGain <= 0 {
		return false
	}

	// Apply: delete matched clauses, add replacements.
	x := f.NewVar()
	del := make(map[int]bool)
	ra, rb := occ[bestA], occ[bestB]
	for _, k := range bestRests {
		ca := f.Clauses[ra[k]]
		del[ra[k]] = true
		del[rb[k]] = true
		// Build x ∨ rest from the clause containing bestA.
		nc := make([]Lit, 0, len(ca))
		nc = append(nc, MkLit(x, false))
		for _, l := range ca {
			if l != bestA {
				nc = append(nc, l)
			}
		}
		f.Clauses = append(f.Clauses, nc)
	}
	f.Clauses = append(f.Clauses, []Lit{MkLit(x, true), bestA})
	f.Clauses = append(f.Clauses, []Lit{MkLit(x, true), bestB})

	kept := f.Clauses[:0]
	for ci, c := range f.Clauses {
		if !del[ci] {
			kept = append(kept, c)
		}
	}
	f.Clauses = kept
	return true
}
