// Package cnf provides conjunctive-normal-form formulas, DIMACS I/O,
// and Tseitin encoding of gate-level netlists. It is the bridge between
// the netlist world and the CDCL solver in internal/sat.
package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: variable v with positive polarity encodes as 2v,
// negative polarity as 2v+1 (MiniSat convention).
type Lit int32

// MkLit builds a literal from a variable and a sign (neg=true for ¬v).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Dimacs returns the literal in DIMACS convention (±(v+1)).
func (l Lit) Dimacs() int {
	d := int(l.Var()) + 1
	if l.Neg() {
		return -d
	}
	return d
}

// FromDimacs converts a DIMACS literal (nonzero ±v) to a Lit.
func FromDimacs(d int) Lit {
	if d > 0 {
		return MkLit(Var(d-1), false)
	}
	return MkLit(Var(-d-1), true)
}

func (l Lit) String() string { return strconv.Itoa(l.Dimacs()) }

// Formula is a CNF formula: a clause list over NumVars variables.
type Formula struct {
	NumVars int
	Clauses [][]Lit
}

// NewFormula returns an empty formula.
func NewFormula() *Formula { return &Formula{} }

// NewVar allocates a fresh variable.
func (f *Formula) NewVar() Var {
	v := Var(f.NumVars)
	f.NumVars++
	return v
}

// AddClause appends a clause. Literals referencing unseen variables
// grow the variable count. The return value is always true — a bare
// formula cannot detect unsatisfiability — and exists so *Formula
// satisfies ClauseSink alongside the CDCL solver.
func (f *Formula) AddClause(lits ...Lit) bool {
	for _, l := range lits {
		if int(l.Var()) >= f.NumVars {
			f.NumVars = int(l.Var()) + 1
		}
	}
	f.Clauses = append(f.Clauses, append([]Lit(nil), lits...))
	return true
}

// NumClauses returns the clause count.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// ClauseToVarRatio returns |clauses| / |vars|, the hardness heuristic
// the paper discusses (routing obfuscation aims for ratios in 3..6).
func (f *Formula) ClauseToVarRatio() float64 {
	if f.NumVars == 0 {
		return 0
	}
	return float64(len(f.Clauses)) / float64(f.NumVars)
}

// Eval evaluates the formula under a complete assignment.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			v := assign[l.Var()]
			if v != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// WriteDimacs emits the formula in DIMACS cnf format.
func (f *Formula) WriteDimacs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l.Dimacs())
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}

// ParseDimacs reads a DIMACS cnf file.
func ParseDimacs(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	f := NewFormula()
	declared := -1
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			f.NumVars = nv
			declared = nc
			continue
		}
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q", tok)
			}
			if d == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			l := FromDimacs(d)
			if int(l.Var()) >= f.NumVars {
				f.NumVars = int(l.Var()) + 1
			}
			cur = append(cur, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if declared >= 0 && declared != len(f.Clauses) {
		return nil, fmt.Errorf("cnf: header declared %d clauses, file has %d", declared, len(f.Clauses))
	}
	return f, nil
}
