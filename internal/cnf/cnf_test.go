package cnf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

func TestLitEncoding(t *testing.T) {
	v := Var(5)
	p := MkLit(v, false)
	n := MkLit(v, true)
	if p.Var() != v || n.Var() != v {
		t.Error("Var() wrong")
	}
	if p.Neg() || !n.Neg() {
		t.Error("Neg() wrong")
	}
	if p.Not() != n || n.Not() != p {
		t.Error("Not() wrong")
	}
	if p.Dimacs() != 6 || n.Dimacs() != -6 {
		t.Errorf("Dimacs = %d/%d, want 6/-6", p.Dimacs(), n.Dimacs())
	}
	if FromDimacs(6) != p || FromDimacs(-6) != n {
		t.Error("FromDimacs wrong")
	}
}

func TestQuickDimacsRoundTrip(t *testing.T) {
	f := func(raw int16, neg bool) bool {
		v := Var(int32(raw&0x7FFF) % 1000)
		l := MkLit(v, neg)
		return FromDimacs(l.Dimacs()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormulaEval(t *testing.T) {
	f := NewFormula()
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	f.AddClause(MkLit(a, true), MkLit(b, true))   // ¬a ∨ ¬b
	if !f.Eval([]bool{true, false}) || !f.Eval([]bool{false, true}) {
		t.Error("XOR-ish formula should accept (1,0) and (0,1)")
	}
	if f.Eval([]bool{true, true}) || f.Eval([]bool{false, false}) {
		t.Error("XOR-ish formula should reject (1,1) and (0,0)")
	}
}

func TestDimacsIO(t *testing.T) {
	f := NewFormula()
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.AddClause(MkLit(a, false), MkLit(b, true))
	f.AddClause(MkLit(c, false))
	var buf bytes.Buffer
	if err := f.WriteDimacs(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDimacs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != 3 || len(back.Clauses) != 2 {
		t.Fatalf("round trip geometry %d vars %d clauses", back.NumVars, len(back.Clauses))
	}
	if back.Clauses[0][0] != MkLit(a, false) || back.Clauses[0][1] != MkLit(b, true) {
		t.Error("clause literals changed in round trip")
	}
}

func TestParseDimacsErrors(t *testing.T) {
	bad := []string{
		"p cnf x 2\n1 0\n2 0\n",
		"p cnf 2 5\n1 0\n", // wrong clause count
		"p dnf 2 1\n1 0\n",
		"1 z 0\n",
	}
	for _, src := range bad {
		if _, err := ParseDimacs(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDimacs accepted %q", src)
		}
	}
}

// enumerate counts satisfying assignments of f over all NumVars vars.
func enumerate(f *Formula) int {
	n := f.NumVars
	count := 0
	assign := make([]bool, n)
	for m := 0; m < 1<<n; m++ {
		for i := 0; i < n; i++ {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			count++
		}
	}
	return count
}

// TestTseitinModelCount verifies the defining property of the Tseitin
// transform: the encoded formula has exactly one satisfying assignment
// per primary-input assignment (all internal variables are functionally
// determined).
func TestTseitinModelCount(t *testing.T) {
	builds := map[string]func() *netlist.Netlist{
		"and3": func() *netlist.Netlist {
			n := netlist.New("and3")
			a, b, c := n.AddInput("a"), n.AddInput("b"), n.AddInput("c")
			g := n.AddGate("g", netlist.And, a, b, c)
			n.MarkOutput(g)
			return n
		},
		"xor-nor": func() *netlist.Netlist {
			n := netlist.New("xn")
			a, b := n.AddInput("a"), n.AddInput("b")
			x := n.AddGate("x", netlist.Xor, a, b)
			y := n.AddGate("y", netlist.Nor, x, a)
			n.MarkOutput(y)
			return n
		},
		"mux": func() *netlist.Netlist {
			n := netlist.New("m")
			s, a, b := n.AddInput("s"), n.AddInput("a"), n.AddInput("b")
			m := n.AddGate("m", netlist.Mux, s, a, b)
			n.MarkOutput(m)
			return n
		},
		"notbuf": func() *netlist.Netlist {
			n := netlist.New("nb")
			a := n.AddInput("a")
			x := n.AddGate("x", netlist.Not, a)
			y := n.AddGate("y", netlist.Buf, x)
			n.MarkOutput(y)
			return n
		},
		"xnor3": func() *netlist.Netlist {
			n := netlist.New("x3")
			a, b, c := n.AddInput("a"), n.AddInput("b"), n.AddInput("c")
			g := n.AddGate("g", netlist.Xnor, a, b, c)
			n.MarkOutput(g)
			return n
		},
	}
	for name, build := range builds {
		nl := build()
		e := NewEncoder()
		gv, err := e.Encode(nl, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.F.NumVars > 16 {
			t.Fatalf("%s: too many vars (%d) for exhaustive check", name, e.F.NumVars)
		}
		want := 1 << len(nl.Inputs)
		if got := enumerate(e.F); got != want {
			t.Errorf("%s: %d models, want %d", name, got, want)
		}
		_ = gv
	}
}

// TestTseitinFunctional checks that forcing inputs and the expected
// output leaves the formula satisfiable, and forcing the wrong output
// makes it unsatisfiable — for every input pattern of a two-gate
// circuit.
func TestTseitinFunctional(t *testing.T) {
	nl := netlist.New("f")
	a, b := nl.AddInput("a"), nl.AddInput("b")
	x := nl.AddGate("x", netlist.Nand, a, b)
	y := nl.AddGate("y", netlist.Xor, x, a)
	nl.MarkOutput(y)
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		av, bv := p&1 != 0, p&2 != 0
		want := sim.Eval([]bool{av, bv})[0]
		for _, claim := range []bool{false, true} {
			e := NewEncoder()
			gv, err := e.Encode(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			e.AssertLit(MkLit(gv.Inputs[0], !av))
			e.AssertLit(MkLit(gv.Inputs[1], !bv))
			e.AssertLit(MkLit(gv.Outputs[0], !claim))
			satisfiable := enumerate(e.F) > 0
			if claim == want && !satisfiable {
				t.Errorf("pattern %d: correct output %v unsatisfiable", p, claim)
			}
			if claim != want && satisfiable {
				t.Errorf("pattern %d: wrong output %v satisfiable", p, claim)
			}
		}
	}
	_ = x
}

func TestSharedInputEncoding(t *testing.T) {
	nl := netlist.New("s")
	a := nl.AddInput("a")
	g := nl.AddGate("g", netlist.Not, a)
	nl.MarkOutput(g)

	e := NewEncoder()
	gv1, err := e.Encode(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	gv2, err := e.Encode(nl, map[int]Var{0: gv1.Inputs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if gv1.Inputs[0] != gv2.Inputs[0] {
		t.Fatal("shared input not shared")
	}
	// Outputs of the two copies must be equal in every model: assert
	// they differ and expect UNSAT.
	e.F.AddClause(MkLit(gv1.Outputs[0], false), MkLit(gv2.Outputs[0], false))
	e.F.AddClause(MkLit(gv1.Outputs[0], true), MkLit(gv2.Outputs[0], true))
	if enumerate(e.F) != 0 {
		t.Error("two copies sharing inputs produced different outputs")
	}
}

func TestExactlyOne(t *testing.T) {
	e := NewEncoder()
	var lits []Lit
	for i := 0; i < 4; i++ {
		lits = append(lits, MkLit(e.F.NewVar(), false))
	}
	e.ExactlyOne(lits)
	if got := enumerate(e.F); got != 4 {
		t.Errorf("ExactlyOne over 4 vars has %d models, want 4", got)
	}
}

func TestClauseToVarRatio(t *testing.T) {
	f := NewFormula()
	a := f.NewVar()
	f.AddClause(MkLit(a, false))
	f.AddClause(MkLit(a, false))
	f.AddClause(MkLit(a, true))
	if r := f.ClauseToVarRatio(); r != 3 {
		t.Errorf("ratio = %v, want 3", r)
	}
}

func TestBVAReducesAndPreservesModels(t *testing.T) {
	// Build a formula with obvious BVA structure:
	// (a ∨ R_i) ∧ (b ∨ R_i) for 4 distinct rests R_i plus noise.
	f := NewFormula()
	a, b := f.NewVar(), f.NewVar()
	var rests []Lit
	for i := 0; i < 4; i++ {
		rests = append(rests, MkLit(f.NewVar(), false))
	}
	for _, r := range rests {
		f.AddClause(MkLit(a, false), r)
		f.AddClause(MkLit(b, false), r)
	}
	f.AddClause(MkLit(a, false), MkLit(b, false)) // noise

	before := enumerate(f)
	nvBefore := f.NumVars
	clausesBefore := len(f.Clauses)

	stats := BVA(f, 3, 10)
	if stats.VarsAdded == 0 {
		t.Fatal("BVA found no opportunity in a textbook instance")
	}
	if len(f.Clauses) >= clausesBefore {
		t.Errorf("BVA did not shrink: %d -> %d", clausesBefore, len(f.Clauses))
	}

	// Model count over the ORIGINAL variables must be preserved:
	// project models of the new formula onto the first nvBefore vars.
	proj := map[int]bool{}
	n := f.NumVars
	assign := make([]bool, n)
	for m := 0; m < 1<<n; m++ {
		for i := 0; i < n; i++ {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			key := m & (1<<nvBefore - 1)
			proj[key] = true
		}
	}
	if len(proj) != before {
		t.Errorf("BVA changed solution set: %d original models, %d projected", before, len(proj))
	}
}

func TestBVANoOpportunity(t *testing.T) {
	f := NewFormula()
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(MkLit(a, false), MkLit(b, false))
	stats := BVA(f, 3, 10)
	if stats.VarsAdded != 0 || len(f.Clauses) != 1 {
		t.Errorf("BVA altered a formula with no structure: %+v", stats)
	}
}
