package cnf

import (
	"repro/internal/netlist"
)

// ClauseSink is the incremental target a Template stamps clauses
// into. Both *Formula and the CDCL solver (and its portfolio) satisfy
// it; AddClause reports false when the sink has derived a top-level
// contradiction (always true for a bare Formula).
type ClauseSink interface {
	NewVar() Var
	AddClause(lits ...Lit) bool
}

// Template is a netlist compiled to CNF once, ready to be stamped
// into a solver many times. The SAT attack's DIP loop adds two fresh
// constrained circuit copies per iteration; without a template each
// copy re-runs topological ordering and gate-by-gate Tseitin encoding
// of the whole netlist, which PR-4-scale profiling shows is pure
// re-computation — the clauses are identical up to variable renaming.
// Compile captures the encoder's exact variable-allocation and clause
// order, so a Stamp produces the same variable numbering and clause
// stream the Encoder would, bit for bit: solver behaviour (and
// therefore journal replay) is unchanged, only the per-iteration
// encoding cost drops to a renamed copy.
type Template struct {
	f         *Formula // compiled image; variables are slot ids 0..NumVars-1
	inputs    []Var    // input position -> slot
	outputs   []Var    // output position -> slot
	gateSlots []Var    // gate id -> slot
	inputSlot []int    // slot -> input position, or -1 for internal slots
}

// CompileTemplate encodes the netlist once and returns the reusable
// template. The error cases are the Encoder's (combinational cycles,
// unsupported gate types).
func CompileTemplate(n *netlist.Netlist) (*Template, error) {
	enc := NewEncoder()
	gv, err := enc.Encode(n, nil)
	if err != nil {
		return nil, err
	}
	t := &Template{
		f:         enc.F,
		inputs:    gv.Inputs,
		outputs:   gv.Outputs,
		gateSlots: gv.Vars,
		inputSlot: make([]int, enc.F.NumVars),
	}
	for i := range t.inputSlot {
		t.inputSlot[i] = -1
	}
	for pos, slot := range gv.Inputs {
		t.inputSlot[slot] = pos
	}
	return t, nil
}

// NumVars returns the number of template slots (fresh variables one
// unshared stamp allocates).
func (t *Template) NumVars() int { return t.f.NumVars }

// NumClauses returns the clause count of one stamped copy.
func (t *Template) NumClauses() int { return t.f.NumClauses() }

// Stamp adds one copy of the compiled netlist to the sink. As with
// Encoder.Encode, shared maps an input position to an existing
// variable reused for that input; every other slot gets a fresh sink
// variable, allocated in compile order so the resulting variable
// numbering and clause stream match what the Encoder would have
// produced. ok is false when the sink reported a top-level
// contradiction mid-stamp (the returned GateVars is then incomplete).
func (t *Template) Stamp(dst ClauseSink, shared map[int]Var) (gv *GateVars, ok bool) {
	vmap := make([]Var, t.f.NumVars)
	for slot := 0; slot < t.f.NumVars; slot++ {
		if p := t.inputSlot[slot]; p >= 0 {
			if v, isShared := shared[p]; isShared {
				vmap[slot] = v
				continue
			}
		}
		vmap[slot] = dst.NewVar()
	}
	buf := make([]Lit, 0, 8)
	for _, c := range t.f.Clauses {
		buf = buf[:0]
		for _, l := range c {
			buf = append(buf, MkLit(vmap[l.Var()], l.Neg()))
		}
		if !dst.AddClause(buf...) {
			return nil, false
		}
	}
	gv = &GateVars{
		Vars:    make([]Var, len(t.gateSlots)),
		Inputs:  make([]Var, len(t.inputs)),
		Outputs: make([]Var, len(t.outputs)),
	}
	for id, slot := range t.gateSlots {
		gv.Vars[id] = vmap[slot]
	}
	for i, slot := range t.inputs {
		gv.Inputs[i] = vmap[slot]
	}
	for i, slot := range t.outputs {
		gv.Outputs[i] = vmap[slot]
	}
	return gv, true
}
