package cnf

import (
	"fmt"

	"repro/internal/netlist"
)

// Encoder translates netlists into CNF via the Tseitin transformation,
// tracking the variable assigned to each gate so that callers can
// constrain inputs, read model values, and build miters spanning
// multiple circuit copies over one formula.
type Encoder struct {
	F *Formula
}

// NewEncoder returns an encoder over a fresh formula.
func NewEncoder() *Encoder { return &Encoder{F: NewFormula()} }

// GateVars maps each gate ID of an encoded netlist copy to its CNF
// variable.
type GateVars struct {
	Vars    []Var
	Inputs  []Var // variable of each primary input, in input order
	Outputs []Var // variable of each primary output, in output order
}

// Encode adds one copy of the netlist to the formula and returns the
// gate-to-variable mapping. Multiple calls encode independent copies;
// pass shared to reuse variables for chosen inputs (e.g. share primary
// inputs between two key-differentiated copies of a locked circuit):
// shared maps input position -> existing variable.
func (e *Encoder) Encode(n *netlist.Netlist, shared map[int]Var) (*GateVars, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	gv := &GateVars{Vars: make([]Var, n.NumGates())}
	inputPos := make(map[int]int, len(n.Inputs)) // gate id -> input index
	for i, id := range n.Inputs {
		inputPos[id] = i
	}
	for _, id := range order {
		g := &n.Gates[id]
		if g.Type == netlist.Input {
			if pos, ok := inputPos[id]; ok {
				if v, ok := shared[pos]; ok {
					gv.Vars[id] = v
					continue
				}
			}
			gv.Vars[id] = e.F.NewVar()
			continue
		}
		v, err := e.encodeGate(g, gv.Vars)
		if err != nil {
			return nil, fmt.Errorf("cnf: netlist %q gate %q: %w", n.Name, g.Name, err)
		}
		gv.Vars[id] = v
	}
	gv.Inputs = make([]Var, len(n.Inputs))
	for i, id := range n.Inputs {
		gv.Inputs[i] = gv.Vars[id]
	}
	gv.Outputs = make([]Var, len(n.Outputs))
	for i, id := range n.Outputs {
		gv.Outputs[i] = gv.Vars[id]
	}
	return gv, nil
}

func (e *Encoder) encodeGate(g *netlist.Gate, vars []Var) (Var, error) {
	in := make([]Lit, len(g.Fanin))
	for i, f := range g.Fanin {
		in[i] = MkLit(vars[f], false)
	}
	switch g.Type {
	case netlist.Const0:
		v := e.F.NewVar()
		e.F.AddClause(MkLit(v, true))
		return v, nil
	case netlist.Const1:
		v := e.F.NewVar()
		e.F.AddClause(MkLit(v, false))
		return v, nil
	case netlist.Buf:
		// Alias: introduce an equal variable (keeps mapping simple).
		v := e.F.NewVar()
		e.EncodeEqual(MkLit(v, false), in[0])
		return v, nil
	case netlist.Not:
		v := e.F.NewVar()
		e.EncodeEqual(MkLit(v, false), in[0].Not())
		return v, nil
	case netlist.And:
		return e.encodeAnd(in), nil
	case netlist.Nand:
		return e.negateOf(e.encodeAnd(in)), nil
	case netlist.Or:
		return e.encodeOr(in), nil
	case netlist.Nor:
		return e.negateOf(e.encodeOr(in)), nil
	case netlist.Xor:
		return e.encodeXorChain(in, false), nil
	case netlist.Xnor:
		return e.encodeXorChain(in, true), nil
	case netlist.Mux:
		return e.EncodeMux(in[0], in[1], in[2]), nil
	}
	return 0, fmt.Errorf("unsupported gate type %s", g.Type)
}

func (e *Encoder) negateOf(v Var) Var {
	nv := e.F.NewVar()
	e.EncodeEqual(MkLit(nv, false), MkLit(v, true))
	return nv
}

// EncodeEqual adds clauses asserting a ↔ b.
func (e *Encoder) EncodeEqual(a, b Lit) {
	e.F.AddClause(a.Not(), b)
	e.F.AddClause(a, b.Not())
}

func (e *Encoder) encodeAnd(in []Lit) Var {
	out := e.F.NewVar()
	o := MkLit(out, false)
	long := make([]Lit, 0, len(in)+1)
	for _, l := range in {
		e.F.AddClause(o.Not(), l) // out -> in_i
		long = append(long, l.Not())
	}
	long = append(long, o) // all in -> out
	e.F.AddClause(long...)
	return out
}

func (e *Encoder) encodeOr(in []Lit) Var {
	out := e.F.NewVar()
	o := MkLit(out, false)
	long := make([]Lit, 0, len(in)+1)
	for _, l := range in {
		e.F.AddClause(o, l.Not()) // in_i -> out
		long = append(long, l)
	}
	long = append(long, o.Not()) // out -> some in
	e.F.AddClause(long...)
	return out
}

// EncodeXor2 returns a fresh variable equal to a ⊕ b.
func (e *Encoder) EncodeXor2(a, b Lit) Var {
	out := e.F.NewVar()
	o := MkLit(out, false)
	e.F.AddClause(o.Not(), a, b)
	e.F.AddClause(o.Not(), a.Not(), b.Not())
	e.F.AddClause(o, a.Not(), b)
	e.F.AddClause(o, a, b.Not())
	return out
}

func (e *Encoder) encodeXorChain(in []Lit, invert bool) Var {
	acc := in[0]
	for _, l := range in[1:] {
		acc = MkLit(e.EncodeXor2(acc, l), false)
	}
	if invert {
		acc = acc.Not()
	}
	// Materialize as a plain variable so callers can reference it.
	if !acc.Neg() && len(in) > 1 {
		return acc.Var()
	}
	v := e.F.NewVar()
	e.EncodeEqual(MkLit(v, false), acc)
	return v
}

// EncodeMux returns a fresh variable out = s ? b : a.
func (e *Encoder) EncodeMux(s, a, b Lit) Var {
	out := e.F.NewVar()
	o := MkLit(out, false)
	e.F.AddClause(s, a.Not(), o)       // ¬s ∧ a -> out
	e.F.AddClause(s, a, o.Not())       // ¬s ∧ ¬a -> ¬out
	e.F.AddClause(s.Not(), b.Not(), o) // s ∧ b -> out
	e.F.AddClause(s.Not(), b, o.Not()) // s ∧ ¬b -> ¬out
	// Redundant but propagation-strengthening clauses:
	e.F.AddClause(a.Not(), b.Not(), o)
	e.F.AddClause(a, b, o.Not())
	return out
}

// EncodeOrBig returns a fresh variable equal to the OR of the literals.
func (e *Encoder) EncodeOrBig(in []Lit) Var {
	return e.encodeOr(in)
}

// AssertLit adds a unit clause forcing the literal true.
func (e *Encoder) AssertLit(l Lit) { e.F.AddClause(l) }

// AtMostOne adds pairwise at-most-one constraints over the literals.
// Used by the one-layer one-hot routing re-encoding (paper §IV-B).
func (e *Encoder) AtMostOne(lits []Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			e.F.AddClause(lits[i].Not(), lits[j].Not())
		}
	}
}

// ExactlyOne adds a one-hot constraint over the literals.
func (e *Encoder) ExactlyOne(lits []Lit) {
	e.F.AddClause(lits...)
	e.AtMostOne(lits)
}
