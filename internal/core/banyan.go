// Package core implements the paper's contribution: RIL-Blocks —
// reconfigurable interconnect and logic blocks combining key-controlled
// banyan routing networks with 2-input LUTs, plus the Scan-Enable
// obfuscation mechanism and runtime dynamic morphing.
package core

import (
	"fmt"

	"repro/internal/netlist"
)

// banyanStages returns log2(n); n must be a power of two >= 2.
func banyanStages(n int) (int, error) {
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("core: banyan width %d is not a power of two >= 2", n)
	}
	s := 0
	for 1<<s < n {
		s++
	}
	return s, nil
}

// BanyanSwitchCount returns the number of 2×2 switchboxes in an
// n-line butterfly/banyan network: (n/2)·log2(n).
func BanyanSwitchCount(n int) int {
	s, err := banyanStages(n)
	if err != nil {
		return 0
	}
	return n / 2 * s
}

// banyanPairs enumerates the switchboxes of the butterfly network in
// canonical order: stage 0 pairs lines differing in the most
// significant bit, the final stage pairs adjacent lines. For each
// switchbox it yields (stage, low line, high line).
func banyanPairs(n int, visit func(stage, lo, hi int)) {
	stages, _ := banyanStages(n)
	for s := 0; s < stages; s++ {
		bit := 1 << (stages - 1 - s)
		for lo := 0; lo < n; lo++ {
			if lo&bit == 0 {
				visit(s, lo, lo|bit)
			}
		}
	}
}

// BanyanPermute simulates the network: keys holds one bit per
// switchbox in canonical order (true = crossed). The result maps
// output line j to the input line arriving there.
func BanyanPermute(n int, keys []bool) ([]int, error) {
	want := BanyanSwitchCount(n)
	if len(keys) != want {
		return nil, fmt.Errorf("core: banyan %d needs %d key bits, got %d", n, want, len(keys))
	}
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	k := 0
	banyanPairs(n, func(_, lo, hi int) {
		if keys[k] {
			cur[lo], cur[hi] = cur[hi], cur[lo]
		}
		k++
	})
	return cur, nil
}

// RouteBanyan computes switch keys realizing a requested permutation:
// dest[i] is the output line that input line i must reach. The
// butterfly is a delta network — each input/output pair has exactly
// one path — so the settings are forced; ok is false when two values
// contend for the same switch port (the network is blocking; paper
// §III-A calls it "almost non-blocking").
func RouteBanyan(n int, dest []int) (keys []bool, ok bool) {
	stages, err := banyanStages(n)
	if err != nil || len(dest) != n {
		return nil, false
	}
	seen := make([]bool, n)
	for _, d := range dest {
		if d < 0 || d >= n || seen[d] {
			return nil, false
		}
		seen[d] = true
	}
	cur := make([]int, n) // cur[line] = original input index at this line
	for i := range cur {
		cur[i] = i
	}
	keys = make([]bool, 0, BanyanSwitchCount(n))
	for s := 0; s < stages; s++ {
		bit := 1 << (stages - 1 - s)
		for lo := 0; lo < n; lo++ {
			if lo&bit != 0 {
				continue
			}
			hi := lo | bit
			vLo, vHi := cur[lo], cur[hi]
			loWantsHi := dest[vLo]&bit != 0
			hiWantsHi := dest[vHi]&bit != 0
			if loWantsHi == hiWantsHi {
				return nil, false // both values need the same exit port
			}
			cross := loWantsHi // the low value must move to the high line
			keys = append(keys, cross)
			if cross {
				cur[lo], cur[hi] = cur[hi], cur[lo]
			}
		}
	}
	return keys, true
}

// BuildBanyanNetwork lowers a key-controlled banyan network to MUX
// gates in nl: lines holds the gate IDs entering the network, keyIDs
// one key-input gate ID per switchbox (canonical order). It returns
// the gate IDs of the output lines. Exported for the routing-only
// baseline; RIL-Blocks use it internally.
func BuildBanyanNetwork(nl *netlist.Netlist, prefix string, lines []int, keyIDs []int) ([]int, error) {
	return buildBanyan(nl, prefix, lines, keyIDs)
}

// buildBanyan lowers the network to MUX gates in nl. lines holds the
// gate IDs entering the network; keyIDs holds one key-input gate ID per
// switchbox (canonical order). It returns the gate IDs of the output
// lines. Each switchbox is exactly two 2:1 MUXes sharing one key bit —
// the paper's lightweight switchbox (§III-A: two MUXes, no inverter,
// unlike FullLock's four).
func buildBanyan(nl *netlist.Netlist, prefix string, lines []int, keyIDs []int) ([]int, error) {
	n := len(lines)
	want := BanyanSwitchCount(n)
	if len(keyIDs) != want {
		return nil, fmt.Errorf("core: banyan %d needs %d key inputs, got %d", n, want, len(keyIDs))
	}
	cur := append([]int(nil), lines...)
	k := 0
	var buildErr error
	banyanPairs(n, func(stage, lo, hi int) {
		if buildErr != nil {
			return
		}
		key := keyIDs[k]
		a, b := cur[lo], cur[hi]
		// key=0: straight (lo<-a, hi<-b); key=1: crossed.
		cur[lo] = nl.AddGate(nl.FreshName(fmt.Sprintf("%s_s%d_%d_a", prefix, stage, k)), netlist.Mux, key, a, b)
		cur[hi] = nl.AddGate(nl.FreshName(fmt.Sprintf("%s_s%d_%d_b", prefix, stage, k)), netlist.Mux, key, b, a)
		k++
	})
	return cur, buildErr
}
