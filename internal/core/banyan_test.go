package core

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestRouteBanyanIdentity(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		dest := identityPerm(n)
		keys, ok := RouteBanyan(n, dest)
		if !ok {
			t.Fatalf("n=%d: identity not routable", n)
		}
		perm, err := BanyanPermute(n, keys)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range perm {
			if p != i {
				t.Fatalf("n=%d: routed identity is not identity: %v", n, perm)
			}
		}
	}
}

func TestRouteBanyanRealizesRequestedPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 8, 16} {
		routable := 0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			dest := rng.Perm(n)
			keys, ok := RouteBanyan(n, dest)
			if !ok {
				continue // banyan is blocking; not every permutation routes
			}
			routable++
			landed, err := BanyanPermute(n, keys)
			if err != nil {
				t.Fatal(err)
			}
			// landed[out] = in must invert dest[in] = out.
			for out, in := range landed {
				if dest[in] != out {
					t.Fatalf("n=%d: dest %v not realized (landed %v)", n, dest, landed)
				}
			}
		}
		// Only 2^(switches) of the n! permutations route; for n=16 that
		// fraction (~2e-4) makes random hits unlikely, so assert only
		// for the smaller widths.
		if routable == 0 && n <= 8 {
			t.Errorf("n=%d: no random permutation routable in %d trials", n, trials)
		}
		// Self-routable permutations from the network itself must
		// always route back.
		for trial := 0; trial < 50; trial++ {
			keys := randomBits(rng, BanyanSwitchCount(n))
			landed, _ := BanyanPermute(n, keys)
			dest := make([]int, n)
			for out, in := range landed {
				dest[in] = out
			}
			if _, ok := RouteBanyan(n, dest); !ok {
				t.Fatalf("n=%d: network-generated permutation not routable", n)
			}
		}
	}
}

func TestRouteBanyanRejectsBadInput(t *testing.T) {
	if _, ok := RouteBanyan(4, []int{0, 0, 1, 2}); ok {
		t.Error("non-permutation accepted")
	}
	if _, ok := RouteBanyan(4, []int{0, 1, 2}); ok {
		t.Error("short destination accepted")
	}
	if _, ok := RouteBanyan(3, []int{0, 1, 2}); ok {
		t.Error("non-power-of-two width accepted")
	}
}

func TestPlanGateSwapMigratesTables(t *testing.T) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "gs", Inputs: 20, Outputs: 10, Gates: 300, Locality: 0.7,
	}, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8x8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	swapped := 0
	for p1 := 0; p1 < 8; p1++ {
		for p2 := p1 + 1; p2 < 8; p2++ {
			inKeys, outKeys, ok := res.planGateSwap(0, p1, p2)
			if !ok {
				continue
			}
			if err := res.Reconfigure(0, inKeys, outKeys); err != nil {
				t.Fatalf("planned swap (%d,%d) rejected: %v", p1, p2, err)
			}
			swapped++
			bound, err := res.ApplyKey(res.Key)
			if err != nil {
				t.Fatal(err)
			}
			eq, cex, err := netlist.Equivalent(orig, bound, 0, 6, int64(p1*8+p2))
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("gate swap (%d,%d) broke function, cex=%v", p1, p2, cex)
			}
		}
	}
	if swapped == 0 {
		t.Error("no gate swap routable on an 8x8x8 block — morphing would be inert")
	}
}
