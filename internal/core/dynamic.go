package core

import (
	"fmt"

	"repro/internal/netlist"
)

// DynamicOracle is the activated IC operating in dynamic-obfuscation
// mode: every epochQueries oracle queries the device morphs — the
// routing keys and LUT contents reshuffle (function-invariant) and the
// hidden MTJ_SE bits re-randomize, so the scan-mode responses the
// attacker collects before and after an epoch boundary are mutually
// inconsistent. A SAT attack that accumulates DIP constraints across
// epochs drives itself into an unsatisfiable corner and terminates
// without a key (the paper's "dynamic morphing thwarts the SAT attack
// ultimately", §IV-B).
//
// It implements the attack package's Oracle interface.
type DynamicOracle struct {
	res          *Result
	epochQueries int
	seed         int64
	epoch        int
	queries      int
	sim          *netlist.Simulator
	nIn, nOut    int
}

// NewDynamicOracle wraps a scan-enabled lock result. epochQueries is
// the number of oracle queries between morph epochs.
func NewDynamicOracle(res *Result, epochQueries int, seed int64) (*DynamicOracle, error) {
	if epochQueries < 1 {
		return nil, fmt.Errorf("core: epochQueries must be >= 1")
	}
	if !res.ScanEnable {
		return nil, fmt.Errorf("core: dynamic oracle needs ScanEnable (the attacker queries through the scan chain)")
	}
	o := &DynamicOracle{res: res, epochQueries: epochQueries, seed: seed}
	if err := o.rebuild(); err != nil {
		return nil, err
	}
	return o, nil
}

func (o *DynamicOracle) rebuild() error {
	sv, err := o.res.ScanView()
	if err != nil {
		return err
	}
	bound, err := sv.BindInputs(o.res.KeyInputPos, o.res.Key)
	if err != nil {
		return err
	}
	sim, err := netlist.NewSimulator(bound)
	if err != nil {
		return err
	}
	o.sim = sim
	o.nIn = len(bound.Inputs)
	o.nOut = len(bound.Outputs)
	return nil
}

// Query implements the oracle: scan-mode responses of the current
// configuration, morphing at epoch boundaries.
func (o *DynamicOracle) Query(in []bool) []bool {
	if o.queries > 0 && o.queries%o.epochQueries == 0 {
		o.epoch++
		o.res.Morph(o.seed+int64(o.epoch)*7919, 8)
		if err := o.rebuild(); err != nil {
			panic(fmt.Sprintf("core: dynamic oracle rebuild: %v", err))
		}
	}
	o.queries++
	return o.sim.Eval(in)
}

// NumInputs implements the oracle interface.
func (o *DynamicOracle) NumInputs() int { return o.nIn }

// NumOutputs implements the oracle interface.
func (o *DynamicOracle) NumOutputs() int { return o.nOut }

// Queries implements the oracle interface.
func (o *DynamicOracle) Queries() int { return o.queries }

// Epochs returns how many morph epochs have elapsed.
func (o *DynamicOracle) Epochs() int { return o.epoch }
