package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netlist"
)

// ExampleLock shows the basic locking flow: build a circuit, insert an
// RIL-Block, and verify that only the correct key restores it.
func ExampleLock() {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "ip", Inputs: 16, Outputs: 8, Gates: 300, Locality: 0.7,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{
		Blocks: 1,
		Size:   core.Size8x8x8,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("key bits:", res.KeyBits())

	activated, err := res.ApplyKey(res.Key)
	if err != nil {
		log.Fatal(err)
	}
	eq, _, err := netlist.Equivalent(orig, activated, 12, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct key restores function:", eq)
	// Output:
	// key bits: 76
	// correct key restores function: true
}

// ExampleBanyanPermute demonstrates the routing network primitive: the
// all-straight configuration is the identity permutation.
func ExampleBanyanPermute() {
	keys := make([]bool, core.BanyanSwitchCount(8))
	perm, err := core.BanyanPermute(8, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(perm)
	// Output:
	// [0 1 2 3 4 5 6 7]
}

// ExampleRouteBanyan computes the switch settings realizing a
// requested permutation by destination-tag routing.
func ExampleRouteBanyan() {
	dest := []int{1, 0, 3, 2} // swap neighbours
	keys, ok := core.RouteBanyan(4, dest)
	if !ok {
		log.Fatal("not routable")
	}
	perm, _ := core.BanyanPermute(4, keys)
	fmt.Println(perm)
	// Output:
	// [1 0 3 2]
}

// ExampleTotalOverhead reproduces the §III-A accounting: three 8×8×8
// blocks cost roughly a third of seventy-five 2×2 blocks.
func ExampleTotalOverhead() {
	small := core.TotalOverhead(core.Size2x2, 75)
	big := core.TotalOverhead(core.Size8x8x8, 3)
	fmt.Printf("75x2x2: %d transistors\n", small.Transistors)
	fmt.Printf("3x8x8x8: %d transistors\n", big.Transistors)
	fmt.Printf("ratio: %.2f\n", float64(small.Transistors)/float64(big.Transistors))
	// Output:
	// 75x2x2: 5400 transistors
	// 3x8x8x8: 1824 transistors
	// ratio: 2.96
}
