package core

import (
	"fmt"
	"math/big"

	"repro/internal/netlist"
)

// KeySpaceInfo quantifies the search space an attacker faces for one
// block geometry (§II-B: M-input LUTs offer 2^(2^M) functions; routing
// multiplies in the network's reachable permutations).
type KeySpaceInfo struct {
	Size         Size
	KeyBits      int
	TotalKeys    *big.Int // 2^KeyBits
	LUTFunctions *big.Int // 16^K
	// InPerms / OutPerms are the distinct permutations the banyan
	// networks can realize (exhaustively counted; nil when the network
	// is too wide to enumerate or absent).
	InPerms  *big.Int
	OutPerms *big.Int
}

// LUTFunctionSpace returns 2^(2^m), the function count of an m-input
// LUT (the paper's key-search-space argument for LUT-based
// obfuscation).
func LUTFunctionSpace(m int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), 1<<uint(m))
}

// DistinctPermutations exhaustively counts the distinct permutations an
// n-line banyan realizes over all switch settings. Practical for
// n <= 8 (4096 settings); wider networks return -1.
func DistinctPermutations(n int) int {
	sw := BanyanSwitchCount(n)
	if sw == 0 {
		return -1
	}
	if sw > 20 {
		return -1
	}
	seen := make(map[string]bool)
	keys := make([]bool, sw)
	var count int
	var rec func(i int)
	rec = func(i int) {
		if i == sw {
			perm, err := BanyanPermute(n, keys)
			if err != nil {
				return
			}
			k := fmt.Sprint(perm)
			if !seen[k] {
				seen[k] = true
				count++
			}
			return
		}
		keys[i] = false
		rec(i + 1)
		keys[i] = true
		rec(i + 1)
	}
	rec(0)
	return count
}

// KeySpace computes the search-space parameters of one block.
func KeySpace(s Size) KeySpaceInfo {
	info := KeySpaceInfo{Size: s}
	o := BlockOverhead(s)
	info.KeyBits = o.KeyBits
	info.TotalKeys = new(big.Int).Lsh(big.NewInt(1), uint(o.KeyBits))
	info.LUTFunctions = new(big.Int).Exp(big.NewInt(16), big.NewInt(int64(s.K)), nil)
	if s.InputRouting {
		if c := DistinctPermutations(2 * s.K); c > 0 {
			info.InPerms = big.NewInt(int64(c))
		}
	}
	if s.OutputRouting {
		if c := DistinctPermutations(s.K); c > 0 {
			info.OutPerms = big.NewInt(int64(c))
		}
	}
	return info
}

// CorrectKeyCount exhaustively counts the keys under which the locked
// circuit matches the original — the size of the correct-key
// equivalence class the SAT attack may land anywhere inside. Only
// feasible for small key spaces (<= maxBits, e.g. a single 2×2 block);
// returns an error otherwise.
func CorrectKeyCount(orig *netlist.Netlist, res *Result, maxBits int) (int, error) {
	kb := res.KeyBits()
	if kb > maxBits || kb > 24 {
		return 0, fmt.Errorf("core: %d key bits too many for exhaustive counting", kb)
	}
	count := 0
	key := make([]bool, kb)
	for m := 0; m < 1<<uint(kb); m++ {
		for i := range key {
			key[i] = m&(1<<uint(i)) != 0
		}
		bound, err := res.ApplyKey(key)
		if err != nil {
			return 0, err
		}
		eq, _, err := netlist.Equivalent(orig, bound, 10, 4, int64(m))
		if err != nil {
			return 0, err
		}
		if eq {
			count++
		}
	}
	return count, nil
}
