package core

import (
	"math/big"
	"testing"

	"repro/internal/netlist"
)

func TestLUTFunctionSpace(t *testing.T) {
	cases := map[int]int64{1: 4, 2: 16, 3: 256, 4: 65536}
	for m, want := range cases {
		if got := LUTFunctionSpace(m); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("LUTFunctionSpace(%d) = %v, want %d", m, got, want)
		}
	}
	// The paper's 2^(2^m) growth: m=6 already exceeds 10^19.
	if LUTFunctionSpace(6).BitLen() != 65 {
		t.Errorf("2^64 should have 65 bits, got %d", LUTFunctionSpace(6).BitLen())
	}
}

func TestDistinctPermutations(t *testing.T) {
	// 2-line banyan: one switch, two permutations.
	if got := DistinctPermutations(2); got != 2 {
		t.Errorf("DistinctPermutations(2) = %d, want 2", got)
	}
	// 4-line butterfly: 4 switches, 16 settings; the network is a
	// permutation-injective delta network, so all 16 are distinct
	// (and 16 < 4! = 24: the banyan is blocking).
	got4 := DistinctPermutations(4)
	if got4 <= 2 || got4 > 24 {
		t.Fatalf("DistinctPermutations(4) = %d out of range", got4)
	}
	// Delta networks have unique paths: distinct settings cannot
	// collide, so the count equals 2^switches when that is < n!.
	if got4 != 16 {
		t.Errorf("DistinctPermutations(4) = %d, want 16", got4)
	}
	// 8-line: 2^12 = 4096 settings vs 8! = 40320 — all distinct.
	if got8 := DistinctPermutations(8); got8 != 4096 {
		t.Errorf("DistinctPermutations(8) = %d, want 4096", got8)
	}
	if DistinctPermutations(3) != -1 || DistinctPermutations(32) != -1 {
		t.Error("out-of-range widths should return -1")
	}
}

func TestKeySpaceInfo(t *testing.T) {
	info := KeySpace(Size8x8x8)
	if info.KeyBits != 76 {
		t.Errorf("8x8x8 key bits %d, want 76", info.KeyBits)
	}
	if info.TotalKeys.BitLen() != 77 { // 2^76
		t.Errorf("total keys bitlen %d", info.TotalKeys.BitLen())
	}
	if info.LUTFunctions.Cmp(new(big.Int).Exp(big.NewInt(16), big.NewInt(8), nil)) != 0 {
		t.Error("LUT function space wrong")
	}
	if info.InPerms != nil {
		t.Error("16-wide banyan should not be enumerable")
	}
	if info.OutPerms == nil || info.OutPerms.Int64() != 4096 {
		t.Errorf("8-wide output banyan perms = %v, want 4096", info.OutPerms)
	}
}

func TestCorrectKeyCount2x2(t *testing.T) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "ks", Inputs: 12, Outputs: 6, Gates: 120, Locality: 0.6,
	}, 71)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lock(orig, Options{Blocks: 1, Size: Size2x2, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	count, err := CorrectKeyCount(orig, res, 12)
	if err != nil {
		t.Fatal(err)
	}
	if count < 1 {
		t.Fatal("the correct key itself must be counted")
	}
	// The output switchbox symmetry guarantees at least two correct
	// keys (swap the switch and the two LUT contents).
	if count < 2 {
		t.Errorf("correct-key class size %d; routing symmetry should give >= 2", count)
	}
	total := 1 << uint(res.KeyBits())
	if count >= total/2 {
		t.Errorf("correct-key class %d/%d suspiciously large — lock too weak", count, total)
	}
	t.Logf("2x2 block: %d/%d keys are functionally correct", count, total)
}

func TestCorrectKeyCountRejectsLargeKeys(t *testing.T) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "ks2", Inputs: 16, Outputs: 8, Gates: 300, Locality: 0.7,
	}, 73)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8x8, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CorrectKeyCount(orig, res, 12); err == nil {
		t.Error("76-bit exhaustive count accepted")
	}
}
