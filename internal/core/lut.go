package core

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// buildLUT2 lowers a 2-input LUT to the three-MUX structure of paper
// Fig. 1: the four key inputs are the truth-table cells, selected by B
// then A. keyIDs must hold the gate IDs of the four key inputs in the
// paper's Table II order K1..K4 (K1 = f(1,1), K4 = f(0,0)).
// It returns the LUT output gate ID.
func buildLUT2(nl *netlist.Netlist, prefix string, a, b int, keyIDs [4]int) int {
	// Table II order: K1=f(1,1) K2=f(1,0) K3=f(0,1) K4=f(0,0).
	k11, k10, k01, k00 := keyIDs[0], keyIDs[1], keyIDs[2], keyIDs[3]
	// m0 = A=0 row: MUX(B, f(0,0), f(0,1)); m1 = A=1 row.
	m0 := nl.AddGate(nl.FreshName(prefix+"_m0"), netlist.Mux, b, k00, k01)
	m1 := nl.AddGate(nl.FreshName(prefix+"_m1"), netlist.Mux, b, k10, k11)
	return nl.AddGate(nl.FreshName(prefix+"_o"), netlist.Mux, a, m0, m1)
}

// gateFunc2 returns the two-input Boolean function computed by a
// 2-fanin gate, or ok=false for types a 2-input LUT cannot absorb.
func gateFunc2(t netlist.GateType) (logic.Func2, bool) {
	switch t {
	case netlist.And:
		return logic.AND, true
	case netlist.Nand:
		return logic.NAND, true
	case netlist.Or:
		return logic.OR, true
	case netlist.Nor:
		return logic.NOR, true
	case netlist.Xor:
		return logic.XOR, true
	case netlist.Xnor:
		return logic.XNOR, true
	default:
		return 0, false
	}
}

// lutKeyBits converts a function to its four key-bit values in Table II
// order.
func lutKeyBits(f logic.Func2) [4]bool { return f.Keys() }

func func2FromKeyBits(k [4]bool) logic.Func2 { return logic.FromKeys(k) }

var errNoCandidates = fmt.Errorf("core: not enough obfuscatable 2-input gates")
