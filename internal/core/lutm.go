package core

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// M-input LUT locking (plain LUT replacement with wider LUTs). The
// paper argues twice for scaling the LUT size: §II-B (an M-input LUT
// offers 2^(2^M) functions, the key-search-space argument of [8]) and
// §IV-E (the write circuit is shared across cells, so doubling the
// truth table does not double the periphery — "increasing the LUT size
// helps to reduce the overhead while increasing SAT-resiliency").
//
// A LUT2 absorbs one gate; a LUT-M absorbs a single-output cone of
// gates with M external inputs, hiding the cone's entire function
// behind 2^M key bits.

// LUTMResult describes an M-input LUT lock.
type LUTMResult struct {
	Locked      *netlist.Netlist
	Key         []bool
	KeyInputPos []int
	M           int
	Cones       [][]string // absorbed gate names per LUT
}

// KeyBits returns the key length.
func (r *LUTMResult) KeyBits() int { return len(r.Key) }

// ApplyKey binds the key.
func (r *LUTMResult) ApplyKey(key []bool) (*netlist.Netlist, error) {
	if len(key) != len(r.Key) {
		return nil, fmt.Errorf("core: key length %d, want %d", len(key), len(r.Key))
	}
	return r.Locked.BindInputs(r.KeyInputPos, key)
}

// LockLUTM replaces nLUTs single-output cones of the circuit with
// M-input LUTs (m in [2,6]). Each cone is grown greedily from a seed
// gate by absorbing single-fanout fanin gates until the external input
// count reaches m.
func LockLUTM(orig *netlist.Netlist, nLUTs, m int, seed int64) (*LUTMResult, error) {
	if m < 2 || m > 6 {
		return nil, fmt.Errorf("core: LUT size m=%d out of [2,6]", m)
	}
	if nLUTs < 1 {
		return nil, fmt.Errorf("core: nLUTs must be >= 1")
	}
	nl := orig.Clone()
	rng := rand.New(rand.NewSource(seed))
	res := &LUTMResult{Locked: nl, M: m}

	fanouts := nl.FanoutLists()
	taken := make([]bool, nl.NumGates()) // gates already absorbed

	// Candidate seeds: 2-input basic gates.
	var seeds []int
	for id := range nl.Gates {
		if _, ok := gateFunc2(nl.Gates[id].Type); ok && len(nl.Gates[id].Fanin) == 2 {
			seeds = append(seeds, id)
		}
	}
	rng.Shuffle(len(seeds), func(i, j int) { seeds[i], seeds[j] = seeds[j], seeds[i] })

	built := 0
	for _, seedGate := range seeds {
		if built == nLUTs {
			break
		}
		if taken[seedGate] {
			continue
		}
		cone, inputs, ok := growCone(nl, seedGate, m, taken, fanouts)
		if !ok {
			continue
		}
		if err := replaceConeWithLUT(nl, res, cone, inputs, rng); err != nil {
			return nil, err
		}
		for _, g := range cone {
			taken[g] = true
		}
		built++
		// The netlist grew (key inputs + MUX tree): refresh the
		// structures indexed by gate ID.
		fanouts = nl.FanoutLists()
		grown := make([]bool, nl.NumGates())
		copy(grown, taken)
		taken = grown
	}
	if built < nLUTs {
		return nil, fmt.Errorf("core: only %d of %d LUT%d cones available", built, nLUTs, m)
	}
	nl.Prune()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		return nil, err
	}
	eq, cex, err := netlist.Equivalent(orig, bound, 12, 8, seed^0x1ea5)
	if err != nil {
		return nil, err
	}
	if !eq {
		return nil, fmt.Errorf("core: LUT%d lock broke function (cex %v)", m, cex)
	}
	return res, nil
}

// growCone expands from the seed gate toward its fanins, absorbing
// gates whose only fanout lies inside the cone, until the external
// input count is exactly m. Returns the cone gate IDs (seed first) and
// the external input IDs (deterministic order).
func growCone(nl *netlist.Netlist, seedGate, m int, taken []bool, fanouts [][]int) (cone []int, inputs []int, ok bool) {
	inCone := map[int]bool{seedGate: true}
	cone = []int{seedGate}
	// External inputs: fanins of cone members not in the cone.
	externals := func() []int {
		seen := map[int]bool{}
		var out []int
		for _, g := range cone {
			for _, f := range nl.Gates[g].Fanin {
				if !inCone[f] && !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
			}
		}
		return out
	}
	for {
		ins := externals()
		if len(ins) == m {
			return cone, ins, true
		}
		if len(ins) > m+2 {
			return nil, nil, false // grew too wide
		}
		// Absorb an external gate that (a) is a basic logic gate,
		// (b) fans out only into the cone, (c) is not already taken.
		absorbed := false
		for _, cand := range ins {
			g := &nl.Gates[cand]
			if taken[cand] || g.Type == netlist.Input || g.Type == netlist.Const0 || g.Type == netlist.Const1 {
				continue
			}
			if g.Type == netlist.Mux { // keep cones within plain logic
				continue
			}
			all := true
			for _, r := range fanouts[cand] {
				if !inCone[r] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			// Absorbing must not overshoot the input budget too far.
			inCone[cand] = true
			cone = append(cone, cand)
			absorbed = true
			break
		}
		if !absorbed {
			// Cannot reach exactly m inputs.
			if len(ins) < m {
				return nil, nil, false
			}
			return nil, nil, false
		}
	}
}

// replaceConeWithLUT computes the cone's truth table and lowers an
// M-input LUT (complete MUX tree over 2^m key inputs).
func replaceConeWithLUT(nl *netlist.Netlist, res *LUTMResult, cone, inputs []int, rng *rand.Rand) error {
	seedGate := cone[0]
	m := res.M

	// Truth table by simulation of the cone: evaluate the sub-circuit
	// for each assignment of the external inputs.
	inCone := map[int]bool{}
	for _, g := range cone {
		inCone[g] = true
	}
	tt := logic.NewTT(m)
	val := map[int]bool{}
	var eval func(id int) bool
	eval = func(id int) bool {
		if v, ok := val[id]; ok {
			return v
		}
		g := &nl.Gates[id]
		var v bool
		switch g.Type {
		case netlist.And, netlist.Nand:
			v = true
			for _, f := range g.Fanin {
				v = v && eval(f)
			}
			if g.Type == netlist.Nand {
				v = !v
			}
		case netlist.Or, netlist.Nor:
			v = false
			for _, f := range g.Fanin {
				v = v || eval(f)
			}
			if g.Type == netlist.Nor {
				v = !v
			}
		case netlist.Xor, netlist.Xnor:
			v = false
			for _, f := range g.Fanin {
				v = v != eval(f)
			}
			if g.Type == netlist.Xnor {
				v = !v
			}
		case netlist.Not:
			v = !eval(g.Fanin[0])
		case netlist.Buf:
			v = eval(g.Fanin[0])
		default:
			panic(fmt.Sprintf("core: cone contains unsupported gate %s", g.Type))
		}
		val[id] = v
		return v
	}
	for row := 0; row < 1<<uint(m); row++ {
		val = map[int]bool{}
		for i, id := range inputs {
			val[id] = row&(1<<uint(i)) != 0
		}
		tt.Set(row, eval(seedGate))
	}

	// Key inputs: one per truth-table row, in row order.
	keyIDs := make([]int, 1<<uint(m))
	for row := range keyIDs {
		name := fmt.Sprintf("keyinput%d", len(res.Key))
		res.KeyInputPos = append(res.KeyInputPos, len(nl.Inputs))
		keyIDs[row] = nl.AddInput(name)
		res.Key = append(res.Key, tt.Get(row))
	}

	// Complete MUX tree: collapse on inputs[0] (LSB) first.
	lutIdx := len(res.Cones)
	leaves := append([]int(nil), keyIDs...)
	for lvl := 0; lvl < m; lvl++ {
		next := make([]int, len(leaves)/2)
		for i := range next {
			next[i] = nl.AddGate(nl.FreshName(fmt.Sprintf("lutm%d_l%d_%d", lutIdx, lvl, i)),
				netlist.Mux, inputs[lvl], leaves[2*i], leaves[2*i+1])
		}
		leaves = next
	}
	nl.RedirectFanout(seedGate, leaves[0])

	names := make([]string, len(cone))
	for i, g := range cone {
		names[i] = nl.Gates[g].Name
	}
	res.Cones = append(res.Cones, names)
	_ = rng
	return nil
}
