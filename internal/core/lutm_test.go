package core

import (
	"testing"

	"repro/internal/netlist"
)

func lutmCircuit(t *testing.T, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomProfile{
		Name: "lm", Inputs: 20, Outputs: 10, Gates: 400, Locality: 0.7,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestLockLUTMAllSizes(t *testing.T) {
	orig := lutmCircuit(t, 81)
	for _, m := range []int{2, 3, 4} {
		res, err := LockLUTM(orig, 3, m, 82)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if res.KeyBits() != 3*(1<<uint(m)) {
			t.Errorf("m=%d: key bits %d, want %d", m, res.KeyBits(), 3*(1<<uint(m)))
		}
		if len(res.Cones) != 3 {
			t.Errorf("m=%d: %d cones", m, len(res.Cones))
		}
		// Equivalence under the correct key is self-checked by LockLUTM.
		// Complementing an entire truth table inverts that LUT's output
		// on every reachable row; at least two of the three cones must
		// corrupt the circuit (a random netlist can contain logically
		// unobservable wires — XOR reconvergence — where any function
		// is a legal don't-care).
		corrupting := 0
		for c := 0; c < 3; c++ {
			wrong := append([]bool(nil), res.Key...)
			rows := 1 << uint(m)
			for i := 0; i < rows; i++ {
				wrong[c*rows+i] = !wrong[c*rows+i]
			}
			bound, err := res.ApplyKey(wrong)
			if err != nil {
				t.Fatal(err)
			}
			eq, _, err := netlist.Equivalent(orig, bound, 12, 64, int64(m*8+c))
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				corrupting++
			}
		}
		if corrupting < 2 {
			t.Errorf("m=%d: only %d/3 complemented cones corrupted the circuit", m, corrupting)
		}
	}
}

func TestLockLUTMConesAbsorbMultipleGates(t *testing.T) {
	orig := lutmCircuit(t, 83)
	res, err := LockLUTM(orig, 4, 4, 84)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, cone := range res.Cones {
		if len(cone) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no LUT4 cone absorbed more than one gate — absorption inert")
	}
}

func TestLockLUTMErrors(t *testing.T) {
	orig := lutmCircuit(t, 85)
	if _, err := LockLUTM(orig, 1, 1, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := LockLUTM(orig, 1, 7, 1); err == nil {
		t.Error("m=7 accepted")
	}
	if _, err := LockLUTM(orig, 0, 2, 1); err == nil {
		t.Error("0 LUTs accepted")
	}
	if _, err := LockLUTM(orig, 10000, 4, 1); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestLockLUTMDeterministic(t *testing.T) {
	orig := lutmCircuit(t, 86)
	a, err := LockLUTM(orig, 2, 3, 87)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LockLUTM(orig, 2, 3, 87)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Key) != len(b.Key) {
		t.Fatal("nondeterministic key size")
	}
	for i := range a.Key {
		if a.Key[i] != b.Key[i] {
			t.Fatal("nondeterministic key")
		}
	}
}
