package core

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
)

// Reconfigure attempts to install new routing keys for block bi and
// re-derives the LUT contents so that the block's function is
// unchanged. It fails (leaving the Result untouched) if the new routing
// does not deliver a consistent fanin pair to every LUT — the banyan
// network is blocking, so not every key vector is compensable.
//
// This is the mechanism behind dynamic morphing: the physical
// configuration (switch keys + LUT truth tables) changes while the
// circuit's function is preserved, so key material leaked at time t is
// useless at time t+1.
func (r *Result) Reconfigure(bi int, newInKeys, newOutKeys []bool) error {
	blk := &r.Blocks[bi]
	k := blk.Size.K
	if blk.Size.InputRouting {
		if len(newInKeys) != BanyanSwitchCount(2*k) {
			return fmt.Errorf("core: block %d wants %d input routing bits, got %d",
				bi, BanyanSwitchCount(2*k), len(newInKeys))
		}
	} else if len(newInKeys) != 0 {
		return fmt.Errorf("core: block %d has no input routing", bi)
	}
	if blk.Size.OutputRouting {
		if len(newOutKeys) != BanyanSwitchCount(k) {
			return fmt.Errorf("core: block %d wants %d output routing bits, got %d",
				bi, BanyanSwitchCount(k), len(newOutKeys))
		}
	} else if len(newOutKeys) != 0 {
		return fmt.Errorf("core: block %d has no output routing", bi)
	}

	landedIn := identityPerm(2 * k)
	if blk.Size.InputRouting {
		var err error
		landedIn, err = BanyanPermute(2*k, newInKeys)
		if err != nil {
			return err
		}
	}
	landedOut := identityPerm(k)
	if blk.Size.OutputRouting {
		var err error
		landedOut, err = BanyanPermute(k, newOutKeys)
		if err != nil {
			return err
		}
	}

	// Wire name at each input port (recorded at lock time for every
	// geometry).
	portWire := func(p int) string { return blk.PortWire[p] }

	// Derive the new LUT contents.
	newTables := make([]logic.Func2, k)
	for pos := 0; pos < k; pos++ {
		l := landedOut[pos]
		wA := portWire(landedIn[2*l])
		wB := portWire(landedIn[2*l+1])
		f := blk.GateFuncs[pos]
		a, b := blk.FaninA[pos], blk.FaninB[pos]
		switch {
		case wA == a && wB == b:
			newTables[l] = f
		case wA == b && wB == a:
			newTables[l] = f.SwapInputs()
		default:
			return fmt.Errorf("core: block %d: routing delivers (%s,%s) to LUT %d, gate %q needs (%s,%s)",
				bi, wA, wB, l, blk.GateNames[pos], a, b)
		}
	}

	// Commit.
	for i, p := range blk.InKeyPos {
		r.Key[p] = newInKeys[i]
	}
	for i, p := range blk.OutKeyPos {
		r.Key[p] = newOutKeys[i]
	}
	for l := 0; l < k; l++ {
		bits := newTables[l].Keys()
		for j, p := range blk.LUTKeyPos[l] {
			r.Key[p] = bits[j]
		}
	}
	return nil
}

// MorphStats reports what a Morph epoch changed.
type MorphStats struct {
	RoutingMoves int // blocks whose switch keys changed
	SEFlips      int // hidden scan-enable bits flipped
	KeyBitsDelta int // key bits that differ from before the morph
}

// Morph performs one dynamic-morphing epoch: for every block it tries
// random routing-key perturbations (keeping those the LUT layer can
// compensate) and re-randomizes a subset of the hidden MTJ_SE bits.
// The circuit's functional behaviour is invariant; the physical key
// changes. tries bounds the perturbation attempts per block.
func (r *Result) Morph(seed int64, tries int) MorphStats {
	rng := rand.New(rand.NewSource(seed))
	var stats MorphStats
	before := append([]bool(nil), r.Key...)

	for bi := range r.Blocks {
		blk := &r.Blocks[bi]
		k := blk.Size.K
		moved := false
		for t := 0; t < tries; t++ {
			inKeys := currentBits(r.Key, blk.InKeyPos)
			outKeys := currentBits(r.Key, blk.OutKeyPos)
			flips := 1 + rng.Intn(3)
			total := len(inKeys) + len(outKeys)
			if total == 0 {
				break
			}
			for f := 0; f < flips; f++ {
				i := rng.Intn(total)
				if i < len(inKeys) {
					inKeys[i] = !inKeys[i]
				} else {
					outKeys[i-len(inKeys)] = !outKeys[i-len(inKeys)]
				}
			}
			if err := r.Reconfigure(bi, inKeys, outKeys); err == nil {
				moved = true
			}
		}
		// Constructive gate-swap move (blocks with routing on both
		// sides): re-route the banyans so two randomly chosen gates
		// trade LUTs; the truth tables physically migrate between the
		// LUTs. Destination-tag routing computes the exact switch keys;
		// the blocking banyan occasionally cannot realize a particular
		// swap, so a few candidates are tried.
		if blk.Size.InputRouting && blk.Size.OutputRouting && k >= 2 {
			for try := 0; try < 8; try++ {
				p1 := rng.Intn(k)
				p2 := rng.Intn(k)
				if p1 == p2 {
					continue
				}
				inKeys, outKeys, ok := r.planGateSwap(bi, p1, p2)
				if !ok {
					continue
				}
				if err := r.Reconfigure(bi, inKeys, outKeys); err == nil {
					moved = true
					break
				}
			}
		}
		// Guaranteed-valid fallback: swapping a last-stage input switch
		// only swaps one LUT's pin order, which SwapInputs compensates.
		if !moved && blk.Size.InputRouting {
			inKeys := currentBits(r.Key, blk.InKeyPos)
			outKeys := currentBits(r.Key, blk.OutKeyPos)
			stages, _ := banyanStages(2 * k)
			lastStageBase := (stages - 1) * k // (2k/2) switches per stage
			sw := lastStageBase + rng.Intn(k)
			inKeys[sw] = !inKeys[sw]
			if err := r.Reconfigure(bi, inKeys, outKeys); err == nil {
				moved = true
			}
		}
		if moved {
			stats.RoutingMoves++
		}
	}

	// Re-randomize hidden SE bits: changes the oracle's scan-mode
	// corruption pattern without touching functional behaviour.
	if r.ScanEnable {
		for i := range r.SEBits {
			if rng.Intn(2) == 1 {
				r.SEBits[i] = !r.SEBits[i]
				stats.SEFlips++
			}
		}
	}

	for i := range r.Key {
		if r.Key[i] != before[i] {
			stats.KeyBitsDelta++
		}
	}
	return stats
}

// planGateSwap computes routing keys under which the gates at block
// output positions p1 and p2 trade LUTs, leaving every other gate's
// routing destination unchanged. ok is false when the blocking banyan
// cannot realize the modified permutation.
func (r *Result) planGateSwap(bi, p1, p2 int) (inKeys, outKeys []bool, ok bool) {
	blk := &r.Blocks[bi]
	k := blk.Size.K
	curIn := currentBits(r.Key, blk.InKeyPos)
	curOut := currentBits(r.Key, blk.OutKeyPos)
	landedIn, err := BanyanPermute(2*k, curIn) // line -> port
	if err != nil {
		return nil, nil, false
	}
	landedOut, err := BanyanPermute(k, curOut) // position -> LUT
	if err != nil {
		return nil, nil, false
	}
	l1, l2 := landedOut[p1], landedOut[p2]
	if l1 == l2 {
		return nil, nil, false
	}

	// Output banyan: LUT l must reach position destOut[l].
	destOut := make([]int, k)
	for pos := 0; pos < k; pos++ {
		destOut[landedOut[pos]] = pos
	}
	destOut[l1], destOut[l2] = destOut[l2], destOut[l1]
	outKeys, ok = RouteBanyan(k, destOut)
	if !ok {
		return nil, nil, false
	}

	// Input banyan: port q must reach line destIn[q]; the two gates'
	// fanin pairs trade LUT input lines (pin order preserved).
	destIn := make([]int, 2*k)
	for line := 0; line < 2*k; line++ {
		destIn[landedIn[line]] = line
	}
	destIn[landedIn[2*l1]] = 2 * l2
	destIn[landedIn[2*l1+1]] = 2*l2 + 1
	destIn[landedIn[2*l2]] = 2 * l1
	destIn[landedIn[2*l2+1]] = 2*l1 + 1
	inKeys, ok = RouteBanyan(2*k, destIn)
	if !ok {
		return nil, nil, false
	}
	return inKeys, outKeys, true
}

func currentBits(key []bool, pos []int) []bool {
	out := make([]bool, len(pos))
	for i, p := range pos {
		out[i] = key[p]
	}
	return out
}
