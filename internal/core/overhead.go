package core

import "fmt"

// Overhead models the implementation cost of RIL-Block obfuscation
// using the paper's device accounting (§IV-E): a 2-input MRAM-based
// LUT needs 32 MOS transistors plus 2 complementary MTJs per memory
// cell (4 data cells + 1 scan-enable cell = 10 MTJs); the SRAM
// equivalent needs 24 transistors per memory cell. A 2:1 MUX costs 4
// transistors (transmission-gate implementation), so one switchbox is
// 8 transistors.
type Overhead struct {
	Blocks      int
	KeyBits     int
	LUTs        int
	Switchboxes int
	Muxes       int // total 2:1 MUXes (switchboxes ×2 + LUT trees ×3)
	MTJs        int
	Transistors int // MOS transistor estimate (MRAM implementation)
	SRAMEquiv   int // transistor estimate if built with SRAM LUTs
}

const (
	lutMOSTransistors  = 32 // paper §IV-E, per 2-input MRAM LUT
	lutMTJs            = 10 // 4 complementary data cells + 1 SE cell
	sramCellTransistor = 24 // per memory cell, conventional SRAM LUT
	sramLUTCells       = 4
	muxTransistors     = 4
)

// BlockOverhead returns the cost of a single block of the geometry.
func BlockOverhead(s Size) Overhead {
	o := Overhead{Blocks: 1, LUTs: s.K}
	if s.InputRouting {
		o.Switchboxes += BanyanSwitchCount(2 * s.K)
	}
	if s.OutputRouting {
		o.Switchboxes += BanyanSwitchCount(s.K)
	}
	o.KeyBits = o.Switchboxes + 4*s.K
	o.Muxes = o.Switchboxes*2 + s.K*3
	o.MTJs = s.K * lutMTJs
	o.Transistors = s.K*lutMOSTransistors + o.Switchboxes*2*muxTransistors
	o.SRAMEquiv = s.K*(sramCellTransistor*sramLUTCells) + o.Switchboxes*2*muxTransistors
	return o
}

// TotalOverhead returns the cost of n blocks of the geometry.
func TotalOverhead(s Size, n int) Overhead {
	o := BlockOverhead(s)
	return Overhead{
		Blocks:      n,
		KeyBits:     o.KeyBits * n,
		LUTs:        o.LUTs * n,
		Switchboxes: o.Switchboxes * n,
		Muxes:       o.Muxes * n,
		MTJs:        o.MTJs * n,
		Transistors: o.Transistors * n,
		SRAMEquiv:   o.SRAMEquiv * n,
	}
}

// Overhead reports the aggregate cost of all blocks in the result.
func (r *Result) Overhead() Overhead {
	var total Overhead
	for _, blk := range r.Blocks {
		o := BlockOverhead(blk.Size)
		total.Blocks++
		total.KeyBits += o.KeyBits
		total.LUTs += o.LUTs
		total.Switchboxes += o.Switchboxes
		total.Muxes += o.Muxes
		total.MTJs += o.MTJs
		total.Transistors += o.Transistors
		total.SRAMEquiv += o.SRAMEquiv
	}
	return total
}

// MRAMLUTArea estimates the device cost of an m-input MRAM LUT:
// 2^m complementary bit cells (4 access transistors each), a
// pass-transistor select tree (2 per tree node), and the shared
// write/sense periphery — which, per §IV-E, does NOT scale with the
// cell count ("the write circuit does not scale with the increase in
// the number of LUT inputs"). The m=2 instance reproduces the paper's
// 32-transistor figure.
func MRAMLUTArea(m int) (transistors, mtjs int) {
	cells := 1 << uint(m)
	transistors = 4*cells + 2*(cells-1) + 10
	mtjs = 2*cells + 2 // complementary data cells + SE cell
	return transistors, mtjs
}

func (o Overhead) String() string {
	return fmt.Sprintf("%d block(s): %d key bits, %d LUTs, %d switchboxes, %d MUXes, %d MTJs, ~%d transistors (SRAM equiv ~%d)",
		o.Blocks, o.KeyBits, o.LUTs, o.Switchboxes, o.Muxes, o.MTJs, o.Transistors, o.SRAMEquiv)
}
