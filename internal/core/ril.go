package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Size describes an RIL-Block geometry. K is the number of 2-input
// LUTs (= replaced gates). InputRouting adds a 2K-wire banyan in front
// of the LUT layer (which of the 2K tapped wires feeds which LUT pin is
// key-dependent); OutputRouting adds a K-wire banyan behind the LUT
// layer (which LUT drives which replaced gate's fanout is
// key-dependent).
type Size struct {
	K             int
	InputRouting  bool
	OutputRouting bool
}

// Preset geometries matching the paper's nomenclature. "2×2" is the
// Fig. 3 block: two LUTs and a single output switchbox. "8×8" adds the
// input interconnect network over the 16 tapped wires. "8×8×8" has
// routing on both sides of the LUT layer.
var (
	Size2x2   = Size{K: 2, InputRouting: false, OutputRouting: true}
	Size8x8   = Size{K: 8, InputRouting: true, OutputRouting: false}
	Size8x8x8 = Size{K: 8, InputRouting: true, OutputRouting: true}
)

// ParseSize resolves "2x2", "8x8", "8x8x8" (also accepts "KxK" and
// "KxKxK" for other even powers of two, e.g. "4x4x4").
func ParseSize(s string) (Size, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	bad := func() (Size, error) { return Size{}, fmt.Errorf("core: cannot parse RIL size %q", s) }
	if len(parts) < 2 || len(parts) > 3 {
		return bad()
	}
	var k int
	if _, err := fmt.Sscanf(parts[0], "%d", &k); err != nil || k < 2 {
		return bad()
	}
	for _, p := range parts[1:] {
		var k2 int
		if _, err := fmt.Sscanf(p, "%d", &k2); err != nil || k2 != k {
			return bad()
		}
	}
	switch {
	case k == 2 && len(parts) == 2:
		return Size2x2, nil
	case len(parts) == 2:
		return Size{K: k, InputRouting: true, OutputRouting: false}, nil
	default:
		return Size{K: k, InputRouting: true, OutputRouting: true}, nil
	}
}

// String renders the geometry in the paper's notation.
func (s Size) String() string {
	switch {
	case !s.InputRouting && s.OutputRouting && s.K == 2:
		return "2x2"
	case s.InputRouting && !s.OutputRouting:
		return fmt.Sprintf("%dx%d", s.K, s.K)
	case s.InputRouting && s.OutputRouting:
		return fmt.Sprintf("%dx%dx%d", s.K, s.K, s.K)
	case !s.InputRouting && !s.OutputRouting:
		return fmt.Sprintf("lut%d", s.K)
	default:
		return fmt.Sprintf("Size{K:%d,in:%v,out:%v}", s.K, s.InputRouting, s.OutputRouting)
	}
}

// Options configures Lock.
type Options struct {
	Blocks     int   // number of RIL-Blocks to insert
	Size       Size  // block geometry
	Seed       int64 // deterministic randomness
	ScanEnable bool  // add the hidden MTJ_SE output-inversion layer
	KeyPrefix  string
}

// BlockInfo records one inserted RIL-Block. Gate references are by
// name (IDs change when the netlist is pruned).
type BlockInfo struct {
	Size      Size
	GateNames []string      // replaced gates, in block-output order
	GateFuncs []logic.Func2 // their original functions
	FaninA    []string      // first fanin wire name per gate
	FaninB    []string      // second fanin wire name per gate
	PortWire  []string      // input-port -> wire name (input routing); nil otherwise
	InKeyPos  []int         // key-vector positions of input banyan bits
	OutKeyPos []int         // key-vector positions of output banyan bits
	LUTKeyPos [][4]int      // key-vector positions of each LUT's table bits
	LUTOut    []string      // name of each LUT's output MUX
	SEIdx     []int         // index into Result.SEBits per LUT (nil without scan enable)
	InNetOut  []string      // input-banyan output line names (2K), nil without input routing
	OutNetOut []string      // output-banyan output line names (K), nil without output routing
}

// Result is a locked netlist plus the secrets the IP owner retains.
type Result struct {
	Locked      *netlist.Netlist // attacker's view: original + key inputs
	Key         []bool           // the correct key
	KeyNames    []string         // key input names, index-aligned with Key
	KeyInputPos []int            // positions of key inputs within Locked.Inputs
	Blocks      []BlockInfo
	ScanEnable  bool
	SEBits      []bool // hidden MTJ_SE contents, one per LUT (nil without scan enable)
}

// KeyBits returns the key length.
func (r *Result) KeyBits() int { return len(r.Key) }

// Lock inserts opt.Blocks RIL-Blocks of geometry opt.Size into a copy
// of the netlist. Gates are selected at random (paper §III-D: no
// insertion policy is required), subject only to the structural
// constraint that a block's tapped input wires must not depend on the
// block's own outputs (no combinational cycles).
func Lock(orig *netlist.Netlist, opt Options) (*Result, error) {
	if opt.Blocks < 1 {
		return nil, fmt.Errorf("core: Blocks must be >= 1")
	}
	if opt.Size.K < 1 || opt.Size.K&(opt.Size.K-1) != 0 {
		return nil, fmt.Errorf("core: block K=%d must be a power of two >= 1", opt.Size.K)
	}
	if opt.Size.K < 2 && opt.Size.OutputRouting {
		return nil, fmt.Errorf("core: output routing needs K >= 2")
	}
	prefix := opt.KeyPrefix
	if prefix == "" {
		prefix = "keyinput"
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	nl := orig.Clone()
	res := &Result{Locked: nl, ScanEnable: opt.ScanEnable}

	replaced := map[string]bool{}
	for b := 0; b < opt.Blocks; b++ {
		gates, err := selectGates(nl, opt.Size.K, replaced, rng)
		if err != nil {
			return nil, fmt.Errorf("core: block %d: %w", b, err)
		}
		if err := insertBlock(res, nl, gates, opt.Size, prefix, opt.ScanEnable, rng); err != nil {
			return nil, fmt.Errorf("core: block %d: %w", b, err)
		}
		for _, g := range gates {
			replaced[nl.Gates[g].Name] = true
		}
	}
	nl.Prune()
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("core: locked netlist invalid: %w", err)
	}

	// Self-check: under the correct key the locked circuit must match
	// the original (random simulation; SAT equivalence is available in
	// the attack package for tests).
	bound, err := r0Apply(res)
	if err != nil {
		return nil, err
	}
	eq, cex, err := netlist.Equivalent(orig, bound, 12, 8, opt.Seed^0x5eed)
	if err != nil {
		return nil, err
	}
	if !eq {
		return nil, fmt.Errorf("core: internal error: locked circuit differs from original under correct key (cex %v)", cex)
	}
	return res, nil
}

func r0Apply(r *Result) (*netlist.Netlist, error) { return r.ApplyKey(r.Key) }

// ApplyKey specializes the locked netlist to a concrete key, returning
// a circuit with the original input signature.
func (r *Result) ApplyKey(key []bool) (*netlist.Netlist, error) {
	if len(key) != len(r.Key) {
		return nil, fmt.Errorf("core: key length %d, want %d", len(key), len(r.Key))
	}
	return r.Locked.BindInputs(r.KeyInputPos, key)
}

// ScanView returns the circuit the attacker actually observes through
// the scan chain: every LUT whose hidden MTJ_SE bit is 1 drives the
// inverted value when SE is asserted (paper §III-C). Without scan
// enable it is identical to the locked netlist.
func (r *Result) ScanView() (*netlist.Netlist, error) {
	if !r.ScanEnable {
		return r.Locked.Clone(), nil
	}
	c := r.Locked.Clone()
	for _, blk := range r.Blocks {
		for i, lutName := range blk.LUTOut {
			if !r.SEBits[blk.SEIdx[i]] {
				continue
			}
			id, ok := c.GateID(lutName)
			if !ok {
				return nil, fmt.Errorf("core: ScanView: missing LUT output %q", lutName)
			}
			inv := c.AddGate(c.FreshName(lutName+"_se"), netlist.Not, id)
			c.RedirectFanout(id, inv)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// selectGates picks k compatible 2-input gates at random: no selected
// gate's fanin may lie in the transitive fanout of another selected
// gate (this would close a combinational loop through the block).
func selectGates(nl *netlist.Netlist, k int, replaced map[string]bool, rng *rand.Rand) ([]int, error) {
	var candidates []int
	for id := range nl.Gates {
		g := &nl.Gates[id]
		if len(g.Fanin) != 2 || replaced[g.Name] {
			continue
		}
		if _, ok := gateFunc2(g.Type); !ok {
			continue
		}
		candidates = append(candidates, id)
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if sel := greedySelect(nl, candidates, k); len(sel) == k {
		return sel, nil
	}

	// Fallback: gates at the same logic level are always mutually
	// compatible (a level-L gate's fanins sit below level L, while its
	// transitive fanout sits above), so re-order candidates by distance
	// from the level richest in candidates and retry.
	levels, _, err := nl.Levels()
	if err != nil {
		return nil, err
	}
	byLevel := map[int]int{}
	for _, c := range candidates {
		byLevel[levels[c]]++
	}
	pivot, best := 0, 0
	for lv, cnt := range byLevel {
		if cnt > best || (cnt == best && lv < pivot) {
			pivot, best = lv, cnt
		}
	}
	ordered := append([]int(nil), candidates...)
	dist := func(c int) int {
		d := levels[c] - pivot
		if d < 0 {
			return -d
		}
		return d
	}
	sortByKey(ordered, dist)
	if sel := greedySelect(nl, ordered, k); len(sel) == k {
		return sel, nil
	}
	return nil, fmt.Errorf("%w: need %d", errNoCandidates, k)
}

// greedySelect keeps candidates compatible with all previously kept
// ones: no kept gate's fanin may lie in another kept gate's transitive
// fanout.
func greedySelect(nl *netlist.Netlist, candidates []int, k int) []int {
	var selected []int
	var fanins []int
	unionTFO := make([]bool, nl.NumGates())
	for _, cand := range candidates {
		if len(selected) == k {
			break
		}
		cf := nl.Gates[cand].Fanin
		if unionTFO[cf[0]] || unionTFO[cf[1]] || unionTFO[cand] {
			continue
		}
		candTFO := nl.TransitiveFanout(cand)
		ok := true
		for _, f := range fanins {
			if candTFO[f] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		selected = append(selected, cand)
		fanins = append(fanins, cf[0], cf[1])
		for i, b := range candTFO {
			if b {
				unionTFO[i] = true
			}
		}
	}
	return selected
}

// sortByKey sorts ints ascending by an integer key (stable enough for
// deterministic behaviour given a deterministic input order).
func sortByKey(s []int, key func(int) int) {
	sort.SliceStable(s, func(i, j int) bool { return key(s[i]) < key(s[j]) })
}

// insertBlock builds one RIL-Block over the selected gates and rewires
// the netlist.
func insertBlock(res *Result, nl *netlist.Netlist, gates []int, size Size, prefix string, scanEnable bool, rng *rand.Rand) error {
	k := size.K
	blk := BlockInfo{Size: size}
	addKey := func(val bool) int {
		name := fmt.Sprintf("%s%d", prefix, len(res.Key))
		pos := len(nl.Inputs)
		nl.AddInput(name)
		res.Key = append(res.Key, val)
		res.KeyNames = append(res.KeyNames, name)
		res.KeyInputPos = append(res.KeyInputPos, pos)
		return nl.MustGateID(name)
	}

	// Record the replaced gates.
	funcs := make([]logic.Func2, k)
	faninA := make([]int, k)
	faninB := make([]int, k)
	for i, id := range gates {
		g := &nl.Gates[id]
		f, ok := gateFunc2(g.Type)
		if !ok {
			return fmt.Errorf("gate %q type %s not LUT-replaceable", g.Name, g.Type)
		}
		funcs[i] = f
		faninA[i] = g.Fanin[0]
		faninB[i] = g.Fanin[1]
		blk.GateNames = append(blk.GateNames, g.Name)
		blk.GateFuncs = append(blk.GateFuncs, f)
		blk.FaninA = append(blk.FaninA, nl.Gates[g.Fanin[0]].Name)
		blk.FaninB = append(blk.FaninB, nl.Gates[g.Fanin[1]].Name)
	}

	// Choose routing keys at random; the LUT contents compensate.
	var inKeys, outKeys []bool
	if size.InputRouting {
		inKeys = randomBits(rng, BanyanSwitchCount(2*k))
	}
	if size.OutputRouting {
		outKeys = randomBits(rng, BanyanSwitchCount(k))
	}
	landedIn := identityPerm(2 * k)
	if size.InputRouting {
		var err error
		landedIn, err = BanyanPermute(2*k, inKeys)
		if err != nil {
			return err
		}
	}
	landedOut := identityPerm(k)
	if size.OutputRouting {
		var err error
		landedOut, err = BanyanPermute(k, outKeys)
		if err != nil {
			return err
		}
	}

	// Assign wires to input ports so that, under the chosen routing
	// keys, LUT l receives exactly the fanin pair of the gate whose
	// output position routes from l.
	portWire := make([]int, 2*k) // port -> wire gate id
	lutFunc := make([]logic.Func2, k)
	lutGate := make([]int, k) // which original gate each LUT serves
	for pos := 0; pos < k; pos++ {
		l := landedOut[pos] // the LUT arriving at block output pos
		lutGate[l] = pos
		a, b := faninA[pos], faninB[pos]
		f := funcs[pos]
		if rng.Intn(2) == 1 { // randomize pin order for key diversity
			a, b = b, a
			f = f.SwapInputs()
		}
		portWire[landedIn[2*l]] = a
		portWire[landedIn[2*l+1]] = b
		lutFunc[l] = f
	}

	// Materialize key inputs: input banyan, output banyan, LUT tables.
	inKeyIDs := make([]int, len(inKeys))
	for i, v := range inKeys {
		blk.InKeyPos = append(blk.InKeyPos, len(res.Key))
		inKeyIDs[i] = addKey(v)
	}
	outKeyIDs := make([]int, len(outKeys))
	for i, v := range outKeys {
		blk.OutKeyPos = append(blk.OutKeyPos, len(res.Key))
		outKeyIDs[i] = addKey(v)
	}
	lutKeyIDs := make([][4]int, k)
	for l := 0; l < k; l++ {
		bits := lutKeyBits(lutFunc[l])
		var pos [4]int
		var ids [4]int
		for j := 0; j < 4; j++ {
			pos[j] = len(res.Key)
			ids[j] = addKey(bits[j])
		}
		blk.LUTKeyPos = append(blk.LUTKeyPos, pos)
		lutKeyIDs[l] = ids
	}

	// Build the datapath.
	lines := make([]int, 2*k)
	copy(lines, portWire)
	if size.InputRouting {
		var err error
		lines, err = buildBanyan(nl, "rin", lines, inKeyIDs)
		if err != nil {
			return err
		}
		for _, id := range lines {
			blk.InNetOut = append(blk.InNetOut, nl.Gates[id].Name)
		}
	}
	lutOuts := make([]int, k)
	for l := 0; l < k; l++ {
		lutOuts[l] = buildLUT2(nl, fmt.Sprintf("lut%d", len(res.SEBits)+l), lines[2*l], lines[2*l+1], lutKeyIDs[l])
		blk.LUTOut = append(blk.LUTOut, nl.Gates[lutOuts[l]].Name)
	}
	outs := lutOuts
	if size.OutputRouting {
		var err error
		outs, err = buildBanyan(nl, "rout", outs, outKeyIDs)
		if err != nil {
			return err
		}
		for _, id := range outs {
			blk.OutNetOut = append(blk.OutNetOut, nl.Gates[id].Name)
		}
	}
	for pos, id := range gates {
		nl.RedirectFanout(id, outs[pos])
	}

	// Hidden scan-enable bits.
	if scanEnable {
		for l := 0; l < k; l++ {
			blk.SEIdx = append(blk.SEIdx, len(res.SEBits))
			res.SEBits = append(res.SEBits, rng.Intn(2) == 1)
		}
	}

	// Input-port wire names for later reconfiguration (recorded for all
	// geometries: without input routing port 2l/2l+1 feed LUT l
	// directly, in whatever pin order the lock chose).
	for _, w := range portWire {
		blk.PortWire = append(blk.PortWire, nl.Gates[w].Name)
	}
	res.Blocks = append(res.Blocks, blk)
	return nil
}

func randomBits(rng *rand.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
