package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func testCircuit(t *testing.T, inputs, outputs, gates int, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomProfile{
		Name: "t", Inputs: inputs, Outputs: outputs, Gates: gates, Locality: 0.7,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestParseSize(t *testing.T) {
	cases := map[string]Size{
		"2x2":   Size2x2,
		"8x8":   Size8x8,
		"8x8x8": Size8x8x8,
		"4x4x4": {K: 4, InputRouting: true, OutputRouting: true},
		"4x4":   {K: 4, InputRouting: true, OutputRouting: false},
	}
	for s, want := range cases {
		got, err := ParseSize(s)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSize(%q) = %+v, want %+v", s, got, want)
		}
	}
	for _, bad := range []string{"", "8", "8x4", "1x1", "axb", "8x8x8x8"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
	if Size2x2.String() != "2x2" || Size8x8.String() != "8x8" || Size8x8x8.String() != "8x8x8" {
		t.Error("Size.String mismatch")
	}
}

func TestBanyanPermuteIdentity(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		keys := make([]bool, BanyanSwitchCount(n))
		perm, err := BanyanPermute(n, keys)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range perm {
			if p != i {
				t.Errorf("n=%d: all-straight banyan is not identity at %d", n, i)
			}
		}
	}
}

func TestBanyanPermuteBijective(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{4, 8, 16} {
		for trial := 0; trial < 50; trial++ {
			keys := randomBits(rng, BanyanSwitchCount(n))
			perm, err := BanyanPermute(n, keys)
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, n)
			for _, p := range perm {
				if p < 0 || p >= n || seen[p] {
					t.Fatalf("n=%d not a permutation: %v", n, perm)
				}
				seen[p] = true
			}
		}
	}
}

func TestBanyanSwitchCount(t *testing.T) {
	if BanyanSwitchCount(8) != 12 { // (8/2)*3
		t.Errorf("BanyanSwitchCount(8) = %d, want 12", BanyanSwitchCount(8))
	}
	if BanyanSwitchCount(16) != 32 {
		t.Errorf("BanyanSwitchCount(16) = %d, want 32", BanyanSwitchCount(16))
	}
	if BanyanSwitchCount(3) != 0 {
		t.Error("non-power-of-two width should yield 0")
	}
}

// TestBanyanNetlistMatchesPermute drives the gate-level banyan with a
// one-hot input and checks the landed position against BanyanPermute.
func TestBanyanNetlistMatchesPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 8
	for trial := 0; trial < 20; trial++ {
		keys := randomBits(rng, BanyanSwitchCount(n))
		nl := netlist.New("banyan")
		lines := make([]int, n)
		for i := range lines {
			lines[i] = nl.AddInput(fmt.Sprintf("in%d", i))
		}
		keyIDs := make([]int, len(keys))
		for i := range keys {
			keyIDs[i] = nl.AddInput(fmt.Sprintf("k%d", i))
		}
		outs, err := buildBanyan(nl, "b", lines, keyIDs)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			nl.MarkOutput(o)
		}
		sim, err := netlist.NewSimulator(nl)
		if err != nil {
			t.Fatal(err)
		}
		perm, _ := BanyanPermute(n, keys)
		for hot := 0; hot < n; hot++ {
			in := make([]bool, n+len(keys))
			in[hot] = true
			for i, k := range keys {
				in[n+i] = k
			}
			out := sim.Eval(in)
			for j, v := range out {
				want := perm[j] == hot
				if v != want {
					t.Fatalf("trial %d hot %d: output %d = %v, want %v (perm %v)", trial, hot, j, v, want, perm)
				}
			}
		}
	}
}

func TestLockAllSizesEquivalentUnderCorrectKey(t *testing.T) {
	orig := testCircuit(t, 24, 12, 400, 11)
	for _, size := range []Size{Size2x2, Size8x8, Size8x8x8, {K: 4, InputRouting: true, OutputRouting: true}} {
		res, err := Lock(orig, Options{Blocks: 2, Size: size, Seed: 99})
		if err != nil {
			t.Fatalf("%s: %v", size, err)
		}
		// Lock self-checks equivalence; verify the key geometry too.
		want := TotalOverhead(size, 2).KeyBits
		if res.KeyBits() != want {
			t.Errorf("%s: key bits %d, want %d", size, res.KeyBits(), want)
		}
		if len(res.KeyInputPos) != res.KeyBits() || len(res.KeyNames) != res.KeyBits() {
			t.Errorf("%s: key bookkeeping inconsistent", size)
		}
		// Key inputs must be actual inputs of the locked netlist.
		for i, pos := range res.KeyInputPos {
			id := res.Locked.Inputs[pos]
			if res.Locked.Gates[id].Name != res.KeyNames[i] {
				t.Fatalf("%s: key input %d name mismatch", size, i)
			}
		}
	}
}

func TestLockWrongKeyCorrupts(t *testing.T) {
	orig := testCircuit(t, 24, 12, 400, 12)
	res, err := Lock(orig, Options{Blocks: 3, Size: Size8x8x8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	corrupted := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		wrong := append([]bool(nil), res.Key...)
		// Flip several random key bits.
		for f := 0; f < 5; f++ {
			wrong[rng.Intn(len(wrong))] = !wrong[rng.Intn(len(wrong))]
			i := rng.Intn(len(wrong))
			wrong[i] = !wrong[i]
		}
		bound, err := res.ApplyKey(wrong)
		if err != nil {
			t.Fatal(err)
		}
		c, err := netlist.OutputCorruptibility(orig, bound, 4, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if c > 0 {
			corrupted++
		}
	}
	if corrupted < trials/2 {
		t.Errorf("only %d/%d wrong keys corrupted outputs — locking too weak", corrupted, trials)
	}
}

func TestLockDeterministic(t *testing.T) {
	orig := testCircuit(t, 16, 8, 200, 3)
	a, err := Lock(orig, Options{Blocks: 1, Size: Size8x8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lock(orig, Options{Blocks: 1, Size: Size8x8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Key) != len(b.Key) {
		t.Fatal("nondeterministic key length")
	}
	for i := range a.Key {
		if a.Key[i] != b.Key[i] {
			t.Fatal("nondeterministic key")
		}
	}
	eq, _, err := netlist.Equivalent(a.Locked, b.Locked, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("nondeterministic locked netlist")
	}
}

func TestLockErrors(t *testing.T) {
	orig := testCircuit(t, 8, 4, 30, 1)
	if _, err := Lock(orig, Options{Blocks: 0, Size: Size2x2}); err == nil {
		t.Error("Blocks=0 accepted")
	}
	if _, err := Lock(orig, Options{Blocks: 1, Size: Size{K: 3, InputRouting: true}}); err == nil {
		t.Error("K=3 accepted")
	}
	// A tiny circuit cannot host many 8-LUT blocks.
	if _, err := Lock(orig, Options{Blocks: 50, Size: Size8x8x8, Seed: 1}); err == nil {
		t.Error("over-subscription accepted")
	}
}

func TestScanViewInvertsOnlyFlaggedLUTs(t *testing.T) {
	orig := testCircuit(t, 20, 10, 300, 8)
	res, err := Lock(orig, Options{Blocks: 2, Size: Size8x8, Seed: 21, ScanEnable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SEBits) != 16 {
		t.Fatalf("SEBits = %d, want 16", len(res.SEBits))
	}
	sv, err := res.ScanView()
	if err != nil {
		t.Fatal(err)
	}
	anySet := false
	for _, b := range res.SEBits {
		if b {
			anySet = true
		}
	}
	eq, _, err := netlist.Equivalent(res.Locked, sv, 0, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if anySet && eq {
		t.Error("scan view identical to locked netlist despite SE bits set")
	}
	if !anySet && !eq {
		t.Error("scan view differs with no SE bits set")
	}

	// Without scan enable, ScanView is the plain locked netlist.
	res2, err := Lock(orig, Options{Blocks: 1, Size: Size2x2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sv2, err := res2.ScanView()
	if err != nil {
		t.Fatal(err)
	}
	eq, _, _ = netlist.Equivalent(res2.Locked, sv2, 0, 8, 2)
	if !eq {
		t.Error("ScanView without ScanEnable must be identical")
	}
}

func TestMorphPreservesFunction(t *testing.T) {
	orig := testCircuit(t, 20, 10, 300, 14)
	res, err := Lock(orig, Options{Blocks: 2, Size: Size8x8x8, Seed: 31, ScanEnable: true})
	if err != nil {
		t.Fatal(err)
	}
	totalDelta := 0
	for epoch := 0; epoch < 5; epoch++ {
		stats := res.Morph(int64(epoch)*7+1, 12)
		totalDelta += stats.KeyBitsDelta
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			t.Fatal(err)
		}
		eq, cex, err := netlist.Equivalent(orig, bound, 12, 8, int64(epoch))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("epoch %d: morph broke functionality, cex=%v", epoch, cex)
		}
	}
	if totalDelta == 0 {
		t.Error("five morph epochs never changed the key — morphing inert")
	}
}

func TestMorphChangesKeyForRoutedBlocks(t *testing.T) {
	orig := testCircuit(t, 20, 10, 300, 15)
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8x8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]bool(nil), res.Key...)
	stats := res.Morph(123, 16)
	if stats.RoutingMoves == 0 {
		t.Error("no routing move found for an 8x8x8 block")
	}
	diff := 0
	for i := range before {
		if before[i] != res.Key[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("morph reported moves but key unchanged")
	}
}

func TestReconfigureRejectsIncompatibleRouting(t *testing.T) {
	orig := testCircuit(t, 20, 10, 300, 16)
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	blk := res.Blocks[0]
	// Flipping a FIRST-stage switch alone scrambles which wires pair up;
	// with high probability the LUT layer cannot compensate.
	inKeys := currentBits(res.Key, blk.InKeyPos)
	inKeys[0] = !inKeys[0]
	err = res.Reconfigure(0, inKeys, nil)
	if err == nil {
		// Possible only if the affected pair coincidentally matched;
		// the guaranteed-invalid case is checked with wrong lengths.
		t.Log("first-stage flip happened to be compensable")
	}
	if err := res.Reconfigure(0, inKeys[:3], nil); err == nil {
		t.Error("wrong input key length accepted")
	}
	if err := res.Reconfigure(0, inKeys, []bool{true}); err == nil {
		t.Error("output keys accepted for a block without output routing")
	}
}

func TestReconfigureLastStageAlwaysValid(t *testing.T) {
	orig := testCircuit(t, 20, 10, 300, 17)
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8x8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blk := res.Blocks[0]
	k := blk.Size.K
	stages, _ := banyanStages(2 * k)
	inKeys := currentBits(res.Key, blk.InKeyPos)
	outKeys := currentBits(res.Key, blk.OutKeyPos)
	for l := 0; l < k; l++ {
		sw := (stages-1)*k + l
		inKeys[sw] = !inKeys[sw]
		if err := res.Reconfigure(0, inKeys, outKeys); err != nil {
			t.Fatalf("last-stage switch %d flip rejected: %v", l, err)
		}
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			t.Fatal(err)
		}
		eq, cex, err := netlist.Equivalent(orig, bound, 0, 6, int64(l))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("last-stage flip %d broke function, cex=%v", l, cex)
		}
	}
}

func TestOverheadClaim(t *testing.T) {
	// Paper §III-A: 3 blocks of 8x8x8 cost ~3x less than 75 blocks of
	// 2x2 at equal (timeout-grade) SAT resistance.
	big := TotalOverhead(Size8x8x8, 3)
	small := TotalOverhead(Size2x2, 75)
	ratio := float64(small.Transistors) / float64(big.Transistors)
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("overhead ratio 75x(2x2)/3x(8x8x8) = %.2f, want ~3x", ratio)
	}
	if big.KeyBits != 3*(32+12+32) {
		t.Errorf("8x8x8 key bits per 3 blocks = %d, want %d", big.KeyBits, 3*76)
	}
	if small.KeyBits != 75*9 {
		t.Errorf("2x2 key bits per 75 blocks = %d, want %d", small.KeyBits, 75*9)
	}
}

func TestOverheadAggregation(t *testing.T) {
	orig := testCircuit(t, 20, 10, 300, 19)
	res, err := Lock(orig, Options{Blocks: 2, Size: Size8x8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Overhead()
	if o.Blocks != 2 || o.LUTs != 16 {
		t.Errorf("aggregate overhead %+v", o)
	}
	if o.KeyBits != res.KeyBits() {
		t.Errorf("overhead key bits %d != actual %d", o.KeyBits, res.KeyBits())
	}
}

func TestApplyKeyLengthCheck(t *testing.T) {
	orig := testCircuit(t, 16, 8, 200, 20)
	res, err := Lock(orig, Options{Blocks: 1, Size: Size2x2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ApplyKey(res.Key[:1]); err == nil {
		t.Error("short key accepted")
	}
}
