package core

import (
	"fmt"
	"math/rand"
)

// The paper's Scan-and-Shift defense (§IV-C): key values are stored in
// Secure Cells on a dedicated configuration chain whose scan-out is
// blocked, separate from the functional scan chain. An attacker who
// controls the scan interface can therefore shift key material *in*
// (to configure) but can never observe cell contents, and shifting the
// functional chain does not traverse the key cells at all.

// SecureCell is one key-holding MRAM cell on the configuration chain.
type SecureCell struct {
	value   bool
	KeyName string // which key bit this cell holds
}

// ScanChain models a scan chain as an ordered register.
type ScanChain struct {
	Name     string
	cells    []SecureCell
	scanOut  bool // whether shift-out exposes cell contents
	shiftIn  int  // statistics
	shiftOut int
}

// NewKeyChain builds the paper's secure configuration chain over the
// key bits of a lock result: shift-in only, scan-out blocked.
func NewKeyChain(r *Result) *ScanChain {
	c := &ScanChain{Name: "keychain", scanOut: false}
	for i, name := range r.KeyNames {
		c.cells = append(c.cells, SecureCell{value: r.Key[i], KeyName: name})
	}
	return c
}

// NewFunctionalChain builds an observable chain (the normal full-scan
// test chain over circuit state, which the SAT attack uses). It never
// contains key cells.
func NewFunctionalChain(name string, width int) *ScanChain {
	c := &ScanChain{Name: name, scanOut: true}
	c.cells = make([]SecureCell, width)
	return c
}

// Len returns the chain length.
func (c *ScanChain) Len() int { return len(c.cells) }

// ShiftIn clocks the bits into the chain (first bit ends up deepest).
func (c *ScanChain) ShiftIn(bits []bool) {
	for _, b := range bits {
		for i := len(c.cells) - 1; i > 0; i-- {
			c.cells[i].value = c.cells[i-1].value
		}
		c.cells[0].value = b
		c.shiftIn++
	}
}

// ShiftOut clocks the chain out. On the secure key chain the scan-out
// pin is gated: the attacker reads a constant stream regardless of the
// cell contents (paper §IV-C: "the scan out of this circuitry can be
// blocked"). The chain contents still rotate internally, so repeated
// shifting gains nothing.
func (c *ScanChain) ShiftOut(n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		last := c.cells[len(c.cells)-1].value
		for j := len(c.cells) - 1; j > 0; j-- {
			c.cells[j].value = c.cells[j-1].value
		}
		c.cells[0].value = false
		c.shiftOut++
		if c.scanOut {
			out[i] = last
		} else {
			out[i] = false // gated pin
		}
	}
	return out
}

// Values exposes the cell contents to the *owner* (not through the
// scan interface) — used to configure the LUTs.
func (c *ScanChain) Values() []bool {
	out := make([]bool, len(c.cells))
	for i, cell := range c.cells {
		out[i] = cell.value
	}
	return out
}

// ShiftAndScanAttack models the §IV-C attacker: load the key chain,
// then try to recover its contents through the scan interface. It
// returns the number of key bits the attacker learned (beyond the 50%
// a coin flip gets): 0 when the defense works.
func ShiftAndScanAttack(r *Result, seed int64) (learned int, err error) {
	if len(r.Key) == 0 {
		return 0, fmt.Errorf("core: empty key")
	}
	chain := NewKeyChain(r)
	// The attacker shifts the chain out and compares with the truth.
	leak := chain.ShiftOut(chain.Len())
	rng := rand.New(rand.NewSource(seed))
	correct := 0
	for i, b := range leak {
		if b == r.Key[i] {
			correct++
		}
	}
	// Baseline: guessing. The attacker "learned" only the margin above
	// random agreement; with a gated pin the stream is constant-zero,
	// so agreement equals the fraction of zero key bits — exactly what
	// guessing the majority symbol achieves, i.e. nothing secret.
	guess := 0
	for range leak {
		if rng.Intn(2) == 0 {
			guess++
		}
	}
	learned = correct - maxInt(guess, len(leak)-guess)
	if learned < 0 {
		learned = 0
	}
	return learned, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
