package core

import (
	"testing"

	"repro/internal/netlist"
)

func lockForChain(t *testing.T) *Result {
	t.Helper()
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "sc", Inputs: 16, Outputs: 8, Gates: 250, Locality: 0.7,
	}, 29)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestKeyChainHoldsKey(t *testing.T) {
	res := lockForChain(t)
	chain := NewKeyChain(res)
	if chain.Len() != res.KeyBits() {
		t.Fatalf("chain length %d, key bits %d", chain.Len(), res.KeyBits())
	}
	vals := chain.Values()
	for i, v := range vals {
		if v != res.Key[i] {
			t.Fatalf("cell %d holds %v, key bit is %v", i, v, res.Key[i])
		}
	}
}

func TestKeyChainScanOutGated(t *testing.T) {
	res := lockForChain(t)
	chain := NewKeyChain(res)
	leak := chain.ShiftOut(chain.Len())
	for i, b := range leak {
		if b {
			t.Fatalf("gated scan-out leaked a 1 at position %d", i)
		}
	}
}

func TestFunctionalChainObservable(t *testing.T) {
	chain := NewFunctionalChain("f", 8)
	pattern := []bool{true, false, true, true, false, false, true, false}
	chain.ShiftIn(pattern)
	out := chain.ShiftOut(8)
	// First bit shifted in is deepest, so it exits first.
	for i := range pattern {
		if out[i] != pattern[i] {
			t.Fatalf("functional chain out[%d] = %v, want %v (out=%v)", i, out[i], pattern[i], out)
		}
	}
}

func TestShiftInOrdering(t *testing.T) {
	chain := NewFunctionalChain("f", 3)
	chain.ShiftIn([]bool{true, false, true})
	vals := chain.Values()
	// cells[0] holds the most recent bit.
	want := []bool{true, false, true} // last in at 0, first in at 2
	if vals[0] != want[0] || vals[1] != want[1] || vals[2] != want[2] {
		t.Fatalf("chain state %v", vals)
	}
}

func TestShiftAndScanAttackDefeated(t *testing.T) {
	res := lockForChain(t)
	learned, err := ShiftAndScanAttack(res, 7)
	if err != nil {
		t.Fatal(err)
	}
	if learned > 0 {
		t.Errorf("shift-and-scan attacker learned %d key bits beyond guessing", learned)
	}
}
