package core

import (
	"fmt"
	"math"
)

// TRNG models the on-chip true-random-number generator that drives
// runtime morphing (the paper discusses TRNG-controlled dynamic
// morphing following [9]). The hardware entropy source is simulated as
// a jittery ring-oscillator sampler; the implementation is a
// deterministic xorshift whitened stream seeded per device, plus the
// standard online health tests (NIST SP 800-90B-style repetition and
// adaptive-proportion checks) a real integration would run before
// trusting the entropy.
type TRNG struct {
	state uint64
	// health-test state
	lastBit    bool
	runLength  int
	windowOnes int
	windowLen  int
	healthy    bool
	bitsDrawn  int
}

// NewTRNG seeds a device instance. A zero seed is remapped (xorshift
// has a fixed point at zero).
func NewTRNG(seed uint64) *TRNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &TRNG{state: seed, healthy: true}
}

// Bit draws one whitened bit and updates the health tests.
func (t *TRNG) Bit() bool {
	// xorshift64* generator.
	t.state ^= t.state >> 12
	t.state ^= t.state << 25
	t.state ^= t.state >> 27
	b := (t.state*0x2545F4914F6CDD1D)>>63 == 1

	// Repetition count test: a stuck source repeats one value.
	if t.bitsDrawn > 0 && b == t.lastBit {
		t.runLength++
		if t.runLength >= 32 {
			t.healthy = false
		}
	} else {
		t.runLength = 1
	}
	t.lastBit = b
	// Adaptive proportion over a 512-bit window.
	if b {
		t.windowOnes++
	}
	t.windowLen++
	if t.windowLen == 512 {
		if t.windowOnes < 160 || t.windowOnes > 352 {
			t.healthy = false
		}
		t.windowLen, t.windowOnes = 0, 0
	}
	t.bitsDrawn++
	return b
}

// Uint64 draws 64 bits.
func (t *TRNG) Uint64() uint64 {
	var v uint64
	for i := 0; i < 64; i++ {
		if t.Bit() {
			v |= 1 << i
		}
	}
	return v
}

// Healthy reports whether the online health tests have passed so far.
func (t *TRNG) Healthy() bool { return t.healthy }

// BitsDrawn returns the number of bits produced.
func (t *TRNG) BitsDrawn() int { return t.bitsDrawn }

// MonobitBias measures |P(1) - 0.5| over n fresh bits (an offline
// sanity statistic; should be ~0 for a healthy source).
func (t *TRNG) MonobitBias(n int) float64 {
	ones := 0
	for i := 0; i < n; i++ {
		if t.Bit() {
			ones++
		}
	}
	return math.Abs(float64(ones)/float64(n) - 0.5)
}

// MorphScheduler drives dynamic morphing from the TRNG: every epoch it
// draws a seed and applies one Morph pass, refusing to morph if the
// entropy source fails its health tests (a stuck TRNG must not walk
// the configuration into a predictable sequence).
type MorphScheduler struct {
	res    *Result
	trng   *TRNG
	tries  int
	epochs int
}

// NewMorphScheduler attaches a scheduler to a lock result.
func NewMorphScheduler(res *Result, trng *TRNG, triesPerEpoch int) (*MorphScheduler, error) {
	if triesPerEpoch < 1 {
		return nil, fmt.Errorf("core: triesPerEpoch must be >= 1")
	}
	return &MorphScheduler{res: res, trng: trng, tries: triesPerEpoch}, nil
}

// Epoch performs one morph epoch. It returns the morph statistics and
// whether the epoch ran (false when the TRNG is unhealthy).
func (m *MorphScheduler) Epoch() (MorphStats, bool) {
	if !m.trng.Healthy() {
		return MorphStats{}, false
	}
	seed := int64(m.trng.Uint64())
	stats := m.res.Morph(seed, m.tries)
	m.epochs++
	return stats, true
}

// Epochs returns how many epochs have run.
func (m *MorphScheduler) Epochs() int { return m.epochs }
