package core

import (
	"testing"

	"repro/internal/netlist"
)

func TestTRNGHealthyAndUnbiased(t *testing.T) {
	trng := NewTRNG(12345)
	bias := trng.MonobitBias(1 << 16)
	if bias > 0.01 {
		t.Errorf("monobit bias %v too large", bias)
	}
	if !trng.Healthy() {
		t.Error("healthy source flagged unhealthy")
	}
	if trng.BitsDrawn() != 1<<16 {
		t.Errorf("bits drawn %d", trng.BitsDrawn())
	}
}

func TestTRNGZeroSeedRemapped(t *testing.T) {
	trng := NewTRNG(0)
	// A zero-seeded xorshift would emit all zeros and trip the
	// repetition test; the remap must keep it alive.
	_ = trng.Uint64()
	if !trng.Healthy() {
		t.Error("zero seed not remapped")
	}
}

func TestTRNGUint64Varies(t *testing.T) {
	trng := NewTRNG(7)
	a, b := trng.Uint64(), trng.Uint64()
	if a == b {
		t.Error("consecutive words identical")
	}
	// Determinism per seed (device-identity property for tests).
	trng2 := NewTRNG(7)
	if trng2.Uint64() != a {
		t.Error("same seed produced different stream")
	}
}

func TestMorphSchedulerRunsEpochs(t *testing.T) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "ms", Inputs: 18, Outputs: 8, Gates: 300, Locality: 0.7,
	}, 61)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8x8, Seed: 62, ScanEnable: true})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewMorphScheduler(res, NewTRNG(99), 8)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for e := 0; e < 5; e++ {
		stats, ran := sched.Epoch()
		if !ran {
			t.Fatal("healthy TRNG refused an epoch")
		}
		changed += stats.KeyBitsDelta
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			t.Fatal(err)
		}
		eq, cex, err := netlist.Equivalent(orig, bound, 0, 6, int64(e))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("scheduled morph broke function at epoch %d, cex=%v", e, cex)
		}
	}
	if sched.Epochs() != 5 {
		t.Errorf("epochs = %d", sched.Epochs())
	}
	if changed == 0 {
		t.Error("five scheduled epochs never changed the key")
	}
}

func TestMorphSchedulerRefusesUnhealthyTRNG(t *testing.T) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "ms2", Inputs: 16, Outputs: 8, Gates: 250, Locality: 0.7,
	}, 63)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lock(orig, Options{Blocks: 1, Size: Size8x8, Seed: 64, ScanEnable: true})
	if err != nil {
		t.Fatal(err)
	}
	trng := NewTRNG(3)
	trng.healthy = false // simulate a failed entropy source
	sched, err := NewMorphScheduler(res, trng, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ran := sched.Epoch(); ran {
		t.Error("scheduler morphed with a failed entropy source")
	}
	if _, err := NewMorphScheduler(res, trng, 0); err == nil {
		t.Error("triesPerEpoch 0 accepted")
	}
}
