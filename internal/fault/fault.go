// Package fault provides single stuck-at fault simulation and
// random-pattern test coverage — the DFT substrate behind the paper's
// §III-C claim that scan-enable obfuscation "will not cause any errors
// during the test phase": the IP owner, knowing the MTJ_SE contents,
// de-corrupts the scan responses and retains full fault coverage,
// while an attacker reading raw scan data sees corrupted signatures.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault on a gate output.
type Fault struct {
	Gate  int  // gate ID whose output is faulty
	Stuck bool // stuck-at value
}

// String renders e.g. "g12/SA0".
func (f Fault) String() string {
	v := 0
	if f.Stuck {
		v = 1
	}
	return fmt.Sprintf("%d/SA%d", f.Gate, v)
}

// Enumerate lists the collapsed single stuck-at faults: two per gate
// output (inputs included — a stuck primary input is a real defect).
func Enumerate(nl *netlist.Netlist) []Fault {
	faults := make([]Fault, 0, 2*nl.NumGates())
	for id := range nl.Gates {
		switch nl.Gates[id].Type {
		case netlist.Const0, netlist.Const1:
			continue // stuck constants are redundant by construction
		}
		faults = append(faults, Fault{Gate: id, Stuck: false}, Fault{Gate: id, Stuck: true})
	}
	return faults
}

// Simulator performs bit-parallel fault simulation: 64 patterns per
// word, full re-simulation per fault with the faulty node forced.
type Simulator struct {
	nl    *netlist.Netlist
	order []int
	good  []uint64
	vals  []uint64
}

// NewSimulator prepares fault simulation for the netlist.
func NewSimulator(nl *netlist.Netlist) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Simulator{
		nl:    nl,
		order: order,
		good:  make([]uint64, nl.NumGates()),
		vals:  make([]uint64, nl.NumGates()),
	}, nil
}

// evalInto runs 64 patterns, forcing gate `force` to `val` when
// force >= 0, writing node values into dst and returning the outputs.
func (s *Simulator) evalInto(dst []uint64, in []uint64, force int, val uint64) []uint64 {
	n := s.nl
	for i, id := range n.Inputs {
		dst[id] = in[i]
	}
	for _, id := range s.order {
		g := &n.Gates[id]
		var v uint64
		switch g.Type {
		case netlist.Input:
			v = dst[id]
		case netlist.Const0:
			v = 0
		case netlist.Const1:
			v = ^uint64(0)
		case netlist.Not:
			v = ^dst[g.Fanin[0]]
		case netlist.Buf:
			v = dst[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v = dst[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v &= dst[f]
			}
			if g.Type == netlist.Nand {
				v = ^v
			}
		case netlist.Or, netlist.Nor:
			v = dst[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v |= dst[f]
			}
			if g.Type == netlist.Nor {
				v = ^v
			}
		case netlist.Xor, netlist.Xnor:
			v = dst[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v ^= dst[f]
			}
			if g.Type == netlist.Xnor {
				v = ^v
			}
		case netlist.Mux:
			sel := dst[g.Fanin[0]]
			v = (dst[g.Fanin[1]] &^ sel) | (dst[g.Fanin[2]] & sel)
		}
		if id == force {
			v = val
		}
		dst[id] = v
	}
	out := make([]uint64, len(n.Outputs))
	for i, id := range n.Outputs {
		out[i] = dst[id]
	}
	return out
}

// DetectBatch simulates 64 patterns and reports which of the given
// faults are detected (some output differs from the good machine on at
// least one pattern). validMask limits which pattern bits count.
func (s *Simulator) DetectBatch(in []uint64, validMask uint64, faults []Fault, detected []bool) {
	goodOut := append([]uint64(nil), s.evalInto(s.good, in, -1, 0)...)
	for fi, f := range faults {
		if detected[fi] {
			continue
		}
		var forced uint64
		if f.Stuck {
			forced = ^uint64(0)
		}
		// Cheap screen: the fault site's good value must differ from
		// the forced value on some valid pattern, or nothing activates.
		if (s.good[f.Gate]^forced)&validMask == 0 {
			continue
		}
		badOut := s.evalInto(s.vals, in, f.Gate, forced)
		for i := range goodOut {
			if (goodOut[i]^badOut[i])&validMask != 0 {
				detected[fi] = true
				break
			}
		}
	}
}

// CoverageResult summarizes a fault-simulation campaign.
type CoverageResult struct {
	Total    int
	Detected int
	Patterns int
}

// Coverage returns the fraction of faults detected.
func (r CoverageResult) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

func (r CoverageResult) String() string {
	return fmt.Sprintf("%d/%d faults (%.1f%%) detected with %d patterns",
		r.Detected, r.Total, r.Coverage()*100, r.Patterns)
}

// RandomPatternCoverage measures single stuck-at coverage under
// nPatterns random test patterns.
func RandomPatternCoverage(nl *netlist.Netlist, nPatterns int, seed int64) (CoverageResult, error) {
	sim, err := NewSimulator(nl)
	if err != nil {
		return CoverageResult{}, err
	}
	faults := Enumerate(nl)
	detected := make([]bool, len(faults))
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, len(nl.Inputs))
	done := 0
	for done < nPatterns {
		batch := nPatterns - done
		if batch > 64 {
			batch = 64
		}
		var mask uint64 = ^uint64(0)
		if batch < 64 {
			mask = 1<<uint(batch) - 1
		}
		for i := range in {
			in[i] = rng.Uint64()
		}
		sim.DetectBatch(in, mask, faults, detected)
		done += batch
	}
	res := CoverageResult{Total: len(faults), Patterns: nPatterns}
	for _, d := range detected {
		if d {
			res.Detected++
		}
	}
	return res, nil
}

// CoverageWithPatterns measures coverage for explicit pattern sets
// (each pattern a []bool over the inputs) — used to replay a designer
// test set against a locked or corrupted design.
func CoverageWithPatterns(nl *netlist.Netlist, patterns [][]bool) (CoverageResult, error) {
	sim, err := NewSimulator(nl)
	if err != nil {
		return CoverageResult{}, err
	}
	faults := Enumerate(nl)
	detected := make([]bool, len(faults))
	in := make([]uint64, len(nl.Inputs))
	for base := 0; base < len(patterns); base += 64 {
		n := len(patterns) - base
		if n > 64 {
			n = 64
		}
		for i := range in {
			var w uint64
			for b := 0; b < n; b++ {
				if patterns[base+b][i] {
					w |= 1 << uint(b)
				}
			}
			in[i] = w
		}
		var mask uint64 = ^uint64(0)
		if n < 64 {
			mask = 1<<uint(n) - 1
		}
		sim.DetectBatch(in, mask, faults, detected)
	}
	res := CoverageResult{Total: len(faults), Patterns: len(patterns)}
	for _, d := range detected {
		if d {
			res.Detected++
		}
	}
	return res, nil
}
