package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
)

func fullAdder(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("fa")
	a := n.AddInput("a")
	b := n.AddInput("b")
	cin := n.AddInput("cin")
	axb := n.AddGate("axb", netlist.Xor, a, b)
	sum := n.AddGate("sum", netlist.Xor, axb, cin)
	ab := n.AddGate("ab", netlist.And, a, b)
	cx := n.AddGate("cx", netlist.And, axb, cin)
	cout := n.AddGate("cout", netlist.Or, ab, cx)
	n.MarkOutput(sum)
	n.MarkOutput(cout)
	return n
}

func exhaustivePatterns(n int) [][]bool {
	out := make([][]bool, 1<<n)
	for p := range out {
		row := make([]bool, n)
		for i := range row {
			row[i] = p&(1<<i) != 0
		}
		out[p] = row
	}
	return out
}

func TestFullAdderFullCoverage(t *testing.T) {
	nl := fullAdder(t)
	res, err := CoverageWithPatterns(nl, exhaustivePatterns(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("full adder exhaustive coverage %.2f, want 1.0 (%s)", res.Coverage(), res)
	}
	if res.Total != 16 { // 8 fault sites x 2 polarities
		t.Errorf("fault universe %d, want 16", res.Total)
	}
}

func TestRedundantFaultUndetectable(t *testing.T) {
	// y = a OR (a AND NOT a): the AND output is constant 0, so its
	// SA0 fault can never be detected.
	n := netlist.New("red")
	a := n.AddInput("a")
	na := n.AddGate("na", netlist.Not, a)
	and := n.AddGate("and", netlist.And, a, na)
	y := n.AddGate("y", netlist.Or, a, and)
	n.MarkOutput(y)
	res, err := CoverageWithPatterns(n, exhaustivePatterns(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() == 1.0 {
		t.Error("redundant fault reported detected")
	}
	_, _ = and, y
}

func TestRandomPatternCoverageGrowsWithPatterns(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomProfile{
		Name: "f", Inputs: 16, Outputs: 8, Gates: 300, Locality: 0.6,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	few, err := RandomPatternCoverage(nl, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RandomPatternCoverage(nl, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if many.Detected < few.Detected {
		t.Errorf("coverage shrank with more patterns: %s vs %s", few, many)
	}
	if many.Coverage() < 0.7 {
		t.Errorf("512 random patterns cover only %.2f — simulator suspicious", many.Coverage())
	}
}

func TestLockedCircuitRemainsTestable(t *testing.T) {
	// §III-C: with the correct key installed (and the SE contents
	// known), the locked design is as testable as the original.
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "t", Inputs: 16, Outputs: 8, Gates: 300, Locality: 0.6,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: 10, ScanEnable: true})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	origCov, err := RandomPatternCoverage(orig, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	lockCov, err := RandomPatternCoverage(bound, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lockCov.Coverage() < origCov.Coverage()-0.15 {
		t.Errorf("locking collapsed coverage: %s -> %s", origCov, lockCov)
	}

	// Scan-mode view (SE asserted): inversions do not reduce
	// detectability — the designer de-corrupts responses.
	sv, err := res.ScanView()
	if err != nil {
		t.Fatal(err)
	}
	svBound, err := sv.BindInputs(res.KeyInputPos, res.Key)
	if err != nil {
		t.Fatal(err)
	}
	scanCov, err := RandomPatternCoverage(svBound, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if scanCov.Coverage() < lockCov.Coverage()-0.1 {
		t.Errorf("scan-enable layer collapsed coverage: %s -> %s", lockCov, scanCov)
	}
}

func TestEnumerateSkipsConstants(t *testing.T) {
	n := netlist.New("c")
	a := n.AddInput("a")
	c0 := n.AddGate("c0", netlist.Const0)
	g := n.AddGate("g", netlist.Or, a, c0)
	n.MarkOutput(g)
	faults := Enumerate(n)
	for _, f := range faults {
		if f.Gate == c0 {
			t.Error("constant gate enumerated as fault site")
		}
	}
	if len(faults) != 4 { // a, g x 2 polarities
		t.Errorf("fault count %d, want 4", len(faults))
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Gate: 12, Stuck: true}
	if f.String() != "12/SA1" {
		t.Errorf("String = %q", f.String())
	}
}
