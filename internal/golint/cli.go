package golint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Main is the rilvet CLI entry point, shared by cmd/rilvet and its
// deprecated alias cmd/repolint. The exit-code contract matches
// cmd/netlint: 0 when no unsuppressed finding was produced, 1 when at
// least one was, 2 on usage, I/O or parse failure.
//
// Usage:
//
//	rilvet [flags] <path ...>
//
// Each path may be a package directory, a Go-style dir/... pattern,
// or a single .go file (its package is linted). testdata, vendor and
// hidden directories are skipped, _test.go files are exempt unless
// -tests is given.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rilvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut        = fs.Bool("json", false, "emit machine-readable JSON (findings keyed by rule/file/line)")
		sarifPath      = fs.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
		names          = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		disable        = fs.String("disable", "", "comma-separated analyzers to disable")
		list           = fs.Bool("list", false, "list available analyzers and exit")
		showSuppressed = fs.Bool("show-suppressed", false, "include suppressed findings in text output")
		includeTests   = fs.Bool("tests", false, "also lint _test.go files")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "rilvet: no input paths (try: rilvet ./...)")
		return 2
	}

	analyzers := All()
	var err error
	if *names != "" {
		analyzers, err = ByName(splitList(*names)...)
		if err != nil {
			return fail(stderr, err)
		}
	}
	if *disable != "" {
		drop := map[string]bool{}
		for _, name := range splitList(*disable) {
			if !KnownRule(name) {
				return fail(stderr, fmt.Errorf("golint: unknown analyzer %q", name))
			}
			drop[name] = true
		}
		var kept []*Analyzer
		for _, a := range analyzers {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		return fail(stderr, fmt.Errorf("golint: every analyzer is disabled"))
	}

	opts := Options{IncludeTests: *includeTests}
	dirs, err := ExpandDirs(fs.Args())
	if err != nil {
		return fail(stderr, err)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "rilvet: no Go packages matched")
		return 2
	}

	loader := NewLoader(opts)
	failed := false
	var results []*Result
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return fail(stderr, err)
		}
		if pkg == nil {
			continue
		}
		res, err := Run(pkg, opts, analyzers...)
		if err != nil {
			return fail(stderr, err)
		}
		if len(res.Unsuppressed()) > 0 {
			failed = true
		}
		results = append(results, res)
		if !*jsonOut {
			if err := res.WriteText(stdout, *showSuppressed); err != nil {
				return fail(stderr, err)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return fail(stderr, err)
		}
	}
	if *sarifPath != "" {
		w := stdout
		if *sarifPath != "-" {
			f, err := os.Create(*sarifPath)
			if err != nil {
				return fail(stderr, err)
			}
			werr := WriteSARIF(f, results)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fail(stderr, werr)
			}
		} else if err := WriteSARIF(w, results); err != nil {
			return fail(stderr, err)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "rilvet:", err)
	return 2
}
