package golint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := Main(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCLIExitCodeContract(t *testing.T) {
	clean := filepath.Join("testdata", "src", "clean")
	bad := filepath.Join("testdata", "src", "rand-global")

	if code, _, _ := runCLI(t, clean); code != 0 {
		t.Errorf("clean package: exit %d, want 0", code)
	}
	if code, out, _ := runCLI(t, bad); code != 1 {
		t.Errorf("package with findings: exit %d, want 1\n%s", code, out)
	}
	if code, _, _ := runCLI(t); code != 2 {
		t.Errorf("no paths: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, filepath.Join("testdata", "no-such-dir")); code != 2 {
		t.Errorf("missing path: exit %d, want 2", code)
	}
	if code, _, stderr := runCLI(t, "-analyzers", "nope", clean); code != 2 ||
		!strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("unknown analyzer: exit %d stderr %q, want 2", code, stderr)
	}
	if code, _, _ := runCLI(t, "-disable", "nope", clean); code != 2 {
		t.Errorf("disabling unknown analyzer: exit %d, want 2", code)
	}

	var all []string
	for _, a := range All() {
		all = append(all, a.Name)
	}
	if code, _, _ := runCLI(t, "-disable", strings.Join(all, ","), clean); code != 2 {
		t.Errorf("everything disabled: exit %d, want 2", code)
	}

	// A syntactically broken file is an exit-2 parse failure, not a
	// finding.
	broken := t.TempDir()
	if err := os.WriteFile(filepath.Join(broken, "broken.go"), []byte("package {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, broken); code != 2 {
		t.Errorf("parse failure: exit %d, want 2", code)
	}
}

func TestCLIDisableTurnsFindingsOff(t *testing.T) {
	bad := filepath.Join("testdata", "src", "rand-global")
	if code, _, _ := runCLI(t, "-disable", "rand-global", bad); code != 0 {
		t.Errorf("with the only firing analyzer disabled: exit %d, want 0", code)
	}
	if code, _, _ := runCLI(t, "-analyzers", "sync-errcheck", bad); code != 0 {
		t.Errorf("with a non-firing analyzer selected: exit %d, want 0", code)
	}
}

func TestCLIList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, a := range All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

func TestCLIJSON(t *testing.T) {
	code, out, _ := runCLI(t, "-json", filepath.Join("testdata", "src", "rand-global"))
	if code != 1 {
		t.Fatalf("-json over findings: exit %d, want 1", code)
	}
	var results []Result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(results) != 1 || len(results[0].Findings) == 0 {
		t.Fatalf("-json output has no findings: %s", out)
	}
	for _, f := range results[0].Findings {
		if f.Rule == "" || f.File == "" || f.Line == 0 {
			t.Errorf("finding not keyed by rule/file/line: %+v", f)
		}
	}
}

func TestCLISARIF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.sarif")
	code, _, _ := runCLI(t, "-sarif", path, filepath.Join("testdata", "src", "suppress"))
	if code != 1 {
		t.Fatalf("-sarif over findings: exit %d, want 1", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID       string `json:"ruleId"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rilvet" || len(run.Tool.Driver.Rules) == 0 {
		t.Errorf("SARIF driver metadata incomplete: %+v", run.Tool.Driver)
	}
	var suppressedResults int
	for _, r := range run.Results {
		if r.RuleID == "" {
			t.Errorf("SARIF result without ruleId")
		}
		for _, s := range r.Suppressions {
			if s.Kind != "inSource" {
				t.Errorf("SARIF suppression kind = %q, want inSource", s.Kind)
			}
			suppressedResults++
		}
	}
	if len(run.Results) == 0 || suppressedResults == 0 {
		t.Errorf("SARIF results missing (total=%d suppressed=%d)", len(run.Results), suppressedResults)
	}
}

// TestSelfLint runs rilvet over its own package: the linter must hold
// itself to the invariants it enforces on the rest of the repo.
func TestSelfLint(t *testing.T) {
	code, out, errout := runCLI(t, ".")
	if code != 0 {
		t.Fatalf("rilvet is not self-clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errout)
	}
}
