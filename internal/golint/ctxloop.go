package golint

import (
	"go/ast"
	"go/token"
)

// CtxLoop requires exported functions containing unbounded loops
// (`for {`, or `for true {`) to be cancellable: either the function
// takes a context.Context parameter, or it observably consults one —
// ctx.Err()/ctx.Done() checks, or threading a context-typed value
// into a callee (the solver's SetContext/abort-poll pattern counts).
// The DIP iteration and the sweep drain are exactly such loops; a
// long-running daemon cannot afford an entry point that spins until
// the solver feels like converging with no way to call it back.
// Unexported functions are not checked — internal helpers inherit
// cancellation from their exported callers.
var CtxLoop = &Analyzer{
	Name: "ctx-loop",
	Doc:  "require exported functions with unbounded loops to be cancellable via context",
	Run:  runCtxLoop,
}

func runCtxLoop(p *Pass) error {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			loopPos := firstUnboundedLoop(fn.Body)
			if loopPos == token.NoPos {
				continue
			}
			if referencesContext(p, fn) {
				continue
			}
			p.Report(loopPos,
				"exported %s contains an unbounded loop but neither accepts a context.Context nor consults one; long-running work must be cancellable",
				fn.Name.Name)
		}
	}
	return nil
}

// firstUnboundedLoop returns the position of the first `for {` or
// `for true {` loop in the body (including nested blocks, excluding
// nested function literals), or NoPos.
func firstUnboundedLoop(body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Cond == nil {
			pos = loop.For
			return false
		}
		if ident, ok := loop.Cond.(*ast.Ident); ok && ident.Name == "true" {
			pos = loop.For
			return false
		}
		return true
	})
	return pos
}

// referencesContext reports whether fn takes a context.Context
// parameter or lexically uses any context-typed expression
// (identifier, field selector, or call argument) — evidence that the
// function participates in a cancellation scheme.
func referencesContext(p *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if isContextType(p.TypeOf(field.Type)) || isContextTypeExpr(field.Type) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isContextType(p.TypeOf(expr)) || isContextTypeExpr(expr) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextTypeExpr is the syntactic fallback when type information
// is unavailable: the literal selector context.Context, or an
// identifier named ctx.
func isContextTypeExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		if pkg, ok := v.X.(*ast.Ident); ok {
			return pkg.Name == "context" && v.Sel.Name == "Context"
		}
	case *ast.Ident:
		return v.Name == "ctx"
	}
	return false
}
