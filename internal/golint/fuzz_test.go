package golint

import (
	"strings"
	"testing"
)

// FuzzSuppressionParse asserts the suppression grammar's invariants
// over arbitrary comment text: the parser never panics, err implies
// ok (only a recognized suppression can be malformed), and a
// successful parse always yields at least one non-empty rule and a
// trimmed non-empty reason.
func FuzzSuppressionParse(f *testing.F) {
	for _, seed := range []string{
		"rilvet:ignore rand-global deliberate demo seed",
		"rilvet:ignore map-order,ctx-loop two rules one reason",
		"rilvet:ignore rand-global",
		"rilvet:ignore",
		"rilvet:ignore  \t ",
		"  rilvet:ignore sync-errcheck trailing spaces  ",
		"rilvet:ignoreX not a suppression",
		"rilvet:ignore ,, empty names",
		"just a comment",
		"",
		"rilvet:ignore \x00 weird bytes",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, ok, err := ParseSuppression(text)
		if err != nil && !ok {
			t.Fatalf("err without ok for %q: %v", text, err)
		}
		if !ok || err != nil {
			if len(s.Rules) != 0 || s.Reason != "" {
				t.Fatalf("failed parse of %q leaked a partial result: %+v", text, s)
			}
			return
		}
		if len(s.Rules) == 0 {
			t.Fatalf("ok parse of %q yielded no rules", text)
		}
		for _, r := range s.Rules {
			if r == "" || strings.ContainsAny(r, " \t\n") {
				t.Fatalf("ok parse of %q yielded malformed rule %q", text, r)
			}
		}
		if s.Reason == "" || s.Reason != strings.TrimSpace(s.Reason) {
			t.Fatalf("ok parse of %q yielded untrimmed/empty reason %q", text, s.Reason)
		}
	})
}
