// Package golint — working name rilvet — is a static analysis
// framework for this repository's own Go source, the sibling of
// internal/netlint: netlint enforces invariants of the *netlists* the
// tools produce, rilvet enforces invariants of the *Go code* that
// produces them. Both follow the go/analysis driver pattern — each
// check is an *Analyzer with a name, a doc string and a Run function;
// a driver runs a configurable set of analyzers over one loaded
// package and aggregates Findings with deterministic ordering and
// text, JSON and SARIF output.
//
// The analyzers encode correctness properties the reproduction's
// headline guarantees depend on, not general style:
//
//   - rand-global: no math/rand global source in non-test code, so
//     every simulation, attack and fuzz reproduction is replayable
//     from a logged seed (folded in from the former cmd/repolint).
//   - map-order: no map iteration order leaking into slices, writer
//     output or hashes without an intervening sort — the sweep
//     runner's deterministic result order and the journal's
//     bit-identical replay both die by nondeterministic iteration.
//   - time-seed: no wall clock feeding seed material in the
//     determinism-critical packages (attack, sweep, netlist, report).
//   - sync-errcheck: no discarded (*os.File).Sync/Close error on a
//     write path — the crash-safety story of the DIP journal and the
//     sweep checkpoint manifest is only as strong as the weakest
//     unchecked close.
//   - ctx-loop: exported functions with unbounded loops must be
//     cancellable (accept a context or observably check one).
//   - goroutine-hygiene: goroutine literals must not leak panics past
//     the sweep's isolation, and channel sends in cancellable loops
//     must select on ctx/done.
//   - mutex-oracle: no mutex held across a call into the attack
//     oracle/solver entry points, where a single query can run for
//     seconds and a held lock serializes the whole sweep pool.
//
// False positives are silenced per line with a mandatory-reason
// suppression comment:
//
//	//rilvet:ignore <rule>[,<rule>] <reason>
//
// on the finding's line or alone on the line above. A suppression
// without a reason, or naming an unknown rule, is itself a finding
// (rule "suppress") that cannot be suppressed. See DESIGN.md §11 for
// the two-layer lint architecture and the suppression policy.
//
// rilvet is built on the standard library only (go/parser, go/types,
// go/importer) — it must keep working in the dependency-free build
// environment, so golang.org/x/tools is off limits.
package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Analyzer is one static check, in the style of go/analysis and
// internal/netlint: Run inspects the loaded package in *Pass and
// reports findings through Pass.Report. A non-nil error from Run means
// the analyzer itself failed (a driver problem, not a code finding)
// and aborts the whole run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Finding is one diagnostic of one analyzer, keyed by rule, file and
// line. Suppressed findings are retained (JSON consumers and
// -show-suppressed see them) but do not affect the exit code.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Suppressed marks a finding silenced by a //rilvet:ignore
	// comment; Reason carries the comment's mandatory justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.Reason)
	}
	return s
}

// Options configures a driver run.
type Options struct {
	// IncludeTests lints _test.go files too. Off by default: the
	// invariants guard production determinism and durability; tests
	// legitimately use the patterns the analyzers forbid.
	IncludeTests bool
	// DeterminismPkgs restricts the time-seed analyzer to packages
	// whose import path contains one of these substrings. Empty means
	// the repo's determinism-critical set: internal/attack,
	// internal/sweep, internal/netlist, internal/report.
	DeterminismPkgs []string
	// DurableTypes lists named types (as "pkgpath.Type") whose Close
	// error must always be observed, wherever the value came from.
	// Empty means the repo's durable writers: the attack DIP journal.
	DurableTypes []string
}

func (o Options) determinismPkgs() []string {
	if len(o.DeterminismPkgs) > 0 {
		return o.DeterminismPkgs
	}
	return []string{"internal/attack", "internal/sweep", "internal/netlist", "internal/report"}
}

func (o Options) durableTypes() []string {
	if len(o.DurableTypes) > 0 {
		return o.DurableTypes
	}
	return []string{"repro/internal/attack.Journal"}
}

// Pass carries one analyzer's view of one loaded package: the file
// set, the parsed files, best-effort type information, and the
// reporting sink.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Path is the package's import-ish path (the directory as given
	// to the loader); used by analyzers that scope themselves to
	// particular packages.
	Path string
	// Pkg and Info hold go/types results. Type checking is
	// best-effort: on a type-check failure Info's maps are partially
	// populated and TypesErr records the first error. Analyzers must
	// degrade gracefully (treat unknown types as "not a match").
	Pkg      *types.Package
	Info     *types.Info
	TypesErr error
	Opts     Options

	analyzer string
	findings []Finding
}

// Report records a finding at pos under the running analyzer's rule.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.ReportRule(p.analyzer, pos, format, args...)
}

// ReportRule records a finding under an explicit rule name (the driver
// uses it for the synthetic "suppress" rule).
func (p *Pass) ReportRule(rule string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Rule:    rule,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil when type information is
// unavailable.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(expr)
}

// ObjectOf resolves an identifier to its object (definition or use),
// or nil.
func (p *Pass) ObjectOf(ident *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.ObjectOf(ident); obj != nil {
		return obj
	}
	return nil
}

// IsType reports whether expr's type (after pointer indirection)
// prints as the given qualified name, e.g. "os.File" or
// "sync.Mutex".
func (p *Pass) IsType(expr ast.Expr, qualified string) bool {
	return typeIs(p.TypeOf(expr), qualified)
}

// typeIs matches t (after pointer indirection) against a
// "pkgpath.Name"-suffixed qualified type name.
func typeIs(t types.Type, qualified string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == qualified || strings.HasSuffix(full, "/"+qualified)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// Result aggregates one driver run over one package.
type Result struct {
	Package   string    `json:"package"`
	Analyzers []string  `json:"analyzers"`
	Findings  []Finding `json:"findings"`
}

// Unsuppressed returns the findings not silenced by a suppression
// comment — the ones that gate the exit code.
func (r *Result) Unsuppressed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// WriteText renders the result human-readably, one finding per line.
// Suppressed findings are included only when showSuppressed is set.
func (r *Result) WriteText(w io.Writer, showSuppressed bool) error {
	for _, f := range r.Findings {
		if f.Suppressed && !showSuppressed {
			continue
		}
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// Determinism returns the analyzers guarding replayability: no global
// rand, no map-order leaks, no wall-clock seeds.
func Determinism() []*Analyzer {
	return []*Analyzer{RandGlobal, MapOrder, TimeSeed}
}

// Concurrency returns the analyzers guarding the sweep pool and the
// future serving daemon: cancellable loops, hygienic goroutines, no
// locks held across oracle calls.
func Concurrency() []*Analyzer {
	return []*Analyzer{CtxLoop, GoroutineHygiene, MutexOracle}
}

// Durability returns the analyzers guarding the crash-safety layer:
// checked Sync/Close on write paths.
func Durability() []*Analyzer {
	return []*Analyzer{SyncErrcheck}
}

// All returns every built-in analyzer, sorted by name.
func All() []*Analyzer {
	as := append(append(Determinism(), Concurrency()...), Durability()...)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves analyzer names against the built-in set.
func ByName(names ...string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("golint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// KnownRule reports whether name is a built-in analyzer name or the
// synthetic "suppress" rule.
func KnownRule(name string) bool {
	if name == SuppressRule {
		return true
	}
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Run executes the analyzers (all of them when none are given) over
// one loaded package and returns the aggregated, deterministically
// sorted result. Findings are ordered by (file, line, col, rule,
// message); each distinct finding is reported once even when an
// analyzer is registered twice, mirroring internal/netlint.Run.
// Suppression comments are applied after analysis: matching findings
// are marked Suppressed, malformed suppressions become findings of
// the synthetic "suppress" rule.
func Run(pkg *Package, opts Options, analyzers ...*Analyzer) (*Result, error) {
	if len(analyzers) == 0 {
		analyzers = All()
	}
	pass := &Pass{
		Fset: pkg.Fset, Files: pkg.Files, Path: pkg.Path,
		Pkg: pkg.Types, Info: pkg.Info, TypesErr: pkg.TypesErr,
		Opts: opts,
	}
	res := &Result{Package: pkg.Path}
	ran := map[string]bool{}
	for _, a := range analyzers {
		if ran[a.Name] {
			continue // double registration: run and report once
		}
		ran[a.Name] = true
		pass.analyzer = a.Name
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("golint: analyzer %s: %w", a.Name, err)
		}
		res.Analyzers = append(res.Analyzers, a.Name)
	}
	applySuppressions(pass, pkg)
	sort.SliceStable(pass.findings, func(i, j int) bool {
		a, b := pass.findings[i], pass.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	sort.Strings(res.Analyzers)
	res.Findings = dedupeFindings(pass.findings)
	return res, nil
}

// dedupeFindings drops adjacent duplicates of the (rule, file, line,
// col, message) identity from a sorted finding list.
func dedupeFindings(fs []Finding) []Finding {
	out := fs[:0]
	for _, f := range fs {
		if len(out) > 0 {
			prev := out[len(out)-1]
			if f.Rule == prev.Rule && f.File == prev.File && f.Line == prev.Line &&
				f.Col == prev.Col && f.Message == prev.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}
