package golint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness follows the analysistest convention: a fixture
// line carries a `// want "substr" ["substr" ...]` comment naming one
// expected finding per quoted substring, matched against the finding
// messages reported on that line. Every finding must be wanted and
// every want must be found.

var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// parseWants extracts the // want expectations from every .go file in
// a fixture directory.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(raw), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			matches := wantQuoted.FindAllStringSubmatch(line[idx:], -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: // want marker with no quoted expectation", path, i+1)
			}
			for _, m := range matches {
				wants = append(wants, &expectation{file: path, line: i + 1, substr: m[1]})
			}
		}
	}
	return wants
}

// loadFixture loads one fixture package, failing the test on parse or
// type-check errors — fixtures must stay compile-valid so the
// analyzers exercise their typed paths.
func loadFixture(t *testing.T, dir string, opts Options) *Package {
	t.Helper()
	pkg, err := NewLoader(opts).LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	if pkg.TypesErr != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.TypesErr)
	}
	return pkg
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		rule     string
		analyzer *Analyzer
		opts     Options
	}{
		{"rand-global", RandGlobal, Options{}},
		{"map-order", MapOrder, Options{}},
		// The fixture path stands in for the determinism-critical
		// package set, exercising the Options override.
		{"time-seed", TimeSeed, Options{DeterminismPkgs: []string{"time-seed"}}},
		{"sync-errcheck", SyncErrcheck, Options{DurableTypes: []string{"sync-errcheck.Journal"}}},
		{"ctx-loop", CtxLoop, Options{}},
		{"goroutine-hygiene", GoroutineHygiene, Options{}},
		{"mutex-oracle", MutexOracle, Options{}},
	}
	for _, c := range cases {
		t.Run(c.rule, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.rule)
			pkg := loadFixture(t, dir, c.opts)
			res, err := Run(pkg, c.opts, c.analyzer)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no expectations", dir)
			}
			for _, f := range res.Findings {
				if f.Rule != c.rule {
					t.Errorf("unexpected rule %q from analyzer %q: %s", f.Rule, c.rule, f)
					continue
				}
				matched := false
				for _, w := range wants {
					if !w.matched && w.file == f.File && w.line == f.Line &&
						strings.Contains(f.Message, w.substr) {
						w.matched, matched = true, true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.substr)
				}
			}
		})
	}
}

func TestSuppressions(t *testing.T) {
	dir := filepath.Join("testdata", "src", "suppress")
	opts := Options{}
	pkg := loadFixture(t, dir, opts)
	res, err := Run(pkg, opts, RandGlobal)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var suppressed, unsuppressed, suppressRule []Finding
	for _, f := range res.Findings {
		switch {
		case f.Rule == SuppressRule:
			suppressRule = append(suppressRule, f)
		case f.Suppressed:
			suppressed = append(suppressed, f)
		default:
			unsuppressed = append(unsuppressed, f)
		}
	}
	// CommentAbove (comment-above idiom) and Inline (same-line) are
	// silenced; MissingReason and UnknownRule leave their rand-global
	// findings live.
	if len(suppressed) != 2 {
		t.Errorf("suppressed rand-global findings = %d, want 2: %v", len(suppressed), suppressed)
	}
	for _, f := range suppressed {
		if !strings.Contains(f.Reason, "fixture exercises") {
			t.Errorf("suppressed finding lost its reason: %+v", f)
		}
	}
	if len(unsuppressed) != 2 {
		t.Errorf("unsuppressed rand-global findings = %d, want 2: %v", len(unsuppressed), unsuppressed)
	}
	// The malformed (reasonless) and unknown-rule suppressions are
	// findings of the synthetic suppress rule.
	if len(suppressRule) != 2 {
		t.Fatalf("suppress-rule findings = %d, want 2: %v", len(suppressRule), suppressRule)
	}
	var sawNoReason, sawUnknown bool
	for _, f := range suppressRule {
		if strings.Contains(f.Message, "no reason") {
			sawNoReason = true
		}
		if strings.Contains(f.Message, "unknown rule") {
			sawUnknown = true
		}
		if f.Suppressed {
			t.Errorf("suppress-rule finding must never be suppressed: %+v", f)
		}
	}
	if !sawNoReason || !sawUnknown {
		t.Errorf("suppress findings missing cases (no-reason=%v unknown=%v): %v",
			sawNoReason, sawUnknown, suppressRule)
	}
	if got := len(res.Unsuppressed()); got != 4 {
		t.Errorf("Unsuppressed() = %d findings, want 4 (2 rand-global + 2 suppress)", got)
	}
}

func TestRunDedupsDoubleRegistration(t *testing.T) {
	dir := filepath.Join("testdata", "src", "rand-global")
	opts := Options{}
	pkg := loadFixture(t, dir, opts)
	once, err := Run(pkg, opts, RandGlobal)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	twice, err := Run(pkg, opts, RandGlobal, RandGlobal)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(twice.Analyzers) != 1 {
		t.Errorf("double registration ran %d analyzers, want 1", len(twice.Analyzers))
	}
	if len(twice.Findings) != len(once.Findings) {
		t.Errorf("double registration changed findings: %d vs %d", len(twice.Findings), len(once.Findings))
	}
}

func TestFindingsDeterministicallySorted(t *testing.T) {
	dir := filepath.Join("testdata", "src", "rand-global")
	opts := Options{}
	pkg := loadFixture(t, dir, opts)
	res, err := Run(pkg, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(res.Findings); i++ {
		a, b := res.Findings[i-1], res.Findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
}

func TestByNameAndKnownRule(t *testing.T) {
	as, err := ByName("rand-global", "sync-errcheck")
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName: %v (%d analyzers)", err, len(as))
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	if !KnownRule(SuppressRule) {
		t.Error("KnownRule must accept the synthetic suppress rule")
	}
	if KnownRule("nope") {
		t.Error("KnownRule accepted an unknown rule")
	}
	if len(All()) < 7 {
		t.Errorf("All() = %d analyzers, want at least 7", len(All()))
	}
}

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text    string
		ok      bool
		wantErr bool
		rules   []string
		reason  string
	}{
		{"rilvet:ignore rand-global deliberate demo seed", true, false, []string{"rand-global"}, "deliberate demo seed"},
		{"  rilvet:ignore map-order,ctx-loop two rules one reason", true, false, []string{"map-order", "ctx-loop"}, "two rules one reason"},
		{"rilvet:ignore rand-global", true, true, nil, ""},
		{"rilvet:ignore", true, true, nil, ""},
		{"rilvet:ignore ,, empty names", true, true, nil, ""},
		{"rilvet:ignoreX other token", false, false, nil, ""},
		{"a plain comment", false, false, nil, ""},
	}
	for _, c := range cases {
		s, ok, err := ParseSuppression(c.text)
		if ok != c.ok || (err != nil) != c.wantErr {
			t.Errorf("ParseSuppression(%q) = ok=%v err=%v, want ok=%v err=%v", c.text, ok, err, c.ok, c.wantErr)
			continue
		}
		if !c.ok || c.wantErr {
			continue
		}
		if len(s.Rules) != len(c.rules) || s.Reason != c.reason {
			t.Errorf("ParseSuppression(%q) = %+v, want rules=%v reason=%q", c.text, s, c.rules, c.reason)
			continue
		}
		for i := range c.rules {
			if s.Rules[i] != c.rules[i] {
				t.Errorf("ParseSuppression(%q) rule %d = %q, want %q", c.text, i, s.Rules[i], c.rules[i])
			}
		}
	}
}

func TestSuppressionNeverCoversSuppressRule(t *testing.T) {
	s := Suppression{Rules: []string{SuppressRule, "rand-global"}, Reason: "nice try"}
	if s.Covers(SuppressRule) {
		t.Fatal("a suppression must never cover the suppress rule")
	}
	if !s.Covers("rand-global") {
		t.Fatal("Covers lost its listed rule")
	}
}
