package golint

import (
	"go/ast"
)

// GoroutineHygiene enforces two rules on goroutines in non-test code:
//
//  1. A `go func() {...}()` literal must begin its life with a defer
//     that either recovers (panic isolation — one crashing job must
//     not kill the process) or signals completion via a WaitGroup's
//     Done (so the spawner can drain it). The sweep pool's workers do
//     both by construction; ad-hoc goroutines that do neither are
//     exactly the ones that leak or take the daemon down.
//
//  2. A channel send inside a loop of a function that participates in
//     cancellation (has a ctx/done in scope) must be wrapped in a
//     select that can observe the cancellation — a bare `ch <- v` in
//     a cancellable loop deadlocks the worker forever once the
//     receiver has gone away.
var GoroutineHygiene = &Analyzer{
	Name: "goroutine-hygiene",
	Doc:  "require panic isolation or WaitGroup accounting in goroutines, and cancellable channel sends in loops",
	Run:  runGoroutineHygiene,
}

func runGoroutineHygiene(p *Pass) error {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				lit, ok := n.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				if !hasHygieneDefer(lit.Body) {
					p.Report(n.Pos(),
						"goroutine literal has no defer'd recover or WaitGroup Done; a panic here kills the process and the spawner cannot drain it")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkCancellableSends(p, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// hasHygieneDefer reports whether the body's top-level statements
// include a defer that recovers or calls a Done method: `defer
// wg.Done()`, `defer func() { ... recover() ... }()`, or a defer'd
// helper whose call chain we cannot see (a defer'd method call other
// than Done is accepted — it may well recover internally, and
// flagging it would punish factoring the recovery out).
func hasHygieneDefer(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		switch fun := d.Call.Fun.(type) {
		case *ast.SelectorExpr:
			// defer x.Anything() — Done, or a helper that may recover.
			return true
		case *ast.FuncLit:
			if callsRecover(fun.Body) {
				return true
			}
		case *ast.Ident:
			if fun.Name == "recover" {
				return true
			}
			// defer someHelper() — may recover internally.
			return true
		}
	}
	return false
}

// callsRecover reports whether the block calls the recover builtin
// (not inside a nested function literal).
func callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "recover" {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkCancellableSends flags bare channel sends inside for-loops of
// functions that have a context (or done channel) in scope — the send
// must sit in a select with the cancellation case.
func checkCancellableSends(p *Pass, body *ast.BlockStmt) {
	if !blockReferencesCancellation(p, body) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, isFor := n.(*ast.ForStmt)
		rng, isRange := n.(*ast.RangeStmt)
		if !isFor && !isRange {
			return true
		}
		var loopBody *ast.BlockStmt
		if isFor {
			loopBody = loop.Body
		} else {
			// `for v := range ch` receives; sends in its body still count.
			loopBody = rng.Body
		}
		reportBareSends(p, loopBody)
		return true
	})
}

// reportBareSends reports channel sends in the block that are not a
// select-case comm statement. Nested loops are handled by the outer
// Inspect visiting them separately, so this only looks at sends whose
// nearest enclosing select (if any) does not own them.
func reportBareSends(p *Pass, block *ast.BlockStmt) {
	var walk func(n ast.Node, inSelectComm bool)
	walk = func(n ast.Node, inSelectComm bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.SendStmt:
			if !inSelectComm {
				p.Report(n.Pos(),
					"bare channel send in a cancellable loop can block forever; wrap it in a select with the ctx.Done()/done case")
			}
			return
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if comm.Comm != nil {
					walk(comm.Comm, true)
				}
				for _, s := range comm.Body {
					walk(s, false)
				}
			}
			return
		}
		// Generic descent over child statements/expressions.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			switch child.(type) {
			case *ast.SendStmt, *ast.SelectStmt, *ast.FuncLit:
				walk(child, false)
				return false
			}
			return true
		})
	}
	walk(block, false)
}

// blockReferencesCancellation reports whether the function body
// mentions a context-typed value or an identifier named ctx/done —
// the function participates in a cancellation scheme, so its loops
// are expected to be interruptible.
func blockReferencesCancellation(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			if v.Name == "ctx" || v.Name == "done" {
				found = true
				return false
			}
		case ast.Expr:
			if isContextType(p.TypeOf(v)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
