package golint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded compilation unit: a directory's non-test .go
// files (plus _test.go files when Options.IncludeTests is set),
// parsed with comments and type-checked best-effort.
type Package struct {
	Path  string // the directory as given to the loader
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypesErr records the first type-check error. Analysis proceeds
	// with partial type information; analyzers degrade to syntactic
	// checks where types are missing.
	TypesErr error
}

// Loader loads and type-checks packages. One Loader shares a file set
// and an importer across packages, so repeated imports (the standard
// library, repro/internal/netlist, ...) are type-checked once.
type Loader struct {
	Opts Options
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh file set and a source
// importer (stdlib "source" compiler mode: imports are type-checked
// from source, so no compiled export data is required).
func NewLoader(opts Options) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Opts: opts,
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir parses and type-checks the Go package in one directory. A
// directory with no eligible .go files returns (nil, nil). Parse
// errors are hard errors (exit-code-2 material for the CLI);
// type-check errors are soft (recorded in Package.TypesErr).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.Opts.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Path: filepath.ToSlash(dir), Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("golint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	// _test.go files may declare a foo_test external test package
	// alongside foo; type-check each package name separately so the
	// checker never sees a mixed file list.
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	byName := map[string][]*ast.File{}
	for _, f := range pkg.Files {
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			if pkg.TypesErr == nil {
				pkg.TypesErr = err
			}
		},
	}
	var pkgNames []string
	for name := range byName {
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)
	for _, name := range pkgNames {
		tp, err := conf.Check(dir, l.fset, byName[name], pkg.Info)
		if err != nil && pkg.TypesErr == nil {
			pkg.TypesErr = err
		}
		if pkg.Types == nil {
			pkg.Types = tp
		}
	}
	return pkg, nil
}

// ExpandDirs resolves files, directories and Go-style dir/...
// patterns into a sorted list of package directories containing .go
// files, skipping testdata, vendor, hidden and underscore-prefixed
// directories — the same walking contract as cmd/netlint.
func ExpandDirs(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		recursive := strings.HasSuffix(arg, "...")
		root := strings.TrimSuffix(arg, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		if root == "" {
			root = "."
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			// A single .go file: lint its directory's package.
			if strings.HasSuffix(root, ".go") {
				add(filepath.Dir(root))
				continue
			}
			return nil, fmt.Errorf("golint: %s is neither a directory nor a .go file", root)
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			}
			continue
		}
		err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}
