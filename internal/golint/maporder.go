package golint

import (
	"go/ast"
	"go/types"
)

// MapOrder reports `range` loops over maps whose iteration order can
// leak into an ordered sink — a slice appended across iterations, or
// writer/printer/hash output emitted inside the loop body — without
// an intervening sort. Go randomizes map iteration order per run, so
// any such leak breaks the repo's replayability guarantees: the sweep
// runner's deterministic result order, the journal's bit-identical
// replay, and the report tables' stable rendering.
//
// The canonical fix is collect-then-sort: append the keys to a slice,
// sort it, and range over the slice. The analyzer recognizes that
// idiom — an appended slice that is later passed to a sort call in
// the same function is not a finding. Order-insensitive accumulation
// (counters, sums, min/max, writes into another map) is not flagged.
var MapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "detect map iteration order leaking into slices, output or hashes without a sort",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) error {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if body := funcBody(n); body != nil {
				checkMapRanges(p, body)
			}
			return true
		})
	}
	return nil
}

// funcBody extracts the body of a function declaration or literal.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkMapRanges finds map-ranges directly inside one function body
// (nested function literals are visited separately by the outer
// Inspect, so each body is analyzed exactly once against its own
// statement list).
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // separate body, analyzed on its own
		}
		if rs, ok := n.(*ast.RangeStmt); ok && isMapType(p.TypeOf(rs.X)) {
			ranges = append(ranges, rs)
		}
		return true
	})
	for _, rs := range ranges {
		checkOneMapRange(p, body, rs)
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkOneMapRange inspects one map-range's body for ordered sinks.
func checkOneMapRange(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// x = append(x, ...) growing a slice across iterations.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				target := rootIdent(n.Lhs[i])
				if target == nil {
					continue
				}
				if idx, ok := n.Lhs[i].(*ast.IndexExpr); ok && isMapType(p.TypeOf(idx.X)) {
					continue // m[k] = append(m[k], ...): per-key, order-free
				}
				if declaredWithin(p, target, rs.Body) {
					continue // loop-local slice: order cannot escape the iteration
				}
				if sortedAfter(p, fnBody, rs, target) {
					continue // collect-then-sort idiom
				}
				p.Report(n.Pos(),
					"append to %q inside a map range records map iteration order; sort %q afterwards or iterate sorted keys",
					target.Name, target.Name)
			}
		case *ast.CallExpr:
			if name, ok := orderedSinkCall(p, n); ok {
				p.Report(n.Pos(),
					"%s inside a map range emits output in map iteration order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "append" {
		return false
	}
	if obj := p.ObjectOf(ident); obj != nil {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}

// rootIdent unwraps x, x[i], x.f chains to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether ident's declaration lies inside the
// given node's source range (best-effort: falls back to false without
// type info, which errs toward reporting).
func declaredWithin(p *Pass, ident *ast.Ident, within ast.Node) bool {
	obj := p.ObjectOf(ident)
	if obj == nil {
		return false
	}
	return obj.Pos() >= within.Pos() && obj.Pos() <= within.End()
}

// sortedAfter reports whether, lexically after the range loop in the
// same function body, target is passed to a sort/slices call — the
// collect-then-sort idiom.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target *ast.Ident) bool {
	obj := p.ObjectOf(target)
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			root := rootIdent(arg)
			if root == nil {
				continue
			}
			if root.Name == target.Name &&
				(obj == nil || p.ObjectOf(root) == obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// orderedSinkCall reports calls inside a map-range body that emit
// bytes in call order: fmt printers to writers/strings, io writes,
// and hash updates.
func orderedSinkCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
		switch name {
		case "Fprintf", "Fprintln", "Fprint", "Printf", "Println", "Print":
			return "fmt." + name, true
		}
		return "", false
	}
	// Method sinks: io.Writer / strings.Builder / hash.Hash style
	// writes. Only flagged when the receiver's type is known to have a
	// writer shape, so plain method names elsewhere don't trip it.
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		t := p.TypeOf(sel.X)
		if t == nil {
			return "", false
		}
		if hasWriteMethod(t) {
			return typeShort(t) + "." + name, true
		}
	}
	return "", false
}

// hasWriteMethod reports whether t's method set (including pointer
// methods for addressable values) contains Write([]byte) (int, error)
// — the io.Writer contract.
func hasWriteMethod(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i)
		if m.Obj().Name() != "Write" {
			continue
		}
		sig, ok := m.Obj().Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		if slice, ok := sig.Params().At(0).Type().(*types.Slice); ok {
			if basic, ok := slice.Elem().(*types.Basic); ok && basic.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// typeShort renders a type name without its package path for
// messages.
func typeShort(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
