package golint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MutexOracle forbids holding a sync.Mutex or sync.RWMutex across a
// call into the attack oracle/solver entry points. An oracle query
// simulates a full circuit and a solver call can run for seconds to
// hours; a lock held across either serializes every sweep worker
// behind one job and is the canonical way to turn the worker pool
// into a single-lane queue. The SimOracle's own internal buffer lock
// is fine — it guards nanosecond-scale simulator scratch state, and
// its critical section calls only the simulator, never back into
// solver or attack entry points.
//
// Oracle/solver entry points: exported functions of
// repro/internal/attack (SATAttack, AppSAT, Sensitize, OneHot, ...),
// the Oracle interface's Query/QueryWords, and (*sat.Solver).Solve.
var MutexOracle = &Analyzer{
	Name: "mutex-oracle",
	Doc:  "forbid holding a mutex across oracle queries or solver calls",
	Run:  runMutexOracle,
}

func runMutexOracle(p *Pass) error {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if body := funcBody(n); body != nil {
				checkMutexOracle(p, body)
			}
			return true
		})
	}
	return nil
}

// checkMutexOracle walks one function body's statement list tracking
// a coarse lock state: Lock()/RLock() sets it, Unlock()/RUnlock()
// clears it, `defer mu.Unlock()` leaves it held for the rest of the
// body. Any oracle/solver entry call while held is a finding. The
// tracking is linear (no branch-sensitive state) — good enough for
// real lock usage, which in this repo is Lock-defer-Unlock or
// Lock-work-Unlock straight lines.
func checkMutexOracle(p *Pass, body *ast.BlockStmt) {
	held := false
	var heldAt ast.Node
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					switch mutexCallKind(p, call) {
					case "lock":
						held, heldAt = true, s
						continue
					case "unlock":
						held = false
						continue
					}
				}
			case *ast.DeferStmt:
				// defer mu.Unlock(): the lock stays held to the end of
				// the function — state unchanged.
				continue
			case *ast.BlockStmt:
				walk(s.List)
				continue
			case *ast.IfStmt:
				walk(s.Body.List)
				if s.Else != nil {
					if b, ok := s.Else.(*ast.BlockStmt); ok {
						walk(b.List)
					}
				}
				continue
			case *ast.ForStmt:
				walk(s.Body.List)
				continue
			case *ast.RangeStmt:
				walk(s.Body.List)
				continue
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body)
					}
				}
				continue
			}
			if held {
				reportOracleCalls(p, stmt, heldAt)
			}
		}
	}
	walk(body.List)
}

// mutexCallKind classifies a call as "lock", "unlock" or "".
func mutexCallKind(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	kind := ""
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return ""
	}
	// With type info, require a sync mutex receiver; without, accept
	// the name (fixtures and partial-typecheck fallback).
	if t := p.TypeOf(sel.X); t != nil {
		if !typeIs(t, "sync.Mutex") && !typeIs(t, "sync.RWMutex") {
			return ""
		}
	}
	return kind
}

// reportOracleCalls reports oracle/solver entry calls inside stmt.
func reportOracleCalls(p *Pass, stmt ast.Stmt, heldAt ast.Node) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := oracleEntry(p, call); ok {
			p.Report(call.Pos(),
				"%s called with a mutex held (locked at line %d); oracle queries and solver calls can run for seconds and serialize every worker behind this lock",
				name, p.Fset.Position(heldAt.Pos()).Line)
		}
		return true
	})
}

// oracleEntry reports whether call enters the oracle/solver layer:
// a method named Query/QueryWords (oracle interface), Solve
// (sat.Solver), or an exported function of the attack package.
func oracleEntry(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Query", "QueryWords", "Solve":
		// Confirm against the receiver's package when types are
		// available: sat solver or attack oracle.
		if t := p.TypeOf(sel.X); t != nil {
			if !typeFromPkg(t, "internal/sat") && !typeFromPkg(t, "internal/attack") {
				return "", false
			}
		}
		return exprName(sel.X) + "." + name, true
	}
	// attack.SATAttack / attack.AppSAT / ... package-level entries.
	if pkg, ok := sel.X.(*ast.Ident); ok {
		if obj := p.ObjectOf(pkg); obj != nil {
			if pkgName, ok := obj.(*types.PkgName); ok {
				if strings.HasSuffix(pkgName.Imported().Path(), "internal/attack") && ast.IsExported(name) {
					return pkg.Name + "." + name, true
				}
				return "", false
			}
		}
		if pkg.Name == "attack" && ast.IsExported(name) {
			return pkg.Name + "." + name, true
		}
	}
	return "", false
}

// typeFromPkg reports whether t's named type (after pointer
// indirection) is declared in a package whose path ends with suffix.
func typeFromPkg(t types.Type, suffix string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		// Interfaces (attack.Oracle as a parameter type) are named too;
		// anything else is unknown — treat as not matching.
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), suffix)
}
