package golint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// RandGlobal forbids drawing randomness from the math/rand (or
// math/rand/v2) global source in non-test code — every consumer must
// construct an explicit seeded generator (rand.New(rand.NewSource(
// seed))) so that simulations, attacks and fuzz reproductions are
// replayable from a logged seed. Calls like rand.Intn, rand.Uint64 or
// rand.Seed on the package itself are findings; constructing sources
// and generators (rand.New, rand.NewSource, rand.NewPCG, ...) and
// referring to the package's types (rand.Rand, rand.Source) are not.
// A dot import hides global-source calls from review and is a finding
// in itself. This is the former cmd/repolint rule, folded in as
// rilvet's first analyzer.
var RandGlobal = &Analyzer{
	Name: "rand-global",
	Doc:  "forbid the math/rand global source in non-test code",
	Run:  runRandGlobal,
}

// allowedRandSelector lists the math/rand and math/rand/v2 package
// members that do NOT touch the global source: constructors for
// explicit generators and the package's type names.
var allowedRandSelector = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Source":    true,
	"Source64":  true,
	"Rand":      true,
	"Zipf":      true,
	// math/rand/v2 additions.
	"NewPCG":     true,
	"NewChaCha8": true,
	"PCG":        true,
	"ChaCha8":    true,
}

func isMathRand(importPath string) bool {
	return importPath == "math/rand" || importPath == "math/rand/v2"
}

func runRandGlobal(p *Pass) error {
	for _, file := range p.Files {
		// Map the local names the file binds math/rand to. A blank
		// import pulls in no names.
		randNames := map[string]string{}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !isMathRand(path) {
				continue
			}
			name := path[strings.LastIndex(path, "/")+1:]
			if name == "v2" {
				name = "rand"
			}
			if imp.Name != nil {
				name = imp.Name.Name
			}
			switch name {
			case "_":
				continue
			case ".":
				p.Report(imp.Pos(), "dot import of %s hides global-source calls from review; import it by name and use an explicit seeded source", path)
				continue
			}
			randNames[name] = path
		}
		if len(randNames) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := randNames[ident.Name]
			if !ok || allowedRandSelector[sel.Sel.Name] {
				return true
			}
			// Guard against a local variable shadowing the package name:
			// with type info, only package-qualified selectors count.
			if obj := p.ObjectOf(ident); obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			p.Report(sel.Pos(), "%s.%s uses the %s global source; construct an explicit seeded generator instead (rand.New(rand.NewSource(seed)))",
				ident.Name, sel.Sel.Name, path)
			return true
		})
	}
	return nil
}
