package golint

import (
	"encoding/json"
	"io"
)

// SARIF rendering for CI annotation. The shapes below are the minimal
// subset of SARIF 2.1.0 that GitHub code scanning and similar
// consumers accept: one run, one tool, the analyzer registry as rules,
// findings as results with physical locations. Suppressed findings
// are carried with the standard suppressions property so viewers show
// them struck through instead of dropping the audit trail.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the results of a whole run (across packages) as
// one SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, results []*Result) error {
	driver := sarifDriver{Name: "rilvet"}
	for _, a := range All() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               SuppressRule,
		ShortDescription: sarifMessage{Text: "malformed or reasonless //rilvet:ignore suppression"},
	})
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, res := range results {
		for _, f := range res.Findings {
			sr := sarifResult{
				RuleID:  f.Rule,
				Level:   "error",
				Message: sarifMessage{Text: f.Message},
				Locations: []sarifLocation{{
					PhysicalLocation: sarifPhysicalLocation{
						ArtifactLocation: sarifArtifactLocation{URI: f.File},
						Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
					},
				}},
			}
			if f.Suppressed {
				sr.Suppressions = []sarifSuppression{{
					Kind:          "inSource",
					Justification: f.Reason,
				}}
			}
			run.Results = append(run.Results, sr)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	})
}
