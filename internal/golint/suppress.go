package golint

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// osReadFile is swappable for tests.
var osReadFile = os.ReadFile

// SuppressRule is the synthetic rule name under which the driver
// reports malformed suppression comments. It is the one rule that can
// never itself be suppressed — otherwise a reasonless suppression
// could silence the check that demands reasons.
const SuppressRule = "suppress"

// suppressPrefix introduces a suppression comment. The format is
//
//	//rilvet:ignore <rule>[,<rule>...] <reason>
//
// where every rule must name a registered analyzer and the reason is
// mandatory — a suppression is a reviewed exception, and the review
// lives in the reason.
const suppressPrefix = "rilvet:ignore"

// Suppression is one parsed //rilvet:ignore comment.
type Suppression struct {
	Rules  []string
	Reason string
}

// Covers reports whether the suppression silences the given rule.
func (s Suppression) Covers(rule string) bool {
	if rule == SuppressRule {
		return false
	}
	for _, r := range s.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// ParseSuppression parses the text of one comment (without the //
// or /* markers). ok is false when the comment is not a suppression
// comment at all; err is non-nil when it is one but is malformed
// (no rules, or an empty reason). Rule-name validity is the driver's
// concern, not the parser's — the parser has no analyzer registry.
func ParseSuppression(text string) (s Suppression, ok bool, err error) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, suppressPrefix) {
		return Suppression{}, false, nil
	}
	rest := text[len(suppressPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. "rilvet:ignoreX" — some other token, not a suppression.
		return Suppression{}, false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Suppression{}, true, fmt.Errorf("suppression names no rule (want //%s <rule> <reason>)", suppressPrefix)
	}
	for _, r := range strings.Split(fields[0], ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return Suppression{}, true, fmt.Errorf("suppression has an empty rule name in %q", fields[0])
		}
		s.Rules = append(s.Rules, r)
	}
	s.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if s.Reason == "" {
		return Suppression{}, true, fmt.Errorf("suppression of %s gives no reason; a suppression is a reviewed exception and the review lives in the reason", fields[0])
	}
	return s, true, nil
}

// fileSuppressions maps line number -> suppressions active on that
// line for one file.
type fileSuppressions map[int][]Suppression

// applySuppressions walks every file's comments, reports malformed
// suppressions under the synthetic "suppress" rule, and marks
// findings covered by a well-formed suppression on the finding's own
// line or alone on the line directly above.
func applySuppressions(pass *Pass, pkg *Package) {
	byFile := map[string]fileSuppressions{}
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		fname := tf.Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				s, ok, err := ParseSuppression(text)
				if err != nil {
					pass.ReportRule(SuppressRule, c.Pos(), "%v", err)
					continue
				}
				if !ok {
					continue
				}
				for _, r := range s.Rules {
					if !KnownRule(r) {
						pass.ReportRule(SuppressRule, c.Pos(),
							"suppression names unknown rule %q", r)
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				m := byFile[fname]
				if m == nil {
					m = fileSuppressions{}
					byFile[fname] = m
				}
				// The suppression covers its own line. When the comment
				// stands alone on its line, it covers the next line too —
				// the comment-above idiom.
				m[pos.Line] = append(m[pos.Line], s)
				if standsAlone(fname, pos.Line, pos.Column) {
					m[pos.Line+1] = append(m[pos.Line+1], s)
				}
			}
		}
	}
	for i := range pass.findings {
		f := &pass.findings[i]
		for _, s := range byFile[f.File][f.Line] {
			if s.Covers(f.Rule) {
				f.Suppressed = true
				f.Reason = s.Reason
				break
			}
		}
	}
}

// standsAlone reports whether the comment starting at (line, col) in
// the named file is the first token on its line — i.e. everything
// before it is whitespace. It re-reads the file; suppression comments
// are rare enough that the extra I/O is noise, and the per-file line
// cache keeps it to one read per file.
func standsAlone(fname string, line, col int) bool {
	lines := lineCacheFor(fname)
	if line-1 >= len(lines) || col < 1 {
		return false
	}
	prefix := lines[line-1]
	if col-1 > len(prefix) {
		return false
	}
	return strings.TrimSpace(prefix[:col-1]) == ""
}

// lineCache memoizes file contents split into lines for standsAlone.
// The driver is a short-lived CLI; the cache is never invalidated.
var (
	lineCacheMu sync.Mutex
	lineCache   = map[string][]string{}
)

func lineCacheFor(fname string) []string {
	lineCacheMu.Lock()
	defer lineCacheMu.Unlock()
	if lines, ok := lineCache[fname]; ok {
		return lines
	}
	raw, err := osReadFile(fname)
	var lines []string
	if err == nil {
		lines = strings.Split(string(raw), "\n")
	}
	lineCache[fname] = lines
	return lines
}
