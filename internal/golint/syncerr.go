package golint

import (
	"go/ast"
	"go/types"
)

// SyncErrcheck forbids discarding the error of (*os.File).Sync or
// (*os.File).Close on write paths. The crash-safety layer (the DIP
// journal's fsync-per-record, the checkpoint manifest's
// write-temp/fsync/rename) is only as strong as its weakest unchecked
// close: a full disk or failing device surfaces exactly there, and a
// discarded error silently truncates the durability guarantee.
//
// A file counts as a write path when it was opened in the same
// function by os.Create, os.CreateTemp, or os.OpenFile with a write
// flag (O_WRONLY, O_RDWR or O_APPEND). Read-path files (os.Open) are
// exempt, including defer f.Close(). Durable writer types configured
// in Options.DurableTypes (by default the attack DIP journal,
// *attack.Journal) are checked wherever the value came from.
//
// Flagged forms: a bare statement `f.Close()`, `defer f.Close()`
// (the error is unobservable), and `_ = f.Close()` (an explicit
// discard still loses the durability signal — if the discard is
// genuinely intended, say why with //rilvet:ignore sync-errcheck).
// The fix on error paths is errors.Join(err, f.Close()); on success
// paths, return or check the close error.
var SyncErrcheck = &Analyzer{
	Name: "sync-errcheck",
	Doc:  "forbid unchecked Sync/Close errors on write-path files and durable writers",
	Run:  runSyncErrcheck,
}

func runSyncErrcheck(p *Pass) error {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if body := funcBody(n); body != nil {
				checkSyncErr(p, body)
			}
			return true
		})
	}
	return nil
}

// checkSyncErr analyzes one function body: collects files write-opened
// in it, then flags discarded Close/Sync results on them (and on
// durable writer types, wherever their values came from).
func checkSyncErr(p *Pass, body *ast.BlockStmt) {
	writeFiles := collectWriteFiles(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate body, analyzed on its own
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				reportDiscarded(p, call, writeFiles, "discarded")
			}
		case *ast.DeferStmt:
			reportDiscarded(p, n.Call, writeFiles, "unobservable in defer")
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 && isBlank(n.Lhs[0]) {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					reportDiscarded(p, call, writeFiles, "explicitly discarded with _")
				}
			}
		}
		return true
	})
}

func isBlank(e ast.Expr) bool {
	ident, ok := e.(*ast.Ident)
	return ok && ident.Name == "_"
}

// reportDiscarded flags call when it is a Close/Sync on a tracked
// write-path file or a durable writer type.
func reportDiscarded(p *Pass, call *ast.CallExpr, writeFiles map[types.Object]bool, how string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	if method != "Close" && method != "Sync" {
		return
	}
	recv := rootIdent(sel.X)
	if recv != nil {
		if obj := p.ObjectOf(recv); obj != nil && writeFiles[obj] {
			p.Report(call.Pos(),
				"%s.%s() error %s on a write-path file; a failed close can lose buffered data — check it (errors.Join(err, %s.%s()) on error paths)",
				recv.Name, method, how, recv.Name, method)
			return
		}
	}
	for _, durable := range p.Opts.durableTypes() {
		if p.IsType(sel.X, durable) {
			p.Report(call.Pos(),
				"%s error %s on durable writer %s; a failed close truncates the crash-safety guarantee — check it",
				method, how, durable)
			return
		}
	}
}

// collectWriteFiles finds variables initialized in this body from
// write-opening os calls: os.Create, os.CreateTemp, and os.OpenFile
// with an explicit write flag.
func collectWriteFiles(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isWriteOpen(call) || len(assign.Lhs) == 0 {
			return true
		}
		if ident, ok := assign.Lhs[0].(*ast.Ident); ok && ident.Name != "_" {
			if obj := p.ObjectOf(ident); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isWriteOpen reports whether call opens a file for writing:
// os.Create, os.CreateTemp, or os.OpenFile with O_WRONLY, O_RDWR or
// O_APPEND in its flag argument. An OpenFile whose flags are opaque
// (a variable) is not tracked — the analyzer errs toward silence on
// unknown flags.
func isWriteOpen(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "os" {
		return false
	}
	switch sel.Sel.Name {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		return hasWriteFlag(call.Args[1])
	}
	return false
}

// hasWriteFlag reports whether the flag expression names O_WRONLY,
// O_RDWR or O_APPEND.
func hasWriteFlag(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		name := ""
		switch v := n.(type) {
		case *ast.Ident:
			name = v.Name
		case *ast.SelectorExpr:
			name = v.Sel.Name
		}
		switch name {
		case "O_WRONLY", "O_RDWR", "O_APPEND":
			found = true
			return false
		}
		return true
	})
	return found
}
