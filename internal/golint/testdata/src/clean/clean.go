// Package fixture is a deliberately finding-free package used by the
// CLI exit-code tests.
package fixture

func Nothing() int { return 0 }
