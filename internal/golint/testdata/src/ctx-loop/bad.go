package fixture

func Spin(limit int) int {
	n := 0
	for { // want "exported Spin contains an unbounded loop"
		n++
		if n >= limit {
			break
		}
	}
	return n
}

func SpinTrue(step func() bool) {
	for true { // want "exported SpinTrue contains an unbounded loop"
		if !step() {
			return
		}
	}
}
