package fixture

import "context"

// SpinCtx consults a context inside its unbounded loop: cancellable.
func SpinCtx(ctx context.Context) int {
	n := 0
	for {
		if ctx.Err() != nil {
			return n
		}
		n++
	}
}

// spinHelper is unexported — internal helpers inherit cancellation
// from their exported callers.
func spinHelper(step func() bool) {
	for {
		if !step() {
			return
		}
	}
}

// Bounded loops have a condition and are not flagged.
func Bounded(limit int) int {
	n := 0
	for i := 0; i < limit; i++ {
		n++
	}
	return n
}
