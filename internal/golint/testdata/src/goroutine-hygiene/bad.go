package fixture

import "context"

func work() {}

func SpawnLeaky(jobs []int) {
	for range jobs {
		go func() { // want "goroutine literal has no defer'd recover or WaitGroup Done"
			work()
		}()
	}
}

func PumpBare(ctx context.Context, ch chan int) {
	for i := 0; ; i++ {
		if ctx.Err() != nil {
			return
		}
		ch <- i // want "bare channel send in a cancellable loop"
	}
}
