package fixture

import (
	"context"
	"sync"
)

// SpawnAccounted signals completion through the WaitGroup: the
// spawner can drain it.
func SpawnAccounted(wg *sync.WaitGroup, jobs []int) {
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
}

// SpawnIsolated recovers in a defer: a panicking job cannot kill the
// process.
func SpawnIsolated() {
	go func() {
		defer func() {
			_ = recover()
		}()
		work()
	}()
}

// PumpSelect wraps the send in a select with the cancellation case.
func PumpSelect(ctx context.Context, ch chan int) {
	for i := 0; ; i++ {
		select {
		case ch <- i:
		case <-ctx.Done():
			return
		}
	}
}
