package fixture

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "records map iteration order"
	}
	return keys
}

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside a map range emits output in map iteration order"
	}
}

func Digest(m map[string]bool) [32]byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want "Hash.Write inside a map range emits output in map iteration order"
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

func Render(m map[string]string) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "Builder.WriteString inside a map range emits output in map iteration order"
	}
	return sb.String()
}
