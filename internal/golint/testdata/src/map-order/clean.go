package fixture

import "sort"

// KeysSorted is the canonical collect-then-sort idiom: the append is
// followed by a sort of the same slice, so order cannot leak.
func KeysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert appends under a map key — per-key accumulation is order-free.
func Invert(m map[string]int) map[int][]string {
	out := map[int][]string{}
	for k, v := range m {
		out[v] = append(out[v], k)
	}
	return out
}

// Total is order-insensitive accumulation.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// ScratchPerIteration appends to a slice declared inside the loop
// body; its order cannot escape the iteration.
func ScratchPerIteration(m map[string]int) int {
	longest := 0
	for k := range m {
		var parts []string
		parts = append(parts, k)
		if len(parts) > longest {
			longest = len(parts)
		}
	}
	return longest
}
