package fixture

import (
	"sync"

	"repro/internal/attack"
	"repro/internal/sat"
)

type cache struct {
	mu sync.Mutex
	m  map[string][]bool
}

func (c *cache) LookupLocked(o *attack.SimOracle, key string, in []bool) []bool {
	c.mu.Lock()
	out := o.Query(in) // want "o.Query called with a mutex held"
	c.m[key] = out
	c.mu.Unlock()
	return out
}

func (c *cache) VerifyLocked(o attack.Oracle) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return attack.VerifyKey(nil, nil, nil, o, 1, 1) // want "attack.VerifyKey called with a mutex held"
}

func SolveLocked(mu *sync.Mutex, s *sat.Solver) sat.Status {
	mu.Lock()
	defer mu.Unlock()
	return s.Solve() // want "s.Solve called with a mutex held"
}
