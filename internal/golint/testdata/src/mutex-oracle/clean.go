package fixture

import (
	"sync"

	"repro/internal/attack"
	"repro/internal/sat"
)

// LookupUnlocked queries the oracle first and takes the lock only for
// the map update — the pattern the analyzer demands.
func (c *cache) LookupUnlocked(o *attack.SimOracle, key string, in []bool) []bool {
	out := o.Query(in)
	c.mu.Lock()
	c.m[key] = out
	c.mu.Unlock()
	return out
}

// Get holds the lock around map access only: no oracle in the
// critical section.
func (c *cache) Get(key string) ([]bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.m[key]
	return out, ok
}

// Verify calls into the attack package with no lock held.
func Verify(o attack.Oracle) (float64, error) {
	return attack.VerifyKey(nil, nil, nil, o, 1, 1)
}

// SolveThenLock releases nothing because nothing is held during the
// solver call.
func SolveThenLock(mu *sync.Mutex, s *sat.Solver, hits *int) sat.Status {
	st := s.Solve()
	mu.Lock()
	*hits++
	mu.Unlock()
	return st
}
