package fixture

import (
	"math/rand"
	mrand "math/rand/v2"
)

func Roll() int {
	return rand.Intn(6) // want "rand.Intn uses the math/rand global source"
}

func RollV2() uint64 {
	return mrand.Uint64() // want "mrand.Uint64 uses the math/rand/v2 global source"
}

func ShuffleDeck(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle uses the math/rand global source"
}
