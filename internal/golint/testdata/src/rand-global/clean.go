package fixture

import "math/rand"

// Gen constructs an explicit seeded generator — replayable, allowed.
func Gen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

type localGen struct{}

func (localGen) Intn(n int) int { return n / 2 }

// Shadowed draws from a local value that shadows the package name;
// the analyzer must not mistake it for the global source.
func Shadowed() int {
	rand := localGen{}
	return rand.Intn(6)
}
