package fixture

import . "math/rand" // want "dot import of math/rand hides global-source calls"

var dotRoll = Intn(6)
