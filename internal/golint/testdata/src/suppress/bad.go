package fixture

import "math/rand"

func CommentAbove() int {
	//rilvet:ignore rand-global fixture exercises the comment-above idiom
	return rand.Intn(6)
}

func Inline() int {
	return rand.Intn(6) //rilvet:ignore rand-global fixture exercises same-line suppression
}

func MissingReason() int {
	//rilvet:ignore rand-global
	return rand.Intn(6)
}

func UnknownRule() int {
	//rilvet:ignore not-a-rule the rule name is wrong on purpose
	return rand.Intn(6)
}
