package fixture

import "os"

func WriteDeferred(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "f.Close() error unobservable in defer on a write-path file"
	_, err = f.Write(data)
	return err
}

func WriteDiscarded(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync() // want "f.Sync() error discarded on a write-path file"
	return f.Close()
}

func WriteBlank(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_ = f.Close() // want "f.Close() error explicitly discarded with _"
}

type Journal struct{}

func (*Journal) Close() error { return nil }

func NewJournal() *Journal { return &Journal{} }

func UseJournal() {
	j := NewJournal()
	defer j.Close() // want "durable writer"
}
