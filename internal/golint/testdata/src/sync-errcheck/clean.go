package fixture

import (
	"errors"
	"io"
	"os"
)

// ReadAll is a read path: defer f.Close() on an os.Open file is the
// normal idiom and exempt.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteChecked observes every Sync/Close error.
func WriteChecked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// CloseJournal returns the durable writer's close error to the caller.
func CloseJournal(j *Journal) error {
	return j.Close()
}
