package fixture

import (
	"math/rand"
	"time"
)

func WallClockSeed() int64 {
	return time.Now().UnixNano() // want "time.Now().UnixNano() in a determinism-critical package"
}

func WallClockGen() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().Unix())) // want "time.Now().Unix() in a determinism-critical package" "wall clock feeds rand.NewSource" "wall clock feeds rand.New"
}

func SeedVar() {
	var startSeed time.Time
	startSeed = time.Now() // want "wall clock assigned to"
	_ = startSeed
}
