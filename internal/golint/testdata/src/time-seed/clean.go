package fixture

import "time"

// Elapsed-time and deadline uses of the clock are allowed — only seed
// material is forbidden.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func DeadlinePassed(deadline time.Time) bool {
	return time.Now().After(deadline)
}

// Stamp assigns the clock to a non-seed identifier: allowed.
func Stamp() time.Time {
	started := time.Now()
	return started
}
