package golint

import (
	"go/ast"
	"strings"
)

// TimeSeed forbids wall-clock-derived seed material in the
// determinism-critical packages (internal/attack, internal/sweep,
// internal/netlist, internal/report by default). A seed taken from
// time.Now() makes a sweep unreproducible from its logged parameters
// and breaks the journal's bit-identical replay contract. Flagged:
// time.Now().UnixNano()/.Unix()/.UnixMilli()/.UnixMicro() anywhere
// (there is no legitimate consumer of absolute wall-clock integers in
// these packages — durations and deadlines use Since/Until/After),
// time.Now() passed directly into rand.NewSource/rand.New, and
// time.Now() assigned to an identifier whose name contains "seed".
// Elapsed-time and deadline uses (time.Since, time.Now().After(...))
// are untouched.
var TimeSeed = &Analyzer{
	Name: "time-seed",
	Doc:  "forbid wall-clock seed material in determinism-critical packages",
	Run:  runTimeSeed,
}

func runTimeSeed(p *Pass) error {
	if !p.inDeterminismPkg() {
		return nil
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// time.Now().UnixNano() and friends.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isTimeNowCall(sel.X) {
					switch sel.Sel.Name {
					case "UnixNano", "Unix", "UnixMilli", "UnixMicro":
						p.Report(n.Pos(),
							"time.Now().%s() in a determinism-critical package; derive seeds from logged parameters (sweep.DeriveSeed) instead of the wall clock",
							sel.Sel.Name)
					}
				}
				// rand.NewSource(time.Now()...) / rand.New(...) with a
				// wall-clock argument.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "NewSource" || sel.Sel.Name == "New" {
						for _, arg := range n.Args {
							if containsTimeNow(arg) {
								p.Report(arg.Pos(),
									"wall clock feeds %s.%s; seeds must come from logged parameters so runs are replayable",
									exprName(sel.X), sel.Sel.Name)
							}
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !containsTimeNow(rhs) || i >= len(n.Lhs) {
						continue
					}
					if ident := rootIdent(n.Lhs[i]); ident != nil &&
						strings.Contains(strings.ToLower(ident.Name), "seed") {
						p.Report(n.Pos(),
							"wall clock assigned to %q; seeds must come from logged parameters so runs are replayable", ident.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// inDeterminismPkg reports whether the pass's package path falls in
// the configured determinism-critical set.
func (p *Pass) inDeterminismPkg() bool {
	path := p.Path
	if p.Pkg != nil && p.Pkg.Path() != "" {
		path = p.Pkg.Path()
	}
	for _, sub := range p.Opts.determinismPkgs() {
		if strings.Contains(path, sub) {
			return true
		}
	}
	return false
}

// isTimeNowCall reports whether e is the call time.Now().
func isTimeNowCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "time"
}

// containsTimeNow reports whether the expression tree contains a
// time.Now() call.
func containsTimeNow(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if expr, ok := n.(ast.Expr); ok && isTimeNowCall(expr) {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprName renders a short name for an expression in messages.
func exprName(e ast.Expr) string {
	if ident, ok := e.(*ast.Ident); ok {
		return ident.Name
	}
	return "rand"
}
