// Package logic provides catalogues and utilities for small Boolean
// functions: the sixteen two-input functions realizable by a 2-input
// LUT (paper Table II), their configuration-key encodings, and generic
// N-input truth-table manipulation used throughout the obfuscation and
// attack packages.
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// Func2 identifies one of the sixteen two-input Boolean functions by its
// truth table, packed little-endian by input index: bit i of the value
// is f(A,B) where i = 2*A + B. Thus bit0 = f(0,0), bit1 = f(0,1),
// bit2 = f(1,0), bit3 = f(1,1).
type Func2 uint8

// The sixteen two-input functions, named as in paper Table II.
const (
	Const0  Func2 = 0x0 // 0000: constant 0
	NOR     Func2 = 0x1 // 0001: A NOR B
	AnotB   Func2 = 0x4 // 0100: A AND NOT B
	NotA    Func2 = 0x3 // 0011: NOT A
	notAB   Func2 = 0x2 // 0010: NOT A AND B
	NotB    Func2 = 0x5 // 0101: NOT B
	XOR     Func2 = 0x6 // 0110: A XOR B
	NAND    Func2 = 0x7 // 0111: A NAND B
	AND     Func2 = 0x8 // 1000: A AND B
	XNOR    Func2 = 0x9 // 1001: A XNOR B
	BufB    Func2 = 0xA // 1010: B
	AnandNB Func2 = 0xB // 1011: A NAND NOT B  (= NOT A OR B)
	BufA    Func2 = 0xC // 1100: A
	NAnotB  Func2 = 0xD // 1101: NOT A NAND B  (= A OR NOT B)
	OR      Func2 = 0xE // 1110: A OR B
	Const1  Func2 = 0xF // 1111: constant 1
)

// NotAAndB is the exported name for the function NOT(A) AND B.
const NotAAndB = notAB

// Eval evaluates the function on inputs a and b.
func (f Func2) Eval(a, b bool) bool {
	idx := 0
	if a {
		idx += 2
	}
	if b {
		idx++
	}
	return f&(1<<idx) != 0
}

// EvalWord evaluates the function bit-parallel over 64 input vectors.
func (f Func2) EvalWord(a, b uint64) uint64 {
	var out uint64
	if f&(1<<0) != 0 {
		out |= ^a & ^b
	}
	if f&(1<<1) != 0 {
		out |= ^a & b
	}
	if f&(1<<2) != 0 {
		out |= a & ^b
	}
	if f&(1<<3) != 0 {
		out |= a & b
	}
	return out
}

// Keys returns the four configuration key bits K1..K4 for the MRAM LUT,
// in the paper's Table II ordering. The paper shifts keys in through BL
// while addressing cells in the order AB = 11, 10, 01, 00; hence
// K1 = f(1,1), K2 = f(1,0), K3 = f(0,1), K4 = f(0,0).
func (f Func2) Keys() [4]bool {
	return [4]bool{
		f&(1<<3) != 0, // K1 = f(1,1)
		f&(1<<2) != 0, // K2 = f(1,0)
		f&(1<<1) != 0, // K3 = f(0,1)
		f&(1<<0) != 0, // K4 = f(0,0)
	}
}

// FromKeys reconstructs a function from Table-II key bits K1..K4.
func FromKeys(k [4]bool) Func2 {
	var f Func2
	if k[0] {
		f |= 1 << 3
	}
	if k[1] {
		f |= 1 << 2
	}
	if k[2] {
		f |= 1 << 1
	}
	if k[3] {
		f |= 1 << 0
	}
	return f
}

// Invert returns the complement function: (¬f)(a,b) = ¬f(a,b).
func (f Func2) Invert() Func2 { return ^f & 0xF }

// SwapInputs returns g with g(a,b) = f(b,a).
func (f Func2) SwapInputs() Func2 {
	g := f & 0x9 // bits 0 and 3 are symmetric
	if f&(1<<1) != 0 {
		g |= 1 << 2
	}
	if f&(1<<2) != 0 {
		g |= 1 << 1
	}
	return g
}

// IsSymmetric reports whether f(a,b) == f(b,a) for all inputs.
func (f Func2) IsSymmetric() bool { return f == f.SwapInputs() }

// DependsOnA reports whether the output ever changes with input A.
func (f Func2) DependsOnA() bool {
	// compare rows a=0 (bits 0,1) with a=1 (bits 2,3)
	return (f & 0x3) != (f>>2)&0x3
}

// DependsOnB reports whether the output ever changes with input B.
func (f Func2) DependsOnB() bool {
	b0 := (f & (1 << 0) >> 0) | (f & (1 << 2) >> 1) // f(0,0), f(1,0)
	b1 := (f & (1 << 1) >> 1) | (f & (1 << 3) >> 2) // f(0,1), f(1,1)
	return b0 != b1
}

// String returns the paper's name for the function.
func (f Func2) String() string {
	switch f & 0xF {
	case Const0:
		return "0"
	case NOR:
		return "A NOR B"
	case notAB:
		return "notA AND B"
	case NotA:
		return "NOT A"
	case AnotB:
		return "A AND notB"
	case NotB:
		return "NOT B"
	case XOR:
		return "A XOR B"
	case NAND:
		return "A NAND B"
	case AND:
		return "A AND B"
	case XNOR:
		return "A XNOR B"
	case BufB:
		return "B"
	case AnandNB:
		return "A NAND notB"
	case BufA:
		return "A"
	case NAnotB:
		return "notA NAND B"
	case OR:
		return "A OR B"
	case Const1:
		return "1"
	}
	return "invalid"
}

// AllFunc2 lists all sixteen functions in Table II row order
// (left column top-to-bottom, then right column top-to-bottom).
func AllFunc2() []Func2 {
	return []Func2{
		Const0, NOR, notAB, NotA, AnotB, NotB, XOR, NAND,
		Const1, OR, AnandNB, BufA, NAnotB, BufB, XNOR, AND,
	}
}

// TT is an N-input truth table with up to 6 inputs packed into a uint64
// plus explicit overflow words for larger N. Bit i holds f(x) where x is
// the input assignment encoded with input 0 as the least-significant bit.
type TT struct {
	n     int
	words []uint64
}

// NewTT returns an all-zero truth table over n inputs. n must be in [0, 20].
func NewTT(n int) *TT {
	if n < 0 || n > 20 {
		panic(fmt.Sprintf("logic: truth table size %d out of range [0,20]", n))
	}
	rows := 1 << n
	nw := (rows + 63) / 64
	if nw == 0 {
		nw = 1
	}
	return &TT{n: n, words: make([]uint64, nw)}
}

// Inputs returns the number of inputs.
func (t *TT) Inputs() int { return t.n }

// Rows returns the number of rows (2^n).
func (t *TT) Rows() int { return 1 << t.n }

// Get returns the output bit for input assignment row.
func (t *TT) Get(row int) bool {
	return t.words[row>>6]&(1<<(uint(row)&63)) != 0
}

// Set assigns the output bit for input assignment row.
func (t *TT) Set(row int, v bool) {
	if v {
		t.words[row>>6] |= 1 << (uint(row) & 63)
	} else {
		t.words[row>>6] &^= 1 << (uint(row) & 63)
	}
}

// Eval evaluates the table on a full input assignment.
func (t *TT) Eval(in []bool) bool {
	if len(in) != t.n {
		panic(fmt.Sprintf("logic: TT.Eval got %d inputs, want %d", len(in), t.n))
	}
	row := 0
	for i, b := range in {
		if b {
			row |= 1 << i
		}
	}
	return t.Get(row)
}

// OnesCount returns the number of minterms (rows evaluating to 1).
func (t *TT) OnesCount() int {
	c := 0
	rows := t.Rows()
	for i, w := range t.words {
		if (i+1)*64 > rows {
			w &= (1 << (uint(rows) & 63)) - 1
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (t *TT) Clone() *TT {
	c := NewTT(t.n)
	copy(c.words, t.words)
	return c
}

// Equal reports whether two tables over the same inputs are identical.
func (t *TT) Equal(o *TT) bool {
	if t.n != o.n {
		return false
	}
	rows := t.Rows()
	for i := range t.words {
		a, b := t.words[i], o.words[i]
		if (i+1)*64 > rows {
			mask := uint64(1)<<(uint(rows)&63) - 1
			if rows >= (i+1)*64 {
				mask = ^uint64(0)
			}
			a &= mask
			b &= mask
		}
		if a != b {
			return false
		}
	}
	return true
}

// String renders the table as a bit string, row 0 first.
func (t *TT) String() string {
	var sb strings.Builder
	for r := 0; r < t.Rows(); r++ {
		if t.Get(r) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// TTFromFunc builds a truth table from an arbitrary evaluator.
func TTFromFunc(n int, f func(in []bool) bool) *TT {
	t := NewTT(n)
	in := make([]bool, n)
	for r := 0; r < t.Rows(); r++ {
		for i := range in {
			in[i] = r&(1<<i) != 0
		}
		t.Set(r, f(in))
	}
	return t
}

// TTFromFunc2 lifts a two-input function into a TT whose input 0 is A
// and input 1 is B (so table row = A + 2B, while Func2 indexes by 2A+B).
func TTFromFunc2(f Func2) *TT {
	t := NewTT(2)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			t.Set(a|b<<1, f.Eval(a == 1, b == 1))
		}
	}
	return t
}
