package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFunc2Eval(t *testing.T) {
	cases := []struct {
		f    Func2
		want [4]bool // f(0,0), f(0,1), f(1,0), f(1,1)
	}{
		{Const0, [4]bool{false, false, false, false}},
		{Const1, [4]bool{true, true, true, true}},
		{AND, [4]bool{false, false, false, true}},
		{OR, [4]bool{false, true, true, true}},
		{NAND, [4]bool{true, true, true, false}},
		{NOR, [4]bool{true, false, false, false}},
		{XOR, [4]bool{false, true, true, false}},
		{XNOR, [4]bool{true, false, false, true}},
		{BufA, [4]bool{false, false, true, true}},
		{BufB, [4]bool{false, true, false, true}},
		{NotA, [4]bool{true, true, false, false}},
		{NotB, [4]bool{true, false, true, false}},
		{AnotB, [4]bool{false, false, true, false}},
		{NotAAndB, [4]bool{false, true, false, false}},
		// A NAND notB = NOT A OR B: f(0,0)=1 f(0,1)=1 f(1,0)=0 f(1,1)=1
		{AnandNB, [4]bool{true, true, false, true}},
		// notA NAND B = A OR NOT B: f(0,0)=1 f(0,1)=0 f(1,0)=1 f(1,1)=1
		{NAnotB, [4]bool{true, false, true, true}},
	}
	for _, c := range cases {
		for i := 0; i < 4; i++ {
			a, b := i>>1 == 1, i&1 == 1
			if got := c.f.Eval(a, b); got != c.want[i] {
				t.Errorf("%s.Eval(%v,%v) = %v, want %v", c.f, a, b, got, c.want[i])
			}
		}
	}
}

func TestTable2KeyEncodings(t *testing.T) {
	// Paper Table II: selected rows with explicit K1..K4.
	cases := []struct {
		f Func2
		k [4]bool
	}{
		{Const0, [4]bool{false, false, false, false}},
		{Const1, [4]bool{true, true, true, true}},
		{NOR, [4]bool{false, false, false, true}},
		{OR, [4]bool{true, true, true, false}},
		{NotAAndB, [4]bool{false, false, true, false}},
		{NotA, [4]bool{false, false, true, true}},
		{AnotB, [4]bool{false, true, false, false}},
		{NotB, [4]bool{false, true, false, true}},
		{XOR, [4]bool{false, true, true, false}},
		{NAND, [4]bool{false, true, true, true}},
		{BufB, [4]bool{true, false, true, false}},
		{XNOR, [4]bool{true, false, false, true}},
		{AND, [4]bool{true, false, false, false}},
		{BufA, [4]bool{true, true, false, false}},
	}
	for _, c := range cases {
		if got := c.f.Keys(); got != c.k {
			t.Errorf("%s.Keys() = %v, want %v", c.f, got, c.k)
		}
		if got := FromKeys(c.k); got != c.f {
			t.Errorf("FromKeys(%v) = %s, want %s", c.k, got, c.f)
		}
	}
}

func TestKeysRoundTrip(t *testing.T) {
	for _, f := range AllFunc2() {
		if got := FromKeys(f.Keys()); got != f {
			t.Errorf("round trip %s -> %v -> %s", f, f.Keys(), got)
		}
	}
}

func TestAllFunc2Complete(t *testing.T) {
	seen := map[Func2]bool{}
	for _, f := range AllFunc2() {
		if seen[f] {
			t.Errorf("duplicate function %s (0x%X)", f, uint8(f))
		}
		seen[f] = true
	}
	if len(seen) != 16 {
		t.Fatalf("AllFunc2 returned %d distinct functions, want 16", len(seen))
	}
}

func TestInvert(t *testing.T) {
	for _, f := range AllFunc2() {
		g := f.Invert()
		for i := 0; i < 4; i++ {
			a, b := i>>1 == 1, i&1 == 1
			if g.Eval(a, b) == f.Eval(a, b) {
				t.Errorf("%s.Invert() not complementary at (%v,%v)", f, a, b)
			}
		}
	}
	if AND.Invert() != NAND || OR.Invert() != NOR || XOR.Invert() != XNOR {
		t.Error("named complements do not match")
	}
}

func TestSwapInputs(t *testing.T) {
	for _, f := range AllFunc2() {
		g := f.SwapInputs()
		for i := 0; i < 4; i++ {
			a, b := i>>1 == 1, i&1 == 1
			if g.Eval(a, b) != f.Eval(b, a) {
				t.Errorf("%s.SwapInputs() wrong at (%v,%v)", f, a, b)
			}
		}
		if g.SwapInputs() != f {
			t.Errorf("SwapInputs not involutive for %s", f)
		}
	}
	if !AND.IsSymmetric() || !XOR.IsSymmetric() || BufA.IsSymmetric() {
		t.Error("IsSymmetric misclassifies")
	}
}

func TestDependence(t *testing.T) {
	if Const0.DependsOnA() || Const1.DependsOnB() {
		t.Error("constants must not depend on inputs")
	}
	if !BufA.DependsOnA() || BufA.DependsOnB() {
		t.Error("BufA dependence wrong")
	}
	if BufB.DependsOnA() || !BufB.DependsOnB() {
		t.Error("BufB dependence wrong")
	}
	if !AND.DependsOnA() || !AND.DependsOnB() {
		t.Error("AND must depend on both")
	}
}

func TestEvalWordMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range AllFunc2() {
		a, b := rng.Uint64(), rng.Uint64()
		w := f.EvalWord(a, b)
		for bit := 0; bit < 64; bit++ {
			ab := a&(1<<bit) != 0
			bb := b&(1<<bit) != 0
			want := f.Eval(ab, bb)
			if got := w&(1<<bit) != 0; got != want {
				t.Fatalf("%s.EvalWord bit %d = %v, want %v", f, bit, got, want)
			}
		}
	}
}

func TestTTBasics(t *testing.T) {
	tt := NewTT(3)
	if tt.Rows() != 8 || tt.Inputs() != 3 {
		t.Fatalf("unexpected geometry %d/%d", tt.Rows(), tt.Inputs())
	}
	tt.Set(5, true)
	if !tt.Get(5) || tt.Get(4) {
		t.Error("Set/Get mismatch")
	}
	if tt.OnesCount() != 1 {
		t.Errorf("OnesCount = %d, want 1", tt.OnesCount())
	}
	if got := tt.Eval([]bool{true, false, true}); !got { // row 1+4 = 5
		t.Error("Eval of row 5 should be true")
	}
	c := tt.Clone()
	if !c.Equal(tt) {
		t.Error("clone not equal")
	}
	c.Set(0, true)
	if c.Equal(tt) {
		t.Error("modified clone still equal")
	}
}

func TestTTLarge(t *testing.T) {
	// Cross the word boundary (n=7 -> 128 rows, two words).
	tt := NewTT(7)
	tt.Set(127, true)
	tt.Set(63, true)
	if tt.OnesCount() != 2 {
		t.Fatalf("OnesCount = %d, want 2", tt.OnesCount())
	}
	if !tt.Get(127) || !tt.Get(63) || tt.Get(64) {
		t.Error("cross-word Get wrong")
	}
}

func TestTTFromFunc(t *testing.T) {
	maj := TTFromFunc(3, func(in []bool) bool {
		n := 0
		for _, b := range in {
			if b {
				n++
			}
		}
		return n >= 2
	})
	if maj.OnesCount() != 4 {
		t.Errorf("majority has %d minterms, want 4", maj.OnesCount())
	}
	if !maj.Eval([]bool{true, true, false}) || maj.Eval([]bool{true, false, false}) {
		t.Error("majority evaluation wrong")
	}
}

func TestTTFromFunc2Consistent(t *testing.T) {
	for _, f := range AllFunc2() {
		tt := TTFromFunc2(f)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if tt.Eval([]bool{a == 1, b == 1}) != f.Eval(a == 1, b == 1) {
					t.Errorf("TTFromFunc2(%s) disagrees at (%d,%d)", f, a, b)
				}
			}
		}
	}
}

func TestTTString(t *testing.T) {
	tt := TTFromFunc2(AND)
	// rows ordered A + 2B: (0,0)(1,0)(0,1)(1,1) -> 0001
	if got := tt.String(); got != "0001" {
		t.Errorf("AND table string = %q, want 0001", got)
	}
}

func TestNewTTPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTT(21) should panic")
		}
	}()
	NewTT(21)
}

// Property: FromKeys and Keys are mutual inverses over random key vectors.
func TestQuickKeysInverse(t *testing.T) {
	f := func(k1, k2, k3, k4 bool) bool {
		k := [4]bool{k1, k2, k3, k4}
		return FromKeys(k).Keys() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EvalWord distributes over bitwise composition — evaluating
// XOR then inverting equals evaluating XNOR.
func TestQuickInvertWord(t *testing.T) {
	f := func(a, b uint64) bool {
		return XOR.EvalWord(a, b) == ^XNOR.EvalWord(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a TT built from a Func2 has the same minterm count as the
// function's popcount.
func TestQuickMintermCount(t *testing.T) {
	for _, f := range AllFunc2() {
		tt := TTFromFunc2(f)
		pc := 0
		for i := 0; i < 4; i++ {
			if f&(1<<i) != 0 {
				pc++
			}
		}
		if tt.OnesCount() != pc {
			t.Errorf("%s: minterm count %d != popcount %d", f, tt.OnesCount(), pc)
		}
	}
}
