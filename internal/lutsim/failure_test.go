package lutsim

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/mtj"
)

// Failure injection: the models must detect, not mask, out-of-spec
// operating points.

func TestWriteFailsBelowCriticalCurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Vwrite = 0.05 // far below what the MTJs need
	l := New(cfg)
	reps := l.Configure(logic.AND)
	failed := 0
	for _, r := range reps {
		if r.Error {
			failed++
		}
	}
	if failed != 4 {
		t.Errorf("%d/4 writes failed at 50 mV; all must", failed)
	}
	if l.Function() == logic.AND {
		t.Error("failed configuration must not claim the new function")
	}
	if _, err := EnergyTableFrom(l, logic.AND); err == nil {
		t.Error("energy table must refuse a failed configuration")
	}
}

func TestWriteFailsWithShortPulse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WritePulse = 10e-12 // 10 ps — no STT device switches that fast
	l := New(cfg)
	reps := l.Configure(logic.OR)
	for i, r := range reps {
		if !r.Error {
			t.Errorf("write %d succeeded with a 10 ps pulse", i)
		}
	}
}

func TestReadErrorsWithHugeComparatorOffset(t *testing.T) {
	cfg := DefaultConfig()
	l := New(cfg)
	l.Configure(logic.AND)
	l.senseOffset = 1.0 // volts — swamps any divider margin
	rep := l.Read(true, true, false)
	if !rep.Error {
		t.Error("read with a 1 V comparator offset must flag an error")
	}
}

func TestMonteCarloDetectsWeakOperatingPoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Vwrite = 0.18 // marginal: nominal writes work, PV tails fail
	res := MonteCarlo(cfg, logic.AND, 60, 5)
	if res.WriteErrors == 0 {
		t.Skip("marginal point happened to pass at this seed — acceptable")
	}
	t.Logf("marginal Vwrite: %d/%d write errors (the MC harness flags weak corners)",
		res.WriteErrors, res.WriteOps)
}

func TestSampledLUTStillFunctionalAcrossSeeds(t *testing.T) {
	cfg := DefaultConfig()
	dv := mtj.DefaultVariation()
	mv := DefaultMOSVariation()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := Sample(cfg, dv, mv, rng)
		for _, r := range l.Configure(logic.XOR) {
			if r.Error {
				t.Fatalf("seed %d: nominal-corner write failed", seed)
			}
		}
		for idx := 0; idx < 4; idx++ {
			a, b := idx>>1 == 1, idx&1 == 1
			rep := l.Read(a, b, false)
			if rep.Error || rep.Out != logic.XOR.Eval(a, b) {
				t.Fatalf("seed %d: PV instance misreads XOR(%v,%v)", seed, a, b)
			}
		}
	}
}
