// Package lutsim simulates the paper's 2-input MRAM-based LUT (Fig. 4)
// at the circuit level: four complementary STT-MTJ bit cells plus the
// scan-enable cell, a pass-transistor select tree, a voltage-divider
// read path and a current-limited write driver. It produces the
// transient waveforms of Fig. 5, the Monte-Carlo distributions of
// Fig. 6 and the energy numbers of Table IV, and provides an SRAM-LUT
// reference model for the overhead and side-channel comparisons.
//
// The electrical model is behavioural: resistances, currents and
// energies are computed from the device models in internal/mtj and a
// square-law MOS on-resistance, calibrated to land in the published
// order of magnitude (read ≈ 12 fJ, write ≈ 35 fJ, standby ≈ tens of
// aJ). The *shape* — standby ≪ read < write, and logic-0/logic-1 read
// energies equal to within a fraction of a percent — is what the
// reproduction asserts.
package lutsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/mtj"
)

// MOSParams is the square-law transistor model used for the periphery.
type MOSParams struct {
	Vth  float64 // threshold voltage [V]
	WL   float64 // W/L ratio
	RonK float64 // on-resistance constant [Ω·V]: Ron = RonK/(WL·(Vdd−Vth))
	IOff float64 // subthreshold leakage per off path [A]
}

// DefaultMOS returns the nominal 45 nm periphery.
func DefaultMOS() MOSParams {
	return MOSParams{Vth: 0.4, WL: 3.0, RonK: 1800, IOff: 15e-9}
}

// Ron returns the on-resistance at the given supply [Ω].
func (m MOSParams) Ron(vdd float64) float64 {
	ov := vdd - m.Vth
	if ov <= 0.05 {
		ov = 0.05
	}
	return m.RonK / (m.WL * ov)
}

// MOSVariation is the paper's periphery Monte-Carlo recipe (§IV-D):
// 10 % σ on V_th, 1 % σ on transistor dimensions.
type MOSVariation struct {
	VthSigma float64
	WLSigma  float64
}

// DefaultMOSVariation matches the paper.
func DefaultMOSVariation() MOSVariation {
	return MOSVariation{VthSigma: 0.10, WLSigma: 0.01}
}

// Sample draws a process-variation instance of the periphery.
func (m MOSParams) Sample(v MOSVariation, rng *rand.Rand) MOSParams {
	s := m
	s.Vth *= 1 + v.VthSigma*rng.NormFloat64()
	s.WL *= 1 + v.WLSigma*rng.NormFloat64()
	s.IOff *= math.Exp(0.5 * rng.NormFloat64() * v.VthSigma * 10) // leakage is exponential in Vth
	return s
}

// Config is the LUT's electrical operating point.
type Config struct {
	Vdd         float64 // logic supply [V]
	Vread       float64 // read-path supply V+ − V− [V]
	Vwrite      float64 // write driver compliance [V]
	ReadPulse   float64 // sense duration [s]
	WritePulse  float64 // maximum write pulse [s]
	ClockPeriod float64 // standby accounting window [s]
	MOS         MOSParams
	Device      mtj.Params
}

// DefaultConfig returns the calibrated operating point.
func DefaultConfig() Config {
	return Config{
		Vdd:         1.0,
		Vread:       0.8,
		Vwrite:      0.35,
		ReadPulse:   0.27e-9,
		WritePulse:  5e-9,
		ClockPeriod: 2.5e-9,
		MOS:         DefaultMOS(),
		Device:      mtj.Default(),
	}
}

// LUT is one 2-input MRAM LUT instance (possibly process-varied).
type LUT struct {
	Cfg    Config
	Cells  [4]*mtj.Cell // truth-table cells, indexed by 2A+B
	SECell *mtj.Cell    // hidden scan-enable cell
	mos    MOSParams    // this instance's periphery
	// senseOffset models comparator input offset caused by Vth
	// mismatch; a read fails when the divider margin is below it.
	senseOffset float64
	fn          logic.Func2
}

// New builds a nominal (variation-free) LUT.
func New(cfg Config) *LUT {
	l := &LUT{Cfg: cfg, mos: cfg.MOS, senseOffset: 0.01}
	for i := range l.Cells {
		l.Cells[i] = mtj.NewCell(cfg.Device, cfg.Device)
	}
	l.SECell = mtj.NewCell(cfg.Device, cfg.Device)
	return l
}

// Sample builds a process-variation instance using the paper's recipe.
func Sample(cfg Config, dv mtj.Variation, mv MOSVariation, rng *rand.Rand) *LUT {
	l := &LUT{Cfg: cfg, mos: cfg.MOS.Sample(mv, rng)}
	for i := range l.Cells {
		l.Cells[i] = cfg.Device.SampleCell(dv, rng)
	}
	l.SECell = cfg.Device.SampleCell(dv, rng)
	// Comparator offset from Vth mismatch: σ ≈ 10 mV.
	l.senseOffset = math.Abs(0.01 * rng.NormFloat64() * (1 + 10*mv.VthSigma*rng.NormFloat64()))
	if l.senseOffset < 1e-4 {
		l.senseOffset = 1e-4
	}
	return l
}

// WriteReport describes one bit-cell write.
type WriteReport struct {
	Energy  float64 // [J]
	Delay   float64 // switching time of the slower junction [s]
	Current float64 // write current through the P-state junction [A]
	Error   bool    // switching did not complete within the pulse
}

// writeCell performs one complementary write.
func (l *LUT) writeCell(cell *mtj.Cell, bit bool) WriteReport {
	cfg := l.Cfg
	ron := l.mos.Ron(cfg.Vdd) // access + driver path
	path := 2 * ron

	// The two junctions switch in opposite directions. Current depends
	// on each junction's instantaneous state; use the pre-switch state
	// (worst case for delay, dominant for energy).
	rP := cell.Main.Resistance(mtj.Parallel)
	rAP := cell.Comp.Resistance(mtj.AntiParallel)
	iFromP := cfg.Vwrite / (rP + path)   // junction starting in P
	iFromAP := cfg.Vwrite / (rAP + path) // junction starting in AP

	dP := cell.Main.SwitchingDelay(iFromP)
	dAP := cell.Comp.SwitchingDelay(iFromAP)
	delay := math.Max(dP, dAP)

	// Self-terminating driver: each junction draws current until it
	// switches (plus a 20 % guard band), bounded by the pulse width.
	tP := math.Min(dP*1.2, cfg.WritePulse)
	tAP := math.Min(dAP*1.2, cfg.WritePulse)
	energy := cfg.Vwrite * (iFromP*tP + iFromAP*tAP)

	rep := WriteReport{
		Energy:  energy,
		Delay:   delay,
		Current: iFromP,
		Error:   delay > cfg.WritePulse,
	}
	if !rep.Error {
		cell.Write(bit)
	}
	return rep
}

// Configure programs the four truth-table cells for the function,
// shifting key bits in through BL in the paper's AB = 11,10,01,00
// order. It returns the per-cell reports (in that shift order).
func (l *LUT) Configure(f logic.Func2) [4]WriteReport {
	keys := f.Keys() // K1..K4 = f(1,1), f(1,0), f(0,1), f(0,0)
	order := [4]int{3, 2, 1, 0}
	var reps [4]WriteReport
	anyErr := false
	for i, cellIdx := range order {
		reps[i] = l.writeCell(l.Cells[cellIdx], keys[i])
		anyErr = anyErr || reps[i].Error
	}
	if !anyErr {
		l.fn = f
	}
	return reps
}

// SetSE programs the hidden scan-enable cell.
func (l *LUT) SetSE(bit bool) WriteReport { return l.writeCell(l.SECell, bit) }

// Function returns the currently programmed function.
func (l *LUT) Function() logic.Func2 { return l.fn }

// ReadReport describes one read operation.
type ReadReport struct {
	Out     bool    // value at OUT (after scan-enable muxing)
	Raw     bool    // LUT cell value before the SE mux
	Energy  float64 // [J]
	Power   float64 // average read power [W]
	Current float64 // divider current [A]
	Margin  float64 // sense margin at the comparator [V]
	Error   bool    // sensed value differed from the stored bit
}

// Read evaluates the LUT for inputs (a, b) with the scan-enable signal
// se. When se is asserted and the SE cell stores 1, OUT carries the
// complemented value (paper §III-C).
func (l *LUT) Read(a, b, se bool) ReadReport {
	idx := 0
	if a {
		idx += 2
	}
	if b {
		idx++
	}
	cell := l.Cells[idx]
	stored := cell.Stored
	sensed, margin := cell.ReadBit(l.Cfg.Vread)
	errRead := margin < l.senseOffset
	if errRead {
		sensed = !stored // pessimistic: an offset-dominated sense flips
	}

	current := cell.ReadCurrent(l.Cfg.Vread)
	power := l.Cfg.Vread * current
	energy := power * l.Cfg.ReadPulse

	out := sensed
	if se {
		// SE path also senses the SE cell (adds its divider energy).
		seBit, seMargin := l.SECell.ReadBit(l.Cfg.Vread)
		if seMargin < l.senseOffset {
			seBit = !l.SECell.Stored
		}
		seCur := l.SECell.ReadCurrent(l.Cfg.Vread)
		energy += l.Cfg.Vread * seCur * l.Cfg.ReadPulse
		power += l.Cfg.Vread * seCur
		if seBit {
			out = !out
		}
	}
	return ReadReport{
		Out:     out,
		Raw:     sensed,
		Energy:  energy,
		Power:   power,
		Current: current,
		Margin:  margin,
		Error:   errRead,
	}
}

// StandbyEnergy returns the leakage energy over one clock period with
// the read and write paths disabled. Non-volatility means only
// subthreshold leakage of the periphery remains — the attojoule figure
// of Table IV.
func (l *LUT) StandbyEnergy() float64 {
	return l.Cfg.Vdd * l.mos.IOff * l.Cfg.ClockPeriod
}

// EnergyRow is one row of the Table IV reproduction.
type EnergyRow struct {
	Label   string
	Read    float64 // [J]
	Write   float64 // [J]
	Standby float64 // [J]
}

// EnergyTable reproduces Table IV on a nominal LUT. A perfectly
// nominal device pair gives exactly equal logic-0/logic-1 energies;
// use EnergyTableFrom with a Sampled LUT to see the sub-percent
// mismatch-driven asymmetry the paper reports (12.47 vs 12.50 fJ).
func EnergyTable(cfg Config, f logic.Func2) ([3]EnergyRow, error) {
	return EnergyTableFrom(New(cfg), f)
}

// EnergyTableFrom measures read/write/standby energies for logic "0",
// logic "1" and their average on the given LUT instance configured as
// the given function.
func EnergyTableFrom(l *LUT, f logic.Func2) ([3]EnergyRow, error) {
	reps := l.Configure(f)
	for _, r := range reps {
		if r.Error {
			return [3]EnergyRow{}, fmt.Errorf("lutsim: configuration write failed")
		}
	}
	var sumR, sumW [2]float64
	var cntR, cntW [2]float64
	// Read and write energy per stored value, cell by cell: storing 0
	// and 1 in the *same* cell isolates the secret-dependent power
	// component (cell-to-cell variation is input-dependent and public).
	for idx := 0; idx < 4; idx++ {
		a, b := idx>>1 == 1, idx&1 == 1
		saved := l.Cells[idx].Stored
		for v := 0; v < 2; v++ {
			wrep := l.writeCell(l.Cells[idx], v == 1)
			sumW[v] += wrep.Energy
			cntW[v]++
			rrep := l.Read(a, b, false)
			sumR[v] += rrep.Energy
			cntR[v]++
		}
		l.Cells[idx].Write(saved)
	}
	standby := l.StandbyEnergy()
	row := func(label string, v int) EnergyRow {
		r := EnergyRow{Label: label, Standby: standby}
		if cntR[v] > 0 {
			r.Read = sumR[v] / cntR[v]
		}
		if cntW[v] > 0 {
			r.Write = sumW[v] / cntW[v]
		}
		return r
	}
	r0 := row(`Logic "0"`, 0)
	r1 := row(`Logic "1"`, 1)
	avg := EnergyRow{
		Label:   "Average",
		Read:    (r0.Read + r1.Read) / 2,
		Write:   (r0.Write + r1.Write) / 2,
		Standby: standby,
	}
	return [3]EnergyRow{r0, r1, avg}, nil
}
