package lutsim

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/mtj"
)

func TestConfigureAndReadAllFunctions(t *testing.T) {
	cfg := DefaultConfig()
	for _, f := range logic.AllFunc2() {
		l := New(cfg)
		reps := l.Configure(f)
		for i, r := range reps {
			if r.Error {
				t.Fatalf("%s: write %d failed (delay %v, pulse %v)", f, i, r.Delay, cfg.WritePulse)
			}
		}
		for idx := 0; idx < 4; idx++ {
			a, b := idx>>1 == 1, idx&1 == 1
			rep := l.Read(a, b, false)
			if rep.Error {
				t.Fatalf("%s: read error at (%v,%v)", f, a, b)
			}
			if rep.Out != f.Eval(a, b) {
				t.Errorf("%s(%v,%v) = %v, want %v", f, a, b, rep.Out, f.Eval(a, b))
			}
		}
	}
}

func TestScanEnableInversion(t *testing.T) {
	cfg := DefaultConfig()
	l := New(cfg)
	l.Configure(logic.OR)
	l.SetSE(true)
	for idx := 0; idx < 4; idx++ {
		a, b := idx>>1 == 1, idx&1 == 1
		plain := l.Read(a, b, false)
		scan := l.Read(a, b, true)
		if scan.Out == plain.Out {
			t.Errorf("SE=1 with MTJ_SE=1 must invert OUT at (%v,%v)", a, b)
		}
		// Paper §IV-C: OR + inversion is indistinguishable from NOR.
		if scan.Out != logic.NOR.Eval(a, b) {
			t.Errorf("scan-mode OR should read as NOR at (%v,%v)", a, b)
		}
	}
	l.SetSE(false)
	for idx := 0; idx < 4; idx++ {
		a, b := idx>>1 == 1, idx&1 == 1
		if l.Read(a, b, true).Out != logic.OR.Eval(a, b) {
			t.Error("SE asserted with MTJ_SE=0 must not invert")
		}
	}
}

func TestEnergyTableShape(t *testing.T) {
	rows, err := EnergyTable(DefaultConfig(), logic.AND)
	if err != nil {
		t.Fatal(err)
	}
	avg := rows[2]
	// Order-of-magnitude calibration against Table IV.
	if avg.Read < 2e-15 || avg.Read > 60e-15 {
		t.Errorf("read energy %v J outside the expected fJ range", avg.Read)
	}
	if avg.Write < 10e-15 || avg.Write > 200e-15 {
		t.Errorf("write energy %v J outside the expected tens-of-fJ range", avg.Write)
	}
	if avg.Standby < 5e-18 || avg.Standby > 200e-18 {
		t.Errorf("standby energy %v J outside the expected aJ range", avg.Standby)
	}
	// Shape: standby ≪ read < write.
	if !(avg.Standby < avg.Read/100) {
		t.Errorf("standby %v not ≪ read %v", avg.Standby, avg.Read)
	}
	if !(avg.Read < avg.Write) {
		t.Errorf("read %v not < write %v", avg.Read, avg.Write)
	}
	// Symmetry: logic-0 and logic-1 read within 1%.
	if d := math.Abs(rows[0].Read-rows[1].Read) / avg.Read; d > 0.01 {
		t.Errorf("read energy asymmetry %v > 1%%", d)
	}
}

func TestEnergyAsymmetryTinyUnderPV(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(5))
	l := Sample(cfg, mtj.DefaultVariation(), DefaultMOSVariation(), rng)
	rows, err := EnergyTableFrom(l, logic.AND)
	if err != nil {
		t.Fatal(err)
	}
	d := math.Abs(rows[0].Read-rows[1].Read) / rows[2].Read
	if d == 0 {
		t.Log("sampled instance has exactly symmetric reads (unlikely but fine)")
	}
	if d > 0.02 {
		t.Errorf("PV read asymmetry %v > 2%% — would leak through power", d)
	}
}

func TestMonteCarloFig6(t *testing.T) {
	res := MonteCarlo(DefaultConfig(), logic.AND, 100, 42)
	if res.Instances != 100 {
		t.Fatal("instance count wrong")
	}
	// §IV-D: error-free across 100 instances.
	if res.ReadErrors != 0 || res.WriteErrors != 0 {
		t.Errorf("errors under PV: %d read, %d write", res.ReadErrors, res.WriteErrors)
	}
	// Fig. 6c: R_AP and R_P clearly separated (wide read margin).
	if sep := res.MarginSeparation(); sep <= 0 {
		t.Errorf("R_AP and R_P distributions overlap (separation %v)", sep)
	}
	// Fig. 6a/6b: read-0 and read-1 power distributions overlap almost
	// completely.
	if ov := res.PowerOverlap(); ov > 0.5 {
		t.Errorf("power distributions separated by %v sigma — P-SCA leak", ov)
	}
	// Sanity: currents in the tens of µA.
	if res.ReadCurrent0.Mean < 10e-6 || res.ReadCurrent0.Mean > 200e-6 {
		t.Errorf("mean read current %v A implausible", res.ReadCurrent0.Mean)
	}
}

func TestDistributionStats(t *testing.T) {
	d := newDistribution([]float64{1, 2, 3, 4, 5})
	if d.Mean != 3 || d.Min != 1 || d.Max != 5 {
		t.Errorf("stats wrong: %+v", d)
	}
	if math.Abs(d.Sigma-math.Sqrt(2)) > 1e-12 {
		t.Errorf("sigma = %v, want sqrt(2)", d.Sigma)
	}
	edges, counts := d.Histogram(4)
	if len(edges) != 5 || len(counts) != 4 {
		t.Fatal("histogram geometry")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram lost samples: %d", total)
	}
	if p := d.Percentile(0.5); p != 3 {
		t.Errorf("median %v, want 3", p)
	}
}

func TestTransientFig5(t *testing.T) {
	w, err := Transient(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Points) == 0 {
		t.Fatal("empty waveform")
	}
	// Time must be strictly increasing.
	for i := 1; i < len(w.Points); i++ {
		if w.Points[i].T <= w.Points[i-1].T {
			t.Fatalf("time not monotone at %d", i)
		}
	}
	names := w.SignalNames()
	for _, want := range []string{"WE", "RE", "SE", "A", "B", "OUT", "Iread_uA"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("signal %s missing", want)
		}
	}
	// Phase (a): AND reads — OUT high only for A=B=1 (last of first 4 reads).
	_, outs := w.Signal("OUT")
	_, res := w.Signal("RE")
	var readOuts []float64
	for i := range outs {
		if res[i] > 0 {
			readOuts = append(readOuts, outs[i])
		}
	}
	if len(readOuts) != 12 {
		t.Fatalf("expected 12 read samples (3 phases × 4), got %d", len(readOuts))
	}
	andWant := []float64{0, 0, 0, 1} // inputs 00,01,10,11
	norWant := []float64{1, 0, 0, 0}
	norScanWant := []float64{0, 1, 1, 1} // inverted by SE cell
	check := func(base int, want []float64, label string) {
		for i, wv := range want {
			got := readOuts[base+i] / DefaultConfig().Vdd
			if got != wv {
				t.Errorf("%s read %d: OUT=%v, want %v", label, i, got, wv)
			}
		}
	}
	check(0, andWant, "AND")
	check(4, norWant, "NOR")
	check(8, norScanWant, "NOR/scan")
}

func TestWaveformCSV(t *testing.T) {
	w, err := Transient(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(w.Points)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(w.Points)+1)
	}
	if !strings.HasPrefix(lines[0], "t_ns,") {
		t.Errorf("CSV header %q", lines[0])
	}
}

func TestSRAMAsymmetricRead(t *testing.T) {
	s := NewSRAM(DefaultConfig())
	s.Configure(logic.AND)
	var e0, e1 float64
	for idx := 0; idx < 4; idx++ {
		a, b := idx>>1 == 1, idx&1 == 1
		rep := s.Read(a, b)
		if rep.Out != logic.AND.Eval(a, b) {
			t.Errorf("SRAM read wrong at (%v,%v)", a, b)
		}
		if rep.Out {
			e1 = rep.Energy
		} else {
			e0 = rep.Energy
		}
	}
	// The SRAM read energy must be strongly data-dependent — this is
	// the leak CPA exploits.
	if ratio := e0 / e1; ratio < 2 {
		t.Errorf("SRAM read energy ratio %v — model should be asymmetric", ratio)
	}
}

func TestSRAMVsMRAMStandby(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	s := NewSRAM(cfg)
	if s.StandbyEnergy() < 3*m.StandbyEnergy() {
		t.Errorf("SRAM standby %v should exceed MRAM %v clearly",
			s.StandbyEnergy(), m.StandbyEnergy())
	}
}

func TestSampleSRAMDeterministicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := SampleSRAM(DefaultConfig(), DefaultMOSVariation(), rng)
	s.Configure(logic.XOR)
	for idx := 0; idx < 4; idx++ {
		a, b := idx>>1 == 1, idx&1 == 1
		if s.Read(a, b).Out != logic.XOR.Eval(a, b) {
			t.Error("sampled SRAM misreads")
		}
	}
	if s.WriteEnergy() <= 0 {
		t.Error("write energy must be positive")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	a := MonteCarlo(DefaultConfig(), logic.AND, 20, 7)
	b := MonteCarlo(DefaultConfig(), logic.AND, 20, 7)
	if a.ReadPower0.Mean != b.ReadPower0.Mean || a.RP.Sigma != b.RP.Sigma {
		t.Error("Monte Carlo not deterministic for equal seeds")
	}
}
