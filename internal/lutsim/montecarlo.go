package lutsim

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/logic"
	"repro/internal/mtj"
)

// Distribution summarizes a sampled quantity.
type Distribution struct {
	N           int
	Mean, Sigma float64
	Min, Max    float64
	Samples     []float64
}

func newDistribution(samples []float64) Distribution {
	d := Distribution{N: len(samples), Samples: samples, Min: math.Inf(1), Max: math.Inf(-1)}
	if d.N == 0 {
		d.Min, d.Max = 0, 0
		return d
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
		if s < d.Min {
			d.Min = s
		}
		if s > d.Max {
			d.Max = s
		}
	}
	d.Mean = sum / float64(d.N)
	varsum := 0.0
	for _, s := range samples {
		varsum += (s - d.Mean) * (s - d.Mean)
	}
	d.Sigma = math.Sqrt(varsum / float64(d.N))
	return d
}

// Histogram buckets the samples into nb equal-width bins.
func (d Distribution) Histogram(nb int) (edges []float64, counts []int) {
	if nb < 1 || d.N == 0 {
		return nil, nil
	}
	edges = make([]float64, nb+1)
	counts = make([]int, nb)
	span := d.Max - d.Min
	if span == 0 {
		span = 1
	}
	for i := 0; i <= nb; i++ {
		edges[i] = d.Min + span*float64(i)/float64(nb)
	}
	for _, s := range d.Samples {
		idx := int(float64(nb) * (s - d.Min) / span)
		if idx >= nb {
			idx = nb - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return edges, counts
}

// Percentile returns the p-quantile (0..1) of the samples.
func (d Distribution) Percentile(p float64) float64 {
	if d.N == 0 {
		return 0
	}
	s := append([]float64(nil), d.Samples...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// MCResult collects the Fig. 6 Monte-Carlo outputs.
type MCResult struct {
	Instances int
	// Read currents and powers, split by the value being read (Fig. 6a,
	// 6b show the two overlapping distributions).
	ReadCurrent0 Distribution // [A]
	ReadCurrent1 Distribution
	ReadPower0   Distribution // [W]
	ReadPower1   Distribution
	// Device resistance distributions (Fig. 6c).
	RP  Distribution // [Ω]
	RAP Distribution
	// Reliability counters (§IV-D: <0.01 % errors over the error-free
	// instances).
	ReadErrors  int
	WriteErrors int
	ReadOps     int
	WriteOps    int
}

// MonteCarlo runs the paper's §IV-D experiment: `instances` PV samples
// of a 2-input MRAM LUT implementing the function f (the paper uses
// AND), measuring read currents, read powers and MTJ resistances, and
// counting read/write failures.
func MonteCarlo(cfg Config, f logic.Func2, instances int, seed int64) *MCResult {
	rng := rand.New(rand.NewSource(seed))
	dv := mtj.DefaultVariation()
	mv := DefaultMOSVariation()

	res := &MCResult{Instances: instances}
	var i0, i1, p0, p1, rp, rap []float64
	for inst := 0; inst < instances; inst++ {
		l := Sample(cfg, dv, mv, rng)
		for _, rep := range l.Configure(f) {
			res.WriteOps++
			if rep.Error {
				res.WriteErrors++
			}
		}
		for _, c := range l.Cells {
			rp = append(rp, c.Main.Resistance(mtj.Parallel))
			rap = append(rap, c.Main.Resistance(mtj.AntiParallel))
		}
		for idx := 0; idx < 4; idx++ {
			a, b := idx>>1 == 1, idx&1 == 1
			rep := l.Read(a, b, false)
			res.ReadOps++
			if rep.Error {
				res.ReadErrors++
			}
			if f.Eval(a, b) {
				i1 = append(i1, rep.Current)
				p1 = append(p1, rep.Power)
			} else {
				i0 = append(i0, rep.Current)
				p0 = append(p0, rep.Power)
			}
		}
	}
	res.ReadCurrent0 = newDistribution(i0)
	res.ReadCurrent1 = newDistribution(i1)
	res.ReadPower0 = newDistribution(p0)
	res.ReadPower1 = newDistribution(p1)
	res.RP = newDistribution(rp)
	res.RAP = newDistribution(rap)
	return res
}

// PowerOverlap quantifies how indistinguishable the read-0 and read-1
// power distributions are: it returns |µ0−µ1| / max(σ0, σ1). Values
// well below 1 mean the distributions overlap almost completely — the
// paper's P-SCA mitigation claim.
func (r *MCResult) PowerOverlap() float64 {
	s := math.Max(r.ReadPower0.Sigma, r.ReadPower1.Sigma)
	if s == 0 {
		return 0
	}
	return math.Abs(r.ReadPower0.Mean-r.ReadPower1.Mean) / s
}

// MarginSeparation quantifies the read-margin claim: the gap between
// the lowest R_AP and the highest R_P sample, normalized by the mean
// R_P. Positive values mean the distributions never cross (wide read
// margin under PV).
func (r *MCResult) MarginSeparation() float64 {
	if r.RP.N == 0 || r.RAP.N == 0 {
		return 0
	}
	return (r.RAP.Min - r.RP.Max) / r.RP.Mean
}
