package lutsim

import (
	"math/rand"

	"repro/internal/logic"
)

// SRAMLUT is the conventional 6T-SRAM-based 2-input LUT the paper
// compares against (§II-A, §IV-E): volatile, leaky in standby, and —
// crucially for the side-channel analysis — with a data-dependent read
// power: reading a stored 0 discharges the precharged bitline while
// reading a 1 does not, so the read energy differs by a large, easily
// measurable factor.
type SRAMLUT struct {
	Cfg   Config
	cells [4]bool
	fn    logic.Func2
	// BitlineCap is the effective bitline capacitance [F].
	BitlineCap float64
	// LeakPerCell is the standby leakage per 6T cell [A].
	LeakPerCell float64
	// asymmetric component (per-instance, PV-varied)
	dischargeFrac float64
}

// NewSRAM builds a nominal SRAM LUT at the same operating point.
func NewSRAM(cfg Config) *SRAMLUT {
	return &SRAMLUT{
		Cfg:           cfg,
		BitlineCap:    20e-15,
		LeakPerCell:   60e-9,
		dischargeFrac: 1.0,
	}
}

// SampleSRAM builds a PV instance.
func SampleSRAM(cfg Config, mv MOSVariation, rng *rand.Rand) *SRAMLUT {
	s := NewSRAM(cfg)
	s.BitlineCap *= 1 + 0.05*rng.NormFloat64()
	s.LeakPerCell *= 1 + mv.VthSigma*10*rng.Float64()
	s.dischargeFrac = 1 + 0.05*rng.NormFloat64()
	return s
}

// Configure programs the truth table (instant for SRAM).
func (s *SRAMLUT) Configure(f logic.Func2) {
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			s.cells[a<<1|b] = f.Eval(a == 1, b == 1)
		}
	}
	s.fn = f
}

// Read evaluates the LUT. The returned report uses the same shape as
// the MRAM model; Current is the average bitline discharge current.
func (s *SRAMLUT) Read(a, b bool) ReadReport {
	idx := 0
	if a {
		idx += 2
	}
	if b {
		idx++
	}
	bit := s.cells[idx]
	// Precharge-and-discharge read: a stored 0 pulls the bitline low
	// (full CV² event); a stored 1 leaves it precharged (only a small
	// precharge top-up).
	var energy float64
	if bit {
		energy = 0.12 * s.BitlineCap * s.Cfg.Vdd * s.Cfg.Vdd * s.dischargeFrac
	} else {
		energy = s.BitlineCap * s.Cfg.Vdd * s.Cfg.Vdd * s.dischargeFrac
	}
	return ReadReport{
		Out:     bit,
		Raw:     bit,
		Energy:  energy,
		Power:   energy / s.Cfg.ReadPulse,
		Current: energy / s.Cfg.ReadPulse / s.Cfg.Vdd,
	}
}

// WriteEnergy returns the energy of one cell write (bit-flip of a 6T
// cell plus bitline swing).
func (s *SRAMLUT) WriteEnergy() float64 {
	return 1.5 * s.BitlineCap * s.Cfg.Vdd * s.Cfg.Vdd
}

// StandbyEnergy returns leakage over one clock period: four 6T cells
// must stay powered to retain state — orders of magnitude above the
// non-volatile MRAM figure.
func (s *SRAMLUT) StandbyEnergy() float64 {
	return 4 * s.LeakPerCell * s.Cfg.Vdd * s.Cfg.ClockPeriod
}

// Function returns the programmed function.
func (s *SRAMLUT) Function() logic.Func2 { return s.fn }
