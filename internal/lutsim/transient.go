package lutsim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
)

// TracePoint is one sample of the transient simulation.
type TracePoint struct {
	T       float64 // time [s]
	Signals map[string]float64
}

// Waveform is a named transient trace (reproduction of Fig. 5).
type Waveform struct {
	Name   string
	Points []TracePoint
}

// Transient reproduces the Fig. 5 experiment: configure the LUT as an
// AND gate, sweep all four input combinations in functional mode, then
// reconfigure the same LUT as NOR (updating MTJ_SE as the paper shows)
// and sweep again — demonstrating in-field polymorphism. Signals:
// WE, RE, SE, A, B, BL, OUT, I_read(µA).
func Transient(cfg Config) (*Waveform, error) {
	l := New(cfg)
	w := &Waveform{Name: "fig5"}
	t := 0.0
	emit := func(dt float64, sig map[string]float64) {
		t += dt
		w.Points = append(w.Points, TracePoint{T: t, Signals: sig})
	}

	phase := func(f logic.Func2, seBit bool, seSignal bool) error {
		// Write phase: shift the four key bits in through BL.
		keys := f.Keys()
		for i, k := range keys {
			rep := l.writeCell(l.Cells[[4]int{3, 2, 1, 0}[i]], k)
			if rep.Error {
				return fmt.Errorf("lutsim: transient write %d failed", i)
			}
			bl := 0.0
			if k {
				bl = cfg.Vdd
			}
			emit(cfg.WritePulse, map[string]float64{
				"WE": cfg.Vdd, "RE": 0, "SE": 0, "BL": bl, "OUT": 0, "Iread_uA": 0,
				"A": float64(([4]int{3, 2, 1, 0}[i] >> 1)) * cfg.Vdd,
				"B": float64(([4]int{3, 2, 1, 0}[i] & 1)) * cfg.Vdd,
			})
		}
		l.fn = f
		// Update MTJ_SE (paper Fig. 5: its content changes with the
		// configuration to keep test-mode responses consistent).
		if rep := l.SetSE(seBit); rep.Error {
			return fmt.Errorf("lutsim: transient SE write failed")
		}
		seV := 0.0
		if seBit {
			seV = cfg.Vdd
		}
		emit(cfg.WritePulse, map[string]float64{
			"WE": cfg.Vdd, "RE": 0, "SE": 0, "BL": seV, "OUT": 0, "Iread_uA": 0, "A": 0, "B": 0,
		})

		// Read phase: all four input combinations.
		for idx := 0; idx < 4; idx++ {
			a, b := idx>>1 == 1, idx&1 == 1
			rep := l.Read(a, b, seSignal)
			out := 0.0
			if rep.Out {
				out = cfg.Vdd
			}
			se := 0.0
			if seSignal {
				se = cfg.Vdd
			}
			emit(cfg.ReadPulse*4, map[string]float64{
				"WE": 0, "RE": cfg.Vdd, "SE": se,
				"A": boolV(a, cfg.Vdd), "B": boolV(b, cfg.Vdd),
				"BL": 0, "OUT": out, "Iread_uA": rep.Current * 1e6,
			})
		}
		return nil
	}

	// (a) AND gate, functional mode.
	if err := phase(logic.AND, false, false); err != nil {
		return nil, err
	}
	// (b) reconfigured to NOR, functional mode.
	if err := phase(logic.NOR, true, false); err != nil {
		return nil, err
	}
	// (c) operating modes: NOR read through the scan path (SE=1, SE
	// cell = 1 inverts OUT).
	if err := phase(logic.NOR, true, true); err != nil {
		return nil, err
	}
	return w, nil
}

func boolV(b bool, v float64) float64 {
	if b {
		return v
	}
	return 0
}

// SignalNames lists the signals present in the waveform, sorted.
func (w *Waveform) SignalNames() []string {
	set := map[string]bool{}
	for _, p := range w.Points {
		for k := range p.Signals {
			set[k] = true
		}
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Signal extracts one signal as (t, v) pairs.
func (w *Waveform) Signal(name string) (ts, vs []float64) {
	for _, p := range w.Points {
		if v, ok := p.Signals[name]; ok {
			ts = append(ts, p.T)
			vs = append(vs, v)
		}
	}
	return ts, vs
}

// WriteCSV emits the waveform as CSV (time in ns).
func (w *Waveform) WriteCSV(out io.Writer) error {
	names := w.SignalNames()
	if _, err := fmt.Fprintf(out, "t_ns,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for _, p := range w.Points {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%.4f", p.T*1e9))
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.4g", p.Signals[n]))
		}
		if _, err := fmt.Fprintln(out, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
