// Package mtj models the Spin Transfer Torque Magnetic Tunnel Junction
// (STT-MTJ) devices from which the paper's MRAM-based LUTs are built.
// The model is behavioural, in the spirit of the technology-agnostic
// SPICE macro-model the paper adopts from Kim et al. [20]: geometry and
// material parameters map to the parallel/anti-parallel resistances
// (via the resistance-area product and TMR), the critical switching
// current, a Sun-model switching delay, and thermal retention. A
// process-variation sampler reproduces the paper's Monte-Carlo recipe
// (±1 % MTJ dimensions; the CMOS periphery varies separately in
// internal/lutsim).
package mtj

import (
	"fmt"
	"math"
	"math/rand"
)

// State is the magnetic state of the free layer.
type State int

// MTJ states: parallel (low resistance, logic-friendly "P") and
// anti-parallel (high resistance, "AP").
const (
	Parallel State = iota
	AntiParallel
)

func (s State) String() string {
	if s == Parallel {
		return "P"
	}
	return "AP"
}

// Params collects the device parameters. Defaults follow a 45 nm
// STT-MRAM node (circular MTJ, MgO barrier).
type Params struct {
	Diameter float64 // free-layer diameter [m]
	TOxide   float64 // MgO barrier thickness [m]
	RA       float64 // resistance-area product, parallel state [Ω·m²]
	TMR      float64 // tunnel magnetoresistance ratio (R_AP = R_P·(1+TMR))
	Jc0      float64 // critical switching current density [A/m²]
	Delta    float64 // thermal stability factor Δ = E_b/kT
	Tau0     float64 // attempt time [s]
	TempK    float64 // operating temperature [K]
}

// Default returns the nominal 45 nm device used throughout the
// reproduction.
func Default() Params {
	return Params{
		Diameter: 40e-9,
		TOxide:   1.1e-9,
		RA:       5e-12, // 5 Ω·µm²
		TMR:      1.5,
		Jc0:      1.5e10, // ~19 µA on a 40 nm dot (low-Jc perpendicular MTJ)
		Delta:    60,
		Tau0:     1e-9,
		TempK:    300,
	}
}

// Area returns the junction area [m²].
func (p Params) Area() float64 {
	r := p.Diameter / 2
	return math.Pi * r * r
}

// Resistance returns the junction resistance in the given state [Ω].
func (p Params) Resistance(s State) float64 {
	rp := p.RA / p.Area()
	if s == AntiParallel {
		return rp * (1 + p.TMR)
	}
	return rp
}

// CriticalCurrent returns the zero-temperature critical switching
// current Ic0 [A].
func (p Params) CriticalCurrent() float64 { return p.Jc0 * p.Area() }

// SwitchingDelay returns the mean time to switch the free layer under
// a constant write current [s]. Above the critical current the device
// switches in the precessional regime (delay inversely proportional to
// the overdrive, Sun model); below it switching is thermally activated
// and exponentially slow.
func (p Params) SwitchingDelay(current float64) float64 {
	ic := p.CriticalCurrent()
	if current <= 0 {
		return math.Inf(1)
	}
	over := current / ic
	if over > 1 {
		// Precessional: τ = τ_D / (I/Ic - 1), τ_D ≈ 1 ns at 2×Ic.
		const tauD = 1e-9
		return tauD / (over - 1)
	}
	// Thermal activation: τ = τ0 · exp(Δ·(1 - I/Ic)).
	return p.Tau0 * math.Exp(p.Delta*(1-over))
}

// SwitchProbability returns the probability the device has switched
// after applying the write current for the given pulse width [s]
// (exponential switching statistics around the mean delay).
func (p Params) SwitchProbability(current, pulse float64) float64 {
	tau := p.SwitchingDelay(current)
	if math.IsInf(tau, 1) {
		return 0
	}
	return 1 - math.Exp(-pulse/tau)
}

// RetentionYears returns the expected thermal retention of a stored
// bit, in years.
func (p Params) RetentionYears() float64 {
	seconds := p.Tau0 * math.Exp(p.Delta)
	return seconds / (365.25 * 24 * 3600)
}

// Variation is the paper's Monte-Carlo process-variation recipe for
// the MTJ: 1 % (σ) on the device dimensions. (The 10 % V_th and 1 %
// W/L variations apply to the CMOS periphery and live in
// internal/lutsim.)
type Variation struct {
	DimSigma float64 // relative σ on diameter and oxide thickness
	TMRSigma float64 // relative σ on TMR (barrier quality)
}

// DefaultVariation matches §IV-D: 1 % on MTJ dimensions.
func DefaultVariation() Variation {
	return Variation{DimSigma: 0.01, TMRSigma: 0.01}
}

// Sample draws one process-variation instance of the device.
func (p Params) Sample(v Variation, rng *rand.Rand) Params {
	q := p
	q.Diameter *= 1 + v.DimSigma*rng.NormFloat64()
	q.TOxide *= 1 + v.DimSigma*rng.NormFloat64()
	// RA depends exponentially on barrier thickness; with the partial
	// correlation between thickness and barrier-height variation the
	// effective sensitivity is ~6 % RA per 1 % thickness change.
	const kappa = 5.5e9 // 1/m
	q.RA = p.RA * math.Exp(kappa*(q.TOxide-p.TOxide))
	q.TMR *= 1 + v.TMRSigma*rng.NormFloat64()
	if q.TMR < 0 {
		q.TMR = 0
	}
	return q
}

// SampleCell draws a process-variation instance of a complementary
// cell. The two junctions sit adjacent on die, so they share the
// systematic part of the variation and differ only by a small local
// mismatch (3 % of σ each). This correlation is what keeps the
// per-cell read-power asymmetry between logic 0 and logic 1 in the
// sub-percent range (paper Table IV: 12.47 fJ vs 12.50 fJ).
func (p Params) SampleCell(v Variation, rng *rand.Rand) *Cell {
	common := p.Sample(v, rng)
	local := Variation{DimSigma: v.DimSigma * 0.03, TMRSigma: v.TMRSigma * 0.03}
	return NewCell(common.Sample(local, rng), common.Sample(local, rng))
}

// Validate sanity-checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Diameter <= 0 || p.TOxide <= 0 || p.RA <= 0:
		return fmt.Errorf("mtj: non-positive geometry")
	case p.TMR <= 0:
		return fmt.Errorf("mtj: TMR must be positive")
	case p.Jc0 <= 0 || p.Delta <= 0 || p.Tau0 <= 0:
		return fmt.Errorf("mtj: non-positive switching parameters")
	}
	return nil
}

// Cell is one complementary bit cell of the MRAM LUT: two MTJs written
// to opposite states so the read path is a voltage divider with a wide
// margin regardless of process variation (paper §III-B).
type Cell struct {
	Main Params
	Comp Params
	// Stored is the logical bit: Stored=true puts Main in the P (low
	// resistance) state and Comp in AP, so the divider midpoint
	// V+ — Main — node — Comp — V− sits above vread/2.
	Stored bool
}

// NewCell builds a complementary cell from two device instances.
func NewCell(main, comp Params) *Cell { return &Cell{Main: main, Comp: comp} }

// Write stores a bit (both junctions switch, in a complementary
// fashion).
func (c *Cell) Write(bit bool) { c.Stored = bit }

// DividerVoltage returns the sense-node voltage of the read divider
// V+ — Main — node — Comp — V− for a supply of vread [V].
func (c *Cell) DividerVoltage(vread float64) float64 {
	rm := c.Main.Resistance(stateOf(c.Stored))
	rc := c.Comp.Resistance(stateOf(!c.Stored))
	return vread * rc / (rm + rc)
}

// ReadCurrent returns the divider current [A]. Because the two
// junctions always hold complementary states, the series resistance
// R_P + R_AP is the same whether the cell stores 0 or 1 — this is the
// physical origin of the near-zero read-power variation that mitigates
// power side-channel attacks.
func (c *Cell) ReadCurrent(vread float64) float64 {
	rm := c.Main.Resistance(stateOf(c.Stored))
	rc := c.Comp.Resistance(stateOf(!c.Stored))
	return vread / (rm + rc)
}

// SenseMargin returns |V(1) − V(0)| of the divider for a supply vread.
func (c *Cell) SenseMargin(vread float64) float64 {
	saved := c.Stored
	c.Stored = false
	v0 := c.DividerVoltage(vread)
	c.Stored = true
	v1 := c.DividerVoltage(vread)
	c.Stored = saved
	return math.Abs(v1 - v0)
}

// ReadBit senses the stored bit by comparing the divider voltage to
// vread/2 and reports whether the sensed value matches. The margin is
// also returned so Monte-Carlo harnesses can count near-failures.
func (c *Cell) ReadBit(vread float64) (bit bool, margin float64) {
	v := c.DividerVoltage(vread)
	return v > vread/2, math.Abs(v - vread/2)
}

func stateOf(bit bool) State {
	if bit {
		return Parallel
	}
	return AntiParallel
}
