package mtj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResistanceOrdering(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rp := p.Resistance(Parallel)
	rap := p.Resistance(AntiParallel)
	if rp <= 0 || rap <= rp {
		t.Fatalf("R_P=%v R_AP=%v: want 0 < R_P < R_AP", rp, rap)
	}
	if got := rap / rp; math.Abs(got-(1+p.TMR)) > 1e-9 {
		t.Errorf("R_AP/R_P = %v, want 1+TMR = %v", got, 1+p.TMR)
	}
	// 45nm-class device: a few kΩ.
	if rp < 1e3 || rp > 20e3 {
		t.Errorf("R_P = %v Ω out of the expected kΩ range", rp)
	}
}

func TestCriticalCurrentScale(t *testing.T) {
	p := Default()
	ic := p.CriticalCurrent()
	if ic < 10e-6 || ic > 200e-6 {
		t.Errorf("Ic = %v A; STT devices sit in the tens of µA", ic)
	}
}

func TestSwitchingDelayRegimes(t *testing.T) {
	p := Default()
	ic := p.CriticalCurrent()
	fast := p.SwitchingDelay(3 * ic)
	slow := p.SwitchingDelay(1.2 * ic)
	sub := p.SwitchingDelay(0.5 * ic)
	if !(fast < slow) {
		t.Errorf("delay not monotone in overdrive: %v !< %v", fast, slow)
	}
	if fast > 2e-9 {
		t.Errorf("3×Ic switching took %v, want sub-2ns", fast)
	}
	if sub < 1 { // thermally activated: astronomically slow
		t.Errorf("sub-critical switching %v s suspiciously fast", sub)
	}
	if p.SwitchingDelay(0) != math.Inf(1) {
		t.Error("zero current must never switch")
	}
}

func TestSwitchProbability(t *testing.T) {
	p := Default()
	ic := p.CriticalCurrent()
	hi := p.SwitchProbability(3*ic, 5e-9)
	lo := p.SwitchProbability(0.5*ic, 5e-9)
	if hi < 0.99 {
		t.Errorf("strong overdrive switch probability %v, want ~1", hi)
	}
	if lo > 1e-6 {
		t.Errorf("sub-critical switch probability %v, want ~0", lo)
	}
	if p.SwitchProbability(0, 1e-9) != 0 {
		t.Error("no current, no switching")
	}
}

func TestRetention(t *testing.T) {
	p := Default()
	if y := p.RetentionYears(); y < 10 {
		t.Errorf("retention %v years; Δ=60 should give decade-scale retention", y)
	}
}

func TestVariationSampling(t *testing.T) {
	p := Default()
	v := DefaultVariation()
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	var sumD, sumD2 float64
	for i := 0; i < n; i++ {
		q := p.Sample(v, rng)
		if err := q.Validate(); err != nil {
			t.Fatalf("sample %d invalid: %v", i, err)
		}
		rel := q.Diameter/p.Diameter - 1
		sumD += rel
		sumD2 += rel * rel
	}
	mean := sumD / n
	sigma := math.Sqrt(sumD2/n - mean*mean)
	if math.Abs(mean) > 0.002 {
		t.Errorf("diameter variation mean %v, want ~0", mean)
	}
	if sigma < 0.007 || sigma > 0.013 {
		t.Errorf("diameter variation sigma %v, want ~0.01", sigma)
	}
}

func TestComplementaryCellRead(t *testing.T) {
	p := Default()
	cell := NewCell(p, p)
	const vread = 0.8
	for _, bit := range []bool{false, true} {
		cell.Write(bit)
		got, margin := cell.ReadBit(vread)
		if got != bit {
			t.Errorf("stored %v, read %v", bit, got)
		}
		if margin < 0.05 {
			t.Errorf("sense margin %v V too small for a healthy device", margin)
		}
	}
}

func TestReadCurrentSymmetry(t *testing.T) {
	// The P-SCA mitigation hinges on this: complementary cells draw the
	// same read current for 0 and 1.
	p := Default()
	cell := NewCell(p, p)
	const vread = 0.8
	cell.Write(false)
	i0 := cell.ReadCurrent(vread)
	cell.Write(true)
	i1 := cell.ReadCurrent(vread)
	if math.Abs(i0-i1)/i0 > 1e-9 {
		t.Errorf("read currents differ: %v vs %v", i0, i1)
	}
}

func TestReadCurrentSymmetryUnderPV(t *testing.T) {
	// Even with process variation the asymmetry stays tiny, because the
	// series path always contains one P and one AP junction.
	p := Default()
	v := DefaultVariation()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cell := p.SampleCell(v, rng)
		cell.Write(false)
		i0 := cell.ReadCurrent(0.8)
		cell.Write(true)
		i1 := cell.ReadCurrent(0.8)
		if rel := math.Abs(i0-i1) / i0; rel > 0.01 {
			t.Fatalf("instance %d: PV read-current asymmetry %v exceeds 1%%", i, rel)
		}
	}
}

func TestSenseMarginWideUnderPV(t *testing.T) {
	p := Default()
	v := DefaultVariation()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		cell := NewCell(p.Sample(v, rng), p.Sample(v, rng))
		if m := cell.SenseMargin(0.8); m < 0.03 {
			t.Fatalf("instance %d: sense margin %v V collapsed under PV", i, m)
		}
	}
}

func TestQuickDividerBounded(t *testing.T) {
	p := Default()
	f := func(bit bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cell := NewCell(p.Sample(DefaultVariation(), rng), p.Sample(DefaultVariation(), rng))
		cell.Write(bit)
		v := cell.DividerVoltage(0.8)
		return v > 0 && v < 0.8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := Default()
	bad.TMR = -1
	if bad.Validate() == nil {
		t.Error("negative TMR accepted")
	}
	bad = Default()
	bad.Diameter = 0
	if bad.Validate() == nil {
		t.Error("zero diameter accepted")
	}
}
