package netlint

import "strings"

// CombCycle reports combinational cycles. It runs Tarjan's SCC
// algorithm over the fanin edges and, for every non-trivial strongly
// connected component (and every self-loop), reports one Error
// containing an actual cycle path through the component — not just
// "cycle exists" — so the offending switchbox insertion or optimizer
// rewrite can be located.
var CombCycle = &Analyzer{
	Name: "comb-cycle",
	Doc:  "detect combinational cycles and report a concrete cycle path",
	Run:  runCombCycle,
}

func runCombCycle(p *Pass) error {
	for _, scc := range tarjanSCC(p.Netlist.Gates, func(id int) []int {
		return p.Netlist.Gates[id].Fanin
	}) {
		if len(scc) == 1 && !selfLoop(p, scc[0]) {
			continue
		}
		anchor := scc[0]
		for _, id := range scc {
			if id < anchor {
				anchor = id
			}
		}
		p.Report(Error, anchor, "combinational cycle: %s", cyclePath(p, scc, anchor))
	}
	return nil
}

func selfLoop(p *Pass, id int) bool {
	for _, f := range p.Netlist.Gates[id].Fanin {
		if f == id {
			return true
		}
	}
	return false
}

// cyclePath walks fanin edges restricted to the SCC from the anchor
// gate until a gate repeats, then renders the enclosed cycle in signal
// flow direction (driver first). Picking the lowest-ID in-SCC fanin at
// each step keeps the path deterministic.
func cyclePath(p *Pass, scc []int, anchor int) string {
	in := make(map[int]bool, len(scc))
	for _, id := range scc {
		in[id] = true
	}
	visitedAt := map[int]int{}
	var path []int
	cur := anchor
	for {
		if at, seen := visitedAt[cur]; seen {
			path = path[at:]
			break
		}
		visitedAt[cur] = len(path)
		path = append(path, cur)
		next := -1
		for _, f := range p.Netlist.Gates[cur].Fanin {
			if in[f] && (next < 0 || f < next) {
				next = f
			}
		}
		cur = next
	}
	// path follows fanin (driver) edges; reverse for signal flow.
	names := make([]string, 0, len(path)+1)
	for i := len(path) - 1; i >= 0; i-- {
		names = append(names, p.Netlist.Gates[path[i]].Name)
	}
	names = append(names, names[0])
	return strings.Join(names, " -> ")
}

// tarjanSCC computes strongly connected components iteratively (the
// recursive form overflows on deep circuits). Components are emitted
// in a deterministic order given deterministic edge lists.
func tarjanSCC[T any](nodes []T, edges func(int) []int) [][]int {
	n := len(nodes)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		sccs    [][]int
		stack   []int
		counter int
	)
	type frame struct {
		id   int
		next int
	}
	var call []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{id: root})
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			es := edges(f.id)
			if f.next < len(es) {
				child := es[f.next]
				f.next++
				if index[child] == unvisited {
					index[child], low[child] = counter, counter
					counter++
					stack = append(stack, child)
					onStack[child] = true
					call = append(call, frame{id: child})
				} else if onStack[child] && index[child] < low[f.id] {
					low[f.id] = index[child]
				}
				continue
			}
			id := f.id
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].id
				if low[id] < low[parent] {
					low[parent] = low[id]
				}
			}
			if low[id] == index[id] {
				var scc []int
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == id {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
