package netlint

import (
	"repro/internal/netlist"
	"repro/internal/opt"
)

// KeyConstProp sweeps each key bit, and pairs of key bits with
// reconverging fanout, through the simulator and the optimizer's
// constant folder — the oracle-less attack surface SCOPE and the
// LUT-Lock evaluation exploit:
//
//   - a bit whose 0- and 1-cofactors are functionally equivalent is
//     output-irrelevant, so the attacker strikes it from the key space
//     (Error, pruned as "discarded");
//   - a bit whose cofactors fold asymmetrically — one binding drives
//     primary outputs to constants — leaks its likely value, because
//     real circuits do not have constant outputs (Warn);
//   - a pair whose outputs are invariant under jointly flipping both
//     bits is parity-linked: only the XOR of the two reaches the
//     outputs, so the pair contributes one effective bit (Error,
//     linked as a parity group).
//
// Cofactor equivalence is exhaustive up to Options.AuditExhaustive
// remaining inputs and falls back to random 64-pattern rounds above
// that. Only exhaustive equivalences prune or link; a sampled
// "equivalent" verdict is inconclusive, so it warns instead and marks
// the resilience report conservative.
var KeyConstProp = &Analyzer{
	Name: "key-const-prop",
	Doc:  "sweep key-bit cofactors through constant folding; flag forced or output-irrelevant bits and parity-linked pairs",
	Run:  runKeyConstProp,
}

func runKeyConstProp(p *Pass) error {
	if !p.auditReady() {
		return nil
	}
	keys := p.KeyInputs()
	if len(keys) == 0 {
		return nil
	}
	p.resilience()
	nl := p.Netlist
	pos := p.inputPositions()

	bind := func(ids []int, vals []bool) *netlist.Netlist {
		positions := make([]int, len(ids))
		for i, id := range ids {
			positions[i] = pos[id]
		}
		c, err := nl.BindInputs(positions, vals)
		if err != nil {
			// Lax netlists the binder rejects are hygiene territory.
			return nil
		}
		return c
	}

	irrelevant := map[int]bool{}
	for _, ki := range keys {
		name := nl.Gates[ki].Name
		c0 := bind([]int{ki}, []bool{false})
		c1 := bind([]int{ki}, []bool{true})
		if c0 == nil || c1 == nil {
			continue
		}
		eq, proof, err := p.auditEquiv(c0, c1)
		if err != nil {
			continue
		}
		if eq {
			// A sampled "equivalent" verdict is inconclusive — a rare
			// pattern could still distinguish the cofactors — so it
			// warns without pruning: the effective key length only ever
			// counts provable weaknesses (the invariant the oracle
			// cross-validation in internal/attack enforces).
			if proof == ProofSampled {
				p.auditSampled = true
				p.Report(Warn, ki,
					"key input %q appears output-irrelevant on every sampled pattern (%s proof) — not counted against the effective key length; raise AuditExhaustive for a definitive verdict",
					name, proof)
				continue
			}
			irrelevant[ki] = true
			p.Report(Error, ki,
				"key input %q is output-irrelevant: its 0- and 1-cofactors are equivalent (%s proof) — an oracle-less attacker discards the bit",
				name, proof)
			p.pruneKey(name, ClassDiscarded, "0- and 1-cofactors are functionally equivalent", proof)
			continue
		}
		o0 := constOutputs(c0)
		o1 := constOutputs(c1)
		if o0 != o1 {
			likely := 0
			if o0 > o1 {
				likely = 1
			}
			p.Report(Warn, ki,
				"constant propagation leaks key input %q: the %s=0 cofactor folds %d primary output(s) to constants, the %s=1 cofactor %d — a SCOPE-style attacker guesses %s=%d",
				name, name, o0, name, o1, name, likely)
		}
	}

	// Pair sweep. Only pairs whose fanout cones reconverge can be
	// parity-linked: with disjoint cones, a relevant bit already
	// changes some output with the partner held fixed, which breaks
	// joint-flip invariance.
	var relevant []int
	for _, ki := range keys {
		if !irrelevant[ki] {
			relevant = append(relevant, ki)
		}
	}
	if len(relevant) < 2 {
		return nil
	}
	cones := make(map[int][]bool, len(relevant))
	for _, ki := range relevant {
		cones[ki] = nl.TransitiveFanout(ki)
	}
	maxPairs := p.Opts.auditMaxPairs()
	checked := 0
sweep:
	for i := 0; i < len(relevant); i++ {
		for j := i + 1; j < len(relevant); j++ {
			ki, kj := relevant[i], relevant[j]
			if !conesMeet(cones[ki], cones[kj]) {
				continue
			}
			if checked >= maxPairs {
				p.auditCapped = true
				p.Report(Info, -1,
					"key-bit pair sweep capped at %d pairs; the effective-key-length accounting is conservative (raise AuditMaxPairs for an exact report)",
					maxPairs)
				break sweep
			}
			checked++
			c00 := bind([]int{ki, kj}, []bool{false, false})
			c11 := bind([]int{ki, kj}, []bool{true, true})
			if c00 == nil || c11 == nil {
				continue
			}
			eq, proofA, err := p.auditEquiv(c00, c11)
			if err != nil || !eq {
				continue
			}
			c01 := bind([]int{ki, kj}, []bool{false, true})
			c10 := bind([]int{ki, kj}, []bool{true, false})
			if c01 == nil || c10 == nil {
				continue
			}
			eq, proofB, err := p.auditEquiv(c01, c10)
			if err != nil || !eq {
				continue
			}
			proof := weakerProof(proofA, proofB)
			ni, nj := nl.Gates[ki].Name, nl.Gates[kj].Name
			if proof == ProofSampled {
				p.auditSampled = true
				p.Report(Warn, ki,
					"key inputs %q and %q appear parity-linked on every sampled pattern (%s proof) — not counted against the effective key length; raise AuditExhaustive for a definitive verdict",
					ni, nj, proof)
				continue
			}
			p.Report(Error, ki,
				"key inputs %q and %q are parity-linked: the outputs depend only on their XOR (%s proof) — the pair contributes one effective bit",
				ni, nj, proof)
			p.linkKeys([]string{ni, nj}, LinkParity, "joint cofactor sweep", proof)
		}
	}
	return nil
}

// constOutputs runs the constant folder over the cofactor and counts
// distinct primary-output gates reduced to constants. The cofactor is
// consumed (Optimize rewrites in place). Netlists the optimizer
// rejects (lax-parsed leftovers) count as zero.
func constOutputs(c *netlist.Netlist) int {
	if _, err := opt.Optimize(c); err != nil {
		return 0
	}
	n := 0
	seen := map[int]bool{}
	for _, o := range c.Outputs {
		if seen[o] {
			continue
		}
		seen[o] = true
		if t := c.Gates[o].Type; t == netlist.Const0 || t == netlist.Const1 {
			n++
		}
	}
	return n
}

// conesMeet reports whether two fanout cones share a gate.
func conesMeet(a, b []bool) bool {
	for id := range a {
		if a[id] && b[id] {
			return true
		}
	}
	return false
}
