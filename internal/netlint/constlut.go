package netlint

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// ConstLUT decodes the configuration of every RIL 2-input LUT whose
// four truth-table cells are key inputs with known values (supplied
// via Options.Key) and flags LUTs configured as a constant or a
// single-input pass-through. Such a LUT is structurally removable by
// the constant-folding / identity pass an attacker would run first
// (internal/opt collapses MUX(s,0,0), MUX-as-BUF, etc.), so its four
// key bits contribute nothing to SAT hardness. Without known key
// values the analyzer is silent: the configuration of an unbound LUT
// is exactly what the lock hides.
//
// The structural pattern matched is the three-MUX lowering of
// core.buildLUT2 (paper Fig. 1): out = MUX(A, m0, m1) with
// m0 = MUX(B, f(0,0), f(0,1)) and m1 = MUX(B, f(1,0), f(1,1)).
var ConstLUT = &Analyzer{
	Name: "const-lut",
	Doc:  "flag RIL LUTs whose key configures a constant or pass-through function",
	Run:  runConstLUT,
}

func runConstLUT(p *Pass) error {
	if len(p.Opts.Key) == 0 {
		return nil
	}
	nl := p.Netlist
	// keyVal resolves a gate to its known key value; ok=false when the
	// gate is not a key input with a supplied value.
	keyVal := func(id int) (bool, bool) {
		if nl.Gates[id].Type != netlist.Input {
			return false, false
		}
		v, ok := p.Opts.Key[nl.Gates[id].Name]
		return v, ok
	}
	isRowMux := func(id int) bool {
		return nl.Gates[id].Type == netlist.Mux
	}
	for id := range nl.Gates {
		g := &nl.Gates[id]
		if g.Type != netlist.Mux {
			continue
		}
		m0, m1 := g.Fanin[1], g.Fanin[2]
		if !isRowMux(m0) || !isRowMux(m1) {
			continue
		}
		r0, r1 := &nl.Gates[m0], &nl.Gates[m1]
		if r0.Fanin[0] != r1.Fanin[0] {
			continue // rows must share the B select
		}
		k00, kv00 := keyVal(r0.Fanin[1])
		k01, kv01 := keyVal(r0.Fanin[2])
		k10, kv10 := keyVal(r1.Fanin[1])
		k11, kv11 := keyVal(r1.Fanin[2])
		if !(kv00 && kv01 && kv10 && kv11) {
			continue
		}
		// Func2 packs bit i = f(A,B) with i = 2A+B.
		var f logic.Func2
		for i, bit := range []bool{k00, k01, k10, k11} {
			if bit {
				f |= 1 << i
			}
		}
		switch {
		case f == logic.Const0 || f == logic.Const1:
			p.Report(Warn, id, "LUT %q is configured as constant %s — removable by resynthesis, its 4 key bits add no SAT hardness", g.Name, f)
		case !f.DependsOnA() || !f.DependsOnB():
			p.Report(Warn, id, "LUT %q is configured as single-input pass-through (%s) — collapsible by resynthesis", g.Name, f)
		}
	}
	return nil
}
