package netlint

import "repro/internal/netlist"

// DeadGate reports logic gates outside the transitive fanin of every
// primary output. Dead logic is not functionally wrong — Prune removes
// it — but after a locking transform it usually means a block output
// was spliced into a cone nobody observes, silently wasting key
// material (the key-influence analyzer then escalates the key bits
// involved to Error). Primary inputs are exempt: their positions
// define the input-vector layout and are retained deliberately.
var DeadGate = &Analyzer{
	Name: "dead-gate",
	Doc:  "detect gates that cannot reach any primary output",
	Run:  runDeadGate,
}

func runDeadGate(p *Pass) error {
	live := p.Netlist.TransitiveFanin(p.Netlist.Outputs...)
	for id := range p.Netlist.Gates {
		g := &p.Netlist.Gates[id]
		if g.Type == netlist.Input || live[id] {
			continue
		}
		p.Report(Warn, id, "gate %q (%s) cannot reach any primary output", g.Name, g.Type)
	}
	return nil
}
