package netlint_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/netlint"
	"repro/internal/netlist"
	"repro/internal/testutil"
)

// FuzzResilienceAnalyzers throws lax-parsed netlists (including
// structurally broken ones) and arbitrary audit seeds at the full
// analyzer set. The audit must never panic or fail the driver, and —
// since every sampled check is seeded — two runs over the same input
// must produce byte-identical findings.
func FuzzResilienceAnalyzers(f *testing.F) {
	for _, seed := range testutil.BenchSeeds() {
		f.Add(seed, int64(1))
	}
	f.Add("INPUT(a)\nINPUT(keyinput0)\nINPUT(keyinput1)\nOUTPUT(y)\n"+
		"k = XOR(keyinput0, keyinput1)\nw = XOR(a, k)\ny = NOT(w)\n", int64(7))
	f.Add("INPUT(keyinput0)\nOUTPUT(y)\nz = CONST0()\nd = AND(keyinput0, z)\ny = OR(d, z)\n", int64(3))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		if len(src) > 1<<14 {
			return
		}
		nl, _, err := netlist.ParseBenchLax("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		if nl.NumGates() > 2000 {
			return
		}
		opts := netlint.Options{
			AuditSeed:       seed,
			AuditRounds:     2,
			AuditExhaustive: 8,
			AuditMaxPairs:   16,
		}
		run := func() []byte {
			res, err := netlint.Run(nl.Clone(), opts, netlint.All()...)
			if err != nil {
				t.Fatalf("Run failed on lax netlist: %v", err)
			}
			j, err := json.Marshal(res)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			return j
		}
		if a, b := run(), run(); string(a) != string(b) {
			t.Fatalf("audit not deterministic for seed %d:\n%s\n%s", seed, a, b)
		}
	})
}
