package netlint

import (
	"fmt"

	"repro/internal/netlist"
)

// KeyEquivalence proves groups of key bits equal, complementary or
// otherwise mutually redundant by structural analysis of their fanout
// cones, without any simulation:
//
//   - key bits that reach the rest of the circuit only through a
//     single key-only gate (a cone whose transitive fanin holds
//     nothing but key inputs and constants) are funneled: the circuit
//     sees only that wire, so the whole group contributes at most one
//     effective bit (Error, linked as a funnel group). For a 2-input
//     XOR/XNOR funnel this is the classic equal-or-complementary pair;
//     when Options.Key is supplied the diagnostic states the wire
//     value the canonical key produces.
//   - a key bit whose only consumer is a 2-input AND/NAND/OR/NOR gate
//     is dominated there: the sibling fanin at its controlling value
//     masks the bit, so a sensitization attacker can target it in
//     isolation (Warn).
//
// Funnel membership is decided by a reachability cut — every path
// from the bit to a primary output must pass the funnel gate — so the
// proofs are structural and never downgrade the resilience report to
// conservative.
var KeyEquivalence = &Analyzer{
	Name: "key-equivalence",
	Doc:  "prove key-bit groups equal/complementary via key-only funnels; flag maskable (dominated) key bits",
	Run:  runKeyEquivalence,
}

func runKeyEquivalence(p *Pass) error {
	if !p.auditReady() {
		return nil
	}
	keys := p.KeyInputs()
	if len(keys) == 0 {
		return nil
	}
	p.resilience()
	nl := p.Netlist
	order, err := nl.TopoOrder()
	if err != nil {
		return nil
	}

	// keyOnly: the gate's transitive fanin holds only key inputs and
	// constants. hasKey: at least one key input is in the fanin cone.
	keyOnly := make([]bool, len(nl.Gates))
	hasKey := make([]bool, len(nl.Gates))
	for _, id := range order {
		g := &nl.Gates[id]
		switch g.Type {
		case netlist.Input:
			keyOnly[id] = p.IsKeyInput(id)
			hasKey[id] = keyOnly[id]
		case netlist.Const0, netlist.Const1:
			keyOnly[id] = true
		default:
			ok := len(g.Fanin) > 0
			for _, f := range g.Fanin {
				if !keyOnly[f] {
					ok = false
				}
				if hasKey[f] {
					hasKey[id] = true
				}
			}
			keyOnly[id] = ok
		}
	}

	fanouts := p.Fanouts()
	outs := p.outputSet()
	assigned := map[int]bool{} // key gate ID -> already in a funnel group
	for _, id := range order {
		if !keyOnly[id] || !hasKey[id] || nl.Gates[id].Type == netlist.Input {
			continue
		}
		// Frontier gates only: the wire is visible outside key-only
		// territory (feeds non-key-only logic or is an output itself).
		frontier := outs[id]
		for _, f := range fanouts[id] {
			if !keyOnly[f] {
				frontier = true
				break
			}
		}
		if !frontier {
			continue
		}
		cone := nl.TransitiveFanin(id)
		var group []int
		for _, ki := range keys {
			if assigned[ki] || !cone[ki] {
				continue
			}
			if !p.keyReachesOutput(ki) {
				continue // dead bit: key-influence reports it
			}
			if p.keyConfinedTo(ki, id) {
				group = append(group, ki)
			}
		}
		if len(group) < 2 {
			continue
		}
		names := make([]string, len(group))
		for i, ki := range group {
			names[i] = nl.Gates[ki].Name
		}
		for _, ki := range group {
			assigned[ki] = true
		}
		gname := nl.Gates[id].Name
		p.Report(Error, id,
			"key inputs %s reach the outputs only through key-only gate %q: the group contributes at most one effective bit%s",
			quoteList(names), gname, funnelRelation(p, id, group))
		p.linkKeys(names, LinkFunnel, gname, ProofStructural)
	}

	// Domination: the bit's single consumer can mute it.
	for _, ki := range keys {
		fo := fanouts[ki]
		if len(fo) != 1 {
			continue
		}
		g := fo[0]
		gt := nl.Gates[g].Type
		var ctrl int
		switch gt {
		case netlist.And, netlist.Nand:
			ctrl = 0
		case netlist.Or, netlist.Nor:
			ctrl = 1
		default:
			continue
		}
		if keyOnly[g] || len(nl.Gates[g].Fanin) != 2 {
			continue // key-only consumers are funnel territory
		}
		other := nl.Gates[g].Fanin[0]
		if other == ki {
			other = nl.Gates[g].Fanin[1]
		}
		p.Report(Warn, ki,
			"key input %q is dominated at %s gate %q: driving %q to %d masks the bit, so a sensitization attack recovers it in isolation",
			nl.Gates[ki].Name, gt, nl.Gates[g].Name, nl.Gates[other].Name, ctrl)
	}
	return nil
}

// funnelRelation refines the funnel diagnostic. For the classic
// 2-input XOR/XNOR funnel over two key bits it names the
// equal-or-complementary relation; with Options.Key available it
// additionally evaluates the key-only cone under the canonical key so
// the diagnostic states which wire value is functionally correct.
func funnelRelation(p *Pass, id int, group []int) string {
	nl := p.Netlist
	g := &nl.Gates[id]
	s := ""
	if (g.Type == netlist.Xor || g.Type == netlist.Xnor) && len(g.Fanin) == 2 &&
		len(group) == 2 && p.IsKeyInput(g.Fanin[0]) && p.IsKeyInput(g.Fanin[1]) {
		s = " (only the parity of the pair matters)"
	}
	if len(p.Opts.Key) == 0 {
		return s
	}
	v, ok := evalKeyOnly(p, id)
	if !ok {
		return s
	}
	bit := 0
	if v {
		bit = 1
	}
	return s + fmt.Sprintf("; the canonical key drives %q to %d, and any group assignment reproducing that value is functionally correct", g.Name, bit)
}

// evalKeyOnly evaluates a key-only cone under Options.Key. It fails
// (ok=false) when a key input in the cone has no supplied value.
func evalKeyOnly(p *Pass, root int) (val, ok bool) {
	nl := p.Netlist
	memo := map[int]bool{}
	var eval func(int) (bool, bool)
	eval = func(id int) (bool, bool) {
		if v, done := memo[id]; done {
			return v, true
		}
		g := &nl.Gates[id]
		var v bool
		switch g.Type {
		case netlist.Input:
			kv, have := p.Opts.Key[g.Name]
			if !have {
				return false, false
			}
			v = kv
		case netlist.Const0:
			v = false
		case netlist.Const1:
			v = true
		case netlist.Not, netlist.Buf:
			fv, fok := eval(g.Fanin[0])
			if !fok {
				return false, false
			}
			v = fv != (g.Type == netlist.Not)
		case netlist.Mux:
			sv, sok := eval(g.Fanin[0])
			if !sok {
				return false, false
			}
			branch := g.Fanin[1]
			if sv {
				branch = g.Fanin[2]
			}
			bv, bok := eval(branch)
			if !bok {
				return false, false
			}
			v = bv
		case netlist.And, netlist.Nand:
			v = true
			for _, f := range g.Fanin {
				fv, fok := eval(f)
				if !fok {
					return false, false
				}
				v = v && fv
			}
			if g.Type == netlist.Nand {
				v = !v
			}
		case netlist.Or, netlist.Nor:
			v = false
			for _, f := range g.Fanin {
				fv, fok := eval(f)
				if !fok {
					return false, false
				}
				v = v || fv
			}
			if g.Type == netlist.Nor {
				v = !v
			}
		case netlist.Xor, netlist.Xnor:
			v = false
			for _, f := range g.Fanin {
				fv, fok := eval(f)
				if !fok {
					return false, false
				}
				v = v != fv
			}
			if g.Type == netlist.Xnor {
				v = !v
			}
		default:
			return false, false
		}
		memo[id] = v
		return v, true
	}
	return eval(root)
}
