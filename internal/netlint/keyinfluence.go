package netlint

import "sort"

// KeyInfluence taints the netlist from each key input and counts the
// primary outputs its transitive fanout reaches. A key bit reaching
// zero outputs is an Error: its value is unobservable, so it inflates
// the nominal key length without costing the SAT attack a single
// iteration — the classic dead-key-material pitfall of naively applied
// routing/logic locking. The analyzer also fills Result.KeyReport with
// the per-bit influence and a reachable-output-count histogram, from
// which effective vs. nominal key length is reported (as an Info
// diagnostic, or a Warn when they differ).
var KeyInfluence = &Analyzer{
	Name: "key-influence",
	Doc:  "taint key inputs forward; flag key bits that influence no primary output",
	Run:  runKeyInfluence,
}

func runKeyInfluence(p *Pass) error {
	keys := p.KeyInputs()
	if len(keys) == 0 {
		return nil
	}
	fanouts := p.Fanouts()
	// Distinct output gates, remembering that one gate may be marked as
	// several primary outputs (count gates, not markings).
	outputSet := make(map[int]bool, len(p.Netlist.Outputs))
	for _, o := range p.Netlist.Outputs {
		outputSet[o] = true
	}
	report := &KeyReport{Nominal: len(keys)}
	mark := make([]int, len(p.Netlist.Gates)) // visitation stamp per key
	for i := range mark {
		mark[i] = -1
	}
	var stack []int
	for ki, key := range keys {
		reached := 0
		stack = append(stack[:0], key)
		mark[key] = ki
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if outputSet[id] {
				reached++
			}
			for _, f := range fanouts[id] {
				if mark[f] != ki {
					mark[f] = ki
					stack = append(stack, f)
				}
			}
		}
		name := p.Netlist.Gates[key].Name
		report.Influence = append(report.Influence, KeyBitInfluence{Key: name, Outputs: reached})
		if reached == 0 {
			p.Report(Error, key, "key input %q influences no primary output (dead key bit)", name)
		} else {
			report.Effective++
		}
	}
	hist := map[int]int{}
	for _, inf := range report.Influence {
		hist[inf.Outputs]++
	}
	for outputs, keys := range hist {
		report.Histogram = append(report.Histogram, HistBin{Outputs: outputs, Keys: keys})
	}
	sort.Slice(report.Histogram, func(i, j int) bool {
		return report.Histogram[i].Outputs < report.Histogram[j].Outputs
	})
	p.keyReport = report
	sev := Info
	if report.Effective < report.Nominal {
		sev = Warn
	}
	p.Report(sev, -1, "effective key length %d of %d nominal bits", report.Effective, report.Nominal)
	return nil
}
