// Package netlint is a static analysis framework for gate-level
// netlists, modeled on the go/analysis driver pattern: each check is an
// *Analyzer with a name, a doc string and a Run function; a driver runs
// a configurable set of analyzers over one netlist and aggregates their
// Diagnostics into a Result with deterministic ordering and both
// machine-readable (JSON) and human-readable output.
//
// The checks guard the structural assumptions the locking and attack
// code silently make: no combinational cycles (switchbox insertion and
// optimizer rewrites can close loops), no undriven nets, no dead logic,
// and — security-critical — no key bits whose value cannot influence
// any primary output. Dead key material inflates the nominal key
// length without adding SAT iterations, the exact pitfall the
// InterLock and LUT-Lock literature warns about when routing or logic
// locking is applied naively; the key-influence analyzer therefore
// reports effective vs. nominal key length.
//
// Beyond hygiene, the package carries an oracle-less security audit
// layer (the Audit set): key-cofactor constant propagation,
// key-equivalence funnels, removal-vulnerability signatures and
// scan-exposure checks that together compute the effective key length
// an oracle-less attacker faces, reported as a ResilienceReport with
// per-finding proof strength. See DESIGN.md §10 for the metric's
// definition and its cross-validation against the oracle attacks.
//
// The framework is extensible: define an Analyzer, report through
// Pass.Report, and pass it to Run alongside (or instead of) the
// built-in sets returned by Hygiene, Audit and All.
package netlint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// Severity classifies a diagnostic. Error-level findings make the
// netlist unusable or the lock weaker than its nominal key length and
// gate the emit paths in cmd/locker and the report package; Warn-level
// findings are suspicious but survivable; Info carries metrics.
type Severity uint8

// Severity levels, ordered least to most severe.
const (
	Info Severity = iota
	Warn
	Error
)

var severityNames = [...]string{Info: "info", Warn: "warn", Error: "error"}

func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// ParseSeverity resolves "info", "warn" or "error".
func ParseSeverity(s string) (Severity, error) {
	for sev, name := range severityNames {
		if name == s {
			return Severity(sev), nil
		}
	}
	return 0, fmt.Errorf("netlint: unknown severity %q (want info|warn|error)", s)
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a lowercase severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// Diagnostic is one finding of one analyzer. Gate anchors the finding
// to a netlist gate by name (empty for whole-netlist findings); GateID
// is the corresponding gate ID, or -1.
type Diagnostic struct {
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Gate     string   `json:"gate,omitempty"`
	GateID   int      `json:"gate_id"`
	Message  string   `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s [%s] %s", d.Severity, d.Analyzer, d.Message)
}

// Analyzer is one static check, in the style of go/analysis: Run
// inspects pass.Netlist and reports findings through pass.Report. A
// non-nil error from Run means the analyzer itself failed (a driver
// problem, not a netlist finding) and aborts the whole run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// ScanChainSpec declares one scan chain for the scan-integrity
// analyzer: its name, its declared width, and the netlist gate names of
// its cells in shift order. KeyChain marks the paper's secure
// configuration chain, whose cells must all be key inputs.
type ScanChainSpec struct {
	Name     string   `json:"name"`
	Width    int      `json:"width"`
	Cells    []string `json:"cells"`
	KeyChain bool     `json:"key_chain,omitempty"`
}

// ScanSpec is the full scan configuration checked against the
// netlist. Its JSON form is the cmd/netlint -scan file format.
type ScanSpec struct {
	Chains []ScanChainSpec `json:"chains"`
}

// Options configures a driver run.
type Options struct {
	// KeyPrefix identifies key inputs by name prefix. Empty means
	// "keyinput", the repo-wide default.
	KeyPrefix string
	// Key optionally supplies known key-bit values by key input name.
	// The const-lut analyzer needs it to evaluate LUT configurations;
	// without it that analyzer is silent.
	Key map[string]bool
	// Scan optionally supplies scan-chain declarations for the
	// scan-integrity and scan-exposure analyzers; without it both are
	// silent.
	Scan *ScanSpec

	// AuditSeed seeds the sampled checks of the resilience audit
	// analyzers. Zero means 1, so the default is deterministic.
	AuditSeed int64
	// AuditRounds is the number of 64-pattern random rounds for
	// sampled audit checks. Zero or negative means 8.
	AuditRounds int
	// AuditExhaustive is the input-count ceiling up to which audit
	// equivalence checks enumerate every pattern (an exact proof)
	// instead of sampling. Zero or negative means 16; capped at 24.
	AuditExhaustive int
	// AuditMaxPairs caps the key-bit pair sweep of key-const-prop.
	// Zero or negative means 512. Hitting the cap marks the
	// resilience report conservative.
	AuditMaxPairs int
}

func (o Options) keyPrefix() string {
	if o.KeyPrefix == "" {
		return "keyinput"
	}
	return o.KeyPrefix
}

// Pass carries one analyzer's view of the run: the netlist, the
// options, and the reporting sink. Shared derived structures (fanout
// lists, the input set) are computed once and cached across analyzers.
type Pass struct {
	Netlist *netlist.Netlist
	Opts    Options

	diags     []Diagnostic
	analyzer  string
	keyReport *KeyReport

	fanouts  [][]int
	inputSet map[int]bool

	// Resilience-audit state, shared across the audit analyzers.
	resilienceRep *ResilienceReport
	auditCapped   bool
	// auditSampled is set whenever a sampled equivalence check came
	// back "no counterexample found" — an inconclusive verdict that is
	// reported as a warning but never pruned, and that downgrades the
	// resilience report from exact to conservative.
	auditSampled bool
	auditTopoOK  *bool
	inputPos     map[int]int
	outputIDs    map[int]bool
}

// Report records a diagnostic anchored at gate id (pass -1 for
// whole-netlist findings).
func (p *Pass) Report(sev Severity, id int, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.analyzer,
		Severity: sev,
		GateID:   id,
		Message:  fmt.Sprintf(format, args...),
	}
	if id >= 0 && id < len(p.Netlist.Gates) {
		d.Gate = p.Netlist.Gates[id].Name
	}
	p.diags = append(p.diags, d)
}

// Fanouts returns the cached per-gate fanout lists.
func (p *Pass) Fanouts() [][]int {
	if p.fanouts == nil {
		p.fanouts = p.Netlist.FanoutLists()
	}
	return p.fanouts
}

// IsPrimaryInput reports whether gate id is registered in the primary
// input list (as opposed to merely having type Input).
func (p *Pass) IsPrimaryInput(id int) bool {
	if p.inputSet == nil {
		p.inputSet = make(map[int]bool, len(p.Netlist.Inputs))
		for _, in := range p.Netlist.Inputs {
			p.inputSet[in] = true
		}
	}
	return p.inputSet[id]
}

// KeyInputs returns the gate IDs of primary inputs matching the key
// prefix, in input-vector order.
func (p *Pass) KeyInputs() []int {
	var ids []int
	prefix := p.Opts.keyPrefix()
	for _, id := range p.Netlist.Inputs {
		if strings.HasPrefix(p.Netlist.Gates[id].Name, prefix) {
			ids = append(ids, id)
		}
	}
	return ids
}

// IsKeyInput reports whether gate id is a primary input with the key
// prefix.
func (p *Pass) IsKeyInput(id int) bool {
	return p.IsPrimaryInput(id) &&
		strings.HasPrefix(p.Netlist.Gates[id].Name, p.Opts.keyPrefix())
}

// KeyBitInfluence records, for one key bit, how many primary outputs
// its value can structurally reach.
type KeyBitInfluence struct {
	Key     string `json:"key"`
	Outputs int    `json:"outputs"`
}

// HistBin is one bin of the key-influence histogram: Keys key bits each
// reach exactly Outputs primary outputs.
type HistBin struct {
	Outputs int `json:"outputs"`
	Keys    int `json:"keys"`
}

// KeyReport summarizes key-influence taint: the nominal key length, the
// effective key length (bits that reach at least one primary output),
// the per-bit influence, and the reachable-output-count histogram.
type KeyReport struct {
	Nominal   int               `json:"nominal"`
	Effective int               `json:"effective"`
	Influence []KeyBitInfluence `json:"influence"`
	Histogram []HistBin         `json:"histogram"`
}

// Result aggregates one driver run over one netlist.
type Result struct {
	Netlist     string            `json:"netlist"`
	Analyzers   []string          `json:"analyzers"`
	Diagnostics []Diagnostic      `json:"diagnostics"`
	KeyReport   *KeyReport        `json:"key_report,omitempty"`
	Resilience  *ResilienceReport `json:"resilience,omitempty"`
}

// Count returns the number of diagnostics at exactly the given
// severity.
func (r *Result) Count(sev Severity) int {
	c := 0
	for _, d := range r.Diagnostics {
		if d.Severity == sev {
			c++
		}
	}
	return c
}

// HasErrors reports whether any Error-level diagnostic was produced.
func (r *Result) HasErrors() bool { return r.Count(Error) > 0 }

// Errors returns the Error-level diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// WriteText renders the result human-readably, one diagnostic per line
// prefixed with the netlist name, followed by a summary line.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintf(w, "%s: %s\n", r.Netlist, d); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s: %d error(s), %d warning(s), %d info\n",
		r.Netlist, r.Count(Error), r.Count(Warn), r.Count(Info))
	return err
}

// Hygiene returns the structural-hygiene analyzers: cheap graph
// checks every netlist must pass before it is emitted or attacked.
// This is the default set Run uses when no analyzers are given, and
// the set the locker's emit gate runs.
func Hygiene() []*Analyzer {
	return []*Analyzer{
		CombCycle, ConstLUT, DeadGate, KeyInfluence, ScanIntegrity, Undriven,
	}
}

// Audit returns the oracle-less resilience audit analyzers. They
// simulate and constant-fold key cofactors, so they cost orders of
// magnitude more than the hygiene set and are run as a dedicated
// audit stage (cmd/netlint, the ci.sh audit gate, report tables)
// rather than on every emit.
func Audit() []*Analyzer {
	return []*Analyzer{
		KeyConstProp, KeyEquivalence, RemovalVulnerability, ScanExposure,
	}
}

// All returns every built-in analyzer — hygiene and audit — sorted by
// name.
func All() []*Analyzer {
	as := append(Hygiene(), Audit()...)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves analyzer names against the built-in set.
func ByName(names ...string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("netlint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers (the hygiene set when none are given)
// over the netlist and returns the aggregated, deterministically
// sorted result. Diagnostics are ordered by (analyzer, gate ID,
// message) so output is stable across runs and map-iteration order,
// and each distinct (analyzer, gate, message) finding is reported
// once even when an analyzer is registered twice — e.g. via both the
// default set and an explicit list. When any audit analyzer ran
// against key inputs, Result.Resilience carries the finalized
// effective-key-length report and a headline diagnostic is emitted
// under the synthetic analyzer name "resilience".
func Run(nl *netlist.Netlist, opts Options, analyzers ...*Analyzer) (*Result, error) {
	if len(analyzers) == 0 {
		analyzers = Hygiene()
	}
	pass := &Pass{Netlist: nl, Opts: opts}
	res := &Result{Netlist: nl.Name}
	ran := map[string]bool{}
	for _, a := range analyzers {
		if ran[a.Name] {
			continue // double registration: run and report once
		}
		ran[a.Name] = true
		pass.analyzer = a.Name
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("netlint: analyzer %s: %w", a.Name, err)
		}
		res.Analyzers = append(res.Analyzers, a.Name)
	}
	res.Resilience = pass.finalizeResilience()
	sort.SliceStable(pass.diags, func(i, j int) bool {
		a, b := pass.diags[i], pass.diags[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.GateID != b.GateID {
			return a.GateID < b.GateID
		}
		return a.Message < b.Message
	})
	sort.Strings(res.Analyzers)
	res.Diagnostics = dedupeDiags(pass.diags)
	res.KeyReport = pass.keyReport
	return res, nil
}

// dedupeDiags drops adjacent duplicates of the (analyzer, gate,
// message) finding identity from a sorted diagnostic list, keeping
// the first (and with it the severity it carried).
func dedupeDiags(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if len(out) > 0 {
			prev := out[len(out)-1]
			if d.Analyzer == prev.Analyzer && d.GateID == prev.GateID && d.Message == prev.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// Check runs the analyzers and returns only the Error-level
// diagnostics — the convenience form used by emit-path gates.
func Check(nl *netlist.Netlist, opts Options, analyzers ...*Analyzer) ([]Diagnostic, error) {
	res, err := Run(nl, opts, analyzers...)
	if err != nil {
		return nil, err
	}
	return res.Errors(), nil
}
