package netlint

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// only returns the diagnostics of one analyzer.
func only(t *testing.T, res *Result, analyzer string) []Diagnostic {
	t.Helper()
	var out []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Analyzer == analyzer {
			out = append(out, d)
		}
	}
	return out
}

func mustRun(t *testing.T, nl *netlist.Netlist, opts Options, as ...*Analyzer) *Result {
	t.Helper()
	res, err := Run(nl, opts, as...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestCombCycleFiresOnce(t *testing.T) {
	nl := netlist.New("cyclic")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g1 := nl.AddGate("g1", netlist.And, a, b)
	g2 := nl.AddGate("g2", netlist.Or, g1, a)
	nl.MarkOutput(g2)
	nl.SetFanin(g1, g2, b) // closes g1 <-> g2

	res := mustRun(t, nl, Options{}, CombCycle)
	diags := only(t, res, "comb-cycle")
	if len(diags) != 1 {
		t.Fatalf("comb-cycle fired %d times, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Severity != Error {
		t.Errorf("severity = %s, want error", d.Severity)
	}
	for _, name := range []string{"g1", "g2"} {
		if !strings.Contains(d.Message, name) {
			t.Errorf("cycle path %q missing gate %q", d.Message, name)
		}
	}
}

func TestCombCycleSelfLoop(t *testing.T) {
	nl := netlist.New("selfloop")
	a := nl.AddInput("a")
	g := nl.AddGate("g", netlist.And, a, a)
	nl.MarkOutput(g)
	nl.SetFanin(g, g, a)

	res := mustRun(t, nl, Options{}, CombCycle)
	if diags := only(t, res, "comb-cycle"); len(diags) != 1 {
		t.Fatalf("self-loop fired %d times, want 1", len(diags))
	}
}

func TestCombCycleCleanCircuit(t *testing.T) {
	nl := netlist.New("clean")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	nl.MarkOutput(nl.AddGate("g", netlist.Nand, a, b))
	res := mustRun(t, nl, Options{}, CombCycle)
	if len(res.Diagnostics) != 0 {
		t.Fatalf("clean circuit produced %v", res.Diagnostics)
	}
}

func TestUndrivenFiresOnce(t *testing.T) {
	nl := netlist.New("floating")
	a := nl.AddInput("a")
	ghost := nl.AddGate("ghost", netlist.Input) // undriven: not a primary input
	nl.MarkOutput(nl.AddGate("y", netlist.And, a, ghost))

	res := mustRun(t, nl, Options{}, Undriven)
	diags := only(t, res, "undriven")
	if len(diags) != 1 {
		t.Fatalf("undriven fired %d times, want 1: %v", len(diags), diags)
	}
	if diags[0].Severity != Error || diags[0].Gate != "ghost" {
		t.Errorf("got %+v, want error on ghost", diags[0])
	}
}

func TestUndrivenUnusedInputWarns(t *testing.T) {
	nl := netlist.New("unused")
	a := nl.AddInput("a")
	nl.AddInput("spare")
	nl.MarkOutput(nl.AddGate("y", netlist.Not, a))

	res := mustRun(t, nl, Options{}, Undriven)
	diags := only(t, res, "undriven")
	if len(diags) != 1 || diags[0].Severity != Warn || diags[0].Gate != "spare" {
		t.Fatalf("got %v, want one warn on spare", diags)
	}
}

func TestDeadGateFiresOnce(t *testing.T) {
	nl := netlist.New("dead")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	nl.MarkOutput(nl.AddGate("y", netlist.And, a, b))
	nl.AddGate("orphan", netlist.Or, a, b) // never observed

	res := mustRun(t, nl, Options{}, DeadGate)
	diags := only(t, res, "dead-gate")
	if len(diags) != 1 || diags[0].Gate != "orphan" || diags[0].Severity != Warn {
		t.Fatalf("got %v, want one warn on orphan", diags)
	}
}

func TestKeyInfluenceDeadKeyBit(t *testing.T) {
	nl := netlist.New("deadkey")
	a := nl.AddInput("a")
	k0 := nl.AddInput("keyinput0")
	nl.AddInput("keyinput1") // feeds nothing: dead key material
	nl.MarkOutput(nl.AddGate("y", netlist.Xor, a, k0))

	res := mustRun(t, nl, Options{}, KeyInfluence)
	diags := only(t, res, "key-influence")
	var errs []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			errs = append(errs, d)
		}
	}
	if len(errs) != 1 {
		t.Fatalf("key-influence errored %d times, want 1: %v", len(errs), diags)
	}
	if errs[0].Gate != "keyinput1" {
		t.Errorf("dead key bit = %q, want keyinput1", errs[0].Gate)
	}
	kr := res.KeyReport
	if kr == nil {
		t.Fatal("missing KeyReport")
	}
	if kr.Nominal != 2 || kr.Effective != 1 {
		t.Errorf("effective/nominal = %d/%d, want 1/2", kr.Effective, kr.Nominal)
	}
}

func TestKeyInfluenceHistogram(t *testing.T) {
	nl := netlist.New("hist")
	a := nl.AddInput("a")
	k0 := nl.AddInput("keyinput0")
	k1 := nl.AddInput("keyinput1")
	x := nl.AddGate("x", netlist.Xor, a, k0)
	nl.MarkOutput(x)
	nl.MarkOutput(nl.AddGate("y", netlist.Xnor, x, k1))

	res := mustRun(t, nl, Options{}, KeyInfluence)
	if res.HasErrors() {
		t.Fatalf("unexpected errors: %v", res.Errors())
	}
	kr := res.KeyReport
	if kr.Effective != 2 || kr.Nominal != 2 {
		t.Fatalf("effective/nominal = %d/%d, want 2/2", kr.Effective, kr.Nominal)
	}
	// keyinput0 reaches both outputs, keyinput1 only the second.
	want := map[string]int{"keyinput0": 2, "keyinput1": 1}
	for _, inf := range kr.Influence {
		if want[inf.Key] != inf.Outputs {
			t.Errorf("influence[%s] = %d, want %d", inf.Key, inf.Outputs, want[inf.Key])
		}
	}
	if len(kr.Histogram) != 2 || kr.Histogram[0].Outputs != 1 || kr.Histogram[0].Keys != 1 ||
		kr.Histogram[1].Outputs != 2 || kr.Histogram[1].Keys != 1 {
		t.Errorf("histogram = %+v", kr.Histogram)
	}
}

// buildLUT mirrors core.buildLUT2's three-MUX lowering with key-input
// truth-table cells.
func buildLUT(nl *netlist.Netlist, a, b int) (out int, keys [4]string) {
	var ids [4]int
	for i := range ids {
		name := nl.FreshName("keyinput")
		ids[i] = nl.AddInput(name)
		keys[i] = name
	}
	// ids in row order k00, k01, k10, k11.
	m0 := nl.AddGate(nl.FreshName("m0"), netlist.Mux, b, ids[0], ids[1])
	m1 := nl.AddGate(nl.FreshName("m1"), netlist.Mux, b, ids[2], ids[3])
	return nl.AddGate(nl.FreshName("lut"), netlist.Mux, a, m0, m1), keys
}

func TestConstLUT(t *testing.T) {
	cases := []struct {
		name string
		bits [4]bool // k00, k01, k10, k11
		want int     // diagnostics expected
		frag string
	}{
		{"const0", [4]bool{false, false, false, false}, 1, "constant"},
		{"const1", [4]bool{true, true, true, true}, 1, "constant"},
		{"bufA", [4]bool{false, false, true, true}, 1, "pass-through"},
		{"notB", [4]bool{true, false, true, false}, 1, "pass-through"},
		{"xor", [4]bool{false, true, true, false}, 0, ""},
		{"and", [4]bool{false, false, false, true}, 0, ""},
	}
	for _, tc := range cases {
		nl := netlist.New(tc.name)
		a := nl.AddInput("a")
		b := nl.AddInput("b")
		out, keyNames := buildLUT(nl, a, b)
		nl.MarkOutput(out)
		key := map[string]bool{}
		for i, name := range keyNames {
			key[name] = tc.bits[i]
		}
		res := mustRun(t, nl, Options{Key: key}, ConstLUT)
		diags := only(t, res, "const-lut")
		if len(diags) != tc.want {
			t.Errorf("%s: const-lut fired %d times, want %d: %v", tc.name, len(diags), tc.want, diags)
			continue
		}
		if tc.want == 1 && !strings.Contains(diags[0].Message, tc.frag) {
			t.Errorf("%s: message %q missing %q", tc.name, diags[0].Message, tc.frag)
		}
	}
}

func TestConstLUTSilentWithoutKey(t *testing.T) {
	nl := netlist.New("nokey")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	out, _ := buildLUT(nl, a, b)
	nl.MarkOutput(out)
	res := mustRun(t, nl, Options{}, ConstLUT)
	if len(res.Diagnostics) != 0 {
		t.Fatalf("const-lut must be silent without key values: %v", res.Diagnostics)
	}
}

func scanFixture() (*netlist.Netlist, Options) {
	nl := netlist.New("scan")
	a := nl.AddInput("a")
	k0 := nl.AddInput("keyinput0")
	k1 := nl.AddInput("keyinput1")
	x := nl.AddGate("x", netlist.Xor, a, k0)
	nl.MarkOutput(nl.AddGate("y", netlist.Xnor, x, k1))
	return nl, Options{}
}

func TestScanIntegrity(t *testing.T) {
	check := func(name string, spec ScanSpec, wantErrs int, frag string) {
		t.Helper()
		nl, opts := scanFixture()
		opts.Scan = &spec
		res := mustRun(t, nl, opts, ScanIntegrity)
		errs := res.Errors()
		if len(errs) != wantErrs {
			t.Fatalf("%s: %d error(s), want %d: %v", name, len(errs), wantErrs, res.Diagnostics)
		}
		if wantErrs > 0 && !strings.Contains(errs[0].Message, frag) {
			t.Errorf("%s: message %q missing %q", name, errs[0].Message, frag)
		}
	}
	ok := ScanSpec{Chains: []ScanChainSpec{
		{Name: "keychain", Width: 2, Cells: []string{"keyinput0", "keyinput1"}, KeyChain: true},
	}}
	check("well-formed", ok, 0, "")
	check("width mismatch", ScanSpec{Chains: []ScanChainSpec{
		{Name: "keychain", Width: 3, Cells: []string{"keyinput0", "keyinput1"}, KeyChain: true},
	}}, 1, "width")
	check("missing cell", ScanSpec{Chains: []ScanChainSpec{
		{Name: "keychain", Width: 2, Cells: []string{"keyinput0", "ghost"}, KeyChain: true},
	}}, 1, "names no netlist gate")
	check("out of order", ScanSpec{Chains: []ScanChainSpec{
		{Name: "keychain", Width: 2, Cells: []string{"keyinput1", "keyinput0"}, KeyChain: true},
	}}, 1, "out of order")
	check("non-key cell", ScanSpec{Chains: []ScanChainSpec{
		{Name: "keychain", Width: 2, Cells: []string{"keyinput0", "a"}, KeyChain: true},
	}}, 1, "not a key input")
	check("duplicate across chains", ScanSpec{Chains: []ScanChainSpec{
		{Name: "keychain", Width: 1, Cells: []string{"keyinput0"}, KeyChain: true},
		{Name: "func", Width: 1, Cells: []string{"keyinput0"}},
	}}, 1, "appears on chains")
}

func TestByName(t *testing.T) {
	as, err := ByName("comb-cycle", "undriven")
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName: %v, %v", as, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown analyzer")
	}
}

// Diagnostics must be deterministically ordered and JSON round-trip.
func TestDeterministicOutput(t *testing.T) {
	build := func() *netlist.Netlist {
		nl := netlist.New("multi")
		a := nl.AddInput("a")
		nl.AddInput("spare")
		nl.AddGate("orphan1", netlist.Not, a)
		nl.AddGate("orphan2", netlist.Not, a)
		nl.AddInput("keyinput0")
		nl.MarkOutput(nl.AddGate("y", netlist.Not, a))
		return nl
	}
	res1 := mustRun(t, build(), Options{})
	res2 := mustRun(t, build(), Options{})
	j1, err := json.Marshal(res1)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	j2, _ := json.Marshal(res2)
	if string(j1) != string(j2) {
		t.Fatalf("output not deterministic:\n%s\n%s", j1, j2)
	}
	var back Result
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Diagnostics) != len(res1.Diagnostics) {
		t.Fatalf("round-trip lost diagnostics")
	}
	for i := 1; i < len(res1.Diagnostics); i++ {
		a, b := res1.Diagnostics[i-1], res1.Diagnostics[i]
		if a.Analyzer > b.Analyzer {
			t.Fatalf("diagnostics not sorted by analyzer: %v before %v", a, b)
		}
	}
}

func TestCheckReturnsOnlyErrors(t *testing.T) {
	nl := netlist.New("mixed")
	a := nl.AddInput("a")
	nl.AddInput("spare") // warn
	ghost := nl.AddGate("ghost", netlist.Input)
	nl.MarkOutput(nl.AddGate("y", netlist.And, a, ghost))
	errs, err := Check(nl, Options{}, Undriven)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(errs) != 1 || errs[0].Gate != "ghost" {
		t.Fatalf("Check = %v, want single ghost error", errs)
	}
}
