package netlint_test

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlint"
	"repro/internal/netlist"
)

func assertClean(t *testing.T, nl *netlist.Netlist, opts netlint.Options) *netlint.Result {
	t.Helper()
	res, err := netlint.Run(nl, opts)
	if err != nil {
		t.Fatalf("%s: Run: %v", nl.Name, err)
	}
	if res.HasErrors() {
		t.Errorf("%s: %d error-level diagnostic(s):", nl.Name, res.Count(netlint.Error))
		for _, d := range res.Errors() {
			t.Errorf("  %s", d)
		}
	}
	return res
}

// Every synthesized benchmark must lint clean at Error level.
func TestBenchmarkSuiteLintsClean(t *testing.T) {
	suite, err := circuit.CEPSuite("small")
	if err != nil {
		t.Fatalf("CEPSuite: %v", err)
	}
	for name, nl := range suite {
		t.Run(name, func(t *testing.T) { assertClean(t, nl, netlint.Options{}) })
	}
	for _, p := range circuit.ISCASProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			nl, err := p.Synthesize(0.05)
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			assertClean(t, nl, netlint.Options{})
		})
	}
}

// lockLintOptions assembles the full lint configuration an IP owner
// has: key values and the secure-chain layout.
func lockLintOptions(res *core.Result) netlint.Options {
	key := make(map[string]bool, len(res.Key))
	for i, name := range res.KeyNames {
		key[name] = res.Key[i]
	}
	return netlint.Options{
		Key: key,
		Scan: &netlint.ScanSpec{Chains: []netlint.ScanChainSpec{{
			Name:     "keychain",
			Width:    core.NewKeyChain(res).Len(),
			Cells:    res.KeyNames,
			KeyChain: true,
		}}},
	}
}

// Freshly locked circuits must lint clean at several block counts and
// geometries, and every nominal key bit must be effective.
func TestLockedCircuitsLintClean(t *testing.T) {
	prof, _ := circuit.ProfileByName("c7552")
	orig, err := prof.Synthesize(0.1)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for _, size := range []core.Size{core.Size2x2, core.Size8x8, core.Size8x8x8} {
		for _, blocks := range []int{1, 3, 5} {
			name := fmt.Sprintf("%s-%dblk", size, blocks)
			t.Run(name, func(t *testing.T) {
				res, err := core.Lock(orig, core.Options{
					Blocks: blocks, Size: size, Seed: 7, ScanEnable: true,
				})
				if err != nil {
					t.Fatalf("Lock: %v", err)
				}
				lint := assertClean(t, res.Locked, lockLintOptions(res))
				kr := lint.KeyReport
				if kr == nil {
					t.Fatal("locked circuit produced no key report")
				}
				if kr.Nominal != len(res.Key) {
					t.Errorf("nominal key length %d, lock has %d bits", kr.Nominal, len(res.Key))
				}
				if kr.Effective != kr.Nominal {
					t.Errorf("effective key length %d < nominal %d: lock wastes key material",
						kr.Effective, kr.Nominal)
				}
			})
		}
	}
}

// A locked-then-activated circuit (key bound, resynthesized) must also
// lint clean: binding must not leave dead logic or cycles behind.
func TestActivatedCircuitLintsClean(t *testing.T) {
	prof, _ := circuit.ProfileByName("c7552")
	orig, err := prof.Synthesize(0.1)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 2, Size: core.Size8x8, Seed: 3})
	if err != nil {
		t.Fatalf("Lock: %v", err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatalf("ApplyKey: %v", err)
	}
	assertClean(t, bound, netlint.Options{})
}
