package netlint

import (
	"encoding/binary"
	"math/rand"

	"repro/internal/netlist"
)

// RemovalVulnerability matches locked (key-dependent) signals against
// the signatures of key-free logic in the same netlist — the
// removal/bypass exposure LUT-Lock-style evaluations measure. The
// whole netlist is simulated with the key inputs left free, so a
// match means the signal computes the same function for every key
// assignment:
//
//   - a key-dependent gate functionally identical (or complementary)
//     to a key-free signal is a removal target: the attacker rewires
//     its fanout to the key-free signal and strips the key logic
//     (Warn on the gate);
//   - every key bit all of whose output paths run through such a
//     removable gate is discarded with it (Error, pruned);
//   - a MUX steered by a key-dependent select between branches of
//     which at least one is key-free is a bypass candidate: hardwiring
//     the key-free branch deletes the select cone (Warn).
//
// Candidate matches come from 64-bit random simulation signatures and
// are confirmed exhaustively below the AuditExhaustive input ceiling,
// or with independent random rounds above it. A sampled confirmation
// still warns (it is a strong removal lead) but never prunes key bits
// — only exhaustively matched cones shrink the effective key length —
// and marks the resilience report conservative.
var RemovalVulnerability = &Analyzer{
	Name: "removal-vulnerability",
	Doc:  "match locked subcircuits against key-free signatures; flag removable cones and bypassable MUXes",
	Run:  runRemovalVuln,
}

func runRemovalVuln(p *Pass) error {
	if !p.auditReady() {
		return nil
	}
	keys := p.KeyInputs()
	if len(keys) == 0 {
		return nil
	}
	nl := p.Netlist
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		return nil
	}
	p.resilience()
	tainted := nl.TransitiveFanout(keys...)
	rounds := p.Opts.auditRounds()
	if rounds < 4 {
		rounds = 4 // below 256 patterns the signature map drowns in collisions
	}
	rng := rand.New(rand.NewSource(p.Opts.auditSeed()))
	sig := make([]uint64, len(nl.Gates)*rounds)
	in := make([]uint64, len(nl.Inputs))
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		sim.Run(in)
		for id := range nl.Gates {
			sig[id*rounds+r] = sim.Value(id)
		}
	}
	sigKey := func(id int, invert bool) string {
		b := make([]byte, 8*rounds)
		for r := 0; r < rounds; r++ {
			w := sig[id*rounds+r]
			if invert {
				w = ^w
			}
			binary.LittleEndian.PutUint64(b[r*8:], w)
		}
		return string(b)
	}

	order, err := nl.TopoOrder()
	if err != nil {
		return nil
	}
	// Key-free representatives, earliest in topological order so the
	// reported replacement is the cheapest available signal.
	rep := map[string]int{}
	for _, id := range order {
		if tainted[id] {
			continue
		}
		k := sigKey(id, false)
		if _, ok := rep[k]; !ok {
			rep[k] = id
		}
	}

	for _, id := range order {
		if !tainted[id] || nl.Gates[id].Type == netlist.Input {
			continue
		}
		invert := false
		h, ok := rep[sigKey(id, false)]
		if !ok {
			h, ok = rep[sigKey(id, true)]
			invert = true
		}
		if !ok {
			continue
		}
		eq, proof := confirmMatch(p, sim, id, h, invert, rng)
		if !eq {
			continue
		}
		rel := "functionally identical to"
		if invert {
			rel = "the complement of"
		}
		gname, hname := nl.Gates[id].Name, nl.Gates[h].Name
		p.Report(Warn, id,
			"locked signal %q is %s key-free signal %q for every key assignment (%s proof) — a removal attack rewires its fanout and strips the key logic",
			gname, rel, hname, proof)
		// A sampled match is a strong removal lead but not a proof, so
		// the key bits behind it are not pruned — only a conclusively
		// matched cone may shrink the effective key length.
		if proof == ProofSampled {
			p.auditSampled = true
			continue
		}
		cone := nl.TransitiveFanin(id)
		for _, ki := range keys {
			if !cone[ki] || !p.keyReachesOutput(ki) {
				continue
			}
			if !p.keyConfinedTo(ki, id) {
				continue
			}
			kname := nl.Gates[ki].Name
			p.Report(Error, ki,
				"key input %q only guards removable logic: every path to an output runs through %q, which a removal attack replaces with key-free %q",
				kname, gname, hname)
			p.pruneKey(kname, ClassDiscarded,
				"guards only a cone replaceable by key-free logic", proof)
		}
	}

	// Bypassable MUXes: key-steered selection over a key-free branch.
	for _, id := range order {
		g := &nl.Gates[id]
		if g.Type != netlist.Mux || !tainted[id] {
			continue
		}
		sel := g.Fanin[0]
		if !tainted[sel] {
			continue
		}
		for _, br := range g.Fanin[1:] {
			if !tainted[br] {
				p.Report(Warn, id,
					"MUX %q is steered by key-dependent select %q but branch %q is key-free — a bypass attack hardwires that branch and deletes the select cone",
					g.Name, nl.Gates[sel].Name, nl.Gates[br].Name)
			}
		}
	}
	return nil
}

// confirmMatch re-verifies a signature collision between gates a and h
// (h negated when invert is set): exhaustively over every input
// pattern when the input count permits, otherwise with fresh random
// rounds drawn from the audit RNG.
func confirmMatch(p *Pass, sim *netlist.Simulator, a, h int, invert bool, rng *rand.Rand) (bool, string) {
	nl := p.Netlist
	ni := len(nl.Inputs)
	in := make([]uint64, ni)
	check := func(valid uint64) bool {
		va, vh := sim.Value(a), sim.Value(h)
		if invert {
			vh = ^vh
		}
		return (va^vh)&valid == 0
	}
	if maxEx := p.Opts.auditExhaustive(); ni <= maxEx && ni < 30 {
		total := 1 << ni
		for base := 0; base < total; base += 64 {
			for i := range in {
				var w uint64
				for bit := 0; bit < 64 && base+bit < total; bit++ {
					if (base+bit)&(1<<i) != 0 {
						w |= 1 << bit
					}
				}
				in[i] = w
			}
			valid := ^uint64(0)
			if total-base < 64 {
				valid = 1<<uint(total-base) - 1
			}
			sim.Run(in)
			if !check(valid) {
				return false, ""
			}
		}
		return true, ProofExhaustive
	}
	for r := 0; r < p.Opts.auditRounds(); r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		sim.Run(in)
		if !check(^uint64(0)) {
			return false, ""
		}
	}
	return true, ProofSampled
}
