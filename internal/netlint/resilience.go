package netlint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/opt"
)

// Proof strengths for audit findings, ordered weakest to strongest.
// Structural proofs follow from the netlist graph alone, exhaustive
// proofs enumerate every input pattern of the checked cofactors, and
// sampled proofs rest on random 64-pattern simulation rounds — sound
// for inequivalence (a counterexample is a counterexample) but only
// probabilistic for equivalence. A sampled "equivalent" verdict is
// therefore reported as a warning, never pruned or linked, and marks
// the resilience report conservative rather than exact.
const (
	ProofSampled    = "sampled"
	ProofExhaustive = "exhaustive"
	ProofStructural = "structural"
)

// Classes of pruned key bits. A discarded bit is output-irrelevant:
// no assignment of it changes any primary output, so an oracle-less
// attacker strikes it from the key space. A recovered bit still
// matters functionally but its value leaks through a side channel
// (today: a functional scan chain), so the attacker reads it instead
// of searching for it. Both shrink the effective key length.
const (
	ClassDiscarded = "discarded"
	ClassRecovered = "recovered"
)

// Kinds of linked key groups. A parity group is proven by cofactor
// sweep: the outputs are invariant under jointly flipping the bits,
// so only their XOR matters. A funnel group is proven structurally:
// the bits reach the rest of the circuit only through one key-only
// gate, so only that wire's value matters.
const (
	LinkParity = "parity"
	LinkFunnel = "funnel"
)

// PrunedKeyBit records one key bit the audit removes from the
// effective key space, with the analyzer that proved it, the prune
// class, and the proof strength.
type PrunedKeyBit struct {
	Key      string `json:"key"`
	Analyzer string `json:"analyzer"`
	Class    string `json:"class"`
	Reason   string `json:"reason"`
	Proof    string `json:"proof"`
}

// LinkedKeyGroup records a set of key bits that collapse to a single
// effective bit: the circuit distinguishes assignments to the group
// only through one derived value (their parity, or a funnel wire).
type LinkedKeyGroup struct {
	Keys  []string `json:"keys"`
	Kind  string   `json:"kind"`
	Via   string   `json:"via"`
	Proof string   `json:"proof"`
}

// ResilienceReport is the headline result of the oracle-less audit:
// how many of the nominal key bits survive structural and functional
// pruning. Effective = Nominal − (unique pruned bits) − (per linked
// component, size−1). Every prune and link carries a structural or
// exhaustive proof, so Effective is always a sound upper bound on the
// attacker's remaining search space (the invariant the oracle
// cross-validation in internal/attack enforces, DESIGN.md §10). Exact
// reports whether it is also tight: false when a work cap truncated
// the pair sweep or a sampled equivalence check came back
// inconclusive, meaning further weaknesses may have gone undetected.
type ResilienceReport struct {
	Nominal   int              `json:"nominal"`
	Effective int              `json:"effective"`
	Exact     bool             `json:"exact"`
	Pruned    []PrunedKeyBit   `json:"pruned,omitempty"`
	Linked    []LinkedKeyGroup `json:"linked,omitempty"`
}

func (o Options) auditSeed() int64 {
	if o.AuditSeed == 0 {
		return 1
	}
	return o.AuditSeed
}

func (o Options) auditRounds() int {
	if o.AuditRounds <= 0 {
		return 8
	}
	return o.AuditRounds
}

func (o Options) auditExhaustive() int {
	switch {
	case o.AuditExhaustive <= 0:
		return 16
	case o.AuditExhaustive > 24:
		return 24
	}
	return o.AuditExhaustive
}

func (o Options) auditMaxPairs() int {
	if o.AuditMaxPairs <= 0 {
		return 512
	}
	return o.AuditMaxPairs
}

// resilience returns the run's resilience report, creating it (with
// the nominal key length) on first use. Audit analyzers call it only
// after establishing that key inputs exist.
func (p *Pass) resilience() *ResilienceReport {
	if p.resilienceRep == nil {
		p.resilienceRep = &ResilienceReport{Nominal: len(p.KeyInputs())}
	}
	return p.resilienceRep
}

// pruneKey records that the current analyzer removed the named key bit
// from the effective key space.
func (p *Pass) pruneKey(key, class, reason, proof string) {
	rep := p.resilience()
	rep.Pruned = append(rep.Pruned, PrunedKeyBit{
		Key: key, Analyzer: p.analyzer, Class: class, Reason: reason, Proof: proof,
	})
}

// linkKeys records that the named key bits collapse to one effective
// bit.
func (p *Pass) linkKeys(keys []string, kind, via, proof string) {
	rep := p.resilience()
	ks := append([]string(nil), keys...)
	sort.Strings(ks)
	rep.Linked = append(rep.Linked, LinkedKeyGroup{Keys: ks, Kind: kind, Via: via, Proof: proof})
}

// auditReady reports whether the netlist is simulatable (acyclic).
// The audit analyzers stay silent on broken netlists and leave the
// defect to comb-cycle/undriven, mirroring how type-dependent Go
// analyzers skip packages that do not compile.
func (p *Pass) auditReady() bool {
	if p.auditTopoOK == nil {
		_, err := p.Netlist.TopoOrder()
		ok := err == nil
		p.auditTopoOK = &ok
	}
	return *p.auditTopoOK
}

// auditEquiv checks two cofactor netlists (same input signature) for
// functional equivalence and reports the proof strength actually used.
// It first constant-folds both sides and compares canonical forms —
// cofactors of a forced or parity-linked key bit typically collapse to
// the identical DAG, which proves equivalence structurally at any
// circuit size. Failing that it simulates: exhaustive below the
// AuditExhaustive input-count ceiling, sampled 64-pattern rounds above
// it (where only an inequivalence verdict is conclusive).
func (p *Pass) auditEquiv(a, b *netlist.Netlist) (bool, string, error) {
	if foldedEqual(a, b) {
		return true, ProofStructural, nil
	}
	maxEx := p.Opts.auditExhaustive()
	proof := ProofSampled
	if ni := len(a.Inputs); ni <= maxEx && ni < 30 {
		proof = ProofExhaustive
	}
	eq, _, err := netlist.Equivalent(a, b, maxEx, p.Opts.auditRounds(), p.Opts.auditSeed())
	return eq, proof, err
}

// foldedEqual constant-folds clones of both netlists and compares
// their primary outputs' canonical forms under hash-consing: every
// gate is interned by (type, canonical fanins) — fanins sorted for
// commutative gates, inputs grounded by name, constants by value — in
// a table shared across the two netlists, so isomorphic DAGs receive
// identical output signatures regardless of gate numbering. Equality
// is a sound (never complete) proof of functional equivalence.
func foldedEqual(a, b *netlist.Netlist) bool {
	interned := map[string]int{}
	sa, ok := foldCanon(a, interned)
	if !ok {
		return false
	}
	sb, ok := foldCanon(b, interned)
	return ok && sa == sb
}

func foldCanon(src *netlist.Netlist, interned map[string]int) (string, bool) {
	c := src.Clone()
	if _, err := opt.Optimize(c); err != nil {
		return "", false
	}
	order, err := c.TopoOrder()
	if err != nil {
		return "", false
	}
	idOf := make([]int, len(c.Gates))
	intern := func(key string) int {
		n, ok := interned[key]
		if !ok {
			n = len(interned)
			interned[key] = n
		}
		return n
	}
	for _, id := range order {
		g := &c.Gates[id]
		var key string
		switch g.Type {
		case netlist.Input:
			key = "i:" + g.Name
		case netlist.Const0:
			key = "0"
		case netlist.Const1:
			key = "1"
		default:
			kids := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				kids[i] = idOf[f]
			}
			switch g.Type {
			case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
				sort.Ints(kids)
			}
			key = fmt.Sprintf("%d:%v", g.Type, kids)
		}
		idOf[id] = intern(key)
	}
	var sig strings.Builder
	for _, o := range c.Outputs {
		fmt.Fprintf(&sig, "%d,", idOf[o])
	}
	return sig.String(), true
}

// weakerProof combines the proofs of a multi-part argument: the chain
// is only as strong as its weakest link.
func weakerProof(a, b string) string {
	if a == ProofSampled || b == ProofSampled {
		return ProofSampled
	}
	if a == ProofExhaustive || b == ProofExhaustive {
		return ProofExhaustive
	}
	return ProofStructural
}

// inputPositions maps primary-input gate IDs to their position in the
// input vector, cached across analyzers.
func (p *Pass) inputPositions() map[int]int {
	if p.inputPos == nil {
		p.inputPos = make(map[int]int, len(p.Netlist.Inputs))
		for pos, id := range p.Netlist.Inputs {
			p.inputPos[id] = pos
		}
	}
	return p.inputPos
}

// outputSet returns the set of primary-output gate IDs, cached.
func (p *Pass) outputSet() map[int]bool {
	if p.outputIDs == nil {
		p.outputIDs = make(map[int]bool, len(p.Netlist.Outputs))
		for _, o := range p.Netlist.Outputs {
			p.outputIDs[o] = true
		}
	}
	return p.outputIDs
}

// keyReachesOutput reports whether the key input's transitive fanout
// contains a primary output at all. Bits that reach none are dead key
// material — key-influence's finding, not the audit's.
func (p *Pass) keyReachesOutput(ki int) bool {
	return p.reachesOutputFrom(ki, -1)
}

// keyConfinedTo reports whether every path from key input ki to a
// primary output passes through gate g — i.e. removing g from the
// graph disconnects ki from all outputs. Callers must first establish
// that ki reaches an output at all.
func (p *Pass) keyConfinedTo(ki, g int) bool {
	return !p.reachesOutputFrom(ki, g)
}

// reachesOutputFrom walks the fanout graph from src, never expanding
// the barrier gate (pass -1 for none), and reports whether a primary
// output is reachable.
func (p *Pass) reachesOutputFrom(src, barrier int) bool {
	if src == barrier {
		return false
	}
	fanouts := p.Fanouts()
	outs := p.outputSet()
	if outs[src] {
		return true
	}
	seen := map[int]bool{src: true}
	stack := []int{src}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range fanouts[id] {
			if f == barrier || seen[f] {
				continue
			}
			if outs[f] {
				return true
			}
			seen[f] = true
			stack = append(stack, f)
		}
	}
	return false
}

// quoteList renders "a", "b", "c" for diagnostics.
func quoteList(names []string) string {
	qs := make([]string, len(names))
	for i, n := range names {
		qs[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(qs, ", ")
}

// finalizeResilience closes the books after all analyzers ran:
// deduplicates prune and link records (identical records arise when an
// analyzer is registered twice), charges each pruned bit and each
// linked component against the nominal key length, and emits the
// headline effective-key-length diagnostic under the synthetic
// analyzer name "resilience".
//
// Accounting is deliberately conservative where findings overlap: a
// bit both pruned and linked counts once (as pruned); parity links
// compose linearly (flip-invariance vectors form a group, so a
// connected component of m bits has at least m−1 independent
// invariances and contributes exactly one effective bit); funnel
// groups are charged only for keys not already reduced elsewhere,
// because mixing a funnel constraint into a parity component does not
// in general preserve the m−1 rank argument.
func (p *Pass) finalizeResilience() *ResilienceReport {
	rep := p.resilienceRep
	if rep == nil {
		return nil
	}
	sort.Slice(rep.Pruned, func(i, j int) bool {
		a, b := rep.Pruned[i], rep.Pruned[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Reason < b.Reason
	})
	rep.Pruned = compact(rep.Pruned)
	sort.Slice(rep.Linked, func(i, j int) bool {
		a, b := rep.Linked[i], rep.Linked[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		ka, kb := strings.Join(a.Keys, ","), strings.Join(b.Keys, ",")
		if ka != kb {
			return ka < kb
		}
		return a.Via < b.Via
	})
	rep.Linked = compactGroups(rep.Linked)

	pruned := map[string]bool{}
	for _, pr := range rep.Pruned {
		pruned[pr.Key] = true
	}

	// Parity links: union-find over live (un-pruned) keys.
	parent := map[string]string{}
	var find func(string) string
	find = func(k string) string {
		r, ok := parent[k]
		if !ok {
			parent[k] = k
			return k
		}
		if r != k {
			r = find(r)
			parent[k] = r
		}
		return r
	}
	for _, g := range rep.Linked {
		if g.Kind != LinkParity {
			continue
		}
		var live []string
		for _, k := range g.Keys {
			if !pruned[k] {
				live = append(live, k)
			}
		}
		for i := 1; i < len(live); i++ {
			parent[find(live[i])] = find(live[0])
		}
	}
	compSize := map[string]int{}
	var members []string
	for k := range parent {
		members = append(members, k)
	}
	sort.Strings(members)
	used := map[string]bool{}
	for _, k := range members {
		compSize[find(k)]++
		used[k] = true
	}
	reduction := 0
	for _, size := range compSize {
		reduction += size - 1
	}

	// Funnel groups: charge keys not already reduced as pruned or
	// parity-linked; process in the sorted order fixed above.
	for _, g := range rep.Linked {
		if g.Kind != LinkFunnel {
			continue
		}
		var live []string
		for _, k := range g.Keys {
			if !pruned[k] && !used[k] {
				live = append(live, k)
			}
		}
		for _, k := range live {
			used[k] = true
		}
		if len(live) >= 2 {
			reduction += len(live) - 1
		}
	}

	eff := rep.Nominal - len(pruned) - reduction
	if eff < 0 {
		eff = 0
	}
	rep.Effective = eff
	// Prunes and links only ever carry structural or exhaustive proofs
	// (sampled verdicts warn without pruning), so Effective is a sound
	// upper bound on the attacker's search space in every mode. It is
	// exact only when no work cap truncated the sweep and no sampled
	// check came back inconclusive — otherwise weaknesses may have been
	// missed and the true effective length could be lower still.
	rep.Exact = !p.auditCapped && !p.auditSampled

	mode := "conservative"
	if rep.Exact {
		mode = "exact"
	}
	sev := Info
	if rep.Effective < rep.Nominal {
		sev = Warn
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: "resilience",
		Severity: sev,
		GateID:   -1,
		Message: fmt.Sprintf("audit: effective key length %d of %d nominal bits (%s; %d pruned, %d linked group(s))",
			rep.Effective, rep.Nominal, mode, len(pruned), len(rep.Linked)),
	})
	return rep
}

func compact(in []PrunedKeyBit) []PrunedKeyBit {
	out := in[:0]
	for _, pr := range in {
		if len(out) == 0 || pr != out[len(out)-1] {
			out = append(out, pr)
		}
	}
	return out
}

func compactGroups(in []LinkedKeyGroup) []LinkedKeyGroup {
	out := in[:0]
	for _, g := range in {
		if len(out) > 0 {
			prev := out[len(out)-1]
			if g.Kind == prev.Kind && g.Via == prev.Via && g.Proof == prev.Proof &&
				strings.Join(g.Keys, ",") == strings.Join(prev.Keys, ",") {
				continue
			}
		}
		out = append(out, g)
	}
	return out
}
