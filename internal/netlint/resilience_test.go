package netlint_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/netlint"
	"repro/internal/netlist"
	"repro/internal/testutil"
)

func loadC17(t *testing.T) *netlist.Netlist {
	t.Helper()
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatalf("open c17: %v", err)
	}
	defer f.Close()
	nl, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatalf("parse c17: %v", err)
	}
	return nl
}

func runAudit(t *testing.T, nl *netlist.Netlist, opts netlint.Options) *netlint.Result {
	t.Helper()
	res, err := netlint.Run(nl, opts, netlint.All()...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// The planted fixture has seven nominal bits and three effective ones;
// the audit must find that exactly, name every planted bit, and carry
// only structural/exhaustive proofs (12 inputs is under the
// exhaustive ceiling).
func TestAuditPlantedFixture(t *testing.T) {
	locked, _, _, scan := testutil.PlantAuditFixture(t, loadC17(t))
	res := runAudit(t, locked, netlint.Options{Scan: scan})
	rep := res.Resilience
	if rep == nil {
		t.Fatal("no resilience report")
	}
	if rep.Nominal != 7 || rep.Effective != 3 {
		t.Fatalf("effective key length %d of %d, want 3 of 7\nreport: %+v", rep.Effective, rep.Nominal, rep)
	}
	if !rep.Exact {
		t.Errorf("report conservative, want exact: %+v", rep)
	}
	prunedClass := map[string]string{}
	for _, pr := range rep.Pruned {
		prunedClass[pr.Key] = pr.Class
	}
	if prunedClass["keyinput1"] != netlint.ClassDiscarded {
		t.Errorf("keyinput1: class %q, want discarded (pruned: %+v)", prunedClass["keyinput1"], rep.Pruned)
	}
	if prunedClass["keyinput6"] != netlint.ClassRecovered {
		t.Errorf("keyinput6: class %q, want recovered (pruned: %+v)", prunedClass["keyinput6"], rep.Pruned)
	}
	if len(prunedClass) != 2 {
		t.Errorf("pruned %d distinct bits, want 2: %+v", len(prunedClass), rep.Pruned)
	}
	linked := map[string]bool{}
	for _, g := range rep.Linked {
		linked[strings.Join(g.Keys, "+")] = true
	}
	for _, want := range []string{"keyinput2+keyinput3", "keyinput4+keyinput5"} {
		if !linked[want] {
			t.Errorf("missing linked group %s (linked: %+v)", want, rep.Linked)
		}
	}
	// Every planted-redundant bit must be named in an Error-level
	// diagnostic, and the headline must state the metric.
	wantNamed := []string{"keyinput1", "keyinput2", "keyinput3", "keyinput4", "keyinput5", "keyinput6"}
	var headline bool
	for _, name := range wantNamed {
		found := false
		for _, d := range res.Diagnostics {
			if d.Severity == netlint.Error && strings.Contains(d.Message, `"`+name+`"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("planted bit %s not named in any Error diagnostic", name)
		}
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer == "resilience" && strings.Contains(d.Message, "effective key length 3 of 7") {
			headline = true
		}
	}
	if !headline {
		t.Errorf("missing headline resilience diagnostic; got %+v", res.Diagnostics)
	}
}

// A clean XOR lock (distinct wires, no planted redundancy) must keep
// its full nominal key length under the audit.
func TestAuditCleanXORLock(t *testing.T) {
	locked, _, _ := testutil.XORLock(t, loadC17(t), 3, 7)
	res := runAudit(t, locked, netlint.Options{})
	rep := res.Resilience
	if rep == nil {
		t.Fatal("no resilience report")
	}
	if rep.Effective != rep.Nominal || rep.Nominal != 3 {
		t.Fatalf("effective %d of %d, want 3 of 3\npruned: %+v\nlinked: %+v",
			rep.Effective, rep.Nominal, rep.Pruned, rep.Linked)
	}
	if res.HasErrors() {
		t.Fatalf("clean lock has Error diagnostics: %+v", res.Errors())
	}
}

// Forced-constant key logic must be caught by both the cofactor sweep
// (output-irrelevant) and the removal matcher (replaceable cone),
// deduplicating to a single pruned bit.
func TestAuditForcedConstantBit(t *testing.T) {
	nl := netlist.New("forced")
	a := nl.AddInput("a")
	k := nl.AddInput("keyinput0")
	zero := nl.AddGate("zero", netlist.Const0)
	dead := nl.AddGate("dead", netlist.And, k, zero)
	nl.MarkOutput(nl.AddGate("y", netlist.Xor, a, dead))
	res := runAudit(t, nl, netlint.Options{})
	rep := res.Resilience
	if rep == nil || rep.Effective != 0 || rep.Nominal != 1 {
		t.Fatalf("want effective 0 of 1, got %+v", rep)
	}
	seenAnalyzer := map[string]bool{}
	for _, pr := range rep.Pruned {
		if pr.Key != "keyinput0" {
			t.Errorf("pruned unexpected key %q", pr.Key)
		}
		seenAnalyzer[pr.Analyzer] = true
	}
	if !seenAnalyzer["key-const-prop"] || !seenAnalyzer["removal-vulnerability"] {
		t.Errorf("want prunes from both key-const-prop and removal-vulnerability, got %+v", rep.Pruned)
	}
}

// A key bit fed only into a 2-input AND with a primary input is
// dominated there (Warn), and a MUX steered by key logic over a
// key-free branch is a bypass candidate (Warn).
func TestAuditDominationAndBypassWarns(t *testing.T) {
	nl := netlist.New("dom")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	k := nl.AddInput("keyinput0")
	and := nl.AddGate("mask", netlist.And, k, a)
	nl.MarkOutput(nl.AddGate("y", netlist.Xor, and, b))
	res := runAudit(t, nl, netlint.Options{})
	var dominated bool
	for _, d := range res.Diagnostics {
		if d.Analyzer == "key-equivalence" && strings.Contains(d.Message, "dominated") {
			dominated = true
		}
	}
	if !dominated {
		t.Errorf("missing domination warn: %+v", res.Diagnostics)
	}

	nl2 := netlist.New("bypass")
	a2 := nl2.AddInput("a")
	b2 := nl2.AddInput("b")
	k2 := nl2.AddInput("keyinput0")
	mux := nl2.AddGate("m", netlist.Mux, k2, a2, b2)
	nl2.MarkOutput(mux)
	res2 := runAudit(t, nl2, netlint.Options{})
	var bypass bool
	for _, d := range res2.Diagnostics {
		if d.Analyzer == "removal-vulnerability" && strings.Contains(d.Message, "bypass") {
			bypass = true
		}
	}
	if !bypass {
		t.Errorf("missing MUX bypass warn: %+v", res2.Diagnostics)
	}
}

// Registering an analyzer twice — via the default set plus an
// explicit repeat — must not duplicate findings (satellite dedup fix).
func TestRunDedupesDoubleRegistration(t *testing.T) {
	build := func() *netlist.Netlist {
		nl := netlist.New("dup")
		a := nl.AddInput("a")
		nl.AddInput("keyinput0") // dead key bit: guaranteed finding
		nl.MarkOutput(nl.AddGate("y", netlist.Not, a))
		return nl
	}
	single, err := netlint.Run(build(), netlint.Options{}, netlint.Hygiene()...)
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := netlint.Run(build(), netlint.Options{},
		append(netlint.Hygiene(), netlint.Hygiene()...)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(doubled.Diagnostics) != len(single.Diagnostics) {
		t.Fatalf("double registration changed findings: %d vs %d\n%+v",
			len(doubled.Diagnostics), len(single.Diagnostics), doubled.Diagnostics)
	}
	if len(doubled.Analyzers) != len(single.Analyzers) {
		t.Fatalf("double registration changed analyzer list: %v", doubled.Analyzers)
	}
}

// The audit must be deterministic end to end: two runs over the same
// fixture serialize identically.
func TestAuditDeterministic(t *testing.T) {
	run := func() []byte {
		locked, _, _, scan := testutil.PlantAuditFixture(t, loadC17(t))
		res := runAudit(t, locked, netlint.Options{Scan: scan})
		j, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	if a, b := run(), run(); string(a) != string(b) {
		t.Fatalf("audit not deterministic:\n%s\n%s", a, b)
	}
}

// Sampled proofs (inputs above the exhaustive ceiling) must mark the
// report conservative, never exact.
func TestAuditConservativeAboveExhaustiveCeiling(t *testing.T) {
	orig := testutil.RandomCircuit(t, 20, 4, 60, 5)
	locked, _, _, scan := testutil.PlantAuditFixture(t, orig)
	res := runAudit(t, locked, netlint.Options{Scan: scan, AuditExhaustive: 4})
	rep := res.Resilience
	if rep == nil {
		t.Fatal("no resilience report")
	}
	if rep.Exact {
		t.Fatalf("27-input fixture audited with AuditExhaustive=4 claims an exact report: %+v", rep)
	}
	if rep.Effective >= rep.Nominal {
		t.Fatalf("planted redundancy not found: %+v", rep)
	}
}
