package netlint

// ScanExposure reports key material observable through the scan
// infrastructure declared in Options.Scan — the leakage channel
// ScanSAT models away even for "obfuscated" chains:
//
//   - a key input listed as a cell of a functional (non-key) chain
//     shifts out directly in test mode: zero secrecy (Error, pruned
//     as "recovered" — the attacker reads the bit, it still matters
//     functionally);
//   - a key input whose fanout drives a cell of a functional chain is
//     indirectly observable: scan-mode responses give the attacker
//     per-cell oracle access to the key-dependent logic, the exact
//     leverage ScanSAT builds its model from (Warn).
//
// Cells on the paper's secure configuration chain (KeyChain) are out
// of scope here — scan-out from that chain is architecturally blocked
// and its structural integrity is scan-integrity's job. Without a
// ScanSpec the analyzer is silent.
var ScanExposure = &Analyzer{
	Name: "scan-exposure",
	Doc:  "report key bits directly on, or observable through, functional scan chains",
	Run:  runScanExposure,
}

func runScanExposure(p *Pass) error {
	if p.Opts.Scan == nil {
		return nil
	}
	keys := p.KeyInputs()
	if len(keys) == 0 {
		return nil
	}
	nl := p.Netlist
	type cellRef struct {
		id          int
		cell, chain string
	}
	var observable []cellRef
	for _, chain := range p.Opts.Scan.Chains {
		if chain.KeyChain {
			continue
		}
		for _, cell := range chain.Cells {
			id, ok := nl.GateID(cell)
			if !ok {
				continue // dangling cell name: scan-integrity's finding
			}
			if p.IsKeyInput(id) {
				name := nl.Gates[id].Name
				p.Report(Error, id,
					"key input %q sits on functional scan chain %q: its value shifts out directly in test mode — zero secrecy",
					name, chain.Name)
				p.pruneKey(name, ClassRecovered,
					"shifts out directly on functional scan chain "+chain.Name, ProofStructural)
				continue
			}
			observable = append(observable, cellRef{id, cell, chain.Name})
		}
	}
	if len(observable) == 0 || !p.auditReady() {
		return nil
	}
	for _, ki := range keys {
		cone := nl.TransitiveFanout(ki)
		for _, c := range observable {
			if cone[c.id] {
				p.Report(Warn, ki,
					"key input %q drives scan cell %q on functional chain %q: scan-mode responses expose it to ScanSAT-style modeling",
					nl.Gates[ki].Name, c.cell, c.chain)
				break
			}
		}
	}
	return nil
}
