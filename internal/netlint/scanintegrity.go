package netlint

// ScanIntegrity checks the declared scan-chain configuration
// (Options.Scan) against the netlist. The paper's Scan-and-Shift
// defense (core/scanchain) stores key bits in secure cells on a
// dedicated configuration chain; configuration silently misloads when
// the declared chain width disagrees with the cell count, a cell names
// a net the netlist does not have, a cell appears on two chains, or
// the key chain's shift order disagrees with the key-input order the
// lock recorded — each of those is an Error. A key chain holding a
// non-key cell defeats the "scan-out blocked" isolation argument and
// is also an Error. Without a ScanSpec the analyzer is silent.
var ScanIntegrity = &Analyzer{
	Name: "scan-integrity",
	Doc:  "check scan-chain width, cell existence, exclusivity and key-chain ordering",
	Run:  runScanIntegrity,
}

func runScanIntegrity(p *Pass) error {
	if p.Opts.Scan == nil {
		return nil
	}
	owner := map[string]string{} // cell name -> chain name
	for _, chain := range p.Opts.Scan.Chains {
		if chain.Width != len(chain.Cells) {
			p.Report(Error, -1, "scan chain %q declares width %d but lists %d cell(s)",
				chain.Name, chain.Width, len(chain.Cells))
		}
		prevPos := -1
		for _, cell := range chain.Cells {
			if prev, dup := owner[cell]; dup {
				p.Report(Error, -1, "scan cell %q appears on chains %q and %q", cell, prev, chain.Name)
				continue
			}
			owner[cell] = chain.Name
			id, ok := p.Netlist.GateID(cell)
			if !ok {
				p.Report(Error, -1, "scan chain %q cell %q names no netlist gate", chain.Name, cell)
				continue
			}
			if !chain.KeyChain {
				continue
			}
			if !p.IsKeyInput(id) {
				p.Report(Error, id, "key chain %q cell %q is not a key input — breaks scan-out isolation", chain.Name, cell)
				continue
			}
			pos := inputPosition(p, id)
			if pos < prevPos {
				p.Report(Error, id, "key chain %q cell %q is out of order: shift order must match key-input order", chain.Name, cell)
			}
			prevPos = pos
		}
	}
	return nil
}

// inputPosition returns the position of gate id in the primary input
// list, or -1.
func inputPosition(p *Pass, id int) int {
	for pos, in := range p.Netlist.Inputs {
		if in == id {
			return pos
		}
	}
	return -1
}
