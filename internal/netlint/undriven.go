package netlint

import "repro/internal/netlist"

// Undriven reports floating connectivity: nets that are read but never
// driven, and primary inputs that are never consumed.
//
// In this IR an undriven net appears as a gate of type Input that is
// not registered in the primary input list — exactly what
// netlist.ParseBenchLax materializes for a fanin reference to a net no
// line of the .bench file defines, and what broken programmatic
// construction produces. Reading such a net is an Error: simulation
// and CNF encoding would treat it as a free variable the silicon does
// not have. A primary input that drives nothing (and is not itself an
// output) is a Warn — harmless to correctness but usually a symptom of
// a mis-spliced transform.
var Undriven = &Analyzer{
	Name: "undriven",
	Doc:  "detect undriven nets and never-consumed primary inputs",
	Run:  runUndriven,
}

func runUndriven(p *Pass) error {
	fanouts := p.Fanouts()
	outputSet := make(map[int]bool, len(p.Netlist.Outputs))
	for _, o := range p.Netlist.Outputs {
		outputSet[o] = true
	}
	for id := range p.Netlist.Gates {
		g := &p.Netlist.Gates[id]
		if g.Type != netlist.Input {
			continue
		}
		switch {
		case !p.IsPrimaryInput(id):
			p.Report(Error, id, "undriven net %q: read by %d gate(s) but never defined or driven", g.Name, len(fanouts[id]))
		case len(fanouts[id]) == 0 && !outputSet[id]:
			p.Report(Warn, id, "primary input %q is never consumed", g.Name)
		}
	}
	return nil
}
