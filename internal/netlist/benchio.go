package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS .bench format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	y = NAND(a, b)
//	q = DFF(d)
//
// DFF gates are scan-converted per the full-scan SAT-attack threat
// model: each DFF output becomes a pseudo primary input and its data
// pin becomes a pseudo primary output. Use ParseBenchSeq to retain the
// flip-flop count for sequential analysis.
func ParseBench(name string, r io.Reader) (*Netlist, error) {
	nl, _, err := ParseBenchSeq(name, r)
	return nl, err
}

// ParseBenchSeq parses a .bench file and additionally reports the
// number of DFFs that were scan-converted. The pseudo state inputs are
// the last nDFF entries of Inputs; the pseudo next-state outputs are
// the last nDFF entries of Outputs (in matching order), which is
// exactly the layout the seq package rebuilds sequential circuits from.
func ParseBenchSeq(name string, r io.Reader) (*Netlist, int, error) {
	type def struct {
		out  string
		op   string
		args []string
		line int
	}
	var (
		inputs  []string
		outputs []string
		defs    []def
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, 0, fmt.Errorf("bench %s line %d: %v", name, lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, 0, fmt.Errorf("bench %s line %d: %v", name, lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, 0, fmt.Errorf("bench %s line %d: expected assignment, got %q", name, lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			lp := strings.Index(rhs, "(")
			rp := strings.LastIndex(rhs, ")")
			if lp < 0 || rp < lp {
				return nil, 0, fmt.Errorf("bench %s line %d: malformed gate %q", name, lineNo, rhs)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:lp]))
			var args []string
			inner := strings.TrimSpace(rhs[lp+1 : rp])
			if inner != "" {
				for _, a := range strings.Split(inner, ",") {
					args = append(args, strings.TrimSpace(a))
				}
			}
			defs = append(defs, def{out: out, op: op, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("bench %s: %v", name, err)
	}

	n := New(name)
	for _, in := range inputs {
		n.AddInput(in)
	}
	// DFFs first: their outputs become pseudo inputs so that later
	// gates can reference them.
	var scanouts []string
	for _, d := range defs {
		if d.op == "DFF" {
			if len(d.args) != 1 {
				return nil, 0, fmt.Errorf("bench %s line %d: DFF takes 1 argument", name, d.line)
			}
			n.AddInput(d.out)
			scanouts = append(scanouts, d.args[0])
		}
	}

	// Multi-pass resolution of combinational definitions: a .bench file
	// may reference gates defined later.
	pending := make([]def, 0, len(defs))
	for _, d := range defs {
		if d.op != "DFF" {
			pending = append(pending, d)
		}
	}
	for len(pending) > 0 {
		progress := false
		var next []def
		for _, d := range pending {
			ids := make([]int, 0, len(d.args))
			ok := true
			for _, a := range d.args {
				id, exists := n.GateID(a)
				if !exists {
					ok = false
					break
				}
				ids = append(ids, id)
			}
			if !ok {
				next = append(next, d)
				continue
			}
			t, err := parseGateType(d.op)
			if err != nil {
				return nil, 0, fmt.Errorf("bench %s line %d: %v", name, d.line, err)
			}
			n.AddGate(d.out, t, ids...)
			progress = true
		}
		if !progress {
			return nil, 0, fmt.Errorf("bench %s: unresolvable references (cycle or missing gate), first: %q line %d",
				name, next[0].out, next[0].line)
		}
		pending = next
	}

	for _, o := range outputs {
		id, ok := n.GateID(o)
		if !ok {
			return nil, 0, fmt.Errorf("bench %s: OUTPUT(%s) never defined", name, o)
		}
		n.MarkOutput(id)
	}
	for _, so := range scanouts {
		id, ok := n.GateID(so)
		if !ok {
			return nil, 0, fmt.Errorf("bench %s: DFF data pin %s never defined", name, so)
		}
		n.MarkOutput(id)
	}
	if err := n.Validate(); err != nil {
		return nil, 0, err
	}
	return n, len(scanouts), nil
}

func parenArg(line string) (string, error) {
	lp := strings.Index(line, "(")
	rp := strings.LastIndex(line, ")")
	if lp < 0 || rp < lp {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[lp+1 : rp])
	if arg == "" {
		return "", fmt.Errorf("empty declaration %q", line)
	}
	return arg, nil
}

func parseGateType(op string) (GateType, error) {
	switch op {
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	case "NOT", "INV":
		return Not, nil
	case "BUF", "BUFF":
		return Buf, nil
	case "MUX":
		return Mux, nil
	case "CONST0", "GND":
		return Const0, nil
	case "CONST1", "VDD":
		return Const1, nil
	}
	return 0, fmt.Errorf("unknown gate type %q", op)
}

// WriteBench emits the netlist in .bench format. Gates are written in
// topological order so the file parses in one pass with standard tools.
func (n *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n",
		len(n.Inputs), len(n.Outputs), n.NumLogicGates())
	for _, id := range n.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.Gates[id].Name)
	}
	for _, id := range n.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Gates[id].Name)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		g := &n.Gates[id]
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, benchOpName(g.Type), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func benchOpName(t GateType) string {
	switch t {
	case Not:
		return "NOT"
	case Buf:
		return "BUFF"
	default:
		return t.String()
	}
}

// Stats summarizes a netlist for reporting.
type Stats struct {
	Name      string
	Inputs    int
	Outputs   int
	Gates     int // logic gates, excluding inputs/constants
	Depth     int
	TypeCount map[GateType]int
}

// ComputeStats gathers counts and depth.
func (n *Netlist) ComputeStats() (Stats, error) {
	_, depth, err := n.Levels()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Name:      n.Name,
		Inputs:    len(n.Inputs),
		Outputs:   len(n.Outputs),
		Gates:     n.NumLogicGates(),
		Depth:     depth,
		TypeCount: map[GateType]int{},
	}
	for i := range n.Gates {
		s.TypeCount[n.Gates[i].Type]++
	}
	return s, nil
}

// String renders the stats compactly with gate types sorted by name.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d in, %d out, %d gates, depth %d",
		s.Name, s.Inputs, s.Outputs, s.Gates, s.Depth)
	type kv struct {
		t GateType
		c int
	}
	var kvs []kv
	for t, c := range s.TypeCount {
		if t == Input {
			continue
		}
		kvs = append(kvs, kv{t, c})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].t < kvs[j].t })
	for _, e := range kvs {
		fmt.Fprintf(&sb, " %s=%d", e.t, e.c)
	}
	return sb.String()
}
