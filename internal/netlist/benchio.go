package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS .bench format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	y = NAND(a, b)
//	q = DFF(d)
//
// DFF gates are scan-converted per the full-scan SAT-attack threat
// model: each DFF output becomes a pseudo primary input and its data
// pin becomes a pseudo primary output. Use ParseBenchSeq to retain the
// flip-flop count for sequential analysis.
func ParseBench(name string, r io.Reader) (*Netlist, error) {
	nl, _, err := ParseBenchSeq(name, r)
	return nl, err
}

// benchDef is one parsed gate assignment.
type benchDef struct {
	out  string
	op   string
	args []string
	line int
}

// benchDecl is one parsed INPUT/OUTPUT declaration (or a derived
// reference, such as a DFF data pin) with its source line.
type benchDecl struct {
	name string
	line int
}

// benchFile is the raw parse of a .bench source, shared by the strict
// and lax builders.
type benchFile struct {
	inputs  []benchDecl
	outputs []benchDecl
	defs    []benchDef
}

// scanBench tokenizes a .bench source into declarations and gate
// definitions, reporting syntax errors with their line numbers.
func scanBench(name string, r io.Reader) (*benchFile, error) {
	var bf benchFile
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s line %d: %v", name, lineNo, err)
			}
			bf.inputs = append(bf.inputs, benchDecl{name: arg, line: lineNo})
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s line %d: %v", name, lineNo, err)
			}
			bf.outputs = append(bf.outputs, benchDecl{name: arg, line: lineNo})
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench %s line %d: expected assignment, got %q", name, lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			if out == "" {
				// Found by fuzzing: "=DFF(d)" would define a gate named
				// "" whose scan-converted pseudo input serializes as the
				// unparseable "INPUT()".
				return nil, fmt.Errorf("bench %s line %d: empty gate name in %q", name, lineNo, line)
			}
			rhs := strings.TrimSpace(line[eq+1:])
			lp := strings.Index(rhs, "(")
			rp := strings.LastIndex(rhs, ")")
			if lp < 0 || rp < lp {
				return nil, fmt.Errorf("bench %s line %d: gate %q: malformed right-hand side %q", name, lineNo, out, rhs)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:lp]))
			var args []string
			inner := strings.TrimSpace(rhs[lp+1 : rp])
			if inner != "" {
				for _, a := range strings.Split(inner, ",") {
					args = append(args, strings.TrimSpace(a))
				}
			}
			bf.defs = append(bf.defs, benchDef{out: out, op: op, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %v", name, err)
	}
	return &bf, nil
}

// addBenchInputs declares the primary inputs and the DFF pseudo inputs
// (scan conversion), returning the DFF data-pin references. Shared by
// the strict and lax builders.
func addBenchInputs(n *Netlist, name string, bf *benchFile) ([]benchDecl, error) {
	for _, in := range bf.inputs {
		if _, dup := n.GateID(in.name); dup {
			return nil, fmt.Errorf("bench %s line %d: duplicate INPUT(%s)", name, in.line, in.name)
		}
		n.AddInput(in.name)
	}
	// DFFs first: their outputs become pseudo inputs so that later
	// gates can reference them.
	var scanouts []benchDecl
	for _, d := range bf.defs {
		if d.op != "DFF" {
			continue
		}
		if len(d.args) != 1 {
			return nil, fmt.Errorf("bench %s line %d: DFF %q takes 1 argument, got %d", name, d.line, d.out, len(d.args))
		}
		if _, dup := n.GateID(d.out); dup {
			return nil, fmt.Errorf("bench %s line %d: duplicate definition of %q", name, d.line, d.out)
		}
		n.AddInput(d.out)
		scanouts = append(scanouts, benchDecl{name: d.args[0], line: d.line})
	}
	return scanouts, nil
}

// ParseBenchSeq parses a .bench file and additionally reports the
// number of DFFs that were scan-converted. The pseudo state inputs are
// the last nDFF entries of Inputs; the pseudo next-state outputs are
// the last nDFF entries of Outputs (in matching order), which is
// exactly the layout the seq package rebuilds sequential circuits from.
func ParseBenchSeq(name string, r io.Reader) (*Netlist, int, error) {
	bf, err := scanBench(name, r)
	if err != nil {
		return nil, 0, err
	}
	n := New(name)
	scanouts, err := addBenchInputs(n, name, bf)
	if err != nil {
		return nil, 0, err
	}

	// Multi-pass resolution of combinational definitions: a .bench file
	// may reference gates defined later.
	pending := make([]benchDef, 0, len(bf.defs))
	for _, d := range bf.defs {
		if d.op != "DFF" {
			pending = append(pending, d)
		}
	}
	for len(pending) > 0 {
		progress := false
		var next []benchDef
		for _, d := range pending {
			ids := make([]int, 0, len(d.args))
			ok := true
			for _, a := range d.args {
				id, exists := n.GateID(a)
				if !exists {
					ok = false
					break
				}
				ids = append(ids, id)
			}
			if !ok {
				next = append(next, d)
				continue
			}
			t, err := parseGateType(d.op)
			if err != nil {
				return nil, 0, fmt.Errorf("bench %s line %d: gate %q: %v", name, d.line, d.out, err)
			}
			if !t.ArityOK(len(ids)) {
				return nil, 0, fmt.Errorf("bench %s line %d: gate %q: %s cannot take %d argument(s)", name, d.line, d.out, t, len(ids))
			}
			if _, dup := n.GateID(d.out); dup {
				return nil, 0, fmt.Errorf("bench %s line %d: duplicate definition of %q", name, d.line, d.out)
			}
			n.AddGate(d.out, t, ids...)
			progress = true
		}
		if !progress {
			return nil, 0, fmt.Errorf("bench %s line %d: gate %q: unresolvable references (cycle or missing gate)",
				name, next[0].line, next[0].out)
		}
		pending = next
	}

	for _, o := range bf.outputs {
		id, ok := n.GateID(o.name)
		if !ok {
			return nil, 0, fmt.Errorf("bench %s line %d: OUTPUT(%s) is never defined", name, o.line, o.name)
		}
		n.MarkOutput(id)
	}
	for _, so := range scanouts {
		id, ok := n.GateID(so.name)
		if !ok {
			return nil, 0, fmt.Errorf("bench %s line %d: DFF data pin %q is never defined", name, so.line, so.name)
		}
		n.MarkOutput(id)
	}
	if err := n.Validate(); err != nil {
		return nil, 0, err
	}
	return n, len(scanouts), nil
}

// ParseBenchLax parses a .bench file without requiring structural
// soundness: combinational cycles, references to nets no line defines,
// and undefined OUTPUT declarations are admitted rather than rejected,
// so that static analysis (the netlint package) can inspect malformed
// netlists and name the defect precisely. Each undefined net is
// materialized as a dangling Input-type gate that is NOT registered in
// the primary input list — exactly the shape netlint's undriven
// analyzer flags. Syntax errors, unknown gate types, arity violations
// and duplicate definitions are still reported, with line numbers.
// The DFF scan conversion matches ParseBenchSeq.
func ParseBenchLax(name string, r io.Reader) (*Netlist, int, error) {
	bf, err := scanBench(name, r)
	if err != nil {
		return nil, 0, err
	}
	n := New(name)
	scanouts, err := addBenchInputs(n, name, bf)
	if err != nil {
		return nil, 0, err
	}

	// Predeclare every combinational definition's output so forward
	// references — including cyclic ones — resolve to the right gate.
	var comb []benchDef
	for _, d := range bf.defs {
		if d.op == "DFF" {
			continue
		}
		t, err := parseGateType(d.op)
		if err != nil {
			return nil, 0, fmt.Errorf("bench %s line %d: gate %q: %v", name, d.line, d.out, err)
		}
		if !t.ArityOK(len(d.args)) {
			return nil, 0, fmt.Errorf("bench %s line %d: gate %q: %s cannot take %d argument(s)", name, d.line, d.out, t, len(d.args))
		}
		if _, dup := n.GateID(d.out); dup {
			return nil, 0, fmt.Errorf("bench %s line %d: duplicate definition of %q", name, d.line, d.out)
		}
		n.addGate(d.out, t, nil)
		comb = append(comb, d)
	}
	// dangling resolves a net name, materializing undefined nets as
	// Input-type gates outside the primary input list.
	dangling := func(net string) int {
		if id, ok := n.GateID(net); ok {
			return id
		}
		return n.addGate(net, Input, nil)
	}
	for _, d := range comb {
		ids := make([]int, len(d.args))
		for i, a := range d.args {
			ids[i] = dangling(a)
		}
		n.Gates[n.MustGateID(d.out)].Fanin = ids
	}
	for _, o := range bf.outputs {
		n.MarkOutput(dangling(o.name))
	}
	for _, so := range scanouts {
		n.MarkOutput(dangling(so.name))
	}
	return n, len(scanouts), nil
}

func parenArg(line string) (string, error) {
	lp := strings.Index(line, "(")
	rp := strings.LastIndex(line, ")")
	if lp < 0 || rp < lp {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[lp+1 : rp])
	if arg == "" {
		return "", fmt.Errorf("empty declaration %q", line)
	}
	return arg, nil
}

func parseGateType(op string) (GateType, error) {
	switch op {
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	case "NOT", "INV":
		return Not, nil
	case "BUF", "BUFF":
		return Buf, nil
	case "MUX":
		return Mux, nil
	case "CONST0", "GND":
		return Const0, nil
	case "CONST1", "VDD":
		return Const1, nil
	}
	return 0, fmt.Errorf("unknown gate type %q", op)
}

// WriteBench emits the netlist in .bench format. Gates are written in
// topological order so the file parses in one pass with standard tools.
func (n *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n",
		len(n.Inputs), len(n.Outputs), n.NumLogicGates())
	for _, id := range n.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.Gates[id].Name)
	}
	for _, id := range n.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Gates[id].Name)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		g := &n.Gates[id]
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, benchOpName(g.Type), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func benchOpName(t GateType) string {
	switch t {
	case Not:
		return "NOT"
	case Buf:
		return "BUFF"
	default:
		return t.String()
	}
}

// Stats summarizes a netlist for reporting.
type Stats struct {
	Name      string
	Inputs    int
	Outputs   int
	Gates     int // logic gates, excluding inputs/constants
	Depth     int
	TypeCount map[GateType]int
}

// ComputeStats gathers counts and depth.
func (n *Netlist) ComputeStats() (Stats, error) {
	_, depth, err := n.Levels()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Name:      n.Name,
		Inputs:    len(n.Inputs),
		Outputs:   len(n.Outputs),
		Gates:     n.NumLogicGates(),
		Depth:     depth,
		TypeCount: map[GateType]int{},
	}
	for i := range n.Gates {
		s.TypeCount[n.Gates[i].Type]++
	}
	return s, nil
}

// String renders the stats compactly with gate types sorted by name.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d in, %d out, %d gates, depth %d",
		s.Name, s.Inputs, s.Outputs, s.Gates, s.Depth)
	type kv struct {
		t GateType
		c int
	}
	var kvs []kv
	for t, c := range s.TypeCount {
		if t == Input {
			continue
		}
		kvs = append(kvs, kv{t, c})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].t < kvs[j].t })
	for _, e := range kvs {
		fmt.Fprintf(&sb, " %s=%d", e.t, e.c)
	}
	return sb.String()
}
