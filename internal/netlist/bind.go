package netlist

import "fmt"

// BindInputs returns a copy of the netlist with the primary inputs at
// the given positions replaced by constants. The bound inputs are
// removed from the input list (remaining inputs keep their relative
// order), so the result takes a shorter input vector. Obfuscation code
// uses this to specialize a locked netlist to a concrete key.
func (n *Netlist) BindInputs(positions []int, values []bool) (*Netlist, error) {
	if len(positions) != len(values) {
		return nil, fmt.Errorf("netlist: BindInputs got %d positions, %d values", len(positions), len(values))
	}
	c := n.Clone()
	bound := make(map[int]bool, len(positions))
	for i, pos := range positions {
		if pos < 0 || pos >= len(c.Inputs) {
			return nil, fmt.Errorf("netlist: BindInputs position %d out of range", pos)
		}
		if bound[pos] {
			return nil, fmt.Errorf("netlist: BindInputs duplicate position %d", pos)
		}
		bound[pos] = true
		id := c.Inputs[pos]
		t := Const0
		if values[i] {
			t = Const1
		}
		constID := c.addGate(c.FreshName(c.Gates[id].Name+"_bound"), t, nil)
		c.RedirectFanout(id, constID)
	}
	kept := c.Inputs[:0]
	for pos, id := range c.Inputs {
		if !bound[pos] {
			kept = append(kept, id)
		}
	}
	c.Inputs = kept
	c.Prune()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
