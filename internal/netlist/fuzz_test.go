package netlist_test

// Native Go fuzz targets for the three netlist text formats. The
// external test package lets the strict/lax agreement properties lean
// on netlint (which imports netlist) without an import cycle.
//
// Properties checked:
//
//   - No parser ever panics, whatever the input.
//   - Strict accept => parse -> WriteBench -> reparse is stable: the
//     reparse succeeds, preserves I/O and gate counts, re-serializes
//     byte-identically, and (for small circuits) is logically
//     equivalent to the first parse.
//   - Strict and lax agree on acceptance up to lint: if strict accepts
//     then lax accepts with the same shape; if strict rejects after
//     tokenization but lax accepts, the lax netlist must carry at
//     least one comb-cycle or undriven-net diagnostic (that is the
//     only semantic gap between the two parsers); and a lax-accepted,
//     lint-clean netlist must be strict-parseable.
//   - ParseVerilog round-trips with WriteVerilog up to output-port
//     renaming: same I/O counts and logical function.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netlint"
	"repro/internal/netlist"
	"repro/internal/testutil"
)

// benchSeeds are shared seed inputs for both .bench fuzz targets,
// maintained in internal/testutil alongside the other shared test
// generators.
var benchSeeds = testutil.BenchSeeds()

func FuzzParseBench(f *testing.F) {
	for _, s := range benchSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, strictErr := netlist.ParseBench("fuzz", strings.NewReader(src))
		lax, _, laxErr := netlist.ParseBenchLax("fuzz", strings.NewReader(src))

		if strictErr != nil {
			if laxErr != nil {
				return // both reject: agreement
			}
			// Strict rejected, lax accepted: the gap must be visible to
			// lint as a cycle or an undriven net.
			diags, err := netlint.Check(lax, netlint.Options{}, netlint.CombCycle, netlint.Undriven)
			if err != nil {
				t.Fatalf("netlint on lax netlist: %v\ninput:\n%s", err, src)
			}
			if len(diags) == 0 {
				t.Fatalf("strict rejected (%v) but lax netlist is lint-clean\ninput:\n%s", strictErr, src)
			}
			return
		}

		// Strict accepted: lax must accept the same shape.
		if laxErr != nil {
			t.Fatalf("strict accepted but lax rejected: %v\ninput:\n%s", laxErr, src)
		}
		if len(lax.Inputs) != len(nl.Inputs) || len(lax.Outputs) != len(nl.Outputs) ||
			lax.NumLogicGates() != nl.NumLogicGates() {
			t.Fatalf("strict/lax shape mismatch: strict %d/%d/%d lax %d/%d/%d\ninput:\n%s",
				len(nl.Inputs), len(nl.Outputs), nl.NumLogicGates(),
				len(lax.Inputs), len(lax.Outputs), lax.NumLogicGates(), src)
		}

		// Round trip: write, reparse, write again.
		var b1 bytes.Buffer
		if err := nl.WriteBench(&b1); err != nil {
			t.Fatalf("WriteBench after strict accept: %v\ninput:\n%s", err, src)
		}
		nl2, err := netlist.ParseBench("fuzz", bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\nwrote:\n%s\ninput:\n%s", err, b1.String(), src)
		}
		if len(nl2.Inputs) != len(nl.Inputs) || len(nl2.Outputs) != len(nl.Outputs) ||
			nl2.NumLogicGates() != nl.NumLogicGates() {
			t.Fatalf("round-trip changed shape: %d/%d/%d -> %d/%d/%d\ninput:\n%s",
				len(nl.Inputs), len(nl.Outputs), nl.NumLogicGates(),
				len(nl2.Inputs), len(nl2.Outputs), nl2.NumLogicGates(), src)
		}
		var b2 bytes.Buffer
		if err := nl2.WriteBench(&b2); err != nil {
			t.Fatalf("second WriteBench: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("write -> parse -> write not stable:\nfirst:\n%s\nsecond:\n%s", b1.String(), b2.String())
		}
		if len(nl.Inputs) <= 10 && len(nl.Gates) <= 512 && len(nl.Outputs) > 0 {
			eq, cex, err := netlist.Equivalent(nl, nl2, 10, 0, 1)
			if err != nil {
				t.Fatalf("equivalence check: %v", err)
			}
			if !eq {
				t.Fatalf("round trip is not equivalent, counterexample %v\ninput:\n%s", cex, src)
			}
		}
	})
}

func FuzzParseBenchLax(f *testing.F) {
	for _, s := range benchSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lax, nDFF, err := netlist.ParseBenchLax("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		if nDFF < 0 {
			t.Fatalf("negative DFF count %d", nDFF)
		}
		// The lax netlist may be cyclic or undriven, but lint must be
		// able to walk it without an internal error.
		diags, lintErr := netlint.Check(lax, netlint.Options{}, netlint.CombCycle, netlint.Undriven)
		if lintErr != nil {
			t.Fatalf("netlint driver error on lax netlist: %v\ninput:\n%s", lintErr, src)
		}
		// Lint-clean lax netlists are exactly the strict-parseable ones.
		if len(diags) == 0 {
			if _, strictErr := netlist.ParseBench("fuzz", strings.NewReader(src)); strictErr != nil {
				t.Fatalf("lax netlist is lint-clean but strict rejects: %v\ninput:\n%s", strictErr, src)
			}
			var buf bytes.Buffer
			if err := lax.WriteBench(&buf); err != nil {
				t.Fatalf("WriteBench on lint-clean lax netlist: %v\ninput:\n%s", err, src)
			}
		}
	})
}

func FuzzParseVerilog(f *testing.F) {
	seeds := []string{
		"module m(a, b, y);\n  input wire a;\n  input wire b;\n  output wire y;\n  and(y, a, b);\nendmodule\n",
		"module m(a, y);\n  input wire a;\n  output wire y;\n  wire t;\n  not(t, a);\n  assign y = t;\nendmodule\n",
		"module m(s, a, b, y);\n  input wire s;\n  input wire a;\n  input wire b;\n  output wire y;\n  assign y = s ? b : a;\nendmodule\n",
		"module m(y);\n  output wire y;\n  assign y = 1'b1;\nendmodule\n",
		"module m(\n  a,\n  y\n);\n  input wire a;\n  output wire y;\n  buf(y, a);\nendmodule\n",
		"module m(a, y); input wire a; output wire y; xor(y, a, ghost); endmodule\n", // undriven
		"module m(); endmodule\n",
		"not a module\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := netlist.ParseVerilog("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := nl.WriteVerilog(&b1); err != nil {
			t.Fatalf("WriteVerilog after accept: %v\ninput:\n%s", err, src)
		}
		nl2, err := netlist.ParseVerilog("fuzz2", bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own Verilog failed: %v\nwrote:\n%s\ninput:\n%s", err, b1.String(), src)
		}
		if len(nl2.Inputs) != len(nl.Inputs) || len(nl2.Outputs) != len(nl.Outputs) {
			t.Fatalf("Verilog round-trip changed I/O: %d/%d -> %d/%d\ninput:\n%s",
				len(nl.Inputs), len(nl.Outputs), len(nl2.Inputs), len(nl2.Outputs), src)
		}
		if len(nl.Inputs) <= 10 && len(nl.Gates) <= 512 && len(nl.Outputs) > 0 {
			eq, cex, err := netlist.Equivalent(nl, nl2, 10, 0, 1)
			if err != nil {
				t.Fatalf("equivalence check: %v", err)
			}
			if !eq {
				t.Fatalf("Verilog round trip is not equivalent, counterexample %v\ninput:\n%s", cex, src)
			}
		}
	})
}
