package netlist

import (
	"strings"
	"testing"
)

// The strict parser must name the offending line and gate in every
// error path.
func TestParseBenchErrorContext(t *testing.T) {
	cases := []struct {
		src  string
		want []string // substrings the error must contain
	}{
		{"INPUT(a)\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)", []string{"line 2", "INPUT(a)"}},
		{"INPUT(a)\ny = NOT(a)\ny = NOT(a)\nOUTPUT(y)", []string{"line 3", `"y"`}},
		{"INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)", []string{"line 3", `"y"`, "argument"}},
		{"INPUT(a)\ny = FROB(a)\nOUTPUT(y)", []string{"line 2", `"y"`, "FROB"}},
		{"INPUT(a)\nOUTPUT(y)\nz = NOT(a)", []string{"line 2", "OUTPUT(y)"}},
		{"INPUT(a)\nq = DFF(d)\nOUTPUT(q)", []string{"line 2", `"d"`}},
		{"INPUT(a)\nq = DFF(d, e)\nOUTPUT(q)", []string{"line 2", `"q"`, "1 argument"}},
		{"INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)", []string{"line 2", `"y"`}},
	}
	for _, tc := range cases {
		_, err := ParseBench("bad", strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("ParseBench accepted %q", tc.src)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParseBench(%q) error %q missing %q", tc.src, err, want)
			}
		}
	}
}

func TestParseBenchLaxCycle(t *testing.T) {
	src := `INPUT(x)
OUTPUT(y)
y = AND(a, x)
a = OR(y, x)
`
	n, nDFF, err := ParseBenchLax("cyclic", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBenchLax: %v", err)
	}
	if nDFF != 0 {
		t.Fatalf("nDFF = %d, want 0", nDFF)
	}
	if _, err := n.TopoOrder(); err == nil {
		t.Fatal("expected the parsed netlist to contain a cycle")
	}
	// The strict parser must reject the same source.
	if _, _, err := ParseBenchSeq("cyclic", strings.NewReader(src)); err == nil {
		t.Fatal("strict parser accepted a cyclic netlist")
	}
}

func TestParseBenchLaxUndriven(t *testing.T) {
	src := `INPUT(a)
OUTPUT(y)
y = AND(a, ghost)
`
	n, _, err := ParseBenchLax("floating", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBenchLax: %v", err)
	}
	id, ok := n.GateID("ghost")
	if !ok {
		t.Fatal("dangling net not materialized")
	}
	if n.Gates[id].Type != Input {
		t.Fatalf("dangling net type = %s, want Input", n.Gates[id].Type)
	}
	for _, in := range n.Inputs {
		if in == id {
			t.Fatal("dangling net must not join the primary input list")
		}
	}
}

func TestParseBenchLaxUndefinedOutput(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\nz = NOT(a)\n"
	n, _, err := ParseBenchLax("undefout", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBenchLax: %v", err)
	}
	if len(n.Outputs) != 1 || n.Gates[n.Outputs[0]].Name != "y" {
		t.Fatalf("undefined OUTPUT not materialized: %v", n.OutputNames())
	}
}

// On well-formed sources the lax parser must agree with the strict one.
func TestParseBenchLaxMatchesStrict(t *testing.T) {
	src := `INPUT(a)
INPUT(b)
OUTPUT(s)
OUTPUT(q)
s = XOR(a, fwd)
fwd = AND(a, b)
q = DFF(s)
`
	strict, nStrict, err := ParseBenchSeq("agree", strings.NewReader(src))
	if err != nil {
		t.Fatalf("strict: %v", err)
	}
	lax, nLax, err := ParseBenchLax("agree", strings.NewReader(src))
	if err != nil {
		t.Fatalf("lax: %v", err)
	}
	if nStrict != nLax {
		t.Fatalf("nDFF: strict %d, lax %d", nStrict, nLax)
	}
	if err := lax.Validate(); err != nil {
		t.Fatalf("lax result invalid on sound input: %v", err)
	}
	eq, cex, err := Equivalent(strict, lax, 8, 4, 1)
	if err != nil {
		t.Fatalf("Equivalent: %v", err)
	}
	if !eq {
		t.Fatalf("lax parse differs from strict parse (cex %v)", cex)
	}
}
