// Package netlist implements a gate-level combinational netlist: the
// common representation shared by the benchmark synthesizers, the
// obfuscation transforms, the CNF encoder and the oracle simulator.
//
// A Netlist is a DAG of named gates. Primary inputs are gates of type
// Input with no fanin; any gate may additionally be designated a
// primary output. Sequential benchmarks are handled by scan conversion
// (DFF outputs become pseudo primary inputs, DFF data pins become
// pseudo primary outputs), matching the full-scan threat model used by
// the SAT-attack literature.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates the supported gate functions.
type GateType uint8

// Gate types. N-ary gates (And..Xnor) accept two or more fanins; Not
// and Buf take exactly one; Mux takes exactly three (select, a, b) and
// outputs a when select=0, b when select=1. Input gates take none.
const (
	Input GateType = iota
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Not
	Buf
	Mux
	Const0
	Const1
	numGateTypes
)

var gateNames = [...]string{
	Input: "INPUT", And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buf: "BUF", Mux: "MUX",
	Const0: "CONST0", Const1: "CONST1",
}

func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ArityOK reports whether n fanins is legal for the gate type.
func (t GateType) ArityOK(n int) bool {
	switch t {
	case Input, Const0, Const1:
		return n == 0
	case Not, Buf:
		return n == 1
	case Mux:
		return n == 3
	default:
		return n >= 2
	}
}

// Gate is one node of the netlist DAG.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int // gate IDs, ordered (order matters for Mux)
}

// Netlist is a named combinational circuit.
type Netlist struct {
	Name    string
	Gates   []Gate
	Inputs  []int // gate IDs of primary inputs, in declaration order
	Outputs []int // gate IDs of primary outputs, in declaration order

	byName map[string]int
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]int)}
}

// NumGates returns the total number of gates including inputs.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumLogicGates returns the number of gates excluding primary inputs
// and constants.
func (n *Netlist) NumLogicGates() int {
	c := 0
	for i := range n.Gates {
		switch n.Gates[i].Type {
		case Input, Const0, Const1:
		default:
			c++
		}
	}
	return c
}

// GateID returns the ID of the named gate and whether it exists.
func (n *Netlist) GateID(name string) (int, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// MustGateID returns the ID of the named gate, panicking if absent.
func (n *Netlist) MustGateID(name string) int {
	id, ok := n.byName[name]
	if !ok {
		panic(fmt.Sprintf("netlist %q: no gate named %q", n.Name, name))
	}
	return id
}

// AddInput declares a new primary input and returns its gate ID.
func (n *Netlist) AddInput(name string) int {
	id := n.addGate(name, Input, nil)
	n.Inputs = append(n.Inputs, id)
	return id
}

// AddGate adds a logic gate and returns its ID. The fanin IDs must
// already exist; arity is validated.
func (n *Netlist) AddGate(name string, t GateType, fanin ...int) int {
	if !t.ArityOK(len(fanin)) {
		panic(fmt.Sprintf("netlist %q: gate %q type %s cannot take %d fanins",
			n.Name, name, t, len(fanin)))
	}
	for _, f := range fanin {
		if f < 0 || f >= len(n.Gates) {
			panic(fmt.Sprintf("netlist %q: gate %q references unknown fanin %d", n.Name, name, f))
		}
	}
	return n.addGate(name, t, fanin)
}

func (n *Netlist) addGate(name string, t GateType, fanin []int) int {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("netlist %q: duplicate gate name %q", n.Name, name))
	}
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{Name: name, Type: t, Fanin: fanin})
	n.byName[name] = id
	return id
}

// MarkOutput designates an existing gate as a primary output.
func (n *Netlist) MarkOutput(id int) {
	if id < 0 || id >= len(n.Gates) {
		panic(fmt.Sprintf("netlist %q: MarkOutput of unknown gate %d", n.Name, id))
	}
	n.Outputs = append(n.Outputs, id)
}

// FreshName returns a gate name with the given prefix that does not
// collide with any existing gate.
func (n *Netlist) FreshName(prefix string) string {
	//rilvet:ignore ctx-loop terminates within len(n.Gates)+1 probes — gate names are unique, so some counter value in that range is always free
	for i := len(n.Gates); ; i++ {
		name := fmt.Sprintf("%s_%d", prefix, i)
		if _, ok := n.byName[name]; !ok {
			return name
		}
	}
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:    n.Name,
		Gates:   make([]Gate, len(n.Gates)),
		Inputs:  append([]int(nil), n.Inputs...),
		Outputs: append([]int(nil), n.Outputs...),
		byName:  make(map[string]int, len(n.byName)),
	}
	for i, g := range n.Gates {
		c.Gates[i] = Gate{Name: g.Name, Type: g.Type, Fanin: append([]int(nil), g.Fanin...)}
		c.byName[g.Name] = i
	}
	return c
}

// RedirectFanout rewires every gate that reads from oldID to read from
// newID instead, and transfers primary-output markings. It is the core
// primitive of gate replacement during obfuscation. The old gate itself
// is left in place (possibly dangling); call Prune to drop dead logic.
func (n *Netlist) RedirectFanout(oldID, newID int) {
	for i := range n.Gates {
		if i == newID {
			continue // avoid creating a self-loop on the replacement
		}
		fin := n.Gates[i].Fanin
		for j, f := range fin {
			if f == oldID {
				fin[j] = newID
			}
		}
	}
	for i, o := range n.Outputs {
		if o == oldID {
			n.Outputs[i] = newID
		}
	}
}

// SetFanin replaces the fanin list of a gate (arity checked).
func (n *Netlist) SetFanin(id int, fanin ...int) {
	g := &n.Gates[id]
	if !g.Type.ArityOK(len(fanin)) {
		panic(fmt.Sprintf("netlist %q: gate %q type %s cannot take %d fanins",
			n.Name, g.Name, g.Type, len(fanin)))
	}
	g.Fanin = fanin
}

// Validate checks structural invariants: unique names, legal arities,
// existing fanin references, inputs truly of type Input, acyclicity.
func (n *Netlist) Validate() error {
	seen := make(map[string]int, len(n.Gates))
	for i, g := range n.Gates {
		if j, dup := seen[g.Name]; dup {
			return fmt.Errorf("netlist %q: gates %d and %d share name %q", n.Name, j, i, g.Name)
		}
		seen[g.Name] = i
		if !g.Type.ArityOK(len(g.Fanin)) {
			return fmt.Errorf("netlist %q: gate %q (%s) has illegal arity %d", n.Name, g.Name, g.Type, len(g.Fanin))
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(n.Gates) {
				return fmt.Errorf("netlist %q: gate %q references missing fanin %d", n.Name, g.Name, f)
			}
		}
	}
	for _, id := range n.Inputs {
		if id < 0 || id >= len(n.Gates) || n.Gates[id].Type != Input {
			return fmt.Errorf("netlist %q: input list entry %d is not an Input gate", n.Name, id)
		}
	}
	for _, id := range n.Outputs {
		if id < 0 || id >= len(n.Gates) {
			return fmt.Errorf("netlist %q: output list references missing gate %d", n.Name, id)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Prune removes gates that cannot reach any primary output, compacting
// IDs. Primary inputs are always retained (their positions define the
// input vector layout). It returns the number of gates removed.
func (n *Netlist) Prune() int {
	live := make([]bool, len(n.Gates))
	stack := append([]int(nil), n.Outputs...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live[id] {
			continue
		}
		live[id] = true
		stack = append(stack, n.Gates[id].Fanin...)
	}
	for _, id := range n.Inputs {
		live[id] = true
	}
	remap := make([]int, len(n.Gates))
	var kept []Gate
	for i, g := range n.Gates {
		if live[i] {
			remap[i] = len(kept)
			kept = append(kept, g)
		} else {
			remap[i] = -1
		}
	}
	removed := len(n.Gates) - len(kept)
	if removed == 0 {
		return 0
	}
	n.Gates = kept
	n.byName = make(map[string]int, len(kept))
	for i := range n.Gates {
		g := &n.Gates[i]
		n.byName[g.Name] = i
		for j, f := range g.Fanin {
			g.Fanin[j] = remap[f]
		}
	}
	for i, id := range n.Inputs {
		n.Inputs[i] = remap[id]
	}
	for i, id := range n.Outputs {
		n.Outputs[i] = remap[id]
	}
	return removed
}

// InputNames returns the primary input names in order.
func (n *Netlist) InputNames() []string {
	names := make([]string, len(n.Inputs))
	for i, id := range n.Inputs {
		names[i] = n.Gates[id].Name
	}
	return names
}

// OutputNames returns the primary output names in order.
func (n *Netlist) OutputNames() []string {
	names := make([]string, len(n.Outputs))
	for i, id := range n.Outputs {
		names[i] = n.Gates[id].Name
	}
	return names
}

// InputIndex returns a map from input name to its position in the
// input vector.
func (n *Netlist) InputIndex() map[string]int {
	m := make(map[string]int, len(n.Inputs))
	for i, id := range n.Inputs {
		m[n.Gates[id].Name] = i
	}
	return m
}

// GateIDsByPrefix returns the sorted positions (within n.Inputs) of
// inputs whose names start with the prefix. Used to locate key inputs.
func (n *Netlist) GateIDsByPrefix(prefix string) []int {
	var idx []int
	for i, id := range n.Inputs {
		name := n.Gates[id].Name
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx
}
