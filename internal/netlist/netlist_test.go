package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// buildFullAdder returns a 1-bit full adder: sum = a^b^cin, cout = maj.
func buildFullAdder(t *testing.T) *Netlist {
	t.Helper()
	n := New("fulladder")
	a := n.AddInput("a")
	b := n.AddInput("b")
	cin := n.AddInput("cin")
	axb := n.AddGate("axb", Xor, a, b)
	sum := n.AddGate("sum", Xor, axb, cin)
	ab := n.AddGate("ab", And, a, b)
	cx := n.AddGate("cx", And, axb, cin)
	cout := n.AddGate("cout", Or, ab, cx)
	n.MarkOutput(sum)
	n.MarkOutput(cout)
	if err := n.Validate(); err != nil {
		t.Fatalf("full adder invalid: %v", err)
	}
	return n
}

func TestFullAdderSim(t *testing.T) {
	n := buildFullAdder(t)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		a, b, c := p&1 != 0, p&2 != 0, p&4 != 0
		out := sim.Eval([]bool{a, b, c})
		ones := 0
		for _, v := range []bool{a, b, c} {
			if v {
				ones++
			}
		}
		wantSum := ones%2 == 1
		wantCout := ones >= 2
		if out[0] != wantSum || out[1] != wantCout {
			t.Errorf("adder(%v,%v,%v) = %v, want sum=%v cout=%v", a, b, c, out, wantSum, wantCout)
		}
	}
}

func TestBitParallelMatchesScalar(t *testing.T) {
	n := buildFullAdder(t)
	sim, _ := NewSimulator(n)
	// All 8 patterns in one word.
	in := make([]uint64, 3)
	for p := 0; p < 8; p++ {
		for i := 0; i < 3; i++ {
			if p&(1<<i) != 0 {
				in[i] |= 1 << p
			}
		}
	}
	out := sim.Run(in)
	for p := 0; p < 8; p++ {
		a, b, c := p&1 != 0, p&2 != 0, p&4 != 0
		ones := 0
		for _, v := range []bool{a, b, c} {
			if v {
				ones++
			}
		}
		if got := out[0]&(1<<p) != 0; got != (ones%2 == 1) {
			t.Errorf("pattern %d sum mismatch", p)
		}
		if got := out[1]&(1<<p) != 0; got != (ones >= 2) {
			t.Errorf("pattern %d cout mismatch", p)
		}
	}
}

func TestMuxSemantics(t *testing.T) {
	n := New("mux")
	s := n.AddInput("s")
	a := n.AddInput("a")
	b := n.AddInput("b")
	m := n.AddGate("m", Mux, s, a, b)
	n.MarkOutput(m)
	sim, _ := NewSimulator(n)
	cases := []struct {
		s, a, b, want bool
	}{
		{false, true, false, true}, // s=0 selects a
		{false, false, true, false},
		{true, true, false, false}, // s=1 selects b
		{true, false, true, true},
	}
	for _, c := range cases {
		if got := sim.Eval([]bool{c.s, c.a, c.b})[0]; got != c.want {
			t.Errorf("mux(s=%v,a=%v,b=%v) = %v, want %v", c.s, c.a, c.b, got, c.want)
		}
	}
}

func TestConstGates(t *testing.T) {
	n := New("consts")
	n.AddInput("x")
	c0 := n.AddGate("c0", Const0)
	c1 := n.AddGate("c1", Const1)
	n.MarkOutput(c0)
	n.MarkOutput(c1)
	sim, _ := NewSimulator(n)
	out := sim.Eval([]bool{true})
	if out[0] || !out[1] {
		t.Errorf("const outputs = %v, want [false true]", out)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	n := New("cyclic")
	a := n.AddInput("a")
	g1 := n.AddGate("g1", And, a, a)
	_ = g1
	// Manually create a cycle g2 -> g3 -> g2.
	n.Gates = append(n.Gates, Gate{Name: "g2", Type: And, Fanin: []int{a, 3}})
	n.byName["g2"] = 2
	n.Gates = append(n.Gates, Gate{Name: "g3", Type: Not, Fanin: []int{2}})
	n.byName["g3"] = 3
	n.MarkOutput(3)
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted a cyclic netlist")
	}
}

func TestValidateRejectsBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddGate should panic on bad arity")
		}
	}()
	n := New("arity")
	a := n.AddInput("a")
	n.AddGate("bad", Mux, a, a) // MUX needs 3
}

func TestRedirectFanoutAndPrune(t *testing.T) {
	n := buildFullAdder(t)
	// Replace the "ab" AND gate by a NAND+NOT pair.
	ab := n.MustGateID("ab")
	a := n.MustGateID("a")
	b := n.MustGateID("b")
	nand := n.AddGate("ab_nand", Nand, a, b)
	inv := n.AddGate("ab_inv", Not, nand)
	n.RedirectFanout(ab, inv)
	removed := n.Prune()
	if removed != 1 {
		t.Errorf("Prune removed %d gates, want 1 (the dead AND)", removed)
	}
	if _, ok := n.GateID("ab"); ok {
		t.Error("dead gate survived pruning")
	}
	ref := buildFullAdder(t)
	eq, cex, err := Equivalent(n, ref, 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("rewritten adder inequivalent, cex=%v", cex)
	}
}

func TestLevelsAndCones(t *testing.T) {
	n := buildFullAdder(t)
	lv, depth, err := n.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if depth != 3 { // cout = OR(AND, AND(XOR,cin)) is three levels deep
		t.Errorf("full adder depth = %d, want 3", depth)
	}
	if lv[n.MustGateID("a")] != 0 || lv[n.MustGateID("sum")] != 2 {
		t.Error("level assignment wrong")
	}
	cone := n.TransitiveFanin(n.MustGateID("sum"))
	if !cone[n.MustGateID("a")] || !cone[n.MustGateID("cin")] {
		t.Error("sum cone should contain all inputs")
	}
	if cone[n.MustGateID("cout")] {
		t.Error("sum cone should not contain cout")
	}
	fo := n.TransitiveFanout(n.MustGateID("axb"))
	if !fo[n.MustGateID("sum")] || !fo[n.MustGateID("cout")] {
		t.Error("axb fans out to both outputs")
	}
	sizes := n.OutputConeSizes()
	if len(sizes) != 2 || sizes[0] < 4 {
		t.Errorf("cone sizes = %v", sizes)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	n := buildFullAdder(t)
	var buf bytes.Buffer
	if err := n.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench("fulladder", &buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	eq, cex, err := Equivalent(n, back, 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("bench round trip changed function, cex=%v", cex)
	}
}

func TestParseBenchForwardRefs(t *testing.T) {
	src := `
# forward reference: y uses g before g is defined
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NOT(g)
g = AND(a, b)
`
	n, err := ParseBench("fwd", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := NewSimulator(n)
	if got := sim.Eval([]bool{true, true})[0]; got {
		t.Error("NOT(AND(1,1)) should be 0")
	}
	if got := sim.Eval([]bool{true, false})[0]; !got {
		t.Error("NOT(AND(1,0)) should be 1")
	}
}

func TestParseBenchDFFScanConversion(t *testing.T) {
	src := `
INPUT(x)
OUTPUT(y)
q = DFF(d)
d = XOR(x, q)
y = AND(x, q)
`
	n, err := ParseBench("seq", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// q becomes a pseudo input; d becomes a pseudo output.
	if len(n.Inputs) != 2 {
		t.Errorf("scan conversion produced %d inputs, want 2", len(n.Inputs))
	}
	if len(n.Outputs) != 2 {
		t.Errorf("scan conversion produced %d outputs, want 2 (y + d)", len(n.Outputs))
	}
	sim, _ := NewSimulator(n)
	out := sim.Eval([]bool{true, true}) // x=1, q=1
	if out[0] != true {                 // y = AND(1,1)
		t.Error("y wrong after scan conversion")
	}
	if out[1] != false { // d = XOR(1,1)
		t.Error("d wrong after scan conversion")
	}
}

func TestParseBenchErrors(t *testing.T) {
	bad := []string{
		"INPUT()",
		"y = AND(a, b)", // a, b never declared
		"INPUT(a)\nOUTPUT(y)\n",
		"INPUT(a)\nnot an assignment",
		"INPUT(a)\nOUTPUT(y)\ny = FROB(a)",
	}
	for _, src := range bad {
		if _, err := ParseBench("bad", strings.NewReader(src)); err == nil {
			t.Errorf("ParseBench accepted %q", src)
		}
	}
}

func TestRandomGeneration(t *testing.T) {
	p := RandomProfile{Name: "rnd", Inputs: 16, Outputs: 8, Gates: 300, Locality: 0.8}
	n, err := Random(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("random netlist invalid: %v", err)
	}
	if len(n.Inputs) != 16 || len(n.Outputs) != 8 {
		t.Errorf("random netlist IO %d/%d, want 16/8", len(n.Inputs), len(n.Outputs))
	}
	// Determinism: same seed, same circuit.
	n2, _ := Random(p, 42)
	eq, _, err := Equivalent(n, n2, 0, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("random generation is not deterministic")
	}
	// Different seed should (overwhelmingly) differ.
	n3, _ := Random(p, 43)
	eq, _, _ = Equivalent(n, n3, 0, 8, 7)
	if eq {
		t.Error("different seeds produced identical circuits (suspicious)")
	}
}

func TestRandomEveryInputUsed(t *testing.T) {
	n, err := Random(RandomProfile{Name: "r", Inputs: 40, Outputs: 5, Gates: 120, Locality: 0.9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, len(n.Gates))
	for i := range n.Gates {
		for _, f := range n.Gates[i].Fanin {
			used[f] = true
		}
	}
	for _, id := range n.Inputs {
		if !used[id] {
			t.Errorf("input %s unused", n.Gates[id].Name)
		}
	}
}

func TestOutputCorruptibility(t *testing.T) {
	a := buildFullAdder(t)
	b := buildFullAdder(t)
	c, err := OutputCorruptibility(a, b, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("identical circuits corruptibility = %v, want 0", c)
	}
	// Invert one output of b.
	sum := b.MustGateID("sum")
	inv := b.AddGate("sum_inv", Not, sum)
	b.RedirectFanout(sum, inv)
	c, err = OutputCorruptibility(a, b, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.4 || c > 0.6 {
		t.Errorf("one-of-two outputs inverted: corruptibility = %v, want ~0.5", c)
	}
}

func TestStats(t *testing.T) {
	n := buildFullAdder(t)
	s, err := n.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Gates != 5 || s.Inputs != 3 || s.Outputs != 2 || s.Depth != 3 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "XOR=2") {
		t.Errorf("stats string %q missing XOR count", s.String())
	}
}

func TestFreshName(t *testing.T) {
	n := New("fresh")
	n.AddInput("k_0")
	name := n.FreshName("k")
	if name == "k_0" {
		t.Error("FreshName returned colliding name")
	}
	n.AddInput(name) // must not panic
}

func TestGateIDsByPrefix(t *testing.T) {
	n := New("pfx")
	n.AddInput("a")
	n.AddInput("keyinput0")
	n.AddInput("b")
	n.AddInput("keyinput1")
	got := n.GateIDsByPrefix("keyinput")
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("GateIDsByPrefix = %v, want [1 3]", got)
	}
}
