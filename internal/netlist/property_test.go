package netlist

import (
	"bytes"
	"math/rand"
	"testing"
)

// Property: Prune never changes the circuit function, over random
// circuits with injected dead logic.
func TestPropertyPrunePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nl, err := Random(RandomProfile{
			Name: "p", Inputs: 8 + rng.Intn(8), Outputs: 2 + rng.Intn(6),
			Gates: 50 + rng.Intn(200), Locality: rng.Float64() * 0.9,
		}, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		// Inject dead gates.
		a := nl.Inputs[rng.Intn(len(nl.Inputs))]
		d1 := nl.AddGate(nl.FreshName("dead"), Not, a)
		nl.AddGate(nl.FreshName("dead"), And, d1, a)
		before := nl.Clone()
		removed := nl.Prune()
		if removed < 2 {
			t.Fatalf("trial %d: dead logic survived (%d removed)", trial, removed)
		}
		eq, cex, err := Equivalent(before, nl, 10, 6, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: prune changed function, cex=%v", trial, cex)
		}
	}
}

// Property: .bench round trip is the identity on function, over random
// circuits of varied shape.
func TestPropertyBenchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		nl, err := Random(RandomProfile{
			Name: "rt", Inputs: 6 + rng.Intn(10), Outputs: 2 + rng.Intn(5),
			Gates: 40 + rng.Intn(150), Locality: rng.Float64(),
			MaxFanin: 2 + rng.Intn(3),
		}, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := nl.WriteBench(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ParseBench("rt", &buf)
		if err != nil {
			t.Fatal(err)
		}
		eq, cex, err := Equivalent(nl, back, 10, 6, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: round trip changed function, cex=%v", trial, cex)
		}
	}
}

// Property: Clone is deeply independent — mutating the clone never
// affects the original.
func TestPropertyCloneIndependence(t *testing.T) {
	nl, err := Random(RandomProfile{Name: "cl", Inputs: 8, Outputs: 4, Gates: 80, Locality: 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim1, _ := NewSimulator(nl)
	in := make([]bool, len(nl.Inputs))
	ref := append([]bool(nil), sim1.Eval(in)...)

	c := nl.Clone()
	// Vandalize the clone.
	for i := range c.Gates {
		if c.Gates[i].Type == And {
			c.Gates[i].Type = Or
		}
	}
	c.RedirectFanout(c.Outputs[0], c.Inputs[0])

	sim2, _ := NewSimulator(nl)
	got := sim2.Eval(in)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatal("mutating the clone changed the original")
		}
	}
}

// Property: BindInputs with an empty position list is a functional
// identity.
func TestPropertyBindNothing(t *testing.T) {
	nl, err := Random(RandomProfile{Name: "b", Inputs: 8, Outputs: 4, Gates: 60, Locality: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nl.BindInputs(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := Equivalent(nl, b, 10, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("BindInputs(nil) changed function")
	}
}

// Property: binding inputs to constants agrees with simulation under
// those constants.
func TestPropertyBindMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	nl, err := Random(RandomProfile{Name: "bm", Inputs: 10, Outputs: 5, Gates: 120, Locality: 0.6}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		// Bind a random subset of inputs.
		var positions []int
		var values []bool
		for p := range nl.Inputs {
			if rng.Intn(2) == 0 {
				positions = append(positions, p)
				values = append(values, rng.Intn(2) == 1)
			}
		}
		bound, err := nl.BindInputs(positions, values)
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate both on a random assignment of the free inputs.
		full := make([]bool, len(nl.Inputs))
		for i := range full {
			full[i] = rng.Intn(2) == 1
		}
		for i, p := range positions {
			full[p] = values[i]
		}
		var free []bool
		isBound := map[int]bool{}
		for _, p := range positions {
			isBound[p] = true
		}
		for p, v := range full {
			if !isBound[p] {
				free = append(free, v)
			}
		}
		s1, _ := NewSimulator(nl)
		s2, _ := NewSimulator(bound)
		want := s1.Eval(full)
		got := s2.Eval(free)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: bound simulation differs at output %d", trial, i)
			}
		}
	}
}
