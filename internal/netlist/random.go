package netlist

import (
	"fmt"
	"math/rand"
)

// RandomProfile parameterizes synthetic circuit generation. The
// benchmark package layers ISCAS-profile presets on top of this.
type RandomProfile struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int // logic gate count target (achieved within a few %)
	// Mix gives relative weights of generated gate types. A zero Mix
	// defaults to an ISCAS-like blend dominated by NAND/NOR.
	Mix map[GateType]float64
	// MaxFanin bounds n-ary gate fanin (default 2; ISCAS circuits use
	// mostly 2-input gates with occasional wide gates).
	MaxFanin int
	// Locality biases non-frontier fanin selection toward recently
	// created gates, producing deep, narrow circuits like real designs
	// rather than shallow random DAGs. 0 disables the bias.
	Locality float64
}

func defaultMix() map[GateType]float64 {
	return map[GateType]float64{
		Nand: 0.30, Nor: 0.15, And: 0.18, Or: 0.12,
		Not: 0.12, Xor: 0.07, Xnor: 0.03, Buf: 0.03,
	}
}

// Random generates a pseudo-random combinational netlist matching the
// profile, deterministically from the seed.
//
// The generator maintains a frontier of gates that do not yet drive
// anything. While the frontier exceeds the output count, new gates
// preferentially consume frontier gates; leftover frontier gates are
// merged pairwise at the end. Because only frontier gates lack fanout
// and every frontier gate becomes (or feeds) a primary output, every
// generated gate is live — the circuit needs no pruning and matches
// the requested size.
func Random(p RandomProfile, seed int64) (*Netlist, error) {
	if p.Inputs < 1 || p.Outputs < 1 || p.Gates < 2 {
		return nil, fmt.Errorf("netlist: invalid random profile %+v", p)
	}
	mix := p.Mix
	if len(mix) == 0 {
		mix = defaultMix()
	}
	maxFanin := p.MaxFanin
	if maxFanin < 2 {
		maxFanin = 2
	}
	rng := rand.New(rand.NewSource(seed))

	types := make([]GateType, 0, len(mix))
	weights := make([]float64, 0, len(mix))
	total := 0.0
	for _, t := range []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf} {
		if w := mix[t]; w > 0 {
			types = append(types, t)
			weights = append(weights, w)
			total += w
		}
	}
	pickType := func() GateType {
		x := rng.Float64() * total
		for i, w := range weights {
			if x < w {
				return types[i]
			}
			x -= w
		}
		return types[len(types)-1]
	}

	n := New(p.Name)
	frontier := make([]int, 0, p.Inputs+p.Outputs)
	inFrontier := make(map[int]bool)
	push := func(id int) {
		frontier = append(frontier, id)
		inFrontier[id] = true
	}
	popRandom := func() int {
		i := rng.Intn(len(frontier))
		id := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		delete(inFrontier, id)
		return id
	}

	for i := 0; i < p.Inputs; i++ {
		push(n.AddInput(fmt.Sprintf("pi%d", i)))
	}

	pickAny := func(hi int) int {
		if p.Locality > 0 && rng.Float64() < p.Locality {
			window := hi / 4
			if window < p.Inputs {
				window = p.Inputs
			}
			if window > hi {
				window = hi
			}
			return hi - 1 - rng.Intn(window)
		}
		return rng.Intn(hi)
	}

	// Reserve budget for the final pairwise merge of surplus frontier.
	target := p.Gates
	for g := 0; g < target; g++ {
		surplus := len(frontier) - p.Outputs
		if remaining := target - g; surplus >= remaining {
			break // leave the rest of the budget to the merge phase
		}
		t := pickType()
		arity := 1
		switch t {
		case Not, Buf:
			arity = 1
		default:
			arity = 2
			if maxFanin > 2 && rng.Float64() < 0.08 {
				arity = 2 + rng.Intn(maxFanin-1)
			}
		}
		if arity > len(n.Gates) {
			arity = len(n.Gates)
		}
		if arity < 2 && t != Not && t != Buf {
			t = Buf
			arity = 1
		}
		contains := func(s []int, x int) bool {
			for _, e := range s {
				if e == x {
					return true
				}
			}
			return false
		}
		removeFromFrontier := func(f int) {
			for i, id := range frontier {
				if id == f {
					frontier[i] = frontier[len(frontier)-1]
					frontier = frontier[:len(frontier)-1]
					delete(inFrontier, f)
					return
				}
			}
		}
		fanin := make([]int, 0, arity)
		for len(fanin) < arity {
			var f int
			fromFrontier := false
			if len(frontier) > p.Outputs && (len(fanin) == 0 || rng.Float64() < 0.4) {
				f = popRandom()
				fromFrontier = true
			} else {
				f = pickAny(len(n.Gates))
			}
			if contains(fanin, f) {
				if fromFrontier {
					push(f) // keep it alive; it was not consumed
				}
				ok := false
				for try := 0; try < 8; try++ {
					f = rng.Intn(len(n.Gates))
					if !contains(fanin, f) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			if inFrontier[f] {
				removeFromFrontier(f)
			}
			fanin = append(fanin, f)
		}
		id := n.AddGate(fmt.Sprintf("g%d", len(n.Gates)-p.Inputs), t, fanin...)
		push(id)
	}

	// Merge surplus frontier gates pairwise until it fits the output
	// count; each merge is a live 2-input gate.
	for len(frontier) > p.Outputs {
		a := popRandom()
		b := popRandom()
		if a == b {
			push(a)
			continue
		}
		t := pickType()
		if t == Not || t == Buf {
			t = Xor
		}
		id := n.AddGate(fmt.Sprintf("g%d", len(n.Gates)-p.Inputs), t, a, b)
		push(id)
	}

	// Frontier gates become primary outputs; top up with the deepest
	// gates if the frontier came up short.
	chosen := make(map[int]bool, p.Outputs)
	for _, id := range frontier {
		chosen[id] = true
	}
	for id := len(n.Gates) - 1; id >= 0 && len(chosen) < p.Outputs; id-- {
		if !chosen[id] {
			chosen[id] = true
		}
	}
	for id := range n.Gates {
		if chosen[id] {
			n.MarkOutput(id)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
