package netlist

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Simulator evaluates a netlist bit-parallel: each signal is a uint64
// carrying 64 independent input patterns. Building a Simulator caches
// the topological order, so repeated evaluation is cheap.
type Simulator struct {
	n     *Netlist
	order []int
	vals  []uint64
	out   []uint64 // Run's reusable output buffer
	evIn  []uint64 // Eval's reusable input-word scratch
}

// NewSimulator prepares a simulator for the netlist. It returns an
// error if the netlist is cyclic.
func NewSimulator(n *Netlist) (*Simulator, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Simulator{
		n: n, order: order,
		vals: make([]uint64, len(n.Gates)),
		out:  make([]uint64, len(n.Outputs)),
	}, nil
}

// Run evaluates 64 input patterns at once. in[i] carries the 64 values
// of primary input i; the result carries the 64 values of each primary
// output. The returned slice is reused across calls — copy it if you
// need to retain it.
func (s *Simulator) Run(in []uint64) []uint64 {
	if len(in) != len(s.n.Inputs) {
		panic(fmt.Sprintf("netlist %q: Run got %d input words, want %d",
			s.n.Name, len(in), len(s.n.Inputs)))
	}
	for i, id := range s.n.Inputs {
		s.vals[id] = in[i]
	}
	for _, id := range s.order {
		g := &s.n.Gates[id]
		switch g.Type {
		case Input:
			// already assigned
		case Const0:
			s.vals[id] = 0
		case Const1:
			s.vals[id] = ^uint64(0)
		case Not:
			s.vals[id] = ^s.vals[g.Fanin[0]]
		case Buf:
			s.vals[id] = s.vals[g.Fanin[0]]
		case And, Nand:
			v := s.vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v &= s.vals[f]
			}
			if g.Type == Nand {
				v = ^v
			}
			s.vals[id] = v
		case Or, Nor:
			v := s.vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v |= s.vals[f]
			}
			if g.Type == Nor {
				v = ^v
			}
			s.vals[id] = v
		case Xor, Xnor:
			v := s.vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v ^= s.vals[f]
			}
			if g.Type == Xnor {
				v = ^v
			}
			s.vals[id] = v
		case Mux:
			sel := s.vals[g.Fanin[0]]
			a := s.vals[g.Fanin[1]]
			b := s.vals[g.Fanin[2]]
			s.vals[id] = (a &^ sel) | (b & sel)
		default:
			panic(fmt.Sprintf("netlist %q: unsupported gate type %s", s.n.Name, g.Type))
		}
	}
	for i, id := range s.n.Outputs {
		s.out[i] = s.vals[id]
	}
	return s.out
}

// Value returns the last simulated word for the given gate ID.
func (s *Simulator) Value(id int) uint64 { return s.vals[id] }

// Eval evaluates a single Boolean input assignment. Unlike Run, the
// returned slice is freshly allocated: scalar callers (oracles,
// decoders) routinely retain it across evaluations.
func (s *Simulator) Eval(in []bool) []bool {
	if s.evIn == nil {
		s.evIn = make([]uint64, len(s.n.Inputs))
	}
	words := s.evIn
	for i, b := range in {
		words[i] = 0
		if b {
			words[i] = 1
		}
	}
	outw := s.Run(words)
	out := make([]bool, len(outw))
	for i, w := range outw {
		out[i] = w&1 != 0
	}
	return out
}

// Equivalent checks, by exhaustive simulation when the input count is
// at most maxExhaustive inputs and by nSamples random 64-pattern rounds
// otherwise, whether two netlists with identical input/output
// signatures compute the same function. It reports the first
// counterexample found, if any. This is a fast pre-filter; tests that
// need a proof use the SAT-based equivalence check in internal/attack.
func Equivalent(a, b *Netlist, maxExhaustive, nSamples int, seed int64) (bool, []bool, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false, nil, fmt.Errorf("netlist: signature mismatch %d/%d inputs, %d/%d outputs",
			len(a.Inputs), len(b.Inputs), len(a.Outputs), len(b.Outputs))
	}
	sa, err := NewSimulator(a)
	if err != nil {
		return false, nil, err
	}
	sb, err := NewSimulator(b)
	if err != nil {
		return false, nil, err
	}
	ni := len(a.Inputs)
	if ni <= maxExhaustive && ni < 30 {
		return exhaustiveEquiv(sa, sb, ni)
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, ni)
	for round := 0; round < nSamples; round++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		// sa and sb own separate output buffers, so both results stay
		// valid side by side without a defensive copy.
		oa := sa.Run(in)
		ob := sb.Run(in)
		for i := range oa {
			if d := oa[i] ^ ob[i]; d != 0 {
				bit := bits.TrailingZeros64(d)
				cex := make([]bool, ni)
				for j := range cex {
					cex[j] = in[j]&(1<<bit) != 0
				}
				return false, cex, nil
			}
		}
	}
	return true, nil, nil
}

func exhaustiveEquiv(sa, sb *Simulator, ni int) (bool, []bool, error) {
	total := 1 << ni
	in := make([]uint64, ni)
	for base := 0; base < total; base += 64 {
		for i := range in {
			var w uint64
			for bit := 0; bit < 64 && base+bit < total; bit++ {
				if (base+bit)&(1<<i) != 0 {
					w |= 1 << bit
				}
			}
			in[i] = w
		}
		valid := uint64(^uint64(0))
		if total-base < 64 {
			valid = (1 << uint(total-base)) - 1
		}
		oa := sa.Run(in)
		ob := sb.Run(in)
		for i := range oa {
			if d := (oa[i] ^ ob[i]) & valid; d != 0 {
				bit := bits.TrailingZeros64(d)
				pat := base + bit
				cex := make([]bool, ni)
				for j := range cex {
					cex[j] = pat&(1<<j) != 0
				}
				return false, cex, nil
			}
		}
	}
	return true, nil, nil
}

// OutputCorruptibility estimates, over nRounds 64-pattern random
// rounds, the fraction of (pattern, output) pairs on which the two
// netlists disagree. Logic-locking papers use this to quantify how
// wrong a circuit is under an incorrect key: one-point-function schemes
// score near zero, RIL-Blocks score high.
func OutputCorruptibility(a, b *Netlist, nRounds int, seed int64) (float64, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return 0, fmt.Errorf("netlist: signature mismatch")
	}
	sa, err := NewSimulator(a)
	if err != nil {
		return 0, err
	}
	sb, err := NewSimulator(b)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, len(a.Inputs))
	diff, total := 0, 0
	for r := 0; r < nRounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		oa := sa.Run(in)
		ob := sb.Run(in)
		for i := range oa {
			diff += bits.OnesCount64(oa[i] ^ ob[i])
			total += 64
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(diff) / float64(total), nil
}
