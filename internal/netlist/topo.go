package netlist

import "fmt"

// TopoOrder returns a topological ordering of gate IDs (every gate
// appears after all of its fanins) or an error if the netlist contains
// a combinational cycle.
func (n *Netlist) TopoOrder() ([]int, error) {
	const (
		white = 0 // unvisited
		grey  = 1 // on stack
		black = 2 // done
	)
	state := make([]uint8, len(n.Gates))
	order := make([]int, 0, len(n.Gates))

	// Iterative DFS to survive deep circuits.
	type frame struct {
		id   int
		next int
	}
	var stack []frame
	for root := range n.Gates {
		if state[root] != white {
			continue
		}
		stack = append(stack[:0], frame{id: root})
		state[root] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			fin := n.Gates[f.id].Fanin
			if f.next < len(fin) {
				child := fin[f.next]
				f.next++
				switch state[child] {
				case white:
					state[child] = grey
					stack = append(stack, frame{id: child})
				case grey:
					return nil, fmt.Errorf("netlist %q: combinational cycle through gate %q",
						n.Name, n.Gates[child].Name)
				}
				continue
			}
			state[f.id] = black
			order = append(order, f.id)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// Levels returns, for each gate, its logic level: inputs and constants
// are level 0; every other gate is 1 + max(level of fanins). The second
// return value is the circuit depth (maximum level).
func (n *Netlist) Levels() ([]int, int, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	lv := make([]int, len(n.Gates))
	depth := 0
	for _, id := range order {
		g := &n.Gates[id]
		if len(g.Fanin) == 0 {
			lv[id] = 0
			continue
		}
		m := 0
		for _, f := range g.Fanin {
			if lv[f] > m {
				m = lv[f]
			}
		}
		lv[id] = m + 1
		if lv[id] > depth {
			depth = lv[id]
		}
	}
	return lv, depth, nil
}

// FanoutLists returns, for each gate, the IDs of gates that read it.
func (n *Netlist) FanoutLists() [][]int {
	out := make([][]int, len(n.Gates))
	for i := range n.Gates {
		for _, f := range n.Gates[i].Fanin {
			out[f] = append(out[f], i)
		}
	}
	return out
}

// TransitiveFanin returns the set of gate IDs (as a boolean mask) in
// the transitive fanin cone of the given gates, including themselves.
func (n *Netlist) TransitiveFanin(roots ...int) []bool {
	mask := make([]bool, len(n.Gates))
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mask[id] {
			continue
		}
		mask[id] = true
		stack = append(stack, n.Gates[id].Fanin...)
	}
	return mask
}

// TransitiveFanout returns the set of gate IDs (as a boolean mask) in
// the transitive fanout cone of the given gates, including themselves.
func (n *Netlist) TransitiveFanout(roots ...int) []bool {
	fan := n.FanoutLists()
	mask := make([]bool, len(n.Gates))
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mask[id] {
			continue
		}
		mask[id] = true
		stack = append(stack, fan[id]...)
	}
	return mask
}

// OutputConeSizes returns, for each primary output, the number of
// gates in its transitive fanin cone. Obfuscation insertion policies
// use this to prefer or avoid large logic cones.
func (n *Netlist) OutputConeSizes() []int {
	sizes := make([]int, len(n.Outputs))
	for i, o := range n.Outputs {
		mask := n.TransitiveFanin(o)
		c := 0
		for _, b := range mask {
			if b {
				c++
			}
		}
		sizes[i] = c
	}
	return sizes
}
