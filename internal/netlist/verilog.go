package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteVerilog emits the netlist as a structural Verilog module using
// primitive gates (and/or/nand/nor/xor/xnor/not/buf) and a ternary
// assign for MUXes. Signal names are sanitized into legal Verilog
// identifiers (original names survive when already legal). The module
// is synthesizable and equivalent to the netlist; hardware-security
// tool flows commonly expect this format alongside .bench.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	san := n.verilogNames()

	fmt.Fprintf(bw, "// generated from netlist %q\n", n.Name)
	fmt.Fprintf(bw, "module %s (\n", sanitizeIdent(n.Name))
	ports := make([]string, 0, len(n.Inputs)+len(n.Outputs))
	for _, id := range n.Inputs {
		ports = append(ports, "  input wire "+san[id])
	}
	outPort := make(map[int]string, len(n.Outputs))
	for i, id := range n.Outputs {
		name := fmt.Sprintf("po%d_%s", i, san[id])
		outPort[i] = name
		ports = append(ports, "  output wire "+name)
	}
	fmt.Fprintf(bw, "%s\n);\n\n", strings.Join(ports, ",\n"))

	// Internal wires.
	for id := range n.Gates {
		if n.Gates[id].Type == Input {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", san[id])
	}
	fmt.Fprintln(bw)

	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	inst := 0
	for _, id := range order {
		g := &n.Gates[id]
		args := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			args[i] = san[f]
		}
		switch g.Type {
		case Input:
			continue
		case Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", san[id])
		case Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", san[id])
		case Mux:
			fmt.Fprintf(bw, "  assign %s = %s ? %s : %s;\n", san[id], args[0], args[2], args[1])
		case Not:
			fmt.Fprintf(bw, "  not U%d (%s, %s);\n", inst, san[id], args[0])
			inst++
		case Buf:
			fmt.Fprintf(bw, "  buf U%d (%s, %s);\n", inst, san[id], args[0])
			inst++
		default:
			prim := strings.ToLower(g.Type.String())
			fmt.Fprintf(bw, "  %s U%d (%s, %s);\n", prim, inst, san[id], strings.Join(args, ", "))
			inst++
		}
	}
	fmt.Fprintln(bw)
	for i, id := range n.Outputs {
		fmt.Fprintf(bw, "  assign %s = %s;\n", outPort[i], san[id])
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// verilogNames maps gate IDs to unique legal Verilog identifiers.
func (n *Netlist) verilogNames() []string {
	names := make([]string, len(n.Gates))
	used := make(map[string]bool, len(n.Gates))
	for id := range n.Gates {
		base := sanitizeIdent(n.Gates[id].Name)
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[name] = true
		names[id] = name
	}
	return names
}

// sanitizeIdent turns an arbitrary signal name into a legal Verilog
// identifier.
func sanitizeIdent(s string) string {
	if s == "" {
		return "sig"
	}
	var sb strings.Builder
	for _, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "n" + out
	}
	switch out {
	case "module", "input", "output", "wire", "assign", "endmodule", "not", "buf", "and", "or", "nand", "nor", "xor", "xnor":
		out = out + "_w"
	}
	return out
}
