package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteVerilog emits the netlist as a structural Verilog module using
// primitive gates (and/or/nand/nor/xor/xnor/not/buf) and a ternary
// assign for MUXes. Signal names are sanitized into legal Verilog
// identifiers (original names survive when already legal). The module
// is synthesizable and equivalent to the netlist; hardware-security
// tool flows commonly expect this format alongside .bench.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	san := n.verilogNames()

	fmt.Fprintf(bw, "// generated from netlist %q\n", n.Name)
	fmt.Fprintf(bw, "module %s (\n", sanitizeIdent(n.Name))
	ports := make([]string, 0, len(n.Inputs)+len(n.Outputs))
	for _, id := range n.Inputs {
		ports = append(ports, "  input wire "+san[id])
	}
	outPort := make(map[int]string, len(n.Outputs))
	for i, id := range n.Outputs {
		name := fmt.Sprintf("po%d_%s", i, san[id])
		outPort[i] = name
		ports = append(ports, "  output wire "+name)
	}
	fmt.Fprintf(bw, "%s\n);\n\n", strings.Join(ports, ",\n"))

	// Internal wires.
	for id := range n.Gates {
		if n.Gates[id].Type == Input {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", san[id])
	}
	fmt.Fprintln(bw)

	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	inst := 0
	for _, id := range order {
		g := &n.Gates[id]
		args := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			args[i] = san[f]
		}
		switch g.Type {
		case Input:
			continue
		case Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", san[id])
		case Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", san[id])
		case Mux:
			fmt.Fprintf(bw, "  assign %s = %s ? %s : %s;\n", san[id], args[0], args[2], args[1])
		case Not:
			fmt.Fprintf(bw, "  not U%d (%s, %s);\n", inst, san[id], args[0])
			inst++
		case Buf:
			fmt.Fprintf(bw, "  buf U%d (%s, %s);\n", inst, san[id], args[0])
			inst++
		default:
			prim := strings.ToLower(g.Type.String())
			fmt.Fprintf(bw, "  %s U%d (%s, %s);\n", prim, inst, san[id], strings.Join(args, ", "))
			inst++
		}
	}
	fmt.Fprintln(bw)
	for i, id := range n.Outputs {
		fmt.Fprintf(bw, "  assign %s = %s;\n", outPort[i], san[id])
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// verilogNames maps gate IDs to unique legal Verilog identifiers.
func (n *Netlist) verilogNames() []string {
	names := make([]string, len(n.Gates))
	used := make(map[string]bool, len(n.Gates))
	for id := range n.Gates {
		base := sanitizeIdent(n.Gates[id].Name)
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[name] = true
		names[id] = name
	}
	return names
}

// ParseVerilog reads a structural Verilog module in the subset
// WriteVerilog emits (and common hardware-security benchmark releases
// use): one module with scalar `input wire`/`output wire` ports, `wire`
// declarations, primitive gate instantiations
// (and/or/nand/nor/xor/xnor/not/buf with the output first), and
// `assign` statements whose right-hand side is a constant (1'b0/1'b1),
// a plain net (alias), or a ternary MUX `sel ? b : a`. Comments (`//`)
// are stripped. Statements may appear in any order; forward references
// resolve in a second pass. Output-port assigns (`assign po = net;`)
// mark the driven net as a primary output rather than creating a gate,
// matching WriteVerilog's port renaming, so a Write→Parse round trip
// is functionally the identity.
func ParseVerilog(name string, r io.Reader) (*Netlist, error) {
	src, err := scanVerilog(name, r)
	if err != nil {
		return nil, err
	}
	n := New(src.module)
	if name != "" {
		n.Name = name
	}
	for _, p := range src.inputs {
		if _, dup := n.GateID(p.name); dup {
			return nil, fmt.Errorf("verilog %s line %d: duplicate input %q", name, p.line, p.name)
		}
		n.AddInput(p.name)
	}
	isOutPort := make(map[string]int, len(src.outputs)) // port name -> order
	for i, p := range src.outputs {
		if _, dup := isOutPort[p.name]; dup {
			return nil, fmt.Errorf("verilog %s line %d: duplicate output %q", name, p.line, p.name)
		}
		isOutPort[p.name] = i
	}

	// First pass: declare every defined net so forward references
	// resolve; detect duplicate drivers. Output-port aliases are
	// deferred: they mark outputs instead of defining gates.
	outDriver := make([]string, len(src.outputs)) // net driving each output port
	outLine := make([]int, len(src.outputs))
	var defs []vlDef
	for _, d := range src.defs {
		if d.op == vlAlias {
			if oi, ok := isOutPort[d.out]; ok {
				if outDriver[oi] != "" {
					return nil, fmt.Errorf("verilog %s line %d: output %q assigned twice", name, d.line, d.out)
				}
				outDriver[oi] = d.args[0]
				outLine[oi] = d.line
				continue
			}
		}
		if _, ok := isOutPort[d.out]; ok {
			return nil, fmt.Errorf("verilog %s line %d: output port %q driven by a non-alias statement", name, d.line, d.out)
		}
		if _, dup := n.GateID(d.out); dup {
			return nil, fmt.Errorf("verilog %s line %d: duplicate driver for %q", name, d.line, d.out)
		}
		n.addGate(d.out, d.typ, nil)
		defs = append(defs, d)
	}
	// Second pass: connect fanins.
	for _, d := range defs {
		ids := make([]int, len(d.args))
		for i, a := range d.args {
			id, ok := n.GateID(a)
			if !ok {
				return nil, fmt.Errorf("verilog %s line %d: %q reads undriven net %q", name, d.line, d.out, a)
			}
			ids[i] = id
		}
		if !d.typ.ArityOK(len(ids)) {
			return nil, fmt.Errorf("verilog %s line %d: %s gate %q cannot take %d argument(s)",
				name, d.line, d.typ, d.out, len(ids))
		}
		n.Gates[n.MustGateID(d.out)].Fanin = ids
	}
	for i, p := range src.outputs {
		if outDriver[i] == "" {
			return nil, fmt.Errorf("verilog %s: output %q is never assigned", name, p.name)
		}
		id, ok := n.GateID(outDriver[i])
		if !ok {
			return nil, fmt.Errorf("verilog %s line %d: output %q reads undriven net %q",
				name, outLine[i], p.name, outDriver[i])
		}
		n.MarkOutput(id)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// vlAlias tags an `assign x = y;` statement before it is resolved into
// either an output-port marking or a Buf gate.
const vlAlias = "alias"

// vlDef is one parsed net definition.
type vlDef struct {
	out  string
	op   string // primitive name, "assign", or vlAlias
	typ  GateType
	args []string
	line int
}

// vlPort is one declared port.
type vlPort struct {
	name string
	line int
}

// vlFile is the raw parse of a Verilog source.
type vlFile struct {
	module  string
	inputs  []vlPort
	outputs []vlPort
	defs    []vlDef
}

// scanVerilog tokenizes the module into ports and net definitions.
func scanVerilog(name string, r io.Reader) (*vlFile, error) {
	var src vlFile
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	sawModule, sawEnd := false, false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "module "):
			if sawModule {
				return nil, fmt.Errorf("verilog %s line %d: second module", name, lineNo)
			}
			sawModule = true
			rest := strings.TrimSpace(strings.TrimPrefix(line, "module "))
			if i := strings.IndexAny(rest, " (;"); i >= 0 {
				rest = rest[:i]
			}
			if rest == "" {
				return nil, fmt.Errorf("verilog %s line %d: missing module name", name, lineNo)
			}
			src.module = rest
		case strings.HasPrefix(line, "input "):
			p, err := vlPortName(line, "input")
			if err != nil {
				return nil, fmt.Errorf("verilog %s line %d: %v", name, lineNo, err)
			}
			src.inputs = append(src.inputs, vlPort{name: p, line: lineNo})
		case strings.HasPrefix(line, "output "):
			p, err := vlPortName(line, "output")
			if err != nil {
				return nil, fmt.Errorf("verilog %s line %d: %v", name, lineNo, err)
			}
			src.outputs = append(src.outputs, vlPort{name: p, line: lineNo})
		case strings.HasPrefix(line, "wire "):
			// Declarations carry no structure; drivers define nets.
		case line == ");" || line == "(" || line == ";":
			// Port-list punctuation on its own line.
		case strings.HasPrefix(line, "endmodule"):
			sawEnd = true
		case strings.HasPrefix(line, "assign "):
			d, err := vlParseAssign(line, lineNo)
			if err != nil {
				return nil, fmt.Errorf("verilog %s line %d: %v", name, lineNo, err)
			}
			src.defs = append(src.defs, d)
		default:
			d, err := vlParseInstance(line, lineNo)
			if err != nil {
				return nil, fmt.Errorf("verilog %s line %d: %v", name, lineNo, err)
			}
			src.defs = append(src.defs, d)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("verilog %s: %v", name, err)
	}
	if !sawModule {
		return nil, fmt.Errorf("verilog %s: no module declaration", name)
	}
	if !sawEnd {
		return nil, fmt.Errorf("verilog %s: missing endmodule", name)
	}
	return &src, nil
}

// vlPortName extracts the identifier from `input wire x` / `output x,`.
func vlPortName(line, kind string) (string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, kind))
	rest = strings.TrimSuffix(strings.TrimSuffix(rest, ","), ";")
	rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "wire"))
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " \t[]") {
		return "", fmt.Errorf("unsupported %s declaration %q (scalar wires only)", kind, line)
	}
	return rest, nil
}

// vlParseAssign parses `assign x = rhs;` where rhs is a constant, a
// net alias, or a ternary MUX.
func vlParseAssign(line string, lineNo int) (vlDef, error) {
	body := strings.TrimSpace(strings.TrimPrefix(line, "assign "))
	if !strings.HasSuffix(body, ";") {
		return vlDef{}, fmt.Errorf("assign missing semicolon: %q", line)
	}
	body = strings.TrimSpace(strings.TrimSuffix(body, ";"))
	eq := strings.Index(body, "=")
	if eq < 0 {
		return vlDef{}, fmt.Errorf("malformed assign %q", line)
	}
	out := strings.TrimSpace(body[:eq])
	rhs := strings.TrimSpace(body[eq+1:])
	if out == "" || rhs == "" {
		return vlDef{}, fmt.Errorf("malformed assign %q", line)
	}
	switch rhs {
	case "1'b0":
		return vlDef{out: out, op: "assign", typ: Const0, line: lineNo}, nil
	case "1'b1":
		return vlDef{out: out, op: "assign", typ: Const1, line: lineNo}, nil
	}
	if q := strings.Index(rhs, "?"); q >= 0 {
		c := strings.Index(rhs[q:], ":")
		if c < 0 {
			return vlDef{}, fmt.Errorf("malformed ternary %q", rhs)
		}
		sel := strings.TrimSpace(rhs[:q])
		tArm := strings.TrimSpace(rhs[q+1 : q+c])
		fArm := strings.TrimSpace(rhs[q+c+1:])
		if !vlIdentOK(sel) || !vlIdentOK(tArm) || !vlIdentOK(fArm) {
			return vlDef{}, fmt.Errorf("unsupported ternary operands in %q", rhs)
		}
		// WriteVerilog emits `sel ? b : a` for Mux(sel, a, b).
		return vlDef{out: out, op: "assign", typ: Mux, args: []string{sel, fArm, tArm}, line: lineNo}, nil
	}
	if !vlIdentOK(rhs) {
		return vlDef{}, fmt.Errorf("unsupported assign right-hand side %q", rhs)
	}
	return vlDef{out: out, op: vlAlias, typ: Buf, args: []string{rhs}, line: lineNo}, nil
}

// vlParseInstance parses `prim Uname (out, in...);`.
func vlParseInstance(line string, lineNo int) (vlDef, error) {
	lp := strings.Index(line, "(")
	rp := strings.LastIndex(line, ")")
	if lp < 0 || rp < lp || !strings.HasSuffix(strings.TrimSpace(line[rp:]), ");") {
		return vlDef{}, fmt.Errorf("unsupported statement %q", line)
	}
	head := strings.Fields(strings.TrimSpace(line[:lp]))
	if len(head) != 2 {
		return vlDef{}, fmt.Errorf("unsupported instantiation head %q", line)
	}
	var typ GateType
	switch head[0] {
	case "and":
		typ = And
	case "nand":
		typ = Nand
	case "or":
		typ = Or
	case "nor":
		typ = Nor
	case "xor":
		typ = Xor
	case "xnor":
		typ = Xnor
	case "not":
		typ = Not
	case "buf":
		typ = Buf
	default:
		return vlDef{}, fmt.Errorf("unsupported primitive %q", head[0])
	}
	var args []string
	for _, a := range strings.Split(line[lp+1:rp], ",") {
		a = strings.TrimSpace(a)
		if !vlIdentOK(a) {
			return vlDef{}, fmt.Errorf("bad connection %q in %q", a, line)
		}
		args = append(args, a)
	}
	if len(args) < 2 {
		return vlDef{}, fmt.Errorf("primitive %q needs an output and at least one input", line)
	}
	return vlDef{out: args[0], op: head[0], typ: typ, args: args[1:], line: lineNo}, nil
}

// vlIdentOK reports whether s is a plain scalar identifier.
func vlIdentOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '$' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// sanitizeIdent turns an arbitrary signal name into a legal Verilog
// identifier.
func sanitizeIdent(s string) string {
	if s == "" {
		return "sig"
	}
	var sb strings.Builder
	for _, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "n" + out
	}
	switch out {
	case "module", "input", "output", "wire", "assign", "endmodule", "not", "buf", "and", "or", "nand", "nor", "xor", "xnor":
		out = out + "_w"
	}
	return out
}
