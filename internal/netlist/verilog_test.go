package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteVerilogStructure(t *testing.T) {
	n := buildFullAdder(t)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module fulladder",
		"input wire a", "input wire b", "input wire cin",
		"output wire po0_sum", "output wire po1_cout",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
	// Primitive instances for the logic gates.
	if strings.Count(v, "xor U") != 2 {
		t.Errorf("want 2 xor instances:\n%s", v)
	}
	if strings.Count(v, "and U") != 2 || strings.Count(v, "or U") < 1 {
		t.Errorf("gate instances wrong:\n%s", v)
	}
}

func TestWriteVerilogMuxAndConst(t *testing.T) {
	n := New("m")
	s := n.AddInput("sel")
	a := n.AddInput("a")
	c1 := n.AddGate("one", Const1, []int{}...)
	m := n.AddGate("mx", Mux, s, a, c1)
	n.MarkOutput(m)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	if !strings.Contains(v, "assign one = 1'b1;") {
		t.Errorf("const assign missing:\n%s", v)
	}
	if !strings.Contains(v, "assign mx = sel ? one : a;") {
		t.Errorf("mux ternary wrong:\n%s", v)
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"a":       "a",
		"st[3]":   "st_3_",
		"9lives":  "n9lives",
		"module":  "module_w",
		"":        "sig",
		"ok_name": "ok_name",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVerilogNameCollisions(t *testing.T) {
	n := New("c")
	n.AddInput("x[0]")
	n.AddInput("x_0_") // collides after sanitization
	names := n.verilogNames()
	if names[0] == names[1] {
		t.Errorf("collision not resolved: %q vs %q", names[0], names[1])
	}
}
