// Package opt implements combinational logic optimization: constant
// folding, algebraic identity simplification, double-inverter removal
// and structural hashing (common-subexpression merging). It is the
// resynthesis substrate a reverse engineer runs on a locked netlist —
// binding a key and optimizing collapses the MUX lattice back to plain
// gates, which is how the overhead of an *activated* RIL design is
// measured fairly — and a building block for redundancy-removal
// attacks.
package opt

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Stats reports what an optimization run changed.
type Stats struct {
	ConstFolds  int
	Identities  int
	InvPairs    int
	CSEMerges   int
	GatesBefore int
	GatesAfter  int
	Passes      int
}

func (s Stats) String() string {
	return fmt.Sprintf("opt: %d -> %d gates (%d const folds, %d identities, %d inverter pairs, %d CSE merges, %d passes)",
		s.GatesBefore, s.GatesAfter, s.ConstFolds, s.Identities, s.InvPairs, s.CSEMerges, s.Passes)
}

// Optimize simplifies the netlist in place to a fixpoint and prunes
// dead logic. The circuit's function is preserved (asserted by the
// test suite via SAT equivalence).
func Optimize(nl *netlist.Netlist) (Stats, error) {
	stats := Stats{GatesBefore: nl.NumLogicGates()}
	// Bounded fixpoint: every productive pass strictly shrinks or
	// canonicalizes the netlist, and the pass cap stops pathological
	// rewrite ping-pong, so the loop terminates without a context.
	const maxPasses = 50
	for stats.Passes <= maxPasses {
		changed := 0
		changed += constantFold(nl, &stats)
		changed += identities(nl, &stats)
		changed += inverterPairs(nl, &stats)
		changed += structuralHash(nl, &stats)
		stats.Passes++
		nl.Prune()
		if changed == 0 {
			break
		}
	}
	// Post-condition: the rewrite rules must never close a combinational
	// loop or leave a net undriven. Validate rejects cycles and dangling
	// fanin; the undriven scan below covers the one defect it does not —
	// an Input-type gate that is not a declared primary input. The check
	// is deliberately local: netlint depends on this package (the
	// resilience audit sweeps key cofactors through Optimize), so the
	// optimizer cannot call back into it.
	if err := nl.Validate(); err != nil {
		return stats, fmt.Errorf("opt: optimizer broke the netlist: %w", err)
	}
	declared := make(map[int]bool, len(nl.Inputs))
	for _, id := range nl.Inputs {
		declared[id] = true
	}
	for id := range nl.Gates {
		if nl.Gates[id].Type == netlist.Input && !declared[id] {
			return stats, fmt.Errorf("opt: optimizer broke the netlist: net %q is undriven", nl.Gates[id].Name)
		}
	}
	stats.GatesAfter = nl.NumLogicGates()
	return stats, nil
}

// isNotOf reports whether gate x is NOT(y).
func isNotOf(nl *netlist.Netlist, x, y int) bool {
	return nl.Gates[x].Type == netlist.Not && nl.Gates[x].Fanin[0] == y
}

// constKind classifies a gate as constant 0/1 or neither.
func constKind(nl *netlist.Netlist, id int) (bool, bool) { // (isConst, value)
	switch nl.Gates[id].Type {
	case netlist.Const0:
		return true, false
	case netlist.Const1:
		return true, true
	}
	return false, false
}

// replaceWithConst rewires a gate to a constant.
func replaceWithConst(nl *netlist.Netlist, id int, v bool) {
	t := netlist.Const0
	if v {
		t = netlist.Const1
	}
	c := nl.AddGate(nl.FreshName("k"), t)
	nl.RedirectFanout(id, c)
}

func constantFold(nl *netlist.Netlist, stats *Stats) int {
	order, err := nl.TopoOrder()
	if err != nil {
		return 0
	}
	changed := 0
	for _, id := range order {
		g := &nl.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		// Collect constant / non-constant fanins.
		var live []int
		allConstTrue := true
		forced := -1 // -1 none, 0 forced-0, 1 forced-1
		for _, f := range g.Fanin {
			isC, v := constKind(nl, f)
			if !isC {
				live = append(live, f)
				allConstTrue = false
				continue
			}
			switch g.Type {
			case netlist.And, netlist.Nand:
				if !v {
					forced = 0
				}
			case netlist.Or, netlist.Nor:
				if v {
					forced = 1
				}
			}
			if !v {
				allConstTrue = false
			}
		}
		switch g.Type {
		case netlist.Not:
			if isC, v := constKind(nl, g.Fanin[0]); isC {
				replaceWithConst(nl, id, !v)
				stats.ConstFolds++
				changed++
			}
		case netlist.Buf:
			if isC, v := constKind(nl, g.Fanin[0]); isC {
				replaceWithConst(nl, id, v)
				stats.ConstFolds++
				changed++
			} else {
				nl.RedirectFanout(id, g.Fanin[0])
				stats.Identities++
				changed++
			}
		case netlist.And, netlist.Nand:
			neg := g.Type == netlist.Nand
			if forced == 0 {
				replaceWithConst(nl, id, neg)
				stats.ConstFolds++
				changed++
			} else if len(live) == 0 {
				replaceWithConst(nl, id, allConstTrue != neg)
				stats.ConstFolds++
				changed++
			} else if len(live) < len(g.Fanin) {
				// Drop const-1 fanins.
				if len(live) == 1 && !neg {
					nl.RedirectFanout(id, live[0])
				} else if len(live) == 1 {
					inv := nl.AddGate(nl.FreshName("n"), netlist.Not, live[0])
					nl.RedirectFanout(id, inv)
				} else {
					nl.SetFanin(id, live...)
				}
				stats.ConstFolds++
				changed++
			}
		case netlist.Or, netlist.Nor:
			neg := g.Type == netlist.Nor
			anyTrue := forced == 1
			if anyTrue {
				replaceWithConst(nl, id, !neg)
				stats.ConstFolds++
				changed++
			} else if len(live) == 0 {
				replaceWithConst(nl, id, neg)
				stats.ConstFolds++
				changed++
			} else if len(live) < len(g.Fanin) {
				if len(live) == 1 && !neg {
					nl.RedirectFanout(id, live[0])
				} else if len(live) == 1 {
					inv := nl.AddGate(nl.FreshName("n"), netlist.Not, live[0])
					nl.RedirectFanout(id, inv)
				} else {
					nl.SetFanin(id, live...)
				}
				stats.ConstFolds++
				changed++
			}
		case netlist.Xor, netlist.Xnor:
			parity := g.Type == netlist.Xnor
			for _, f := range g.Fanin {
				if isC, v := constKind(nl, f); isC && v {
					parity = !parity
				}
			}
			if len(live) == 0 {
				replaceWithConst(nl, id, parity)
				stats.ConstFolds++
				changed++
			} else if len(live) < len(g.Fanin) {
				if len(live) == 1 && !parity {
					nl.RedirectFanout(id, live[0])
				} else if len(live) == 1 {
					inv := nl.AddGate(nl.FreshName("n"), netlist.Not, live[0])
					nl.RedirectFanout(id, inv)
				} else {
					t := netlist.Xor
					if parity {
						t = netlist.Xnor
					}
					repl := nl.AddGate(nl.FreshName("x"), t, live...)
					nl.RedirectFanout(id, repl)
				}
				stats.ConstFolds++
				changed++
			}
		case netlist.Mux:
			s, a, b := g.Fanin[0], g.Fanin[1], g.Fanin[2]
			if isC, v := constKind(nl, s); isC {
				pick := a
				if v {
					pick = b
				}
				nl.RedirectFanout(id, pick)
				stats.ConstFolds++
				changed++
			} else if a == b {
				nl.RedirectFanout(id, a)
				stats.Identities++
				changed++
			} else {
				aC, aV := constKind(nl, a)
				bC, bV := constKind(nl, b)
				switch {
				case aC && bC && aV == bV:
					replaceWithConst(nl, id, aV)
					stats.ConstFolds++
					changed++
				case aC && bC && !aV && bV:
					// MUX(s,0,1) = s
					nl.RedirectFanout(id, s)
					stats.ConstFolds++
					changed++
				case aC && bC && aV && !bV:
					inv := nl.AddGate(nl.FreshName("n"), netlist.Not, s)
					nl.RedirectFanout(id, inv)
					stats.ConstFolds++
					changed++
				case aC && !aV: // MUX(s,0,b) = s AND b
					repl := nl.AddGate(nl.FreshName("m"), netlist.And, s, b)
					nl.RedirectFanout(id, repl)
					stats.ConstFolds++
					changed++
				case aC && aV: // MUX(s,1,b) = ¬s OR b = NOT(s AND ¬b): use OR(NOT s, b)
					ns := nl.AddGate(nl.FreshName("n"), netlist.Not, s)
					repl := nl.AddGate(nl.FreshName("m"), netlist.Or, ns, b)
					nl.RedirectFanout(id, repl)
					stats.ConstFolds++
					changed++
				case bC && !bV: // MUX(s,a,0) = ¬s AND a
					ns := nl.AddGate(nl.FreshName("n"), netlist.Not, s)
					repl := nl.AddGate(nl.FreshName("m"), netlist.And, ns, a)
					nl.RedirectFanout(id, repl)
					stats.ConstFolds++
					changed++
				case bC && bV: // MUX(s,a,1) = s OR a
					repl := nl.AddGate(nl.FreshName("m"), netlist.Or, s, a)
					nl.RedirectFanout(id, repl)
					stats.ConstFolds++
					changed++
				case isNotOf(nl, b, a): // MUX(s,a,¬a) = s XOR a
					repl := nl.AddGate(nl.FreshName("m"), netlist.Xor, s, a)
					nl.RedirectFanout(id, repl)
					stats.Identities++
					changed++
				case isNotOf(nl, a, b): // MUX(s,¬b,b) = s XNOR b
					repl := nl.AddGate(nl.FreshName("m"), netlist.Xnor, s, b)
					nl.RedirectFanout(id, repl)
					stats.Identities++
					changed++
				}
			}
		}
	}
	return changed
}

// identities applies x-op-x rules.
func identities(nl *netlist.Netlist, stats *Stats) int {
	changed := 0
	for id := range nl.Gates {
		g := &nl.Gates[id]
		if len(g.Fanin) != 2 || g.Fanin[0] != g.Fanin[1] {
			continue
		}
		x := g.Fanin[0]
		switch g.Type {
		case netlist.And, netlist.Or:
			nl.RedirectFanout(id, x)
		case netlist.Nand, netlist.Nor:
			inv := nl.AddGate(nl.FreshName("n"), netlist.Not, x)
			nl.RedirectFanout(id, inv)
		case netlist.Xor:
			replaceWithConst(nl, id, false)
		case netlist.Xnor:
			replaceWithConst(nl, id, true)
		default:
			continue
		}
		stats.Identities++
		changed++
	}
	return changed
}

// inverterPairs collapses NOT(NOT(x)) to x.
func inverterPairs(nl *netlist.Netlist, stats *Stats) int {
	changed := 0
	for id := range nl.Gates {
		g := &nl.Gates[id]
		if g.Type != netlist.Not {
			continue
		}
		inner := g.Fanin[0]
		if nl.Gates[inner].Type == netlist.Not {
			nl.RedirectFanout(id, nl.Gates[inner].Fanin[0])
			stats.InvPairs++
			changed++
		}
	}
	return changed
}

// structuralHash merges gates computing the identical expression.
func structuralHash(nl *netlist.Netlist, stats *Stats) int {
	changed := 0
	seen := map[string]int{}
	order, err := nl.TopoOrder()
	if err != nil {
		return 0
	}
	for _, id := range order {
		g := &nl.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		key := hashKey(g)
		if prev, ok := seen[key]; ok && prev != id {
			nl.RedirectFanout(id, prev)
			stats.CSEMerges++
			changed++
			continue
		}
		seen[key] = id
	}
	return changed
}

// hashKey canonicalizes a gate: commutative operators sort their
// fanins; MUX keeps order.
func hashKey(g *netlist.Gate) string {
	fin := append([]int(nil), g.Fanin...)
	switch g.Type {
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
		sort.Ints(fin)
	}
	return fmt.Sprintf("%d:%v", g.Type, fin)
}
