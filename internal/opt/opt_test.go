package opt

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/netlist"
)

func TestConstantFolds(t *testing.T) {
	nl := netlist.New("cf")
	x := nl.AddInput("x")
	c0 := nl.AddGate("c0", netlist.Const0)
	c1 := nl.AddGate("c1", netlist.Const1)
	and0 := nl.AddGate("and0", netlist.And, x, c0) // -> 0
	or1 := nl.AddGate("or1", netlist.Or, x, c1)    // -> 1
	xorc := nl.AddGate("xorc", netlist.Xor, x, c1) // -> NOT x
	mux := nl.AddGate("mux", netlist.Mux, c1, x, and0)
	sel := nl.AddGate("sel", netlist.Mux, x, c0, c1) // -> x
	for _, id := range []int{and0, or1, xorc, mux, sel} {
		nl.MarkOutput(id)
	}
	before := nl.Clone()
	stats, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ConstFolds == 0 {
		t.Error("no constant folds recorded")
	}
	eq, cex, err := netlist.Equivalent(before, nl, 10, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("optimization changed function, cex=%v", cex)
	}
	if nl.NumLogicGates() >= before.NumLogicGates() {
		t.Errorf("no shrink: %d -> %d", before.NumLogicGates(), nl.NumLogicGates())
	}
}

func TestIdentityAndInverterPairs(t *testing.T) {
	nl := netlist.New("idn")
	x := nl.AddInput("x")
	y := nl.AddInput("y")
	xx := nl.AddGate("xx", netlist.And, x, x)   // -> x
	xox := nl.AddGate("xox", netlist.Xor, x, x) // -> 0
	n1 := nl.AddGate("n1", netlist.Not, y)
	n2 := nl.AddGate("n2", netlist.Not, n1)      // -> y
	out := nl.AddGate("out", netlist.Or, xx, n2) // -> x OR y
	nl.MarkOutput(out)
	nl.MarkOutput(xox)
	before := nl.Clone()
	stats, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Identities == 0 || stats.InvPairs == 0 {
		t.Errorf("missing rewrites: %+v", stats)
	}
	eq, _, err := netlist.Equivalent(before, nl, 10, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("identity rewrites broke function")
	}
}

func TestCSEMergesDuplicates(t *testing.T) {
	nl := netlist.New("cse")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g1 := nl.AddGate("g1", netlist.And, a, b)
	g2 := nl.AddGate("g2", netlist.And, b, a) // same expression, swapped
	o := nl.AddGate("o", netlist.Xor, g1, g2) // -> 0 after merge
	nl.MarkOutput(o)
	before := nl.Clone()
	stats, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CSEMerges == 0 {
		t.Error("duplicate AND not merged")
	}
	eq, _, err := netlist.Equivalent(before, nl, 10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("CSE broke function")
	}
}

func TestOptimizeRandomPreservesFunction(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		nl, err := netlist.Random(netlist.RandomProfile{
			Name: "r", Inputs: 14, Outputs: 7, Gates: 250, Locality: 0.6,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		before := nl.Clone()
		if _, err := Optimize(nl); err != nil {
			t.Fatal(err)
		}
		eq, cex, err := attack.EquivalentSAT(before, nl, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("seed %d: optimization changed function (cex %v)", seed, cex)
		}
		if nl.NumLogicGates() > before.NumLogicGates() {
			t.Errorf("seed %d: optimization grew the circuit", seed)
		}
	}
}

func TestBoundLockedCircuitCollapses(t *testing.T) {
	// Binding the correct key and resynthesizing must collapse the MUX
	// lattice: the activated RIL design returns close to the original
	// gate count — the fair way to measure *activated* overhead.
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "rl", Inputs: 18, Outputs: 9, Gates: 400, Locality: 0.7,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 2, Size: core.Size8x8x8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	lockedGates := bound.NumLogicGates()
	stats, err := Optimize(bound)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := attack.EquivalentSAT(orig, bound, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("resynthesis broke the activated circuit")
	}
	if bound.NumLogicGates() >= lockedGates {
		t.Errorf("no collapse: %d -> %d", lockedGates, bound.NumLogicGates())
	}
	// The MUX trees with constant selects and constant leaves must
	// mostly vanish: within 15% of the original gate count.
	limit := orig.NumLogicGates() + orig.NumLogicGates()*15/100
	if bound.NumLogicGates() > limit {
		t.Errorf("activated design still carries %d gates (original %d): %s",
			bound.NumLogicGates(), orig.NumLogicGates(), stats)
	}
	t.Logf("locked %d -> optimized %d (original %d): %s",
		lockedGates, bound.NumLogicGates(), orig.NumLogicGates(), stats)
}

func TestOptimizeIdempotent(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomProfile{
		Name: "i", Inputs: 12, Outputs: 6, Gates: 150, Locality: 0.6,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(nl); err != nil {
		t.Fatal(err)
	}
	g1 := nl.NumLogicGates()
	st, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumLogicGates() != g1 {
		t.Errorf("second pass changed size: %d -> %d (%s)", g1, nl.NumLogicGates(), st)
	}
}
