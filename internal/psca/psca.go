// Package psca implements the power side-channel analysis of §IV-D:
// it collects power traces from the LUT models in internal/lutsim and
// mounts correlation power analysis (CPA) and difference-of-means DPA
// against the programmed LUT function (the key). The conventional
// SRAM-based LUT leaks its contents through the data-dependent bitline
// discharge and falls to CPA with a handful of traces; the
// complementary-MTJ MRAM LUT draws the same read current for 0 and 1,
// so the attack degenerates to guessing.
package psca

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/lutsim"
)

// Trace is one power measurement: the (public) inputs applied and the
// measured read power including measurement noise.
type Trace struct {
	A, B  bool
	Power float64 // [W]
}

// readPowerer abstracts the two LUT models for trace collection.
type readPowerer interface {
	readPower(a, b bool) float64
}

type mramTarget struct{ l *lutsim.LUT }

func (t mramTarget) readPower(a, b bool) float64 { return t.l.Read(a, b, false).Power }

type sramTarget struct{ s *lutsim.SRAMLUT }

func (t sramTarget) readPower(a, b bool) float64 { return t.s.Read(a, b).Power }

// CollectMRAM gathers n noisy read-power traces from an MRAM LUT.
// noiseSigma is the measurement noise standard deviation relative to
// the mean power (e.g. 0.01 = 1 %).
func CollectMRAM(l *lutsim.LUT, n int, noiseSigma float64, seed int64) []Trace {
	return collect(mramTarget{l}, n, noiseSigma, seed)
}

// CollectSRAM gathers n noisy read-power traces from an SRAM LUT.
func CollectSRAM(s *lutsim.SRAMLUT, n int, noiseSigma float64, seed int64) []Trace {
	return collect(sramTarget{s}, n, noiseSigma, seed)
}

func collect(t readPowerer, n int, noiseSigma float64, seed int64) []Trace {
	rng := rand.New(rand.NewSource(seed))
	// Estimate mean power for noise scaling.
	mean := 0.0
	for idx := 0; idx < 4; idx++ {
		mean += t.readPower(idx>>1 == 1, idx&1 == 1)
	}
	mean /= 4
	traces := make([]Trace, n)
	for i := range traces {
		a, b := rng.Intn(2) == 1, rng.Intn(2) == 1
		p := t.readPower(a, b)
		p += noiseSigma * mean * rng.NormFloat64()
		traces[i] = Trace{A: a, B: b, Power: p}
	}
	return traces
}

// CPAResult reports a correlation power analysis run over the sixteen
// two-input function hypotheses.
type CPAResult struct {
	Best        logic.Func2
	Correlation map[logic.Func2]float64
	// Margin is the gap between the best and second-best |correlation|;
	// small margins mean the attack cannot commit to a key.
	Margin float64
}

// CPA runs correlation power analysis: for every function hypothesis
// it predicts the power-relevant quantity (higher power when the read
// value is 0, matching the bitline-discharge leak model) and computes
// the Pearson correlation with the measured powers. The hypothesis
// with the largest correlation wins.
func CPA(traces []Trace) (*CPAResult, error) {
	if len(traces) < 8 {
		return nil, fmt.Errorf("psca: need at least 8 traces, got %d", len(traces))
	}
	res := &CPAResult{Correlation: make(map[logic.Func2]float64, 16)}
	bestAbs, secondAbs := -1.0, -1.0
	// A hypothesis and its complement produce exactly opposite
	// correlations, so rank only the canonical half (f(0,0) = 0) and
	// use the correlation sign to pick between f and ¬f.
	for _, f := range logic.AllFunc2() {
		if f&1 != 0 {
			continue
		}
		pred := make([]float64, len(traces))
		meas := make([]float64, len(traces))
		for i, tr := range traces {
			if !f.Eval(tr.A, tr.B) { // reading a 0 draws more power
				pred[i] = 1
			}
			meas[i] = tr.Power
		}
		r := pearson(pred, meas)
		res.Correlation[f] = r
		res.Correlation[f.Invert()] = -r
		if a := math.Abs(r); a > bestAbs {
			secondAbs = bestAbs
			bestAbs = a
			res.Best = f
			if r < 0 {
				// Negative correlation with the "reads 0" predictor
				// means the complementary function fits.
				res.Best = f.Invert()
			}
		} else if a > secondAbs {
			secondAbs = a
		}
	}
	if secondAbs < 0 {
		secondAbs = 0
	}
	res.Margin = bestAbs - secondAbs
	return res, nil
}

// Recovered reports whether the CPA result identifies the programmed
// function. Constant functions (0, 1) expose no data dependence and
// are excluded from meaningful recovery.
func (r *CPAResult) Recovered(truth logic.Func2) bool {
	return r.Best == truth
}

// pearson computes the Pearson correlation coefficient.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// DPAResult reports a difference-of-means analysis.
type DPAResult struct {
	Diff   float64 // |mean(power | pred 0) − mean(power | pred 1)| [W]
	TValue float64 // Welch's t statistic for the separation
}

// DPA partitions the traces by the true output of the function (known
// to the evaluator — this is a leakage assessment, TVLA-style) and
// measures the separation between the two power populations.
func DPA(traces []Trace, truth logic.Func2) (*DPAResult, error) {
	var g0, g1 []float64
	for _, tr := range traces {
		if truth.Eval(tr.A, tr.B) {
			g1 = append(g1, tr.Power)
		} else {
			g0 = append(g0, tr.Power)
		}
	}
	if len(g0) < 2 || len(g1) < 2 {
		return nil, fmt.Errorf("psca: partition too small (%d/%d); use a non-constant function", len(g0), len(g1))
	}
	m0, v0 := meanVar(g0)
	m1, v1 := meanVar(g1)
	den := math.Sqrt(v0/float64(len(g0)) + v1/float64(len(g1)))
	t := 0.0
	if den > 0 {
		t = math.Abs(m0-m1) / den
	}
	return &DPAResult{Diff: math.Abs(m0 - m1), TValue: t}, nil
}

func meanVar(s []float64) (mean, variance float64) {
	n := float64(len(s))
	for _, v := range s {
		mean += v
	}
	mean /= n
	for _, v := range s {
		variance += (v - mean) * (v - mean)
	}
	variance /= n - 1
	return mean, variance
}

// SNR returns the signal-to-noise ratio of the output-dependent power
// component: Var(E[P|out]) / E[Var(P|out)], the standard side-channel
// leakage metric. Values near zero mean nothing to attack.
func SNR(traces []Trace, truth logic.Func2) float64 {
	var g [2][]float64
	for _, tr := range traces {
		v := 0
		if truth.Eval(tr.A, tr.B) {
			v = 1
		}
		g[v] = append(g[v], tr.Power)
	}
	if len(g[0]) < 2 || len(g[1]) < 2 {
		return 0
	}
	m0, v0 := meanVar(g[0])
	m1, v1 := meanVar(g[1])
	n0, n1 := float64(len(g[0])), float64(len(g[1]))
	grand := (m0*n0 + m1*n1) / (n0 + n1)
	signal := (n0*(m0-grand)*(m0-grand) + n1*(m1-grand)*(m1-grand)) / (n0 + n1)
	noise := (v0*n0 + v1*n1) / (n0 + n1)
	if noise == 0 {
		return 0
	}
	return signal / noise
}
