package psca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/lutsim"
	"repro/internal/mtj"
)

func sramWith(f logic.Func2) *lutsim.SRAMLUT {
	s := lutsim.NewSRAM(lutsim.DefaultConfig())
	s.Configure(f)
	return s
}

func mramWith(t *testing.T, f logic.Func2, seed int64) *lutsim.LUT {
	t.Helper()
	var l *lutsim.LUT
	if seed == 0 {
		l = lutsim.New(lutsim.DefaultConfig())
	} else {
		rng := rand.New(rand.NewSource(seed))
		l = lutsim.Sample(lutsim.DefaultConfig(), mtj.DefaultVariation(), lutsim.DefaultMOSVariation(), rng)
	}
	for _, r := range l.Configure(f) {
		if r.Error {
			t.Fatal("configure failed")
		}
	}
	return l
}

func TestCPARecoversSRAMKey(t *testing.T) {
	// Every non-constant function must fall to CPA on the SRAM LUT.
	for _, f := range logic.AllFunc2() {
		if f == logic.Const0 || f == logic.Const1 {
			continue
		}
		traces := CollectSRAM(sramWith(f), 400, 0.05, int64(f))
		res, err := CPA(traces)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recovered(f) {
			t.Errorf("CPA missed SRAM key %s (best %s, margin %.3f)", f, res.Best, res.Margin)
		}
		if res.Margin < 0.1 {
			t.Errorf("CPA margin %.3f for %s suspiciously small on a leaky target", res.Margin, f)
		}
	}
}

func TestCPAFailsOnMRAM(t *testing.T) {
	// Across PV instances and functions, MRAM CPA must not beat
	// guessing. With 8 canonical hypotheses random guessing recovers
	// the key 1/8 of the time; allow up to 40% to keep the test robust
	// while still distinguishing from the SRAM case (100%).
	recovered, total := 0, 0
	for _, f := range []logic.Func2{logic.AND, logic.OR, logic.XOR, logic.NAND, logic.NOR, logic.BufA} {
		for inst := int64(1); inst <= 5; inst++ {
			l := mramWith(t, f, inst*17)
			traces := CollectMRAM(l, 400, 0.05, int64(f)*100+inst)
			res, err := CPA(traces)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if res.Recovered(f) {
				recovered++
			}
		}
	}
	if rate := float64(recovered) / float64(total); rate > 0.4 {
		t.Errorf("CPA recovered MRAM keys at rate %.2f — complementary sensing should hide them", rate)
	}
}

func TestDPASeparation(t *testing.T) {
	f := logic.AND
	sramTraces := CollectSRAM(sramWith(f), 1000, 0.05, 3)
	mramTraces := CollectMRAM(mramWith(t, f, 9), 1000, 0.05, 4)
	sd, err := DPA(sramTraces, f)
	if err != nil {
		t.Fatal(err)
	}
	md, err := DPA(mramTraces, f)
	if err != nil {
		t.Fatal(err)
	}
	// TVLA-style threshold: |t| > 4.5 flags leakage.
	if sd.TValue < 4.5 {
		t.Errorf("SRAM t-value %.2f should flag obvious leakage", sd.TValue)
	}
	if md.TValue > sd.TValue/5 {
		t.Errorf("MRAM t-value %.2f not clearly below SRAM %.2f", md.TValue, sd.TValue)
	}
}

func TestSNRContrast(t *testing.T) {
	f := logic.NAND
	sramTraces := CollectSRAM(sramWith(f), 2000, 0.05, 5)
	mramTraces := CollectMRAM(mramWith(t, f, 21), 2000, 0.05, 6)
	sSNR := SNR(sramTraces, f)
	mSNR := SNR(mramTraces, f)
	if sSNR < 1 {
		t.Errorf("SRAM SNR %.3f too low for a leaky target", sSNR)
	}
	if mSNR > sSNR/10 {
		t.Errorf("MRAM SNR %.4f not an order of magnitude below SRAM %.3f", mSNR, sSNR)
	}
}

func TestDPAErrorsOnConstant(t *testing.T) {
	traces := CollectSRAM(sramWith(logic.Const0), 100, 0.05, 7)
	if _, err := DPA(traces, logic.Const0); err == nil {
		t.Error("DPA on a constant function should fail (single partition)")
	}
}

func TestCPAErrorsOnTinyTraceSet(t *testing.T) {
	traces := CollectSRAM(sramWith(logic.AND), 4, 0.05, 8)
	if _, err := CPA(traces); err == nil {
		t.Error("CPA should reject tiny trace sets")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if r := pearson(x, x); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation %v", r)
	}
	y := []float64{4, 3, 2, 1}
	if r := pearson(x, y); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation %v", r)
	}
	flat := []float64{5, 5, 5, 5}
	if r := pearson(x, flat); r != 0 {
		t.Errorf("degenerate correlation %v", r)
	}
}

func TestNoiseScalesWithPower(t *testing.T) {
	l := mramWith(t, logic.AND, 0)
	lo := CollectMRAM(l, 500, 0.001, 9)
	hi := CollectMRAM(l, 500, 0.2, 10)
	_, vLo := meanVar(powers(lo))
	_, vHi := meanVar(powers(hi))
	if vHi <= vLo {
		t.Error("noise parameter has no effect on trace variance")
	}
}

func powers(ts []Trace) []float64 {
	out := make([]float64, len(ts))
	for i, tr := range ts {
		out[i] = tr.Power
	}
	return out
}
