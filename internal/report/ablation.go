package report

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/baselines"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sweep"
)

// Ablation isolates the contribution of each RIL-Block ingredient to
// SAT-hardness (the design choices §III-A argues for): LUTs alone,
// input routing alone, and the full block, at equal LUT count.
func Ablation(cfg AttackConfig) (*Table, error) {
	prof, _ := circuit.ProfileByName("c7552")
	orig, err := prof.Synthesize(cfg.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: which RIL-Block ingredient creates the SAT-hardness (8 LUTs each)",
		Header: []string{"geometry", "key bits", "DIPs", "runtime (s)", "result"},
		Notes: []string{
			fmt.Sprintf("scale=%.2f timeout=%v; one block (or 8 plain LUTs) per row", cfg.Scale, cfg.Timeout),
		},
	}
	rows := []struct {
		label  string
		blocks int
		size   core.Size
	}{
		{"8 x lut1 (LUTs only, [12])", 8, core.Size{K: 1}},
		{"lut8 (grouped LUTs, no routing)", 1, core.Size{K: 8}},
		{"8x8 (input routing)", 1, core.Size8x8},
		{"8x8x8 (routing both sides)", 1, core.Size8x8x8},
		{"3 x 8x8x8 (paper operating point)", 3, core.Size8x8x8},
	}
	// One sweep job per geometry row; a lock failure renders the row
	// as n/a rather than failing the table.
	var jobs []sweep.Job
	for _, r := range rows {
		r := r
		jobs = append(jobs, sweep.Job{
			Name: "ablation/" + r.label,
			Seed: cfg.Seed,
			Run: func(ctx context.Context, _ int64) (any, error) {
				res, err := core.Lock(orig, core.Options{Blocks: r.blocks, Size: r.size, Seed: cfg.Seed})
				if err != nil {
					return []string{r.label, "n/a", "n/a", "n/a", "n/a"}, nil
				}
				bound, err := res.ApplyKey(res.Key)
				if err != nil {
					return nil, err
				}
				oracle, err := attack.NewSimOracle(bound)
				if err != nil {
					return nil, err
				}
				ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
					attack.SATOptions{Timeout: cfg.Timeout, Context: ctx})
				if err != nil {
					return nil, err
				}
				return []string{r.label,
					fmt.Sprintf("%d", res.KeyBits()),
					fmt.Sprintf("%d", ar.Iterations),
					fmtDuration(ar.Elapsed, ar.Status != attack.KeyFound),
					ar.Status.String()}, nil
			},
		})
	}
	results, err := runSweep(cfg, "ablation", jobs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		row, err := cellValue[[]string](res)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}

// OneHotEncoding reproduces the §IV-B pre-processing comparison: the
// one-layer linear (one-hot crossbar) re-encoding of routing networks
// cracks routing-only obfuscation (FullLock/InterLock lineage, [10],
// [11]) but leaves RIL-Blocks hard — the LUT layer's coupling survives
// the re-encoding.
func OneHotEncoding(cfg AttackConfig) (*Table, error) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "onehot", Inputs: 16, Outputs: 12,
		Gates: int(3000 * cfg.Scale), Locality: 0.3,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "One-layer one-hot re-encoding (SIV-B): routing-only vs RIL-Blocks",
		Header: []string{"scheme", "attack", "DIPs", "result", "key correct"},
		Notes: []string{
			fmt.Sprintf("timeout=%v; 'key correct' verified against the oracle", cfg.Timeout),
		},
	}

	row := func(scheme, label string, iterations int, status attack.Status, correct string) []string {
		return []string{scheme, label, fmt.Sprintf("%d", iterations), status.String(), correct}
	}

	// The two locks are built once (cheap, deterministic); the four
	// attacks — the expensive part — run as sweep jobs. The oracles are
	// shared between the plain and one-hot attacks of each scheme,
	// which SimOracle's internal locking makes safe.
	rl, net, err := baselines.RoutingLock(orig, 8, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rlBound, err := rl.Netlist.BindInputs(rl.KeyPos, rl.Key)
	if err != nil {
		return nil, err
	}
	rlOracle, err := attack.NewSimOracle(rlBound)
	if err != nil {
		return nil, err
	}
	ril, err := core.Lock(orig, core.Options{Blocks: 2, Size: core.Size8x8x8, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rilBound, err := ril.ApplyKey(ril.Key)
	if err != nil {
		return nil, err
	}
	rilOracle, err := attack.NewSimOracle(rilBound)
	if err != nil {
		return nil, err
	}

	jobs := []sweep.Job{
		{Name: "onehot/routing/plain", Seed: cfg.Seed, Run: func(ctx context.Context, _ int64) (any, error) {
			plain, err := attack.SATAttack(rl.Netlist, rl.KeyPos, rlOracle,
				attack.SATOptions{Timeout: cfg.Timeout, Context: ctx})
			if err != nil {
				return nil, err
			}
			return row("routing-only 8x8", "plain SAT", plain.Iterations, plain.Status,
				verdict(rl.Netlist, rl.KeyPos, plain.Key, plain.Status, rlOracle)), nil
		}},
		{Name: "onehot/routing/onehot", Seed: cfg.Seed, Run: func(ctx context.Context, _ int64) (any, error) {
			hints := []attack.RoutingHint{attack.HintFromRoutingNetwork(net.Width, net.InputNames, net.OutputNames, net.KeyPos)}
			oh, err := attack.SATAttackOneHot(rl.Netlist, rl.KeyPos, hints, rlOracle,
				attack.SATOptions{Timeout: cfg.Timeout, Context: ctx})
			if err != nil {
				return nil, err
			}
			ohKey := oh.Key
			if !oh.Realizable {
				ohKey = nil
			}
			return row("routing-only 8x8", "one-hot SAT", oh.SAT.Iterations, oh.SAT.Status,
				verdict(rl.Netlist, rl.KeyPos, ohKey, oh.SAT.Status, rlOracle)), nil
		}},
		{Name: "onehot/ril/plain", Seed: cfg.Seed, Run: func(ctx context.Context, _ int64) (any, error) {
			plain2, err := attack.SATAttack(ril.Locked, ril.KeyInputPos, rilOracle,
				attack.SATOptions{Timeout: cfg.Timeout, Context: ctx})
			if err != nil {
				return nil, err
			}
			return row("RIL 2x 8x8x8", "plain SAT", plain2.Iterations, plain2.Status,
				verdict(ril.Locked, ril.KeyInputPos, plain2.Key, plain2.Status, rilOracle)), nil
		}},
		{Name: "onehot/ril/onehot", Seed: cfg.Seed, Run: func(ctx context.Context, _ int64) (any, error) {
			oh2, err := attack.SATAttackOneHot(ril.Locked, ril.KeyInputPos, attack.HintsFromRIL(ril), rilOracle,
				attack.SATOptions{Timeout: cfg.Timeout, Context: ctx})
			if err != nil {
				return nil, err
			}
			oh2Key := oh2.Key
			if !oh2.Realizable {
				oh2Key = nil
			}
			return row("RIL 2x 8x8x8", "one-hot SAT", oh2.SAT.Iterations, oh2.SAT.Status,
				verdict(ril.Locked, ril.KeyInputPos, oh2Key, oh2.SAT.Status, rilOracle)), nil
		}},
	}
	results, err := runSweep(cfg, "onehot", jobs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		row, err := cellValue[[]string](res)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Sensitization compares the key-sensitization attack (the paper's
// reference [1] family) on XOR locking vs RIL-Blocks: golden patterns
// leak isolated key bits; the MUX lattice entangles every RIL key bit
// with the rest.
func Sensitization(cfg AttackConfig) (*Table, error) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "sens", Inputs: 16, Outputs: 8,
		Gates: int(1500 * cfg.Scale), Locality: 0.6,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Key sensitization: golden-pattern leakage, XOR locking vs RIL-Blocks",
		Header: []string{"scheme", "key bits", "resolved", "oracle queries"},
	}
	xor, err := baselines.XORLock(orig, 10, cfg.Seed)
	if err != nil {
		return nil, err
	}
	xb, err := xor.Netlist.BindInputs(xor.KeyPos, xor.Key)
	if err != nil {
		return nil, err
	}
	xOracle, err := attack.NewSimOracle(xb)
	if err != nil {
		return nil, err
	}
	xr, err := attack.Sensitize(xor.Netlist, xor.KeyPos, xOracle, 16, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	t.AddRow("XOR lock", fmt.Sprintf("%d", xor.KeyBits()),
		fmt.Sprintf("%d", xr.Resolved), fmt.Sprintf("%d", xr.Queries))

	ril, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size8x8, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rb, err := ril.ApplyKey(ril.Key)
	if err != nil {
		return nil, err
	}
	rOracle, err := attack.NewSimOracle(rb)
	if err != nil {
		return nil, err
	}
	rr, err := attack.Sensitize(ril.Locked, ril.KeyInputPos, rOracle, 4, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	t.AddRow("RIL 8x8", fmt.Sprintf("%d", ril.KeyBits()),
		fmt.Sprintf("%d", rr.Resolved), fmt.Sprintf("%d", rr.Queries))
	return t, nil
}

// verdict renders whether a recovered key matches the oracle. The
// 8×64 validation patterns run against a private clone of the attack
// oracle, never the oracle itself: the attack oracles here are shared
// across sweep jobs, and their Queries() counters must keep reporting
// attack queries only (pinned by TestVerdictLeavesAttackOracleCounts).
func verdict(locked *netlist.Netlist, keyPos []int, key []bool, status attack.Status, oracle attack.Oracle) string {
	if status != attack.KeyFound || key == nil {
		return "-"
	}
	vo := oracle
	if so, ok := oracle.(*attack.SimOracle); ok {
		clone, err := so.Clone()
		if err != nil {
			return "no"
		}
		vo = clone
	}
	e, err := attack.VerifyKey(locked, keyPos, key, vo, 8, 1)
	if err != nil || e > 0 {
		return "no"
	}
	return "yes"
}

// DynamicMorphing runs the SAT attack against a device that morphs
// every `epochQueries` oracle queries, reporting whether the attack
// obtained a functionally correct key (the paper's ultimate dynamic-
// obfuscation claim, §IV-B).
func DynamicMorphing(cfg AttackConfig, epochQueries int) (*Table, error) {
	prof, _ := circuit.ProfileByName("c7552")
	orig, err := prof.Synthesize(cfg.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Dynamic morphing vs SAT attack (scan-mode oracle morphs during the attack)",
		Header: []string{"mode", "DIPs", "oracle queries", "epochs", "result", "functional key?"},
	}

	run := func(label string, dynamic bool) error {
		res, err := core.Lock(orig, core.Options{
			Blocks: 1, Size: core.Size8x8, Seed: cfg.Seed, ScanEnable: true,
		})
		if err != nil {
			return err
		}
		var oracle attack.Oracle
		var dyn *core.DynamicOracle
		if dynamic {
			dyn, err = core.NewDynamicOracle(res, epochQueries, cfg.Seed)
			if err != nil {
				return err
			}
			oracle = dyn
		} else {
			sv, err := res.ScanView()
			if err != nil {
				return err
			}
			bound, err := sv.BindInputs(res.KeyInputPos, res.Key)
			if err != nil {
				return err
			}
			oracle, err = attack.NewSimOracle(bound)
			if err != nil {
				return err
			}
		}
		ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
			attack.SATOptions{Timeout: cfg.Timeout})
		if err != nil {
			return err
		}
		// Snapshot before key validation: the column must report what
		// the attack spent, not the validation patterns (which run
		// against a separate functional oracle below anyway).
		attackQueries := oracle.Queries()
		funcKey := "no"
		if ar.Status == attack.KeyFound {
			fBound, err := res.ApplyKey(res.Key)
			if err != nil {
				return err
			}
			funcOracle, err := attack.NewSimOracle(fBound)
			if err != nil {
				return err
			}
			e, err := attack.VerifyKey(res.Locked, res.KeyInputPos, ar.Key, funcOracle, 8, cfg.Seed)
			if err != nil {
				return err
			}
			if e == 0 {
				funcKey = "yes"
			}
		}
		epochs := "0"
		if dyn != nil {
			epochs = fmt.Sprintf("%d", dyn.Epochs())
		}
		t.AddRow(label, fmt.Sprintf("%d", ar.Iterations), fmt.Sprintf("%d", attackQueries),
			epochs, ar.Status.String(), funcKey)
		return nil
	}
	if err := run("static scan oracle", false); err != nil {
		return nil, err
	}
	if err := run(fmt.Sprintf("morphing every %d queries", epochQueries), true); err != nil {
		return nil, err
	}
	return t, nil
}
