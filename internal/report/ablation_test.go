package report

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	cfg := fastCfg()
	cfg.Timeout = time.Second
	tb, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("ablation rows = %d, want 5", len(tb.Rows))
	}
	// The LUT-only rows must be solved; the hardest row must not be
	// easier than the easiest.
	if tb.Rows[0][4] != "key-found" {
		t.Errorf("plain LUT-lock should fall: %v", tb.Rows[0])
	}
	if tb.Rows[4][4] == "key-found" && tb.Rows[0][4] != "key-found" {
		t.Errorf("3x 8x8x8 easier than LUT-only:\n%s", tb.String())
	}
}

func TestOneHotEncodingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("one-hot sweep in -short mode")
	}
	cfg := fastCfg()
	cfg.Scale = 0.1
	cfg.Timeout = 2 * time.Second
	tb, err := OneHotEncoding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("one-hot rows = %d, want 4", len(tb.Rows))
	}
	// Row 1: one-hot attack on the routing-only lock must succeed with
	// a correct key.
	if tb.Rows[1][3] != "key-found" || tb.Rows[1][4] != "yes" {
		t.Errorf("one-hot attack failed on routing-only lock:\n%s", tb.String())
	}
}

func TestDynamicMorphingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic sweep in -short mode")
	}
	cfg := fastCfg()
	cfg.Timeout = 3 * time.Second
	tb, err := DynamicMorphing(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("dynamic rows = %d, want 2", len(tb.Rows))
	}
	// Neither oracle mode may yield a functionally correct key.
	for _, row := range tb.Rows {
		if row[5] == "yes" {
			t.Errorf("attack recovered a functional key through the scan oracle:\n%s", tb.String())
		}
	}
	// The "oracle queries" column reports attack queries only: at
	// least one per DIP, snapshotted before key validation.
	for _, row := range tb.Rows {
		dips, err1 := strconv.Atoi(row[1])
		queries, err2 := strconv.Atoi(row[2])
		if err1 != nil || err2 != nil || queries < dips {
			t.Errorf("oracle-query column %q inconsistent with %q DIPs: %v", row[2], row[1], row)
		}
	}
	// The morphing row must have advanced at least one epoch unless the
	// attack finished immediately.
	if tb.Rows[1][3] == "0" && !strings.Contains(tb.Rows[1][4], "key-found") {
		t.Logf("no morph epochs elapsed: %v", tb.Rows[1])
	}
}
