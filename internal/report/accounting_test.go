package report

import (
	"os"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/netlist"
)

// TestVerdictLeavesAttackOracleCounts pins the query-count accounting
// contract on the real ISCAS-85 c17: the attack oracle's Queries()
// reports attack queries only. verdict's 8×64 validation patterns run
// against a clone and must not land on the attack oracle's counter,
// which for the exact attack equals the DIP count exactly.
func TestVerdictLeavesAttackOracleCounts(t *testing.T) {
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig, err := netlist.ParseBench("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Lock(orig, core.Options{Blocks: 1, Size: core.Size2x2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
		attack.SATOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Status != attack.KeyFound {
		t.Fatalf("attack did not converge: %v", ar)
	}

	attackQueries := oracle.Queries()
	if attackQueries != ar.Iterations {
		t.Errorf("attack spent %d queries over %d DIPs; the exact attack pays one query per DIP",
			attackQueries, ar.Iterations)
	}
	// Recorded envelope for c17/2x2/seed 17: 7 DIPs, 7 queries (same
	// bound as internal/attack's TestOracleQueryCountC17).
	if attackQueries < 3 || attackQueries > 14 {
		t.Errorf("attack query count %d outside recorded envelope [3, 14]", attackQueries)
	}

	if v := verdict(res.Locked, res.KeyInputPos, ar.Key, ar.Status, oracle); v != "yes" {
		t.Errorf("verdict = %q for a correct recovered key, want yes", v)
	}
	if got := oracle.Queries(); got != attackQueries {
		t.Errorf("key validation leaked %d queries onto the attack oracle (%d -> %d); the oracle-query columns must report attack queries only",
			got-attackQueries, attackQueries, got)
	}
}
