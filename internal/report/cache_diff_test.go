package report

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sat"
)

// TestCacheDifferentialSweep is the issue's headline differential
// test: run the SAT-runtime report sweep over c17 (the genuine
// ISCAS-85 netlist) and c432 cold, then re-run it warm against a
// *reopened* cache directory. The warm run must emit byte-identical
// JSON while issuing zero oracle queries and zero solver calls — the
// whole report is answered from authenticated cache entries.
func TestCacheDifferentialSweep(t *testing.T) {
	f, err := os.Open("../../testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	c17, err := netlist.ParseBench("c17", f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		t.Fatal("missing c432 profile")
	}
	c432, err := prof.Synthesize(0.25)
	if err != nil {
		t.Fatal(err)
	}
	bench := []*netlist.Netlist{c17, c432}

	dir := t.TempDir()
	runOnce := func(c *cache.Cache) []byte {
		t.Helper()
		cfg := AttackConfig{Timeout: 500 * time.Millisecond, Scale: 0.25, Seed: 3, Jobs: 2, Cache: c}
		var out bytes.Buffer
		for _, nl := range bench {
			tbl, err := SATRuntimeTable(cfg, nl, []int{1, 2}, []core.Size{core.Size2x2, core.Size8x8})
			if err != nil {
				t.Fatal(err)
			}
			enc := json.NewEncoder(&out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tbl); err != nil {
				t.Fatal(err)
			}
		}
		return out.Bytes()
	}

	cold, err := cache.Open(dir, cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldOut := runOnce(cold)
	if s := cold.Stats(); s.Puts == 0 || s.Hits != 0 {
		t.Fatalf("cold run stats %+v: want only misses and stores", s)
	}

	// Reopen: the warm run must authenticate entries written by the
	// "previous process" using the persisted master key.
	warm, err := cache.Open(dir, cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q0, s0 := attack.OracleQueriesTotal(), sat.SolveCallsTotal()
	warmOut := runOnce(warm)
	dq, ds := attack.OracleQueriesTotal()-q0, sat.SolveCallsTotal()-s0
	if dq != 0 {
		t.Errorf("warm run issued %d oracle queries, want 0", dq)
	}
	if ds != 0 {
		t.Errorf("warm run issued %d solver calls, want 0", ds)
	}
	if !bytes.Equal(coldOut, warmOut) {
		t.Errorf("warm JSON differs from cold JSON:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	st := warm.Stats()
	if st.Misses != 0 || st.Invalidations != 0 {
		t.Errorf("warm run stats %+v: want pure hits", st)
	}
	wantCells := int64(len(bench) * 2 * 2) // 2 counts x 2 sizes per circuit
	if st.Hits != wantCells {
		t.Errorf("warm run hit %d cells, want %d", st.Hits, wantCells)
	}
}

// TestCacheTamperRecompute: damaging one entry of a warmed report
// cache degrades exactly that cell to a recompute — the table keeps
// its shape (the cell's measured runtime is legitimately re-measured,
// so only pure-hit runs are byte-identical) and the damaged entry is
// rewritten, making the next run a pure hit again.
func TestCacheTamperRecompute(t *testing.T) {
	prof, ok := circuit.ProfileByName("c432")
	if !ok {
		t.Fatal("missing c432 profile")
	}
	orig, err := prof.Synthesize(0.25)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c, err := cache.Open(dir, cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := AttackConfig{Timeout: 500 * time.Millisecond, Scale: 0.25, Seed: 3, Jobs: 1, Cache: c}
	counts, sizes := []int{1}, []core.Size{core.Size2x2}
	cold, err := SATRuntimeTable(cfg, orig, counts, sizes)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the single entry file.
	var entry string
	err = walkFiles(dir+"/entries", func(path string) { entry = path })
	if err != nil || entry == "" {
		t.Fatalf("no entry file found (err=%v)", err)
	}
	raw, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x80
	if err := os.WriteFile(entry, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := SATRuntimeTable(cfg, orig, counts, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Title != cold.Title || len(warm.Rows) != len(cold.Rows) ||
		len(warm.Rows[0]) != len(cold.Rows[0]) || warm.Rows[0][1] == "n/a" {
		t.Fatalf("recomputed table lost its shape: %+v vs %+v", warm, cold)
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("stats %+v: want exactly one invalidation", st)
	}
	// The recompute re-stored the entry: a third run is a pure hit.
	pre := c.Stats().Hits
	if _, err := SATRuntimeTable(cfg, orig, counts, sizes); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != pre+1 {
		t.Fatalf("recomputed entry was not rewritten (hits %d -> %d)", pre, c.Stats().Hits)
	}
}

func walkFiles(root string, fn func(path string)) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		p := root + "/" + e.Name()
		if e.IsDir() {
			if err := walkFiles(p, fn); err != nil {
				return err
			}
			continue
		}
		fn(p)
	}
	return nil
}
