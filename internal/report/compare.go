package report

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/attack"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/lutsim"
	"repro/internal/mtj"
	"repro/internal/netlist"
	"repro/internal/psca"
	"repro/internal/sweep"
)

// Fig1 reproduces the Fig. 1 observation: re-encoding a MESO
// polymorphic gate (8 gates + 7 MUXes, 3 key bits) as a 2-input LUT
// (3 MUXes, 4 key bits) significantly reduces SAT-attack runtime even
// though the key space grows.
func Fig1(cfg AttackConfig, nGates int) (*Table, error) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "fig1", Inputs: 16, Outputs: 8,
		Gates: int(2000 * cfg.Scale), Locality: 0.7,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 1: SAT-attack runtime, MESO encoding vs LUT-2 re-encoding (same gates)",
		Header: []string{"encoding", "key bits", "extra gates", "DIPs", "runtime (s)"},
	}
	run := func(l *baselines.Locked, err error) error {
		if err != nil {
			return err
		}
		bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
		if err != nil {
			return err
		}
		oracle, err := attack.NewSimOracle(bound)
		if err != nil {
			return err
		}
		res, err := attack.SATAttack(l.Netlist, l.KeyPos, oracle, attack.SATOptions{Timeout: cfg.Timeout})
		if err != nil {
			return err
		}
		rt := fmtDuration(res.Elapsed, res.Status != attack.KeyFound)
		t.AddRow(l.Scheme,
			fmt.Sprintf("%d", l.KeyBits()),
			fmt.Sprintf("%d", l.Netlist.NumLogicGates()-orig.NumLogicGates()),
			fmt.Sprintf("%d", res.Iterations),
			rt)
		return nil
	}
	if err := run(baselines.MESOLock(orig, nGates, cfg.Seed)); err != nil {
		return nil, err
	}
	if err := run(baselines.MESOAsLUT2(orig, nGates, cfg.Seed)); err != nil {
		return nil, err
	}
	return t, nil
}

// Table5 reproduces the paper's comparison matrix: which schemes
// resist which attacks. Every cell is measured by actually running the
// attack on a small locked instance (not transcribed from the paper).
// Marks: "Y" resilient, "x" broken, "-" not applicable.
func Table5(cfg AttackConfig) (*Table, error) {
	gates := int(2500 * cfg.Scale)
	if gates < 500 {
		gates = 500 // two 8x8x8 blocks need enough compatible gates
	}
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "tbl5", Inputs: 14, Outputs: 6,
		Gates: gates, Locality: 0.6,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type scheme struct {
		name string
		lock *baselines.Locked
		ril  *core.Result // non-nil for the proposed scheme
		mram bool         // key storage is complementary-MRAM
	}
	var schemes []scheme
	addErr := func(name string, l *baselines.Locked, err error, mram bool) error {
		if err != nil {
			return fmt.Errorf("report: %s: %w", name, err)
		}
		schemes = append(schemes, scheme{name: name, lock: l, mram: mram})
		return nil
	}
	if l, err := baselines.SFLLHD(orig, 12, 0, cfg.Seed); err != nil {
		return nil, err
	} else if err := addErr("SFLL-HD", l, nil, false); err != nil {
		return nil, err
	}
	if l, err := baselines.MESOLock(orig, 4, cfg.Seed); err != nil {
		return nil, err
	} else if err := addErr("MESO", l, nil, false); err != nil {
		return nil, err
	}
	if l, err := baselines.CASLock(orig, 8, cfg.Seed); err != nil {
		return nil, err
	} else if err := addErr("CAS-Lock", l, nil, false); err != nil {
		return nil, err
	}
	if l, err := baselines.LUTLock(orig, 6, cfg.Seed); err != nil {
		return nil, err
	} else if err := addErr("LUT-lock", l, nil, false); err != nil {
		return nil, err
	}
	if l, err := baselines.XORLock(orig, 10, cfg.Seed); err != nil {
		return nil, err
	} else if err := addErr("XOR", l, nil, false); err != nil {
		return nil, err
	}
	// The proposed scheme, with scan-enable obfuscation.
	rilRes, err := core.Lock(orig, core.Options{
		Blocks: 2, Size: core.Size8x8x8, Seed: cfg.Seed, ScanEnable: true,
	})
	if err != nil {
		return nil, err
	}
	schemes = append(schemes, scheme{
		name: "RIL (proposed)",
		lock: &baselines.Locked{
			Scheme:  "ril",
			Netlist: rilRes.Locked,
			KeyPos:  rilRes.KeyInputPos,
			Key:     rilRes.Key,
		},
		ril:  rilRes,
		mram: true,
	})

	t := &Table{
		Title:  "Table V: measured attack resilience (Y resilient, x broken, - n/a)",
		Header: []string{"attack"},
		Notes: []string{
			fmt.Sprintf("scale=%.2f timeout=%v; every cell is a live attack run", cfg.Scale, cfg.Timeout),
			"SAT resilience = timeout or exponential DIP growth in the key length",
		},
	}
	for _, s := range schemes {
		t.Header = append(t.Header, s.name)
	}

	oracleOf := func(s scheme) (attack.Oracle, error) {
		bound, err := s.lock.Netlist.BindInputs(s.lock.KeyPos, s.lock.Key)
		if err != nil {
			return nil, err
		}
		return attack.NewSimOracle(bound)
	}

	// Row: SAT attack.
	satRow := []string{"SAT attack"}
	for _, s := range schemes {
		oracle, err := oracleOf(s)
		if err != nil {
			return nil, err
		}
		res, err := attack.SATAttack(s.lock.Netlist, s.lock.KeyPos, oracle, attack.SATOptions{Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		// Resilient when the attack times out or the DIP count grows
		// exponentially in the key width (point-function behaviour).
		threshold := 1 << min(s.lock.KeyBits()/2, 20)
		resilient := res.Status != attack.KeyFound || res.Iterations >= threshold
		satRow = append(satRow, mark(resilient))
	}
	t.AddRow(satRow...)

	// Row: AppSAT (against the scan oracle for the proposed scheme).
	appRow := []string{"AppSAT"}
	for _, s := range schemes {
		var oracle attack.Oracle
		var err error
		if s.ril != nil {
			sv, err2 := s.ril.ScanView()
			if err2 != nil {
				return nil, err2
			}
			svBound, err2 := sv.BindInputs(s.ril.KeyInputPos, s.ril.Key)
			if err2 != nil {
				return nil, err2
			}
			oracle, err = attack.NewSimOracle(svBound)
		} else {
			oracle, err = oracleOf(s)
		}
		if err != nil {
			return nil, err
		}
		opt := attack.DefaultAppSAT()
		opt.Timeout = cfg.Timeout
		opt.MaxRounds = 16
		ar, err := attack.AppSAT(s.lock.Netlist, s.lock.KeyPos, oracle, opt)
		if err != nil {
			return nil, err
		}
		broken := false
		if ar.Status == attack.KeyFound {
			// Point-function corruption is a needle random sampling
			// misses; require a SAT proof that the recovered key's
			// circuit equals the activated one.
			cand, err := s.lock.Netlist.BindInputs(s.lock.KeyPos, ar.Key)
			if err != nil {
				return nil, err
			}
			truth, err := s.lock.Netlist.BindInputs(s.lock.KeyPos, s.lock.Key)
			if err != nil {
				return nil, err
			}
			eq, _, err := attack.EquivalentSAT(cand, truth, cfg.Timeout)
			if err != nil {
				eq = false // undecided: attacker cannot confirm either
			}
			broken = eq
		}
		appRow = append(appRow, mark(!broken))
	}
	t.AddRow(appRow...)

	// Row: power side channel — CPA on the scheme's key-storage cell
	// technology (complementary MRAM for the proposed scheme, CMOS/SRAM
	// for the rest).
	pscaRow := []string{"Power side channel"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, s := range schemes {
		var traces []psca.Trace
		if s.mram {
			l := lutsim.Sample(lutsim.DefaultConfig(), mtj.DefaultVariation(), lutsim.DefaultMOSVariation(), rng)
			l.Configure(logic.AND)
			traces = psca.CollectMRAM(l, 300, 0.05, rng.Int63())
		} else {
			sr := lutsim.SampleSRAM(lutsim.DefaultConfig(), lutsim.DefaultMOSVariation(), rng)
			sr.Configure(logic.AND)
			traces = psca.CollectSRAM(sr, 300, 0.05, rng.Int63())
		}
		cpa, err := psca.CPA(traces)
		if err != nil {
			return nil, err
		}
		pscaRow = append(pscaRow, mark(!cpa.Recovered(logic.AND)))
	}
	t.AddRow(pscaRow...)

	// Row: removal attack — the structural bypass strips key-dependent
	// flip logic; the scheme is broken when the stripped circuit is
	// provably equivalent to the activated oracle.
	remRow := []string{"Removal attack"}
	for _, s := range schemes {
		stripped, err := attack.StructuralRemoval(s.lock.Netlist, s.lock.KeyPos, cfg.Seed)
		if err != nil {
			return nil, err
		}
		bound, err := s.lock.Netlist.BindInputs(s.lock.KeyPos, s.lock.Key)
		if err != nil {
			return nil, err
		}
		eq, _, err := attack.EquivalentSAT(stripped, bound, cfg.Timeout)
		if err != nil {
			// Equivalence undecided within the timeout: the attacker
			// cannot confirm a recovery either.
			eq = false
		}
		remRow = append(remRow, mark(!eq))
	}
	t.AddRow(remRow...)

	// Row: ScanSAT — only meaningful for scan-obfuscated designs.
	scanRow := []string{"ScanSAT"}
	for _, s := range schemes {
		if s.ril == nil {
			scanRow = append(scanRow, "-")
			continue
		}
		sv, err := s.ril.ScanView()
		if err != nil {
			return nil, err
		}
		svBound, err := sv.BindInputs(s.ril.KeyInputPos, s.ril.Key)
		if err != nil {
			return nil, err
		}
		scanOracle, err := attack.NewSimOracle(svBound)
		if err != nil {
			return nil, err
		}
		funcOracle, err := oracleOf(s)
		if err != nil {
			return nil, err
		}
		var luts []string
		for _, blk := range s.ril.Blocks {
			luts = append(luts, blk.LUTOut...)
		}
		sr, err := attack.ScanSAT(s.lock.Netlist, s.lock.KeyPos, luts, scanOracle, funcOracle,
			attack.SATOptions{Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		scanRow = append(scanRow, mark(sr.Defeated))
	}
	t.AddRow(scanRow...)

	// Row: shift-and-scan — the proposed scheme keeps key registers on
	// a separate secure-cell chain with a gated scan-out (§IV-C); the
	// attack model measures how many key bits leak beyond guessing.
	shiftRow := []string{"Shift and scan"}
	for _, s := range schemes {
		if s.ril == nil {
			shiftRow = append(shiftRow, "-")
			continue
		}
		learned, err := core.ShiftAndScanAttack(s.ril, cfg.Seed)
		if err != nil {
			return nil, err
		}
		shiftRow = append(shiftRow, mark(learned == 0))
	}
	t.AddRow(shiftRow...)

	return t, nil
}

func mark(resilient bool) string {
	if resilient {
		return "Y"
	}
	return "x"
}

// DIPGrowth measures SAT-attack DIP counts versus key width for a
// point-function scheme and random locking — the exponential-vs-linear
// contrast behind the paper's SAT-hardness discussion.
func DIPGrowth(cfg AttackConfig, widths []int) (*Table, error) {
	orig, err := netlist.Random(netlist.RandomProfile{
		Name: "dip", Inputs: 16, Outputs: 6, Gates: 120, Locality: 0.6,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "DIP growth vs key width: point function (SARLock) vs random XOR locking",
		Header: []string{"key bits", "sarlock DIPs", "xor DIPs"},
	}
	// One sweep job per (width, scheme) cell.
	type lockFn func() (*baselines.Locked, error)
	var jobs []sweep.Job
	for _, w := range widths {
		w := w
		for _, mk := range []struct {
			scheme string
			lock   lockFn
		}{
			{"sarlock", func() (*baselines.Locked, error) { return baselines.SARLock(orig, w, cfg.Seed) }},
			{"xor", func() (*baselines.Locked, error) { return baselines.XORLock(orig, w, cfg.Seed) }},
		} {
			mk := mk
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("dip/%s/%d", mk.scheme, w),
				Seed: cfg.Seed,
				// The cell runs under its own fixed 30s solver budget, so
				// the key pins that too (cellKey already folds cfg.Timeout,
				// which this cell ignores; over-keying only costs hits).
				CacheKey: cellKey(cfg, "dip-growth-cell", orig,
					map[string]any{"scheme": mk.scheme, "width": w, "solver_timeout": "30s"}),
				Run: func(ctx context.Context, _ int64) (any, error) {
					l, err := mk.lock()
					if err != nil {
						return nil, err
					}
					bound, err := l.Netlist.BindInputs(l.KeyPos, l.Key)
					if err != nil {
						return nil, err
					}
					oracle, err := attack.NewSimOracle(bound)
					if err != nil {
						return nil, err
					}
					res, err := attack.SATAttack(l.Netlist, l.KeyPos, oracle,
						attack.SATOptions{Timeout: 30 * time.Second, Context: ctx})
					if err != nil {
						return nil, err
					}
					return fmt.Sprintf("%d", res.Iterations), nil
				},
			})
		}
	}
	results, err := runSweep(cfg, "dipgrowth", jobs)
	if err != nil {
		return nil, err
	}
	for i, w := range widths {
		ril, err := cellValue[string](results[2*i])
		if err != nil {
			return nil, err
		}
		xor, err := cellValue[string](results[2*i+1])
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", w), ril, xor)
	}
	return t, nil
}
