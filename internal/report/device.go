package report

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/lutsim"
	"repro/internal/mtj"
	"repro/internal/psca"
)

// Table4 reproduces paper Table IV: read/write/standby energies of the
// MRAM LUT for logic 0, logic 1 and the average, measured on a lightly
// mismatched instance (as fabricated silicon would be).
func Table4(seed int64) (*Table, error) {
	cfg := lutsim.DefaultConfig()
	rng := rand.New(rand.NewSource(seed))
	l := lutsim.Sample(cfg, mtj.DefaultVariation(), lutsim.DefaultMOSVariation(), rng)
	rows, err := lutsim.EnergyTableFrom(l, logic.AND)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table IV: energy consumption of the MRAM-based LUT",
		Header: []string{"", "read", "write", "standby"},
	}
	for _, r := range rows {
		t.AddRow(r.Label, fmtJoule(r.Read), fmtJoule(r.Write), fmtJoule(r.Standby))
	}
	t.Notes = append(t.Notes,
		"paper: read 12.48fJ, write 34.69fJ, standby 36.90aJ (average row)")
	return t, nil
}

// Fig5 reproduces the transient waveforms (AND -> NOR reconfiguration
// with scan-enable update) and writes them as CSV.
func Fig5(w io.Writer) error {
	wave, err := lutsim.Transient(lutsim.DefaultConfig())
	if err != nil {
		return err
	}
	return wave.WriteCSV(w)
}

// Fig6 reproduces the Monte-Carlo distributions of Fig. 6: read
// current, read power, and MTJ resistances over `instances` PV samples
// of an AND-configured LUT.
func Fig6(instances int, seed int64) (*Table, *lutsim.MCResult) {
	res := lutsim.MonteCarlo(lutsim.DefaultConfig(), logic.AND, instances, seed)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 6: %d-instance Monte Carlo of the 2-input MRAM LUT (AND)", instances),
		Header: []string{"quantity", "mean", "sigma", "min", "max"},
	}
	add := func(name, unit string, scale float64, d lutsim.Distribution) {
		t.AddRow(name,
			fmt.Sprintf("%.3f%s", d.Mean*scale, unit),
			fmt.Sprintf("%.3f%s", d.Sigma*scale, unit),
			fmt.Sprintf("%.3f%s", d.Min*scale, unit),
			fmt.Sprintf("%.3f%s", d.Max*scale, unit))
	}
	add("read current (0)", "uA", 1e6, res.ReadCurrent0)
	add("read current (1)", "uA", 1e6, res.ReadCurrent1)
	add("read power (0)", "uW", 1e6, res.ReadPower0)
	add("read power (1)", "uW", 1e6, res.ReadPower1)
	add("R_P", "kOhm", 1e-3, res.RP)
	add("R_AP", "kOhm", 1e-3, res.RAP)
	t.Notes = append(t.Notes,
		fmt.Sprintf("read errors %d/%d, write errors %d/%d", res.ReadErrors, res.ReadOps, res.WriteErrors, res.WriteOps),
		fmt.Sprintf("power distributions separated by %.3f sigma (P-SCA mitigation)", res.PowerOverlap()),
		fmt.Sprintf("R_AP/R_P margin separation %.2f (wide read margin)", res.MarginSeparation()),
	)
	return t, res
}

// PSCATable runs the §IV-D side-channel comparison: CPA key recovery
// rate and leakage statistics for SRAM vs MRAM LUTs.
func PSCATable(traces int, noise float64, seed int64) (*Table, error) {
	cfg := lutsim.DefaultConfig()
	funcs := []logic.Func2{logic.AND, logic.OR, logic.XOR, logic.NAND, logic.NOR, logic.XNOR}
	rng := rand.New(rand.NewSource(seed))

	t := &Table{
		Title:  fmt.Sprintf("P-SCA: CPA with %d traces, %.1f%% measurement noise", traces, noise*100),
		Header: []string{"target", "keys recovered", "mean |t|", "mean SNR"},
	}
	run := func(label string, mram bool) error {
		recovered := 0
		var tSum, snrSum float64
		for _, f := range funcs {
			var tr []psca.Trace
			if mram {
				l := lutsim.Sample(cfg, mtj.DefaultVariation(), lutsim.DefaultMOSVariation(), rng)
				for _, r := range l.Configure(f) {
					if r.Error {
						return fmt.Errorf("report: LUT configure failed")
					}
				}
				tr = psca.CollectMRAM(l, traces, noise, rng.Int63())
			} else {
				s := lutsim.SampleSRAM(cfg, lutsim.DefaultMOSVariation(), rng)
				s.Configure(f)
				tr = psca.CollectSRAM(s, traces, noise, rng.Int63())
			}
			cpa, err := psca.CPA(tr)
			if err != nil {
				return err
			}
			if cpa.Recovered(f) {
				recovered++
			}
			dpa, err := psca.DPA(tr, f)
			if err != nil {
				return err
			}
			tSum += dpa.TValue
			snrSum += psca.SNR(tr, f)
		}
		t.AddRow(label,
			fmt.Sprintf("%d/%d", recovered, len(funcs)),
			fmt.Sprintf("%.2f", tSum/float64(len(funcs))),
			fmt.Sprintf("%.4f", snrSum/float64(len(funcs))))
		return nil
	}
	if err := run("SRAM LUT", false); err != nil {
		return nil, err
	}
	if err := run("MRAM LUT", true); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper claim: complementary MTJ sensing leaves CPA at guess level")
	return t, nil
}
