package report

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/netlint"
	"repro/internal/netlist"
	"repro/internal/sweep"
)

// AttackConfig scales the SAT experiments to the host machine: the
// paper ran a 5-day timeout on full-size benchmarks; the reproduction
// defaults to seconds on scaled circuits, preserving the shape (which
// configurations reach the timeout first).
type AttackConfig struct {
	Timeout time.Duration
	Scale   float64 // circuit scale factor for the ISCAS profiles (0,1]
	Seed    int64
	NoLint  bool // skip the netlint gate on freshly locked circuits
	// Jobs is the sweep worker count for attack tables (0 = NumCPU,
	// 1 = sequential). Per-job seeds are fixed per table cell, so the
	// emitted tables are identical for every Jobs value.
	Jobs int
	// Context cancels a running table sweep early (nil = none).
	Context context.Context
	// CheckpointDir, when set, persists every table sweep's per-job
	// completions under <CheckpointDir>/<table-scope>/manifest.json so
	// a killed run can resume. Resume loads those manifests and skips
	// the jobs they record done; a corrupt manifest degrades to
	// re-running that table from scratch.
	CheckpointDir string
	Resume        bool
	// Portfolio, when >= 2, races that many diversified CDCL workers
	// per solver call in the attack tables (see attack.SATOptions).
	// Runtimes become trace-nondeterministic; DIP/query counts may vary
	// between runs, the verdicts do not.
	Portfolio int
	// Cache, when non-nil, memoizes table cells across runs in the
	// content-addressed result cache: each sweep job is keyed by the
	// canonical circuit form plus every option that determines its
	// cell, looked up before dispatch and stored on success. A warm
	// re-run of an identical table emits byte-identical output with
	// zero oracle queries and zero solver calls.
	Cache *cache.Cache
}

// DefaultAttackConfig is sized for an interactive run.
func DefaultAttackConfig() AttackConfig {
	return AttackConfig{Timeout: 2 * time.Second, Scale: 0.25, Seed: 1}
}

// runSweep executes the table's attack jobs on the sweep worker pool
// and fails the whole table on the first job error (matching the
// sequential error behaviour the tables had before parallelization).
// The scope names the table's private checkpoint subdirectory when
// AttackConfig.CheckpointDir is set; distinct tables must use distinct
// scopes so their manifests never clobber each other.
func runSweep(cfg AttackConfig, scope string, jobs []sweep.Job) ([]sweep.Result, error) {
	r := &sweep.Runner{Workers: cfg.Jobs, Cache: cfg.Cache}
	if cfg.CheckpointDir != "" {
		dir := filepath.Join(cfg.CheckpointDir, scope)
		var ckpt *sweep.Checkpoint
		var err error
		if cfg.Resume {
			ckpt, err = sweep.ResumeCheckpoint(dir)
		} else {
			ckpt, err = sweep.NewCheckpoint(dir)
		}
		if err != nil {
			return nil, err
		}
		r.Checkpoint = ckpt
	}
	results := r.Run(cfg.Context, jobs)
	if err := sweep.FirstErr(results); err != nil {
		return nil, err
	}
	return results, nil
}

// cellValue decodes one sweep result's table payload of type T. A live
// job returns T directly; a job skipped on resume carries the
// manifest's recorded JSON instead, which decodes back into T.
func cellValue[T any](res sweep.Result) (T, error) {
	var zero T
	if v, ok := res.Value.(T); ok {
		return v, nil
	}
	raw, ok := res.Value.(json.RawMessage)
	if !ok {
		return zero, fmt.Errorf("report: job %q result is %T, want %T", res.Name, res.Value, zero)
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		return zero, fmt.Errorf("report: job %q checkpointed result: %w", res.Name, err)
	}
	return v, nil
}

// scopeSlug renders a circuit name as a checkpoint/cache scope
// component: lower-case alphanumerics with runs of anything else
// collapsed to '-', so "testdata/c17.bench" and "c432" both produce a
// single safe path element.
func scopeSlug(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// cellKey derives the content-addressed cache key for one attack-table
// cell. Everything that determines the cell's value is folded in: the
// circuit's canonical netlist form, the cell options (block count, LUT
// size, ...), and the AttackConfig knobs that change the outcome
// (timeout, portfolio, the lint gate, the lock seed). It returns the
// zero Key — which opts the job out of caching — when cfg.Cache is nil
// or the key cannot be built, so callers can assign it unconditionally.
func cellKey(cfg AttackConfig, kind string, orig *netlist.Netlist, opts map[string]any) cache.Key {
	if cfg.Cache == nil {
		return cache.Key{}
	}
	k, err := cache.NewKey(kind).
		Netlist("circuit", orig).
		Options("cell", opts).
		Options("attack", map[string]any{
			"timeout":   cfg.Timeout.Nanoseconds(),
			"portfolio": cfg.Portfolio,
			"nolint":    cfg.NoLint,
		}).
		Int("seed", cfg.Seed).
		Key()
	if err != nil {
		return cache.Key{}
	}
	return k
}

// lintLock gates every experiment on a structurally sound, full-
// strength lock: a cycle, an undriven net or dead key material would
// silently skew the reported SAT-hardness numbers (the nominal key
// length would overstate the search space). Overridable for
// deliberately broken configurations via AttackConfig.NoLint.
func lintLock(res *core.Result, cfg AttackConfig) error {
	if cfg.NoLint {
		return nil
	}
	key := make(map[string]bool, len(res.Key))
	for i, name := range res.KeyNames {
		key[name] = res.Key[i]
	}
	diags, err := netlint.Check(res.Locked, netlint.Options{Key: key},
		netlint.CombCycle, netlint.Undriven, netlint.KeyInfluence, netlint.ConstLUT)
	if err != nil {
		return err
	}
	if len(diags) > 0 {
		return fmt.Errorf("report: locked %s fails netlint: %s", res.Locked.Name, diags[0])
	}
	return nil
}

// lockAndAttack locks the circuit and runs the SAT attack against an
// honest oracle (static operational mode, paper Table I/III). The
// context cancels the attack mid-solve; the seed fixes the lock, so a
// given (circuit, blocks, size, seed) cell is reproducible no matter
// which sweep worker runs it.
func lockAndAttack(ctx context.Context, orig *netlist.Netlist, blocks int, size core.Size, cfg AttackConfig) (*attack.SATResult, error) {
	res, err := core.Lock(orig, core.Options{Blocks: blocks, Size: size, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := lintLock(res, cfg); err != nil {
		return nil, err
	}
	bound, err := res.ApplyKey(res.Key)
	if err != nil {
		return nil, err
	}
	oracle, err := attack.NewSimOracle(bound)
	if err != nil {
		return nil, err
	}
	return attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
		attack.SATOptions{Timeout: cfg.Timeout, Context: ctx, Portfolio: cfg.Portfolio})
}

// Table1 reproduces paper Table I: SAT-attack runtime for c7552 locked
// with {counts} RIL-Blocks of sizes 2×2, 8×8 and 8×8×8.
func Table1(cfg AttackConfig, counts []int) (*Table, error) {
	prof, _ := circuit.ProfileByName("c7552")
	orig, err := prof.Synthesize(cfg.Scale)
	if err != nil {
		return nil, err
	}
	t, err := satRuntimeTable(cfg, "table1", orig, counts, nil)
	if err != nil {
		return nil, err
	}
	t.Title = "Table I: SAT-attack runtime (s) on c7552 vs RIL-Block count and size"
	return t, nil
}

// SATRuntimeTable renders the Table I layout for an arbitrary circuit:
// SAT-attack runtime for orig locked with each of {counts} RIL-Blocks
// of each size in sizes (nil = the paper's defaults). Table1 is this
// sweep specialized to c7552; the generalized form backs `rilbench
// -exp satruntime`, the cache differential suite and the warm/cold CI
// benchmark, which run the same sweep over small circuits such as c17.
func SATRuntimeTable(cfg AttackConfig, orig *netlist.Netlist, counts []int, sizes []core.Size) (*Table, error) {
	return satRuntimeTable(cfg, "satruntime-"+scopeSlug(orig.Name), orig, counts, sizes)
}

func satRuntimeTable(cfg AttackConfig, scope string, orig *netlist.Netlist, counts []int, sizes []core.Size) (*Table, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 3, 4, 5, 10, 25, 50, 75, 100}
	}
	if len(sizes) == 0 {
		sizes = []core.Size{core.Size2x2, core.Size8x8, core.Size8x8x8}
	}
	header := []string{"blocks"}
	for _, size := range sizes {
		header = append(header, size.String())
	}
	t := &Table{
		Title:  fmt.Sprintf("SAT-attack runtime (s) on %s vs RIL-Block count and size", orig.Name),
		Header: header,
		Notes: []string{
			fmt.Sprintf("scale=%.2f timeout=%v ('inf' = timeout, 'n/a' = circuit cannot host the blocks)", cfg.Scale, cfg.Timeout),
		},
	}
	// One sweep job per (block count, size) cell. A cell whose lock
	// fails renders "n/a" (some circuits cannot host the blocks), so
	// lock errors stay cell-local instead of failing the table.
	var jobs []sweep.Job
	for _, n := range counts {
		for _, size := range sizes {
			n, size := n, size
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("%s/%d/%s", scope, n, size),
				Seed: cfg.Seed,
				CacheKey: cellKey(cfg, "sat-runtime-cell", orig,
					map[string]any{"blocks": n, "size": size.String()}),
				Run: func(ctx context.Context, _ int64) (any, error) {
					res, err := lockAndAttack(ctx, orig, n, size, cfg)
					switch {
					case err != nil:
						return "n/a", nil
					case res.Status == attack.KeyFound:
						return fmtDuration(res.Elapsed, false), nil
					default:
						return fmtDuration(res.Elapsed, true), nil
					}
				},
			})
		}
	}
	results, err := runSweep(cfg, scope, jobs)
	if err != nil {
		return nil, err
	}
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range sizes {
			cell, err := cellValue[string](results[i*len(sizes)+j])
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table2 reproduces paper Table II: the configuration key bits of all
// sixteen two-input functions of the MRAM LUT.
func Table2() *Table {
	t := &Table{
		Title:  "Table II: configuration key bits of the 2-input MRAM LUT",
		Header: []string{"function", "K1", "K2", "K3", "K4"},
	}
	b := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	for _, f := range logic.AllFunc2() {
		k := f.Keys()
		t.AddRow(f.String(), b(k[0]), b(k[1]), b(k[2]), b(k[3]))
	}
	return t
}

// Table3Row is one benchmark result of Table III.
type Table3Row struct {
	Suite, Circuit string
	Times          [3]string // 1, 2, 3 blocks of 8x8x8
	AppSATSuccess  bool
}

// Table3 reproduces paper Table III: SAT runtime with 1/2/3 8×8×8
// RIL-Blocks per benchmark, plus whether AppSAT succeeds when the
// scan-enable obfuscation is active.
func Table3(cfg AttackConfig) (*Table, error) {
	benches, err := table3Suite(cfg.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table III: SAT-attack runtime (s), 8x8x8 RIL-Blocks; AppSAT under scan-enable obfuscation",
		Header: []string{"suite", "circuit", "1 block", "2 blocks", "3 blocks", "AppSAT success"},
		Notes: []string{
			fmt.Sprintf("scale=%.2f timeout=%v per attack", cfg.Scale, cfg.Timeout),
		},
	}
	// Four sweep jobs per benchmark: the 1/2/3-block SAT attacks and
	// the AppSAT run against the scan-obfuscated oracle.
	const perBench = 4
	var jobs []sweep.Job
	for _, b := range benches {
		b := b
		for _, blocks := range []int{1, 2, 3} {
			blocks := blocks
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("table3/%s/%dblk", b.name, blocks),
				Seed: cfg.Seed,
				CacheKey: cellKey(cfg, "sat-runtime-cell", b.nl,
					map[string]any{"blocks": blocks, "size": core.Size8x8x8.String()}),
				Run: func(ctx context.Context, _ int64) (any, error) {
					res, err := lockAndAttack(ctx, b.nl, blocks, core.Size8x8x8, cfg)
					switch {
					case err != nil:
						return "n/a", nil
					case res.Status == attack.KeyFound:
						return fmtDuration(res.Elapsed, false), nil
					default:
						return fmtDuration(res.Elapsed, true), nil
					}
				},
			})
		}
		jobs = append(jobs, sweep.Job{
			Name: fmt.Sprintf("table3/%s/appsat", b.name),
			Seed: cfg.Seed,
			CacheKey: cellKey(cfg, "appsat-scan-cell", b.nl,
				map[string]any{"blocks": 1, "size": core.Size8x8x8.String(), "maxrounds": 16}),
			Run: func(ctx context.Context, _ int64) (any, error) {
				ok, err := appSATSucceeds(ctx, b.nl, cfg)
				if err != nil {
					return nil, err
				}
				if ok {
					return "yes", nil
				}
				return "x", nil
			},
		})
	}
	results, err := runSweep(cfg, "table3", jobs)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := []string{b.suite, b.name}
		for j := 0; j < perBench; j++ {
			cell, err := cellValue[string](results[i*perBench+j])
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t, nil
}

type namedBench struct {
	suite, name string
	nl          *netlist.Netlist
}

func table3Suite(scale float64) ([]namedBench, error) {
	var out []namedBench
	for _, name := range []string{"b15", "s35932", "s38584", "b20"} {
		prof, ok := circuit.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("report: missing profile %s", name)
		}
		nl, err := prof.Synthesize(scale)
		if err != nil {
			return nil, err
		}
		out = append(out, namedBench{"ISCAS/ITC", name, nl})
	}
	cepScale := "small"
	if scale > 0.5 {
		cepScale = "full"
	}
	cep, err := circuit.CEPSuite(cepScale)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"AES", "SHA-256", "MD5", "GPS", "DES", "FIR"} {
		out = append(out, namedBench{"CEP", name, cep[name]})
	}
	return out, nil
}

// appSATSucceeds locks the circuit with scan-enable obfuscation and
// runs AppSAT against the corrupted scan oracle; success requires a
// functionally correct key.
func appSATSucceeds(ctx context.Context, orig *netlist.Netlist, cfg AttackConfig) (bool, error) {
	res, err := core.Lock(orig, core.Options{
		Blocks: 1, Size: core.Size8x8x8, Seed: cfg.Seed, ScanEnable: true,
	})
	if err != nil {
		return false, err
	}
	sv, err := res.ScanView()
	if err != nil {
		return false, err
	}
	svBound, err := sv.BindInputs(res.KeyInputPos, res.Key)
	if err != nil {
		return false, err
	}
	scanOracle, err := attack.NewSimOracle(svBound)
	if err != nil {
		return false, err
	}
	opt := attack.DefaultAppSAT()
	opt.Timeout = cfg.Timeout
	opt.Context = ctx
	opt.MaxRounds = 16
	ar, err := attack.AppSAT(res.Locked, res.KeyInputPos, scanOracle, opt)
	if err != nil {
		return false, err
	}
	if ar.Status != attack.KeyFound {
		return false, nil
	}
	// Validate against the real functional circuit. The validation
	// oracle is deliberately separate from scanOracle: the 8×64
	// verification patterns must never inflate the attack oracle's
	// query count (the quantity the paper's tables budget).
	fBound, err := res.ApplyKey(res.Key)
	if err != nil {
		return false, err
	}
	funcOracle, err := attack.NewSimOracle(fBound)
	if err != nil {
		return false, err
	}
	e, err := attack.VerifyKey(res.Locked, res.KeyInputPos, ar.Key, funcOracle, 8, cfg.Seed)
	if err != nil {
		return false, err
	}
	return e == 0, nil
}

// OverheadTable reproduces the §III-A overhead claim: 3 blocks of
// 8×8×8 vs 75 blocks of 2×2 at comparable (timeout-grade) resilience.
func OverheadTable() *Table {
	t := &Table{
		Title:  "Overhead: equal-resilience configurations (paper SIII-A)",
		Header: []string{"config", "key bits", "LUTs", "switchboxes", "MTJs", "transistors"},
	}
	add := func(label string, o core.Overhead) {
		t.AddRow(label,
			fmt.Sprintf("%d", o.KeyBits),
			fmt.Sprintf("%d", o.LUTs),
			fmt.Sprintf("%d", o.Switchboxes),
			fmt.Sprintf("%d", o.MTJs),
			fmt.Sprintf("%d", o.Transistors))
	}
	small := core.TotalOverhead(core.Size2x2, 75)
	big := core.TotalOverhead(core.Size8x8x8, 3)
	add("75 x 2x2", small)
	add("3 x 8x8x8", big)
	t.Notes = append(t.Notes, fmt.Sprintf("transistor ratio %.2fx in favour of 3 x 8x8x8", float64(small.Transistors)/float64(big.Transistors)))
	return t
}
