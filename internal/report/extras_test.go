package report

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPPATableShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 0.2
	tb, err := PPATable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("ppa rows = %d, want 5 (original, 3 locked configs, resynth)", len(tb.Rows))
	}
	if tb.Rows[0][0] != "original" {
		t.Error("first row must be the baseline")
	}
	// Locked (non-resynthesized) rows carry positive area overhead.
	for _, row := range tb.Rows[1:] {
		if row[6] == "-" || row[6] == "n/a" || strings.Contains(row[0], "resynth") {
			continue
		}
		if !strings.HasPrefix(row[6], "+") {
			t.Errorf("area overhead %q should be positive for %s", row[6], row[0])
		}
	}
	// The activated+resynthesized row must sit close to the original.
	for _, row := range tb.Rows {
		if strings.Contains(row[0], "resynth") {
			if strings.HasPrefix(row[6], "+") && !strings.HasPrefix(row[6], "+0") &&
				!strings.HasPrefix(row[6], "+1.") && !strings.HasPrefix(row[6], "+2.") &&
				!strings.HasPrefix(row[6], "+3.") && !strings.HasPrefix(row[6], "+4.") {
				t.Errorf("resynthesized area overhead %q not near zero", row[6])
			}
		}
	}
}

func TestLUTSizeTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("lut sweep in -short mode")
	}
	cfg := fastCfg()
	cfg.Scale = 0.1
	cfg.Timeout = 2 * time.Second
	tb, err := LUTSizeTable(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("lutsize rows = %d, want 3", len(tb.Rows))
	}
	// Key bits double per size step; transistors-per-key-bit shrink.
	prevKeyBits, prevTPerBit := 0, 1e18
	for _, row := range tb.Rows {
		kb, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad key bits %q", row[1])
		}
		if kb <= prevKeyBits {
			t.Errorf("key bits not growing: %v", row)
		}
		prevKeyBits = kb
		tpb, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("bad T/key bit %q", row[7])
		}
		if tpb >= prevTPerBit {
			t.Errorf("transistors per key bit not shrinking: %v", row)
		}
		prevTPerBit = tpb
	}
}

func TestSensitizationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitization sweep in -short mode")
	}
	cfg := fastCfg()
	cfg.Timeout = 5 * time.Second
	tb, err := Sensitization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	rilResolved, err := strconv.Atoi(tb.Rows[1][2])
	if err != nil {
		t.Fatal(err)
	}
	rilBits, _ := strconv.Atoi(tb.Rows[1][1])
	if rilResolved > rilBits/4 {
		t.Errorf("sensitization resolved %d/%d RIL bits", rilResolved, rilBits)
	}
}
