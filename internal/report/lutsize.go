package report

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sweep"
)

// LUTSizeTable reproduces the §IV-E LUT-scaling claim: growing the LUT
// from 2 to 4 inputs multiplies the function space (2^(2^m)) and the
// SAT cost, while the *device* cost per configurable bit shrinks
// because the write periphery is shared across cells. The three LUT
// sizes run as parallel sweep jobs.
func LUTSizeTable(cfg AttackConfig, nLUTs int) (*Table, error) {
	prof, _ := circuit.ProfileByName("c7552")
	orig, err := prof.Synthesize(cfg.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "LUT size scaling (SIV-E): hardness up, device cost per key bit down",
		Header: []string{"LUT size", "key bits", "functions/LUT", "DIPs", "runtime (s)", "result",
			"T/LUT", "T/key bit"},
		Notes: []string{fmt.Sprintf("%d LUTs per configuration, scale=%.2f timeout=%v", nLUTs, cfg.Scale, cfg.Timeout)},
	}
	var jobs []sweep.Job
	for _, m := range []int{2, 3, 4} {
		m := m
		jobs = append(jobs, sweep.Job{
			Name: fmt.Sprintf("lutsize/lut%d", m),
			Seed: cfg.Seed,
			Run: func(ctx context.Context, _ int64) (any, error) {
				res, err := core.LockLUTM(orig, nLUTs, m, cfg.Seed)
				if err != nil {
					return []string{fmt.Sprintf("LUT%d", m), "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a"}, nil
				}
				bound, err := res.ApplyKey(res.Key)
				if err != nil {
					return nil, err
				}
				oracle, err := attack.NewSimOracle(bound)
				if err != nil {
					return nil, err
				}
				ar, err := attack.SATAttack(res.Locked, res.KeyInputPos, oracle,
					attack.SATOptions{Timeout: cfg.Timeout, Context: ctx})
				if err != nil {
					return nil, err
				}
				trans, _ := core.MRAMLUTArea(m)
				return []string{
					fmt.Sprintf("LUT%d", m),
					fmt.Sprintf("%d", res.KeyBits()),
					core.LUTFunctionSpace(m).String(),
					fmt.Sprintf("%d", ar.Iterations),
					fmtDuration(ar.Elapsed, ar.Status != attack.KeyFound),
					ar.Status.String(),
					fmt.Sprintf("%d", trans),
					fmt.Sprintf("%.2f", float64(trans)/float64(int(1)<<uint(m))),
				}, nil
			},
		})
	}
	results, err := runSweep(cfg, "lutsize", jobs)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		row, err := cellValue[[]string](res)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}
