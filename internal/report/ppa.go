package report

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/opt"
	"repro/internal/sta"
)

// PPATable measures the circuit-level cost of RIL-Block insertion on
// c7552: gate count, critical-path delay (technology delay model),
// transistor-count area and a switching-activity power proxy, for the
// paper's configurations.
func PPATable(cfg AttackConfig) (*Table, error) {
	prof, _ := circuit.ProfileByName("c7552")
	orig, err := prof.Synthesize(cfg.Scale)
	if err != nil {
		return nil, err
	}
	base, err := sta.Measure(orig, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "PPA overhead of RIL-Block insertion (c7552, technology delay model)",
		Header: []string{"config", "gates", "delay", "area (T)", "power proxy",
			"Δdelay", "Δarea", "Δpower"},
		Notes: []string{fmt.Sprintf("scale=%.2f; Δ columns relative to the unlocked circuit", cfg.Scale)},
	}
	t.AddRow("original",
		fmt.Sprintf("%d", base.Gates),
		fmt.Sprintf("%.1f", base.Delay),
		fmt.Sprintf("%d", base.Area),
		fmt.Sprintf("%.1f", base.PowerProxy),
		"-", "-", "-")

	configs := []struct {
		label  string
		blocks int
		size   core.Size
	}{
		{"3 x 8x8x8", 3, core.Size8x8x8},
		{"75 x 2x2", 75, core.Size2x2},
		{"5 x 8x8", 5, core.Size8x8},
	}
	addMeasured := func(label string, nl *netlist.Netlist) error {
		m, err := sta.Measure(nl, cfg.Seed)
		if err != nil {
			return err
		}
		dd, da, dp := sta.Overhead(base, m)
		t.AddRow(label,
			fmt.Sprintf("%d", m.Gates),
			fmt.Sprintf("%.1f", m.Delay),
			fmt.Sprintf("%d", m.Area),
			fmt.Sprintf("%.1f", m.PowerProxy),
			fmt.Sprintf("%+.1f%%", dd*100),
			fmt.Sprintf("%+.1f%%", da*100),
			fmt.Sprintf("%+.1f%%", dp*100))
		return nil
	}
	for _, c := range configs {
		res, err := core.Lock(orig, core.Options{Blocks: c.blocks, Size: c.size, Seed: cfg.Seed})
		if err != nil {
			t.AddRow(c.label, "n/a", "n/a", "n/a", "n/a", "-", "-", "-")
			continue
		}
		bound, err := res.ApplyKey(res.Key)
		if err != nil {
			return nil, err
		}
		if err := addMeasured(c.label, bound); err != nil {
			return nil, err
		}
		// The activated view: binding the correct key and resynthesizing
		// collapses the MUX lattice — the functional overhead of an
		// unlocked part is near zero; the cost lives in the
		// reconfigurable fabric (MTJs + periphery, Table IV world).
		if c.blocks == 3 {
			resynth := bound.Clone()
			if _, err := opt.Optimize(resynth); err != nil {
				return nil, err
			}
			if err := addMeasured(c.label+" (activated+resynth)", resynth); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
