package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func fastCfg() AttackConfig {
	return AttackConfig{Timeout: 500 * time.Millisecond, Scale: 0.06, Seed: 1}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") {
		t.Errorf("table string incomplete:\n%s", s)
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3", got)
	}
}

func TestTable1SmallSweep(t *testing.T) {
	tb, err := Table1(fastCfg(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 4 {
			t.Fatalf("row width %d, want 4: %v", len(row), row)
		}
		for _, cell := range row[1:] {
			if cell == "" {
				t.Error("empty cell")
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	// The headline claim at miniature scale: with enough 8x8x8 blocks
	// the attack times out while the baseline cases complete.
	cfg := fastCfg()
	cfg.Timeout = time.Second
	tb, err := Table1(cfg, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	if row[3] != "inf" {
		t.Logf("3 blocks of 8x8x8 solved at this scale (%s) — acceptable on tiny circuits, shape checked in benches", row[3])
	}
}

func TestTable2Complete(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 16 {
		t.Fatalf("Table II rows = %d, want 16", len(tb.Rows))
	}
	// Spot-check the paper's AND row: K1..K4 = 1,0,0,0.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "A AND B" {
			found = true
			if row[1] != "1" || row[2] != "0" || row[3] != "0" || row[4] != "0" {
				t.Errorf("AND row = %v, want 1 0 0 0", row[1:])
			}
		}
	}
	if !found {
		t.Error("AND row missing")
	}
}

func TestTable4Energies(t *testing.T) {
	tb, err := Table4(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Table IV rows = %d, want 3", len(tb.Rows))
	}
	avg := tb.Rows[2]
	if !strings.Contains(avg[1], "fJ") {
		t.Errorf("read energy %q not in fJ", avg[1])
	}
	if !strings.Contains(avg[2], "fJ") {
		t.Errorf("write energy %q not in fJ", avg[2])
	}
	if !strings.Contains(avg[3], "aJ") {
		t.Errorf("standby energy %q not in aJ", avg[3])
	}
}

func TestFig6Table(t *testing.T) {
	tb, res := Fig6(50, 3)
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig6 rows = %d, want 6", len(tb.Rows))
	}
	if res.ReadErrors != 0 || res.WriteErrors != 0 {
		t.Errorf("PV errors: %d read, %d write", res.ReadErrors, res.WriteErrors)
	}
	if res.MarginSeparation() <= 0 {
		t.Error("R_P/R_AP distributions must not overlap")
	}
}

func TestFig5CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t_ns,") {
		t.Error("Fig5 CSV header missing")
	}
	if strings.Count(buf.String(), "\n") < 10 {
		t.Error("Fig5 waveform suspiciously short")
	}
}

func TestOverheadTable(t *testing.T) {
	tb := OverheadTable()
	if len(tb.Rows) != 2 {
		t.Fatalf("overhead rows = %d", len(tb.Rows))
	}
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "x in favour") {
		t.Errorf("missing ratio note: %v", tb.Notes)
	}
}

func TestPSCATable(t *testing.T) {
	tb, err := PSCATable(200, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("psca rows = %d, want 2", len(tb.Rows))
	}
	// SRAM row must recover all keys; MRAM row must not.
	if !strings.HasPrefix(tb.Rows[0][1], "6/6") {
		t.Errorf("SRAM CPA recovered %s, want 6/6", tb.Rows[0][1])
	}
	if strings.HasPrefix(tb.Rows[1][1], "6/6") {
		t.Errorf("MRAM CPA recovered %s — should fail", tb.Rows[1][1])
	}
}

func TestFig1Encodings(t *testing.T) {
	cfg := fastCfg()
	cfg.Timeout = 5 * time.Second
	tb, err := Fig1(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("fig1 rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "meso" || tb.Rows[1][0] != "meso-as-lut2" {
		t.Errorf("unexpected row labels %v / %v", tb.Rows[0][0], tb.Rows[1][0])
	}
}

func TestTable5Matrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full attack matrix in -short mode")
	}
	cfg := fastCfg()
	cfg.Scale = 0.12
	tb, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Table V rows = %d, want 6", len(tb.Rows))
	}
	// The proposed scheme (last column) must be resilient in every
	// applicable row.
	last := len(tb.Header) - 1
	for _, row := range tb.Rows {
		if row[last] == "x" {
			t.Errorf("proposed scheme broken by %q:\n%s", row[0], tb.String())
		}
	}
	// XOR locking (column before last) must fall to the SAT attack.
	if tb.Rows[0][last-1] != "x" {
		t.Errorf("XOR locking should fall to SAT:\n%s", tb.String())
	}
}

func TestTable3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 sweep in -short mode")
	}
	cfg := fastCfg()
	tb, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("Table III rows = %d, want 10", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[5] == "yes" {
			t.Errorf("AppSAT succeeded on %s under scan-enable obfuscation", row[1])
		}
	}
}

func TestDIPGrowth(t *testing.T) {
	cfg := fastCfg()
	tb, err := DIPGrowth(cfg, []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatal("row count")
	}
}
